#include "net/telemetry_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/frame.h"

namespace bcc::net {

namespace {

double mono_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int poll_remaining(int fd, short events, double deadline) {
  const double left = deadline - mono_seconds();
  if (left <= 0.0) return 0;  // timed out
  pollfd p{fd, events, 0};
  return ::poll(&p, 1, static_cast<int>(left * 1000.0) + 1);
}

/// Non-blocking connect bounded by `deadline`. Returns the connected fd or
/// -1 (refused, unreachable, or out of time).
int dial(const Endpoint& ep, double deadline) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  if (poll_remaining(fd, POLLOUT, deadline) <= 0) {
    ::close(fd);
    return -1;
  }
  int err = 0;
  socklen_t err_len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 ||
      err != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::uint8_t* data, std::size_t len,
              double deadline) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (poll_remaining(fd, POLLOUT, deadline) <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

}  // namespace

bool scrape_node(const Endpoint& endpoint, double timeout_s,
                 obs::NodeTelemetry* out) {
  const double deadline = mono_seconds() + timeout_s;
  const int fd = dial(endpoint, deadline);
  if (fd < 0) return false;

  // NodeId 0xfffffffe marks the frame as collector-originated; the node's
  // reply echoes it as dst, which nothing routes on (replies come back on
  // this very connection).
  constexpr NodeId kCollectorId = 0xfffffffeu;
  const std::uint64_t request_id =
      static_cast<std::uint64_t>(::getpid()) << 32 |
      (static_cast<std::uint64_t>(endpoint.port));
  const std::vector<std::uint8_t> request =
      encode_frame(FrameType::kTelemetryRequest, kCollectorId, kCollectorId,
                   obs::TraceContext{}, encode_u64(request_id));
  if (!send_all(fd, request.data(), request.size(), deadline)) {
    ::close(fd);
    return false;
  }

  std::vector<std::uint8_t> rbuf;
  std::uint8_t buf[64 * 1024];
  while (true) {
    // Decode-first: the reply may already be buffered whole.
    DecodeResult r = decode_frame(rbuf.data(), rbuf.size());
    if (r.status == DecodeStatus::kOk) {
      rbuf.erase(rbuf.begin(),
                 rbuf.begin() + static_cast<std::ptrdiff_t>(r.consumed));
      if (r.frame.type != FrameType::kTelemetry) continue;  // e.g. stray ack
      ::close(fd);
      std::uint64_t echoed = 0;
      std::vector<std::uint8_t> telemetry;
      return decode_telemetry_body(r.frame.body.data(), r.frame.body.size(),
                                   echoed, telemetry) &&
             echoed == request_id &&
             obs::decode_node_telemetry(telemetry.data(), telemetry.size(),
                                        out);
    }
    if (r.status == DecodeStatus::kBadVersion) {
      rbuf.erase(rbuf.begin(),
                 rbuf.begin() + static_cast<std::ptrdiff_t>(r.consumed));
      continue;
    }
    if (r.status != DecodeStatus::kNeedMore) break;  // corrupt stream
    if (poll_remaining(fd, POLLIN, deadline) <= 0) break;  // deadline
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0 && !(n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))) {
      break;  // EOF mid-reply (node died / drained) or error
    }
    if (n > 0) rbuf.insert(rbuf.end(), buf, buf + n);
  }
  ::close(fd);
  return false;
}

std::size_t scrape_fleet(const std::vector<Endpoint>& endpoints,
                         double per_node_timeout_s,
                         std::vector<obs::NodeTelemetry>* fleet) {
  std::size_t scraped = 0;
  for (const Endpoint& ep : endpoints) {
    obs::NodeTelemetry t;
    if (!scrape_node(ep, per_node_timeout_s, &t)) continue;
    fleet->push_back(std::move(t));
    ++scraped;
  }
  return scraped;
}

}  // namespace bcc::net
