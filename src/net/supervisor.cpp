#include "net/supervisor.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "common/assert.h"
#include "core/system.h"
#include "net/node_runtime.h"
#include "net/telemetry_client.h"
#include "obs/export.h"

namespace bcc::net {

namespace {

double mono_seconds() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

void sleep_s(double seconds) {
  timespec ts{};
  ts.tv_sec = static_cast<time_t>(seconds);
  ts.tv_nsec = static_cast<long>((seconds - static_cast<double>(ts.tv_sec)) *
                                 1e9);
  ::nanosleep(&ts, nullptr);
}

}  // namespace

ProcessSupervisor::ProcessSupervisor(SupervisorOptions options)
    : options_(std::move(options)) {
  BCC_REQUIRE(options_.n >= 2);
  BCC_REQUIRE(!options_.bcc_bin.empty());
  children_.resize(options_.n);
  // A child dying mid-write must surface as EPIPE, not kill the supervisor.
  ::signal(SIGPIPE, SIG_IGN);
}

ProcessSupervisor::~ProcessSupervisor() { kill_all(); }

bool ProcessSupervisor::fail(const std::string& message) {
  last_error_ = message;
  if (options_.verbose) std::fprintf(stderr, "[sup] %s\n", message.c_str());
  return false;
}

void ProcessSupervisor::close_child(Child& c) {
  if (c.in >= 0) ::close(c.in);
  if (c.out >= 0) ::close(c.out);
  c.in = c.out = -1;
  c.rbuf.clear();
}

void ProcessSupervisor::kill_all() {
  for (Child& c : children_) {
    if (c.pid > 0) {
      ::kill(c.pid, SIGKILL);
      ::waitpid(c.pid, nullptr, 0);
      c.pid = -1;
    }
    close_child(c);
  }
}

std::string ProcessSupervisor::metrics_path(NodeId id) const {
  if (options_.metrics_dir.empty()) return "";
  return options_.metrics_dir + "/node" + std::to_string(id) +
         ".metrics.json";
}

std::string ProcessSupervisor::flight_path(NodeId id) const {
  if (options_.flight_dir.empty()) return "";
  return options_.flight_dir + "/node" + std::to_string(id) + ".flight";
}

bool ProcessSupervisor::spawn(NodeId id) {
  BCC_REQUIRE(id < children_.size());
  BCC_REQUIRE(base_port_ != 0);
  Child& c = children_[id];
  BCC_REQUIRE(c.pid <= 0);
  int to_child[2];   // supervisor writes control -> child stdin
  int from_child[2]; // child stdout -> supervisor reads
  BCC_REQUIRE(::pipe(to_child) == 0 && ::pipe(from_child) == 0);
  const pid_t pid = ::fork();
  BCC_REQUIRE(pid >= 0);
  if (pid == 0) {
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    std::vector<std::string> args = {
        options_.bcc_bin, "node",
        "--id", std::to_string(id),
        "--nodes", std::to_string(options_.n),
        "--base-port", std::to_string(base_port_),
        "--seed", std::to_string(options_.world_seed),
        "--n-cut", std::to_string(options_.n_cut),
        "--period", std::to_string(options_.gossip_period)};
    const std::string mpath = metrics_path(id);
    if (!mpath.empty()) {
      args.push_back("--metrics-out");
      args.push_back(mpath);
    }
    const std::string fpath = flight_path(id);
    if (!fpath.empty()) {
      args.push_back("--flight-recorder");
      args.push_back(fpath);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(options_.bcc_bin.c_str(), argv.data());
    std::perror("execv");
    ::_exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  c.pid = pid;
  c.in = to_child[1];
  c.out = from_child[0];
  c.rbuf.clear();
  if (options_.verbose) {
    std::fprintf(stderr, "[sup] node %zu pid %d port %u\n",
                 static_cast<std::size_t>(id), static_cast<int>(pid),
                 static_cast<unsigned>(base_port_ + id));
  }
  // First line decides: "ready" (listening) or "bind-failed" (exit 3).
  std::string line;
  if (!read_line(c, line, mono_seconds() + 15.0)) {
    return fail("node " + std::to_string(id) + ": no ready line");
  }
  if (line != "ready") {
    return fail("node " + std::to_string(id) + ": " + line);
  }
  return true;
}

bool ProcessSupervisor::start_cluster() {
  for (std::size_t attempt = 0; attempt < 10; ++attempt) {
    // Pid-derived base so parallel harnesses on one host rarely collide —
    // and when they do, the bind-failed child report triggers a re-roll.
    const std::uint32_t mix = static_cast<std::uint32_t>(::getpid()) * 31u +
                              static_cast<std::uint32_t>(attempt) * 977u;
    base_port_ = static_cast<std::uint16_t>(20000u + mix % 30000u);
    bool collided = false;
    for (NodeId id = 0; id < options_.n; ++id) {
      if (spawn(id)) continue;
      if (last_error_.find("bind-failed") != std::string::npos) {
        collided = true;
        break;
      }
      kill_all();
      return false;
    }
    if (!collided) return true;
    kill_all();
  }
  return fail("no free port base after 10 attempts");
}

bool ProcessSupervisor::alive(NodeId id) const {
  const Child& c = children_[id];
  if (c.pid <= 0) return false;
  return ::waitpid(c.pid, nullptr, WNOHANG) == 0;
}

void ProcessSupervisor::kill_hard(NodeId id) {
  Child& c = children_[id];
  if (c.pid > 0) {
    ::kill(c.pid, SIGKILL);
    ::waitpid(c.pid, nullptr, 0);
    c.pid = -1;
  }
  close_child(c);
}

void ProcessSupervisor::sigstop(NodeId id) {
  if (children_[id].pid > 0) ::kill(children_[id].pid, SIGSTOP);
}

void ProcessSupervisor::sigcont(NodeId id) {
  if (children_[id].pid > 0) ::kill(children_[id].pid, SIGCONT);
}

int ProcessSupervisor::sigterm_wait(NodeId id, double deadline) {
  Child& c = children_[id];
  if (c.pid <= 0) return -1;
  ::kill(c.pid, SIGTERM);
  const double until = mono_seconds() + deadline;
  while (mono_seconds() < until) {
    int status = 0;
    const pid_t r = ::waitpid(c.pid, &status, WNOHANG);
    if (r == c.pid) {
      c.pid = -1;
      close_child(c);
      if (WIFEXITED(status)) return WEXITSTATUS(status);
      return -2;
    }
    sleep_s(0.02);
  }
  return -1;
}

bool ProcessSupervisor::read_line(Child& c, std::string& line,
                                  double deadline) {
  while (true) {
    const std::size_t nl = c.rbuf.find('\n');
    if (nl != std::string::npos) {
      line = c.rbuf.substr(0, nl);
      c.rbuf.erase(0, nl + 1);
      return true;
    }
    const double remain = deadline - mono_seconds();
    if (remain <= 0.0 || c.out < 0) return false;
    pollfd p{c.out, POLLIN, 0};
    const int rc = ::poll(&p, 1, static_cast<int>(remain * 1000.0) + 1);
    if (rc <= 0) return false;
    char buf[4096];
    const ssize_t n = ::read(c.out, buf, sizeof(buf));
    if (n <= 0) return false;  // EOF: child died
    c.rbuf.append(buf, static_cast<std::size_t>(n));
  }
}

bool ProcessSupervisor::send_cmd(NodeId id, const std::string& verb,
                                 double deadline) {
  Child& c = children_[id];
  if (c.pid <= 0 || c.in < 0) return fail("send_cmd: node down");
  const std::string line = verb + "\n";
  if (::write(c.in, line.data(), line.size()) !=
      static_cast<ssize_t>(line.size())) {
    return fail("send_cmd: write failed");
  }
  const double until = mono_seconds() + deadline;
  std::string reply;
  while (read_line(c, reply, until)) {
    if (reply == "ok " + verb) return true;
  }
  return fail("send_cmd: no ok for " + verb);
}

bool ProcessSupervisor::dump(NodeId id, std::string& state, double deadline) {
  Child& c = children_[id];
  if (c.pid <= 0 || c.in < 0) return fail("dump: node down");
  const char cmd[] = "dump\n";
  if (::write(c.in, cmd, sizeof(cmd) - 1) !=
      static_cast<ssize_t>(sizeof(cmd) - 1)) {
    return fail("dump: write failed");
  }
  const double until = mono_seconds() + deadline;
  std::string line;
  std::ostringstream out;
  bool in_state = false;
  while (read_line(c, line, until)) {
    if (!in_state) {
      if (line.rfind("state-begin", 0) == 0) {
        in_state = true;
        out << line << "\n";
      }
      continue;  // skip unrelated replies
    }
    out << line << "\n";
    if (line == "state-end") {
      state = out.str();
      return true;
    }
  }
  return fail("dump: incomplete state from node " + std::to_string(id));
}

bool ProcessSupervisor::query(NodeId id, std::size_t k, std::size_t class_idx,
                              std::string& reply, double deadline) {
  Child& c = children_[id];
  if (c.pid <= 0 || c.in < 0) return fail("query: node down");
  const std::string cmd =
      "query " + std::to_string(k) + " " + std::to_string(class_idx) + "\n";
  if (::write(c.in, cmd.data(), cmd.size()) !=
      static_cast<ssize_t>(cmd.size())) {
    return fail("query: write failed");
  }
  const double until = mono_seconds() + deadline;
  std::string line;
  while (read_line(c, line, until)) {
    if (line.rfind("query-result", 0) == 0) {
      reply = line;
      return true;
    }
  }
  return fail("query: no reply from node " + std::to_string(id));
}

const std::string& ProcessSupervisor::ground_truth(NodeId id) {
  if (truth_.empty()) {
    NodeWorld w = make_node_world(options_.n, options_.world_seed);
    SystemOptions so;
    so.n_cut = options_.n_cut;
    DecentralizedClusterSystem sync(w.fw.anchors, w.predicted, w.classes, so);
    sync.run_to_convergence();
    BCC_REQUIRE(sync.converged());
    truth_.resize(options_.n);
    for (NodeId x : w.fw.anchors.bfs_order()) {
      truth_[x] = format_node_state(x, sync.node(x));
    }
  }
  return truth_[id];
}

bool ProcessSupervisor::wait_converged(const std::vector<NodeId>& ids,
                                       double deadline) {
  const double until = mono_seconds() + deadline;
  std::string mismatch;
  while (mono_seconds() < until) {
    bool all = true;
    for (NodeId id : ids) {
      std::string state;
      if (!dump(id, state, 5.0) || state != ground_truth(id)) {
        all = false;
        mismatch = "node " + std::to_string(id) +
                   (state.empty() ? " unresponsive" : " not at fixpoint");
        break;
      }
    }
    if (all) return true;
    sleep_s(0.1);
  }
  return fail("wait_converged timeout: " + mismatch);
}

long long ProcessSupervisor::metrics_counter(NodeId id,
                                             const std::string& name) const {
  const std::string path = metrics_path(id);
  if (path.empty()) return -1;
  std::ifstream in(path);
  if (!in) return -1;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::string key = "\"" + name + "\": ";
  const std::size_t pos = text.find(key);
  if (pos == std::string::npos) return -1;
  return std::strtoll(text.c_str() + pos + key.size(), nullptr, 10);
}

std::size_t ProcessSupervisor::collect(double per_node_timeout,
                                       std::vector<obs::NodeTelemetry>* fleet) {
  const std::size_t before = fleet->size();
  std::vector<Endpoint> endpoints;
  for (NodeId id = 0; id < options_.n; ++id) {
    if (!alive(id)) continue;  // a corpse's port refuses instantly anyway
    Endpoint ep;
    ep.port = static_cast<std::uint16_t>(base_port_ + id);
    endpoints.push_back(ep);
  }
  scrape_fleet(endpoints, per_node_timeout, fleet);
  if (!options_.flight_dir.empty()) {
    obs::augment_missing_from_flight(options_.flight_dir, fleet);
  }
  if (options_.verbose) {
    std::fprintf(stderr, "[sup] collected %zu/%zu nodes\n",
                 fleet->size() - before, options_.n);
  }
  return fleet->size() - before;
}

bool ProcessSupervisor::write_fleet_artifacts(
    const std::vector<obs::NodeTelemetry>& fleet, const std::string& dir) {
  const std::vector<double> offsets = obs::estimate_clock_offsets(fleet);
  return obs::write_text_file(dir + "/fleet_trace.json",
                              obs::fleet_chrome_trace_json(fleet, offsets)) &&
         obs::write_text_file(
             dir + "/fleet_metrics.json",
             obs::json_object(obs::merge_fleet_metrics(fleet)));
}

std::string run_scenario(const std::string& name, SupervisorOptions options) {
  const std::size_t n = options.n;
  const double deadline = options.converge_deadline;
  const bool check_metrics = !options.metrics_dir.empty();
  ProcessSupervisor sup(options);
  std::vector<NodeId> all;
  for (NodeId id = 0; id < n; ++id) all.push_back(id);
  auto err = [&](const std::string& stage) {
    return name + "/" + stage + ": " + sup.last_error();
  };

  if (!sup.start_cluster()) return err("start");

  if (name == "converge") {
    if (!sup.wait_converged(all, deadline)) return err("converge");
    return "";
  }

  if (name == "kill-rejoin") {
    if (n < 5) return "kill-rejoin needs n >= 5";
    // Kill a 2-node minority mid-convergence: no cleanup, no goodbye.
    sleep_s(0.2);
    sup.kill_hard(1);
    sup.kill_hard(3);
    // Survivors must still answer (degraded, not dead): dumps stay live and
    // the serving plane returns a well-formed query-result line.
    for (NodeId id : {NodeId{0}, NodeId{2}, NodeId{4}}) {
      std::string state;
      if (!sup.dump(id, state, 5.0)) return err("survivor-dump");
      std::string reply;
      if (!sup.query(id, 2, 0, reply, 5.0)) return err("survivor-query");
      if (reply.find(" degraded=") == std::string::npos) {
        return name + "/survivor-query: malformed reply: " + reply;
      }
    }
    sleep_s(0.5);
    // Cold rejoin: fresh processes, empty tables, same ports.
    if (!sup.spawn(1)) return err("respawn-1");
    if (!sup.spawn(3)) return err("respawn-3");
    if (!sup.wait_converged(all, deadline)) return err("rejoin-converge");
    return "";
  }

  if (name == "partition-heal") {
    if (!sup.wait_converged(all, deadline)) return err("pre-converge");
    // Listener-close partition, then full isolation: peers' live conns go
    // silent and must be declared half-open by the heartbeat watchdog.
    if (!sup.send_cmd(2, "close-listener", 5.0)) return err("close-listener");
    if (!sup.send_cmd(2, "isolate", 5.0)) return err("isolate");
    sleep_s(1.6);  // > heartbeat_timeout (1.0s): half-open detection fires
    if (!sup.send_cmd(2, "deisolate", 5.0)) return err("deisolate");
    if (!sup.send_cmd(2, "open-listener", 5.0)) return err("open-listener");
    if (!sup.wait_converged(all, deadline)) return err("heal-converge");
    if (check_metrics) {
      // Drain everyone and verify the cluster re-established connections
      // (only the isolated node's tree neighbors dial it, so sum over all).
      long long reconnects = 0;
      for (NodeId id = 0; id < n; ++id) {
        const int code = sup.sigterm_wait(id, 10.0);
        if (code != 0) {
          return name + "/drain-node" + std::to_string(id) +
                 ": exit code " + std::to_string(code);
        }
        reconnects +=
            std::max(0ll, sup.metrics_counter(id, "bcc.net.reconnects"));
      }
      if (reconnects <= 0) {
        return name + "/metrics: cluster bcc.net.reconnects = " +
               std::to_string(reconnects);
      }
    }
    return "";
  }

  if (name == "stall-resume") {
    if (n < 2) return "stall-resume needs n >= 2";
    if (!sup.wait_converged(all, deadline)) return err("pre-converge");
    sup.sigstop(1);
    sleep_s(1.6);  // frozen past the heartbeat timeout
    sup.sigcont(1);
    if (!sup.wait_converged(all, deadline)) return err("resume-converge");
    return "";
  }

  if (name == "drain") {
    if (!sup.wait_converged(all, deadline)) return err("pre-converge");
    for (NodeId id = 0; id < n; ++id) {
      const int code = sup.sigterm_wait(id, 10.0);
      if (code != 0) {
        return name + "/node" + std::to_string(id) + ": exit code " +
               std::to_string(code);
      }
    }
    if (check_metrics) {
      const long long sent = sup.metrics_counter(0, "bcc.net.frames_sent");
      if (sent <= 0) {
        return name + "/metrics: bcc.net.frames_sent = " +
               std::to_string(sent);
      }
    }
    return "";
  }

  if (name == "kill-collect") {
    if (n < 4) return "kill-collect needs n >= 4";
    if (options.flight_dir.empty()) return "kill-collect needs flight_dir";
    // Let gossip run so cross-process exchanges (and their spans) pile up
    // on both sides of every link — then kill a node mid-conversation.
    sleep_s(1.2);
    const NodeId victim = 1;
    sup.kill_hard(victim);

    std::vector<obs::NodeTelemetry> fleet;
    sup.collect(2.0, &fleet);
    if (fleet.size() < n) {
      return name + "/collect: " + std::to_string(fleet.size()) + "/" +
             std::to_string(n) + " nodes (victim flight ring missing?)";
    }
    const obs::NodeTelemetry* dead = nullptr;
    std::size_t live_spans = 0;
    for (const obs::NodeTelemetry& t : fleet) {
      if (t.node == victim) dead = &t;
      else live_spans += t.spans.size();
    }
    if (dead == nullptr || !dead->recovered) {
      return name + "/flight: victim not recovered from disk";
    }
    if (dead->spans.empty()) return name + "/flight: victim ring empty";
    if (live_spans == 0) return name + "/scrape: no live spans";

    // The acceptance chain: a receive span on one process causally linked
    // (remote parent id) to a send span on another, with the flight-
    // recovered victim on one end — either as the sender whose spans only
    // survive on disk, or as the receiver recovered from disk.
    std::set<std::uint64_t> victim_ids;
    for (const obs::SpanRecord& s : dead->spans) victim_ids.insert(s.id);
    bool linked = false;
    for (const obs::NodeTelemetry& t : fleet) {
      if (t.node == victim) continue;
      for (const obs::SpanRecord& s : t.spans) {
        if (s.remote_parent && victim_ids.count(s.parent) > 0) linked = true;
      }
    }
    if (!linked) {
      std::set<std::uint64_t> live_ids;
      for (const obs::NodeTelemetry& t : fleet) {
        if (t.node == victim) continue;
        for (const obs::SpanRecord& s : t.spans) live_ids.insert(s.id);
      }
      for (const obs::SpanRecord& s : dead->spans) {
        if (s.remote_parent && live_ids.count(s.parent) > 0) linked = true;
      }
    }
    if (!linked) {
      return name + "/causal: no cross-process span chain touches the victim";
    }

    // The merged timeline must carry the victim's flight lane and at least
    // one cross-process flow arrow.
    const std::string trace = obs::fleet_chrome_trace_json(
        fleet, obs::estimate_clock_offsets(fleet));
    if (trace.find("[flight]") == std::string::npos) {
      return name + "/export: no flight lane in merged trace";
    }
    if (trace.find("\"ph\":\"s\"") == std::string::npos) {
      return name + "/export: no flow arrows in merged trace";
    }
    if (!options.telemetry_out.empty() &&
        !ProcessSupervisor::write_fleet_artifacts(fleet,
                                                  options.telemetry_out)) {
      return name + "/export: artifact write failed";
    }
    return "";
  }

  if (name == "overhead") {
    // Collector-overhead A/B on a live cluster: same wall window, same
    // world, gossip throughput (sum of bcc.net.frames_sent per second)
    // without vs with a 0.5s-period collector. Needs metrics_dir for the
    // drained counter files. Reported, not asserted — EXPERIMENTS.md
    // records the number against the <2% budget (a hard assert here would
    // be noise-limited on a loaded 1-cpu CI box).
    if (options.metrics_dir.empty()) return "overhead needs metrics_dir";
    const double window = 6.0;
    double rate[2] = {0.0, 0.0};
    for (int scraped = 0; scraped < 2; ++scraped) {
      ProcessSupervisor ab(options);
      if (!ab.start_cluster()) {
        return name + "/start: " + ab.last_error();
      }
      const double t_end = mono_seconds() + window;
      while (mono_seconds() < t_end) {
        if (scraped == 1) {
          std::vector<obs::NodeTelemetry> fleet;
          ab.collect(0.5, &fleet);
        }
        sleep_s(0.5);
      }
      long long frames = 0;
      for (NodeId id = 0; id < n; ++id) {
        const int code = ab.sigterm_wait(id, 10.0);
        if (code != 0) {
          return name + "/drain-node" + std::to_string(id) + ": exit code " +
                 std::to_string(code);
        }
        frames +=
            std::max(0ll, ab.metrics_counter(id, "bcc.net.frames_sent"));
      }
      rate[scraped] = static_cast<double>(frames) / window;
    }
    const double delta_pct =
        rate[0] > 0.0 ? (rate[0] - rate[1]) / rate[0] * 100.0 : 0.0;
    std::fprintf(stderr,
                 "[overhead] frames/s unscraped=%.1f scraped=%.1f "
                 "delta=%.2f%%\n",
                 rate[0], rate[1], delta_pct);
    if (!options.telemetry_out.empty()) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "{\"frames_per_s_unscraped\":%.1f,"
                    "\"frames_per_s_scraped\":%.1f,\"delta_pct\":%.2f}\n",
                    rate[0], rate[1], delta_pct);
      obs::write_text_file(options.telemetry_out + "/overhead.json", buf);
    }
    return "";
  }

  return "unknown scenario: " + name;
}

}  // namespace bcc::net
