// SimTransport — the deterministic half of the Transport seam: frames move
// through the existing FaultyChannel, so every fault class the seeded
// FaultPlan can inject (drop, duplicate, jitter, partitions, down-node
// discard) applies to transport sends exactly as it applied to the
// pre-refactor closure sends. A (plan seed, overlay seed) pair still
// reproduces a chaos run bit-for-bit: SimTransport itself consumes no
// randomness and sends consult the plan in unchanged order.
//
// Frames are genuinely serialized (net/frame.h) and re-decoded at delivery,
// so the sim path exercises the same codec bytes the TCP path puts on a real
// socket — a sim-passing payload cannot secretly depend on in-process object
// sharing.
#pragma once

#include "net/transport.h"
#include "sim/fault.h"

namespace bcc::net {

/// See file comment. Engine and plan must outlive the transport; `plan` may
/// be null (perfect network). `latency` maps (from, to) to one-way seconds.
class SimTransport : public Transport {
 public:
  using LatencyFn = std::function<double(NodeId from, NodeId to)>;

  SimTransport(EventEngine* engine, FaultPlan* plan, LatencyFn latency);

  void set_handler(Handler handler) override { handler_ = std::move(handler); }

  /// Serializes the frame, counts it in MessageMetrics (labelled by frame
  /// type) and bcc.net.*, then schedules delivery through the FaultyChannel.
  /// The delivery decodes the bytes back into a Delivery for the handler;
  /// duplicated messages decode (and deliver) twice.
  void send(NodeId from, NodeId to, FrameType type,
            std::vector<std::uint8_t> body,
            const obs::TraceContext& trace) override;

  EventEngine& engine() { return channel_.engine(); }

 private:
  FaultyChannel channel_;
  LatencyFn latency_;
  Handler handler_;
};

}  // namespace bcc::net
