#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/assert.h"

namespace bcc::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  BCC_REQUIRE(flags >= 0);
  BCC_REQUIRE(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in make_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  BCC_REQUIRE(::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) == 1);
  return addr;
}

/// write() that never raises SIGPIPE (a peer killed -9 mid-write must show
/// up as EPIPE, not kill this process too).
ssize_t send_bytes(int fd, const std::uint8_t* data, std::size_t len) {
  return ::send(fd, data, len, MSG_NOSIGNAL);
}

}  // namespace

TcpTransport::TcpTransport(TcpTransportOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  BCC_REQUIRE(options_.local < options_.peers.size());
  BCC_REQUIRE(options_.heartbeat_period > 0.0);
  BCC_REQUIRE(options_.heartbeat_timeout > options_.heartbeat_period);
  BCC_REQUIRE(options_.backoff_initial > 0.0);
  BCC_REQUIRE(options_.backoff_max >= options_.backoff_initial);
  BCC_REQUIRE(options_.backoff_jitter >= 0.0 && options_.backoff_jitter < 1.0);
}

TcpTransport::~TcpTransport() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (auto& [peer, c] : out_) {
    if (c.fd >= 0) ::close(c.fd);
  }
  for (InConn& c : in_) {
    if (c.fd >= 0) ::close(c.fd);
  }
}

double TcpTransport::mono_now() const {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

bool TcpTransport::listen() {
  BCC_REQUIRE(listen_fd_ < 0);
  const Endpoint& ep = options_.peers[options_.local];
  sockaddr_in addr = make_addr(ep);
  double retry_delay = options_.bind_retry_delay;
  for (std::size_t attempt = 0;; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    BCC_REQUIRE(fd >= 0);
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      BCC_REQUIRE(::listen(fd, 64) == 0);
      set_nonblocking(fd);
      listen_fd_ = fd;
      listener_wanted_ = true;
      return true;
    }
    // Port collision is an expected race: other harnesses share the host,
    // and a kill -9'd predecessor can hold the port in TIME_WAIT for a
    // moment even with SO_REUSEADDR. Anything else is a programming error.
    const int bind_errno = errno;
    BCC_REQUIRE(bind_errno == EADDRINUSE || bind_errno == EACCES);
    ::close(fd);
    if (bind_errno != EADDRINUSE || attempt >= options_.bind_retries) {
      // Exhausted (or unretryable): the caller re-rolls the port base.
      return false;
    }
    NetMetrics::global().bind_retries.add(1);
    timespec wait{};
    wait.tv_sec = static_cast<time_t>(retry_delay);
    wait.tv_nsec = static_cast<long>(
        (retry_delay - static_cast<double>(wait.tv_sec)) * 1e9);
    ::nanosleep(&wait, nullptr);
    retry_delay *= 2.0;
  }
}

void TcpTransport::close_listener() {
  listener_wanted_ = false;
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TcpTransport::open_listener() {
  if (listen_fd_ >= 0 || isolated_) return;
  BCC_REQUIRE(listen());
}

void TcpTransport::set_isolated(bool isolated) {
  if (isolated == isolated_) return;
  isolated_ = isolated;
  if (isolated_) {
    const bool wanted = listener_wanted_;
    close_listener();
    listener_wanted_ = wanted;  // remember to reopen on heal
    for (auto& [peer, c] : out_) drop_out(c);
    for (InConn& c : in_) {
      if (c.fd >= 0) ::close(c.fd);
    }
    in_.clear();
  } else if (listener_wanted_) {
    BCC_REQUIRE(listen());
  }
}

bool TcpTransport::connected_to(NodeId peer) const {
  auto it = out_.find(peer);
  return it != out_.end() && it->second.state == ConnState::kConnected;
}

std::size_t TcpTransport::queued_bytes(NodeId peer) const {
  auto it = out_.find(peer);
  return it == out_.end() ? 0 : it->second.queue_bytes;
}

void TcpTransport::drop_out(OutConn& c) {
  if (c.fd >= 0) {
    ::close(c.fd);
    c.fd = -1;
  }
  if (c.state == ConnState::kConnected || c.state == ConnState::kConnecting) {
    c.state = ConnState::kIdle;
  }
  c.write_off = 0;  // partially-written frame restarts from its first byte
  c.rbuf.clear();
}

void TcpTransport::enter_backoff(NodeId peer, OutConn& c) {
  drop_out(c);
  ++c.attempts;
  const double expo = options_.backoff_initial *
                      std::pow(2.0, static_cast<double>(c.attempts - 1));
  const double capped = std::min(expo, options_.backoff_max);
  const double jitter = rng_.uniform(1.0 - options_.backoff_jitter,
                                     1.0 + options_.backoff_jitter);
  const double wait = capped * jitter;
  NetMetrics::global().backoff_ms.record(wait * 1000.0);
  c.state = ConnState::kBackoff;
  c.deadline = mono_now() + wait;
  (void)peer;
}

void TcpTransport::start_dial(NodeId peer, OutConn& c) {
  if (isolated_) return;  // blackholed: stay idle, queue accrues until shed
  BCC_REQUIRE(peer < options_.peers.size());
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  BCC_REQUIRE(fd >= 0);
  set_nonblocking(fd);
  set_nodelay(fd);
  sockaddr_in addr = make_addr(options_.peers[peer]);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc == 0 || errno == EINPROGRESS) {
    c.fd = fd;
    c.state = ConnState::kConnecting;
    c.deadline = mono_now() + options_.connect_timeout;
    return;
  }
  ::close(fd);
  enter_backoff(peer, c);
}

void TcpTransport::on_dial_result(NodeId peer, OutConn& c, bool ok) {
  if (!ok) {
    enter_backoff(peer, c);
    return;
  }
  c.state = ConnState::kConnected;
  c.attempts = 0;
  const double now = mono_now();
  c.last_pong = now;
  c.next_ping = now + options_.heartbeat_period;
  if (c.was_connected) NetMetrics::global().reconnects.add();
  c.was_connected = true;
  flush_out(peer, c);
}

void TcpTransport::send(NodeId from, NodeId to, FrameType type,
                        std::vector<std::uint8_t> body,
                        const obs::TraceContext& trace) {
  BCC_REQUIRE(from == options_.local);
  BCC_REQUIRE(to < options_.peers.size() && to != from);
  NetMetrics& m = NetMetrics::global();
  std::vector<std::uint8_t> wire = encode_frame(type, from, to, trace, body);
  m.frames_sent.add();
  m.bytes_sent.add(wire.size());
  OutConn& c = out_[to];
  if (c.queue_bytes + wire.size() > options_.max_queue_bytes) {
    m.frames_dropped.add();  // shed newest, keep per-peer FIFO intact
    return;
  }
  c.queue_bytes += wire.size();
  c.queue.push_back(std::move(wire));
  switch (c.state) {
    case ConnState::kIdle:
      start_dial(to, c);
      break;
    case ConnState::kConnected:
      flush_out(to, c);
      break;
    case ConnState::kConnecting:
    case ConnState::kBackoff:
      break;  // poll_once() advances these
  }
}

void TcpTransport::flush_out(NodeId peer, OutConn& c) {
  while (!c.queue.empty()) {
    const std::vector<std::uint8_t>& front = c.queue.front();
    const ssize_t n = send_bytes(c.fd, front.data() + c.write_off,
                                 front.size() - c.write_off);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      enter_backoff(peer, c);
      return;
    }
    c.write_off += static_cast<std::size_t>(n);
    if (c.write_off < front.size()) return;  // socket full mid-frame
    c.queue_bytes -= front.size();
    c.queue.pop_front();
    c.write_off = 0;
  }
}

void TcpTransport::flush_in(InConn& c) {
  while (c.write_off < c.wbuf.size()) {
    const ssize_t n = send_bytes(c.fd, c.wbuf.data() + c.write_off,
                                 c.wbuf.size() - c.write_off);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      ::close(c.fd);  // peer gone; the conn is culled on the next pump
      c.fd = -1;
      return;
    }
    c.write_off += static_cast<std::size_t>(n);
  }
  c.wbuf.clear();
  c.write_off = 0;
}

std::size_t TcpTransport::deliver_frame(Frame&& f, InConn* in, OutConn* out) {
  NetMetrics& m = NetMetrics::global();
  m.frames_received.add();
  m.bytes_received.add(frame_wire_bytes(f.body.size()));
  switch (f.type) {
    case FrameType::kHeartbeat: {
      // Echo on the same connection the ping arrived on (the one direction
      // the pinger is actually probing).
      if (in != nullptr) {
        append_frame(in->wbuf, FrameType::kHeartbeatAck, options_.local,
                     f.src, obs::TraceContext{}, f.body.data(),
                     f.body.size());
        flush_in(*in);
      }
      return 0;
    }
    case FrameType::kHeartbeatAck: {
      if (out != nullptr) out->last_pong = mono_now();
      return 0;
    }
    case FrameType::kTelemetryRequest: {
      // Reply on the same inbound connection the request arrived on — the
      // collector is a pure client (it dials the node's listen port), so
      // this is the heartbeat-echo path, not a new dialed direction.
      std::uint64_t request_id = 0;
      if (in == nullptr || telemetry_provider_ == nullptr ||
          !decode_u64(f.body.data(), f.body.size(), request_id)) {
        return 0;
      }
      const std::vector<std::uint8_t> body =
          encode_telemetry_body(request_id, telemetry_provider_());
      if (obs::kTraceContextWireBytes + body.size() > kMaxFramePayload) {
        m.frames_dropped.add();  // snapshot too fat for one frame
        return 0;
      }
      append_frame(in->wbuf, FrameType::kTelemetry, options_.local, f.src,
                   obs::TraceContext{}, body.data(), body.size());
      flush_in(*in);
      return 0;
    }
    case FrameType::kTelemetry: {
      // Nodes never solicit telemetry from each other; only the collector
      // client (telemetry_client.cpp) consumes these.
      return 0;
    }
    case FrameType::kExchange:
    case FrameType::kAck: {
      if (f.dst != options_.local || handler_ == nullptr) {
        m.frames_dropped.add();
        return 0;
      }
      Delivery d;
      d.from = f.src;
      d.to = f.dst;
      d.type = f.type;
      d.trace = f.trace;
      d.body = std::move(f.body);
      handler_(d);
      return 1;
    }
  }
  return 0;
}

std::size_t TcpTransport::drain_rbuf(std::vector<std::uint8_t>& rbuf,
                                     InConn* in, OutConn* out) {
  NetMetrics& m = NetMetrics::global();
  std::size_t delivered = 0;
  std::size_t off = 0;
  bool kill = false;
  while (off < rbuf.size()) {
    DecodeResult r = decode_frame(rbuf.data() + off, rbuf.size() - off);
    if (r.status == DecodeStatus::kNeedMore) break;
    if (r.status == DecodeStatus::kBadVersion) {
      // Unknown major from a rolling-restart peer: count, skip, resync on
      // the next frame. Never fatal, never crashes the node.
      m.frames_rejected_version.add();
      off += r.consumed;
      continue;
    }
    if (r.status != DecodeStatus::kOk) {
      // kBadMagic / kTooLarge: the stream is garbage; drop the connection.
      m.frames_corrupt.add();
      kill = true;
      break;
    }
    off += r.consumed;
    delivered += deliver_frame(std::move(r.frame), in, out);
  }
  rbuf.erase(rbuf.begin(), rbuf.begin() + static_cast<std::ptrdiff_t>(off));
  if (kill) {
    if (in != nullptr && in->fd >= 0) {
      ::close(in->fd);
      in->fd = -1;
    }
    if (out != nullptr) {
      // Re-dial through backoff; peer NodeId is recovered by the caller.
      out->rbuf.clear();
      if (out->fd >= 0) {
        ::close(out->fd);
        out->fd = -1;
      }
      out->state = ConnState::kIdle;
      out->write_off = 0;
    }
  }
  return delivered;
}

void TcpTransport::drive_heartbeats(double now) {
  for (auto& [peer, c] : out_) {
    if (c.state != ConnState::kConnected) continue;
    if (now - c.last_pong > options_.heartbeat_timeout) {
      // Writes kept "succeeding" into a dead pipe (SIGSTOP, silent kill,
      // one-way partition): declare the connection half-open and re-dial.
      NetMetrics::global().half_open_detected.add();
      enter_backoff(peer, c);
      continue;
    }
    if (now >= c.next_ping) {
      std::vector<std::uint8_t> body = encode_u64(c.ping_seq++);
      std::vector<std::uint8_t> wire;
      append_frame(wire, FrameType::kHeartbeat, options_.local, peer,
                   obs::TraceContext{}, body.data(), body.size());
      NetMetrics::global().frames_sent.add();
      NetMetrics::global().bytes_sent.add(wire.size());
      if (c.queue_bytes + wire.size() <= options_.max_queue_bytes) {
        c.queue_bytes += wire.size();
        c.queue.push_back(std::move(wire));
        flush_out(peer, c);
      } else {
        NetMetrics::global().frames_dropped.add();
      }
      c.next_ping = now + options_.heartbeat_period;
    }
  }
}

std::size_t TcpTransport::poll_once(double timeout) {
  BCC_REQUIRE(timeout >= 0.0);
  const double now = mono_now();

  // Leave backoff / time out stuck connects before building the poll set.
  for (auto& [peer, c] : out_) {
    if (c.state == ConnState::kBackoff && now >= c.deadline) {
      c.state = ConnState::kIdle;
      if (!c.queue.empty()) start_dial(peer, c);
    } else if (c.state == ConnState::kConnecting && now >= c.deadline) {
      enter_backoff(peer, c);
    } else if (c.state == ConnState::kIdle && !c.queue.empty()) {
      start_dial(peer, c);
    }
  }
  drive_heartbeats(now);

  std::vector<pollfd> fds;
  std::vector<std::pair<int, NodeId>> tags;  // 0 listener / 1 out / 2 in
  if (listen_fd_ >= 0) {
    fds.push_back({listen_fd_, POLLIN, 0});
    tags.emplace_back(0, 0);
  }
  for (auto& [peer, c] : out_) {
    if (c.fd < 0) continue;
    short events = POLLIN;
    if (c.state == ConnState::kConnecting || !c.queue.empty()) {
      events |= POLLOUT;
    }
    fds.push_back({c.fd, events, 0});
    tags.emplace_back(1, peer);
  }
  for (std::size_t i = 0; i < in_.size(); ++i) {
    if (in_[i].fd < 0) continue;
    short events = POLLIN;
    if (in_[i].write_off < in_[i].wbuf.size()) events |= POLLOUT;
    fds.push_back({in_[i].fd, events, 0});
    tags.emplace_back(2, static_cast<NodeId>(i));
  }

  const int timeout_ms =
      static_cast<int>(std::min(timeout * 1000.0, 1000.0 * 3600.0));
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) return 0;

  std::size_t delivered = 0;
  std::uint8_t buf[64 * 1024];
  for (std::size_t i = 0; i < fds.size(); ++i) {
    const auto [kind, tag] = tags[i];
    const short re = fds[i].revents;
    if (re == 0) continue;
    if (kind == 0) {
      // Accept everything ready (level-triggered, loop until EAGAIN).
      while (true) {
        const int cfd = ::accept(listen_fd_, nullptr, nullptr);
        if (cfd < 0) break;
        set_nonblocking(cfd);
        set_nodelay(cfd);
        InConn c;
        c.fd = cfd;
        in_.push_back(std::move(c));
      }
      continue;
    }
    if (kind == 1) {
      auto it = out_.find(tag);
      if (it == out_.end() || it->second.fd != fds[i].fd) continue;
      OutConn& c = it->second;
      if (c.state == ConnState::kConnecting) {
        if (re & (POLLOUT | POLLERR | POLLHUP)) {
          int err = 0;
          socklen_t len = sizeof(err);
          ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
          on_dial_result(tag, c, err == 0);
        }
        continue;
      }
      if (re & POLLIN) {
        while (true) {
          const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            c.rbuf.insert(c.rbuf.end(), buf, buf + n);
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          enter_backoff(tag, c);  // EOF or error: peer closed our conn
          break;
        }
        if (c.fd >= 0) delivered += drain_rbuf(c.rbuf, nullptr, &c);
      }
      if (c.fd >= 0 && (re & POLLOUT) && c.state == ConnState::kConnected) {
        flush_out(tag, c);
      }
      if (c.fd >= 0 && (re & (POLLERR | POLLHUP)) &&
          c.state == ConnState::kConnected) {
        enter_backoff(tag, c);
      }
      continue;
    }
    // kind == 2: inbound connection.
    InConn& c = in_[tag];
    if (c.fd != fds[i].fd) continue;
    if (re & POLLIN) {
      while (true) {
        const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
        if (n > 0) {
          c.rbuf.insert(c.rbuf.end(), buf, buf + n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        ::close(c.fd);  // EOF / error
        c.fd = -1;
        break;
      }
      if (c.fd >= 0) delivered += drain_rbuf(c.rbuf, &c, nullptr);
    }
    if (c.fd >= 0 && (re & POLLOUT)) flush_in(c);
    if (c.fd >= 0 && (re & (POLLERR | POLLHUP))) {
      ::close(c.fd);
      c.fd = -1;
    }
  }

  // Cull dead inbound connections.
  in_.erase(std::remove_if(in_.begin(), in_.end(),
                           [](const InConn& c) { return c.fd < 0; }),
            in_.end());
  return delivered;
}

}  // namespace bcc::net
