#include "net/transport.h"

namespace bcc::net {

NetMetrics& NetMetrics::global() {
  // One registration site for the whole bcc.net.* namespace (the metric-name
  // lint rejects duplicate registration literals, and hot paths want cached
  // references anyway).
  static NetMetrics m{
      obs::Registry::global().counter("bcc.net.frames_sent"),
      obs::Registry::global().counter("bcc.net.frames_received"),
      obs::Registry::global().counter("bcc.net.frames_dropped"),
      obs::Registry::global().counter("bcc.net.frames_rejected_version"),
      obs::Registry::global().counter("bcc.net.frames_corrupt"),
      obs::Registry::global().counter("bcc.net.reconnects"),
      obs::Registry::global().counter("bcc.net.half_open_detected"),
      obs::Registry::global().counter("bcc.net.bytes_sent"),
      obs::Registry::global().counter("bcc.net.bytes_received"),
      obs::Registry::global().counter("bcc.net.bind_retries"),
      obs::Registry::global().histogram("bcc.net.backoff_ms"),
  };
  return m;
}

}  // namespace bcc::net
