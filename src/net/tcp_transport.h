// TcpTransport — real sockets between real OS processes. One instance hosts
// exactly one node: it listens on the local endpoint, dials one outbound
// connection per peer it sends to, and pumps everything from a single
// poll(2) loop (no threads, no locks — the handler runs on the pump thread).
//
// Connection model (the Derecho p2p-connections shape): connections are
// per-direction. Node A sends its frames only on the connection A dialed to
// B; the connection B dialed to A carries B's frames. An accepted (inbound)
// connection is receive-only except for heartbeat echoes. This keeps peer
// identity trivial (the dialer knows who it called) and makes a dropped
// direction independently recoverable.
//
// Outbound connection state machine:
//
//        send()/heartbeat due                 connect() completes
//   kIdle ----------------> kConnecting -----------------------> kConnected
//     ^                        |  connect fails / times out          |
//     |                        v                                     |
//     +------ backoff done  kBackoff <---- conn drops / heartbeat ---+
//               (dial again)               timeout (half-open)
//
// Backoff is capped exponential with uniform jitter (seeded Rng), recorded
// in bcc.net.backoff_ms; every re-established connection after the first
// counts in bcc.net.reconnects. A connected peer is pinged every
// heartbeat_period; missing all echoes for heartbeat_timeout marks the
// connection half-open (bcc.net.half_open_detected), drops it, and re-dials
// — this is what turns a SIGSTOPped or silently-dead peer into an
// actionable signal instead of an eternally-black socket.
//
// Sends never block: frames queue per peer (bounded by max_queue_bytes)
// while the connection is down or the socket is slow; overflow sheds the
// NEWEST frame (bcc.net.frames_dropped) — gossip retries supersede old
// payloads anyway, so keeping the queue head preserves FIFO per peer.
//
// Fault hooks for the chaos harness: close_listener() refuses new inbound
// connections (existing ones live on) — a listener partition; set_isolated()
// additionally drops every connection and blackholes dials — a full
// partition of this node.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "net/transport.h"

namespace bcc::net {

/// Where a peer listens. Indexed by NodeId in TcpTransportOptions::peers.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct TcpTransportOptions {
  /// The node this process hosts; send() requires from == local.
  NodeId local = 0;
  /// peers[id] is node id's listen endpoint. Must cover every id addressed.
  std::vector<Endpoint> peers;
  double heartbeat_period = 0.5;   ///< seconds between pings per connection
  double heartbeat_timeout = 2.0;  ///< silence before half-open declaration
  double connect_timeout = 1.0;    ///< non-blocking connect() deadline
  double backoff_initial = 0.05;   ///< first reconnect delay, seconds
  double backoff_max = 2.0;        ///< backoff cap, seconds
  double backoff_jitter = 0.3;     ///< +- fraction applied to each backoff
  /// Per-peer queued (unsent) bytes before newest-frame shedding kicks in.
  std::size_t max_queue_bytes = 1 << 20;
  std::uint64_t seed = 1;  ///< jitter rng seed
  /// Rebind attempts when bind() reports EADDRINUSE — a freshly kill -9'd
  /// predecessor leaves the port in TIME_WAIT for a moment even with
  /// SO_REUSEADDR, so chaos harness restarts briefly collide. Retries wait
  /// bind_retry_delay, doubling each attempt; attempts are surfaced as
  /// bcc.net.bind_retries.
  std::size_t bind_retries = 5;
  double bind_retry_delay = 0.05;  ///< first retry wait, seconds (doubles)
};

/// See file comment. Single-threaded: listen(), send(), and poll_once()
/// must all be called from the same thread.
class TcpTransport : public Transport {
 public:
  explicit TcpTransport(TcpTransportOptions options);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Binds + listens on peers[local]. False when the port is taken (the
  /// caller picks a new port base and retries) — any other failure asserts.
  bool listen();

  void set_handler(Handler handler) override { handler_ = std::move(handler); }

  /// Bytes to serve when a collector sends kTelemetryRequest — typically
  /// obs::encode_node_telemetry over the live registry + drained trace
  /// ring. Runs on the pump thread. Unset = telemetry requests are ignored
  /// (the collector's per-node deadline turns that into a skipped node).
  using TelemetryProvider = std::function<std::vector<std::uint8_t>()>;
  void set_telemetry_provider(TelemetryProvider provider) {
    telemetry_provider_ = std::move(provider);
  }

  /// Queues one frame to `to` (never blocks; sheds on overflow). Dials the
  /// peer when no connection exists yet. `from` must be the local node.
  void send(NodeId from, NodeId to, FrameType type,
            std::vector<std::uint8_t> body,
            const obs::TraceContext& trace) override;

  /// Pumps I/O for up to `timeout` seconds (0 = just poll): accepts,
  /// finishes connects, flushes queues, reads + delivers frames, drives
  /// heartbeats and reconnect backoff. Returns frames delivered.
  std::size_t poll_once(double timeout);

  // -- Fault hooks (the supervisor drives these through the node's stdin).
  void close_listener();
  void open_listener();
  /// Isolated: listener closed, all connections dropped, dials blackholed.
  void set_isolated(bool isolated);

  // -- Introspection (tests).
  bool listening() const { return listen_fd_ >= 0; }
  bool connected_to(NodeId peer) const;
  std::size_t queued_bytes(NodeId peer) const;
  NodeId local() const { return options_.local; }

 private:
  enum class ConnState { kIdle, kConnecting, kConnected, kBackoff };

  /// One outbound (dialed) connection and its lifecycle state.
  struct OutConn {
    ConnState state = ConnState::kIdle;
    int fd = -1;
    double deadline = 0.0;      ///< connect timeout / backoff end (mono secs)
    std::size_t attempts = 0;   ///< consecutive failed dials (backoff expo)
    bool was_connected = false; ///< a later success counts as a reconnect
    std::deque<std::vector<std::uint8_t>> queue;  ///< unsent frames, FIFO
    std::size_t queue_bytes = 0;
    std::size_t write_off = 0;  ///< bytes of queue.front() already written
    double last_pong = 0.0;     ///< last heartbeat echo (mono secs)
    double next_ping = 0.0;
    std::uint64_t ping_seq = 0;
    std::vector<std::uint8_t> rbuf;  ///< heartbeat echoes arrive here
  };

  /// One accepted (inbound) connection: receive-only + heartbeat echoes.
  struct InConn {
    int fd = -1;
    std::vector<std::uint8_t> rbuf;
    std::vector<std::uint8_t> wbuf;  ///< pending heartbeat-ack bytes
    std::size_t write_off = 0;
  };

  double mono_now() const;
  void start_dial(NodeId peer, OutConn& c);
  void enter_backoff(NodeId peer, OutConn& c);
  void on_dial_result(NodeId peer, OutConn& c, bool ok);
  void drop_out(OutConn& c);
  /// Drains c.rbuf; returns frames delivered. `out_peer` is the dialed peer
  /// for outbound conns (heartbeat-ack bookkeeping), unset for inbound.
  std::size_t drain_rbuf(std::vector<std::uint8_t>& rbuf, InConn* in,
                         OutConn* out);
  std::size_t deliver_frame(Frame&& f, InConn* in, OutConn* out);
  void flush_out(NodeId peer, OutConn& c);
  void flush_in(InConn& c);
  void drive_heartbeats(double now);

  TcpTransportOptions options_;
  Handler handler_;
  TelemetryProvider telemetry_provider_;
  Rng rng_;
  int listen_fd_ = -1;
  bool listener_wanted_ = false;  ///< reopen after open_listener()
  bool isolated_ = false;
  std::unordered_map<NodeId, OutConn> out_;
  std::vector<InConn> in_;
};

}  // namespace bcc::net
