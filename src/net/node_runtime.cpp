#include "net/node_runtime.h"

#include <fcntl.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/shutdown.h"
#include "data/latency_synth.h"
#include "metric/bandwidth.h"
#include "obs/collect.h"
#include "obs/export.h"
#include "obs/profile.h"
#include "serve/snapshot.h"

namespace bcc::net {

namespace {

double mono_seconds() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

TcpTransportOptions make_tcp_options(const ProcessNodeOptions& o) {
  TcpTransportOptions t;
  t.local = o.id;
  t.peers.resize(o.n_nodes);
  for (std::size_t i = 0; i < o.n_nodes; ++i) {
    t.peers[i].host = o.host;
    t.peers[i].port = static_cast<std::uint16_t>(o.base_port + i);
  }
  // Harness-scale timing: fast enough that a chaos test converges in
  // seconds, slow enough that a loaded 1-cpu CI box is not declared dead.
  t.heartbeat_period = 0.2;
  t.heartbeat_timeout = 1.0;
  t.connect_timeout = 0.5;
  t.backoff_initial = 0.05;
  t.backoff_max = 1.0;
  t.seed = o.world_seed * 7919 + o.id;
  return t;
}

AsyncOverlayOptions make_overlay_options(const ProcessNodeOptions& o,
                                         Transport* transport) {
  AsyncOverlayOptions a;
  a.n_cut = o.n_cut;
  a.gossip_period = o.gossip_period;
  a.period_jitter = 0.2;
  // latency() only feeds ack_timeout_for here (the transport owns real
  // timing); keep it small so the ack timeout is ack_timeout-dominated.
  a.message_latency = 0.01;
  a.ack_timeout = 0.5;
  a.max_retries = 3;
  a.backoff_factor = 2.0;
  a.suspect_after = 2;
  a.transport = transport;
  a.local_node = o.id;
  return a;
}

}  // namespace

NodeWorld make_node_world(std::size_t n, std::uint64_t seed) {
  BCC_REQUIRE(n >= 2);
  Rng rng(seed);
  LatencyOptions lo;
  lo.hosts = n;
  const DistanceMatrix real = synthesize_latency(lo, rng);
  Rng order(seed + 5);
  NodeWorld w{build_framework(real, order), {}, BandwidthClasses({1.0})};
  w.predicted = w.fw.predicted_distances();
  const double dmax = w.predicted.max_distance();
  const double c = kDefaultTransformC;
  w.classes =
      BandwidthClasses({c / dmax, c / (dmax * 0.5), c / (dmax * 0.2)}, c);
  return w;
}

ProcessNode::ProcessNode(ProcessNodeOptions options)
    : options_(std::move(options)),
      world_(make_node_world(options_.n_nodes, options_.world_seed)),
      tcp_(make_tcp_options(options_)),
      overlay_options_(make_overlay_options(options_, &tcp_)),
      overlay_(&world_.fw.anchors, &world_.predicted, &world_.classes,
               overlay_options_, options_.world_seed * 131 + options_.id) {
  BCC_REQUIRE(options_.id < options_.n_nodes);
  BCC_REQUIRE(options_.base_port != 0);
}

bool ProcessNode::bind() { return tcp_.listen(); }

std::string format_node_state(NodeId id, const OverlayNode& node) {
  // The canonical form lives beside OverlayNode so in-process systems can
  // dump the identical wire format (canonical_dump); this wrapper keeps the
  // historical name the supervisor and control protocol use.
  return canonical_node_state(id, node);
}

void ProcessNode::dump_state(std::ostream& out) const {
  out << format_node_state(options_.id, overlay_.nodes().at(options_.id));
}

bool ProcessNode::handle_control_line(const std::string& line,
                                      std::ostream& out) {
  if (line == "quit") {
    quit_ = true;
    out << "ok quit\n";
  } else if (line == "dump") {
    dump_state(out);
  } else if (line.rfind("query ", 0) == 0) {
    std::istringstream in(line.substr(6));
    std::size_t k = 0, class_idx = 0;
    if (in >> k >> class_idx) {
      serve_query(k, class_idx, out);
    } else {
      out << "err " << line << "\n";
    }
  } else if (line == "close-listener") {
    tcp_.close_listener();
    out << "ok close-listener\n";
  } else if (line == "open-listener") {
    tcp_.open_listener();
    out << "ok open-listener\n";
  } else if (line == "isolate") {
    tcp_.set_isolated(true);
    out << "ok isolate\n";
  } else if (line == "deisolate") {
    tcp_.set_isolated(false);
    out << "ok deisolate\n";
  } else if (!line.empty()) {
    out << "err " << line << "\n";
  }
  out.flush();
  return quit_;
}

void ProcessNode::serve_query(std::size_t k, std::size_t class_idx,
                              std::ostream& out) {
  // Snapshot only holds this process's tables; routing that wants a peer's
  // tables stops gracefully and the serving plane flags the answer degraded.
  // A snapshot taken while peers are suspected/down is degraded throughout.
  const auto snap =
      make_snapshot(overlay_.nodes(), world_.predicted, world_.classes, {},
                    ++query_version_, overlay_.healthy());
  const QueryResult r =
      snap->run(QueryRequest::at_class(options_.id, k, class_idx));
  out << "query-result " << to_string(r.status)
      << " degraded=" << (r.degraded ? 1 : 0) << " hops=" << r.hops
      << " size=" << r.cluster.size();
  for (NodeId id : r.cluster) out << ' ' << id;
  out << "\n";
}

int ProcessNode::run(int control_fd, std::ostream& out) {
  if (control_fd >= 0) {
    const int flags = ::fcntl(control_fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(control_fd, F_SETFL, flags | O_NONBLOCK);
  }

  // Telemetry plumbing. Register the spans-dropped counter up front so the
  // collector's merged output always carries it, even at 0.
  obs::spans_dropped_counter();
  if (!options_.flight_recorder.empty()) {
    obs::FlightRecorder::Options fo;
    fo.node = static_cast<std::uint32_t>(options_.id);
    flight_ = obs::FlightRecorder::open(options_.flight_recorder, fo);
    if (flight_ != nullptr) {
      obs::FlightRecorder* fr = flight_.get();
      obs::Tracer::global().set_sink(
          [fr](const obs::SpanRecord& r) { fr->record_span(r); });
    }
  }
  if (options_.trace_gossip || flight_ != nullptr) {
    // Disjoint per-process id ranges make fleet-wide re-parenting exact.
    obs::Tracer::global().seed_ids(
        (static_cast<std::uint64_t>(options_.id) + 1) << 40);
    obs::Tracer::global().enable(obs::SpanCategory::kGossip, true);
  }
  if (options_.profile_hz > 0) {
    obs::SamplingProfiler::Options po;
    po.hz = options_.profile_hz;
    obs::SamplingProfiler::global().start(po);
  }
  tcp_.set_telemetry_provider([this] {
    obs::NodeTelemetry t;
    t.node = static_cast<std::uint32_t>(options_.id);
    t.pid = static_cast<std::uint32_t>(::getpid());
    t.wall_now_us = static_cast<std::uint64_t>(mono_seconds() * 1e6);
    obs::SamplingProfiler& profiler = obs::SamplingProfiler::global();
    if (profiler.running() || profiler.samples() > 0) {
      // Publish bcc.profile.* BEFORE the registry snapshot so the scrape
      // sees counters consistent with the stacks it carries. Truncation to
      // the hottest 32 keeps the TELEMETRY frame small; `bcc collect`
      // re-merges by stack across the fleet.
      profiler.publish_metrics();
      t.profile = profiler.top_stacks(32);
    }
    t.metrics = obs::Registry::global().snapshot();
    // drain(), not snapshot(): successive scrapes stream the ring instead
    // of re-sending (and re-merging) the same spans.
    t.spans = obs::Tracer::global().drain();
    return obs::encode_node_telemetry(t);
  });

  overlay_.start(engine_);
  out << "ready\n";
  out.flush();

  const double t0 = mono_seconds();
  double next_flight_flush = 0.0;
  std::string ctl;
  char buf[4096];
  while (!quit_ && !shutdown_requested()) {
    const double now = mono_seconds() - t0;
    engine_.run_until(now);
    if (options_.run_for > 0.0 && now >= options_.run_for) break;
    if (flight_ != nullptr && now >= next_flight_flush) {
      // Quarter-second cadence: cheap (one registry snapshot + memcpy into
      // the mapped region) and fresh enough that a kill -9 loses at most
      // ~250ms of counter movement.
      const std::vector<std::uint8_t> blob =
          obs::encode_node_metrics(obs::Registry::global().snapshot());
      flight_->record_metrics(blob.data(), blob.size());
      next_flight_flush = now + 0.25;
    }
    // Sleep in poll until the next engine timer (capped so control lines
    // and heartbeats stay responsive on an otherwise-idle node).
    double timeout = 0.02;
    const SimTime next = engine_.next_event_time();
    if (next != kNoNextEvent) {
      timeout = std::clamp(next - (mono_seconds() - t0), 0.0, 0.02);
    }
    tcp_.poll_once(timeout);
    if (control_fd >= 0) {
      while (true) {
        const ssize_t n = ::read(control_fd, buf, sizeof(buf));
        if (n <= 0) break;
        ctl.append(buf, static_cast<std::size_t>(n));
      }
      std::size_t nl;
      while ((nl = ctl.find('\n')) != std::string::npos) {
        const std::string line = ctl.substr(0, nl);
        ctl.erase(0, nl + 1);
        handle_control_line(line, out);
      }
    }
  }

  // Orderly drain: final state + metrics flush, then exit 0 — SIGTERM'd
  // nodes look exactly like quit nodes to the supervisor.
  if (options_.profile_hz > 0) {
    obs::SamplingProfiler::global().stop();
    obs::SamplingProfiler::global().publish_metrics();
  }
  if (flight_ != nullptr) {
    obs::Tracer::global().clear_sink();  // before the recorder unmaps
    const std::vector<std::uint8_t> blob =
        obs::encode_node_metrics(obs::Registry::global().snapshot());
    flight_->record_metrics(blob.data(), blob.size());
  }
  if (!options_.state_out.empty()) {
    std::ostringstream state;
    dump_state(state);
    obs::write_text_file(options_.state_out, state.str());
  }
  if (!options_.metrics_out.empty()) {
    obs::write_text_file(options_.metrics_out,
                         obs::json_object(obs::Registry::global().snapshot()) +
                             "\n");
  }
  return 0;
}

}  // namespace bcc::net
