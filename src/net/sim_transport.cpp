#include "net/sim_transport.h"

#include <memory>
#include <utility>

namespace bcc::net {

namespace {

/// MessageMetrics label per frame type (the chaos/overlay tests key on the
/// same "async_gossip"/"async_ack" labels the pre-Transport overlay used).
const char* metrics_label(FrameType type) {
  switch (type) {
    case FrameType::kExchange: return "async_gossip";
    case FrameType::kAck: return "async_ack";
    case FrameType::kHeartbeat:
    case FrameType::kHeartbeatAck: return "net_heartbeat";
    case FrameType::kTelemetryRequest:
    case FrameType::kTelemetry: return "net_telemetry";
  }
  return "net_frame";
}

}  // namespace

SimTransport::SimTransport(EventEngine* engine, FaultPlan* plan,
                           LatencyFn latency)
    : channel_(engine, plan), latency_(std::move(latency)) {
  BCC_REQUIRE(latency_ != nullptr);
}

void SimTransport::send(NodeId from, NodeId to, FrameType type,
                        std::vector<std::uint8_t> body,
                        const obs::TraceContext& trace) {
  BCC_REQUIRE(handler_ != nullptr);
  std::vector<std::uint8_t> wire = encode_frame(type, from, to, trace, body);
  NetMetrics& net = NetMetrics::global();
  net.frames_sent.add();
  net.bytes_sent.add(wire.size());
  channel_.engine().metrics().record(metrics_label(type), wire.size());
  // The bytes ride the closure; the TraceContext rides the channel so the
  // fault layer's conservation counters (contexts_dropped etc.) still see
  // it. Decoding happens per delivery: a duplicated message is decoded
  // twice, exactly like two arrivals of the same bytes on a socket.
  channel_.send(
      from, to, latency_(from, to), trace,
      [this, wire = std::move(wire)](const obs::TraceContext& ctx) {
        DecodeResult r = decode_frame(wire.data(), wire.size());
        BCC_ASSERT(r.status == DecodeStatus::kOk);
        NetMetrics& m = NetMetrics::global();
        m.frames_received.add();
        m.bytes_received.add(wire.size());
        Delivery d;
        d.from = r.frame.src;
        d.to = r.frame.dst;
        d.type = r.frame.type;
        d.trace = ctx;  // the channel's copy (dup deliveries share it)
        d.body = std::move(r.frame.body);
        handler_(d);
      });
}

}  // namespace bcc::net
