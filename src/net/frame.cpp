#include "net/frame.h"

#include <cstring>

#include "common/assert.h"

namespace bcc::net {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

std::uint32_t checked_u32(std::size_t v) {
  BCC_REQUIRE(v <= 0xffffffffu);
  return static_cast<std::uint32_t>(v);
}

}  // namespace

void append_frame(std::vector<std::uint8_t>& out, FrameType type, NodeId src,
                  NodeId dst, const obs::TraceContext& trace,
                  const std::uint8_t* body, std::size_t body_len) {
  const std::size_t payload_len = obs::kTraceContextWireBytes + body_len;
  BCC_REQUIRE(payload_len <= kMaxFramePayload);
  out.reserve(out.size() + kFrameHeaderBytes + payload_len);
  put_u32(out, kFrameMagic);
  out.push_back(kWireVersionMajor);
  out.push_back(kWireVersionMinor);
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(0);  // flags
  put_u32(out, checked_u32(src));
  put_u32(out, checked_u32(dst));
  put_u32(out, checked_u32(payload_len));
  put_u64(out, trace.trace_id);
  put_u64(out, trace.parent_span);
  put_u32(out, trace.hop);
  if (body_len != 0) out.insert(out.end(), body, body + body_len);
}

DecodeResult decode_frame(const std::uint8_t* data, std::size_t len) {
  DecodeResult r;
  if (len < kFrameHeaderBytes) return r;  // kNeedMore
  if (get_u32(data) != kFrameMagic) {
    r.status = DecodeStatus::kBadMagic;
    return r;
  }
  const std::uint32_t payload_len = get_u32(data + 16);
  if (payload_len > kMaxFramePayload ||
      payload_len < obs::kTraceContextWireBytes) {
    r.status = DecodeStatus::kTooLarge;
    return r;
  }
  if (len < kFrameHeaderBytes + payload_len) return r;  // kNeedMore
  r.consumed = kFrameHeaderBytes + payload_len;
  if (data[4] != kWireVersionMajor) {
    // Unknown major: length is still trustworthy (fixed offsets across
    // majors, see header comment) — skip the frame, let the caller count it.
    r.status = DecodeStatus::kBadVersion;
    return r;
  }
  r.status = DecodeStatus::kOk;
  Frame& f = r.frame;
  f.ver_major = data[4];
  f.ver_minor = data[5];
  f.type = static_cast<FrameType>(data[6]);
  f.src = get_u32(data + 8);
  f.dst = get_u32(data + 12);
  f.trace.trace_id = get_u64(data + 20);
  f.trace.parent_span = get_u64(data + 28);
  f.trace.hop = get_u32(data + 36);
  const std::uint8_t* body = data + kFrameHeaderBytes +
                             obs::kTraceContextWireBytes;
  f.body.assign(body, body + (payload_len - obs::kTraceContextWireBytes));
  return r;
}

std::vector<std::uint8_t> encode_exchange(const ExchangePayload& p) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + 4 + 4 * p.prop_node.size() + 4 + 4 * p.prop_crt.size());
  put_u64(out, p.exchange);
  put_u32(out, checked_u32(p.prop_node.size()));
  for (NodeId id : p.prop_node) put_u32(out, checked_u32(id));
  put_u32(out, checked_u32(p.prop_crt.size()));
  for (std::size_t s : p.prop_crt) put_u32(out, checked_u32(s));
  return out;
}

bool decode_exchange(const std::uint8_t* body, std::size_t len,
                     ExchangePayload& out) {
  std::size_t off = 0;
  auto need = [&](std::size_t n) {
    if (len - off < n) return false;
    return true;
  };
  if (!need(12)) return false;
  out.exchange = get_u64(body);
  off = 8;
  const std::uint32_t n_node = get_u32(body + off);
  off += 4;
  if (!need(4 * static_cast<std::size_t>(n_node) + 4)) return false;
  out.prop_node.resize(n_node);
  for (std::uint32_t i = 0; i < n_node; ++i, off += 4) {
    out.prop_node[i] = get_u32(body + off);
  }
  const std::uint32_t n_crt = get_u32(body + off);
  off += 4;
  if (!need(4 * static_cast<std::size_t>(n_crt))) return false;
  out.prop_crt.resize(n_crt);
  for (std::uint32_t i = 0; i < n_crt; ++i, off += 4) {
    out.prop_crt[i] = get_u32(body + off);
  }
  return off == len;  // trailing garbage = corrupt
}

std::vector<std::uint8_t> encode_u64(std::uint64_t v) {
  std::vector<std::uint8_t> out;
  put_u64(out, v);
  return out;
}

bool decode_u64(const std::uint8_t* body, std::size_t len,
                std::uint64_t& out) {
  if (len != 8) return false;
  out = get_u64(body);
  return true;
}

std::vector<std::uint8_t> encode_telemetry_body(
    std::uint64_t request_id, const std::vector<std::uint8_t>& telemetry) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + telemetry.size());
  put_u64(out, request_id);
  out.insert(out.end(), telemetry.begin(), telemetry.end());
  return out;
}

bool decode_telemetry_body(const std::uint8_t* body, std::size_t len,
                           std::uint64_t& request_id,
                           std::vector<std::uint8_t>& telemetry) {
  if (len < 8) return false;
  request_id = get_u64(body);
  telemetry.assign(body + 8, body + len);
  return true;
}

}  // namespace bcc::net
