// The transport seam carved out of FaultyChannel/AsyncOverlay (ROADMAP open
// item 1): protocol code addresses peers by NodeId and exchanges typed,
// byte-serialized frames; *how* those bytes move is an implementation:
//
//   * SimTransport (net/sim_transport.h) — the deterministic in-sim path,
//     an adapter over FaultyChannel + EventEngine. Seeded chaos replay is
//     preserved: the same sends consult the same FaultPlan rng in the same
//     order as before the refactor.
//   * TcpTransport (net/tcp_transport.h) — real sockets between real OS
//     processes, with reconnect/backoff, heartbeats, half-open detection
//     and bounded send queues. This is where honest chaos (kill -9, SIGSTOP,
//     listener-close partitions) becomes testable.
//
// A Transport delivers frames through one registered handler; Delivery.to
// says which node the frame addresses (the sim hosts every node in one
// process, a TcpTransport hosts exactly one). Handlers run on the thread
// that pumps the transport — the sim event loop or the process node's pump
// loop — so protocol state needs no locking.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/frame.h"
#include "obs/metrics.h"

namespace bcc::net {

/// One frame handed to the protocol layer (body already length-checked and
/// version-checked by the transport).
struct Delivery {
  NodeId from = 0;
  NodeId to = 0;
  FrameType type = FrameType::kExchange;
  obs::TraceContext trace;
  std::vector<std::uint8_t> body;
};

/// See file comment.
class Transport {
 public:
  using Handler = std::function<void(const Delivery&)>;

  virtual ~Transport() = default;

  /// Registers the single delivery handler (replacing any previous one).
  /// Must be set before the first delivery can happen.
  virtual void set_handler(Handler handler) = 0;

  /// Queues one frame from `from` to `to`. Never blocks: a transport that
  /// cannot send now queues (bounded) or sheds (counted in
  /// bcc.net.frames_dropped). Ordering is per-peer FIFO on the TCP path and
  /// fault-plan-scheduled on the sim path.
  virtual void send(NodeId from, NodeId to, FrameType type,
                    std::vector<std::uint8_t> body,
                    const obs::TraceContext& trace) = 0;
};

/// The bcc.net.* instrument set, registered once against the global
/// registry and cached (hot sends must not take the registry mutex).
struct NetMetrics {
  obs::Counter& frames_sent;
  obs::Counter& frames_received;
  obs::Counter& frames_dropped;           ///< shed: queue overflow / no route
  obs::Counter& frames_rejected_version;  ///< unknown-major frames skipped
  obs::Counter& frames_corrupt;           ///< undecodable bodies / bad magic
  obs::Counter& reconnects;               ///< re-established outbound conns
  obs::Counter& half_open_detected;       ///< heartbeat-timeout conn drops
  obs::Counter& bytes_sent;
  obs::Counter& bytes_received;
  obs::Counter& bind_retries;             ///< listener rebinds on EADDRINUSE
  obs::Histogram& backoff_ms;             ///< reconnect backoff waits

  static NetMetrics& global();
};

}  // namespace bcc::net
