// ProcessNode — one overlay node as a real OS process (`bcc node`). Every
// process deterministically rebuilds the SAME world (latency dataset →
// prediction framework → anchor tree → bandwidth classes) from the shared
// (n_nodes, world_seed) pair, then hosts exactly its own node: an
// AsyncOverlay in local mode whose frames ride a TcpTransport to the peer
// processes listening on base_port + id.
//
// The event engine is pumped against the wall clock: SimTime 1.0 == one
// real second. Each loop iteration fires the timers that came due, then
// sleeps in poll(2) until the next timer or socket readiness — no busy
// waiting, no threads.
//
// Control protocol (stdin lines, answered on stdout) — this is how the
// supervisor (net/supervisor.h) drives fault scenarios and scrapes state:
//
//   ready                 <- printed once listening (supervisor waits for it)
//   bind-failed           <- printed + exit 3 when the port is taken
//   dump\n                -> state-begin <id> / crt|node lines / state-end
//   query <k> <class>\n   -> query-result <status> degraded=<0|1> hops=<h>
//                            size=<n> [ids...] — served from a snapshot of
//                            the local tables; degraded while peers are down
//   close-listener\n      -> ok close-listener   (partition: refuse inbound)
//   open-listener\n       -> ok open-listener
//   isolate\n             -> ok isolate           (full partition)
//   deisolate\n           -> ok deisolate
//   quit\n                -> ok quit, then a clean drain + exit 0
//
// SIGTERM/SIGINT behave like quit: drain, flush --metrics-out, exit 0.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "core/async_overlay.h"
#include "net/tcp_transport.h"
#include "obs/flight.h"
#include "tree/embedder.h"

namespace bcc::net {

/// The deterministic world every node process rebuilds from (n, seed).
struct NodeWorld {
  Framework fw;
  DistanceMatrix predicted;
  BandwidthClasses classes;
};

/// Same construction in every process — and in the supervisor, which uses
/// it to compute the synchronous ground-truth fixpoint the survivors must
/// reach. Requires n >= 2.
NodeWorld make_node_world(std::size_t n, std::uint64_t seed);

/// Canonical textual form of one node's tables (state-begin/crt/node/
/// state-end, keys and id vectors sorted). Both the `dump` control reply
/// and the supervisor's ground-truth rendering use this, so convergence
/// checks are exact string equality.
std::string format_node_state(NodeId id, const OverlayNode& node);

struct ProcessNodeOptions {
  NodeId id = 0;
  std::size_t n_nodes = 5;
  std::uint64_t world_seed = 1;
  std::size_t n_cut = 5;
  /// Wall seconds between gossip rounds (SimTime == real seconds here).
  double gossip_period = 0.05;
  std::uint16_t base_port = 0;  ///< node i listens on base_port + i
  std::string host = "127.0.0.1";
  /// Stop after this many wall seconds; 0 = run until quit/signal.
  double run_for = 0.0;
  /// Flushed on exit when non-empty (metrics registry JSON).
  std::string metrics_out;
  /// Final state dump written here on exit when non-empty.
  std::string state_out;
  /// When non-empty: mmap-backed crash flight recorder (obs/flight.h) at
  /// this path — every completed span and a periodic metrics snapshot are
  /// written crash-consistently, so a kill -9 still leaves evidence.
  /// Implies trace_gossip.
  std::string flight_recorder;
  /// Enable gossip-category tracing (spans feed the telemetry endpoint and
  /// the flight recorder). The tracer's id space is seeded per process
  /// ((id + 1) << 40) so span ids never collide across the fleet.
  bool trace_gossip = false;
  /// Sampling-profiler rate in Hz (0 = off). When on, the node arms the
  /// process-wide SIGPROF sampler (obs/profile.h) for its whole run and the
  /// telemetry endpoint carries its hottest folded stacks, so `bcc collect`
  /// can answer "where is the fleet burning CPU" without touching a node.
  int profile_hz = 0;
};

/// See file comment.
class ProcessNode {
 public:
  explicit ProcessNode(ProcessNodeOptions options);

  /// Binds the listener. False on port collision (caller re-rolls the base
  /// port; `bcc node` prints "bind-failed" and exits 3).
  bool bind();

  /// Runs the pump loop until quit/signal/run_for. Control lines are read
  /// from `control_fd` (non-blocking; -1 disables control). Responses and
  /// the ready line go to `out`. Returns the process exit code.
  int run(int control_fd, std::ostream& out);

  /// Writes the local node's tables in the dump wire form (sorted, exact —
  /// what the supervisor compares against the sync fixpoint).
  void dump_state(std::ostream& out) const;

  const AsyncOverlay& overlay() const { return overlay_; }
  TcpTransport& transport() { return tcp_; }

 private:
  bool handle_control_line(const std::string& line, std::ostream& out);
  /// Serves one (k, class) query from a snapshot of the local tables via
  /// the serving plane (serve/snapshot.h). Answers stay well-formed while
  /// peers are down — the result is just flagged degraded.
  void serve_query(std::size_t k, std::size_t class_idx, std::ostream& out);

  ProcessNodeOptions options_;
  NodeWorld world_;
  TcpTransport tcp_;
  AsyncOverlayOptions overlay_options_;
  AsyncOverlay overlay_;
  EventEngine engine_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  bool quit_ = false;
  std::uint64_t query_version_ = 0;
};

}  // namespace bcc::net
