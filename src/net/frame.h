// Versioned, length-prefixed wire format for gossip frames — the one
// serialization both transports share. SimTransport moves these bytes
// through the deterministic FaultyChannel; TcpTransport writes them onto a
// real socket, so two processes built from different minor revisions can
// interoperate and a rolling restart across a *major* bump degrades to a
// counted rejection (bcc.net.frames_rejected_version) instead of a crash.
//
// Frame layout (little-endian, kFrameHeaderBytes fixed header):
//
//   offset  size  field
//        0     4  magic 0x42434346 ("FCCB" on disk, spells BCCF)
//        4     1  version major   (reject when != kWireVersionMajor)
//        5     1  version minor   (additive changes only; never reject)
//        6     1  frame type      (FrameType)
//        7     1  flags           (reserved, 0)
//        8     4  src node id
//       12     4  dst node id
//       16     4  payload length  (bytes after the header)
//   then payload:
//       20    20  TraceContext    (trace_id u64 | parent_span u64 | hop u32,
//                                  the exact kTraceContextWireBytes layout
//                                  from obs/trace.h; all-zero = untraced)
//       40     *  body            (per-type codec below)
//
// The header keeps magic/version/length at fixed offsets across ALL major
// versions, so a decoder can always skip a frame it refuses to interpret —
// that is what makes heterogeneous node versions safe during rolling
// restarts (the Rehn-Sonigo placement setting, PAPERS.md).
//
// Body codecs:
//   kExchange     exchange u64 | n_node u32 | node ids u32[n_node]
//                 | n_crt u32 | crt sizes u32[n_crt]
//   kAck          exchange u64
//   kHeartbeat    sequence u64
//   kHeartbeatAck sequence u64 (echo)
//   kTelemetryRequest  request id u64
//   kTelemetry    request id u64 | encoded NodeTelemetry (obs/collect.h
//                 codec — the frame layer treats it as opaque bytes)
#pragma once

#include <cstdint>
#include <vector>

#include "metric/distance_matrix.h"  // NodeId
#include "obs/trace.h"

namespace bcc::net {

inline constexpr std::uint32_t kFrameMagic = 0x42434346u;  // "BCCF"
inline constexpr std::uint8_t kWireVersionMajor = 1;
// Minor 1: TELEMETRY request/response frames (additive — a minor-0 peer
// ignores the new types, it never rejects them).
inline constexpr std::uint8_t kWireVersionMinor = 1;
inline constexpr std::size_t kFrameHeaderBytes = 20;
/// Refuse anything bigger — a corrupt length must not allocate gigabytes.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

/// What a frame carries. Values are wire contract — append only.
enum class FrameType : std::uint8_t {
  kExchange = 1,      ///< gossip exchange (prop_node + prop_crt tables)
  kAck = 2,           ///< exchange acknowledged by the receiver
  kHeartbeat = 3,     ///< liveness ping on an outbound connection
  kHeartbeatAck = 4,  ///< ping echo (half-open detection watches for these)
  kTelemetryRequest = 5,  ///< collector asks for a metrics+trace snapshot
  kTelemetry = 6,         ///< snapshot reply (request id + telemetry bytes)
};

constexpr const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kExchange: return "exchange";
    case FrameType::kAck: return "ack";
    case FrameType::kHeartbeat: return "heartbeat";
    case FrameType::kHeartbeatAck: return "heartbeat_ack";
    case FrameType::kTelemetryRequest: return "telemetry_request";
    case FrameType::kTelemetry: return "telemetry";
  }
  return "?";
}

/// One decoded frame, header fields flattened.
struct Frame {
  std::uint8_t ver_major = kWireVersionMajor;
  std::uint8_t ver_minor = kWireVersionMinor;
  FrameType type = FrameType::kExchange;
  NodeId src = 0;
  NodeId dst = 0;
  obs::TraceContext trace;
  std::vector<std::uint8_t> body;
};

/// Serializes one frame (current wire version) and appends it to `out`.
/// Node ids and body length must fit their u32 wire fields (BCC_REQUIRE).
void append_frame(std::vector<std::uint8_t>& out, FrameType type, NodeId src,
                  NodeId dst, const obs::TraceContext& trace,
                  const std::uint8_t* body, std::size_t body_len);

inline std::vector<std::uint8_t> encode_frame(
    FrameType type, NodeId src, NodeId dst, const obs::TraceContext& trace,
    const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> out;
  append_frame(out, type, src, dst, trace, body.data(), body.size());
  return out;
}

/// Total bytes `append_frame` emits for a body of `body_len` bytes.
inline constexpr std::size_t frame_wire_bytes(std::size_t body_len) {
  return kFrameHeaderBytes + obs::kTraceContextWireBytes + body_len;
}

enum class DecodeStatus : std::uint8_t {
  kOk = 0,          ///< one frame decoded; `consumed` bytes eaten
  kNeedMore = 1,    ///< prefix of a valid frame; read more bytes
  kBadMagic = 2,    ///< stream corrupt / not a bcc peer: drop the connection
  kBadVersion = 3,  ///< unknown MAJOR version; `consumed` skips the frame
  kTooLarge = 4,    ///< declared payload over kMaxFramePayload: drop the conn
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  /// Bytes to consume from the stream (0 unless kOk / kBadVersion).
  std::size_t consumed = 0;
  Frame frame;  ///< valid only when status == kOk
};

/// Decodes the first frame in `data`. kBadVersion still reports `consumed`
/// (header + declared payload) so the stream re-synchronizes on the next
/// frame — an unknown-major peer is skipped and counted, never fatal.
DecodeResult decode_frame(const std::uint8_t* data, std::size_t len);

// -- Body codecs -----------------------------------------------------------

/// kExchange body: one gossip exchange from `src` toward `dst`.
struct ExchangePayload {
  std::uint64_t exchange = 0;            ///< ack-matching id
  std::vector<NodeId> prop_node;         ///< Algorithm 2 propNode
  std::vector<std::size_t> prop_crt;     ///< Algorithm 3 propCRT
};

std::vector<std::uint8_t> encode_exchange(const ExchangePayload& p);
/// False on truncated/corrupt bodies (caller counts and drops the frame).
bool decode_exchange(const std::uint8_t* body, std::size_t len,
                     ExchangePayload& out);

/// kAck / kHeartbeat / kHeartbeatAck / kTelemetryRequest body: a single u64.
std::vector<std::uint8_t> encode_u64(std::uint64_t v);
bool decode_u64(const std::uint8_t* body, std::size_t len, std::uint64_t& out);

/// kTelemetry body: the echoed request id followed by opaque telemetry
/// bytes (obs/collect.h's encode_node_telemetry output — the frame layer
/// never interprets them, so the telemetry format can evolve without a
/// wire version bump).
std::vector<std::uint8_t> encode_telemetry_body(
    std::uint64_t request_id, const std::vector<std::uint8_t>& telemetry);
bool decode_telemetry_body(const std::uint8_t* body, std::size_t len,
                           std::uint64_t& request_id,
                           std::vector<std::uint8_t>& telemetry);

}  // namespace bcc::net
