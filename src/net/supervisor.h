// ProcessSupervisor — spawns an N-process `bcc node` cluster over real
// sockets and delivers HONEST faults: kill -9 (no cleanup, no goodbye),
// SIGSTOP/SIGCONT stalls (the process is alive but the world moves on),
// listener-close / full-isolation partitions (driven through the node's
// stdin control protocol), and SIGTERM drains (exit 0 expected).
//
// Convergence is asserted the same way the in-sim chaos suite does it:
// the supervisor rebuilds the identical world from (n, world_seed), runs
// the synchronous DecentralizedClusterSystem to its fixpoint, renders each
// node's ground-truth tables with format_node_state(), and compares the
// live `dump` replies by string equality — exact fixpoint, not "close".
//
// Port allocation: the base port is derived from the supervisor pid; when
// any child reports bind-failed (exit 3) the whole cluster is torn down and
// respawned on a re-rolled base — safe under parallel CI harnesses.
//
// run_scenario() packages the canned chaos scenarios shared by the
// transport_chaos_test gtest and the `proc_supervisor` CLI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metric/distance_matrix.h"  // NodeId
#include "obs/collect.h"

namespace bcc::net {

struct SupervisorOptions {
  std::size_t n = 5;
  std::uint64_t world_seed = 1;
  std::size_t n_cut = 5;
  double gossip_period = 0.05;  ///< wall seconds between child gossip rounds
  std::string bcc_bin;          ///< path to the `bcc` binary (required)
  double converge_deadline = 45.0;  ///< seconds to reach the exact fixpoint
  bool verbose = false;             ///< narrate to stderr
  /// Directory for child --metrics-out files ("" = none written).
  std::string metrics_dir;
  /// When non-empty: children run with gossip tracing + an mmap flight
  /// recorder at <flight_dir>/node<id>.flight, and collect() augments the
  /// scraped fleet with dead nodes' on-disk rings.
  std::string flight_dir;
  /// When non-empty: scenarios that collect telemetry write the merged
  /// Perfetto timeline + fleet metrics JSON artifacts into this directory.
  std::string telemetry_out;
};

/// See file comment. Not thread-safe; one instance drives one cluster.
class ProcessSupervisor {
 public:
  explicit ProcessSupervisor(SupervisorOptions options);
  ~ProcessSupervisor();  // SIGKILLs and reaps anything still running

  ProcessSupervisor(const ProcessSupervisor&) = delete;
  ProcessSupervisor& operator=(const ProcessSupervisor&) = delete;

  /// Spawns all n children and waits for every "ready". Re-rolls the port
  /// base and restarts the cluster on bind collisions. False on failure
  /// (see last_error()).
  bool start_cluster();

  /// (Re)spawns node `id` on the current port base and waits for "ready".
  bool spawn(NodeId id);

  // -- Honest faults.
  void kill_hard(NodeId id);  ///< SIGKILL + reap: a cold, wordless death
  void sigstop(NodeId id);
  void sigcont(NodeId id);
  /// SIGTERM then wait up to `deadline` seconds; returns the exit code
  /// (-1: timeout/still running, -2: killed by a signal).
  int sigterm_wait(NodeId id, double deadline);

  /// Sends a control verb ("isolate", "close-listener", ...) and waits for
  /// its "ok <verb>" reply.
  bool send_cmd(NodeId id, const std::string& verb, double deadline);

  /// Requests and parses one state dump (state-begin..state-end inclusive).
  bool dump(NodeId id, std::string& state, double deadline);

  /// Submits `query <k> <class>` to node id and captures its one-line
  /// "query-result ..." reply. False on timeout/dead node.
  bool query(NodeId id, std::size_t k, std::size_t class_idx,
             std::string& reply, double deadline);

  bool alive(NodeId id) const;
  /// Canonical fixpoint text for node id (computed once, cached).
  const std::string& ground_truth(NodeId id);
  /// Polls dumps until every listed node matches its ground truth exactly.
  bool wait_converged(const std::vector<NodeId>& ids, double deadline);
  /// Reads node id's --metrics-out file and extracts an integer counter
  /// ("bcc.net.reconnects" etc.). -1 when file/counter is missing. Only
  /// meaningful after the node exited (metrics flush on drain).
  long long metrics_counter(NodeId id, const std::string& name) const;

  /// Scrapes every live node's telemetry endpoint (per-node timeout, so a
  /// node dying mid-scrape costs bounded time and yields a partial fleet,
  /// never a hang), then — when flight_dir is set — recovers any missing
  /// node from its on-disk flight ring. Appends to *fleet; returns how
  /// many entries were added.
  std::size_t collect(double per_node_timeout,
                      std::vector<obs::NodeTelemetry>* fleet);

  /// Writes <dir>/fleet_trace.json (merged clock-aligned Perfetto timeline)
  /// and <dir>/fleet_metrics.json (merged registry) for a collected fleet.
  static bool write_fleet_artifacts(
      const std::vector<obs::NodeTelemetry>& fleet, const std::string& dir);

  std::uint16_t base_port() const { return base_port_; }
  const std::string& last_error() const { return last_error_; }

 private:
  struct Child {
    pid_t pid = -1;
    int in = -1;   ///< write end: child's stdin
    int out = -1;  ///< read end: child's stdout
    std::string rbuf;
  };

  void close_child(Child& c);
  void kill_all();
  bool read_line(Child& c, std::string& line, double deadline);
  std::string metrics_path(NodeId id) const;
  std::string flight_path(NodeId id) const;
  bool fail(const std::string& message);

  SupervisorOptions options_;
  std::uint16_t base_port_ = 0;
  std::vector<Child> children_;
  std::vector<std::string> truth_;  ///< per-node ground-truth text (lazy)
  std::string last_error_;
};

/// Runs one canned chaos scenario; "" on success, else a failure message.
///   converge        5 nodes reach the exact sync fixpoint over TCP
///   kill-rejoin     kill -9 a 2-node minority mid-convergence; survivors
///                   answer; cold restarts rejoin; exact fixpoint again
///   partition-heal  close-listener + isolate one node; peers declare the
///                   conns half-open; heal; exact fixpoint; reconnects > 0
///   stall-resume    SIGSTOP one node past the heartbeat timeout; SIGCONT;
///                   exact fixpoint again
///   drain           SIGTERM every node; all exit 0 with metrics flushed
///   kill-collect    (needs flight_dir) kill -9 one node mid-gossip, scrape
///                   the survivors, recover the victim's spans from its
///                   flight ring, and verify the merged timeline contains a
///                   causal cross-process send->receive chain with the
///                   victim on one end; writes artifacts to telemetry_out
///   overhead        (needs metrics_dir) gossip throughput A/B: a timed
///                   window without telemetry scraping vs one scraped every
///                   0.5s; reports the relative delta on stderr (the <2%
///                   budget recorded in EXPERIMENTS.md)
std::string run_scenario(const std::string& name, SupervisorOptions options);

}  // namespace bcc::net
