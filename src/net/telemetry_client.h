// Collector-side scrape client: dials a node's listen endpoint, sends one
// kTelemetryRequest frame, and reads back the kTelemetry reply — all under
// a hard per-node deadline. The node side is the TcpTransport telemetry
// provider (the reply rides the same inbound connection, like heartbeat
// echoes), so scraping needs no new listener anywhere.
//
// The deadline is the deflake contract: a scrape racing a node's SIGTERM
// drain (or a kill -9 corpse whose port still accepts nothing) fails fast
// with `false` instead of hanging, and the collector reports a well-formed
// partial fleet — tests/collect_test.cpp pins both the timeout and the
// partial-fleet shape.
#pragma once

#include <vector>

#include "net/tcp_transport.h"  // Endpoint
#include "obs/collect.h"

namespace bcc::net {

/// Scrapes one node: connect + request + reply, each phase bounded by what
/// remains of `timeout_s` (wall seconds). Returns false on refused/dead/
/// slow/garbage peers; *out is untouched on failure.
bool scrape_node(const Endpoint& endpoint, double timeout_s,
                 obs::NodeTelemetry* out);

/// Scrapes every endpoint in turn (per-node timeout, so a dead node costs
/// one timeout, not the whole budget times out). Appends successes to
/// *fleet and returns how many nodes answered.
std::size_t scrape_fleet(const std::vector<Endpoint>& endpoints,
                         double per_node_timeout_s,
                         std::vector<obs::NodeTelemetry>* fleet);

}  // namespace bcc::net
