// Small 2-D geometry helpers for the Euclidean k-diameter baseline.
#pragma once

#include <cmath>
#include <vector>

namespace bcc {

struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

inline double dist2d(const Point2& a, const Point2& b) {
  const double dx = a.x - b.x, dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Signed area of triangle (a, b, c): > 0 if c lies to the left of a→b,
/// < 0 to the right, 0 if colinear.
inline double orient2d(const Point2& a, const Point2& b, const Point2& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

}  // namespace bcc
