#include "euclid/kdiameter.h"

#include <algorithm>

#include "common/assert.h"

namespace bcc {
namespace {

/// Lens membership and bipartite split for one candidate diameter pair.
struct LensSplit {
  std::vector<NodeId> side_a;  // strictly left of line p→q
  std::vector<NodeId> side_b;  // strictly right
  std::vector<NodeId> free;    // colinear (on segment pq): conflict-free
};

LensSplit build_lens(const std::vector<Point2>& points, NodeId p, NodeId q,
                     double d_pq) {
  LensSplit out;
  for (NodeId x = 0; x < points.size(); ++x) {
    if (x == p || x == q) continue;
    if (dist2d(points[x], points[p]) > d_pq) continue;
    if (dist2d(points[x], points[q]) > d_pq) continue;
    const double o = orient2d(points[p], points[q], points[x]);
    if (o > 0.0) {
      out.side_a.push_back(x);
    } else if (o < 0.0) {
      out.side_b.push_back(x);
    } else {
      // Colinear lens points lie on segment pq, hence within d_pq of every
      // other lens point: never in conflict.
      out.free.push_back(x);
    }
  }
  return out;
}

/// Maximum cluster achievable for the pair (p, q): {p, q} ∪ free ∪ MIS of
/// the cross-line conflict graph (conflict = distance > l).
Cluster best_cluster_for_pair(const std::vector<Point2>& points, NodeId p,
                              NodeId q, double l) {
  const double d_pq = dist2d(points[p], points[q]);
  const LensSplit lens = build_lens(points, p, q, d_pq);

  BipartiteGraph g(lens.side_a.size(), lens.side_b.size());
  for (std::size_t i = 0; i < lens.side_a.size(); ++i) {
    for (std::size_t j = 0; j < lens.side_b.size(); ++j) {
      if (dist2d(points[lens.side_a[i]], points[lens.side_b[j]]) > l) {
        g.add_edge(i, j);
      }
    }
  }
  const IndependentSet mis = maximum_independent_set(g);

  Cluster cluster = {p, q};
  cluster.insert(cluster.end(), lens.free.begin(), lens.free.end());
  for (std::size_t i = 0; i < lens.side_a.size(); ++i) {
    if (mis.left[i]) cluster.push_back(lens.side_a[i]);
  }
  for (std::size_t j = 0; j < lens.side_b.size(); ++j) {
    if (mis.right[j]) cluster.push_back(lens.side_b[j]);
  }
  return cluster;
}

}  // namespace

std::optional<Cluster> find_cluster_euclidean(const std::vector<Point2>& points,
                                              std::size_t k, double l,
                                              bool tightest_first) {
  BCC_REQUIRE(k >= 2);
  BCC_REQUIRE(l >= 0.0);
  const std::size_t n = points.size();
  if (k > n) return std::nullopt;
  struct PairEntry {
    double dist;
    NodeId p, q;
  };
  std::vector<PairEntry> pairs;
  for (NodeId p = 0; p < n; ++p) {
    for (NodeId q = p + 1; q < n; ++q) {
      const double d_pq = dist2d(points[p], points[q]);
      if (d_pq <= l) pairs.push_back(PairEntry{d_pq, p, q});
    }
  }
  if (tightest_first) {
    std::sort(pairs.begin(), pairs.end(),
              [](const PairEntry& a, const PairEntry& b) {
                if (a.dist != b.dist) return a.dist < b.dist;
                if (a.p != b.p) return a.p < b.p;
                return a.q < b.q;
              });
  }
  for (const PairEntry& pair : pairs) {
    Cluster c = best_cluster_for_pair(points, pair.p, pair.q, l);
    if (c.size() >= k) {
      c.resize(k);
      return c;
    }
  }
  return std::nullopt;
}

std::size_t max_cluster_size_euclidean(const std::vector<Point2>& points,
                                       double l) {
  BCC_REQUIRE(l >= 0.0);
  const std::size_t n = points.size();
  if (n == 0) return 0;
  std::size_t best = 1;
  for (NodeId p = 0; p < n; ++p) {
    for (NodeId q = p + 1; q < n; ++q) {
      if (dist2d(points[p], points[q]) > l) continue;
      best = std::max(best, best_cluster_for_pair(points, p, q, l).size());
    }
  }
  return best;
}

namespace {

void max_clique_rec(const std::vector<std::vector<char>>& ok,
                    std::vector<NodeId>& candidates, std::size_t chosen,
                    std::size_t& best) {
  if (chosen + candidates.size() <= best) return;  // bound
  if (candidates.empty()) {
    best = std::max(best, chosen);
    return;
  }
  // Branch on the first candidate: include it, then exclude it.
  NodeId v = candidates.front();
  std::vector<NodeId> with;
  for (NodeId u : candidates) {
    if (u != v && ok[v][u]) with.push_back(u);
  }
  max_clique_rec(ok, with, chosen + 1, best);
  std::vector<NodeId> without(candidates.begin() + 1, candidates.end());
  max_clique_rec(ok, without, chosen, best);
}

}  // namespace

std::size_t max_cluster_size_euclidean_bruteforce(
    const std::vector<Point2>& points, double l) {
  const std::size_t n = points.size();
  if (n == 0) return 0;
  std::vector<std::vector<char>> ok(n, std::vector<char>(n, 0));
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      ok[i][j] = (i != j) && dist2d(points[i], points[j]) <= l;
    }
  }
  std::vector<NodeId> all(n);
  for (NodeId i = 0; i < n; ++i) all[i] = i;
  std::size_t best = 0;
  max_clique_rec(ok, all, 0, best);
  return best;
}

}  // namespace bcc
