// Diameter-constrained clustering of 2-D points — the comparison model's
// clustering algorithm (paper §IV.A), adapted from Aggarwal et al.,
// "Finding k points with minimum diameter and related problems" (SoCG'89).
//
// For each candidate diameter pair (p, q) with ‖pq‖ ≤ l, collect the lens
//   S = { x : ‖xp‖ ≤ ‖pq‖ ∧ ‖xq‖ ≤ ‖pq‖ },
// split it by the line through p and q (each half-lens has diameter at most
// ‖pq‖, so conflicts — pairs farther apart than l — only occur across the
// line), and find the maximum independent set of the bipartite conflict
// graph via König/Hopcroft–Karp. If |MIS| (plus p, q) reaches k, a cluster
// with diameter ≤ l exists and is returned.
#pragma once

#include <optional>
#include <vector>

#include "euclid/hopcroft_karp.h"
#include "euclid/point2.h"
#include "metric/distance_matrix.h"

namespace bcc {

/// Finds k points with pairwise distance at most l, or nullopt if no such
/// set exists among `points`. O(n^2) candidate pairs × O(n^2·sqrt(n))
/// worst-case matching; fine at simulation scale (n ≤ a few hundred).
/// Requires k >= 2. With `tightest_first` (default) candidate diameter
/// pairs are scanned in ascending distance (best cluster quality); with
/// false the first feasible pair in index order wins ("any" cluster, as in
/// the paper's evaluation).
std::optional<Cluster> find_cluster_euclidean(const std::vector<Point2>& points,
                                              std::size_t k, double l,
                                              bool tightest_first = true);

/// Largest cluster size achievable with diameter at most l (>= 2 pair, or
/// 1 if any point exists, 0 for empty input).
std::size_t max_cluster_size_euclidean(const std::vector<Point2>& points,
                                       double l);

/// Exhaustive oracle for tests: true max clique size in the "distance <= l"
/// graph over `points` (exponential; only for small n).
std::size_t max_cluster_size_euclidean_bruteforce(
    const std::vector<Point2>& points, double l);

}  // namespace bcc
