// Hopcroft–Karp maximum bipartite matching, used by the Euclidean
// k-diameter baseline to compute maximum independent sets in bipartite
// conflict graphs via König's theorem (|MIS| = |V| − |max matching|).
#pragma once

#include <cstddef>
#include <vector>

namespace bcc {

/// A bipartite graph with `left` and `right` vertex counts and adjacency
/// from left vertices to right vertices.
class BipartiteGraph {
 public:
  BipartiteGraph(std::size_t left, std::size_t right);

  void add_edge(std::size_t l, std::size_t r);

  std::size_t left_size() const { return adj_.size(); }
  std::size_t right_size() const { return right_; }
  const std::vector<std::size_t>& neighbors(std::size_t l) const;

 private:
  std::size_t right_;
  std::vector<std::vector<std::size_t>> adj_;
};

/// Result of maximum matching.
struct MatchingResult {
  std::size_t size = 0;
  // match_left[l] = matched right vertex or npos; likewise match_right.
  std::vector<std::size_t> match_left;
  std::vector<std::size_t> match_right;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Maximum matching in O(E sqrt(V)).
MatchingResult hopcroft_karp(const BipartiteGraph& g);

/// Maximum independent set via König's theorem: an MIS is the complement of
/// a minimum vertex cover, which Hopcroft–Karp yields. Returns
/// (left-selected flags, right-selected flags); |MIS| = |V| − matching size.
struct IndependentSet {
  std::vector<char> left;
  std::vector<char> right;
  std::size_t size = 0;
};
IndependentSet maximum_independent_set(const BipartiteGraph& g);

}  // namespace bcc
