#include "euclid/hopcroft_karp.h"

#include <limits>
#include <queue>

#include "common/assert.h"

namespace bcc {

BipartiteGraph::BipartiteGraph(std::size_t left, std::size_t right)
    : right_(right), adj_(left) {}

void BipartiteGraph::add_edge(std::size_t l, std::size_t r) {
  BCC_REQUIRE(l < adj_.size() && r < right_);
  adj_[l].push_back(r);
}

const std::vector<std::size_t>& BipartiteGraph::neighbors(std::size_t l) const {
  BCC_REQUIRE(l < adj_.size());
  return adj_[l];
}

namespace {

constexpr std::size_t kNpos = MatchingResult::npos;
constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();

struct HkState {
  const BipartiteGraph* g;
  std::vector<std::size_t> match_l, match_r, level;

  bool bfs() {
    std::queue<std::size_t> q;
    bool reachable_free_right = false;
    for (std::size_t l = 0; l < g->left_size(); ++l) {
      if (match_l[l] == kNpos) {
        level[l] = 0;
        q.push(l);
      } else {
        level[l] = kInf;
      }
    }
    while (!q.empty()) {
      std::size_t l = q.front();
      q.pop();
      for (std::size_t r : g->neighbors(l)) {
        std::size_t next = match_r[r];
        if (next == kNpos) {
          reachable_free_right = true;
        } else if (level[next] == kInf) {
          level[next] = level[l] + 1;
          q.push(next);
        }
      }
    }
    return reachable_free_right;
  }

  bool dfs(std::size_t l) {
    for (std::size_t r : g->neighbors(l)) {
      std::size_t next = match_r[r];
      if (next == kNpos || (level[next] == level[l] + 1 && dfs(next))) {
        match_l[l] = r;
        match_r[r] = l;
        return true;
      }
    }
    level[l] = kInf;  // dead end; prune for this phase
    return false;
  }
};

}  // namespace

MatchingResult hopcroft_karp(const BipartiteGraph& g) {
  HkState s{&g,
            std::vector<std::size_t>(g.left_size(), kNpos),
            std::vector<std::size_t>(g.right_size(), kNpos),
            std::vector<std::size_t>(g.left_size(), kInf)};
  std::size_t matched = 0;
  while (s.bfs()) {
    for (std::size_t l = 0; l < g.left_size(); ++l) {
      if (s.match_l[l] == kNpos && s.dfs(l)) ++matched;
    }
  }
  return MatchingResult{matched, std::move(s.match_l), std::move(s.match_r)};
}

IndependentSet maximum_independent_set(const BipartiteGraph& g) {
  const MatchingResult m = hopcroft_karp(g);

  // König: starting from unmatched left vertices, alternate unmatched edges
  // (L→R) and matched edges (R→L). Minimum vertex cover = unreachable left ∪
  // reachable right; MIS is its complement.
  std::vector<char> reach_l(g.left_size(), 0), reach_r(g.right_size(), 0);
  std::queue<std::size_t> q;
  for (std::size_t l = 0; l < g.left_size(); ++l) {
    if (m.match_left[l] == MatchingResult::npos) {
      reach_l[l] = 1;
      q.push(l);
    }
  }
  while (!q.empty()) {
    std::size_t l = q.front();
    q.pop();
    for (std::size_t r : g.neighbors(l)) {
      if (reach_r[r]) continue;
      reach_r[r] = 1;
      std::size_t next = m.match_right[r];
      if (next != MatchingResult::npos && !reach_l[next]) {
        reach_l[next] = 1;
        q.push(next);
      }
    }
  }

  IndependentSet out;
  out.left.assign(g.left_size(), 0);
  out.right.assign(g.right_size(), 0);
  for (std::size_t l = 0; l < g.left_size(); ++l) {
    if (reach_l[l]) {  // reachable left is outside the cover
      out.left[l] = 1;
      ++out.size;
    }
  }
  for (std::size_t r = 0; r < g.right_size(); ++r) {
    if (!reach_r[r]) {  // unreachable right is outside the cover
      out.right[r] = 1;
      ++out.size;
    }
  }
  BCC_ASSERT(out.size == g.left_size() + g.right_size() - m.size);
  return out;
}

}  // namespace bcc
