// Umbrella header for the bcc library — bandwidth-constrained clustering in
// tree metric spaces (Song, Keleher & Sussman, ICDCS 2011).
//
// Quickstart: see examples/quickstart.cpp, or:
//
//   bcc::Rng rng(42);
//   auto data = bcc::make_hp_planetlab(rng);                 // dataset
//   auto fw = bcc::build_framework(data.distances, rng);     // embed (§II.D)
//   bcc::DecentralizedClusterSystem sys(
//       fw.anchors, fw.predicted_distances(),
//       bcc::BandwidthClasses::uniform_grid(5, 300, 5));
//   sys.run_to_convergence();                                // Algs 2–3
//
//   // One-off query (Alg 4) — status tells you *why* when nothing comes back:
//   auto r = sys.query(bcc::QueryRequest::bandwidth(/*start=*/0, 10, 50.0));
//   if (r.status == bcc::QueryStatus::kFound) use(r.cluster);
//
//   // Heavy traffic: batched, thread-pooled serving over an immutable
//   // snapshot (refresh() after restructuring; serving never blocks it):
//   bcc::QueryService service(sys, {.threads = 8});
//   auto results = service.submit_batch(requests);           // one snapshot
//   auto stats = service.stats();                            // statuses/hops/latency
#pragma once

#include "common/csv.h"
#include "common/options.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/async_overlay.h"
#include "core/bandwidth_classes.h"
#include "core/churn.h"
#include "core/convergence_probe.h"
#include "core/exhaustive_baseline.h"
#include "core/find_cluster.h"
#include "core/node_search.h"
#include "core/partition.h"
#include "core/query.h"
#include "core/system.h"
#include "data/completion.h"
#include "data/dataset_io.h"
#include "data/dynamics.h"
#include "data/latency_synth.h"
#include "data/planetlab_synth.h"
#include "data/subsets.h"
#include "data/topology_gen.h"
#include "euclid/kdiameter.h"
#include "metric/bandwidth.h"
#include "net/frame.h"
#include "net/sim_transport.h"
#include "net/transport.h"
#include "metric/distance_matrix.h"
#include "metric/four_point.h"
#include "obs/bench_report.h"
#include "obs/convergence.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/query_service.h"
#include "serve/query_stats.h"
#include "serve/snapshot.h"
#include "serve/thread_pool.h"
#include "stats/accuracy.h"
#include "stats/bootstrap.h"
#include "stats/summary.h"
#include "tree/distance_label.h"
#include "tree/embedder.h"
#include "tree/maintenance.h"
#include "tree/serialization.h"
#include "vivaldi/vivaldi.h"
#include "workload/scheduler.h"
#include "workload/workflow.h"
