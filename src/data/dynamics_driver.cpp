#include "data/dynamics_driver.h"

#include "common/assert.h"

namespace bcc {

DynamicsDriver::DynamicsDriver(BandwidthDynamics* dynamics,
                               DistanceMatrix* predicted,
                               DynamicsDriverOptions options)
    : dynamics_(dynamics), predicted_(predicted), options_(options) {
  BCC_REQUIRE(dynamics_ != nullptr && predicted_ != nullptr);
  BCC_REQUIRE(options_.epoch_period > 0.0);
  BCC_REQUIRE(options_.c > 0.0);
  BCC_REQUIRE(options_.dirty_log_threshold >= 0.0);
  BCC_REQUIRE(predicted_->size() == dynamics_->current().size());
}

void DynamicsDriver::schedule(EventEngine& engine, EpochCallback on_epoch) {
  on_epoch_ = std::move(on_epoch);
  for (std::size_t i = 0; i < options_.epochs; ++i) {
    engine.schedule_at(
        options_.start_at + static_cast<double>(i) * options_.epoch_period,
        [this] { tick(); });
  }
}

const std::vector<NodeId>& DynamicsDriver::tick() {
  const BandwidthMatrix& bw = dynamics_->step();
  const std::size_t n = bw.size();
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      predicted_->set(u, v, bandwidth_to_distance(bw.at(u, v), options_.c));
    }
  }
  last_dirty_ = dynamics_->dirty_hosts(options_.dirty_log_threshold);
  ++epochs_applied_;
  if (on_epoch_) on_epoch_(dynamics_->epoch(), last_dirty_);
  return last_dirty_;
}

}  // namespace bcc
