#include "data/dataset_io.h"

#include <cmath>
#include <stdexcept>

#include "common/csv.h"

namespace bcc {

void save_bandwidth_csv(const std::string& path, const BandwidthMatrix& bw) {
  auto rows = bw.to_rows();
  for (NodeId i = 0; i < bw.size(); ++i) rows[i][i] = 0.0;  // inf sentinel
  write_matrix_csv(path, rows);
}

BandwidthMatrix load_bandwidth_csv(const std::string& path) {
  const CsvTable table = read_csv(path);
  const std::size_t n = table.rows.size();
  if (n == 0) throw std::runtime_error("empty bandwidth matrix: " + path);
  for (const auto& row : table.rows) {
    if (row.size() != n) {
      throw std::runtime_error("bandwidth matrix not square: " + path);
    }
  }
  BandwidthMatrix bw(n);
  for (NodeId u = 0; u < n; ++u) {
    if (table.rows[u][u] != 0.0) {
      throw std::runtime_error("nonzero diagonal in bandwidth matrix: " + path);
    }
    for (NodeId v = 0; v < u; ++v) {
      const double fwd = table.rows[u][v];
      const double rev = table.rows[v][u];
      if (!(fwd > 0.0) || !(rev > 0.0) || !std::isfinite(fwd) ||
          !std::isfinite(rev)) {
        throw std::runtime_error("non-positive bandwidth entry in " + path);
      }
      bw.set(u, v, 0.5 * (fwd + rev));
    }
  }
  return bw;
}

void save_dataset(const SynthDataset& data, const std::string& dir) {
  save_bandwidth_csv(dir + "/" + data.name + ".bw.csv", data.bandwidth);
  if (data.tree_distances.size() == data.bandwidth.size() &&
      data.tree_distances.size() > 0) {
    write_matrix_csv(dir + "/" + data.name + ".tree.csv",
                     data.tree_distances.to_rows());
  }
}

SynthDataset load_dataset(const std::string& name, const std::string& dir,
                          double c) {
  SynthDataset data;
  data.name = name;
  data.c = c;
  data.bandwidth = load_bandwidth_csv(dir + "/" + name + ".bw.csv");
  data.distances = rational_transform(data.bandwidth, c);
  try {
    data.tree_distances =
        DistanceMatrix::from_rows(read_csv(dir + "/" + name + ".tree.csv").rows);
  } catch (const std::runtime_error&) {
    // The reference tree metric is optional (real traces do not have one).
    data.tree_distances = DistanceMatrix();
  }
  return data;
}

}  // namespace bcc
