#include "data/dynamics.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace bcc {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

const char* to_string(DisturbanceClass kind) {
  switch (kind) {
    case DisturbanceClass::kCongestion: return "congestion";
    case DisturbanceClass::kFlashCrowd: return "flash_crowd";
    case DisturbanceClass::kRegionDegrade: return "region_degrade";
  }
  return "unknown";
}

BandwidthDynamics::BandwidthDynamics(const SynthDataset& base,
                                     DynamicsOptions options,
                                     std::uint64_t seed)
    : current_(base.bandwidth), options_(options), pair_rng_(seed),
      event_rng_(Rng(seed).split(1)),
      congestion_left_(base.bandwidth.size(), 0),
      host_shift_(base.bandwidth.size(), 0.0),
      diurnal_phase_(base.bandwidth.size(), 0.0),
      region_(base.bandwidth.size(), 0),
      flash_member_(base.bandwidth.size(), 0),
      pair_log_change_(base.bandwidth.size() * (base.bandwidth.size() - 1) / 2,
                       0.0) {
  BCC_REQUIRE(options_.rho >= 0.0 && options_.rho < 1.0);
  BCC_REQUIRE(options_.sigma >= 0.0);
  BCC_REQUIRE(options_.congestion_rate >= 0.0 &&
              options_.congestion_rate <= 1.0);
  BCC_REQUIRE(options_.congestion_factor > 0.0 &&
              options_.congestion_factor <= 1.0);
  BCC_REQUIRE(options_.baseline_shift_rate >= 0.0 &&
              options_.baseline_shift_rate <= 1.0);
  BCC_REQUIRE(options_.baseline_shift_sigma >= 0.0);
  BCC_REQUIRE(options_.diurnal_amplitude >= 0.0);
  BCC_REQUIRE(options_.diurnal_period > 0);
  BCC_REQUIRE(options_.flash_crowd_rate >= 0.0 &&
              options_.flash_crowd_rate <= 1.0);
  BCC_REQUIRE(options_.flash_crowd_fraction > 0.0 &&
              options_.flash_crowd_fraction <= 1.0);
  BCC_REQUIRE(options_.flash_crowd_factor > 0.0 &&
              options_.flash_crowd_factor <= 1.0);
  BCC_REQUIRE(options_.regions > 0);
  BCC_REQUIRE(options_.region_degrade_rate >= 0.0 &&
              options_.region_degrade_rate <= 1.0);
  BCC_REQUIRE(options_.region_degrade_factor > 0.0 &&
              options_.region_degrade_factor <= 1.0);
  const std::size_t n = base.bandwidth.size();
  BCC_REQUIRE(n >= 2);
  // Structural baseline: the generating tree metric when the dataset has
  // one, else the measured matrix itself.
  if (base.tree_distances.size() == n) {
    baseline_ = inverse_rational_transform(base.tree_distances, base.c);
  } else {
    baseline_ = base.bandwidth;
  }
  // Static layout — per-host diurnal phases (time zones) and the region
  // partition — comes from its own stream so the pair/event streams replay
  // bit-identically whether or not the new generators are enabled.
  Rng layout_rng = Rng(seed).split(2);
  for (NodeId h = 0; h < n; ++h) {
    diurnal_phase_[h] = layout_rng.uniform(0.0, kTwoPi);
  }
  std::vector<NodeId> perm(n);
  for (NodeId h = 0; h < n; ++h) perm[h] = h;
  layout_rng.shuffle(perm);
  for (std::size_t i = 0; i < n; ++i) {
    region_[perm[i]] = i % options_.regions;
  }
}

const BandwidthMatrix& BandwidthDynamics::step() {
  ++epoch_;
  const std::size_t n = current_.size();
  events_.clear();
  std::fill(pair_log_change_.begin(), pair_log_change_.end(), 0.0);

  // Event stream: congestion episodes decay, new ones start, and hosts may
  // shift their baseline permanently (structural change).
  for (auto& left : congestion_left_) {
    if (left > 0) --left;
  }
  if (event_rng_.chance(options_.congestion_rate)) {
    const NodeId host = static_cast<NodeId>(event_rng_.below(n));
    congestion_left_[host] = options_.congestion_epochs;
    events_.push_back({DisturbanceClass::kCongestion, epoch_, {host}});
  }
  if (options_.baseline_shift_rate > 0.0) {
    for (NodeId h = 0; h < n; ++h) {
      if (event_rng_.chance(options_.baseline_shift_rate)) {
        host_shift_[h] +=
            event_rng_.normal(0.0, options_.baseline_shift_sigma);
      }
    }
  }
  // New generators draw from the event stream only when enabled, so seeds
  // recorded before they existed keep replaying the same trajectories.
  if (flash_left_ > 0) --flash_left_;
  if (options_.flash_crowd_rate > 0.0 &&
      event_rng_.chance(options_.flash_crowd_rate)) {
    std::fill(flash_member_.begin(), flash_member_.end(), 0);
    const std::size_t k = std::max<std::size_t>(
        2, static_cast<std::size_t>(
               std::llround(options_.flash_crowd_fraction *
                            static_cast<double>(n))));
    DisturbanceEvent event{DisturbanceClass::kFlashCrowd, epoch_, {}};
    for (std::size_t idx : event_rng_.sample_indices(n, std::min(k, n))) {
      flash_member_[idx] = 1;
      event.hosts.push_back(static_cast<NodeId>(idx));
    }
    std::sort(event.hosts.begin(), event.hosts.end());
    flash_left_ = options_.flash_crowd_epochs;
    events_.push_back(std::move(event));
  }
  if (region_left_ > 0) --region_left_;
  if (options_.region_degrade_rate > 0.0 &&
      event_rng_.chance(options_.region_degrade_rate)) {
    degraded_region_ = static_cast<std::size_t>(
        event_rng_.below(options_.regions));
    region_left_ = options_.region_degrade_epochs;
    events_.push_back({DisturbanceClass::kRegionDegrade, epoch_,
                       degraded_region_hosts()});
  }

  const double diurnal_t =
      kTwoPi * static_cast<double>(epoch_) /
      static_cast<double>(options_.diurnal_period);

  BandwidthMatrix next(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double log_base =
          std::log(baseline_.at(u, v)) + host_shift_[u] + host_shift_[v];
      const double log_cur = std::log(current_.at(u, v));
      double log_next = log_base + options_.rho * (log_cur - log_base) +
                        pair_rng_.normal(0.0, options_.sigma);
      if (congestion_left_[u] > 0 || congestion_left_[v] > 0) {
        log_next += std::log(options_.congestion_factor);
      }
      if (options_.diurnal_amplitude > 0.0) {
        // A link is only as good as its worse end; averaging the two ends'
        // sinusoids keeps the log-space hit smooth and symmetric.
        log_next += 0.5 * options_.diurnal_amplitude *
                    (std::sin(diurnal_t + diurnal_phase_[u]) +
                     std::sin(diurnal_t + diurnal_phase_[v]));
      }
      if (flash_left_ > 0 && (flash_member_[u] || flash_member_[v])) {
        log_next += std::log(options_.flash_crowd_factor);
      }
      // Correlated degradation hits the region's *internal* links: the
      // shared bottleneck is inside the region (its switch), so traffic
      // staying within the region suffers while transit does not — which is
      // also what keeps the dirty set local to the region's hosts.
      if (region_left_ > 0 && region_[u] == degraded_region_ &&
          region_[v] == degraded_region_) {
        log_next += std::log(options_.region_degrade_factor);
      }
      next.set(u, v, std::exp(log_next));
      pair_log_change_[v * (v - 1) / 2 + u] = std::abs(log_next - log_cur);
    }
  }
  current_ = std::move(next);
  return current_;
}

std::vector<NodeId> BandwidthDynamics::congested() const {
  std::vector<NodeId> out;
  for (NodeId h = 0; h < congestion_left_.size(); ++h) {
    if (congestion_left_[h] > 0) out.push_back(h);
  }
  return out;
}

double BandwidthDynamics::host_shift(NodeId host) const {
  BCC_REQUIRE(host < host_shift_.size());
  return host_shift_[host];
}

std::vector<NodeId> BandwidthDynamics::flash_hosts() const {
  std::vector<NodeId> out;
  if (flash_left_ == 0) return out;
  for (NodeId h = 0; h < flash_member_.size(); ++h) {
    if (flash_member_[h]) out.push_back(h);
  }
  return out;
}

std::vector<NodeId> BandwidthDynamics::degraded_region_hosts() const {
  std::vector<NodeId> out;
  if (region_left_ == 0) return out;
  for (NodeId h = 0; h < region_.size(); ++h) {
    if (region_[h] == degraded_region_) out.push_back(h);
  }
  return out;
}

std::size_t BandwidthDynamics::region_of(NodeId host) const {
  BCC_REQUIRE(host < region_.size());
  return region_[host];
}

std::vector<NodeId> BandwidthDynamics::dirty_hosts(
    double min_log_change) const {
  // Greedy cover of the changed-link graph (see header): repeatedly pick
  // the host explaining the most still-unexplained changed links. A
  // congested host (every link moved) is picked once and explains them all;
  // a degraded region's members each explain their internal links.
  const std::size_t n = region_.size();
  std::vector<std::vector<NodeId>> adj(n);
  std::vector<std::size_t> deg(n, 0);
  for (NodeId v = 1; v < n; ++v) {
    for (NodeId u = 0; u < v; ++u) {
      if (pair_log_change_[v * (v - 1) / 2 + u] >= min_log_change) {
        adj[u].push_back(v);
        adj[v].push_back(u);
        ++deg[u];
        ++deg[v];
      }
    }
  }
  std::vector<char> picked(n, 0);
  std::vector<NodeId> out;
  for (;;) {
    NodeId best = 0;
    std::size_t best_deg = 0;
    for (NodeId h = 0; h < n; ++h) {
      if (!picked[h] && deg[h] > best_deg) {
        best = h;
        best_deg = deg[h];
      }
    }
    if (best_deg == 0) break;
    picked[best] = 1;
    out.push_back(best);
    deg[best] = 0;
    for (NodeId w : adj[best]) {
      if (!picked[w] && deg[w] > 0) --deg[w];
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bcc
