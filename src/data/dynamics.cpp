#include "data/dynamics.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace bcc {

BandwidthDynamics::BandwidthDynamics(const SynthDataset& base,
                                     DynamicsOptions options,
                                     std::uint64_t seed)
    : current_(base.bandwidth), options_(options), pair_rng_(seed),
      event_rng_(Rng(seed).split(1)),
      congestion_left_(base.bandwidth.size(), 0),
      host_shift_(base.bandwidth.size(), 0.0) {
  BCC_REQUIRE(options_.rho >= 0.0 && options_.rho < 1.0);
  BCC_REQUIRE(options_.sigma >= 0.0);
  BCC_REQUIRE(options_.congestion_rate >= 0.0 &&
              options_.congestion_rate <= 1.0);
  BCC_REQUIRE(options_.congestion_factor > 0.0 &&
              options_.congestion_factor <= 1.0);
  BCC_REQUIRE(options_.baseline_shift_rate >= 0.0 &&
              options_.baseline_shift_rate <= 1.0);
  BCC_REQUIRE(options_.baseline_shift_sigma >= 0.0);
  const std::size_t n = base.bandwidth.size();
  BCC_REQUIRE(n >= 2);
  // Structural baseline: the generating tree metric when the dataset has
  // one, else the measured matrix itself.
  if (base.tree_distances.size() == n) {
    baseline_ = inverse_rational_transform(base.tree_distances, base.c);
  } else {
    baseline_ = base.bandwidth;
  }
}

const BandwidthMatrix& BandwidthDynamics::step() {
  ++epoch_;
  const std::size_t n = current_.size();

  // Event stream: congestion episodes decay, new ones start, and hosts may
  // shift their baseline permanently (structural change).
  for (auto& left : congestion_left_) {
    if (left > 0) --left;
  }
  if (event_rng_.chance(options_.congestion_rate)) {
    congestion_left_[static_cast<std::size_t>(event_rng_.below(n))] =
        options_.congestion_epochs;
  }
  if (options_.baseline_shift_rate > 0.0) {
    for (NodeId h = 0; h < n; ++h) {
      if (event_rng_.chance(options_.baseline_shift_rate)) {
        host_shift_[h] +=
            event_rng_.normal(0.0, options_.baseline_shift_sigma);
      }
    }
  }

  BandwidthMatrix next(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double log_base =
          std::log(baseline_.at(u, v)) + host_shift_[u] + host_shift_[v];
      const double log_cur = std::log(current_.at(u, v));
      double log_next = log_base + options_.rho * (log_cur - log_base) +
                        pair_rng_.normal(0.0, options_.sigma);
      if (congestion_left_[u] > 0 || congestion_left_[v] > 0) {
        log_next += std::log(options_.congestion_factor);
      }
      next.set(u, v, std::exp(log_next));
    }
  }
  current_ = std::move(next);
  return current_;
}

std::vector<NodeId> BandwidthDynamics::congested() const {
  std::vector<NodeId> out;
  for (NodeId h = 0; h < congestion_left_.size(); ++h) {
    if (congestion_left_[h] > 0) out.push_back(h);
  }
  return out;
}

double BandwidthDynamics::host_shift(NodeId host) const {
  BCC_REQUIRE(host < host_shift_.size());
  return host_shift_[host];
}

}  // namespace bcc
