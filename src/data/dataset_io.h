// Dataset persistence: save/load bandwidth matrices and synthesized datasets
// as CSV, so experiments can run against pinned inputs (and so users can
// feed their own measurement matrices to the library).
//
// Format: a square n×n CSV of Mbps values, zero diagonal (self-bandwidth is
// conceptually infinite; 0 is the on-disk sentinel), '#' comment lines
// allowed. Asymmetric matrices are symmetrized on load by averaging
// directions — the paper's own preprocessing for both PlanetLab traces.
#pragma once

#include <string>

#include "data/planetlab_synth.h"

namespace bcc {

/// Writes BW as CSV (zero diagonal sentinel). Throws on I/O failure.
void save_bandwidth_csv(const std::string& path, const BandwidthMatrix& bw);

/// Loads a bandwidth CSV; accepts asymmetric matrices (averages directions)
/// and requires positive off-diagonal entries. Throws on malformed input.
BandwidthMatrix load_bandwidth_csv(const std::string& path);

/// Saves a dataset as `<dir>/<name>.bw.csv` (measured bandwidth) and
/// `<dir>/<name>.tree.csv` (the generating tree metric, when available).
void save_dataset(const SynthDataset& data, const std::string& dir);

/// Loads `<dir>/<name>.bw.csv` (+ optional `.tree.csv`) back into a dataset.
/// `c` is the rational-transform constant to derive distances with.
SynthDataset load_dataset(const std::string& name, const std::string& dir,
                          double c = kDefaultTransformC);

}  // namespace bcc
