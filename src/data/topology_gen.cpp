#include "data/topology_gen.h"

#include <algorithm>

namespace bcc {

DistanceMatrix Topology::distances() const {
  const std::size_t n = host_leaf.size();
  DistanceMatrix d(n);
  for (NodeId u = 0; u < n; ++u) {
    const auto from_u = tree.distances_from(host_leaf[u]);
    for (NodeId v = u + 1; v < n; ++v) {
      d.set(u, v, from_u[host_leaf[v]]);
    }
  }
  return d;
}

BandwidthMatrix Topology::bandwidths() const {
  return inverse_rational_transform(distances(), c);
}

void Topology::scale_edges(double factor) { tree.scale_weights(factor); }

Topology generate_topology(const TopologyOptions& options, Rng& rng) {
  BCC_REQUIRE(options.hosts >= 2);
  BCC_REQUIRE(options.c > 0.0);
  const std::size_t n_sites =
      options.sites > 0 ? options.sites
                        : std::max<std::size_t>(2, options.hosts / 8);

  Topology topo;
  topo.c = options.c;

  // Backbone: random recursive tree over site routers (preferential to
  // earlier sites gives a realistic skewed hierarchy depth).
  std::vector<TreeVertex> site(n_sites);
  site[0] = topo.tree.add_vertex();
  for (std::size_t s = 1; s < n_sites; ++s) {
    site[s] = topo.tree.add_vertex();
    const std::size_t parent = static_cast<std::size_t>(rng.below(s));
    const double core_bw =
        rng.lognormal(options.core_bw_mu, options.core_bw_sigma);
    topo.tree.connect(site[parent], site[s],
                      bandwidth_to_distance(core_bw, options.c));
  }

  // Hosts: one access link each to a uniformly random site.
  topo.host_leaf.resize(options.hosts);
  for (std::size_t h = 0; h < options.hosts; ++h) {
    topo.host_leaf[h] = topo.tree.add_vertex();
    const std::size_t s = static_cast<std::size_t>(rng.below(n_sites));
    const double access_bw =
        rng.lognormal(options.access_bw_mu, options.access_bw_sigma);
    topo.tree.connect(site[s], topo.host_leaf[h],
                      bandwidth_to_distance(access_bw, options.c));
  }
  BCC_ASSERT(topo.tree.is_tree());
  return topo;
}

}  // namespace bcc
