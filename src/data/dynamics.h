// Time-varying bandwidth — the other half of the paper's dynamic-clustering
// requirement (§I): "members of each cluster should adaptively change as
// network condition changes". The decentralized framework handles this by
// periodic re-aggregation (DecentralizedClusterSystem::refresh /
// FrameworkMaintainer::refresh); this module supplies the changing network.
//
// Model: each pair's bandwidth follows a mean-reverting AR(1) process in
// log space around its structural (tree-metric) baseline:
//   log BW_{t+1} = log BW_base + rho * (log BW_t - log BW_base) + sigma * z
// plus transient congestion episodes that depress a random *host*'s links by
// a large factor for a few epochs (modelling a saturated access link, the
// dominant real-world event under the paper's bottleneck model).
#pragma once

#include <vector>

#include "common/rng.h"
#include "data/planetlab_synth.h"

namespace bcc {

struct DynamicsOptions {
  /// Mean-reversion factor in [0, 1): 0 = i.i.d. around the baseline,
  /// near 1 = slowly wandering.
  double rho = 0.8;
  /// Per-epoch innovation (lognormal sigma).
  double sigma = 0.1;
  /// Probability per epoch that a congestion episode starts at some host.
  double congestion_rate = 0.1;
  /// Multiplicative bandwidth hit on a congested host's links (< 1).
  double congestion_factor = 0.25;
  /// Episode length in epochs.
  std::size_t congestion_epochs = 3;
  /// Structural change: probability per host per epoch that its baseline
  /// access capacity shifts *permanently* (link upgrade/downgrade) —
  /// this is what makes stale predictions decay.
  double baseline_shift_rate = 0.0;
  /// Lognormal sigma of a permanent shift.
  double baseline_shift_sigma = 0.4;
};

/// Evolves a dataset's bandwidth over epochs. Deterministic per seed.
class BandwidthDynamics {
 public:
  /// `base` supplies both the structural baseline (its tree distances, when
  /// available, else its measured bandwidth) and the starting state.
  BandwidthDynamics(const SynthDataset& base, DynamicsOptions options,
                    std::uint64_t seed);

  /// Advances one epoch and returns the new measured-bandwidth matrix.
  const BandwidthMatrix& step();

  const BandwidthMatrix& current() const { return current_; }
  std::size_t epoch() const { return epoch_; }
  /// Hosts currently under a congestion episode.
  std::vector<NodeId> congested() const;
  /// Cumulative permanent per-host baseline shift (log scale; 0 = none).
  double host_shift(NodeId host) const;

 private:
  BandwidthMatrix baseline_;
  BandwidthMatrix current_;
  DynamicsOptions options_;
  Rng pair_rng_;   // the per-pair innovation stream
  Rng event_rng_;  // congestion/structural events (own stream: their
                   // determinism must not depend on n)
  std::size_t epoch_ = 0;
  std::vector<std::size_t> congestion_left_;  // per host, epochs remaining
  std::vector<double> host_shift_;            // permanent log-scale shifts
};

}  // namespace bcc
