// Time-varying bandwidth — the other half of the paper's dynamic-clustering
// requirement (§I): "members of each cluster should adaptively change as
// network condition changes". The decentralized framework handles this by
// periodic re-aggregation (DecentralizedClusterSystem::refresh /
// FrameworkMaintainer::refresh); this module supplies the changing network.
//
// Model: each pair's bandwidth follows a mean-reverting AR(1) process in
// log space around its structural (tree-metric) baseline:
//   log BW_{t+1} = log BW_base + rho * (log BW_t - log BW_base) + sigma * z
// plus disturbance generators layered on top, each deterministic per seed:
//   - congestion episodes: a random *host*'s links depressed by a large
//     factor for a few epochs (a saturated access link, the dominant
//     real-world event under the paper's bottleneck model);
//   - diurnal cycles: every host's access capacity swings sinusoidally in
//     log space with a per-host phase (time-zone offset);
//   - flash crowds: a random fraction of hosts congest *simultaneously*
//     (correlated demand spike: a release, a live event);
//   - correlated link degradation: all links internal to one region degrade
//     together (a shared bottleneck — the region's switch — saturates).
// Disturbances that start in an epoch are reported as DisturbanceEvents and
// per-host change magnitudes are tracked so callers can repair incrementally
// (dirty_hosts).
#pragma once

#include <vector>

#include "common/rng.h"
#include "data/planetlab_synth.h"

namespace bcc {

/// Which generator produced a disturbance episode. Soak harnesses key
/// time-to-reconvergence accounting on this.
enum class DisturbanceClass : std::uint8_t {
  kCongestion = 0,
  kFlashCrowd = 1,
  kRegionDegrade = 2,
};

const char* to_string(DisturbanceClass kind);

/// A disturbance episode that *started* at `epoch`, touching `hosts`.
struct DisturbanceEvent {
  DisturbanceClass kind;
  std::size_t epoch = 0;
  std::vector<NodeId> hosts;
};

struct DynamicsOptions {
  /// Mean-reversion factor in [0, 1): 0 = i.i.d. around the baseline,
  /// near 1 = slowly wandering.
  double rho = 0.8;
  /// Per-epoch innovation (lognormal sigma).
  double sigma = 0.1;
  /// Probability per epoch that a congestion episode starts at some host.
  double congestion_rate = 0.1;
  /// Multiplicative bandwidth hit on a congested host's links (< 1).
  double congestion_factor = 0.25;
  /// Episode length in epochs.
  std::size_t congestion_epochs = 3;
  /// Structural change: probability per host per epoch that its baseline
  /// access capacity shifts *permanently* (link upgrade/downgrade) —
  /// this is what makes stale predictions decay.
  double baseline_shift_rate = 0.0;
  /// Lognormal sigma of a permanent shift.
  double baseline_shift_sigma = 0.4;

  /// Diurnal cycle: log-scale amplitude of the per-host sinusoid. 0 (the
  /// default) disables the generator; existing seeds replay bit-identically.
  double diurnal_amplitude = 0.0;
  /// Epochs per simulated day.
  std::size_t diurnal_period = 96;

  /// Flash crowd: probability per epoch that one starts. 0 disables.
  double flash_crowd_rate = 0.0;
  /// Fraction of hosts swept into a flash crowd (at least 2 hosts).
  double flash_crowd_fraction = 0.2;
  /// Multiplicative bandwidth hit on a crowded host's links (< 1).
  double flash_crowd_factor = 0.2;
  /// Episode length in epochs.
  std::size_t flash_crowd_epochs = 4;

  /// Correlated degradation: number of shared-bottleneck regions hosts are
  /// partitioned into (round-robin over a seeded permutation).
  std::size_t regions = 4;
  /// Probability per epoch that one region's internal links degrade. 0
  /// disables.
  double region_degrade_rate = 0.0;
  /// Multiplicative bandwidth hit on links *within* the degraded region.
  double region_degrade_factor = 0.3;
  /// Episode length in epochs.
  std::size_t region_degrade_epochs = 5;
};

/// Evolves a dataset's bandwidth over epochs. Deterministic per seed.
class BandwidthDynamics {
 public:
  /// `base` supplies both the structural baseline (its tree distances, when
  /// available, else its measured bandwidth) and the starting state.
  BandwidthDynamics(const SynthDataset& base, DynamicsOptions options,
                    std::uint64_t seed);

  /// Advances one epoch and returns the new measured-bandwidth matrix.
  const BandwidthMatrix& step();

  const BandwidthMatrix& current() const { return current_; }
  std::size_t epoch() const { return epoch_; }
  /// Hosts currently under a congestion episode.
  std::vector<NodeId> congested() const;
  /// Cumulative permanent per-host baseline shift (log scale; 0 = none).
  double host_shift(NodeId host) const;

  /// Disturbance episodes that started during the most recent step().
  const std::vector<DisturbanceEvent>& events() const { return events_; }
  /// Hosts currently inside an active flash crowd (empty when none).
  std::vector<NodeId> flash_hosts() const;
  /// Hosts of the currently degraded region (empty when none).
  std::vector<NodeId> degraded_region_hosts() const;
  /// The shared-bottleneck region a host belongs to.
  std::size_t region_of(NodeId host) const;

  /// A minimal host set explaining the most recent step(): every link that
  /// moved by at least `min_log_change` in log-BW has at least one end in
  /// the returned set (greedy cover, largest changed-degree first, ties to
  /// the lower id), sorted ascending. Attribution matters: a single
  /// congested host changes its link to *everyone*, and the cover charges
  /// that to the one host whose position actually moved instead of marking
  /// the whole world dirty. This is the dirty set an incremental maintainer
  /// repairs; the AR(1) jitter floor sits around sigma, so thresholds a few
  /// multiples above it isolate real episodes.
  std::vector<NodeId> dirty_hosts(double min_log_change) const;

 private:
  BandwidthMatrix baseline_;
  BandwidthMatrix current_;
  DynamicsOptions options_;
  Rng pair_rng_;   // the per-pair innovation stream
  Rng event_rng_;  // congestion/structural events (own stream: their
                   // determinism must not depend on n)
  std::size_t epoch_ = 0;
  std::vector<std::size_t> congestion_left_;  // per host, epochs remaining
  std::vector<double> host_shift_;            // permanent log-scale shifts
  std::vector<double> diurnal_phase_;         // per host, radians
  std::vector<std::size_t> region_;           // per host, region index
  std::vector<char> flash_member_;            // current flash crowd mask
  std::size_t flash_left_ = 0;
  std::size_t degraded_region_ = 0;
  std::size_t region_left_ = 0;
  std::vector<double> pair_log_change_;  // per pair |Δlog BW|, last step()
  std::vector<DisturbanceEvent> events_;
};

}  // namespace bcc
