#include "data/subsets.h"

#include <algorithm>

namespace bcc {

std::vector<NodeId> random_subset(std::size_t n, std::size_t k, Rng& rng) {
  BCC_REQUIRE(k <= n);
  auto idx = rng.sample_indices(n, k);
  std::sort(idx.begin(), idx.end());
  return idx;
}

BandwidthMatrix extract_bandwidth(const BandwidthMatrix& bw,
                                  std::span<const NodeId> indices) {
  BandwidthMatrix out(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    BCC_REQUIRE(indices[i] < bw.size());
    for (std::size_t j = i + 1; j < indices.size(); ++j) {
      out.set(i, j, bw.at(indices[i], indices[j]));
    }
  }
  return out;
}

std::vector<TreenessSubset> treeness_spread_subsets(
    const DistanceMatrix& d, std::size_t subset_size, std::size_t count,
    std::size_t candidates, Rng& rng, std::size_t quartet_samples) {
  BCC_REQUIRE(subset_size >= 4 && subset_size <= d.size());
  BCC_REQUIRE(count >= 1 && candidates >= count);

  std::vector<TreenessSubset> pool;
  pool.reserve(candidates);
  for (std::size_t i = 0; i < candidates; ++i) {
    TreenessSubset s;
    s.indices = random_subset(d.size(), subset_size, rng);
    const DistanceMatrix sub = d.submatrix(s.indices);
    Rng eps_rng = rng.split(i);
    s.epsilon_avg = estimate_treeness(sub, eps_rng, quartet_samples).epsilon_avg;
    pool.push_back(std::move(s));
  }
  std::sort(pool.begin(), pool.end(),
            [](const TreenessSubset& a, const TreenessSubset& b) {
              return a.epsilon_avg < b.epsilon_avg;
            });

  // Pick `count` evenly spaced by rank, always including both extremes.
  std::vector<TreenessSubset> out;
  out.reserve(count);
  if (count == 1) {
    out.push_back(pool.front());
    return out;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t rank =
        i * (pool.size() - 1) / (count - 1);
    out.push_back(pool[rank]);
  }
  return out;
}

}  // namespace bcc
