// DynamicsDriver — wires BandwidthDynamics into the event engine, the
// bandwidth-side sibling of core's ChurnDriver: where churn changes *who* is
// in the network mid-run, this changes *how well connected* they are. Each
// scheduled epoch tick steps the dynamics, rewrites the caller-owned
// predicted-distance matrix through the rational transform, and reports the
// dirty host set so the caller can repair incrementally
// (FrameworkMaintainer::refresh_dirty → DecentralizedClusterSystem::
// apply_delta) instead of recomputing the world.
//
// Composability: schedule() only posts plain timers, so a ChurnDriver can
// share the same engine — joins/leaves interleave with bandwidth epochs in
// deterministic timestamp order (ties break by scheduling order).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "data/dynamics.h"
#include "metric/bandwidth.h"
#include "sim/event_engine.h"

namespace bcc {

struct DynamicsDriverOptions {
  /// Simulated seconds between epoch ticks.
  double epoch_period = 1.0;
  /// Simulated time of the first tick.
  double start_at = 0.0;
  /// Number of epoch ticks to schedule.
  std::size_t epochs = 0;
  /// Rational-transform constant used to turn bandwidth into distance.
  double c = kDefaultTransformC;
  /// Minimum per-host |Δ log BW| for a host to be reported dirty (see
  /// BandwidthDynamics::dirty_hosts).
  double dirty_log_threshold = 0.5;
};

/// See file comment. The dynamics, the predicted matrix, and the driver must
/// outlive the engine run.
class DynamicsDriver {
 public:
  /// Fired after each epoch is applied: the epoch number and the dirty set.
  using EpochCallback =
      std::function<void(std::size_t epoch, const std::vector<NodeId>& dirty)>;

  /// `predicted` must cover the dynamics' host universe; every tick rewrites
  /// all its off-diagonal entries as d = c / BW.
  DynamicsDriver(BandwidthDynamics* dynamics, DistanceMatrix* predicted,
                 DynamicsDriverOptions options);

  /// Schedules options.epochs ticks on `engine`, starting at
  /// options.start_at and options.epoch_period apart.
  void schedule(EventEngine& engine, EpochCallback on_epoch = nullptr);

  /// Applies one epoch immediately (no engine) — the synchronous soak loop.
  /// Returns the dirty host set.
  const std::vector<NodeId>& tick();

  std::size_t epochs_applied() const { return epochs_applied_; }
  const std::vector<NodeId>& last_dirty() const { return last_dirty_; }

 private:
  BandwidthDynamics* dynamics_;
  DistanceMatrix* predicted_;
  DynamicsDriverOptions options_;
  EpochCallback on_epoch_;
  std::size_t epochs_applied_ = 0;
  std::vector<NodeId> last_dirty_;
};

}  // namespace bcc
