// Synthetic latency (RTT) datasets with tree-like structure — support for
// the paper's third future-work item (§VI): latency-constrained clustering
// reuses the whole pipeline because latency also embeds well into tree
// metric spaces [21].
//
// Unlike bandwidth, latency is already "smaller is closer": no rational
// transform is applied; the RTT matrix *is* the distance matrix.
#pragma once

#include "common/rng.h"
#include "metric/distance_matrix.h"

namespace bcc {

struct LatencyOptions {
  std::size_t hosts = 100;
  std::size_t sites = 0;          // 0 = auto: max(2, hosts / 8)
  double core_hop_ms_min = 2.0;   // per backbone hop
  double core_hop_ms_max = 18.0;
  double access_ms_min = 0.5;     // last-mile one-way contribution
  double access_ms_max = 8.0;
  /// Multiplicative lognormal jitter per pair; 0 gives a perfect tree metric.
  double jitter_sigma = 0.15;
};

/// Synthesizes an RTT matrix (milliseconds). Deterministic per (options,
/// rng-state). Requires hosts >= 2.
DistanceMatrix synthesize_latency(const LatencyOptions& options, Rng& rng);

}  // namespace bcc
