// Dataset subsetting utilities (paper §IV.C–D): random subsets for the
// scalability sweep and treeness-ranked subsets for the Fig. 5 experiment
// ("by choosing subsets from HP-PlanetLab, we created six datasets of 100
// nodes with different treeness").
#pragma once

#include <span>

#include "common/rng.h"
#include "metric/bandwidth.h"
#include "metric/four_point.h"

namespace bcc {

/// k distinct node ids sampled uniformly from [0, n), sorted ascending.
std::vector<NodeId> random_subset(std::size_t n, std::size_t k, Rng& rng);

/// Principal submatrix of a bandwidth matrix (order of `indices` preserved).
BandwidthMatrix extract_bandwidth(const BandwidthMatrix& bw,
                                  std::span<const NodeId> indices);

/// A candidate subset together with its sampled treeness.
struct TreenessSubset {
  std::vector<NodeId> indices;
  double epsilon_avg = 0.0;
};

/// Samples `candidates` random subsets of `subset_size` from the metric,
/// estimates each one's ε_avg (with `quartet_samples` quartets), and returns
/// `count` of them spread evenly from most to least tree-like — the paper's
/// recipe for obtaining datasets of varied treeness from one trace.
/// Returned subsets are sorted by ascending ε_avg.
std::vector<TreenessSubset> treeness_spread_subsets(
    const DistanceMatrix& d, std::size_t subset_size, std::size_t count,
    std::size_t candidates, Rng& rng, std::size_t quartet_samples = 4000);

}  // namespace bcc
