// Random hierarchical network topologies whose pairwise bandwidth is a
// *perfect* tree metric — the generative model the paper cites to explain
// the treeness of Internet bandwidth ([20]: bandwidth between two hosts is
// bottlenecked at the access link of either end; such a network induces a
// tree metric under the rational transform).
//
// Structure: a random backbone tree of site routers with fat (high-BW, i.e.
// short-distance) internal links, and one access link per host to a random
// site with lognormally distributed capacity. Distances live directly on the
// edges as d = C / link_bandwidth, so path distance compounds the bottleneck
// structure smoothly (access links dominate, mimicking measured PlanetLab
// behaviour).
#pragma once

#include "common/rng.h"
#include "metric/bandwidth.h"
#include "tree/weighted_tree.h"

namespace bcc {

struct TopologyOptions {
  std::size_t hosts = 100;
  std::size_t sites = 0;          // 0 = auto: max(2, hosts / 8)
  double core_bw_mu = 6.2;        // lognormal ln-mean of core link Mbps (~490)
  double core_bw_sigma = 0.3;
  double access_bw_mu = 4.0;      // lognormal ln-mean of access Mbps (~55)
  double access_bw_sigma = 0.8;
  double c = kDefaultTransformC;  // rational-transform constant
};

/// A generated topology: the physical tree plus each host's leaf vertex.
struct Topology {
  WeightedTree tree;
  std::vector<TreeVertex> host_leaf;  // index = host NodeId
  double c = kDefaultTransformC;

  /// Pairwise host distances (a perfect tree metric by construction).
  DistanceMatrix distances() const;

  /// Pairwise host bandwidth BW = C / d.
  BandwidthMatrix bandwidths() const;

  /// Multiplies every edge weight by `factor` (> 0) — used by dataset
  /// calibration; scales all distances linearly, bandwidths by 1/factor.
  void scale_edges(double factor);
};

/// Generates a random topology. Requires hosts >= 2.
Topology generate_topology(const TopologyOptions& options, Rng& rng);

}  // namespace bcc
