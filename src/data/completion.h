// Preprocessing incomplete measurement matrices — the paper's own first
// step (§IV): "since the raw dataset is incomplete and has many unmeasured
// pairs of nodes, we first extracted measurements for the 190 nodes (out of
// 459) that give a full n-to-n asymmetric matrix".
//
// Finding the largest complete principal submatrix is max-clique on the
// "measured" graph (NP-hard); the standard practical recipe — and almost
// certainly the authors' — is greedy peeling: repeatedly drop the node with
// the most unmeasured pairs until no gaps remain.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "metric/bandwidth.h"

namespace bcc {

/// A bandwidth matrix where some pairs are unmeasured (nullopt).
class PartialBandwidthMatrix {
 public:
  explicit PartialBandwidthMatrix(std::size_t n);

  std::size_t size() const { return n_; }

  /// The measurement for (u, v), if any. Requires u != v.
  std::optional<double> at(NodeId u, NodeId v) const;
  void set(NodeId u, NodeId v, double bw_mbps);  // bw > 0
  void clear(NodeId u, NodeId v);

  /// Number of unmeasured pairs involving u.
  std::size_t missing_count(NodeId u) const;
  /// Total unmeasured pairs.
  std::size_t total_missing() const;
  bool complete() const { return total_missing() == 0; }

 private:
  std::size_t index(NodeId u, NodeId v) const;
  std::size_t n_;
  std::vector<std::optional<double>> tri_;
};

/// Masks a complete matrix: each pair is dropped independently with
/// probability `missing_fraction` — a synthetic "raw pathChirp trace".
PartialBandwidthMatrix mask_measurements(const BandwidthMatrix& bw,
                                         double missing_fraction, Rng& rng);

/// The paper's preprocessing: greedily peels the node with the most missing
/// pairs (ties: higher id first) until the remaining submatrix is complete.
/// Returns the kept node ids (ascending) — possibly empty.
std::vector<NodeId> extract_complete_subset(const PartialBandwidthMatrix& bw);

/// Builds the dense symmetric matrix over `subset` (which must be complete
/// within the partial matrix).
BandwidthMatrix complete_submatrix(const PartialBandwidthMatrix& bw,
                                   std::span<const NodeId> subset);

/// Loads a *raw* trace CSV: a square matrix where non-positive or missing
/// cells mean "unmeasured" (pathChirp traces are full of them). Asymmetric
/// pairs are averaged when both directions exist; a single direction is
/// used as-is. Throws on non-square input.
PartialBandwidthMatrix load_partial_bandwidth_csv(const std::string& path);

}  // namespace bcc
