#include "data/latency_synth.h"

#include <algorithm>

#include "tree/weighted_tree.h"

namespace bcc {

DistanceMatrix synthesize_latency(const LatencyOptions& options, Rng& rng) {
  BCC_REQUIRE(options.hosts >= 2);
  BCC_REQUIRE(options.core_hop_ms_min > 0.0 &&
              options.core_hop_ms_max >= options.core_hop_ms_min);
  BCC_REQUIRE(options.access_ms_min > 0.0 &&
              options.access_ms_max >= options.access_ms_min);
  BCC_REQUIRE(options.jitter_sigma >= 0.0);
  const std::size_t n_sites =
      options.sites > 0 ? options.sites
                        : std::max<std::size_t>(2, options.hosts / 8);

  WeightedTree tree;
  std::vector<TreeVertex> site(n_sites);
  site[0] = tree.add_vertex();
  for (std::size_t s = 1; s < n_sites; ++s) {
    site[s] = tree.add_vertex();
    tree.connect(site[static_cast<std::size_t>(rng.below(s))], site[s],
                 rng.uniform(options.core_hop_ms_min, options.core_hop_ms_max));
  }
  std::vector<TreeVertex> leaf(options.hosts);
  for (std::size_t h = 0; h < options.hosts; ++h) {
    leaf[h] = tree.add_vertex();
    tree.connect(site[static_cast<std::size_t>(rng.below(n_sites))], leaf[h],
                 rng.uniform(options.access_ms_min, options.access_ms_max));
  }

  DistanceMatrix rtt(options.hosts);
  for (NodeId u = 0; u < options.hosts; ++u) {
    const auto from_u = tree.distances_from(leaf[u]);
    for (NodeId v = u + 1; v < options.hosts; ++v) {
      const double base = from_u[leaf[v]];
      rtt.set(u, v, base * rng.lognormal(0.0, options.jitter_sigma));
    }
  }
  return rtt;
}

}  // namespace bcc
