#include "data/planetlab_synth.h"

#include <algorithm>
#include <cmath>

namespace bcc {
namespace {

/// One full generation pass at a given access-link spread: topology +
/// multiplicative noise. Separate deterministic seeds keep the topology
/// structure and the noise draws identical across calibration iterations, so
/// the spread parameter is the only thing that moves.
struct RawDataset {
  Topology topology;
  BandwidthMatrix noisy;  // before absolute-level calibration
};

RawDataset generate_raw(const SynthOptions& options, double access_sigma,
                        std::uint64_t structure_seed,
                        std::uint64_t noise_seed) {
  TopologyOptions topo_opts;
  topo_opts.hosts = options.hosts;
  topo_opts.access_bw_sigma = access_sigma;
  topo_opts.c = options.c;
  Rng topo_rng(structure_seed);
  RawDataset raw{generate_topology(topo_opts, topo_rng), BandwidthMatrix{}};

  const BandwidthMatrix clean = raw.topology.bandwidths();
  BandwidthMatrix noisy(clean.size());
  Rng noise_rng(noise_seed);
  for (NodeId u = 0; u < clean.size(); ++u) {
    for (NodeId v = u + 1; v < clean.size(); ++v) {
      noisy.set(u, v, clean.at(u, v) *
                          std::exp(noise_rng.normal(0.0, options.noise_sigma)));
    }
  }
  raw.noisy = std::move(noisy);
  return raw;
}

double percentile_ratio(const BandwidthMatrix& bw) {
  return bw.percentile(80.0) / bw.percentile(20.0);
}

}  // namespace

SynthDataset synthesize_planetlab(const SynthOptions& options, Rng& rng) {
  BCC_REQUIRE(options.hosts >= 2);
  BCC_REQUIRE(options.target_p20 > 0.0 &&
              options.target_p80 >= options.target_p20);
  BCC_REQUIRE(options.noise_sigma >= 0.0);

  const std::uint64_t structure_seed = rng();
  const std::uint64_t noise_seed = rng();
  const double target_ratio = options.target_p80 / options.target_p20;

  // Bisect the access-link spread until the noisy p80/p20 ratio matches.
  // The ratio is monotone in the spread (same underlying normal draws).
  double lo = 0.02, hi = 3.0;
  RawDataset raw = generate_raw(options, 0.5 * (lo + hi), structure_seed,
                                noise_seed);
  for (int iter = 0; iter < 18; ++iter) {
    const double ratio = percentile_ratio(raw.noisy);
    if (std::abs(ratio - target_ratio) / target_ratio <
        options.ratio_tolerance) {
      break;
    }
    if (ratio < target_ratio) {
      lo = 0.5 * (lo + hi);
    } else {
      hi = 0.5 * (lo + hi);
    }
    raw = generate_raw(options, 0.5 * (lo + hi), structure_seed, noise_seed);
  }

  // Absolute level: scaling every bandwidth by m (equivalently every edge
  // weight by 1/m) is exact — pick m matching the geometric mean of the two
  // percentile targets.
  const double p20 = raw.noisy.percentile(20.0);
  const double p80 = raw.noisy.percentile(80.0);
  const double m =
      std::sqrt(options.target_p20 * options.target_p80 / (p20 * p80));
  raw.topology.scale_edges(1.0 / m);

  SynthDataset out;
  out.name = options.name;
  out.c = options.c;
  out.bandwidth = BandwidthMatrix(options.hosts);
  for (NodeId u = 0; u < options.hosts; ++u) {
    for (NodeId v = u + 1; v < options.hosts; ++v) {
      out.bandwidth.set(u, v, raw.noisy.at(u, v) * m);
    }
  }
  out.distances = rational_transform(out.bandwidth, options.c);
  out.tree_distances = raw.topology.distances();
  return out;
}

SynthDataset make_hp_planetlab(Rng& rng, double noise_sigma) {
  SynthOptions opts;
  opts.name = "HP-PlanetLab";
  opts.hosts = 190;
  opts.noise_sigma = noise_sigma;
  opts.target_p20 = 15.0;
  opts.target_p80 = 75.0;
  return synthesize_planetlab(opts, rng);
}

SynthDataset make_umd_planetlab(Rng& rng, double noise_sigma) {
  SynthOptions opts;
  opts.name = "UMD-PlanetLab";
  opts.hosts = 317;
  opts.noise_sigma = noise_sigma;
  opts.target_p20 = 30.0;
  opts.target_p80 = 110.0;
  return synthesize_planetlab(opts, rng);
}

}  // namespace bcc
