#include "data/completion.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/assert.h"
#include "common/csv.h"

namespace bcc {

PartialBandwidthMatrix::PartialBandwidthMatrix(std::size_t n)
    : n_(n), tri_(n < 2 ? 0 : n * (n - 1) / 2) {}

std::size_t PartialBandwidthMatrix::index(NodeId u, NodeId v) const {
  BCC_REQUIRE(u < n_ && v < n_ && u != v);
  if (u < v) std::swap(u, v);
  return u * (u - 1) / 2 + v;
}

std::optional<double> PartialBandwidthMatrix::at(NodeId u, NodeId v) const {
  return tri_[index(u, v)];
}

void PartialBandwidthMatrix::set(NodeId u, NodeId v, double bw_mbps) {
  BCC_REQUIRE(bw_mbps > 0.0);
  tri_[index(u, v)] = bw_mbps;
}

void PartialBandwidthMatrix::clear(NodeId u, NodeId v) {
  tri_[index(u, v)] = std::nullopt;
}

std::size_t PartialBandwidthMatrix::missing_count(NodeId u) const {
  BCC_REQUIRE(u < n_);
  std::size_t count = 0;
  for (NodeId v = 0; v < n_; ++v) {
    if (v != u && !at(u, v).has_value()) ++count;
  }
  return count;
}

std::size_t PartialBandwidthMatrix::total_missing() const {
  std::size_t count = 0;
  for (const auto& cell : tri_) {
    if (!cell.has_value()) ++count;
  }
  return count;
}

PartialBandwidthMatrix mask_measurements(const BandwidthMatrix& bw,
                                         double missing_fraction, Rng& rng) {
  BCC_REQUIRE(missing_fraction >= 0.0 && missing_fraction <= 1.0);
  PartialBandwidthMatrix partial(bw.size());
  for (NodeId u = 0; u < bw.size(); ++u) {
    for (NodeId v = u + 1; v < bw.size(); ++v) {
      if (!rng.chance(missing_fraction)) partial.set(u, v, bw.at(u, v));
    }
  }
  return partial;
}

std::vector<NodeId> extract_complete_subset(const PartialBandwidthMatrix& bw) {
  const std::size_t n = bw.size();
  std::vector<char> kept(n, 1);
  // Missing counts restricted to currently-kept nodes.
  std::vector<std::size_t> missing(n, 0);
  for (NodeId u = 0; u < n; ++u) missing[u] = bw.missing_count(u);

  std::size_t kept_count = n;
  for (;;) {
    // Find the worst offender among kept nodes.
    NodeId worst = n;
    for (NodeId u = 0; u < n; ++u) {
      if (!kept[u] || missing[u] == 0) continue;
      if (worst == n || missing[u] > missing[worst] ||
          (missing[u] == missing[worst] && u > worst)) {
        worst = u;
      }
    }
    if (worst == n) break;  // complete
    kept[worst] = 0;
    --kept_count;
    if (kept_count == 0) break;
    for (NodeId v = 0; v < n; ++v) {
      if (kept[v] && v != worst && !bw.at(worst, v).has_value()) {
        --missing[v];
      }
    }
  }
  std::vector<NodeId> subset;
  subset.reserve(kept_count);
  for (NodeId u = 0; u < n; ++u) {
    if (kept[u]) subset.push_back(u);
  }
  return subset;
}

PartialBandwidthMatrix load_partial_bandwidth_csv(const std::string& path) {
  const CsvTable table = read_csv(path);
  const std::size_t n = table.rows.size();
  if (n == 0) throw std::runtime_error("empty trace: " + path);
  for (const auto& row : table.rows) {
    if (row.size() != n) {
      throw std::runtime_error("trace matrix not square: " + path);
    }
  }
  PartialBandwidthMatrix partial(n);
  auto measured = [](double v) { return std::isfinite(v) && v > 0.0; };
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double fwd = table.rows[u][v];
      const double rev = table.rows[v][u];
      if (measured(fwd) && measured(rev)) {
        partial.set(u, v, 0.5 * (fwd + rev));
      } else if (measured(fwd)) {
        partial.set(u, v, fwd);
      } else if (measured(rev)) {
        partial.set(u, v, rev);
      }
    }
  }
  return partial;
}

BandwidthMatrix complete_submatrix(const PartialBandwidthMatrix& bw,
                                   std::span<const NodeId> subset) {
  BandwidthMatrix out(subset.size());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    for (std::size_t j = i + 1; j < subset.size(); ++j) {
      const auto value = bw.at(subset[i], subset[j]);
      BCC_REQUIRE(value.has_value());
      out.set(i, j, *value);
    }
  }
  return out;
}

}  // namespace bcc
