// Synthetic stand-ins for the paper's two measurement datasets (see
// DESIGN.md §3 — the real HP-PlanetLab and UMD-PlanetLab pathChirp traces
// are not publicly available).
//
// Pipeline: generate a perfect-tree-metric topology (topology_gen), read off
// pairwise bandwidth, multiply by i.i.d. lognormal measurement noise (σ
// controls the quartet-ε treeness), and calibrate so the noisy bandwidth
// distribution matches the paper's reported percentile spans
// (HP: 20th–80th ≈ 15–75 Mbps over 190 nodes; UMD: ≈ 30–110 over 317).
// Calibration adjusts the access-link spread (to hit the p80/p20 ratio) and
// then scales all edges (to hit the absolute level — exact, since scaling
// edges scales every bandwidth by the same factor).
#pragma once

#include <string>

#include "common/rng.h"
#include "data/topology_gen.h"
#include "metric/bandwidth.h"

namespace bcc {

struct SynthOptions {
  std::string name = "synthetic";
  std::size_t hosts = 100;
  /// Lognormal σ of multiplicative measurement noise (one symmetric draw per
  /// pair). 0 gives a perfect tree metric; ~0.25 lands ε_avg in the range
  /// reported for real PlanetLab bandwidth data.
  double noise_sigma = 0.25;
  double target_p20 = 15.0;  // Mbps, 20th percentile of pairwise bandwidth
  double target_p80 = 75.0;  // Mbps, 80th percentile
  double c = kDefaultTransformC;
  /// Relative tolerance for the p80/p20 ratio calibration.
  double ratio_tolerance = 0.10;
};

/// A synthesized dataset: the "measured" noisy bandwidth plus ground truth.
struct SynthDataset {
  std::string name;
  BandwidthMatrix bandwidth;      // noisy symmetric measurements
  DistanceMatrix distances;       // rational transform of `bandwidth`
  DistanceMatrix tree_distances;  // the underlying perfect tree metric
  double c = kDefaultTransformC;
};

/// Synthesizes a calibrated dataset. Deterministic for a given (options,
/// seed of rng) pair.
SynthDataset synthesize_planetlab(const SynthOptions& options, Rng& rng);

/// The HP-PlanetLab stand-in: 190 hosts, 20th–80th percentile 15–75 Mbps.
SynthDataset make_hp_planetlab(Rng& rng, double noise_sigma = 0.25);

/// The UMD-PlanetLab stand-in: 317 hosts, 20th–80th percentile 30–110 Mbps.
SynthDataset make_umd_planetlab(Rng& rng, double noise_sigma = 0.25);

}  // namespace bcc
