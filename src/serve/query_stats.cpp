#include "serve/query_stats.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace bcc {

namespace {

std::size_t latency_bucket(std::uint64_t micros) {
  return std::min<std::size_t>(std::bit_width(micros),
                               QueryStats::kLatencyBuckets - 1);
}

}  // namespace

std::uint64_t QueryStats::Snapshot::total() const {
  std::uint64_t sum = 0;
  for (std::uint64_t c : by_status) sum += c;
  return sum;
}

QueryStats::Snapshot& QueryStats::Snapshot::merge(const Snapshot& other) {
  for (std::size_t i = 0; i < by_status.size(); ++i) {
    by_status[i] += other.by_status[i];
  }
  cache_hits += other.cache_hits;
  for (std::size_t i = 0; i < hop_histogram.size(); ++i) {
    hop_histogram[i] += other.hop_histogram[i];
  }
  for (std::size_t i = 0; i < latency_histogram.size(); ++i) {
    latency_histogram[i] += other.latency_histogram[i];
  }
  max_micros = std::max(max_micros, other.max_micros);
  consistent = consistent && other.consistent;
  return *this;
}

std::uint64_t QueryStats::Snapshot::latency_percentile_micros(double p) const {
  std::uint64_t samples = 0;
  for (std::uint64_t c : latency_histogram) samples += c;
  if (samples == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(std::clamp(p, 0.0, 100.0) / 100.0 *
                static_cast<double>(samples)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < latency_histogram.size(); ++i) {
    cumulative += latency_histogram[i];
    if (cumulative >= rank && latency_histogram[i] > 0) {
      if (i + 1 == latency_histogram.size()) return max_micros;
      // Bucket upper bound; the true max caps it (the top sample may sit
      // well below its bucket's ceiling).
      return std::min((std::uint64_t{1} << i) - 1, max_micros);
    }
  }
  return max_micros;
}

void QueryStats::record(const QueryResult& result, bool cache_hit) {
  in_flight_.fetch_add(1, std::memory_order_acquire);
  by_status_[static_cast<std::size_t>(result.status)].fetch_add(
      1, std::memory_order_relaxed);
  if (cache_hit) cache_hits_.fetch_add(1, std::memory_order_relaxed);
  if (result.status == QueryStatus::kFound ||
      result.status == QueryStatus::kNotFound) {
    const std::size_t bucket = std::min<std::size_t>(result.hops,
                                                     kHopBuckets - 1);
    hops_[bucket].fetch_add(1, std::memory_order_relaxed);
  }
  latency_[latency_bucket(result.micros)].fetch_add(1,
                                                    std::memory_order_relaxed);
  std::uint64_t seen = max_micros_.load(std::memory_order_relaxed);
  while (result.micros > seen &&
         !max_micros_.compare_exchange_weak(seen, result.micros,
                                            std::memory_order_relaxed)) {
  }
  completed_.fetch_add(1, std::memory_order_release);
  in_flight_.fetch_sub(1, std::memory_order_release);
}

QueryStats::Snapshot QueryStats::snapshot() const {
  // Bounded seqlock read: a copy is exact iff no record() ran during it —
  // no writer was mid-flight at either edge and the completion epoch did not
  // advance. Bounded so a saturating write load degrades the snapshot to
  // best-effort instead of starving the reader.
  constexpr int kMaxAttempts = 64;
  Snapshot s;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const bool quiet_before =
        in_flight_.load(std::memory_order_acquire) == 0;
    const std::uint64_t completed_before =
        completed_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < by_status_.size(); ++i) {
      s.by_status[i] = by_status_[i].load(std::memory_order_relaxed);
    }
    s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < hops_.size(); ++i) {
      s.hop_histogram[i] = hops_[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < latency_.size(); ++i) {
      s.latency_histogram[i] = latency_[i].load(std::memory_order_relaxed);
    }
    s.max_micros = max_micros_.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (quiet_before && in_flight_.load(std::memory_order_acquire) == 0 &&
        completed_.load(std::memory_order_acquire) == completed_before) {
      s.consistent = true;
      return s;
    }
  }
  s.consistent = false;
  return s;
}

void QueryStats::reset() {
  for (auto& c : by_status_) c.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  for (auto& c : hops_) c.store(0, std::memory_order_relaxed);
  for (auto& c : latency_) c.store(0, std::memory_order_relaxed);
  max_micros_.store(0, std::memory_order_relaxed);
}

}  // namespace bcc
