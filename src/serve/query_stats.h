// Observability for the serving layer: per-status counters, a hop
// histogram, and log-scale latency percentiles — the serving-side complement
// of MessageMetrics (which counts protocol traffic, not query traffic).
//
// All recording is lock-free (relaxed atomics). snapshot() is the ONLY read
// API — there are deliberately no per-field getters, because independent
// atomic reads can tear against a concurrent record() (status bumped,
// latency bucket not yet). snapshot() brackets its reads with an in-flight
// counter and a completion epoch (a writer-counting seqlock): when no
// record() overlapped, the returned Snapshot is exactly consistent
// (sum(by_status) == sum(latency_histogram)) and `consistent` is true.
// Under relentless concurrent load it retries a bounded number of times and
// then returns a best-effort copy with `consistent` false — still within
// the in-flight queries of the truth, and never blocking writers.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "core/query.h"

namespace bcc {

/// See file comment. Thread-safe; one instance per QueryService.
class QueryStats {
 public:
  /// Hop buckets 0..15 plus one overflow bucket for 16+.
  static constexpr std::size_t kHopBuckets = 17;
  /// Latency buckets by power of two: bucket i holds micros with
  /// bit_width(micros) == i (i.e. roughly [2^(i-1), 2^i)), top bucket open.
  static constexpr std::size_t kLatencyBuckets = 24;

  /// Plain-data copy of the counters, safe to read at leisure.
  struct Snapshot {
    std::array<std::uint64_t, kQueryStatusCount> by_status{};
    std::uint64_t cache_hits = 0;
    std::array<std::uint64_t, kHopBuckets> hop_histogram{};
    std::array<std::uint64_t, kLatencyBuckets> latency_histogram{};
    std::uint64_t max_micros = 0;
    /// True when no record() overlapped the reads: every counter belongs to
    /// the same prefix of recorded queries (see file comment).
    bool consistent = true;

    std::uint64_t count(QueryStatus status) const {
      return by_status[static_cast<std::size_t>(status)];
    }
    std::uint64_t total() const;
    /// Accumulates `other` into this snapshot (counter-wise sums, max of
    /// maxima, AND of consistency) — how QueryService aggregates its
    /// per-shard stats into one service-wide view.
    Snapshot& merge(const Snapshot& other);
    /// Upper bound of the latency bucket holding percentile p (0..100];
    /// accurate to the bucket's factor-of-two width. 0 when empty.
    std::uint64_t latency_percentile_micros(double p) const;
  };

  /// Records one served result (route-bearing statuses also feed the hop
  /// histogram; every record feeds status + latency).
  void record(const QueryResult& result, bool cache_hit = false);

  Snapshot snapshot() const;
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kQueryStatusCount> by_status_{};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::array<std::atomic<std::uint64_t>, kHopBuckets> hops_{};
  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> latency_{};
  std::atomic<std::uint64_t> max_micros_{0};
  /// Writer-counting seqlock (see file comment): records in progress, and
  /// records fully finished.
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> completed_{0};
};

}  // namespace bcc
