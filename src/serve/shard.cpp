#include "serve/shard.h"

#include <algorithm>

namespace bcc {

AdmitDecision QueryShard::admit(const AdmissionOptions& options,
                                QueryPriority priority,
                                std::uint64_t now_micros) {
  // In-flight ceiling first: it bounds memory/threads regardless of rate,
  // and applies to every priority. Optimistic increment, undone on refusal,
  // keeps the uncontended path off the mutex.
  const std::size_t in_flight =
      inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options.queue_limit > 0 && in_flight > options.queue_limit) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    return AdmitDecision::kShedQueueFull;
  }
  // Racy max update is fine: the peak is a diagnostic high-water mark.
  std::size_t peak = peak_inflight_.load(std::memory_order_relaxed);
  while (in_flight > peak &&
         !peak_inflight_.compare_exchange_weak(peak, in_flight,
                                               std::memory_order_relaxed)) {
  }

  if (options.rate_qps <= 0.0) return AdmitDecision::kAdmitted;

  std::lock_guard<std::mutex> lock(mutex_);
  if (!bucket_primed_) {
    bucket_primed_ = true;  // cold bucket starts full
    tokens_ = options.burst;
    last_refill_micros_ = now_micros;
  } else {
    const std::uint64_t elapsed =
        now_micros > last_refill_micros_ ? now_micros - last_refill_micros_
                                         : 0;
    tokens_ = std::min(options.burst,
                       tokens_ + options.rate_qps * 1e-6 *
                                     static_cast<double>(elapsed));
  }
  last_refill_micros_ = std::max(last_refill_micros_, now_micros);

  // Priority tiers: kHigh may run the bucket into bounded debt (one extra
  // burst), kNormal needs a whole token, kLow must leave a quarter-burst
  // reserve for the tiers above it.
  double floor = 1.0;
  switch (priority) {
    case QueryPriority::kHigh: floor = -options.burst; break;
    case QueryPriority::kNormal: floor = 1.0; break;
    case QueryPriority::kLow: floor = 1.0 + options.burst * 0.25; break;
  }
  if (tokens_ < floor) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    return AdmitDecision::kShedNoTokens;
  }
  tokens_ -= 1.0;
  return AdmitDecision::kAdmitted;
}

void QueryShard::cache_store(const QueryKey& key, std::uint64_t version,
                             const QueryResult& result, bool converged) {
  std::lock_guard<std::mutex> lock(mutex_);
  // A newer snapshot's first result advances the shard (same lazy
  // invalidation as cache_lookup); a result computed on an *older* snapshot
  // than the shard has seen is stale on arrival and dropped.
  if (version > cache_version_) {
    fresh_.clear();
    cache_version_ = version;
  }
  if (cache_version_ == version) fresh_.insert_or_assign(key, result);
  if (converged) {
    const auto it = stale_.find(key);
    if (it != stale_.end()) {
      it->second = result;
    } else if (stale_.size() < kStaleCapacity) {
      stale_.emplace(key, result);
    }
  }
}

void QueryShard::cache_clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  fresh_.clear();
  stale_.clear();
}

bool QueryShard::stale_lookup(const QueryKey& key, QueryResult* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = stale_.find(key);
  if (it == stale_.end()) return false;
  *out = it->second;
  return true;
}

}  // namespace bcc
