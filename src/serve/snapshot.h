// Immutable snapshots of converged system state for the serving layer.
//
// Query serving (Algorithm 4) is read-only over three pieces of state: the
// per-node protocol tables (clustering spaces + CRTs), the predicted metric,
// and the bandwidth class set. A SystemSnapshot deep-copies all three out of
// a DecentralizedClusterSystem so that
//
//   * serving threads share one `std::shared_ptr<const SystemSnapshot>` and
//     read it without any locking — the snapshot never mutates;
//   * restructuring (gossip refresh, churn repair) proceeds on the live
//     system without ever blocking — or being blocked by — query traffic;
//   * QueryService::refresh() swaps the pointer atomically, and in-flight
//     batches keep serving from the snapshot they started with (each batch
//     pins its snapshot for its whole lifetime).
//
// Snapshots are versioned so caches (and tests) can tell which state a
// result was computed against.
#pragma once

#include <cstdint>
#include <memory>

#include "core/query.h"

namespace bcc {

class DecentralizedClusterSystem;
class AsyncOverlay;

/// See file comment. Members are set once at construction and never touched
/// again; concurrent readers need no synchronization.
struct SystemSnapshot {
  OverlayNodeMap nodes;
  DistanceMatrix predicted;
  BandwidthClasses classes;
  FindClusterOptions find_options;
  std::uint64_t version = 0;
  /// False when the snapshot was taken while gossip was disrupted (system
  /// not at its fixpoint, or an async overlay with crashed nodes/suspected
  /// peers): every result served from it is flagged degraded.
  bool converged = true;
  /// The dynamics epoch the underlying state was last repaired against
  /// (0 = not driven by a streaming pipeline). Results carry it so a
  /// degraded answer served mid-repair self-describes how stale it is.
  std::uint64_t source_epoch = 0;

  std::size_t size() const { return nodes.size(); }

  /// Serves one request against this snapshot (Algorithm 4; see
  /// QueryProcessor::run for status semantics). Results carry
  /// degraded = !converged.
  QueryResult run(const QueryRequest& request) const;
};

/// Deep-copies the system's current serving state into a fresh snapshot
/// (converged is read off the system). `source_epoch` stamps the dynamics
/// epoch the state was last repaired against (streaming pipelines).
std::shared_ptr<const SystemSnapshot> snapshot_of(
    const DecentralizedClusterSystem& system, std::uint64_t version = 0,
    std::uint64_t source_epoch = 0);

/// Deep-copies a (possibly mid-churn) asynchronous overlay's protocol state
/// into a serving snapshot. `converged` is the overlay's health at capture
/// time (AsyncOverlay::healthy()): a snapshot taken while nodes are down or
/// peers are suspected serves degraded, best-effort results.
std::shared_ptr<const SystemSnapshot> snapshot_of(
    const AsyncOverlay& overlay, const DistanceMatrix& predicted,
    const BandwidthClasses& classes, FindClusterOptions find_options = {},
    std::uint64_t version = 0);

/// Wraps already-extracted protocol tables into a serving snapshot. Used by
/// the process-per-node runtime, whose overlay holds only the local node's
/// tables: routing that leaves the map stops gracefully and the result is
/// flagged degraded (pass converged = false to flag every result, e.g. while
/// peers are suspected down).
std::shared_ptr<const SystemSnapshot> make_snapshot(
    OverlayNodeMap nodes, DistanceMatrix predicted, BandwidthClasses classes,
    FindClusterOptions find_options = {}, std::uint64_t version = 0,
    bool converged = true);

}  // namespace bcc
