// Immutable snapshots of converged system state for the serving layer.
//
// Query serving (Algorithm 4) is read-only over three pieces of state: the
// per-node protocol tables (clustering spaces + CRTs), the predicted metric,
// and the bandwidth class set. A SystemSnapshot deep-copies all three out of
// a DecentralizedClusterSystem so that
//
//   * serving threads share one `std::shared_ptr<const SystemSnapshot>` and
//     read it without any locking — the snapshot never mutates;
//   * restructuring (gossip refresh, churn repair) proceeds on the live
//     system without ever blocking — or being blocked by — query traffic;
//   * QueryService::refresh() swaps the pointer atomically, and in-flight
//     batches keep serving from the snapshot they started with (each batch
//     pins its snapshot for its whole lifetime).
//
// Snapshots are versioned so caches (and tests) can tell which state a
// result was computed against.
#pragma once

#include <cstdint>
#include <memory>

#include "core/query.h"

namespace bcc {

class DecentralizedClusterSystem;

/// See file comment. Members are set once at construction and never touched
/// again; concurrent readers need no synchronization.
struct SystemSnapshot {
  OverlayNodeMap nodes;
  DistanceMatrix predicted;
  BandwidthClasses classes;
  FindClusterOptions find_options;
  std::uint64_t version = 0;

  std::size_t size() const { return nodes.size(); }

  /// Serves one request against this snapshot (Algorithm 4; see
  /// QueryProcessor::run for status semantics).
  QueryResult run(const QueryRequest& request) const;
};

/// Deep-copies the system's current serving state into a fresh snapshot.
std::shared_ptr<const SystemSnapshot> snapshot_of(
    const DecentralizedClusterSystem& system, std::uint64_t version = 0);

}  // namespace bcc
