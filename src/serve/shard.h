// One shard of the query plane: memo cache, stats, and admission control,
// all private to the shard so cores serving different shards never touch a
// shared cache line.
//
// QueryService hashes every request (start, k, resolved class) to a shard;
// that shard owns
//
//   * the fresh memo cache — results valid for the snapshot version they
//     were computed on, invalidated lazily on the first access after a
//     snapshot swap (so refresh() stays O(1) in cache size);
//   * the stale answer cache — the last answer memoized from a *converged*
//     snapshot, kept across swaps, consulted only by the load-shedding path
//     so a shed query can still get a well-formed degraded answer without
//     doing any routing work;
//   * a QueryStats instance (aggregated across shards by
//     QueryService::stats());
//   * the admission controller — a token bucket plus an in-flight ceiling
//     (the bounded per-shard "queue": submit() is synchronous, so in-flight
//     count is queue depth). Under overload the controller sheds instead of
//     queueing unboundedly; QueryPriority decides who is shed first.
//
// Thread-safety: every member function may be called concurrently; the
// shard mutex guards cache + token state, in-flight is a bare atomic so the
// hot path can bump it without the mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "core/query.h"
#include "serve/query_stats.h"

namespace bcc {

/// Admission-control knobs, enforced per shard. The defaults admit
/// everything (no token bucket, no in-flight ceiling).
struct AdmissionOptions {
  /// Sustained admitted-query rate per shard in queries/sec; 0 disables the
  /// token bucket.
  double rate_qps = 0.0;
  /// Token-bucket depth in queries: the burst admitted from a cold bucket,
  /// and the debt ceiling high-priority queries may run it into.
  double burst = 64.0;
  /// Max concurrently served queries per shard (the bounded queue);
  /// 0 = unlimited. Enforced for every priority.
  std::size_t queue_limit = 0;

  bool enabled() const { return rate_qps > 0.0 || queue_limit > 0; }
};

/// Identity of a memoizable query: entry node, k, and the *resolved* class.
struct QueryKey {
  NodeId start = 0;
  std::size_t k = 0;
  std::size_t class_idx = 0;
  bool operator==(const QueryKey&) const = default;
};

/// splitmix64-style mixing of the three fields; also QueryService's shard
/// selector, so one hash both places the query and indexes the cache.
/// Defined inline: this runs on every query, and keeping it visible to the
/// serving TU lets the cache-hit path inline both the shard selection and
/// the map probe.
struct QueryKeyHash {
  std::size_t operator()(const QueryKey& key) const {
    auto mix = [](std::uint64_t x) {
      x += 0x9e3779b97f4a7c15ull;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      return x ^ (x >> 31);
    };
    std::uint64_t h = mix(static_cast<std::uint64_t>(key.start));
    h = mix(h ^ static_cast<std::uint64_t>(key.k));
    h = mix(h ^ static_cast<std::uint64_t>(key.class_idx));
    return static_cast<std::size_t>(h);
  }
};

/// Why the admission controller let a query through (or did not).
enum class AdmitDecision : std::uint8_t {
  kAdmitted = 0,
  kShedQueueFull = 1,   ///< in-flight ceiling reached
  kShedNoTokens = 2,    ///< token bucket empty for this priority
};

/// See file comment.
class QueryShard {
 public:
  /// Stale-cache entries kept per shard; past this, new keys are not
  /// retained (existing keys still update in place).
  static constexpr std::size_t kStaleCapacity = 4096;

  // -- admission ----------------------------------------------------------
  /// Decides whether a query may be served now. `now_micros` is any
  /// monotonic microsecond clock (passed in for determinism in tests).
  /// Counts a token / in-flight slot on admission; pair every kAdmitted
  /// with a later finish().
  AdmitDecision admit(const AdmissionOptions& options, QueryPriority priority,
                      std::uint64_t now_micros);
  void finish() noexcept {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
  }

  std::size_t inflight() const noexcept {
    return inflight_.load(std::memory_order_relaxed);
  }
  /// High-water mark of concurrently served queries (bounded-queue proof).
  std::size_t peak_inflight() const noexcept {
    return peak_inflight_.load(std::memory_order_relaxed);
  }

  // -- fresh memo cache ---------------------------------------------------
  /// Looks up `key` among results computed on snapshot `version`; clears
  /// the shard lazily when the version moved on. True on hit. Inline: this
  /// is the memoized fast path every cached query takes.
  bool cache_lookup(const QueryKey& key, std::uint64_t version,
                    QueryResult* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (cache_version_ != version) {
      fresh_.clear();
      cache_version_ = version;
      return false;
    }
    const auto it = fresh_.find(key);
    if (it == fresh_.end()) return false;
    *out = it->second;
    return true;
  }
  /// Files a result under `version` (dropped if the shard has already
  /// advanced past it). `converged` results also feed the stale cache.
  void cache_store(const QueryKey& key, std::uint64_t version,
                   const QueryResult& result, bool converged);
  void cache_clear();

  // -- stale answers for the shedding path --------------------------------
  /// Best-effort answer from the last converged snapshot that memoized this
  /// key; no routing work. True on hit.
  bool stale_lookup(const QueryKey& key, QueryResult* out);

  /// Per-shard serving statistics (aggregate with QueryStats::Snapshot::
  /// merge via QueryService::stats()).
  QueryStats& stats() { return stats_; }
  const QueryStats& stats() const { return stats_; }

 private:
  // In-flight is atomic (hot path, no mutex); everything else under mutex_.
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::size_t> peak_inflight_{0};

  std::mutex mutex_;
  std::uint64_t cache_version_ = 0;  // guarded by mutex_
  std::unordered_map<QueryKey, QueryResult, QueryKeyHash>
      fresh_;  // guarded by mutex_
  std::unordered_map<QueryKey, QueryResult, QueryKeyHash>
      stale_;  // guarded by mutex_
  // Token bucket (guarded by mutex_): lazily refilled from rate_qps. The
  // first admit primes the bucket to a full burst; tokens_ itself may go
  // negative (kHigh debt), so a separate flag marks initialization.
  bool bucket_primed_ = false;
  double tokens_ = 0.0;
  std::uint64_t last_refill_micros_ = 0;

  QueryStats stats_;
};

}  // namespace bcc
