// A small fixed-size worker pool for the serving layer.
//
// Deliberately minimal: a locked deque of std::function tasks drained by N
// long-lived workers. Query serving posts coarse chunks (see
// QueryService::submit_batch), so queue contention is a handful of lock
// acquisitions per batch, not per query — a fancier work-stealing deque
// would buy nothing here.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bcc {

/// See file comment. post() never blocks on task execution; the destructor
/// drains the queue (all posted tasks run) and joins the workers.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues one task; some worker executes it eventually. Thread-safe.
  void post(std::function<void()> task);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;  // guarded by mutex_
  bool stopping_ = false;                    // guarded by mutex_
  std::vector<std::thread> workers_;
};

}  // namespace bcc
