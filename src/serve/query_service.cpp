#include "serve/query_service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <latch>
#include <thread>

#include "core/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bcc {

namespace {

// Serving-layer instruments in the global registry (the per-service
// QueryStats stays the precise per-instance view; these aggregate across
// services for export).
obs::Counter& g_queries() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.serve.queries");
  return c;
}
obs::Counter& g_cache_hits() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.serve.cache_hits");
  return c;
}
obs::Histogram& g_query_micros() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("bcc.serve.query_micros");
  return h;
}
obs::Gauge& g_cache_hit_ratio() {
  // kMean: a fleet-wide hit ratio is the average of the node ratios, not
  // their max (the old policy quietly reported the luckiest node).
  static obs::Gauge& g = obs::Registry::global().gauge(
      "bcc.serve.cache_hit_ratio", obs::GaugeAgg::kMean);
  return g;
}

// Shard-plane instruments: admission and shedding.
obs::Counter& g_shard_admitted() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.serve.shard.admitted");
  return c;
}
obs::Counter& g_shard_shed() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.serve.shard.shed");
  return c;
}
obs::Counter& g_shard_shed_with_answer() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.serve.shard.shed_with_answer");
  return c;
}
obs::Counter& g_shard_deadline_expired() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.serve.shard.deadline_expired");
  return c;
}
obs::Gauge& g_shard_inflight() {
  // kSum: in-flight queries add up across nodes; the fleet view wants the
  // total load, not one shard's.
  static obs::Gauge& g = obs::Registry::global().gauge(
      "bcc.serve.shard.inflight", obs::GaugeAgg::kSum);
  return g;
}

void record_query_obs(std::uint64_t micros, bool cache_hit,
                      std::uint64_t trace_id) {
  g_queries().add(1);
  if (cache_hit) g_cache_hits().add(1);
  // The trace id rides the latency histogram as a per-bucket exemplar, so a
  // p99 spike in `bcc top` names a concrete query to pull the trace for.
  g_query_micros().record_with_exemplar(micros, trace_id);
  // Refreshing the ratio gauge sums every stripe of two counters (32 padded
  // cache lines); sample it rather than paying that on each query. The first
  // query still publishes so the gauge is live immediately.
  thread_local std::uint32_t tick = 0;
  if ((tick++ & 63u) == 0) {
    g_cache_hit_ratio().set(static_cast<double>(g_cache_hits().value()) /
                            static_cast<double>(g_queries().value()));
  }
}

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::uint64_t now_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Only terminal routing outcomes are worth memoizing; argument errors are
/// answered in nanoseconds anyway.
bool cacheable(QueryStatus status) {
  return status == QueryStatus::kFound || status == QueryStatus::kNotFound;
}

/// Pairs QueryShard::admit's in-flight slot with its finish() on every
/// return path.
struct FinishGuard {
  QueryShard* shard = nullptr;
  ~FinishGuard() {
    if (shard != nullptr) shard->finish();
  }
};

/// Stage-boundary clock for explain profiles. One steady_clock read per
/// boundary; each stage's end doubles as the next stage's begin, so the
/// stages telescope exactly to the measured total (what lets the explain
/// self-consistency test demand >= 95% coverage). Inert — no clock reads —
/// unless the request opted in.
struct StageClock {
  bool on = false;
  std::chrono::steady_clock::time_point mark;
  /// Nanoseconds since the previous boundary; advances the boundary.
  std::uint64_t lap() {
    if (!on) return 0;
    const auto now = std::chrono::steady_clock::now();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        now - mark)
                        .count();
    mark = now;
    return static_cast<std::uint64_t>(ns);
  }
};

}  // namespace

QueryService::QueryService(const DecentralizedClusterSystem& system,
                           QueryServiceOptions options)
    : options_(options),
      pool_(resolve_threads(options.threads)),
      snapshot_(snapshot_of(system, /*version=*/1)) {
  options_.threads = pool_.size();
  const std::size_t shard_count = std::max<std::size_t>(1, options_.shards);
  options_.shards = shard_count;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<QueryShard>());
  }
}

QueryResult QueryService::shed(QueryShard& shard, const QueryKey& key,
                               const SystemSnapshot& snap,
                               bool deadline_expired, bool* stale_answer) {
  QueryResult result;
  const bool stale = shard.stale_lookup(key, &result);
  if (stale_answer != nullptr) *stale_answer = stale;
  if (stale) {
    // The payload (cluster/hops/route/class/snapshot_version) is the answer
    // last memoized from a converged snapshot; keep it, mark it shed+stale.
    shed_with_answer_.fetch_add(1, std::memory_order_relaxed);
    g_shard_shed_with_answer().add(1);
  } else {
    result.snapshot_version = snap.version;
    result.class_idx = key.class_idx;
  }
  result.status = QueryStatus::kShed;
  result.degraded = true;
  if (deadline_expired) {
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    g_shard_deadline_expired().add(1);
  }
  g_shard_shed().add(1);
  return result;
}

QueryResult QueryService::serve_one(const SystemSnapshot& snap,
                                    const QueryRequest& request,
                                    std::uint64_t queued_micros,
                                    std::uint64_t epoch_pin_ns) {
  obs::Span span(obs::SpanCategory::kServe, "serve_query");
  const auto t0 = std::chrono::steady_clock::now();
  QueryProfile prof;
  StageClock clock{request.profile, t0};
  if (request.profile) {
    prof.queue_ns = queued_micros * 1000;
    prof.epoch_pin_ns = epoch_pin_ns;
    prof.snapshot_version = snap.version;
  }
  // Runs on every return path; cached and stale results get the *current*
  // span's trace id, not the one they were computed under. `final_stage` is
  // the profile stage this path ended in: its lap closes at the SAME clock
  // read that defines total_ns, so stages telescope to the total exactly.
  auto stamp = [&](QueryResult& r, QueryPath path,
                   std::uint64_t QueryProfile::*final_stage) {
    const auto now = std::chrono::steady_clock::now();
    r.micros = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - t0)
            .count());
    r.trace_id = span.trace_id();
    if (request.profile) {
      prof.*final_stage += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                               clock.mark)
              .count());
      prof.path = path;
      prof.total_ns =
          prof.queue_ns + prof.epoch_pin_ns +
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(now - t0)
                  .count());
      r.profile = prof;
    }
  };

  // Validate up front (same precedence as QueryProcessor::run). Argument
  // errors bypass admission control entirely: they cost nanoseconds, and
  // shedding them would only mask caller bugs under load.
  QueryResult result;
  const auto cls = resolve_class(request, snap.classes);
  if (request.k < 2) {
    result.status = QueryStatus::kInvalidK;
  } else if (!cls) {
    result.status = QueryStatus::kBandwidthUnsatisfiable;
  } else if (!snap.nodes.count(request.start)) {
    result.status = QueryStatus::kUnknownStart;
  }
  if (result.status != QueryStatus::kNotFound) {  // argument error
    result.snapshot_version = snap.version;
    result.degraded = !snap.converged;
    const QueryKey err_key{request.start, request.k, cls.value_or(0)};
    if (request.profile) {
      prof.shard =
          static_cast<std::uint32_t>(QueryKeyHash{}(err_key) % shards_.size());
    }
    stamp(result, QueryPath::kBypass, &QueryProfile::validate_ns);
    shard_for(err_key).stats().record(result);
    record_query_obs(result.micros, /*cache_hit=*/false, result.trace_id);
    return result;
  }

  const QueryKey key{request.start, request.k, *cls};
  const std::size_t shard_idx = QueryKeyHash{}(key) % shards_.size();
  QueryShard& shard = *shards_[shard_idx];
  if (request.profile) {
    prof.shard = static_cast<std::uint32_t>(shard_idx);
    prof.validate_ns = clock.lap();
  }

  // A query that already waited past its deadline is shed, never served
  // late (only batch fanout introduces waiting; direct submit passes 0).
  // The shed path's work is a stale-cache probe, so its lap lands in
  // cache_ns.
  bool stale = false;
  if (request.deadline_micros > 0 && queued_micros > request.deadline_micros) {
    result = shed(shard, key, snap, /*deadline_expired=*/true, &stale);
    stamp(result,
          stale ? QueryPath::kStaleFallback : QueryPath::kShedEmpty,
          &QueryProfile::cache_ns);
    shard.stats().record(result);
    record_query_obs(result.micros, /*cache_hit=*/false, result.trace_id);
    return result;
  }

  FinishGuard fin;
  if (options_.admission.enabled()) {
    const AdmitDecision decision =
        shard.admit(options_.admission, request.priority, now_micros());
    if (decision != AdmitDecision::kAdmitted) {
      auto& counter = decision == AdmitDecision::kShedQueueFull
                          ? shed_queue_full_
                          : shed_no_tokens_;
      counter.fetch_add(1, std::memory_order_relaxed);
      prof.admission_ns = clock.lap();
      result = shed(shard, key, snap, /*deadline_expired=*/false, &stale);
      stamp(result,
            stale ? QueryPath::kStaleFallback : QueryPath::kShedEmpty,
            &QueryProfile::cache_ns);
      shard.stats().record(result);
      record_query_obs(result.micros, /*cache_hit=*/false, result.trace_id);
      return result;
    }
    fin.shard = &shard;
    admitted_.fetch_add(1, std::memory_order_relaxed);
    g_shard_admitted().add(1);
    g_shard_inflight().set(static_cast<double>(shard.inflight()));
  }
  prof.admission_ns += clock.lap();

  if (options_.cache_enabled && shard.cache_lookup(key, snap.version,
                                                   &result)) {
    stamp(result, QueryPath::kCacheHit, &QueryProfile::cache_ns);
    shard.stats().record(result, /*cache_hit=*/true);
    record_query_obs(result.micros, /*cache_hit=*/true, result.trace_id);
    return result;
  }
  prof.cache_ns = clock.lap();

  result = snap.run(request);
  stamp(result, QueryPath::kCompute, &QueryProfile::compute_ns);
  if (options_.cache_enabled && cacheable(result.status)) {
    shard.cache_store(key, snap.version, result, snap.converged);
  }
  shard.stats().record(result);
  record_query_obs(result.micros, /*cache_hit=*/false, result.trace_id);
  return result;
}

QueryResult QueryService::submit(const QueryRequest& request) {
  // Lock-free snapshot pin; the guard spans exactly one query. A profiled
  // submit times the pin itself — the one serve stage that happens before
  // serve_one gets control.
  if (request.profile) {
    const auto pin_t0 = std::chrono::steady_clock::now();
    const auto guard = snapshot_.read();
    const auto pin_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - pin_t0)
            .count());
    return serve_one(*guard, request, /*queued_micros=*/0, pin_ns);
  }
  const auto guard = snapshot_.read();
  return serve_one(*guard, request, /*queued_micros=*/0);
}

std::vector<QueryResult> QueryService::submit_batch(
    std::span<const QueryRequest> requests) {
  std::vector<QueryResult> results(requests.size());
  if (requests.empty()) return results;
  // One read-side critical section held by the caller pins the whole
  // batch's snapshot: workers share the raw pointer, and the epoch domain
  // keeps it alive until this guard drops (after done.wait()).
  const auto guard = snapshot_.read();
  const SystemSnapshot& snap = *guard;
  const auto batch_t0 = std::chrono::steady_clock::now();

  const std::size_t tasks = std::min(pool_.size(), requests.size());
  // Coarse dynamic chunking: cheap queries amortize the atomic, slow ones
  // still balance across workers.
  const std::size_t block =
      std::max<std::size_t>(1, requests.size() / (tasks * 8));

  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  std::latch done(static_cast<std::ptrdiff_t>(tasks));
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (std::size_t t = 0; t < tasks; ++t) {
    pool_.post([&, next, block] {
      try {
        for (;;) {
          const std::size_t begin = next->fetch_add(block);
          if (begin >= requests.size()) break;
          const std::size_t end = std::min(begin + block, requests.size());
          // Time already spent queued behind earlier chunks — what a
          // request's deadline is checked against.
          const auto queued = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - batch_t0)
                  .count());
          for (std::size_t i = begin; i < end; ++i) {
            results[i] = serve_one(snap, requests[i], queued);
          }
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      done.count_down();
    });
  }
  done.wait();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

void QueryService::refresh(const DecentralizedClusterSystem& system) {
  std::uint64_t version;
  {
    std::lock_guard<std::mutex> lock(refresh_mutex_);
    version = next_version_++;
  }
  // Deep copy outside the lock: serving keeps going while we copy.
  auto snap = snapshot_of(system, version);
  std::lock_guard<std::mutex> lock(refresh_mutex_);
  // Concurrent refreshes may finish out of order; never roll back.
  if (snapshot_.current_shared()->version < version) {
    snapshot_.publish(std::move(snap));
  }
}

void QueryService::refresh(SystemSnapshot snapshot) {
  std::uint64_t version;
  {
    std::lock_guard<std::mutex> lock(refresh_mutex_);
    version = next_version_++;
  }
  snapshot.version = version;
  auto snap = std::make_shared<const SystemSnapshot>(std::move(snapshot));
  std::lock_guard<std::mutex> lock(refresh_mutex_);
  if (snapshot_.current_shared()->version < version) {
    snapshot_.publish(std::move(snap));
  }
}

std::shared_ptr<const SystemSnapshot> QueryService::snapshot() const {
  return snapshot_.current_shared();
}

QueryStats::Snapshot QueryService::stats() const {
  QueryStats::Snapshot total{};
  for (const auto& shard : shards_) total.merge(shard->stats().snapshot());
  return total;
}

void QueryService::reset_stats() {
  for (const auto& shard : shards_) shard->stats().reset();
}

AdmissionStatsSnapshot QueryService::admission_stats() const {
  AdmissionStatsSnapshot s;
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  s.shed_no_tokens = shed_no_tokens_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  s.shed_with_answer = shed_with_answer_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    s.peak_shard_inflight = std::max(s.peak_shard_inflight,
                                     shard->peak_inflight());
  }
  return s;
}

}  // namespace bcc
