#include "serve/query_service.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <latch>
#include <thread>

#include "core/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bcc {

namespace {

// Serving-layer instruments in the global registry (the per-service
// QueryStats stays the precise per-instance view; these aggregate across
// services for export).
obs::Counter& g_queries() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.serve.queries");
  return c;
}
obs::Counter& g_cache_hits() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.serve.cache_hits");
  return c;
}
obs::Histogram& g_query_micros() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("bcc.serve.query_micros");
  return h;
}
obs::Gauge& g_cache_hit_ratio() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("bcc.serve.cache_hit_ratio");
  return g;
}

void record_query_obs(std::uint64_t micros, bool cache_hit) {
  g_queries().add(1);
  if (cache_hit) g_cache_hits().add(1);
  g_query_micros().record(micros);
  g_cache_hit_ratio().set(static_cast<double>(g_cache_hits().value()) /
                          static_cast<double>(g_queries().value()));
}

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Only terminal routing outcomes are worth memoizing; argument errors are
/// answered in nanoseconds anyway.
bool cacheable(QueryStatus status) {
  return status == QueryStatus::kFound || status == QueryStatus::kNotFound;
}

}  // namespace

std::size_t QueryService::CacheKeyHash::operator()(const CacheKey& key) const {
  // splitmix64-style mixing of the three fields.
  auto mix = [](std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  };
  std::uint64_t h = mix(static_cast<std::uint64_t>(key.start));
  h = mix(h ^ static_cast<std::uint64_t>(key.k));
  h = mix(h ^ static_cast<std::uint64_t>(key.class_idx));
  return static_cast<std::size_t>(h);
}

QueryService::QueryService(const DecentralizedClusterSystem& system,
                           QueryServiceOptions options)
    : options_(options), pool_(resolve_threads(options.threads)) {
  options_.threads = pool_.size();
  const std::size_t shard_count = std::max<std::size_t>(1,
                                                        options_.cache_shards);
  options_.cache_shards = shard_count;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  snapshot_ = snapshot_of(system, /*version=*/1);
}

QueryService::Shard& QueryService::shard_for(const CacheKey& key) {
  return *shards_[CacheKeyHash{}(key) % shards_.size()];
}

QueryResult QueryService::serve_one(const SystemSnapshot& snap,
                                    const QueryRequest& request) {
  obs::Span span(obs::SpanCategory::kServe, "serve_query");
  const auto t0 = std::chrono::steady_clock::now();
  // Runs on every return path; cached results get the *current* span's trace
  // id, not the one they were computed under.
  auto stamp = [&t0, &span](QueryResult& r) {
    r.micros = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    r.trace_id = span.trace_id();
  };

  // Validate up front (same precedence as QueryProcessor::run) so argument
  // failures skip routing and the cache key exists before the memoized walk.
  QueryResult result;
  const auto cls = resolve_class(request, snap.classes);
  if (request.k < 2) {
    result.status = QueryStatus::kInvalidK;
  } else if (!cls) {
    result.status = QueryStatus::kBandwidthUnsatisfiable;
  } else if (!snap.nodes.count(request.start)) {
    result.status = QueryStatus::kUnknownStart;
  }
  if (result.status != QueryStatus::kNotFound) {  // argument error
    result.snapshot_version = snap.version;
    result.degraded = !snap.converged;
    stamp(result);
    stats_.record(result);
    record_query_obs(result.micros, /*cache_hit=*/false);
    return result;
  }

  const CacheKey key{request.start, request.k, *cls};
  if (options_.cache_enabled) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.version != snap.version) {
      shard.entries.clear();
      shard.version = snap.version;
    }
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      result = it->second;
      stamp(result);
      stats_.record(result, /*cache_hit=*/true);
      record_query_obs(result.micros, /*cache_hit=*/true);
      return result;
    }
  }

  result = snap.run(request);
  stamp(result);
  if (options_.cache_enabled && cacheable(result.status)) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    // A refresh may have swapped snapshots while we routed: only file the
    // result under its own snapshot's version.
    if (shard.version == snap.version) shard.entries.emplace(key, result);
  }
  stats_.record(result);
  record_query_obs(result.micros, /*cache_hit=*/false);
  return result;
}

QueryResult QueryService::submit(const QueryRequest& request) {
  const std::shared_ptr<const SystemSnapshot> snap = snapshot();
  return serve_one(*snap, request);
}

std::vector<QueryResult> QueryService::submit_batch(
    std::span<const QueryRequest> requests) {
  std::vector<QueryResult> results(requests.size());
  if (requests.empty()) return results;
  const std::shared_ptr<const SystemSnapshot> snap = snapshot();

  const std::size_t tasks = std::min(pool_.size(), requests.size());
  // Coarse dynamic chunking: cheap queries amortize the atomic, slow ones
  // still balance across workers.
  const std::size_t block =
      std::max<std::size_t>(1, requests.size() / (tasks * 8));

  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  std::latch done(static_cast<std::ptrdiff_t>(tasks));
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (std::size_t t = 0; t < tasks; ++t) {
    pool_.post([&, snap, next, block] {
      try {
        for (;;) {
          const std::size_t begin = next->fetch_add(block);
          if (begin >= requests.size()) break;
          const std::size_t end = std::min(begin + block, requests.size());
          for (std::size_t i = begin; i < end; ++i) {
            results[i] = serve_one(*snap, requests[i]);
          }
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      done.count_down();
    });
  }
  done.wait();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

void QueryService::refresh(const DecentralizedClusterSystem& system) {
  std::uint64_t version;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    version = next_version_++;
  }
  // Deep copy outside the lock: serving keeps going while we copy.
  auto snap = snapshot_of(system, version);
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  // Concurrent refreshes may finish out of order; never roll back.
  if (snapshot_->version < version) snapshot_ = std::move(snap);
}

void QueryService::refresh(SystemSnapshot snapshot) {
  std::uint64_t version;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    version = next_version_++;
  }
  snapshot.version = version;
  auto snap = std::make_shared<const SystemSnapshot>(std::move(snapshot));
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  if (snapshot_->version < version) snapshot_ = std::move(snap);
}

std::shared_ptr<const SystemSnapshot> QueryService::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

}  // namespace bcc
