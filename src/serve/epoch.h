// Epoch-based reclamation for the serving hot path: lock-free snapshot
// reads with grace-period reclamation of retired snapshots.
//
// PR 1's QueryService published snapshots through a mutex-guarded
// shared_ptr: every submit() took the lock and bumped the refcount — one
// shared cache line every core fights over, and the wall between the
// measured 1.19M qps single-core and multi-core serving. The replacement is
// the RCU idiom, shaped after Derecho's SST (readers poll a shared state
// table instead of taking locks; SNIPPETS.md snippets 1–2):
//
//   * readers *announce* themselves in a per-reader slot table
//     (cache-line-padded, so announcements never contend) by storing the
//     global epoch they entered at, then load the current pointer — no
//     locks, no refcounts, no stores to shared lines;
//   * the writer publishes a new snapshot with a single release-store,
//     advances the global epoch, and moves the old snapshot to a limbo
//     list tagged with the epoch it was retired at;
//   * a retired snapshot is reclaimed once every announced reader epoch is
//     newer than its retirement tag — at that point no reader can still
//     hold it (the proof is the seq_cst store-load ordering documented at
//     EpochDomain::pin).
//
// Writers serialize on a mutex (publication is rare — once per gossip
// restructuring); readers never block writers and writers never block
// readers. The reclamation grace period is bounded by the longest read-side
// critical section (one query, or one batch chunk).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace bcc {

/// The reader-announcement table plus the global epoch counter. One domain
/// protects one pointer (see EpochPtr); the slot table is the SST-style
/// shared state readers write and the reclaiming writer polls.
class EpochDomain {
 public:
  /// Concurrent pinned readers beyond this spin in pin() until a slot
  /// frees up — size for far more threads than any sane pool.
  static constexpr std::size_t kSlots = 64;
  static constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};

  /// A held read-side critical section: which slot announces it and the
  /// epoch it verified. Obtain via pin(), release via unpin().
  struct Pin {
    std::size_t slot = 0;
    std::uint64_t epoch = 0;
  };

  /// Reader entry. Claims a free slot and announces the current epoch in
  /// it, re-announcing until the announcement provably happened before any
  /// epoch advance that could reclaim state the reader is about to load:
  ///
  ///   reader: slot.store(E, seq_cst);  then  epoch_.load(seq_cst) == E ?
  ///   writer: current.store(new);  epoch_.fetch_add(seq_cst);  scan slots
  ///
  /// If the writer's slot scan misses the announcement, the seq_cst total
  /// order forces the reader's verification load to see the advanced epoch,
  /// so the reader re-announces instead of touching reclaimed memory; if the
  /// reader's verification sees the advanced epoch value, the RMW edge makes
  /// the writer's publication visible to the reader's pointer load.
  /// Lock-free (one CAS + two seq_cst accesses on the common path).
  Pin pin() noexcept;

  void unpin(const Pin& pin) noexcept {
    slots_[pin.slot].epoch.store(kQuiescent, std::memory_order_release);
  }

  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Writer side: advances the global epoch, returning the epoch being
  /// retired (its value before the increment).
  std::uint64_t advance() noexcept {
    return epoch_.fetch_add(1, std::memory_order_seq_cst);
  }

  /// Oldest epoch any in-flight reader has announced; kQuiescent when no
  /// reader is pinned. State tagged `< min_active()` is unreachable.
  std::uint64_t min_active() const noexcept;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{kQuiescent};
  };

  std::atomic<std::uint64_t> epoch_{1};
  std::array<Slot, kSlots> slots_{};
};

/// An epoch-protected pointer to an immutable T: lock-free read(), rare
/// publish() with grace-period reclamation. Ownership is shared_ptr-based
/// under the hood so cold-path callers (tests, chaos harnesses) can still
/// retain a snapshot past its retirement via current_shared().
template <typename T>
class EpochPtr {
 public:
  explicit EpochPtr(std::shared_ptr<const T> initial)
      : owner_(std::move(initial)) {
    current_.store(owner_.get(), std::memory_order_release);
  }

  EpochPtr(const EpochPtr&) = delete;
  EpochPtr& operator=(const EpochPtr&) = delete;

  /// RAII read-side critical section. The pointer is stable (and its
  /// pointee immutable) for the guard's lifetime; keep guards short —
  /// every held guard delays reclamation of every later publish().
  class ReadGuard {
   public:
    explicit ReadGuard(EpochPtr& owner)
        : owner_(&owner), pin_(owner.domain_.pin()) {
      ptr_ = owner.current_.load(std::memory_order_acquire);
    }
    ~ReadGuard() {
      if (owner_ != nullptr) owner_->domain_.unpin(pin_);
    }
    ReadGuard(ReadGuard&& other) noexcept
        : owner_(other.owner_), pin_(other.pin_), ptr_(other.ptr_) {
      other.owner_ = nullptr;
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ReadGuard& operator=(ReadGuard&&) = delete;

    const T* get() const noexcept { return ptr_; }
    const T& operator*() const noexcept { return *ptr_; }
    const T* operator->() const noexcept { return ptr_; }

   private:
    EpochPtr* owner_;
    EpochDomain::Pin pin_;
    const T* ptr_;
  };

  /// Lock-free reader entry; see ReadGuard.
  ReadGuard read() { return ReadGuard(*this); }

  /// Publishes `next` (one release-store), retires the previous value into
  /// limbo, and reclaims every limbo entry past its grace period. Writers
  /// serialize on an internal mutex; readers are never blocked.
  void publish(std::shared_ptr<const T> next) {
    std::lock_guard<std::mutex> lock(mutex_);
    current_.store(next.get(), std::memory_order_release);
    const std::uint64_t retired_at = domain_.advance();
    limbo_.emplace_back(retired_at, std::move(owner_));
    owner_ = std::move(next);
    reclaim_locked();
  }

  /// Cold-path shared ownership of the current value (writer-mutex
  /// protected; survives any number of later publishes).
  std::shared_ptr<const T> current_shared() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return owner_;
  }

  /// Retired-but-not-yet-reclaimed snapshots (tests / introspection).
  std::size_t limbo_size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return limbo_.size();
  }

  /// Blocks until every value retired before the call is reclaimed (i.e.
  /// all read-side critical sections that could see one have exited).
  void synchronize() {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        reclaim_locked();
        if (limbo_.empty()) return;
      }
      std::this_thread::yield();
    }
  }

 private:
  void reclaim_locked() {
    const std::uint64_t min_active = domain_.min_active();
    // An entry retired at epoch E is unreachable once every announced
    // reader epoch is > E (a reader announcing after the advance past E is
    // guaranteed to load the newer pointer — see EpochDomain::pin).
    std::erase_if(limbo_, [min_active](const auto& entry) {
      return entry.first < min_active;
    });
  }

  EpochDomain domain_;
  std::atomic<const T*> current_{nullptr};
  mutable std::mutex mutex_;
  std::shared_ptr<const T> owner_;  // guarded by mutex_
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const T>>>
      limbo_;  // guarded by mutex_
};

}  // namespace bcc
