#include "serve/epoch.h"

#include <functional>

namespace bcc {

namespace {

/// Stable per-thread starting slot so a thread re-claims "its" slot on
/// every pin and the CAS below almost never retries.
std::size_t thread_slot_hint() noexcept {
  thread_local const std::size_t hint =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return hint;
}

}  // namespace

EpochDomain::Pin EpochDomain::pin() noexcept {
  const std::size_t hint = thread_slot_hint();
  for (std::size_t probe = 0;; ++probe) {
    const std::size_t index = (hint + probe) % kSlots;
    Slot& slot = slots_[index];
    std::uint64_t expected = kQuiescent;
    std::uint64_t announced = epoch_.load(std::memory_order_seq_cst);
    if (!slot.epoch.compare_exchange_strong(expected, announced,
                                            std::memory_order_seq_cst)) {
      continue;  // slot busy (another reader) — probe the next one
    }
    // Slot claimed. Verify the announcement: if the epoch advanced between
    // our load and our store, the advancing writer may have scanned the
    // table before our announcement landed — re-announce at the newer epoch
    // until announcement and global epoch agree (store-load ordering via
    // seq_cst; see the header comment).
    for (;;) {
      const std::uint64_t now = epoch_.load(std::memory_order_seq_cst);
      if (now == announced) return Pin{index, announced};
      announced = now;
      slot.epoch.store(announced, std::memory_order_seq_cst);
    }
  }
}

std::uint64_t EpochDomain::min_active() const noexcept {
  std::uint64_t min = kQuiescent;
  for (const Slot& slot : slots_) {
    const std::uint64_t announced =
        slot.epoch.load(std::memory_order_seq_cst);
    if (announced < min) min = announced;
  }
  return min;
}

}  // namespace bcc
