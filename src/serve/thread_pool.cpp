#include "serve/thread_pool.h"

#include <algorithm>
#include <utility>

namespace bcc {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace bcc
