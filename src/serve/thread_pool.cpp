#include "serve/thread_pool.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace bcc {

namespace {

/// Depth of the task queue across all pools (updated under each pool's
/// mutex, so the stores themselves never race a concurrent resize of the
/// same queue; interleavings across pools last-write-win, which is fine for
/// an instantaneous gauge).
obs::Gauge& g_queue_depth() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("bcc.serve.queue_depth");
  return g;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    g_queue_depth().set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
      g_queue_depth().set(static_cast<double>(queue_.size()));
    }
    task();
  }
}

}  // namespace bcc
