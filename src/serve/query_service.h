// QueryService — the sharded query plane: batched, thread-pooled serving of
// bandwidth-cluster queries (Algorithm 4) over epoch-protected immutable
// snapshots, with per-shard caches and admission control.
//
// The paper treats query processing as the cheap, read-only phase over a
// converged overlay; this layer exploits that three ways:
//
//   * queries are embarrassingly parallel, so a batch is fanned out across a
//     small fixed thread pool, and every query in the batch is served
//     against ONE pinned SystemSnapshot — results within a batch are
//     mutually consistent even if refresh() swaps in a newer snapshot
//     mid-flight;
//   * snapshots are published through an EpochPtr (src/serve/epoch.h):
//     readers pin an epoch on entry instead of taking a lock or bumping a
//     shared refcount, so snapshot access costs no contended cache line.
//     Restructuring never blocks serving and serving never blocks
//     restructuring; retired snapshots are reclaimed after a grace period;
//   * every request hashes to a QueryShard (src/serve/shard.h) owning its
//     own memo cache, QueryStats, and admission state — cores serving
//     different shards share nothing.
//
// When admission control is on (options.admission) an overloaded shard
// sheds instead of queueing: the response comes back with
// QueryStatus::kShed and, when the shard has memoized this (start, k,
// class) from a previously *converged* snapshot, that stale answer as a
// well-formed degraded payload. Requests carrying a deadline are shed
// rather than served late. Argument-error requests (bad k/class/start)
// bypass admission entirely — they are answered in nanoseconds and rejecting
// them would only mask caller bugs under load.
//
// Thread-safety: submit / submit_batch / refresh / snapshot / stats may all
// be called concurrently from any thread. Refreshing from several threads
// at once is allowed (versions stay monotonic) but pointless.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "serve/epoch.h"
#include "serve/query_stats.h"
#include "serve/shard.h"
#include "serve/snapshot.h"
#include "serve/thread_pool.h"

namespace bcc {

struct QueryServiceOptions {
  /// Worker threads; 0 = hardware concurrency (at least 1).
  std::size_t threads = 0;
  /// Memoize per-(start, k, class) results until the next snapshot swap.
  bool cache_enabled = true;
  /// Query-plane shard count: each shard owns a cache partition, a stats
  /// instance, and its admission state.
  std::size_t shards = 16;
  /// Per-shard admission control; default-constructed = admit everything.
  AdmissionOptions admission;
};

/// Aggregated admission/shedding counters across all shards (all zero when
/// admission control is disabled and no deadlines are set).
struct AdmissionStatsSnapshot {
  std::uint64_t admitted = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_no_tokens = 0;
  std::uint64_t deadline_expired = 0;
  /// Of the shed responses, how many carried a stale best-effort payload.
  std::uint64_t shed_with_answer = 0;
  /// Max concurrently served queries observed on any one shard.
  std::size_t peak_shard_inflight = 0;

  std::uint64_t shed_total() const {
    return shed_queue_full + shed_no_tokens + deadline_expired;
  }
};

/// See file comment.
class QueryService {
 public:
  /// Snapshots `system` (deep copy) as serving state version 1.
  explicit QueryService(const DecentralizedClusterSystem& system,
                        QueryServiceOptions options = {});

  /// Serves one request synchronously on the calling thread, against the
  /// current snapshot. Thread-safe; lock-free snapshot access.
  QueryResult submit(const QueryRequest& request);

  /// Serves a batch across the thread pool; blocks until every request is
  /// answered. results[i] answers requests[i], and the whole batch is served
  /// against the single snapshot pinned at entry. Thread-safe.
  std::vector<QueryResult> submit_batch(std::span<const QueryRequest> requests);

  /// Re-snapshots the (presumably restructured) system and atomically swaps
  /// it in. In-flight batches finish on the snapshot they pinned; subsequent
  /// submissions see the new state. Cached results from older snapshots are
  /// discarded lazily; the retired snapshot is reclaimed after its grace
  /// period.
  void refresh(const DecentralizedClusterSystem& system);

  /// Installs an externally built snapshot — e.g. snapshot_of(AsyncOverlay…)
  /// captured mid-churn, whose `converged` flag makes subsequent results
  /// degraded. The version field is assigned internally (monotonic); same
  /// swap/pinning semantics as refresh(system).
  void refresh(SystemSnapshot snapshot);

  /// The snapshot new submissions are currently served against (shared
  /// ownership: survives any number of later refreshes).
  std::shared_ptr<const SystemSnapshot> snapshot() const;
  std::uint64_t snapshot_version() const { return snapshot()->version; }

  const QueryServiceOptions& options() const { return options_; }
  /// Service-wide stats: per-shard QueryStats merged into one snapshot.
  QueryStats::Snapshot stats() const;
  void reset_stats();

  AdmissionStatsSnapshot admission_stats() const;
  /// Queries currently being served across all shards (0 once quiescent —
  /// the serving "queue" is bounded by shards * admission.queue_limit).
  std::size_t shards_inflight_now() const {
    std::size_t sum = 0;
    for (const auto& shard : shards_) sum += shard->inflight();
    return sum;
  }
  /// Retired-but-unreclaimed snapshots (0 once every grace period expired).
  std::size_t snapshots_in_limbo() const { return snapshot_.limbo_size(); }

 private:
  /// epoch_pin_ns is what the caller already spent pinning the snapshot —
  /// nonzero only for profiled direct submits (a batch shares one pin, so
  /// per-query attribution would be a lie).
  QueryResult serve_one(const SystemSnapshot& snap,
                        const QueryRequest& request,
                        std::uint64_t queued_micros,
                        std::uint64_t epoch_pin_ns = 0);
  /// The kShed path: best-effort stale payload, never any routing work.
  /// *stale_answer reports whether a memoized payload was attached (the
  /// explain profile's kStaleFallback / kShedEmpty distinction).
  QueryResult shed(QueryShard& shard, const QueryKey& key,
                   const SystemSnapshot& snap, bool deadline_expired,
                   bool* stale_answer = nullptr);
  QueryShard& shard_for(const QueryKey& key) {
    return *shards_[QueryKeyHash{}(key) % shards_.size()];
  }

  QueryServiceOptions options_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<QueryShard>> shards_;

  EpochPtr<SystemSnapshot> snapshot_;
  std::mutex refresh_mutex_;        // serializes version allocation + publish
  std::uint64_t next_version_ = 2;  // guarded by refresh_mutex_

  // Service-wide admission counters (relaxed: diagnostics, not invariants).
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_queue_full_{0};
  std::atomic<std::uint64_t> shed_no_tokens_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> shed_with_answer_{0};
};

}  // namespace bcc
