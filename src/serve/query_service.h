// QueryService — batched, thread-pooled serving of bandwidth-cluster
// queries (Algorithm 4) over immutable snapshots of converged system state.
//
// The paper treats query processing as the cheap, read-only phase over a
// converged overlay; this layer exploits that: queries are embarrassingly
// parallel, so a batch is fanned out across a small fixed thread pool, and
// every query in the batch is served against ONE pinned SystemSnapshot —
// results within a batch are mutually consistent even if refresh() swaps in
// a newer snapshot mid-flight. Restructuring never blocks serving and
// serving never blocks restructuring (copy-on-write: refresh() builds the
// new snapshot off to the side and swaps a shared_ptr).
//
// Identical (start, k, class) queries against the same snapshot are
// memoized in a sharded cache; the cache is invalidated lazily per shard on
// the first access after a snapshot swap, so refresh() stays O(1) in cache
// size. A QueryStats instance counts statuses, hops, and latency.
//
// Thread-safety: submit / submit_batch / refresh / snapshot / stats may all
// be called concurrently from any thread. Refreshing from several threads
// at once is allowed (versions stay monotonic) but pointless.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "serve/query_stats.h"
#include "serve/snapshot.h"
#include "serve/thread_pool.h"

namespace bcc {

struct QueryServiceOptions {
  /// Worker threads; 0 = hardware concurrency (at least 1).
  std::size_t threads = 0;
  /// Memoize per-(start, k, class) results until the next snapshot swap.
  bool cache_enabled = true;
  /// Cache shard count (reduces lock contention between workers).
  std::size_t cache_shards = 16;
};

/// See file comment.
class QueryService {
 public:
  /// Snapshots `system` (deep copy) as serving state version 1.
  explicit QueryService(const DecentralizedClusterSystem& system,
                        QueryServiceOptions options = {});

  /// Serves one request synchronously on the calling thread, against the
  /// current snapshot. Thread-safe.
  QueryResult submit(const QueryRequest& request);

  /// Serves a batch across the thread pool; blocks until every request is
  /// answered. results[i] answers requests[i], and the whole batch is served
  /// against the single snapshot current at entry. Thread-safe.
  std::vector<QueryResult> submit_batch(std::span<const QueryRequest> requests);

  /// Re-snapshots the (presumably restructured) system and atomically swaps
  /// it in. In-flight batches finish on the snapshot they pinned; subsequent
  /// submissions see the new state. Cached results from older snapshots are
  /// discarded lazily.
  void refresh(const DecentralizedClusterSystem& system);

  /// Installs an externally built snapshot — e.g. snapshot_of(AsyncOverlay…)
  /// captured mid-churn, whose `converged` flag makes subsequent results
  /// degraded. The version field is assigned internally (monotonic); same
  /// swap/pinning semantics as refresh(system).
  void refresh(SystemSnapshot snapshot);

  /// The snapshot new submissions are currently served against.
  std::shared_ptr<const SystemSnapshot> snapshot() const;
  std::uint64_t snapshot_version() const { return snapshot()->version; }

  const QueryServiceOptions& options() const { return options_; }
  QueryStats::Snapshot stats() const { return stats_.snapshot(); }
  void reset_stats() { stats_.reset(); }

 private:
  struct CacheKey {
    NodeId start;
    std::size_t k;
    std::size_t class_idx;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& key) const;
  };
  /// One cache shard: entries are valid only for `version`; the first
  /// access after a snapshot swap clears the shard (lazy invalidation).
  struct Shard {
    std::mutex mutex;
    std::uint64_t version = 0;  // guarded by mutex
    std::unordered_map<CacheKey, QueryResult, CacheKeyHash> entries;  // ditto
  };

  QueryResult serve_one(const SystemSnapshot& snap,
                        const QueryRequest& request);
  Shard& shard_for(const CacheKey& key);

  QueryServiceOptions options_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<Shard>> shards_;
  QueryStats stats_;

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const SystemSnapshot> snapshot_;  // guarded by snapshot_mutex_
  std::uint64_t next_version_ = 2;                  // ditto
};

}  // namespace bcc
