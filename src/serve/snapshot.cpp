#include "serve/snapshot.h"

#include "core/system.h"

namespace bcc {

QueryResult SystemSnapshot::run(const QueryRequest& request) const {
  QueryProcessor processor(nodes, predicted, classes, find_options);
  QueryResult result = processor.run(request);
  result.snapshot_version = version;
  return result;
}

std::shared_ptr<const SystemSnapshot> snapshot_of(
    const DecentralizedClusterSystem& system, std::uint64_t version) {
  return std::make_shared<const SystemSnapshot>(SystemSnapshot{
      system.nodes(), system.predicted(), system.classes(),
      system.options().find_options, version});
}

}  // namespace bcc
