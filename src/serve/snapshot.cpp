#include "serve/snapshot.h"

#include "core/async_overlay.h"
#include "core/system.h"

namespace bcc {

QueryResult SystemSnapshot::run(const QueryRequest& request) const {
  QueryProcessor processor(nodes, predicted, classes, find_options);
  QueryResult result = processor.run(request);
  result.snapshot_version = version;
  result.source_epoch = source_epoch;
  // Keep a degraded flag the processor already raised (e.g. routing hit a
  // peer whose tables are not materialized locally).
  if (!converged) result.degraded = true;
  return result;
}

std::shared_ptr<const SystemSnapshot> snapshot_of(
    const DecentralizedClusterSystem& system, std::uint64_t version,
    std::uint64_t source_epoch) {
  return std::make_shared<const SystemSnapshot>(SystemSnapshot{
      system.nodes(), system.predicted(), system.classes(),
      system.options().find_options, version, system.converged(),
      source_epoch});
}

std::shared_ptr<const SystemSnapshot> snapshot_of(
    const AsyncOverlay& overlay, const DistanceMatrix& predicted,
    const BandwidthClasses& classes, FindClusterOptions find_options,
    std::uint64_t version) {
  return std::make_shared<const SystemSnapshot>(
      SystemSnapshot{overlay.nodes(), predicted, classes, find_options,
                     version, overlay.healthy()});
}

std::shared_ptr<const SystemSnapshot> make_snapshot(
    OverlayNodeMap nodes, DistanceMatrix predicted, BandwidthClasses classes,
    FindClusterOptions find_options, std::uint64_t version, bool converged) {
  return std::make_shared<const SystemSnapshot>(
      SystemSnapshot{std::move(nodes), std::move(predicted),
                     std::move(classes), find_options, version, converged});
}

}  // namespace bcc
