#include "tree/maintenance.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bcc {

namespace {

obs::Gauge& g_alive() {
  static obs::Gauge& g = obs::Registry::global().gauge("bcc.tree.alive");
  return g;
}
obs::Counter& g_rejoins() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.tree.rejoins");
  return c;
}
obs::Gauge& g_embed_error() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("bcc.tree.embed_rel_error");
  return g;
}

}  // namespace

FrameworkMaintainer::FrameworkMaintainer(const DistanceMatrix* real,
                                         EmbedOptions options)
    : real_(real), options_(options) {
  BCC_REQUIRE(real_ != nullptr);
}

void FrameworkMaintainer::join_into(NodeId host) {
  BCC_REQUIRE(host < real_->size());
  BCC_REQUIRE(!prediction_.contains(host));
  if (prediction_.host_count() == 0) {
    prediction_.add_first(host);
    anchors_.set_root(host);
    return;
  }
  const NodeId root = prediction_.root_host();
  if (prediction_.host_count() == 1) {
    prediction_.add_second(host, real_->at(root, host));
    anchors_.add_child(root, host);
    return;
  }
  std::vector<NodeId> probed;
  const NodeId y =
      options_.search == EndSearch::kExhaustive
          ? find_end_exhaustive(prediction_, *real_, host, root, nullptr,
                                &probed)
          : find_end_anchor_descent(prediction_, anchors_, *real_, host, root,
                                    nullptr, &probed);
  const auto placement = join_host(prediction_, *real_, host, root, y,
                                   std::move(probed), options_);
  anchors_.add_child(placement.anchor, host);
}

void FrameworkMaintainer::join(NodeId host) {
  obs::Span span(obs::SpanCategory::kTree, "join");
  join_into(host);
  update_obs();
}

std::vector<NodeId> FrameworkMaintainer::leave(NodeId host) {
  BCC_REQUIRE(prediction_.contains(host));
  obs::Span span(obs::SpanCategory::kTree, "leave");
  if (prediction_.host_count() == 1) {
    // Last host leaves: empty framework.
    anchors_.remove_subtree(host);
    prediction_ = PredictionTree();
    update_obs();
    return {};
  }
  if (host == prediction_.root_host()) {
    // The root seeds every join; survivors rebuild from scratch.
    std::vector<NodeId> survivors = prediction_.hosts();
    survivors.erase(std::find(survivors.begin(), survivors.end(), host));
    rebuild(survivors);
    rejoins_ += survivors.size();
    g_rejoins().add(survivors.size());
    update_obs();
    return survivors;
  }
  // Orphaned anchor descendants rejoin after the departure, deepest parts
  // of the tree first removed (children before parents keeps the prediction
  // tree's leaf-removal precondition).
  std::vector<NodeId> orphans = anchors_.remove_subtree(host);
  for (auto it = orphans.rbegin(); it != orphans.rend(); ++it) {
    prediction_.remove(*it);
  }
  prediction_.remove(host);
  for (NodeId o : orphans) join_into(o);
  rejoins_ += orphans.size();
  g_rejoins().add(orphans.size());
  update_obs();
  return orphans;
}

void FrameworkMaintainer::refresh(const DistanceMatrix* new_real) {
  BCC_REQUIRE(new_real != nullptr);
  BCC_REQUIRE(new_real->size() == real_->size());
  obs::Span span(obs::SpanCategory::kTree, "refresh");
  real_ = new_real;
  rebuild(prediction_.hosts());
  update_obs();
}

FrameworkMaintainer::CompactView FrameworkMaintainer::compact_view() const {
  CompactView view;
  view.ids = prediction_.hosts();
  view.predicted = predicted_alive();
  std::unordered_map<NodeId, NodeId> position;
  for (std::size_t i = 0; i < view.ids.size(); ++i) {
    position[view.ids[i]] = i;
  }
  if (!anchors_.empty()) {
    for (NodeId h : anchors_.bfs_order()) {
      const NodeId parent = anchors_.parent_of(h);
      if (parent == AnchorTree::kNoParent) {
        view.anchors.set_root(position.at(h));
      } else {
        view.anchors.add_child(position.at(parent), position.at(h));
      }
    }
  }
  return view;
}

void FrameworkMaintainer::rebuild(std::vector<NodeId> membership) {
  prediction_ = PredictionTree();
  anchors_ = AnchorTree();
  for (NodeId h : membership) join_into(h);
}

void FrameworkMaintainer::update_obs() const {
  const std::vector<NodeId>& hosts = prediction_.hosts();
  g_alive().set(static_cast<double>(hosts.size()));
  if (hosts.size() < 2) {
    g_embed_error().set(0.0);
    return;
  }
  // Deterministic pair sample: host i against the host a stride away, with
  // the stride chosen so up to 64 pairs cover the membership evenly.
  constexpr std::size_t kSamplePairs = 64;
  const std::size_t pairs = std::min(kSamplePairs, hosts.size() - 1);
  const std::size_t stride = std::max<std::size_t>(1, hosts.size() / pairs);
  std::vector<double> errors;
  errors.reserve(pairs);
  for (std::size_t i = 0; errors.size() < pairs && i < hosts.size(); ++i) {
    const NodeId u = hosts[i];
    const NodeId v = hosts[(i + stride) % hosts.size()];
    if (u == v) continue;
    const double real = real_->at(u, v);
    if (real <= 0.0) continue;
    errors.push_back(std::abs(prediction_.distance(u, v) - real) / real);
  }
  if (errors.empty()) {
    g_embed_error().set(0.0);
    return;
  }
  auto mid = errors.begin() + static_cast<std::ptrdiff_t>(errors.size() / 2);
  std::nth_element(errors.begin(), mid, errors.end());
  g_embed_error().set(*mid);
}

}  // namespace bcc
