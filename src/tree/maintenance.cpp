#include "tree/maintenance.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bcc {

namespace {

obs::Gauge& g_alive() {
  static obs::Gauge& g = obs::Registry::global().gauge("bcc.tree.alive");
  return g;
}
obs::Counter& g_rejoins() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.tree.rejoins");
  return c;
}
obs::Gauge& g_embed_error() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("bcc.tree.embed_rel_error");
  return g;
}
obs::Counter& g_repairs_incremental() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.tree.repairs_incremental");
  return c;
}
obs::Counter& g_repairs_full() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.tree.repairs_full");
  return c;
}
obs::Counter& g_repaired_hosts() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.tree.repaired_hosts");
  return c;
}

}  // namespace

FrameworkMaintainer::FrameworkMaintainer(const DistanceMatrix* real,
                                         EmbedOptions options)
    : real_(real), options_(options) {
  BCC_REQUIRE(real_ != nullptr);
}

void FrameworkMaintainer::join_into(NodeId host) {
  BCC_REQUIRE(host < real_->size());
  BCC_REQUIRE(!prediction_.contains(host));
  if (prediction_.host_count() == 0) {
    prediction_.add_first(host);
    anchors_.set_root(host);
    return;
  }
  const NodeId root = prediction_.root_host();
  if (prediction_.host_count() == 1) {
    prediction_.add_second(host, real_->at(root, host));
    anchors_.add_child(root, host);
    return;
  }
  std::vector<NodeId> probed;
  const NodeId y =
      options_.search == EndSearch::kExhaustive
          ? find_end_exhaustive(prediction_, *real_, host, root, nullptr,
                                &probed)
          : find_end_anchor_descent(prediction_, anchors_, *real_, host, root,
                                    nullptr, &probed);
  const auto placement = join_host(prediction_, *real_, host, root, y,
                                   std::move(probed), options_);
  anchors_.add_child(placement.anchor, host);
}

void FrameworkMaintainer::join(NodeId host) {
  obs::Span span(obs::SpanCategory::kTree, "join");
  join_into(host);
  update_obs();
}

std::vector<NodeId> FrameworkMaintainer::leave(NodeId host) {
  BCC_REQUIRE(prediction_.contains(host));
  obs::Span span(obs::SpanCategory::kTree, "leave");
  if (prediction_.host_count() == 1) {
    // Last host leaves: empty framework.
    anchors_.remove_subtree(host);
    prediction_ = PredictionTree();
    update_obs();
    return {};
  }
  if (host == prediction_.root_host()) {
    // The root seeds every join; survivors rebuild from scratch.
    std::vector<NodeId> survivors = prediction_.hosts();
    survivors.erase(std::find(survivors.begin(), survivors.end(), host));
    rebuild(survivors);
    rejoins_ += survivors.size();
    g_rejoins().add(survivors.size());
    update_obs();
    return survivors;
  }
  // Orphaned anchor descendants rejoin after the departure, deepest parts
  // of the tree first removed (children before parents keeps the prediction
  // tree's leaf-removal precondition).
  std::vector<NodeId> orphans = anchors_.remove_subtree(host);
  for (auto it = orphans.rbegin(); it != orphans.rend(); ++it) {
    prediction_.remove(*it);
  }
  prediction_.remove(host);
  for (NodeId o : orphans) join_into(o);
  rejoins_ += orphans.size();
  g_rejoins().add(orphans.size());
  update_obs();
  return orphans;
}

void FrameworkMaintainer::refresh(const DistanceMatrix* new_real) {
  BCC_REQUIRE(new_real != nullptr);
  BCC_REQUIRE(new_real->size() == real_->size());
  obs::Span span(obs::SpanCategory::kTree, "refresh");
  real_ = new_real;
  rebuild(prediction_.hosts());
  update_obs();
}

FrameworkMaintainer::RepairReport FrameworkMaintainer::refresh_dirty(
    const DistanceMatrix* new_real, std::span<const NodeId> dirty,
    double full_threshold) {
  BCC_REQUIRE(new_real != nullptr);
  BCC_REQUIRE(new_real->size() == real_->size());
  BCC_REQUIRE(full_threshold >= 0.0);
  obs::Span span(obs::SpanCategory::kTree, "refresh_dirty");
  RepairReport report;
  // Only alive dirty hosts need repair; the dynamics layer reports over the
  // whole universe while churn may have removed some of them.
  std::vector<NodeId> to_repair;
  bool root_dirty = false;
  const NodeId root =
      prediction_.host_count() > 0 ? prediction_.root_host() : 0;
  for (NodeId h : dirty) {
    if (!prediction_.contains(h)) continue;
    if (prediction_.host_count() > 0 && h == root) root_dirty = true;
    to_repair.push_back(h);
  }
  std::sort(to_repair.begin(), to_repair.end());
  to_repair.erase(std::unique(to_repair.begin(), to_repair.end()),
                  to_repair.end());
  const std::size_t alive_count = prediction_.host_count();
  if (alive_count == 0 || to_repair.empty()) {
    real_ = new_real;
    return report;
  }
  const double fraction = static_cast<double>(to_repair.size()) /
                          static_cast<double>(alive_count);
  if (root_dirty || fraction > full_threshold) {
    refresh(new_real);
    report.full_rebuild = true;
    report.repaired = prediction_.hosts();
    std::sort(report.repaired.begin(), report.repaired.end());
    g_repairs_full().add(1);
    g_repaired_hosts().add(report.repaired.size());
    return report;
  }
  real_ = new_real;
  // leave() + join() per dirty host re-embeds it against the new
  // measurements; orphaned anchor descendants rejoin inside leave() and are
  // thereby repaired too, so they join the repaired set and need no second
  // pass even if they were also dirty.
  std::vector<char> done(real_->size(), 0);
  std::vector<NodeId> repaired;
  for (NodeId h : to_repair) {
    if (done[h]) continue;
    std::vector<NodeId> orphans = leave(h);
    join(h);
    done[h] = 1;
    repaired.push_back(h);
    for (NodeId o : orphans) {
      if (done[o]) continue;
      done[o] = 1;
      repaired.push_back(o);
    }
  }
  std::sort(repaired.begin(), repaired.end());
  report.repaired = std::move(repaired);
  g_repairs_incremental().add(1);
  g_repaired_hosts().add(report.repaired.size());
  update_obs();
  return report;
}

void FrameworkMaintainer::write_predicted(DistanceMatrix* out) const {
  BCC_REQUIRE(out != nullptr);
  const std::vector<NodeId>& hosts = prediction_.hosts();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    BCC_REQUIRE(hosts[i] < out->size());
    for (std::size_t j = i + 1; j < hosts.size(); ++j) {
      out->set(hosts[i], hosts[j], prediction_.distance(hosts[i], hosts[j]));
    }
  }
}

void FrameworkMaintainer::write_predicted_delta(
    DistanceMatrix* out, std::span<const NodeId> repaired) const {
  BCC_REQUIRE(out != nullptr);
  std::vector<char> in_repair(out->size(), 0);
  for (NodeId r : repaired) {
    BCC_REQUIRE(r < out->size());
    in_repair[r] = 1;
  }
  const std::vector<NodeId>& hosts = prediction_.hosts();
  for (NodeId r : repaired) {
    if (!prediction_.contains(r)) continue;
    for (NodeId h : hosts) {
      if (h == r) continue;
      // Pairs inside the repaired set are written once, by their lower id.
      if (in_repair[h] && h < r) continue;
      out->set(r, h, prediction_.distance(r, h));
    }
  }
}

FrameworkMaintainer::CompactView FrameworkMaintainer::compact_view() const {
  CompactView view;
  view.ids = prediction_.hosts();
  view.predicted = predicted_alive();
  std::unordered_map<NodeId, NodeId> position;
  for (std::size_t i = 0; i < view.ids.size(); ++i) {
    position[view.ids[i]] = i;
  }
  if (!anchors_.empty()) {
    for (NodeId h : anchors_.bfs_order()) {
      const NodeId parent = anchors_.parent_of(h);
      if (parent == AnchorTree::kNoParent) {
        view.anchors.set_root(position.at(h));
      } else {
        view.anchors.add_child(position.at(parent), position.at(h));
      }
    }
  }
  return view;
}

void FrameworkMaintainer::rebuild(std::vector<NodeId> membership) {
  prediction_ = PredictionTree();
  anchors_ = AnchorTree();
  for (NodeId h : membership) join_into(h);
}

void FrameworkMaintainer::update_obs() const {
  const std::vector<NodeId>& hosts = prediction_.hosts();
  g_alive().set(static_cast<double>(hosts.size()));
  if (hosts.size() < 2) {
    g_embed_error().set(0.0);
    return;
  }
  // Deterministic pair sample: host i against the host a stride away, with
  // the stride chosen so up to 64 pairs cover the membership evenly.
  constexpr std::size_t kSamplePairs = 64;
  const std::size_t pairs = std::min(kSamplePairs, hosts.size() - 1);
  const std::size_t stride = std::max<std::size_t>(1, hosts.size() / pairs);
  std::vector<double> errors;
  errors.reserve(pairs);
  for (std::size_t i = 0; errors.size() < pairs && i < hosts.size(); ++i) {
    const NodeId u = hosts[i];
    const NodeId v = hosts[(i + stride) % hosts.size()];
    if (u == v) continue;
    const double real = real_->at(u, v);
    if (real <= 0.0) continue;
    errors.push_back(std::abs(prediction_.distance(u, v) - real) / real);
  }
  if (errors.empty()) {
    g_embed_error().set(0.0);
    return;
  }
  auto mid = errors.begin() + static_cast<std::ptrdiff_t>(errors.size() / 2);
  std::nth_element(errors.begin(), mid, errors.end());
  g_embed_error().set(*mid);
}

}  // namespace bcc
