#include "tree/maintenance.h"

#include <algorithm>

namespace bcc {

FrameworkMaintainer::FrameworkMaintainer(const DistanceMatrix* real,
                                         EmbedOptions options)
    : real_(real), options_(options) {
  BCC_REQUIRE(real_ != nullptr);
}

void FrameworkMaintainer::join_into(NodeId host) {
  BCC_REQUIRE(host < real_->size());
  BCC_REQUIRE(!prediction_.contains(host));
  if (prediction_.host_count() == 0) {
    prediction_.add_first(host);
    anchors_.set_root(host);
    return;
  }
  const NodeId root = prediction_.root_host();
  if (prediction_.host_count() == 1) {
    prediction_.add_second(host, real_->at(root, host));
    anchors_.add_child(root, host);
    return;
  }
  std::vector<NodeId> probed;
  const NodeId y =
      options_.search == EndSearch::kExhaustive
          ? find_end_exhaustive(prediction_, *real_, host, root, nullptr,
                                &probed)
          : find_end_anchor_descent(prediction_, anchors_, *real_, host, root,
                                    nullptr, &probed);
  const auto placement = join_host(prediction_, *real_, host, root, y,
                                   std::move(probed), options_);
  anchors_.add_child(placement.anchor, host);
}

void FrameworkMaintainer::join(NodeId host) { join_into(host); }

std::vector<NodeId> FrameworkMaintainer::leave(NodeId host) {
  BCC_REQUIRE(prediction_.contains(host));
  if (prediction_.host_count() == 1) {
    // Last host leaves: empty framework.
    anchors_.remove_subtree(host);
    prediction_ = PredictionTree();
    return {};
  }
  if (host == prediction_.root_host()) {
    // The root seeds every join; survivors rebuild from scratch.
    std::vector<NodeId> survivors = prediction_.hosts();
    survivors.erase(std::find(survivors.begin(), survivors.end(), host));
    rebuild(survivors);
    rejoins_ += survivors.size();
    return survivors;
  }
  // Orphaned anchor descendants rejoin after the departure, deepest parts
  // of the tree first removed (children before parents keeps the prediction
  // tree's leaf-removal precondition).
  std::vector<NodeId> orphans = anchors_.remove_subtree(host);
  for (auto it = orphans.rbegin(); it != orphans.rend(); ++it) {
    prediction_.remove(*it);
  }
  prediction_.remove(host);
  for (NodeId o : orphans) join_into(o);
  rejoins_ += orphans.size();
  return orphans;
}

void FrameworkMaintainer::refresh(const DistanceMatrix* new_real) {
  BCC_REQUIRE(new_real != nullptr);
  BCC_REQUIRE(new_real->size() == real_->size());
  real_ = new_real;
  rebuild(prediction_.hosts());
}

FrameworkMaintainer::CompactView FrameworkMaintainer::compact_view() const {
  CompactView view;
  view.ids = prediction_.hosts();
  view.predicted = predicted_alive();
  std::unordered_map<NodeId, NodeId> position;
  for (std::size_t i = 0; i < view.ids.size(); ++i) {
    position[view.ids[i]] = i;
  }
  if (!anchors_.empty()) {
    for (NodeId h : anchors_.bfs_order()) {
      const NodeId parent = anchors_.parent_of(h);
      if (parent == AnchorTree::kNoParent) {
        view.anchors.set_root(position.at(h));
      } else {
        view.anchors.add_child(position.at(parent), position.at(h));
      }
    }
  }
  return view;
}

void FrameworkMaintainer::rebuild(std::vector<NodeId> membership) {
  prediction_ = PredictionTree();
  anchors_ = AnchorTree();
  for (NodeId h : membership) join_into(h);
}

}  // namespace bcc
