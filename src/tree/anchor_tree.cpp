#include "tree/anchor_tree.h"

#include <algorithm>
#include <queue>

#include "common/assert.h"

namespace bcc {

NodeId AnchorTree::root() const {
  BCC_REQUIRE(!empty());
  return root_;
}

void AnchorTree::set_root(NodeId host) {
  BCC_REQUIRE(empty());
  root_ = host;
  info_[host] = Info{};
}

void AnchorTree::add_child(NodeId parent, NodeId child) {
  BCC_REQUIRE(contains(parent));
  BCC_REQUIRE(!contains(child));
  info_[parent].children.push_back(child);
  info_[child] = Info{parent, {}};
}

NodeId AnchorTree::parent_of(NodeId host) const { return info(host).parent; }

const std::vector<NodeId>& AnchorTree::children_of(NodeId host) const {
  return info(host).children;
}

std::vector<NodeId> AnchorTree::neighbors_of(NodeId host) const {
  const Info& i = info(host);
  std::vector<NodeId> out;
  out.reserve(i.children.size() + 1);
  if (i.parent != kNoParent) out.push_back(i.parent);
  out.insert(out.end(), i.children.begin(), i.children.end());
  return out;
}

std::size_t AnchorTree::degree(NodeId host) const {
  const Info& i = info(host);
  return i.children.size() + (i.parent != kNoParent ? 1 : 0);
}

std::size_t AnchorTree::max_degree() const {
  std::size_t best = 0;
  for (const auto& [host, i] : info_) {
    best = std::max(best, i.children.size() + (i.parent != kNoParent ? 1 : 0));
  }
  return best;
}

namespace {

/// BFS hop distances over the anchor tree from `src`.
std::unordered_map<NodeId, std::size_t> hop_distances(const AnchorTree& t,
                                                      NodeId src) {
  std::unordered_map<NodeId, std::size_t> dist;
  dist[src] = 0;
  std::queue<NodeId> q;
  q.push(src);
  while (!q.empty()) {
    NodeId cur = q.front();
    q.pop();
    for (NodeId nb : t.neighbors_of(cur)) {
      if (dist.count(nb)) continue;
      dist[nb] = dist[cur] + 1;
      q.push(nb);
    }
  }
  return dist;
}

}  // namespace

std::size_t AnchorTree::diameter() const {
  if (size() <= 1) return 0;
  // Double BFS: farthest node from the root, then farthest from that.
  auto d0 = hop_distances(*this, root());
  BCC_ASSERT(d0.size() == size());
  NodeId far = root();
  for (const auto& [host, d] : d0) {
    if (d > d0[far]) far = host;
  }
  auto d1 = hop_distances(*this, far);
  std::size_t best = 0;
  for (const auto& [host, d] : d1) best = std::max(best, d);
  return best;
}

std::vector<NodeId> AnchorTree::bfs_order() const {
  std::vector<NodeId> order;
  if (empty()) return order;
  std::queue<NodeId> q;
  q.push(root_);
  while (!q.empty()) {
    NodeId cur = q.front();
    q.pop();
    order.push_back(cur);
    for (NodeId c : children_of(cur)) q.push(c);
  }
  BCC_ASSERT(order.size() == size());
  return order;
}

std::vector<NodeId> AnchorTree::remove_subtree(NodeId host) {
  BCC_REQUIRE(contains(host));
  if (host == root_) {
    BCC_REQUIRE(size() == 1);
    info_.clear();
    root_ = kNoParent;
    return {};
  }
  // Collect descendants in BFS order.
  std::vector<NodeId> descendants;
  std::queue<NodeId> q;
  for (NodeId c : children_of(host)) q.push(c);
  while (!q.empty()) {
    NodeId cur = q.front();
    q.pop();
    descendants.push_back(cur);
    for (NodeId c : children_of(cur)) q.push(c);
  }
  // Unlink from the parent, then erase everything.
  auto& siblings = info_.at(parent_of(host)).children;
  siblings.erase(std::find(siblings.begin(), siblings.end(), host));
  for (NodeId d : descendants) info_.erase(d);
  info_.erase(host);
  return descendants;
}

std::vector<NodeId> AnchorTree::reachable_via(NodeId host, NodeId via) const {
  const auto nbs = neighbors_of(host);
  BCC_REQUIRE(std::find(nbs.begin(), nbs.end(), via) != nbs.end());
  std::vector<NodeId> out;
  std::queue<NodeId> q;
  q.push(via);
  std::unordered_map<NodeId, char> seen;
  seen[host] = 1;  // block traversal back through `host`
  seen[via] = 1;
  while (!q.empty()) {
    NodeId cur = q.front();
    q.pop();
    out.push_back(cur);
    for (NodeId nb : neighbors_of(cur)) {
      if (seen.count(nb)) continue;
      seen[nb] = 1;
      q.push(nb);
    }
  }
  return out;
}

const AnchorTree::Info& AnchorTree::info(NodeId host) const {
  auto it = info_.find(host);
  BCC_REQUIRE(it != info_.end());
  return it->second;
}

}  // namespace bcc
