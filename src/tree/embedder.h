// Drivers that grow a prediction tree + anchor tree from measured distances
// (paper §II.D).
//
// A joining host x always uses the root host as its base node z. The end
// node y — the maximizer of the Gromov product (x|y)_z — can be found two
// ways:
//   * kExhaustive: probe every existing host (the centralized Sequoia rule;
//     O(n) measurements per join — the reference used by ablation A3).
//   * kAnchorDescent: greedy descent of the anchor tree, probing only the
//     current host's children at each level (the decentralized framework's
//     rule; O(depth·degree) measurements per join).
// All three Gromov terms are measured: z–x and x–y by the joining host, and
// z–y is already known (every host measured the root when it joined).
//
// With `refine` on (default), the raw Gromov placement is post-processed by
// a robust fit: x's path position and leaf weight are chosen to minimize the
// sum of absolute prediction residuals against everything x measured during
// the join. Exact on perfect tree metrics; substantially reduces the noise
// amplification of the raw three-point placement on real data — this stands
// in for the "several heuristics" the paper's prior work applies (§II.B).
#pragma once

#include <span>

#include "common/rng.h"
#include "tree/anchor_tree.h"
#include "tree/distance_label.h"
#include "tree/prediction_tree.h"

namespace bcc {

/// End-node (Gromov maximizer) search strategy.
enum class EndSearch {
  kExhaustive,     // scan all hosts; O(n) probes per join
  kAnchorDescent,  // greedy anchor-tree walk; O(depth·degree) probes per join
};

struct EmbedOptions {
  EndSearch search = EndSearch::kAnchorDescent;
  /// Robust placement fit against the join's probe set (see file comment).
  bool refine = true;
  /// Cap on the number of probes used by the fit (keeps joins O(R^2)).
  std::size_t refine_candidates = 40;
};

/// Measurement accounting for the join process (ablation A3).
struct EmbedStats {
  std::size_t joins = 0;
  std::size_t probes = 0;  // host-to-host measurements performed during joins
};

/// A fully built prediction framework: the embedded tree plus the overlay.
struct Framework {
  PredictionTree prediction;
  AnchorTree anchors;

  /// Predicted distance matrix over hosts 0..n-1.
  DistanceMatrix predicted_distances() const {
    return prediction.predicted_distances();
  }
};

/// Grows a framework over hosts {0..n-1} of `real` (the measured metric),
/// inserting hosts in the given order. `order` must be a permutation of
/// 0..n-1 with n >= 1.
Framework build_framework(const DistanceMatrix& real,
                          std::span<const NodeId> order,
                          const EmbedOptions& options = {},
                          EmbedStats* stats = nullptr);

/// Convenience: builds with a seed-shuffled insertion order.
Framework build_framework(const DistanceMatrix& real, Rng& rng,
                          const EmbedOptions& options = {},
                          EmbedStats* stats = nullptr);

/// Places host x (base z, end y) into the tree, applying the robust
/// placement refinement against `probed` when options.refine is set. The
/// shared join step of build_framework and FrameworkMaintainer.
PredictionTree::Placement join_host(PredictionTree& tree,
                                    const DistanceMatrix& real, NodeId x,
                                    NodeId z, NodeId y,
                                    std::vector<NodeId> probed,
                                    const EmbedOptions& options);

/// Finds the end node for x via exhaustive scan over current hosts.
/// Exposed for tests and the ablation bench. If `probed` is non-null the
/// candidates x measured are appended to it.
NodeId find_end_exhaustive(const PredictionTree& tree, const DistanceMatrix& real,
                           NodeId x, NodeId z, EmbedStats* stats,
                           std::vector<NodeId>* probed = nullptr);

/// Finds the end node for x via anchor-tree descent.
NodeId find_end_anchor_descent(const PredictionTree& tree,
                               const AnchorTree& anchors,
                               const DistanceMatrix& real, NodeId x, NodeId z,
                               EmbedStats* stats,
                               std::vector<NodeId>* probed = nullptr);

}  // namespace bcc
