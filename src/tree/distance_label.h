// Distance labels (paper §II.D): compact per-host summaries of prediction
// tree geometry that let any two hosts estimate their predicted distance
// with purely local information — the tree-metric analogue of Vivaldi
// coordinates.
//
// The label of host x lists the anchor chain root = a_0 → a_1 → … → a_m = x,
// and for each non-root link the placement of a_i's inner vertex on its
// anchor's leaf edge:
//   offset_i      = d_T(a_{i-1} leaf, t_{a_i})
//   leaf_weight_i = d_T(t_{a_i}, a_i leaf)
// Two labels suffice to reconstruct the (partial) prediction tree containing
// both root paths, hence the exact d_T between the hosts — label_distance()
// equals PredictionTree::distance() to within floating-point error, a
// property the test suite verifies.
#pragma once

#include <vector>

#include "tree/prediction_tree.h"

namespace bcc {

/// One link of the anchor chain.
struct LabelEntry {
  NodeId host;         // a_i
  double offset;       // d_T(anchor leaf, t_{a_i}); 0 for the root entry
  double leaf_weight;  // d_T(t_{a_i}, a_i leaf);    0 for the root entry
};

/// A host's distance label: its anchor chain from the root, inclusive.
class DistanceLabel {
 public:
  /// Extracts the label of `host` from a built prediction tree by following
  /// stored placements up the anchor chain.
  static DistanceLabel of(const PredictionTree& tree, NodeId host);

  /// Builds a label directly from chain entries (entries[0] must be the
  /// root with zero offset/leaf_weight). Used by the decentralized join
  /// protocol where hosts assemble labels from network messages.
  static DistanceLabel from_entries(std::vector<LabelEntry> entries);

  const std::vector<LabelEntry>& entries() const { return entries_; }
  NodeId host() const;     // the labelled host (last entry)
  NodeId root() const;     // first entry
  std::size_t depth() const { return entries_.size() - 1; }

 private:
  explicit DistanceLabel(std::vector<LabelEntry> entries);
  std::vector<LabelEntry> entries_;
};

/// Exact predicted distance d_T(a, b) computed from the two labels alone, by
/// reconstructing the merged partial prediction tree. Labels must share the
/// same root.
double label_distance(const DistanceLabel& a, const DistanceLabel& b);

}  // namespace bcc
