#include "tree/prediction_tree.h"

#include <algorithm>
#include <cmath>

namespace bcc {

double gromov_product(double d_zx, double d_zy, double d_xy) {
  return 0.5 * (d_zx + d_zy - d_xy);
}

NodeId PredictionTree::root_host() const {
  BCC_REQUIRE(!hosts_.empty());
  return hosts_.front();
}

void PredictionTree::add_first(NodeId host) {
  BCC_REQUIRE(hosts_.empty());
  TreeVertex v = tree_.add_vertex();
  hosts_.push_back(host);
  leaf_[host] = v;
  attach_[host] = v;  // the root leaf predates all inner vertices
  placement_[host] = Placement{kNoAnchor, 0.0, 0.0};
}

PredictionTree::Placement PredictionTree::add_second(NodeId host, double dist) {
  BCC_REQUIRE(hosts_.size() == 1);
  BCC_REQUIRE(!contains(host));
  BCC_REQUIRE(dist >= 0.0);
  TreeVertex v = tree_.add_vertex();
  const NodeId root = hosts_.front();
  tree_.connect(leaf_.at(root), v, dist, /*creator=*/host);
  hosts_.push_back(host);
  leaf_[host] = v;
  // Conceptually t_host coincides with the root leaf (the paper's Fig. 1 has
  // d_T(a, t_b) = 0): the leaf edge spans the whole root~host path.
  attach_[host] = leaf_.at(root);
  Placement p{root, 0.0, dist};
  placement_[host] = p;
  return p;
}

PredictionTree::Placement PredictionTree::add(NodeId x, NodeId z, NodeId y,
                                              double d_zx, double d_zy,
                                              double d_xy) {
  BCC_REQUIRE(d_zx >= 0.0 && d_zy >= 0.0 && d_xy >= 0.0);
  // Gromov products; measured data may violate the triangle inequality, so
  // clamp to the feasible ranges rather than reject.
  return add_at(x, z, y, gromov_product(d_zx, d_zy, d_xy),
                std::max(0.0, gromov_product(d_xy, d_zx, d_zy)));
}

PredictionTree::Placement PredictionTree::add_at(NodeId x, NodeId z, NodeId y,
                                                 double g, double leaf_w) {
  BCC_REQUIRE(hosts_.size() >= 2);
  BCC_REQUIRE(!contains(x));
  BCC_REQUIRE(contains(z) && contains(y) && z != y);
  BCC_REQUIRE(leaf_w >= 0.0);

  const double path_len = tree_.distance(leaf_.at(z), leaf_.at(y));
  g = std::clamp(g, 0.0, path_len);

  // Locate the edge of the z~y path containing the point at distance g from
  // z, and split it there.
  const std::vector<TreeVertex> p = tree_.path(leaf_.at(z), leaf_.at(y));
  BCC_ASSERT(p.size() >= 2);
  double cum = 0.0;
  TreeVertex t_x = kNoVertex;
  NodeId anchor = kNoAnchor;
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    const double w = tree_.edge_weight(p[i], p[i + 1]).value();
    const bool last = (i + 2 == p.size());
    if (g <= cum + w || last) {
      anchor = tree_.edge_creator(p[i], p[i + 1]).value();
      t_x = tree_.split_edge(p[i], p[i + 1], g - cum);
      break;
    }
    cum += w;
  }
  BCC_ASSERT(t_x != kNoVertex && anchor != kNoAnchor);

  TreeVertex xv = tree_.add_vertex();
  tree_.connect(t_x, xv, leaf_w, /*creator=*/x);

  hosts_.push_back(x);
  leaf_[x] = xv;
  attach_[x] = t_x;
  Placement placement{anchor, tree_.distance(leaf_.at(anchor), t_x), leaf_w};
  placement_[x] = placement;
  return placement;
}

PredictionTree::Placement PredictionTree::restore(NodeId host, NodeId anchor,
                                                  double offset,
                                                  double leaf_weight) {
  BCC_REQUIRE(!contains(host));
  BCC_REQUIRE(contains(anchor));
  BCC_REQUIRE(offset >= 0.0 && leaf_weight >= 0.0);

  const TreeVertex a_leaf = leaf_.at(anchor);
  const TreeVertex a_attach = attach_.at(anchor);
  TreeVertex t_host;
  if (a_leaf == a_attach) {
    // Anchored at the root: children's inner vertices coincide with the
    // root leaf (offset is structurally 0).
    BCC_REQUIRE(offset <= 1e-9);
    t_host = a_leaf;
  } else {
    // Walk from the anchor's leaf towards its attach vertex and split at
    // `offset` (same geometry as DistanceLabel reconstruction).
    const auto path = tree_.path(a_leaf, a_attach);
    double cum = 0.0;
    t_host = kNoVertex;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const double w = tree_.edge_weight(path[i], path[i + 1]).value();
      const bool last = (i + 2 == path.size());
      if (offset <= cum + w || last) {
        t_host = tree_.split_edge(path[i], path[i + 1], offset - cum);
        break;
      }
      cum += w;
    }
    BCC_ASSERT(t_host != kNoVertex);
  }
  TreeVertex leaf = tree_.add_vertex();
  tree_.connect(t_host, leaf, leaf_weight, /*creator=*/host);

  hosts_.push_back(host);
  leaf_[host] = leaf;
  attach_[host] = t_host;
  Placement placement{anchor, offset, leaf_weight};
  placement_[host] = placement;
  return placement;
}

void PredictionTree::remove(NodeId host) {
  BCC_REQUIRE(contains(host));
  BCC_REQUIRE(host != root_host());
  const TreeVertex v = leaf_.at(host);
  BCC_ASSERT(tree_.degree(v) == 1);
  const TreeVertex q = tree_.neighbors(v)[0].to;
  tree_.remove_edge(v, q);

  // Splice out q if it became a redundant degree-2 path vertex. A host leaf
  // never qualifies (degree 1), and a vertex still carrying another host's
  // leaf edge has degree >= 3.
  bool q_is_host_leaf = false;
  for (const auto& [h, leaf] : leaf_) {
    if (leaf == q && h != host) {
      q_is_host_leaf = true;
      break;
    }
  }
  if (!q_is_host_leaf && tree_.degree(q) == 2) {
    tree_.splice_out(q);
  }

  leaf_.erase(host);
  attach_.erase(host);
  placement_.erase(host);
  hosts_.erase(std::find(hosts_.begin(), hosts_.end(), host));
}

double PredictionTree::distance(NodeId u, NodeId v) const {
  BCC_REQUIRE(contains(u) && contains(v));
  if (u == v) return 0.0;
  return tree_.distance(leaf_.at(u), leaf_.at(v));
}

double PredictionTree::predicted_bandwidth(NodeId u, NodeId v, double c) const {
  return distance_to_bandwidth(distance(u, v), c);
}

DistanceMatrix PredictionTree::predicted_distances() const {
  const std::size_t n = hosts_.size();
  for (NodeId h : hosts_) BCC_REQUIRE(h < n);  // hosts must be 0..n-1
  DistanceMatrix d(n);
  for (NodeId u : hosts_) {
    const auto dist = tree_.distances_from(leaf_.at(u));
    for (NodeId v : hosts_) {
      if (v <= u) continue;
      d.set(u, v, dist[leaf_.at(v)]);
    }
  }
  return d;
}

DistanceMatrix PredictionTree::predicted_among(
    std::span<const NodeId> host_list) const {
  DistanceMatrix d(host_list.size());
  for (std::size_t i = 0; i < host_list.size(); ++i) {
    BCC_REQUIRE(contains(host_list[i]));
    const auto dist = tree_.distances_from(leaf_.at(host_list[i]));
    for (std::size_t j = i + 1; j < host_list.size(); ++j) {
      BCC_REQUIRE(contains(host_list[j]));
      d.set(i, j, dist[leaf_.at(host_list[j])]);
    }
  }
  return d;
}

const PredictionTree::Placement& PredictionTree::placement_of(
    NodeId host) const {
  auto it = placement_.find(host);
  BCC_REQUIRE(it != placement_.end());
  return it->second;
}

TreeVertex PredictionTree::leaf_of(NodeId host) const {
  auto it = leaf_.find(host);
  BCC_REQUIRE(it != leaf_.end());
  return it->second;
}

TreeVertex PredictionTree::attach_of(NodeId host) const {
  auto it = attach_.find(host);
  BCC_REQUIRE(it != attach_.end());
  return it->second;
}

bool PredictionTree::check_invariants() const {
  if (hosts_.size() <= 1) return true;
  // Removals can leave isolated (zero-degree) vertices behind; the live part
  // must still be one tree containing every host leaf with degree 1.
  const auto reach = tree_.distances_from(leaf_.at(root_host()));
  std::size_t reachable = 0;
  for (double d : reach) {
    if (d != std::numeric_limits<double>::infinity()) ++reachable;
  }
  if (tree_.edge_count() != reachable - 1) return false;  // cycle or forest
  for (NodeId h : hosts_) {
    if (tree_.degree(leaf_.at(h)) != 1) return false;
    if (reach[leaf_.at(h)] == std::numeric_limits<double>::infinity()) {
      return false;
    }
  }
  return true;
}

}  // namespace bcc
