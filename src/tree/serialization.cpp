#include "tree/serialization.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bcc {
namespace {

constexpr const char* kMagic = "bcc-framework v1";

[[noreturn]] void malformed(const std::string& path, const std::string& why) {
  throw std::runtime_error("malformed framework file " + path + ": " + why);
}

}  // namespace

void save_framework(const Framework& fw, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  os << kMagic << "\n" << fw.prediction.host_count() << "\n";
  os.precision(17);
  for (NodeId host : fw.prediction.hosts()) {
    const auto& p = fw.prediction.placement_of(host);
    os << host << ' ';
    if (p.anchor == kNoAnchor) {
      os << -1;
    } else {
      os << static_cast<long long>(p.anchor);
    }
    os << ' ' << p.anchor_offset << ' ' << p.leaf_weight << '\n';
  }
  if (!os) throw std::runtime_error("write failed: " + path);
}

Framework load_framework(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);

  auto next_line = [&](std::string& line) {
    while (std::getline(is, line)) {
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };

  std::string line;
  if (!next_line(line) || line != kMagic) malformed(path, "bad magic");
  if (!next_line(line)) malformed(path, "missing host count");
  std::size_t n = 0;
  try {
    n = static_cast<std::size_t>(std::stoull(line));
  } catch (const std::exception&) {
    malformed(path, "bad host count");
  }

  Framework fw;
  for (std::size_t i = 0; i < n; ++i) {
    if (!next_line(line)) malformed(path, "truncated host records");
    std::istringstream fields(line);
    long long host = 0, anchor = 0;
    double offset = 0.0, leaf_weight = 0.0;
    if (!(fields >> host >> anchor >> offset >> leaf_weight) || host < 0) {
      malformed(path, "bad host record '" + line + "'");
    }
    const NodeId h = static_cast<NodeId>(host);
    if (i == 0) {
      if (anchor != -1) malformed(path, "first record must be the root");
      fw.prediction.add_first(h);
      fw.anchors.set_root(h);
      continue;
    }
    if (anchor < 0) malformed(path, "non-root record without anchor");
    const NodeId a = static_cast<NodeId>(anchor);
    if (!fw.prediction.contains(a)) {
      malformed(path, "anchor appears after its child");
    }
    try {
      fw.prediction.restore(h, a, offset, leaf_weight);
    } catch (const ContractViolation& e) {
      malformed(path, e.what());
    }
    fw.anchors.add_child(a, h);
  }
  return fw;
}

}  // namespace bcc
