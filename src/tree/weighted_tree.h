// Edge-weighted trees with edge provenance (paper §II.A, §II.D).
//
// WeightedTree is the raw graph structure underneath PredictionTree: vertices
// connected by non-negative weighted edges, no cycles.  Every edge carries a
// `creator` tag — the host whose addition to the prediction tree created the
// edge.  When an edge is split (to place a new host's inner node on it) both
// halves inherit the creator; the creator of the edge a new inner node lands
// on defines that host's *anchor* (paper §II.D).
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <vector>

#include "common/assert.h"
#include "metric/distance_matrix.h"

namespace bcc {

using TreeVertex = std::size_t;

inline constexpr NodeId kNoCreator = std::numeric_limits<NodeId>::max();
inline constexpr TreeVertex kNoVertex = std::numeric_limits<TreeVertex>::max();

/// Growable edge-weighted tree. Vertices are dense indices; edges are stored
/// as adjacency lists. The structure never holds cycles: connect() refuses to
/// link two vertices that are already connected.
class WeightedTree {
 public:
  struct HalfEdge {
    TreeVertex to;
    double weight;
    NodeId creator;  // host that created this edge (kNoCreator if none)
  };

  /// Adds an isolated vertex and returns its index.
  TreeVertex add_vertex();

  std::size_t vertex_count() const { return adj_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Connects two distinct vertices with an edge of weight >= 0.
  /// Requires the vertices not to be already connected (no cycles).
  void connect(TreeVertex u, TreeVertex v, double weight,
               NodeId creator = kNoCreator);

  std::size_t degree(TreeVertex v) const;
  const std::vector<HalfEdge>& neighbors(TreeVertex v) const;

  /// True if u and v are in the same connected component.
  bool connected(TreeVertex u, TreeVertex v) const;

  /// Sum of edge weights along the unique u~v path. Requires connectivity.
  double distance(TreeVertex u, TreeVertex v) const;

  /// The unique path u ... v (inclusive of endpoints). Requires connectivity.
  std::vector<TreeVertex> path(TreeVertex u, TreeVertex v) const;

  /// Splits the edge (u, v) at `dist_from_u` (clamped to [0, weight]) by
  /// inserting a fresh vertex; both halves keep the edge's creator.
  /// Returns the new vertex.
  TreeVertex split_edge(TreeVertex u, TreeVertex v, double dist_from_u);

  /// Removes the edge (u, v); the structure becomes a forest until callers
  /// reconnect. Requires the edge to exist.
  void remove_edge(TreeVertex u, TreeVertex v);

  /// Splices out a degree-2 vertex: its two incident edges (a,v),(v,b) are
  /// replaced by one edge (a,b) with summed weight. Both edges must have the
  /// same creator (true for any split-produced pair). v becomes isolated.
  void splice_out(TreeVertex v);

  /// Weight of the edge (u, v); nullopt if no such edge.
  std::optional<double> edge_weight(TreeVertex u, TreeVertex v) const;

  /// Creator of the edge (u, v); nullopt if no such edge.
  std::optional<NodeId> edge_creator(TreeVertex u, TreeVertex v) const;

  /// Distances from `src` to every vertex (infinity for unreachable).
  std::vector<double> distances_from(TreeVertex src) const;

  /// Multiplies every edge weight by `factor` (> 0).
  void scale_weights(double factor);

  /// True if the whole structure is one connected tree (V-1 edges, all
  /// reachable). Vacuously true for 0 or 1 vertices.
  bool is_tree() const;

 private:
  HalfEdge* find_half_edge(TreeVertex u, TreeVertex v);
  const HalfEdge* find_half_edge(TreeVertex u, TreeVertex v) const;

  std::vector<std::vector<HalfEdge>> adj_;
  std::size_t edge_count_ = 0;
};

}  // namespace bcc
