// The prediction tree: an edge-weighted tree embedding pairwise bandwidth
// (paper §II.D, following Sequoia [21] and the authors' decentralized
// framework [25][26]).
//
// Hosts (metric-space NodeIds) are the *leaves*; inner vertices are created
// as hosts join.  A joining host x picks a base node z (any existing leaf; we
// use the root host) and an end node y maximizing the Gromov product
//   (x|y)_z = ½ (d(z,x) + d(z,y) − d(x,y)).
// x's inner vertex t_x is placed on the tree path z ⇝ y at distance (x|y)_z
// from z, and x's leaf hangs off t_x with edge weight (y|z)_x.
// The *anchor* of x is the host whose addition created the edge t_x landed
// on; anchors define the overlay (see AnchorTree).
//
// The tree then *predicts* distances/bandwidth between any two hosts:
//   d_T(u,v) = path length between their leaves,  BW_T(u,v) = C / d_T(u,v).
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "metric/bandwidth.h"
#include "tree/weighted_tree.h"

namespace bcc {

inline constexpr NodeId kNoAnchor = std::numeric_limits<NodeId>::max();

/// Gromov product (x|y)_z = ½ (d(z,x) + d(z,y) − d(x,y)).
double gromov_product(double d_zx, double d_zy, double d_xy);

/// Edge-weighted tree whose leaves are hosts, grown by Gromov-product
/// insertion. See file comment.
class PredictionTree {
 public:
  /// Placement bookkeeping of one host addition (drives anchor-tree growth
  /// and distance labels).
  struct Placement {
    NodeId anchor = kNoAnchor;   // host whose edge t_x landed on
    double anchor_offset = 0.0;  // d_T(anchor leaf, t_x)
    double leaf_weight = 0.0;    // d_T(t_x, x leaf)
  };

  bool contains(NodeId host) const { return leaf_.count(host) != 0; }
  std::size_t host_count() const { return hosts_.size(); }
  const std::vector<NodeId>& hosts() const { return hosts_; }
  NodeId root_host() const;

  /// Adds the very first host (becomes the root leaf and anchor-tree root).
  void add_first(NodeId host);

  /// Adds the second host, connected to the first by an edge of weight
  /// d(first, second). Its anchor is the first host.
  Placement add_second(NodeId host, double dist);

  /// Adds host x with base z and end y (both already present, z != y),
  /// given the three *measured* distances. Returns where x was placed.
  Placement add(NodeId x, NodeId z, NodeId y, double d_zx, double d_zy,
                double d_xy);

  /// Adds host x at an explicit position: its inner vertex t_x sits on the
  /// tree path z ~> y at distance `g` from z (clamped to the path), and its
  /// leaf hangs off t_x with weight `leaf_w` (>= 0). add() is the Gromov
  /// special case; the embedder's robust refinement uses this directly.
  Placement add_at(NodeId x, NodeId z, NodeId y, double g, double leaf_w);

  /// Re-inserts a host from its stored placement (anchor, offset from the
  /// anchor's leaf, leaf weight) — the deserialization path. Inserting every
  /// host in join order reproduces the original geometry exactly (the same
  /// property that makes distance labels exact). The anchor must already be
  /// present; for a host anchored at the root the offset must be 0.
  Placement restore(NodeId host, NodeId anchor, double offset,
                    double leaf_weight);

  /// Removes a host's leaf from the tree (departure). The host must have no
  /// other host anchored *at* it in the caller's anchor tree — callers
  /// remove anchor subtrees bottom-up (see FrameworkMaintainer). The
  /// vacated inner vertex is spliced out when possible; isolated vertices
  /// are left behind (they carry no distance). The root host and the second
  /// host cannot be removed this way (their geometry seeds the tree).
  void remove(NodeId host);

  /// Predicted distance d_T between two hosts' leaves.
  double distance(NodeId u, NodeId v) const;

  /// Predicted bandwidth BW_T(u,v) = C / d_T(u,v).
  double predicted_bandwidth(NodeId u, NodeId v,
                             double c = kDefaultTransformC) const;

  /// Dense matrix of predicted distances between all hosts, indexed by the
  /// *metric-space* NodeIds (requires hosts to be exactly 0..n-1).
  DistanceMatrix predicted_distances() const;

  /// Predicted distances among an explicit host list; entry (i, j) of the
  /// result is d_T(hosts[i], hosts[j]). Works under churn, where the host
  /// set is no longer 0..n-1.
  DistanceMatrix predicted_among(std::span<const NodeId> host_list) const;

  /// Placement of a host (anchor, offset, leaf weight). The root host has
  /// anchor kNoAnchor.
  const Placement& placement_of(NodeId host) const;

  /// The leaf vertex of a host in the underlying tree.
  TreeVertex leaf_of(NodeId host) const;

  /// The vertex x's leaf edge attaches to (t_x). For the root host this is
  /// the root leaf itself (it predates all inner vertices).
  TreeVertex attach_of(NodeId host) const;

  const WeightedTree& tree() const { return tree_; }

  /// Structural invariants: underlying graph is a tree, every host leaf has
  /// degree 1 (except transiently the root before a second host joins).
  bool check_invariants() const;

 private:
  WeightedTree tree_;
  std::vector<NodeId> hosts_;  // in insertion order; hosts_[0] is the root
  std::unordered_map<NodeId, TreeVertex> leaf_;
  std::unordered_map<NodeId, TreeVertex> attach_;  // t_x per host
  std::unordered_map<NodeId, Placement> placement_;
};

}  // namespace bcc
