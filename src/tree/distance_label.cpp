#include "tree/distance_label.h"

#include <algorithm>
#include <unordered_map>

namespace bcc {

DistanceLabel::DistanceLabel(std::vector<LabelEntry> entries)
    : entries_(std::move(entries)) {
  BCC_REQUIRE(!entries_.empty());
  BCC_REQUIRE(entries_.front().offset == 0.0 &&
              entries_.front().leaf_weight == 0.0);
}

DistanceLabel DistanceLabel::of(const PredictionTree& tree, NodeId host) {
  BCC_REQUIRE(tree.contains(host));
  std::vector<LabelEntry> chain;
  NodeId cur = host;
  while (cur != kNoAnchor) {
    const auto& p = tree.placement_of(cur);
    if (p.anchor == kNoAnchor) {
      chain.push_back(LabelEntry{cur, 0.0, 0.0});  // root entry
    } else {
      chain.push_back(LabelEntry{cur, p.anchor_offset, p.leaf_weight});
    }
    cur = p.anchor;
  }
  std::reverse(chain.begin(), chain.end());
  return DistanceLabel(std::move(chain));
}

DistanceLabel DistanceLabel::from_entries(std::vector<LabelEntry> entries) {
  return DistanceLabel(std::move(entries));
}

NodeId DistanceLabel::host() const { return entries_.back().host; }
NodeId DistanceLabel::root() const { return entries_.front().host; }

namespace {

/// Incrementally rebuilds the partial prediction tree spanned by label
/// chains. Mirrors PredictionTree's geometry: each chain entry hangs its
/// leaf off a vertex placed `offset` away from its anchor's leaf along the
/// anchor's leaf edge.
class PartialTreeBuilder {
 public:
  void insert_chain(const DistanceLabel& label) {
    const auto& entries = label.entries();
    if (leaf_.empty()) {
      TreeVertex v = tree_.add_vertex();
      leaf_[entries.front().host] = v;
      attach_[entries.front().host] = v;
    } else {
      BCC_REQUIRE(leaf_.count(entries.front().host));  // same root
    }
    for (std::size_t i = 1; i < entries.size(); ++i) {
      const LabelEntry& e = entries[i];
      if (leaf_.count(e.host)) continue;  // shared chain prefix
      insert_entry(entries[i - 1].host, e);
    }
  }

  double distance(NodeId a, NodeId b) const {
    if (a == b) return 0.0;
    return tree_.distance(leaf_.at(a), leaf_.at(b));
  }

 private:
  void insert_entry(NodeId anchor, const LabelEntry& e) {
    BCC_REQUIRE(leaf_.count(anchor));
    TreeVertex t_e;
    const TreeVertex a_leaf = leaf_.at(anchor);
    const TreeVertex a_attach = attach_.at(anchor);
    if (a_leaf == a_attach) {
      // Anchor is the root: inner vertices of its children coincide with the
      // root leaf (offset is always 0 there).
      t_e = a_leaf;
    } else {
      // Walk from the anchor's leaf towards its attach vertex and split at
      // `offset`. The path may already be subdivided by earlier entries.
      const auto path = tree_.path(a_leaf, a_attach);
      double cum = 0.0;
      t_e = kNoVertex;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const double w = tree_.edge_weight(path[i], path[i + 1]).value();
        const bool last = (i + 2 == path.size());
        if (e.offset <= cum + w || last) {
          t_e = tree_.split_edge(path[i], path[i + 1], e.offset - cum);
          break;
        }
        cum += w;
      }
      BCC_ASSERT(t_e != kNoVertex);
    }
    TreeVertex v = tree_.add_vertex();
    tree_.connect(t_e, v, e.leaf_weight);
    leaf_[e.host] = v;
    attach_[e.host] = t_e;
  }

  WeightedTree tree_;
  std::unordered_map<NodeId, TreeVertex> leaf_;
  std::unordered_map<NodeId, TreeVertex> attach_;
};

}  // namespace

double label_distance(const DistanceLabel& a, const DistanceLabel& b) {
  BCC_REQUIRE(a.root() == b.root());
  if (a.host() == b.host()) return 0.0;
  PartialTreeBuilder builder;
  builder.insert_chain(a);
  builder.insert_chain(b);
  return builder.distance(a.host(), b.host());
}

}  // namespace bcc
