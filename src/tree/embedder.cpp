#include "tree/embedder.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bcc {
namespace {

/// Gromov product (x|y)_z with all three terms measured. The z–y distance is
/// known without a new probe: y measured the root (z) when it joined.
double join_gromov(const DistanceMatrix& real, NodeId x, NodeId z, NodeId y) {
  return gromov_product(real.at(z, x), real.at(z, y), real.at(x, y));
}

void count_probe(EmbedStats* stats, std::size_t n = 1) {
  if (stats) stats->probes += n;
}

/// Robust placement refinement (the "several heuristics" of §II.B): instead
/// of trusting the three Gromov measurements alone, fit x's position on the
/// z~>y path and its leaf weight to *all* distances x measured during the
/// join, minimizing the sum of absolute residuals.
///
/// Geometry: a candidate c projects onto the z~>y path at
///   p_c = ½ (d_T(z,c) + L − d_T(y,c)),  with height  h_c = d_T(z,c) − p_c,
/// so for x attached at position g with leaf weight w the tree predicts
///   d_T(x,c) = |g − p_c| + h_c + w.
/// The cost in (g, w) is piecewise linear; it is minimized at g in the
/// breakpoint set {p_c} ∪ {g_gromov}, with w the median residual at that g.
/// On a perfect tree metric the Gromov placement has zero residuals, so the
/// refinement reproduces it exactly.
struct PlacementFit {
  double g = 0.0;
  double leaf_w = 0.0;
};

PlacementFit refine_placement(const PredictionTree& tree,
                              const DistanceMatrix& real, NodeId x, NodeId z,
                              NodeId y, std::vector<NodeId> candidates,
                              std::size_t max_candidates) {
  const auto dz = tree.tree().distances_from(tree.leaf_of(z));
  const auto dy = tree.tree().distances_from(tree.leaf_of(y));
  const double path_len = dz[tree.leaf_of(y)];

  candidates.push_back(z);
  candidates.push_back(y);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  // Keep the candidates closest to x (by measurement): placement accuracy
  // matters most for nearby hosts, and this caps the fit at O(R^2).
  if (candidates.size() > max_candidates) {
    std::nth_element(candidates.begin(),
                     candidates.begin() + max_candidates, candidates.end(),
                     [&](NodeId a, NodeId b) {
                       return real.at(x, a) < real.at(x, b);
                     });
    candidates.resize(max_candidates);
  }

  struct Projected {
    double p;  // position of the candidate's projection on the path
    double h;  // height of the candidate above the path
    double m;  // measured distance x -> candidate
  };
  std::vector<Projected> proj;
  proj.reserve(candidates.size());
  for (NodeId c : candidates) {
    const double a = dz[tree.leaf_of(c)];
    const double b = dy[tree.leaf_of(c)];
    const double p = std::clamp(0.5 * (a + path_len - b), 0.0, path_len);
    proj.push_back(Projected{p, std::max(0.0, a - p), real.at(x, c)});
  }

  const double g_gromov = std::clamp(join_gromov(real, x, z, y), 0.0, path_len);
  std::vector<double> g_candidates = {g_gromov};
  for (const Projected& pc : proj) g_candidates.push_back(pc.p);

  PlacementFit best;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<double> residuals(proj.size());
  for (double g : g_candidates) {
    for (std::size_t i = 0; i < proj.size(); ++i) {
      residuals[i] = proj[i].m - (std::abs(g - proj[i].p) + proj[i].h);
    }
    std::vector<double> sorted = residuals;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    const double w = std::max(0.0, sorted[sorted.size() / 2]);
    double cost = 0.0;
    for (double r : residuals) cost += std::abs(r - w);
    // Strict improvement keeps the Gromov placement on ties (evaluated
    // first), preserving exactness on perfect tree metrics.
    if (cost < best_cost - 1e-12) {
      best_cost = cost;
      best = PlacementFit{g, w};
    }
  }
  return best;
}

}  // namespace

PredictionTree::Placement join_host(PredictionTree& tree,
                                    const DistanceMatrix& real, NodeId x,
                                    NodeId z, NodeId y,
                                    std::vector<NodeId> probed,
                                    const EmbedOptions& options) {
  if (options.refine) {
    const PlacementFit fit = refine_placement(tree, real, x, z, y,
                                              std::move(probed),
                                              options.refine_candidates);
    return tree.add_at(x, z, y, fit.g, fit.leaf_w);
  }
  return tree.add(x, z, y, real.at(z, x), real.at(z, y), real.at(x, y));
}

NodeId find_end_exhaustive(const PredictionTree& tree,
                           const DistanceMatrix& real, NodeId x, NodeId z,
                           EmbedStats* stats, std::vector<NodeId>* probed) {
  BCC_REQUIRE(tree.host_count() >= 2);
  NodeId best = kNoAnchor;
  double best_g = -std::numeric_limits<double>::infinity();
  for (NodeId y : tree.hosts()) {
    if (y == z) continue;
    count_probe(stats);  // x measures d(x, y)
    if (probed) probed->push_back(y);
    const double g = join_gromov(real, x, z, y);
    if (g > best_g) {
      best_g = g;
      best = y;
    }
  }
  BCC_ASSERT(best != kNoAnchor);
  return best;
}

NodeId find_end_anchor_descent(const PredictionTree& tree,
                               const AnchorTree& anchors,
                               const DistanceMatrix& real, NodeId x, NodeId z,
                               EmbedStats* stats, std::vector<NodeId>* probed) {
  BCC_REQUIRE(anchors.size() >= 2);
  BCC_REQUIRE(anchors.root() == z);
  (void)tree;
  // DFS over anchor paths with non-decreasing Gromov product. Along the
  // chain towards the true maximizer, G never decreases; conversely, once a
  // child's G drops strictly below the path's running maximum, everything in
  // its anchor subtree is bounded by that child's G, so the branch can be
  // pruned. A *plain* greedy walk is not enough: siblings attached at the
  // same junction share the parent's G exactly (a plateau), and the
  // maximizer may sit below such a tie.
  NodeId best = kNoAnchor;
  double best_g = -std::numeric_limits<double>::infinity();
  std::vector<std::pair<NodeId, double>> frontier;
  frontier.emplace_back(z, -std::numeric_limits<double>::infinity());
  while (!frontier.empty()) {
    const auto [cur, g_cur] = frontier.back();
    frontier.pop_back();
    for (NodeId c : anchors.children_of(cur)) {
      count_probe(stats);  // x measures d(x, c)
      if (probed) probed->push_back(c);
      const double g = join_gromov(real, x, z, c);
      if (g > best_g) {
        best_g = g;
        best = c;
      }
      const double slack = 1e-9 * (1.0 + std::abs(g_cur));
      if (g + slack >= g_cur) {
        frontier.emplace_back(c, std::max(g, g_cur));
      }
    }
  }
  BCC_ASSERT(best != kNoAnchor);
  return best;
}

Framework build_framework(const DistanceMatrix& real,
                          std::span<const NodeId> order,
                          const EmbedOptions& options, EmbedStats* stats) {
  const std::size_t n = real.size();
  BCC_REQUIRE(order.size() == n && n >= 1);
  {
    std::vector<char> seen(n, 0);
    for (NodeId h : order) {
      BCC_REQUIRE(h < n && !seen[h]);
      seen[h] = 1;
    }
  }

  Framework fw;
  fw.prediction.add_first(order[0]);
  fw.anchors.set_root(order[0]);
  if (stats) ++stats->joins;
  if (n == 1) return fw;

  const NodeId root = order[0];
  count_probe(stats);  // second host measures d to the root
  fw.prediction.add_second(order[1], real.at(root, order[1]));
  fw.anchors.add_child(root, order[1]);
  if (stats) ++stats->joins;

  for (std::size_t i = 2; i < n; ++i) {
    const NodeId x = order[i];
    count_probe(stats);  // x measures d(x, root) — the base-node probe
    std::vector<NodeId> probed;
    const NodeId y =
        options.search == EndSearch::kExhaustive
            ? find_end_exhaustive(fw.prediction, real, x, root, stats, &probed)
            : find_end_anchor_descent(fw.prediction, fw.anchors, real, x, root,
                                      stats, &probed);
    const auto placement =
        join_host(fw.prediction, real, x, root, y, std::move(probed), options);
    fw.anchors.add_child(placement.anchor, x);
    if (stats) ++stats->joins;
  }
  BCC_ASSERT(fw.prediction.check_invariants());
  return fw;
}

Framework build_framework(const DistanceMatrix& real, Rng& rng,
                          const EmbedOptions& options, EmbedStats* stats) {
  std::vector<NodeId> order(real.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  return build_framework(real, order, options, stats);
}

}  // namespace bcc
