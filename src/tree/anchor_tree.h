// The anchor tree: the rooted, unweighted overlay network of hosts
// (paper §II.D).
//
// The first host is the root; every later host becomes a child of its
// *anchor* (the host whose prediction-tree edge its inner vertex landed on).
// Anchor-tree edges are the neighbor relation used by all the decentralized
// clustering protocols (Algorithms 2–4).
#pragma once

#include <unordered_map>
#include <vector>

#include "metric/distance_matrix.h"

namespace bcc {

/// Rooted unweighted tree over hosts (metric-space NodeIds).
class AnchorTree {
 public:
  bool contains(NodeId host) const { return info_.count(host) != 0; }
  std::size_t size() const { return info_.size(); }
  bool empty() const { return info_.empty(); }

  NodeId root() const;

  /// Installs the root host. Must be the first insertion.
  void set_root(NodeId host);

  /// Adds `child` under `parent` (which must already be present).
  void add_child(NodeId parent, NodeId child);

  /// kNoParent for the root.
  static constexpr NodeId kNoParent = static_cast<NodeId>(-1);
  NodeId parent_of(NodeId host) const;
  const std::vector<NodeId>& children_of(NodeId host) const;

  /// Parent (if any) plus children — the overlay neighbor set.
  std::vector<NodeId> neighbors_of(NodeId host) const;

  std::size_t degree(NodeId host) const;
  std::size_t max_degree() const;

  /// Longest path length (in hops) between any two hosts. O(n).
  std::size_t diameter() const;

  /// Hosts in BFS order from the root.
  std::vector<NodeId> bfs_order() const;

  /// Removes `host` and its entire descendant subtree (departure handling —
  /// descendants lose their anchor chain and must rejoin). Returns the
  /// removed descendants in BFS order (without `host` itself). The root can
  /// only be removed when it is the last host.
  std::vector<NodeId> remove_subtree(NodeId host);

  /// All hosts reachable from `host` when the edge towards `via` is cut —
  /// i.e. the set U of Theorem 3.2/3.3 ("nodes reachable from `host` via
  /// `via`"). `via` must be a neighbor of `host`. Includes `via`.
  std::vector<NodeId> reachable_via(NodeId host, NodeId via) const;

 private:
  struct Info {
    NodeId parent = kNoParent;
    std::vector<NodeId> children;
  };

  const Info& info(NodeId host) const;

  NodeId root_ = kNoParent;
  std::unordered_map<NodeId, Info> info_;
};

}  // namespace bcc
