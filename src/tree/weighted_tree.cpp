#include "tree/weighted_tree.h"

#include <algorithm>
#include <queue>

namespace bcc {

TreeVertex WeightedTree::add_vertex() {
  adj_.emplace_back();
  return adj_.size() - 1;
}

void WeightedTree::connect(TreeVertex u, TreeVertex v, double weight,
                           NodeId creator) {
  BCC_REQUIRE(u < adj_.size() && v < adj_.size() && u != v);
  BCC_REQUIRE(weight >= 0.0);
  BCC_REQUIRE(!connected(u, v));
  adj_[u].push_back(HalfEdge{v, weight, creator});
  adj_[v].push_back(HalfEdge{u, weight, creator});
  ++edge_count_;
}

std::size_t WeightedTree::degree(TreeVertex v) const {
  BCC_REQUIRE(v < adj_.size());
  return adj_[v].size();
}

const std::vector<WeightedTree::HalfEdge>& WeightedTree::neighbors(
    TreeVertex v) const {
  BCC_REQUIRE(v < adj_.size());
  return adj_[v];
}

bool WeightedTree::connected(TreeVertex u, TreeVertex v) const {
  BCC_REQUIRE(u < adj_.size() && v < adj_.size());
  if (u == v) return true;
  std::vector<char> seen(adj_.size(), 0);
  std::queue<TreeVertex> q;
  q.push(u);
  seen[u] = 1;
  while (!q.empty()) {
    TreeVertex cur = q.front();
    q.pop();
    for (const HalfEdge& e : adj_[cur]) {
      if (seen[e.to]) continue;
      if (e.to == v) return true;
      seen[e.to] = 1;
      q.push(e.to);
    }
  }
  return false;
}

double WeightedTree::distance(TreeVertex u, TreeVertex v) const {
  auto p = path(u, v);
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    const HalfEdge* e = find_half_edge(p[i], p[i + 1]);
    BCC_ASSERT(e != nullptr);
    total += e->weight;
  }
  return total;
}

std::vector<TreeVertex> WeightedTree::path(TreeVertex u, TreeVertex v) const {
  BCC_REQUIRE(u < adj_.size() && v < adj_.size());
  if (u == v) return {u};
  std::vector<TreeVertex> parent(adj_.size(), kNoVertex);
  std::vector<char> seen(adj_.size(), 0);
  std::queue<TreeVertex> q;
  q.push(u);
  seen[u] = 1;
  bool found = false;
  while (!q.empty() && !found) {
    TreeVertex cur = q.front();
    q.pop();
    for (const HalfEdge& e : adj_[cur]) {
      if (seen[e.to]) continue;
      seen[e.to] = 1;
      parent[e.to] = cur;
      if (e.to == v) {
        found = true;
        break;
      }
      q.push(e.to);
    }
  }
  BCC_REQUIRE(found);  // precondition: u and v connected
  std::vector<TreeVertex> p;
  for (TreeVertex cur = v; cur != kNoVertex; cur = parent[cur]) p.push_back(cur);
  std::reverse(p.begin(), p.end());
  BCC_ASSERT(p.front() == u && p.back() == v);
  return p;
}

TreeVertex WeightedTree::split_edge(TreeVertex u, TreeVertex v,
                                    double dist_from_u) {
  HalfEdge* uv = find_half_edge(u, v);
  BCC_REQUIRE(uv != nullptr);
  const double w = uv->weight;
  const NodeId creator = uv->creator;
  const double t = std::clamp(dist_from_u, 0.0, w);

  // Remove both half-edges, then connect through the new vertex.
  auto erase_half = [this](TreeVertex a, TreeVertex b) {
    auto& list = adj_[a];
    auto it = std::find_if(list.begin(), list.end(),
                           [b](const HalfEdge& e) { return e.to == b; });
    BCC_ASSERT(it != list.end());
    list.erase(it);
  };
  erase_half(u, v);
  erase_half(v, u);
  --edge_count_;

  TreeVertex mid = add_vertex();
  connect(u, mid, t, creator);
  connect(mid, v, w - t, creator);
  return mid;
}

void WeightedTree::remove_edge(TreeVertex u, TreeVertex v) {
  BCC_REQUIRE(find_half_edge(u, v) != nullptr);
  auto erase_half = [this](TreeVertex a, TreeVertex b) {
    auto& list = adj_[a];
    auto it = std::find_if(list.begin(), list.end(),
                           [b](const HalfEdge& e) { return e.to == b; });
    BCC_ASSERT(it != list.end());
    list.erase(it);
  };
  erase_half(u, v);
  erase_half(v, u);
  --edge_count_;
}

void WeightedTree::splice_out(TreeVertex v) {
  BCC_REQUIRE(v < adj_.size());
  BCC_REQUIRE(degree(v) == 2);
  const HalfEdge ea = adj_[v][0];
  const HalfEdge eb = adj_[v][1];
  BCC_REQUIRE(ea.creator == eb.creator);
  remove_edge(v, ea.to);
  remove_edge(v, eb.to);
  connect(ea.to, eb.to, ea.weight + eb.weight, ea.creator);
}

std::optional<double> WeightedTree::edge_weight(TreeVertex u,
                                                TreeVertex v) const {
  const HalfEdge* e = find_half_edge(u, v);
  if (!e) return std::nullopt;
  return e->weight;
}

std::optional<NodeId> WeightedTree::edge_creator(TreeVertex u,
                                                 TreeVertex v) const {
  const HalfEdge* e = find_half_edge(u, v);
  if (!e) return std::nullopt;
  return e->creator;
}

std::vector<double> WeightedTree::distances_from(TreeVertex src) const {
  BCC_REQUIRE(src < adj_.size());
  std::vector<double> dist(adj_.size(),
                           std::numeric_limits<double>::infinity());
  dist[src] = 0.0;
  std::queue<TreeVertex> q;
  q.push(src);
  while (!q.empty()) {
    TreeVertex cur = q.front();
    q.pop();
    for (const HalfEdge& e : adj_[cur]) {
      if (dist[e.to] != std::numeric_limits<double>::infinity()) continue;
      dist[e.to] = dist[cur] + e.weight;
      q.push(e.to);
    }
  }
  return dist;
}

void WeightedTree::scale_weights(double factor) {
  BCC_REQUIRE(factor > 0.0);
  for (auto& list : adj_) {
    for (HalfEdge& e : list) e.weight *= factor;
  }
}

bool WeightedTree::is_tree() const {
  if (adj_.size() <= 1) return true;
  if (edge_count_ != adj_.size() - 1) return false;
  auto dist = distances_from(0);
  return std::none_of(dist.begin(), dist.end(), [](double d) {
    return d == std::numeric_limits<double>::infinity();
  });
}

WeightedTree::HalfEdge* WeightedTree::find_half_edge(TreeVertex u,
                                                     TreeVertex v) {
  BCC_REQUIRE(u < adj_.size() && v < adj_.size());
  for (HalfEdge& e : adj_[u]) {
    if (e.to == v) return &e;
  }
  return nullptr;
}

const WeightedTree::HalfEdge* WeightedTree::find_half_edge(TreeVertex u,
                                                           TreeVertex v) const {
  return const_cast<WeightedTree*>(this)->find_half_edge(u, v);
}

}  // namespace bcc
