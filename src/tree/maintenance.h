// Dynamic membership for the prediction framework — the "Dynamic
// Clustering" requirement of §I: cluster members must adapt as hosts come
// and go and as network conditions change.
//
// FrameworkMaintainer owns a prediction tree + anchor tree and supports:
//   * join(h)   — embeds a new host with the usual Gromov join,
//   * leave(h)  — removes a host; everything anchored beneath it loses its
//                 anchor chain and transparently *rejoins* (the standard
//                 recovery in anchor-tree overlays); leaving the root
//                 rebuilds the framework from the survivors,
//   * drift     — callers can swap the measurement matrix (refresh) and
//                 rebuild, modelling changing network conditions.
// The exactness guarantee survives churn: on a perfect tree metric every
// alive pair stays exactly embedded after any join/leave sequence (tested).
#pragma once

#include <span>

#include "tree/embedder.h"

namespace bcc {

/// See file comment.
class FrameworkMaintainer {
 public:
  /// `real` must outlive the maintainer; it is the measurement oracle
  /// consulted on every join.
  explicit FrameworkMaintainer(const DistanceMatrix* real,
                               EmbedOptions options = {});

  std::size_t size() const { return prediction_.host_count(); }
  bool contains(NodeId host) const { return prediction_.contains(host); }

  /// Adds a host (must be < real->size() and absent).
  void join(NodeId host);

  /// Removes a host. Anchor descendants rejoin automatically; returns them
  /// (in rejoin order). Leaving host may be the root, which triggers a full
  /// rebuild of the survivors (all of them are "rejoined").
  std::vector<NodeId> leave(NodeId host);

  /// Replaces the measurement oracle (same size) and rebuilds the framework
  /// over the current membership — network-condition drift.
  void refresh(const DistanceMatrix* new_real);

  /// Outcome of an incremental refresh (refresh_dirty).
  struct RepairReport {
    /// True when the repair fell back to a full refresh().
    bool full_rebuild = false;
    /// Hosts actually re-embedded (the alive dirty set plus any anchor
    /// orphans dragged along by their leave+rejoin), sorted ascending. On a
    /// full rebuild this is every alive host.
    std::vector<NodeId> repaired;
  };

  /// Incremental network-condition drift: swaps the measurement oracle and
  /// re-embeds only the `dirty` hosts (leave + rejoin each against the new
  /// measurements, which drags their orphaned anchor descendants along).
  /// Falls back to a full refresh() when the dirty fraction of alive hosts
  /// exceeds `full_threshold`, or when the dirty set contains the framework
  /// root — whose departure rebuilds everything anyway. Locality guarantee:
  /// a pair with neither end in the returned repaired set keeps its exact
  /// predicted distance (leaf removal never perturbs the rest of the
  /// prediction tree), which is what lets DecentralizedClusterSystem::
  /// apply_delta re-gossip only the affected subtree.
  RepairReport refresh_dirty(const DistanceMatrix* new_real,
                             std::span<const NodeId> dirty,
                             double full_threshold = 0.25);

  /// Writes predicted distances among alive() into `out`, a global-id
  /// indexed matrix covering the measurement universe. Pairs with a
  /// non-alive end are left untouched.
  void write_predicted(DistanceMatrix* out) const;

  /// Same, but only for pairs with at least one end in `repaired` —
  /// O(|repaired|·n) instead of O(n²) after an incremental repair.
  void write_predicted_delta(DistanceMatrix* out,
                             std::span<const NodeId> repaired) const;

  /// Alive hosts in join order.
  const std::vector<NodeId>& alive() const { return prediction_.hosts(); }

  /// Predicted distances among alive(), indexed by position in alive().
  DistanceMatrix predicted_alive() const {
    return prediction_.predicted_among(prediction_.hosts());
  }

  const PredictionTree& prediction() const { return prediction_; }
  const AnchorTree& anchors() const { return anchors_; }

  /// A compacted snapshot for consumers that need dense 0..n-1 ids (the
  /// DecentralizedClusterSystem, matrices): position i corresponds to global
  /// host ids[i].
  struct CompactView {
    std::vector<NodeId> ids;   // alive hosts, join order
    AnchorTree anchors;        // re-keyed to positions
    DistanceMatrix predicted;  // predicted distances, position-indexed
  };
  CompactView compact_view() const;

  /// Cumulative number of forced rejoins caused by departures (overlay
  /// repair cost).
  std::size_t rejoins() const { return rejoins_; }

 private:
  void join_into(NodeId host);
  void rebuild(std::vector<NodeId> membership);
  /// Refreshes the maintenance gauges in obs::Registry::global() after each
  /// round: `bcc.tree.alive` and `bcc.tree.embed_rel_error` (median relative
  /// embedding error over a bounded deterministic sample of alive pairs —
  /// O(64 tree walks), cheap next to the join/leave itself).
  void update_obs() const;

  const DistanceMatrix* real_;
  EmbedOptions options_;
  PredictionTree prediction_;
  AnchorTree anchors_;
  std::size_t rejoins_ = 0;
};

}  // namespace bcc
