// Framework persistence: a built prediction framework (prediction tree +
// anchor tree) serializes to a compact text form and reloads exactly.
//
// The on-disk record is the per-host placement chain — host id, anchor id,
// offset from the anchor's leaf, leaf-edge weight — in join order. That is
// the same information distance labels carry, and replaying it through
// PredictionTree::restore reproduces the tree geometry exactly (verified by
// round-trip tests). Long-running deployments snapshot the framework
// instead of re-measuring the network after a restart.
//
// Format (text, '#' comments allowed):
//   bcc-framework v1
//   <n>
//   <host> <anchor|-1> <offset> <leaf_weight>     # one line per host,
//   ...                                           # join order, root first
#pragma once

#include <string>

#include "tree/embedder.h"

namespace bcc {

/// Writes the framework. Throws std::runtime_error on I/O failure.
void save_framework(const Framework& fw, const std::string& path);

/// Reads a framework back; distances match the saved one exactly.
/// Throws std::runtime_error on I/O failure or malformed content.
Framework load_framework(const std::string& path);

}  // namespace bcc
