#include "exp/fig5.h"

#include <algorithm>
#include <cmath>

#include "core/find_cluster.h"
#include "data/subsets.h"
#include "exp/common.h"
#include "metric/four_point.h"
#include "stats/accuracy.h"
#include "tree/embedder.h"

namespace bcc::exp {
namespace {

/// One treeness variant: its bandwidth/distance matrices and ε_avg.
struct Variant {
  BandwidthMatrix bandwidth;
  DistanceMatrix distances;
  double epsilon_avg = 0.0;
};

std::vector<Variant> make_noise_variants(const Fig5Params& params,
                                         std::uint64_t seed) {
  std::vector<Variant> variants;
  for (std::size_t i = 0; i < params.variants; ++i) {
    const double frac = params.variants == 1
                            ? 0.0
                            : static_cast<double>(i) /
                                  static_cast<double>(params.variants - 1);
    SynthOptions options;
    options.hosts = params.dataset_size;
    options.noise_sigma =
        params.noise_min + frac * (params.noise_max - params.noise_min);
    options.target_p20 = params.target_p20;
    options.target_p80 = params.target_p80;
    // Same structural seed across variants: only the noise level differs.
    Rng rng(seed + 17);
    SynthDataset data = synthesize_planetlab(options, rng);
    Variant v;
    v.bandwidth = std::move(data.bandwidth);
    v.distances = std::move(data.distances);
    Rng est(seed + 31 + i);
    v.epsilon_avg = estimate_treeness(v.distances, est, 30000).epsilon_avg;
    variants.push_back(std::move(v));
  }
  return variants;
}

std::vector<Variant> make_subset_variants(const SynthDataset& base,
                                          const Fig5Params& params,
                                          std::uint64_t seed) {
  Rng rng(seed + 53);
  const auto subsets = treeness_spread_subsets(
      base.distances, params.dataset_size, params.variants,
      params.subset_candidates, rng);
  std::vector<Variant> variants;
  for (const auto& s : subsets) {
    Variant v;
    v.bandwidth = extract_bandwidth(base.bandwidth, s.indices);
    v.distances = base.distances.submatrix(s.indices);
    v.epsilon_avg = s.epsilon_avg;
    variants.push_back(std::move(v));
  }
  return variants;
}

}  // namespace

Fig5Result run_fig5(const SynthDataset& base, const Fig5Params& params,
                    std::uint64_t seed) {
  BCC_REQUIRE(params.k >= 2 && params.variants >= 1);
  const std::vector<double> grid =
      bandwidth_grid(params.b_min, params.b_max, params.b_steps);

  std::vector<Variant> variants =
      params.mode == Fig5Mode::kNoiseSweep
          ? make_noise_variants(params, seed)
          : make_subset_variants(base, params, seed);
  std::sort(variants.begin(), variants.end(),
            [](const Variant& a, const Variant& b) {
              return a.epsilon_avg < b.epsilon_avg;
            });

  Fig5Result result;
  Rng master(seed);
  for (std::size_t vi = 0; vi < variants.size(); ++vi) {
    const Variant& variant = variants[vi];
    const double c = base.c;
    std::vector<WprAccumulator> wpr(grid.size());

    for (std::size_t round = 0; round < params.rounds; ++round) {
      Rng round_rng = master.split(vi * 1000 + round);
      Framework fw = build_framework(variant.distances, round_rng);
      const DistanceMatrix pred = fw.predicted_distances();
      for (std::size_t bi = 0; bi < grid.size(); ++bi) {
        const double l = bandwidth_to_distance(grid[bi], c);
        if (auto cluster = find_cluster(pred, params.k, l)) {
          wpr[bi].add_cluster(variant.bandwidth, *cluster, grid[bi]);
        }
      }
    }

    Fig5Series series;
    series.epsilon_avg = variant.epsilon_avg;
    const double eps_star_v = epsilon_star(variant.epsilon_avg);
    for (std::size_t bi = 0; bi < grid.size(); ++bi) {
      Fig5Point point;
      point.b = grid[bi];
      point.f_b = f_b(variant.bandwidth, grid[bi]);
      point.f_a = f_a(variant.bandwidth, grid[bi]);
      point.wpr = wpr[bi].rate();
      const double fas = f_a_star(point.f_a, params.alpha);
      point.wpr_normalized = std::pow(point.wpr, fas);
      point.wpr_model = wpr_model(point.f_b, eps_star_v, fas);
      series.points.push_back(point);
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

}  // namespace bcc::exp
