// Figure 5 (paper §IV.C): the effect of dataset treeness on clustering
// accuracy, and the WPR model of Equation 1.
//
// Several same-size datasets of graded treeness (ε_avg) answer the same
// (k, b) sweep. Raw WPR–f_b curves do not separate by ε_avg; normalizing
// WPR as (WPR)^{f_a*} (α = 3.2) exposes the treeness ordering: datasets
// with larger ε_avg plot above.
//
// Dataset provenance: the paper drew six 100-node *subsets* of one trace;
// with synthetic data we can grade treeness directly via the measurement-
// noise σ (kNoiseSweep, default — wider, cleaner ε range) or reproduce the
// subset recipe verbatim (kSubsetSweep).
#pragma once

#include <cstdint>
#include <vector>

#include "data/planetlab_synth.h"

namespace bcc::exp {

enum class Fig5Mode {
  kNoiseSweep,   // independent datasets, σ graded over [noise_min, noise_max]
  kSubsetSweep,  // treeness-ranked subsets of one base dataset (paper recipe)
};

struct Fig5Params {
  Fig5Mode mode = Fig5Mode::kNoiseSweep;
  std::size_t dataset_size = 100;
  std::size_t variants = 6;
  std::size_t rounds = 10;  // frameworks per variant
  std::size_t k = 5;
  double b_min = 5.0;
  double b_max = 300.0;
  std::size_t b_steps = 12;
  double alpha = 3.2;          // f_a* transform constant
  double noise_min = 0.05;     // kNoiseSweep σ range
  double noise_max = 0.8;
  std::size_t subset_candidates = 60;  // kSubsetSweep pool size
  // Percentile targets of the generated variants (kNoiseSweep).
  double target_p20 = 15.0;
  double target_p80 = 75.0;
};

struct Fig5Point {
  double b = 0.0;
  double f_b = 0.0;
  double f_a = 0.0;
  double wpr = 0.0;
  double wpr_normalized = 0.0;  // (WPR)^{f_a*}
  double wpr_model = 0.0;       // Equation 1 prediction
};

struct Fig5Series {
  double epsilon_avg = 0.0;
  std::vector<Fig5Point> points;  // by ascending b
};

struct Fig5Result {
  std::vector<Fig5Series> series;  // by ascending epsilon_avg
};

/// Runs the Fig. 5 experiment. `base` is only used in kSubsetSweep mode (the
/// trace to subset); pass any dataset for kNoiseSweep. Deterministic.
Fig5Result run_fig5(const SynthDataset& base, const Fig5Params& params,
                    std::uint64_t seed);

}  // namespace bcc::exp
