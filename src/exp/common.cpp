#include "exp/common.h"

#include "common/assert.h"

namespace bcc::exp {

std::vector<double> bandwidth_grid(double b_min, double b_max,
                                   std::size_t steps) {
  BCC_REQUIRE(b_min > 0.0 && b_max >= b_min && steps >= 1);
  std::vector<double> grid;
  grid.reserve(steps);
  if (steps == 1) {
    grid.push_back(b_min);
    return grid;
  }
  for (std::size_t i = 0; i < steps; ++i) {
    grid.push_back(b_min + (b_max - b_min) * static_cast<double>(i) /
                               static_cast<double>(steps - 1));
  }
  return grid;
}

BandwidthClasses classes_for_grid(const std::vector<double>& grid, double c) {
  return BandwidthClasses(grid, c);
}

}  // namespace bcc::exp
