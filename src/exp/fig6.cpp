#include "exp/fig6.h"

#include <algorithm>

#include "core/system.h"
#include "data/subsets.h"
#include "exp/common.h"
#include "stats/accuracy.h"
#include "stats/bootstrap.h"
#include "tree/embedder.h"

namespace bcc::exp {

Fig6Result run_fig6(const SynthDataset& base, const Fig6Params& params,
                    std::uint64_t seed) {
  BCC_REQUIRE(!params.sizes.empty());
  for (std::size_t n : params.sizes) {
    BCC_REQUIRE(n >= 4 && n <= base.bandwidth.size());
  }
  const std::vector<double> b_grid =
      bandwidth_grid(params.b_min, params.b_max, params.b_steps);
  const double c = base.c;

  Fig6Result result;
  Rng master(seed);
  for (std::size_t si = 0; si < params.sizes.size(); ++si) {
    const std::size_t n = params.sizes[si];
    double hop_sum_found = 0.0, max_hops = 0.0;
    std::size_t queries_found = 0;
    std::vector<double> hop_samples;

    for (std::size_t ds = 0; ds < params.datasets_per_size; ++ds) {
      Rng subset_rng = master.split(si * 100 + ds);
      const auto indices = random_subset(base.bandwidth.size(), n, subset_rng);
      const DistanceMatrix real = base.distances.submatrix(indices);
      const BandwidthMatrix bw = extract_bandwidth(base.bandwidth, indices);

      for (std::size_t round = 0; round < params.rounds; ++round) {
        Rng round_rng = subset_rng.split(round);
        Framework fw = build_framework(real, round_rng);
        SystemOptions sys_options;
        sys_options.n_cut = params.n_cut;
        const BandwidthClasses classes = classes_for_grid(b_grid, c);
        DecentralizedClusterSystem sys(fw.anchors, fw.predicted_distances(),
                                       classes, sys_options);
        sys.run_to_convergence();

        Rng query_rng = round_rng.split(7);
        for (std::size_t q = 0; q < params.queries; ++q) {
          const double frac = query_rng.uniform(params.k_frac_min,
                                                params.k_frac_max);
          const std::size_t k = std::max<std::size_t>(
              2, static_cast<std::size_t>(frac * static_cast<double>(n)));
          const double b =
              b_grid[static_cast<std::size_t>(query_rng.below(b_grid.size()))];
          const auto cls = classes.class_for_bandwidth(b);
          BCC_ASSERT(cls.has_value());
          const NodeId start = static_cast<NodeId>(query_rng.below(n));
          const QueryResult outcome =
              sys.query(QueryRequest::at_class(start, k, *cls));
          const auto hops = static_cast<double>(outcome.hops);
          hop_samples.push_back(hops);
          max_hops = std::max(max_hops, hops);
          if (outcome.found()) {
            hop_sum_found += hops;
            ++queries_found;
          }
        }
      }
    }

    Fig6Row row;
    row.n = n;
    if (!hop_samples.empty()) {
      Rng ci_rng = master.split(900 + si);
      const ConfidenceInterval ci = bootstrap_mean_ci(hop_samples, ci_rng);
      row.avg_hops = ci.point;
      row.hops_ci_lo = ci.lo;
      row.hops_ci_hi = ci.hi;
    }
    row.avg_hops_found =
        queries_found ? hop_sum_found / static_cast<double>(queries_found)
                      : 0.0;
    row.max_hops = max_hops;
    row.rr = hop_samples.empty()
                 ? 0.0
                 : static_cast<double>(queries_found) /
                       static_cast<double>(hop_samples.size());
    result.rows.push_back(row);
  }
  return result;
}

}  // namespace bcc::exp
