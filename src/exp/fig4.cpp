#include "exp/fig4.h"

#include "core/system.h"
#include "exp/common.h"
#include "stats/accuracy.h"
#include "tree/embedder.h"

namespace bcc::exp {
namespace {

std::vector<std::size_t> k_grid(const Fig4Params& params) {
  BCC_REQUIRE(params.k_min >= 2 && params.k_max >= params.k_min &&
              params.k_steps >= 1);
  std::vector<std::size_t> grid;
  if (params.k_steps == 1) {
    grid.push_back(params.k_min);
    return grid;
  }
  for (std::size_t i = 0; i < params.k_steps; ++i) {
    const double frac =
        static_cast<double>(i) / static_cast<double>(params.k_steps - 1);
    const auto k = static_cast<std::size_t>(
        static_cast<double>(params.k_min) +
        frac * static_cast<double>(params.k_max - params.k_min) + 0.5);
    if (grid.empty() || grid.back() != k) grid.push_back(k);
  }
  return grid;
}

}  // namespace

Fig4Result run_fig4(const SynthDataset& data, const Fig4Params& params,
                    std::uint64_t seed) {
  const std::size_t n = data.bandwidth.size();
  const double c = data.c;
  const std::vector<double> b_grid =
      bandwidth_grid(params.b_min, params.b_max, params.b_steps);
  const std::vector<std::size_t> ks = k_grid(params);

  std::vector<RrAccumulator> rr_central(ks.size()), rr_decentral(ks.size());

  Rng master(seed);
  for (std::size_t round = 0; round < params.rounds; ++round) {
    Rng round_rng = master.split(round);
    Framework fw = build_framework(data.distances, round_rng);
    const DistanceMatrix pred = fw.predicted_distances();

    SystemOptions sys_options;
    sys_options.n_cut = params.n_cut;
    const BandwidthClasses classes = classes_for_grid(b_grid, c);
    DecentralizedClusterSystem sys(fw.anchors, pred, classes, sys_options);
    sys.run_to_convergence();

    // Centralized ground capability: one O(n^3) pass tabulates the max
    // cluster size per class; a query succeeds iff k <= that size.
    std::vector<NodeId> universe(n);
    for (NodeId i = 0; i < n; ++i) universe[i] = i;
    std::vector<double> ls(classes.size());
    for (std::size_t i = 0; i < ls.size(); ++i) ls[i] = classes.distance_at(i);
    const auto central_max = max_cluster_sizes_for_classes(pred, universe, ls);

    Rng query_rng = round_rng.split(1);
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      const std::size_t k = ks[ki];
      for (std::size_t q = 0; q < params.queries_per_k; ++q) {
        const double b =
            b_grid[static_cast<std::size_t>(query_rng.below(b_grid.size()))];
        const auto cls = classes.class_for_bandwidth(b);
        BCC_ASSERT(cls.has_value());
        rr_central[ki].add_query(k <= central_max[*cls] && k <= n);
        const NodeId start = static_cast<NodeId>(query_rng.below(n));
        rr_decentral[ki].add_query(
            sys.query(QueryRequest::at_class(start, k, *cls)).found());
      }
    }
  }

  Fig4Result result;
  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    result.rows.push_back(
        Fig4Row{ks[ki], rr_central[ki].rate(), rr_decentral[ki].rate()});
  }
  return result;
}

}  // namespace bcc::exp
