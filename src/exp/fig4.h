// Figure 4 (paper §IV.B): the tradeoff of decentralization — Return Rate as
// the cluster-size constraint k grows, centralized vs decentralized.
//
// The centralized approach sees the whole predicted metric; the
// decentralized one only per-node clustering spaces bounded by n_cut, so its
// RR drops earlier for difficult (large-k) queries. For k below ~20% of the
// system both should be nearly identical.
#pragma once

#include <cstdint>
#include <vector>

#include "data/planetlab_synth.h"

namespace bcc::exp {

struct Fig4Params {
  std::size_t rounds = 20;       // frameworks with different seeds
  std::size_t queries_per_k = 10;  // random (b, entry) samples per k, round
  std::size_t k_min = 2;
  std::size_t k_max = 90;
  std::size_t k_steps = 10;
  double b_min = 15.0;
  double b_max = 75.0;
  std::size_t b_steps = 5;
  std::size_t n_cut = 10;
};

struct Fig4Row {
  std::size_t k = 0;
  double rr_central = 0.0;
  double rr_decentral = 0.0;
};

struct Fig4Result {
  std::vector<Fig4Row> rows;
};

/// Runs the Fig. 4 experiment on a dataset. Deterministic for a given seed.
Fig4Result run_fig4(const SynthDataset& data, const Fig4Params& params,
                    std::uint64_t seed);

}  // namespace bcc::exp
