// Shared plumbing for the figure-reproduction experiments (§IV).
#pragma once

#include <cstdint>
#include <vector>

#include "core/bandwidth_classes.h"
#include "data/planetlab_synth.h"

namespace bcc::exp {

/// Evenly spaced bandwidth grid [b_min, b_max] with `steps` values — used
/// both as the query-constraint sweep and as the system's bandwidth classes
/// (so decentralized queries snap exactly onto the sweep).
std::vector<double> bandwidth_grid(double b_min, double b_max,
                                   std::size_t steps);

/// Bandwidth classes covering the sweep grid.
BandwidthClasses classes_for_grid(const std::vector<double>& grid,
                                  double c = kDefaultTransformC);

}  // namespace bcc::exp
