// Figure 6 (paper §IV.D): scalability of query routing — the mean number of
// routing hops as the system size n grows.
//
// For each n, several random subsets of a base dataset each get their own
// prediction framework and converged overlay; (k, b) queries with k scaled
// to 5–30% of n enter at random nodes and their Algorithm 4 hop counts are
// averaged. The paper reports ~2–3 hops, growing slowly and concavely in n.
#pragma once

#include <cstdint>
#include <vector>

#include "data/planetlab_synth.h"

namespace bcc::exp {

struct Fig6Params {
  std::vector<std::size_t> sizes = {50, 100, 150, 200, 250, 300};
  std::size_t datasets_per_size = 5;  // random subsets per n
  std::size_t rounds = 2;             // frameworks per subset
  std::size_t queries = 100;          // per framework
  double b_min = 30.0;                // UMD defaults
  double b_max = 110.0;
  std::size_t b_steps = 5;
  double k_frac_min = 0.05;
  double k_frac_max = 0.30;
  std::size_t n_cut = 10;
};

struct Fig6Row {
  std::size_t n = 0;
  double avg_hops = 0.0;        // over all queries
  double hops_ci_lo = 0.0;      // 95% bootstrap CI of the mean
  double hops_ci_hi = 0.0;
  double avg_hops_found = 0.0;  // over answered queries only
  double max_hops = 0.0;
  double rr = 0.0;              // return rate (context for the hop numbers)
};

struct Fig6Result {
  std::vector<Fig6Row> rows;
};

/// Runs the Fig. 6 experiment over subsets of `base` (which must be at least
/// as large as the largest requested size). Deterministic for a given seed.
Fig6Result run_fig6(const SynthDataset& base, const Fig6Params& params,
                    std::uint64_t seed);

}  // namespace bcc::exp
