// Figure 3 (paper §IV.A): clustering accuracy in a tree metric space vs a
// 2-D Euclidean space.
//
// Three approaches answer the same (k, b) queries on one dataset:
//   TREE-DECENTRAL — Algorithms 2–4 over the decentralized prediction
//                    framework's distances,
//   TREE-CENTRAL   — Algorithm 1 over the same predicted distances,
//   EUCL-CENTRAL   — Aggarwal k-diameter clustering over Vivaldi 2-D
//                    coordinates (rational transform).
// Reported per b: WPR (wrong-pair rate against *real* bandwidth), plus the
// CDFs of relative bandwidth-prediction error for the two embeddings
// (Fig. 3b/3d).
#pragma once

#include "data/planetlab_synth.h"
#include "stats/summary.h"
#include "vivaldi/vivaldi.h"

namespace bcc::exp {

struct Fig3Params {
  std::size_t rounds = 10;         // frameworks built with different seeds
  std::size_t queries_per_b = 20;  // decentralized entry points per b, round
  std::size_t k = 10;              // cluster-size constraint
  double b_min = 15.0;             // Mbps sweep (HP defaults)
  double b_max = 75.0;
  std::size_t b_steps = 5;
  std::size_t n_cut = 10;
  VivaldiOptions vivaldi = {};
  /// Return "any" feasible cluster (index pair order), matching the WPR
  /// magnitudes of the paper's evaluation. false returns tightest-first
  /// clusters — the library default — which lowers everyone's WPR.
  bool paper_faithful_order = true;
};

struct Fig3Row {
  double b = 0.0;
  double wpr_tree_central = 0.0;
  double wpr_tree_decentral = 0.0;
  double wpr_eucl_central = 0.0;
  double rr_tree_central = 0.0;  // fraction of queries answered (sanity)
  double rr_tree_decentral = 0.0;
  double rr_eucl_central = 0.0;
};

struct Fig3Result {
  std::vector<Fig3Row> rows;                // Fig. 3a / 3c
  std::vector<CdfPoint> tree_error_cdf;     // Fig. 3b / 3d, TREE curve
  std::vector<CdfPoint> eucl_error_cdf;     // Fig. 3b / 3d, EUCL curve
  double tree_median_error = 0.0;
  double eucl_median_error = 0.0;
};

/// Runs the Fig. 3 experiment on a dataset. Deterministic for a given seed.
Fig3Result run_fig3(const SynthDataset& data, const Fig3Params& params,
                    std::uint64_t seed);

}  // namespace bcc::exp
