#include "exp/fig3.h"

#include "core/system.h"
#include "euclid/kdiameter.h"
#include "exp/common.h"
#include "stats/accuracy.h"
#include "tree/embedder.h"

namespace bcc::exp {

Fig3Result run_fig3(const SynthDataset& data, const Fig3Params& params,
                    std::uint64_t seed) {
  BCC_REQUIRE(params.rounds >= 1 && params.k >= 2);
  const std::size_t n = data.bandwidth.size();
  BCC_REQUIRE(params.k <= n);
  const double c = data.c;
  const std::vector<double> grid =
      bandwidth_grid(params.b_min, params.b_max, params.b_steps);

  std::vector<WprAccumulator> wpr_tc(grid.size()), wpr_td(grid.size()),
      wpr_ec(grid.size());
  std::vector<RrAccumulator> rr_tc(grid.size()), rr_td(grid.size()),
      rr_ec(grid.size());
  std::vector<double> tree_errors, eucl_errors;

  Rng master(seed);
  for (std::size_t round = 0; round < params.rounds; ++round) {
    Rng round_rng = master.split(round);

    // --- Tree framework (shared by TREE-CENTRAL and TREE-DECENTRAL).
    Framework fw = build_framework(data.distances, round_rng);
    const DistanceMatrix tree_pred = fw.predicted_distances();
    {
      auto errs = relative_bandwidth_errors(data.bandwidth, tree_pred, c);
      tree_errors.insert(tree_errors.end(), errs.begin(), errs.end());
    }
    FindClusterOptions find_options;
    if (params.paper_faithful_order) {
      find_options.order = FindClusterOptions::PairOrder::kIndexOrder;
    }
    SystemOptions sys_options;
    sys_options.n_cut = params.n_cut;
    sys_options.find_options = find_options;
    DecentralizedClusterSystem sys(fw.anchors, tree_pred,
                                   classes_for_grid(grid, c), sys_options);
    sys.run_to_convergence();

    // --- Euclidean baseline (Vivaldi coordinates).
    Rng vivaldi_rng = round_rng.split(1);
    Vivaldi vivaldi(n, vivaldi_rng, params.vivaldi);
    vivaldi.run(data.distances);
    const DistanceMatrix eucl_pred = vivaldi.predicted_distances();
    {
      auto errs = relative_bandwidth_errors(data.bandwidth, eucl_pred, c);
      eucl_errors.insert(eucl_errors.end(), errs.begin(), errs.end());
    }
    std::vector<Point2> points(n);
    for (NodeId i = 0; i < n; ++i) {
      points[i] = Point2{vivaldi.coord(i).x, vivaldi.coord(i).y};
    }

    Rng query_rng = round_rng.split(2);
    for (std::size_t bi = 0; bi < grid.size(); ++bi) {
      const double b = grid[bi];
      const double l = bandwidth_to_distance(b, c);

      // Centralized approaches are deterministic per (round, b): evaluate
      // once; WPR is a pair ratio so repetition would not change it.
      if (auto cluster = find_cluster(tree_pred, params.k, l, find_options)) {
        wpr_tc[bi].add_cluster(data.bandwidth, *cluster, b);
        rr_tc[bi].add_query(true);
      } else {
        rr_tc[bi].add_query(false);
      }
      if (auto cluster = find_cluster_euclidean(
              points, params.k, l,
              /*tightest_first=*/!params.paper_faithful_order)) {
        wpr_ec[bi].add_cluster(data.bandwidth, *cluster, b);
        rr_ec[bi].add_query(true);
      } else {
        rr_ec[bi].add_query(false);
      }

      // Decentralized: different entry nodes may return different clusters.
      const auto cls = sys.classes().class_for_bandwidth(b);
      BCC_ASSERT(cls.has_value());  // grid == classes by construction
      for (std::size_t q = 0; q < params.queries_per_b; ++q) {
        const NodeId start = static_cast<NodeId>(query_rng.below(n));
        const QueryResult outcome =
            sys.query(QueryRequest::at_class(start, params.k, *cls));
        rr_td[bi].add_query(outcome.found());
        if (outcome.found()) {
          wpr_td[bi].add_cluster(data.bandwidth, outcome.cluster, b);
        }
      }
    }
  }

  Fig3Result result;
  for (std::size_t bi = 0; bi < grid.size(); ++bi) {
    Fig3Row row;
    row.b = grid[bi];
    row.wpr_tree_central = wpr_tc[bi].rate();
    row.wpr_tree_decentral = wpr_td[bi].rate();
    row.wpr_eucl_central = wpr_ec[bi].rate();
    row.rr_tree_central = rr_tc[bi].rate();
    row.rr_tree_decentral = rr_td[bi].rate();
    row.rr_eucl_central = rr_ec[bi].rate();
    result.rows.push_back(row);
  }
  result.tree_error_cdf = empirical_cdf(tree_errors, 400);
  result.eucl_error_cdf = empirical_cdf(eucl_errors, 400);
  result.tree_median_error = median(tree_errors);
  result.eucl_median_error = median(eucl_errors);
  return result;
}

}  // namespace bcc::exp
