#include "workload/scheduler.h"

#include <algorithm>
#include <map>

#include "common/assert.h"

namespace bcc {
namespace {

/// Per-pair transferred megabits for one stage boundary (stage s -> s+1).
std::map<std::pair<NodeId, NodeId>, double> gap_traffic(
    const Workflow& wf, const Assignment& assignment, std::size_t from_stage) {
  std::map<std::pair<NodeId, NodeId>, double> traffic;
  for (const Transfer& t : wf.transfers()) {
    if (wf.tasks()[t.from].stage != from_stage) continue;
    const NodeId a = assignment.task_host[t.from];
    const NodeId b = assignment.task_host[t.to];
    if (a == b) continue;  // co-located: free
    traffic[{std::min(a, b), std::max(a, b)}] += t.mbits;
  }
  return traffic;
}

}  // namespace

Assignment round_robin_assign(const Workflow& wf,
                              std::span<const NodeId> hosts) {
  BCC_REQUIRE(!hosts.empty());
  Assignment assignment;
  assignment.task_host.resize(wf.tasks().size());
  for (std::size_t s = 0; s < wf.stage_count(); ++s) {
    std::size_t slot = 0;
    for (TaskId t : wf.stage_tasks(s)) {
      assignment.task_host[t] = hosts[slot++ % hosts.size()];
    }
  }
  return assignment;
}

double estimate_makespan(const Workflow& wf, const Assignment& assignment,
                         const BandwidthMatrix& real) {
  BCC_REQUIRE(assignment.task_host.size() == wf.tasks().size());
  for (NodeId h : assignment.task_host) BCC_REQUIRE(h < real.size());

  double makespan = 0.0;
  for (std::size_t s = 0; s < wf.stage_count(); ++s) {
    double stage_compute = 0.0;
    for (TaskId t : wf.stage_tasks(s)) {
      stage_compute = std::max(stage_compute, wf.tasks()[t].compute_seconds);
    }
    makespan += stage_compute;
    if (s + 1 < wf.stage_count()) {
      double gap = 0.0;
      for (const auto& [pair, mbits] : gap_traffic(wf, assignment, s)) {
        gap = std::max(gap, mbits / real.at(pair.first, pair.second));
      }
      makespan += gap;
    }
  }
  return makespan;
}

Bottleneck find_bottleneck(const Workflow& wf, const Assignment& assignment,
                           const BandwidthMatrix& real) {
  BCC_REQUIRE(assignment.task_host.size() == wf.tasks().size());
  Bottleneck worst;
  for (std::size_t s = 0; s + 1 < wf.stage_count(); ++s) {
    for (const auto& [pair, mbits] : gap_traffic(wf, assignment, s)) {
      const double seconds = mbits / real.at(pair.first, pair.second);
      if (seconds > worst.seconds) {
        worst = Bottleneck{pair.first, pair.second, seconds};
      }
    }
  }
  return worst;
}

}  // namespace bcc
