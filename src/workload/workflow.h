// Data-intensive scientific workflows — the paper's motivating workload
// (§I cites the CyberShake workflow [4], characterized by Bharathi et al.):
// stages of parallel tasks, with large files shipped between consecutive
// stages. Running such a jobset on a bandwidth-constrained cluster is the
// desktop-grid use case the clustering system exists for.
//
// The model is deliberately structural: tasks carry compute times, directed
// transfers carry megabits, and stages synchronize (CyberShake's
// fan-out -> post-processing -> fan-in shape).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace bcc {

using TaskId = std::size_t;

struct Task {
  TaskId id = 0;
  std::size_t stage = 0;
  double compute_seconds = 0.0;
};

/// A file transfer between tasks of consecutive stages.
struct Transfer {
  TaskId from = 0;
  TaskId to = 0;
  double mbits = 0.0;
};

/// Tunables for the CyberShake-like generator.
struct WorkflowOptions {
  std::size_t stages = 3;
  std::size_t tasks_per_stage = 16;
  double compute_mean_s = 120.0;  // lognormal-ish task runtimes
  double compute_sigma = 0.4;
  double transfer_mean_mbit = 800.0;  // SGT-style large intermediate files
  double transfer_sigma = 0.5;
  /// Each task consumes outputs of this many upstream tasks (fan-in >= 1).
  std::size_t fan_in = 2;
};

/// A stage-structured workflow DAG.
class Workflow {
 public:
  /// Generates a CyberShake-like workflow: `stages` layers of
  /// `tasks_per_stage` tasks; every non-first-stage task pulls files from
  /// `fan_in` random tasks of the previous stage.
  static Workflow cybershake_like(const WorkflowOptions& options, Rng& rng);

  const std::vector<Task>& tasks() const { return tasks_; }
  const std::vector<Transfer>& transfers() const { return transfers_; }
  std::size_t stage_count() const { return stages_; }

  /// Tasks of one stage.
  std::vector<TaskId> stage_tasks(std::size_t stage) const;

  /// Total bytes shipped, in megabits.
  double total_transfer_mbits() const;

  /// Structural sanity: transfers connect consecutive stages only, ids are
  /// dense, fan-in respected.
  bool check_invariants() const;

 private:
  std::vector<Task> tasks_;
  std::vector<Transfer> transfers_;
  std::size_t stages_ = 0;
};

}  // namespace bcc
