// Scheduling a workflow onto hosts and estimating its makespan over a real
// bandwidth matrix — the quantitative payoff of bandwidth-constrained
// clustering for desktop grids (§I, §V).
//
// Execution model (stage-synchronous, conservative):
//   stage time = max over its tasks of compute_seconds
//   inter-stage time = max over host pairs of (sum of that pair's transfer
//                      megabits) / BW(pair)   — per-pair links serialize,
//                      distinct pairs run in parallel
//   makespan = sum over stages + inter-stage gaps.
// Co-located transfers (same host) are free.
#pragma once

#include <span>

#include "metric/bandwidth.h"
#include "workload/workflow.h"

namespace bcc {

/// Task -> host mapping (indexed by TaskId).
struct Assignment {
  std::vector<NodeId> task_host;
};

/// Spreads tasks across hosts round-robin, stage by stage (the scheduler
/// any grid uses once the *host set* is chosen — this library's thesis is
/// that choosing the host set well matters more than task order).
Assignment round_robin_assign(const Workflow& wf, std::span<const NodeId> hosts);

/// Estimated makespan in seconds under the model above. `real` provides the
/// ground-truth bandwidth between hosts.
double estimate_makespan(const Workflow& wf, const Assignment& assignment,
                         const BandwidthMatrix& real);

/// The bottleneck link of a schedule: the host pair whose transfers dominate
/// one inter-stage gap (diagnostic for "which link killed us").
struct Bottleneck {
  NodeId a = 0;
  NodeId b = 0;
  double seconds = 0.0;  // time spent on this pair in its worst gap
};
Bottleneck find_bottleneck(const Workflow& wf, const Assignment& assignment,
                           const BandwidthMatrix& real);

}  // namespace bcc
