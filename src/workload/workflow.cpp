#include "workload/workflow.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace bcc {

Workflow Workflow::cybershake_like(const WorkflowOptions& options, Rng& rng) {
  BCC_REQUIRE(options.stages >= 1 && options.tasks_per_stage >= 1);
  BCC_REQUIRE(options.fan_in >= 1);
  BCC_REQUIRE(options.compute_mean_s > 0.0 && options.transfer_mean_mbit > 0.0);

  Workflow wf;
  wf.stages_ = options.stages;
  // Lognormal with the requested mean: mu = ln(mean) - sigma^2/2.
  const double compute_mu =
      std::log(options.compute_mean_s) -
      options.compute_sigma * options.compute_sigma / 2.0;
  const double transfer_mu =
      std::log(options.transfer_mean_mbit) -
      options.transfer_sigma * options.transfer_sigma / 2.0;

  for (std::size_t s = 0; s < options.stages; ++s) {
    for (std::size_t t = 0; t < options.tasks_per_stage; ++t) {
      Task task;
      task.id = wf.tasks_.size();
      task.stage = s;
      task.compute_seconds = rng.lognormal(compute_mu, options.compute_sigma);
      wf.tasks_.push_back(task);
    }
  }
  const std::size_t fan_in =
      std::min(options.fan_in, options.tasks_per_stage);
  for (std::size_t s = 1; s < options.stages; ++s) {
    const std::size_t prev_base = (s - 1) * options.tasks_per_stage;
    for (std::size_t t = 0; t < options.tasks_per_stage; ++t) {
      const TaskId to = s * options.tasks_per_stage + t;
      const auto sources = rng.sample_indices(options.tasks_per_stage, fan_in);
      for (std::size_t src : sources) {
        wf.transfers_.push_back(
            Transfer{prev_base + src, to,
                     rng.lognormal(transfer_mu, options.transfer_sigma)});
      }
    }
  }
  BCC_ASSERT(wf.check_invariants());
  return wf;
}

std::vector<TaskId> Workflow::stage_tasks(std::size_t stage) const {
  BCC_REQUIRE(stage < stages_);
  std::vector<TaskId> out;
  for (const Task& t : tasks_) {
    if (t.stage == stage) out.push_back(t.id);
  }
  return out;
}

double Workflow::total_transfer_mbits() const {
  double total = 0.0;
  for (const Transfer& t : transfers_) total += t.mbits;
  return total;
}

bool Workflow::check_invariants() const {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].id != i) return false;
    if (tasks_[i].stage >= stages_) return false;
    if (tasks_[i].compute_seconds <= 0.0) return false;
  }
  for (const Transfer& t : transfers_) {
    if (t.from >= tasks_.size() || t.to >= tasks_.size()) return false;
    if (tasks_[t.to].stage != tasks_[t.from].stage + 1) return false;
    if (t.mbits <= 0.0) return false;
  }
  return true;
}

}  // namespace bcc
