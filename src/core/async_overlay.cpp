#include "core/async_overlay.h"

#include <algorithm>
#include <cmath>

#include "net/sim_transport.h"
#include "obs/trace.h"

namespace bcc {

AsyncOverlay::~AsyncOverlay() = default;

AsyncOverlay::AsyncOverlay(const AnchorTree* overlay,
                           const DistanceMatrix* predicted,
                           const BandwidthClasses* classes,
                           AsyncOverlayOptions options, std::uint64_t seed)
    : overlay_(overlay), predicted_(predicted), classes_(classes),
      options_(options), rng_(seed) {
  BCC_REQUIRE(overlay_ != nullptr && predicted_ != nullptr &&
              classes_ != nullptr);
  // The matrix is the id universe, the tree the current membership: every
  // host must be addressable, but the tree may cover a subset (churn).
  BCC_REQUIRE(overlay_->size() >= 1);
  BCC_REQUIRE(overlay_->size() <= predicted_->size());
  for (NodeId h : overlay_->bfs_order()) {
    BCC_REQUIRE(h < predicted_->size());
  }
  BCC_REQUIRE(options_.n_cut >= 1);
  BCC_REQUIRE(options_.gossip_period > 0.0);
  BCC_REQUIRE(options_.period_jitter >= 0.0 && options_.period_jitter < 1.0);
  BCC_REQUIRE(options_.message_latency >= 0.0);
  BCC_REQUIRE(options_.ack_timeout > 0.0);
  BCC_REQUIRE(options_.backoff_factor >= 1.0);
  BCC_REQUIRE(options_.suspect_after >= 1);
  if (options_.rtt_ms) {
    BCC_REQUIRE(options_.rtt_ms->size() == predicted_->size());
  }
  nodes_ = make_overlay_nodes(*overlay_);
  if (options_.local_node) {
    // Process-per-node deployment: host only the local node's state. The
    // compute_prop_* kernels read only the sender's map entry, so a
    // single-entry map yields byte-identical payloads.
    auto it = nodes_.find(*options_.local_node);
    BCC_REQUIRE(it != nodes_.end());
    OverlayNode local = std::move(it->second);
    nodes_.clear();
    nodes_.emplace(local.id, std::move(local));
  }
}

double AsyncOverlay::latency(NodeId from, NodeId to) const {
  if (options_.rtt_ms) return options_.rtt_ms->at(from, to) / 2.0 / 1000.0;
  return options_.message_latency;
}

double AsyncOverlay::ack_timeout_for(NodeId x, NodeId v) const {
  // Never time out faster than the link can physically ack: round trip plus
  // the worst-case injected jitter on both legs, with 50% headroom.
  const double rtt = latency(x, v) + latency(v, x);
  const double jitter =
      options_.faults ? 2.0 * options_.faults->faults_on(x, v).jitter_max : 0.0;
  return std::max(options_.ack_timeout, 1.5 * (rtt + jitter));
}

void AsyncOverlay::arm_timer(NodeId x, double delay) {
  gossip_timer_[x] = engine_->schedule_after(delay, [this, x] { gossip(x); });
}

void AsyncOverlay::cancel_timer(NodeId x) {
  auto it = gossip_timer_.find(x);
  if (it == gossip_timer_.end()) return;
  engine_->cancel(it->second);
  gossip_timer_.erase(it);
}

void AsyncOverlay::gossip(NodeId x) {
  gossip_timer_.erase(x);  // this firing consumed the timer
  if (down_.count(x) || !nodes_.count(x)) return;
  obs::Span span(obs::SpanCategory::kGossip, "gossip_round");
  span.set_node(static_cast<std::uint32_t>(x));
  ++rounds_;
  // Refresh the node's own CRT entry from its current clustering space
  // (Algorithm 3 line 8).
  nodes_.at(x).aggr_crt[x] =
      compute_self_crt(nodes_, *predicted_, *classes_, x);
  for (NodeId v : nodes_.at(x).neighbors) {
    start_exchange(x, v, /*attempt=*/0);
  }
  const double factor =
      rng_.uniform(1.0 - options_.period_jitter, 1.0 + options_.period_jitter);
  arm_timer(x, options_.gossip_period * factor);
}

void AsyncOverlay::start_exchange(NodeId x, NodeId v, std::size_t attempt) {
  if (down_.count(x) || !nodes_.count(x)) return;
  // In local mode the neighbor lives in another process; its liveness is the
  // transport's problem (ack timeouts still drive retries/suspicion here).
  if (!local_mode() && !nodes_.count(v)) return;
  // A retry may fire after the sender crash-recovered (tables wiped): the
  // self CRT entry compute_prop_crt requires is then rebuilt lazily.
  if (!nodes_.at(x).aggr_crt.count(x)) {
    nodes_.at(x).aggr_crt[x] =
        compute_self_crt(nodes_, *predicted_, *classes_, x);
  }
  // Snapshot the payloads now (sender state at send time), deliver later.
  // Retries recompute, so a resend carries the sender's newest state.
  auto prop_node = compute_prop_node(nodes_, *predicted_, options_.n_cut,
                                     /*m=*/x, /*x=*/v);
  auto prop_crt = compute_prop_crt(nodes_, classes_->size(), /*m=*/x,
                                   /*x=*/v);
  // The send span covers snapshotting + serializing + handing the frame to
  // the transport; its context rides inside the frame so the receive span on
  // v links back here causally. When gossip tracing is off the span is inert
  // and the context invalid — an all-zero trace field crosses the wire.
  obs::Span send_span(obs::SpanCategory::kGossip, "send_exchange");
  send_span.set_node(static_cast<std::uint32_t>(x));
  const obs::TraceContext ctx = send_span.context();
  net::ExchangePayload payload;
  payload.exchange = next_exchange_++;
  payload.prop_node = std::move(prop_node);
  payload.prop_crt = std::move(prop_crt);
  const std::uint64_t exchange = payload.exchange;
  transport_->send(x, v, net::FrameType::kExchange,
                   net::encode_exchange(payload), ctx);
  // Capped exponential backoff on the ack timeout.
  const double scale = std::min(
      std::pow(options_.backoff_factor, static_cast<double>(attempt)), 8.0);
  pending_ack_[exchange] = engine_->schedule_after(
      ack_timeout_for(x, v) * scale,
      [this, x, v, exchange, attempt] { on_ack_timeout(x, v, exchange,
                                                       attempt); });
}

void AsyncOverlay::on_delivery(const net::Delivery& d) {
  switch (d.type) {
    case net::FrameType::kExchange: on_exchange(d); return;
    case net::FrameType::kAck: on_ack_frame(d); return;
    default: return;  // heartbeats are transport-internal, never surfaced
  }
}

void AsyncOverlay::on_exchange(const net::Delivery& d) {
  const NodeId x = d.from;  // sender
  const NodeId v = d.to;    // receiver (must be hosted here)
  auto it = nodes_.find(v);
  if (it == nodes_.end()) return;  // receiver left the overlay
  if (down_.count(v)) {            // crashed outside the fault plan
    engine_->metrics().count_dropped();
    return;
  }
  net::ExchangePayload payload;
  if (!net::decode_exchange(d.body.data(), d.body.size(), payload)) {
    net::NetMetrics::global().frames_corrupt.add();
    return;
  }
  // Receive span: remote-parented on the sender's send span (each duplicate
  // delivery constructs its own span — distinct ids).
  obs::Span recv_span(obs::SpanCategory::kGossip, "recv_exchange", d.trace,
                      static_cast<std::uint32_t>(v));
  OverlayNode& receiver = it->second;
  bool changed = false;
  {
    obs::Span apply_span(obs::SpanCategory::kGossip, "apply_exchange");
    apply_span.set_node(static_cast<std::uint32_t>(v));
    auto node_it = receiver.aggr_node.find(x);
    if (node_it == receiver.aggr_node.end() ||
        node_it->second != payload.prop_node) {
      receiver.aggr_node[x] = std::move(payload.prop_node);
      changed = true;
    }
    auto crt_it = receiver.aggr_crt.find(x);
    if (crt_it == receiver.aggr_crt.end() ||
        crt_it->second != payload.prop_crt) {
      receiver.aggr_crt[x] = std::move(payload.prop_crt);
      changed = true;
    }
  }
  if (changed) {
    last_change_ = engine_->now();
    last_update_[v] = engine_->now();
  }
  // Acknowledge the exchange (the ack crosses the same lossy network,
  // carrying the receive span's context so the chain survives the round
  // trip).
  const obs::TraceContext ack_ctx = recv_span.context();
  transport_->send(v, x, net::FrameType::kAck,
                   net::encode_u64(payload.exchange), ack_ctx);
}

void AsyncOverlay::on_ack_frame(const net::Delivery& d) {
  const NodeId x = d.to;    // the original exchange sender
  const NodeId v = d.from;  // the acking neighbor
  std::uint64_t exchange = 0;
  if (!net::decode_u64(d.body.data(), d.body.size(), exchange)) {
    net::NetMetrics::global().frames_corrupt.add();
    return;
  }
  obs::Span ack_span(obs::SpanCategory::kGossip, "recv_ack", d.trace,
                     static_cast<std::uint32_t>(x));
  on_ack(x, v, exchange);
}

void AsyncOverlay::on_ack(NodeId x, NodeId v, std::uint64_t exchange) {
  auto it = pending_ack_.find(exchange);
  if (it != pending_ack_.end()) {
    engine_->cancel(it->second);
    pending_ack_.erase(it);
  }
  // Even a late ack (after the timeout already fired) proves the link and
  // the peer work: clear the failure streak and any suspicion.
  if (!nodes_.count(x)) return;
  LinkState& link = links_[x][v];
  link.consecutive_failures = 0;
  link.suspected = false;
}

void AsyncOverlay::on_ack_timeout(NodeId x, NodeId v, std::uint64_t exchange,
                                  std::size_t attempt) {
  pending_ack_.erase(exchange);
  if (down_.count(x) || !nodes_.count(x)) return;
  if (!local_mode() && !nodes_.count(v)) return;
  if (attempt < options_.max_retries) {
    // Covers recomputing the payload and re-sending with backed-off timeout.
    obs::Span span(obs::SpanCategory::kGossip, "retry_exchange");
    engine_->metrics().count_retried();
    start_exchange(x, v, attempt + 1);
    return;
  }
  LinkState& link = links_[x][v];
  ++link.consecutive_failures;
  if (!link.suspected &&
      link.consecutive_failures >= options_.suspect_after) {
    obs::Span span(obs::SpanCategory::kGossip, "suspect_peer");
    link.suspected = true;
    engine_->metrics().count_suspected();
  }
}

void AsyncOverlay::crash(NodeId x) {
  BCC_REQUIRE(started_);
  if (!nodes_.count(x) || down_.count(x)) return;
  down_.insert(x);
  cancel_timer(x);
  // Cold crash: volatile protocol state is gone; gossip refills it after
  // recovery.
  nodes_.at(x).aggr_node.clear();
  nodes_.at(x).aggr_crt.clear();
  links_.erase(x);
  last_update_.erase(x);  // cold restart: staleness restarts from scratch
}

void AsyncOverlay::recover(NodeId x) {
  BCC_REQUIRE(started_);
  if (down_.erase(x) == 0) return;
  if (!nodes_.count(x)) return;  // left the overlay while down
  arm_timer(x, rng_.uniform(0.0, options_.gossip_period));
}

bool AsyncOverlay::suspects(NodeId x, NodeId peer) const {
  auto it = links_.find(x);
  if (it == links_.end()) return false;
  auto lt = it->second.find(peer);
  return lt != it->second.end() && lt->second.suspected;
}

std::size_t AsyncOverlay::suspected_count() const {
  std::size_t count = 0;
  for (const auto& [x, peers] : links_) {
    for (const auto& [v, link] : peers) {
      if (link.suspected) ++count;
    }
  }
  return count;
}

std::size_t AsyncOverlay::trigger_gossip(std::span<const NodeId> hosts) {
  BCC_REQUIRE(started_ && engine_ != nullptr);
  std::size_t scheduled = 0;
  for (NodeId h : hosts) {
    if (!nodes_.count(h) || down_.count(h)) continue;
    // Cancelling inside the handler (not here) keeps the chain single even
    // when the same host is triggered twice before the engine runs: each
    // firing cancels whatever timer the previous one armed.
    engine_->schedule_after(0.0, [this, h] {
      if (!nodes_.count(h) || down_.count(h)) return;
      cancel_timer(h);
      gossip(h);
    });
    ++scheduled;
  }
  return scheduled;
}

void AsyncOverlay::resync_membership() {
  BCC_REQUIRE(started_);
  const std::vector<NodeId> members = overlay_->bfs_order();
  std::unordered_set<NodeId> member_set(members.begin(), members.end());
  for (NodeId h : members) BCC_REQUIRE(h < predicted_->size());

  // Departed nodes: cancel timers, drop every trace of their local state.
  for (auto it = nodes_.begin(); it != nodes_.end();) {
    if (member_set.count(it->first)) {
      ++it;
      continue;
    }
    cancel_timer(it->first);
    down_.erase(it->first);
    links_.erase(it->first);
    last_update_.erase(it->first);
    it = nodes_.erase(it);
  }

  // Survivors: refresh neighbor lists from the repaired tree, drop table
  // entries keyed by ex-neighbors, and purge departed ids from the
  // aggregate contents (the obituary idealization, see file comment) —
  // without the purge, departed ids would recirculate in gossip forever.
  for (auto& [id, node] : nodes_) {
    node.neighbors = overlay_->neighbors_of(id);
    std::unordered_set<NodeId> neighbor_set(node.neighbors.begin(),
                                            node.neighbors.end());
    std::erase_if(node.aggr_node,
                  [&](const auto& e) { return !neighbor_set.count(e.first); });
    std::erase_if(node.aggr_crt, [&](const auto& e) {
      return e.first != id && !neighbor_set.count(e.first);
    });
    for (auto& [m, aggregate] : node.aggr_node) {
      std::erase_if(aggregate,
                    [&](NodeId d) { return !member_set.count(d); });
    }
    auto lit = links_.find(id);
    if (lit != links_.end()) {
      std::erase_if(lit->second, [&](const auto& e) {
        return !neighbor_set.count(e.first);
      });
    }
  }

  // New and rejoined members: fresh state, staggered first gossip. A local-
  // mode overlay hosts only its own node — remote joiners are other
  // processes' problem (if the local node itself departed, the loop above
  // already emptied nodes_ and this instance goes quiet).
  if (!local_mode()) {
    for (NodeId h : members) {
      if (nodes_.count(h)) continue;
      OverlayNode n;
      n.id = h;
      n.neighbors = overlay_->neighbors_of(h);
      nodes_.emplace(h, std::move(n));
      arm_timer(h, rng_.uniform(0.0, options_.gossip_period));
    }
  }
  last_change_ = engine_->now();
}

void AsyncOverlay::start(EventEngine& engine) {
  BCC_REQUIRE(!started_);
  started_ = true;
  engine_ = &engine;
  transport_ = options_.transport;
  if (transport_ == nullptr) {
    // Deterministic default: frames ride the FaultyChannel, consulting the
    // fault plan's rng in exactly the per-send order the pre-Transport
    // overlay used (seeded chaos runs replay bit-for-bit).
    owned_transport_ = std::make_unique<net::SimTransport>(
        &engine, options_.faults,
        [this](NodeId from, NodeId to) { return latency(from, to); });
    transport_ = owned_transport_.get();
  }
  transport_->set_handler([this](const net::Delivery& d) { on_delivery(d); });
  // Stagger initial firings uniformly across one period (BFS order for
  // cross-platform determinism; only hosted nodes get timers).
  for (NodeId host : overlay_->bfs_order()) {
    if (!nodes_.count(host)) continue;
    arm_timer(host, rng_.uniform(0.0, options_.gossip_period));
  }
  // Wire the fault plan's crash/recover schedule into the engine so a
  // crashed node's timers actually stop firing.
  if (options_.faults) {
    for (const auto& [node, window] : options_.faults->crashes()) {
      if (!nodes_.count(node)) continue;
      const NodeId host = node;
      engine.schedule_at(std::max(engine.now(), window.down_at),
                         [this, host] { crash(host); });
      if (window.up_at != FaultPlan::kNever) {
        engine.schedule_at(std::max(engine.now(), window.up_at),
                           [this, host] { recover(host); });
      }
    }
  }
}

void AsyncOverlay::run_for(EventEngine& engine, double duration) {
  BCC_REQUIRE(duration >= 0.0);
  if (!started_) start(engine);
  BCC_REQUIRE(engine_ == &engine);
  // While gossip tracing is on, stamp spans with simulated time too. The
  // clock is installed only for the duration of this run so the global
  // tracer never keeps a dangling engine reference.
  obs::Tracer& tracer = obs::Tracer::global();
  const bool traced = tracer.enabled(obs::SpanCategory::kGossip);
  if (traced) tracer.set_sim_clock([&engine] { return engine.now(); });
  engine.run_until(engine.now() + duration);
  if (traced) tracer.clear_sim_clock();
}

}  // namespace bcc
