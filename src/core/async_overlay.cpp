#include "core/async_overlay.h"

namespace bcc {

AsyncOverlay::AsyncOverlay(const AnchorTree* overlay,
                           const DistanceMatrix* predicted,
                           const BandwidthClasses* classes,
                           AsyncOverlayOptions options, std::uint64_t seed)
    : overlay_(overlay), predicted_(predicted), classes_(classes),
      options_(options), rng_(seed) {
  BCC_REQUIRE(overlay_ != nullptr && predicted_ != nullptr &&
              classes_ != nullptr);
  BCC_REQUIRE(overlay_->size() == predicted_->size());
  BCC_REQUIRE(options_.n_cut >= 1);
  BCC_REQUIRE(options_.gossip_period > 0.0);
  BCC_REQUIRE(options_.period_jitter >= 0.0 && options_.period_jitter < 1.0);
  BCC_REQUIRE(options_.message_latency >= 0.0);
  if (options_.rtt_ms) {
    BCC_REQUIRE(options_.rtt_ms->size() == overlay_->size());
  }
  nodes_ = make_overlay_nodes(*overlay_);
}

double AsyncOverlay::latency(NodeId from, NodeId to) const {
  if (options_.rtt_ms) return options_.rtt_ms->at(from, to) / 2.0 / 1000.0;
  return options_.message_latency;
}

void AsyncOverlay::arm_timer(EventEngine& engine, NodeId x) {
  const double factor =
      rng_.uniform(1.0 - options_.period_jitter, 1.0 + options_.period_jitter);
  engine.schedule_after(options_.gossip_period * factor,
                        [this, &engine, x] { gossip(engine, x); });
}

void AsyncOverlay::gossip(EventEngine& engine, NodeId x) {
  ++rounds_;
  // Refresh the node's own CRT entry from its current clustering space
  // (Algorithm 3 line 8).
  nodes_.at(x).aggr_crt[x] =
      compute_self_crt(nodes_, *predicted_, *classes_, x);

  for (NodeId v : nodes_.at(x).neighbors) {
    // Snapshot the payloads now (sender state at send time), deliver later.
    auto prop_node = compute_prop_node(nodes_, *predicted_, options_.n_cut,
                                       /*m=*/x, /*x=*/v);
    auto prop_crt = compute_prop_crt(nodes_, classes_->size(), /*m=*/x,
                                     /*x=*/v);
    engine.metrics().record("async_gossip",
                            prop_node.size() * sizeof(NodeId) +
                                prop_crt.size() * sizeof(std::size_t));
    engine.schedule_after(
        latency(x, v),
        [this, &engine, x, v, prop_node = std::move(prop_node),
         prop_crt = std::move(prop_crt)]() mutable {
          OverlayNode& receiver = nodes_.at(v);
          bool changed = false;
          auto node_it = receiver.aggr_node.find(x);
          if (node_it == receiver.aggr_node.end() ||
              node_it->second != prop_node) {
            receiver.aggr_node[x] = std::move(prop_node);
            changed = true;
          }
          auto crt_it = receiver.aggr_crt.find(x);
          if (crt_it == receiver.aggr_crt.end() ||
              crt_it->second != prop_crt) {
            receiver.aggr_crt[x] = std::move(prop_crt);
            changed = true;
          }
          if (changed) last_change_ = engine.now();
        });
  }
  arm_timer(engine, x);
}

void AsyncOverlay::start(EventEngine& engine) {
  BCC_REQUIRE(!started_);
  started_ = true;
  // Stagger initial firings uniformly across one period.
  for (const auto& [x, node] : nodes_) {
    const NodeId host = x;
    engine.schedule_after(rng_.uniform(0.0, options_.gossip_period),
                          [this, &engine, host] { gossip(engine, host); });
  }
}

void AsyncOverlay::run_for(EventEngine& engine, double duration) {
  BCC_REQUIRE(duration >= 0.0);
  if (!started_) start(engine);
  engine.run_until(engine.now() + duration);
}

}  // namespace bcc
