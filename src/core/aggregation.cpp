#include "core/aggregation.h"

#include <algorithm>

#include "core/find_cluster.h"

namespace bcc {

OverlayNodeMap make_overlay_nodes(const AnchorTree& overlay) {
  OverlayNodeMap nodes;
  for (NodeId host : overlay.bfs_order()) {
    OverlayNode n;
    n.id = host;
    n.neighbors = overlay.neighbors_of(host);
    nodes.emplace(host, std::move(n));
  }
  return nodes;
}

std::vector<NodeId> compute_prop_node(const OverlayNodeMap& nodes,
                                      const DistanceMatrix& predicted,
                                      std::size_t n_cut, NodeId m, NodeId x) {
  const OverlayNode& sender = nodes.at(m);
  // candNode = {m} ∪ aggrNode[v] for every neighbor v of m except x.
  std::vector<NodeId> cand = {m};
  for (NodeId v : sender.neighbors) {
    if (v == x) continue;
    auto it = sender.aggr_node.find(v);
    if (it == sender.aggr_node.end()) continue;
    cand.insert(cand.end(), it->second.begin(), it->second.end());
  }
  std::sort(cand.begin(), cand.end());
  cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
  std::erase(cand, x);  // x never needs itself in its own aggregates

  // propNode = the n_cut candidates closest to x on the prediction tree.
  std::stable_sort(cand.begin(), cand.end(), [&](NodeId a, NodeId b) {
    const double da = predicted.at(x, a), db = predicted.at(x, b);
    if (da != db) return da < db;
    return a < b;  // deterministic tie-break
  });
  if (cand.size() > n_cut) cand.resize(n_cut);
  return cand;
}

std::vector<std::size_t> compute_self_crt(const OverlayNodeMap& nodes,
                                          const DistanceMatrix& predicted,
                                          const BandwidthClasses& classes,
                                          NodeId x) {
  std::vector<double> ls(classes.size());
  for (std::size_t i = 0; i < ls.size(); ++i) ls[i] = classes.distance_at(i);
  return max_cluster_sizes_for_classes(predicted,
                                       nodes.at(x).clustering_space(), ls);
}

std::vector<std::size_t> compute_prop_crt(const OverlayNodeMap& nodes,
                                          std::size_t class_count, NodeId m,
                                          NodeId x) {
  const OverlayNode& sender = nodes.at(m);
  std::vector<std::size_t> prop = sender.aggr_crt.at(m);
  BCC_ASSERT(prop.size() == class_count);
  for (NodeId v : sender.neighbors) {
    if (v == x) continue;
    auto it = sender.aggr_crt.find(v);
    if (it == sender.aggr_crt.end()) continue;
    BCC_ASSERT(it->second.size() == prop.size());
    for (std::size_t i = 0; i < prop.size(); ++i) {
      prop[i] = std::max(prop[i], it->second[i]);
    }
  }
  return prop;
}

// ---------------------------------------------------------------- Algorithm 2

NodeInfoAggregation::NodeInfoAggregation(OverlayNodeMap* nodes,
                                         const DistanceMatrix* predicted,
                                         std::size_t n_cut,
                                         MessageMetrics* metrics)
    : nodes_(nodes), predicted_(predicted), n_cut_(n_cut), metrics_(metrics) {
  BCC_REQUIRE(nodes_ != nullptr && predicted_ != nullptr);
  BCC_REQUIRE(n_cut_ >= 1);
}

std::vector<NodeId> NodeInfoAggregation::propagate(NodeId m, NodeId x) const {
  return compute_prop_node(*nodes_, *predicted_, n_cut_, m, x);
}

void NodeInfoAggregation::execute_cycle(std::size_t /*cycle*/) {
  // Compute all messages from committed state, then commit (synchronous).
  std::vector<std::pair<NodeId, std::unordered_map<NodeId, std::vector<NodeId>>>>
      staged;
  staged.reserve(nodes_->size());
  for (auto& [x, node] : *nodes_) {
    std::unordered_map<NodeId, std::vector<NodeId>> incoming;
    for (NodeId m : node.neighbors) {
      auto prop = propagate(m, x);
      if (metrics_) {
        metrics_->record("aggr_node", prop.size() * sizeof(NodeId));
      }
      incoming.emplace(m, std::move(prop));
    }
    staged.emplace_back(x, std::move(incoming));
  }
  bool changed = false;
  for (auto& [x, incoming] : staged) {
    OverlayNode& node = nodes_->at(x);
    if (node.aggr_node != incoming) {
      node.aggr_node = std::move(incoming);
      changed = true;
    }
  }
  converged_ = !changed;
}

// ---------------------------------------------------------------- Algorithm 3

CrtAggregation::CrtAggregation(OverlayNodeMap* nodes,
                               const DistanceMatrix* predicted,
                               const BandwidthClasses* classes,
                               MessageMetrics* metrics)
    : nodes_(nodes), predicted_(predicted), classes_(classes),
      metrics_(metrics) {
  BCC_REQUIRE(nodes_ != nullptr && predicted_ != nullptr && classes_ != nullptr);
  BCC_REQUIRE(classes_->size() >= 1);
}

void CrtAggregation::refresh_self_entries() {
  for (auto& [x, node] : *nodes_) {
    auto space = node.clustering_space();
    auto cached = self_cache_.find(x);
    if (cached != self_cache_.end() && cached->second.first == space) {
      node.aggr_crt[x] = cached->second.second;
      continue;
    }
    auto sizes = compute_self_crt(*nodes_, *predicted_, *classes_, x);
    node.aggr_crt[x] = sizes;
    self_cache_[x] = {std::move(space), std::move(sizes)};
  }
}

std::vector<std::size_t> CrtAggregation::propagate(NodeId m, NodeId x) const {
  return compute_prop_crt(*nodes_, classes_->size(), m, x);
}

void CrtAggregation::execute_cycle(std::size_t /*cycle*/) {
  // Self entries reflect the *current* clustering spaces (Algorithm 3 line 8
  // runs before propagation each period).
  std::vector<std::pair<NodeId, std::vector<std::size_t>>> old_self;
  old_self.reserve(nodes_->size());
  for (auto& [x, node] : *nodes_) {
    auto it = node.aggr_crt.find(x);
    old_self.emplace_back(
        x, it == node.aggr_crt.end() ? std::vector<std::size_t>{} : it->second);
  }
  refresh_self_entries();
  bool changed = false;
  for (auto& [x, before] : old_self) {
    if (nodes_->at(x).aggr_crt.at(x) != before) changed = true;
  }

  std::vector<
      std::pair<NodeId, std::unordered_map<NodeId, std::vector<std::size_t>>>>
      staged;
  staged.reserve(nodes_->size());
  for (auto& [x, node] : *nodes_) {
    std::unordered_map<NodeId, std::vector<std::size_t>> incoming;
    for (NodeId m : node.neighbors) {
      auto prop = propagate(m, x);
      if (metrics_) {
        metrics_->record("aggr_crt", prop.size() * sizeof(std::size_t));
      }
      incoming.emplace(m, std::move(prop));
    }
    staged.emplace_back(x, std::move(incoming));
  }
  for (auto& [x, incoming] : staged) {
    OverlayNode& node = nodes_->at(x);
    for (auto& [m, crt] : incoming) {
      auto it = node.aggr_crt.find(m);
      if (it == node.aggr_crt.end() || it->second != crt) {
        node.aggr_crt[m] = std::move(crt);
        changed = true;
      }
    }
  }
  converged_ = !changed;
}

}  // namespace bcc
