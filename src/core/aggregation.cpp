#include "core/aggregation.h"

#include <algorithm>

#include "core/find_cluster.h"
#include "obs/metrics.h"

namespace bcc {

namespace {

// Delta-path evidence counters: how many per-direction messages each cycle
// recomputed versus proved unchanged and reused (see file comment in the
// header). Registered once; instance-level totals are on the protocols.
obs::Counter& g_prop_node_recomputed() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.core.prop_node_recomputed");
  return c;
}
obs::Counter& g_prop_node_reused() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.core.prop_node_reused");
  return c;
}
obs::Counter& g_prop_crt_recomputed() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.core.prop_crt_recomputed");
  return c;
}
obs::Counter& g_prop_crt_reused() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.core.prop_crt_reused");
  return c;
}

}  // namespace

OverlayNodeMap make_overlay_nodes(const AnchorTree& overlay) {
  OverlayNodeMap nodes;
  for (NodeId host : overlay.bfs_order()) {
    OverlayNode n;
    n.id = host;
    n.neighbors = overlay.neighbors_of(host);
    nodes.emplace(host, std::move(n));
  }
  return nodes;
}

std::vector<NodeId> compute_prop_node(const OverlayNodeMap& nodes,
                                      const DistanceMatrix& predicted,
                                      std::size_t n_cut, NodeId m, NodeId x) {
  const OverlayNode& sender = nodes.at(m);
  // candNode = {m} ∪ aggrNode[v] for every neighbor v of m except x.
  std::vector<NodeId> cand = {m};
  for (NodeId v : sender.neighbors) {
    if (v == x) continue;
    auto it = sender.aggr_node.find(v);
    if (it == sender.aggr_node.end()) continue;
    cand.insert(cand.end(), it->second.begin(), it->second.end());
  }
  std::sort(cand.begin(), cand.end());
  cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
  std::erase(cand, x);  // x never needs itself in its own aggregates

  // propNode = the n_cut candidates closest to x on the prediction tree.
  std::stable_sort(cand.begin(), cand.end(), [&](NodeId a, NodeId b) {
    const double da = predicted.at(x, a), db = predicted.at(x, b);
    if (da != db) return da < db;
    return a < b;  // deterministic tie-break
  });
  if (cand.size() > n_cut) cand.resize(n_cut);
  return cand;
}

std::vector<std::size_t> compute_self_crt(const OverlayNodeMap& nodes,
                                          const DistanceMatrix& predicted,
                                          const BandwidthClasses& classes,
                                          NodeId x) {
  std::vector<double> ls(classes.size());
  for (std::size_t i = 0; i < ls.size(); ++i) ls[i] = classes.distance_at(i);
  return max_cluster_sizes_for_classes(predicted,
                                       nodes.at(x).clustering_space(), ls);
}

std::vector<std::size_t> compute_prop_crt(const OverlayNodeMap& nodes,
                                          std::size_t class_count, NodeId m,
                                          NodeId x) {
  const OverlayNode& sender = nodes.at(m);
  std::vector<std::size_t> prop = sender.aggr_crt.at(m);
  BCC_ASSERT(prop.size() == class_count);
  for (NodeId v : sender.neighbors) {
    if (v == x) continue;
    auto it = sender.aggr_crt.find(v);
    if (it == sender.aggr_crt.end()) continue;
    BCC_ASSERT(it->second.size() == prop.size());
    for (std::size_t i = 0; i < prop.size(); ++i) {
      prop[i] = std::max(prop[i], it->second[i]);
    }
  }
  return prop;
}

// ---------------------------------------------------------------- Algorithm 2

NodeInfoAggregation::NodeInfoAggregation(OverlayNodeMap* nodes,
                                         const DistanceMatrix* predicted,
                                         std::size_t n_cut,
                                         MessageMetrics* metrics)
    : nodes_(nodes), predicted_(predicted), n_cut_(n_cut), metrics_(metrics) {
  BCC_REQUIRE(nodes_ != nullptr && predicted_ != nullptr);
  BCC_REQUIRE(n_cut_ >= 1);
}

std::vector<NodeId> NodeInfoAggregation::propagate(NodeId m, NodeId x) const {
  return compute_prop_node(*nodes_, *predicted_, n_cut_, m, x);
}

void NodeInfoAggregation::reset_convergence() {
  converged_ = false;
  delta_mode_ = false;
  delta_first_cycle_ = false;
  dirty_.clear();
}

void NodeInfoAggregation::mark_dirty(std::span<const NodeId> repaired) {
  converged_ = false;
  delta_mode_ = true;
  delta_first_cycle_ = true;
  dirty_.insert(repaired.begin(), repaired.end());
  // changed_ is kept: if the previous run stopped mid-iteration, those
  // pending table changes still force recomputation of dependent messages.
}

void NodeInfoAggregation::mark_changed(std::span<const NodeId> hosts) {
  converged_ = false;
  changed_.insert(hosts.begin(), hosts.end());
}

bool NodeInfoAggregation::message_dirty(NodeId m, NodeId x) const {
  // The sender's committed tables changed at the last commit: anything it
  // sends may differ.
  if (changed_.count(m)) return true;
  if (!delta_first_cycle_) return false;
  // First cycle after mark_dirty: predicted distances moved on pairs
  // touching the repaired set. The message sorts candidates by distance to
  // x, so it can only change if x itself, the sender, or one of the
  // sender's current candidates was repaired.
  if (dirty_.count(x) || dirty_.count(m)) return true;
  const OverlayNode& sender = nodes_->at(m);
  for (NodeId v : sender.neighbors) {
    if (v == x) continue;
    auto it = sender.aggr_node.find(v);
    if (it == sender.aggr_node.end()) continue;
    for (NodeId c : it->second) {
      if (dirty_.count(c)) return true;
    }
  }
  return false;
}

void NodeInfoAggregation::execute_cycle(std::size_t /*cycle*/) {
  // Compute all messages from committed state, then commit (synchronous).
  // In delta mode, messages whose inputs provably did not change are not
  // recomputed — their stored value at the receiver already equals what a
  // recomputation would produce, so skipping them leaves the iteration (and
  // therefore the fixpoint) bit-identical while only the repaired subtree
  // pays.
  std::vector<std::pair<NodeId, std::unordered_map<NodeId, std::vector<NodeId>>>>
      staged;
  staged.reserve(nodes_->size());
  for (auto& [x, node] : *nodes_) {
    std::unordered_map<NodeId, std::vector<NodeId>> incoming;
    for (NodeId m : node.neighbors) {
      if (delta_mode_ && node.aggr_node.count(m) && !message_dirty(m, x)) {
        ++reused_;
        g_prop_node_reused().add(1);
        continue;
      }
      auto prop = propagate(m, x);
      ++recomputed_;
      g_prop_node_recomputed().add(1);
      if (metrics_) {
        metrics_->record("aggr_node", prop.size() * sizeof(NodeId));
      }
      incoming.emplace(m, std::move(prop));
    }
    staged.emplace_back(x, std::move(incoming));
  }
  bool changed = false;
  changed_.clear();
  for (auto& [x, incoming] : staged) {
    OverlayNode& node = nodes_->at(x);
    for (auto& [m, prop] : incoming) {
      auto it = node.aggr_node.find(m);
      if (it == node.aggr_node.end()) {
        node.aggr_node.emplace(m, std::move(prop));
        changed = true;
        changed_.insert(x);
      } else if (it->second != prop) {
        it->second = std::move(prop);
        changed = true;
        changed_.insert(x);
      }
    }
  }
  delta_first_cycle_ = false;
  converged_ = !changed;
}

// ---------------------------------------------------------------- Algorithm 3

CrtAggregation::CrtAggregation(OverlayNodeMap* nodes,
                               const DistanceMatrix* predicted,
                               const BandwidthClasses* classes,
                               MessageMetrics* metrics)
    : nodes_(nodes), predicted_(predicted), classes_(classes),
      metrics_(metrics) {
  BCC_REQUIRE(nodes_ != nullptr && predicted_ != nullptr && classes_ != nullptr);
  BCC_REQUIRE(classes_->size() >= 1);
}

void CrtAggregation::reset_convergence() {
  converged_ = false;
  delta_mode_ = false;
  self_cache_.clear();
}

void CrtAggregation::mark_dirty(std::span<const NodeId> repaired) {
  converged_ = false;
  delta_mode_ = true;
  // A cached self entry is only valid while every pair inside its clustering
  // space kept its distance; any repaired member invalidates it.
  std::unordered_set<NodeId> repaired_set(repaired.begin(), repaired.end());
  for (auto it = self_cache_.begin(); it != self_cache_.end();) {
    bool stale = repaired_set.count(it->first) > 0;
    if (!stale) {
      for (NodeId member : it->second.first) {
        if (repaired_set.count(member)) {
          stale = true;
          break;
        }
      }
    }
    it = stale ? self_cache_.erase(it) : ++it;
  }
}

void CrtAggregation::mark_changed(std::span<const NodeId> hosts) {
  converged_ = false;
  incoming_changed_.insert(hosts.begin(), hosts.end());
  // A pruned direction shrinks the node's clustering space, which the
  // space-equality check in refresh_self_entries already detects — no cache
  // eviction needed here.
}

void CrtAggregation::refresh_self_entries(
    std::unordered_set<NodeId>* self_changed) {
  for (auto& [x, node] : *nodes_) {
    auto space = node.clustering_space();
    auto cached = self_cache_.find(x);
    if (cached != self_cache_.end() && cached->second.first == space) {
      node.aggr_crt[x] = cached->second.second;
      continue;
    }
    auto sizes = compute_self_crt(*nodes_, *predicted_, *classes_, x);
    auto it = node.aggr_crt.find(x);
    if (it == node.aggr_crt.end() || it->second != sizes) {
      if (self_changed) self_changed->insert(x);
    }
    node.aggr_crt[x] = sizes;
    self_cache_[x] = {std::move(space), std::move(sizes)};
  }
}

std::vector<std::size_t> CrtAggregation::propagate(NodeId m, NodeId x) const {
  return compute_prop_crt(*nodes_, classes_->size(), m, x);
}

void CrtAggregation::execute_cycle(std::size_t /*cycle*/) {
  // Self entries reflect the *current* clustering spaces (Algorithm 3 line 8
  // runs before propagation each period).
  std::unordered_set<NodeId> self_changed;
  refresh_self_entries(&self_changed);
  bool changed = !self_changed.empty();

  // A propCRT from m only depends on m's own aggr_crt entries, so in delta
  // mode it is recomputed only when m's self entry changed this cycle or
  // m's incoming entries changed at the last commit.
  std::vector<
      std::pair<NodeId, std::unordered_map<NodeId, std::vector<std::size_t>>>>
      staged;
  staged.reserve(nodes_->size());
  for (auto& [x, node] : *nodes_) {
    std::unordered_map<NodeId, std::vector<std::size_t>> incoming;
    for (NodeId m : node.neighbors) {
      if (delta_mode_ && node.aggr_crt.count(m) && !self_changed.count(m) &&
          !incoming_changed_.count(m)) {
        ++reused_;
        g_prop_crt_reused().add(1);
        continue;
      }
      auto prop = propagate(m, x);
      ++recomputed_;
      g_prop_crt_recomputed().add(1);
      if (metrics_) {
        metrics_->record("aggr_crt", prop.size() * sizeof(std::size_t));
      }
      incoming.emplace(m, std::move(prop));
    }
    staged.emplace_back(x, std::move(incoming));
  }
  incoming_changed_.clear();
  for (auto& [x, incoming] : staged) {
    OverlayNode& node = nodes_->at(x);
    for (auto& [m, crt] : incoming) {
      auto it = node.aggr_crt.find(m);
      if (it == node.aggr_crt.end() || it->second != crt) {
        node.aggr_crt[m] = std::move(crt);
        changed = true;
        incoming_changed_.insert(x);
      }
    }
  }
  converged_ = !changed;
}

}  // namespace bcc
