// Predetermined bandwidth classes (paper §III.B.3).
//
// As the tradeoff for decentralization, queries may not use an arbitrary
// bandwidth constraint b: they pick from a fixed set of *bandwidth classes*,
// which keeps each node's cluster routing table at |L| entries per neighbor.
// Classes are stored as the corresponding distance classes L = { C/b }.
// A query's b is snapped *up* to the nearest class (conservative: the
// answered constraint is at least as strict as the asked one).
#pragma once

#include <algorithm>
#include <optional>
#include <span>
#include <vector>

#include "common/assert.h"
#include "metric/bandwidth.h"

namespace bcc {

/// The fixed class set L shared by every node in a system.
class BandwidthClasses {
 public:
  /// From bandwidth class values (Mbps), strictly positive. Classes are
  /// sorted ascending by bandwidth; duplicates are merged.
  BandwidthClasses(std::vector<double> bandwidths_mbps,
                   double c = kDefaultTransformC);

  /// Uniform grid lo, lo+step, ..., <= hi (all > 0).
  static BandwidthClasses uniform_grid(double lo, double hi, double step,
                                       double c = kDefaultTransformC);

  std::size_t size() const { return bandwidths_.size(); }
  double transform_c() const { return c_; }

  /// Class values sorted ascending by bandwidth.
  std::span<const double> bandwidths() const { return bandwidths_; }
  double bandwidth_at(std::size_t idx) const;
  /// Distance class l = C / b for class idx.
  double distance_at(std::size_t idx) const;

  /// Index of the smallest class with bandwidth >= b — the class a query
  /// with constraint b is served at ("snapped up"; conservative, the served
  /// constraint is at least as strict as the asked one). nullopt if b exceeds
  /// every class, i.e. the constraint is unsatisfiable at any class
  /// (QueryStatus::kBandwidthUnsatisfiable) — callers can distinguish that
  /// up front instead of decoding an empty result.
  std::optional<std::size_t> snap_up(double b) const;

  /// Older name for snap_up, kept for existing call sites.
  std::optional<std::size_t> class_for_bandwidth(double b) const {
    return snap_up(b);
  }

 private:
  std::vector<double> bandwidths_;  // ascending
  double c_;
};

inline BandwidthClasses::BandwidthClasses(std::vector<double> bandwidths_mbps,
                                          double c)
    : bandwidths_(std::move(bandwidths_mbps)), c_(c) {
  BCC_REQUIRE(!bandwidths_.empty());
  BCC_REQUIRE(c_ > 0.0);
  for (double b : bandwidths_) BCC_REQUIRE(b > 0.0);
  std::sort(bandwidths_.begin(), bandwidths_.end());
  bandwidths_.erase(std::unique(bandwidths_.begin(), bandwidths_.end()),
                    bandwidths_.end());
}

inline BandwidthClasses BandwidthClasses::uniform_grid(double lo, double hi,
                                                       double step, double c) {
  BCC_REQUIRE(lo > 0.0 && hi >= lo && step > 0.0);
  std::vector<double> classes;
  for (double b = lo; b <= hi + 1e-9; b += step) classes.push_back(b);
  return BandwidthClasses(std::move(classes), c);
}

inline double BandwidthClasses::bandwidth_at(std::size_t idx) const {
  BCC_REQUIRE(idx < bandwidths_.size());
  return bandwidths_[idx];
}

inline double BandwidthClasses::distance_at(std::size_t idx) const {
  return bandwidth_to_distance(bandwidth_at(idx), c_);
}

inline std::optional<std::size_t> BandwidthClasses::snap_up(double b) const {
  BCC_REQUIRE(b > 0.0);
  auto it = std::lower_bound(bandwidths_.begin(), bandwidths_.end(), b);
  if (it == bandwidths_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - bandwidths_.begin());
}

}  // namespace bcc
