#include "core/query.h"

#include "common/assert.h"

namespace bcc {

QueryProcessor::QueryProcessor(const OverlayNodeMap* nodes,
                               const DistanceMatrix* predicted,
                               const BandwidthClasses* classes,
                               FindClusterOptions find_options)
    : nodes_(nodes), predicted_(predicted), classes_(classes),
      find_options_(find_options) {
  BCC_REQUIRE(nodes_ != nullptr && predicted_ != nullptr && classes_ != nullptr);
}

QueryOutcome QueryProcessor::process(NodeId start, std::size_t k,
                                     std::size_t class_idx) const {
  BCC_REQUIRE(k >= 2);
  BCC_REQUIRE(class_idx < classes_->size());
  BCC_REQUIRE(nodes_->count(start));
  const double l = classes_->distance_at(class_idx);

  QueryOutcome outcome;
  NodeId cur = start;
  NodeId prev = static_cast<NodeId>(-1);
  // On a tree overlay with never-backtracking forwarding, a query can visit
  // each node at most once; the guard only trips on corrupted state.
  const std::size_t max_visits = nodes_->size() + 1;

  while (outcome.route.size() < max_visits) {
    outcome.route.push_back(cur);
    const OverlayNode& x = nodes_->at(cur);

    // Try locally if this node's own CRT entry admits a k-cluster.
    const auto self_it = x.aggr_crt.find(cur);
    if (self_it != x.aggr_crt.end() && k <= self_it->second[class_idx]) {
      const auto space = x.clustering_space();
      if (auto found = find_cluster(*predicted_, space, k, l, find_options_)) {
        outcome.cluster = std::move(*found);
        return outcome;
      }
      // CRT said yes but the space disagreed — only possible transiently or
      // on non-tree metrics; fall through to forwarding.
    }

    // Forward to any neighbor direction (except where we came from) whose
    // CRT promises a big-enough cluster.
    NodeId next = static_cast<NodeId>(-1);
    for (NodeId v : x.neighbors) {
      if (v == prev) continue;
      auto it = x.aggr_crt.find(v);
      if (it != x.aggr_crt.end() && k <= it->second[class_idx]) {
        next = v;
        break;
      }
    }
    if (next == static_cast<NodeId>(-1)) return outcome;  // not found
    prev = cur;
    cur = next;
    ++outcome.hops;
  }
  return outcome;  // guard tripped: report as not found with full route
}

}  // namespace bcc
