#include "core/query.h"

#include <chrono>

namespace bcc {

std::optional<std::size_t> resolve_class(const QueryRequest& request,
                                         const BandwidthClasses& classes) {
  if (const auto* cls = std::get_if<ClassIndex>(&request.constraint)) {
    if (cls->value >= classes.size()) return std::nullopt;
    return cls->value;
  }
  if (const auto* b = std::get_if<BandwidthMbps>(&request.constraint)) {
    if (b->value <= 0.0) return std::nullopt;
    return classes.snap_up(b->value);
  }
  return std::nullopt;  // a request with no constraint satisfies nothing
}

QueryProcessor::QueryProcessor(const OverlayNodeMap& nodes,
                               const DistanceMatrix& predicted,
                               const BandwidthClasses& classes,
                               FindClusterOptions find_options)
    : nodes_(nodes), predicted_(predicted), classes_(classes),
      find_options_(find_options) {}

QueryResult QueryProcessor::run(const QueryRequest& request) const {
  const auto t0 = std::chrono::steady_clock::now();
  QueryResult result;
  if (request.k < 2) {
    result.status = QueryStatus::kInvalidK;
  } else if (const auto cls = resolve_class(request, classes_); !cls) {
    result.status = QueryStatus::kBandwidthUnsatisfiable;
  } else if (!nodes_.count(request.start)) {
    result.status = QueryStatus::kUnknownStart;
  } else {
    result = route_query(request.start, request.k, *cls);
    result.class_idx = *cls;
  }
  result.micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return result;
}

QueryResult QueryProcessor::route_query(NodeId start, std::size_t k,
                                        std::size_t class_idx) const {
  const double l = classes_.distance_at(class_idx);

  QueryResult result;
  NodeId cur = start;
  NodeId prev = static_cast<NodeId>(-1);
  // On a tree overlay with never-backtracking forwarding, a query can visit
  // each node at most once; the guard only trips on corrupted state.
  const std::size_t max_visits = nodes_.size() + 1;

  while (result.route.size() < max_visits) {
    const auto cur_it = nodes_.find(cur);
    if (cur_it == nodes_.end()) {
      // The hop's tables are not materialized locally — the peer is down or
      // this is a process-local snapshot holding only the serving node's
      // entry. Stop routing and report a degraded best-effort not-found
      // instead of throwing.
      result.degraded = true;
      return result;
    }
    result.route.push_back(cur);
    const OverlayNode& x = cur_it->second;

    // Try locally if this node's own CRT entry admits a k-cluster.
    const auto self_it = x.aggr_crt.find(cur);
    if (self_it != x.aggr_crt.end() && k <= self_it->second[class_idx]) {
      const auto space = x.clustering_space();
      if (auto found = find_cluster(predicted_, space, k, l, find_options_)) {
        result.cluster = std::move(*found);
        result.status = QueryStatus::kFound;
        return result;
      }
      // CRT said yes but the space disagreed — only possible transiently or
      // on non-tree metrics; fall through to forwarding.
    }

    // Forward to any neighbor direction (except where we came from) whose
    // CRT promises a big-enough cluster.
    NodeId next = static_cast<NodeId>(-1);
    for (NodeId v : x.neighbors) {
      if (v == prev) continue;
      auto it = x.aggr_crt.find(v);
      if (it != x.aggr_crt.end() && k <= it->second[class_idx]) {
        next = v;
        break;
      }
    }
    if (next == static_cast<NodeId>(-1)) return result;  // kNotFound
    prev = cur;
    cur = next;
    ++result.hops;
  }
  return result;  // guard tripped: report as not found with full route
}

}  // namespace bcc
