// Algorithm 4 (paper §III.B.4): decentralized query processing, behind a
// structured request/response API.
//
// A query (k, l) may be submitted to any node. The node first tries to build
// the cluster from its own clustering space; if its CRT says a bigger
// cluster exists in some neighbor direction, it forwards the query there
// (never back where it came from, so routing cannot cycle on the tree).
// The paper's listing compares with `<`; a cluster of size exactly
// aggrCRT[·][l] is obviously acceptable too, so this implementation uses
// `<=` (the strict form would only cost extra hops, never correctness).
//
// The request carries a tagged Constraint (bandwidth in Mbps, snapped up to
// the nearest class, or an explicit class index) plus the serving-plane
// fields the admission controller consumes: a relative deadline and a
// priority. "No cluster exists", "k was nonsense", "b is stricter than
// every class", "start is not a member" and "the serving plane shed this
// query under overload" are distinct QueryStatus values, so callers (and
// the sharded serving layer in src/serve) can react to each without
// guessing.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>

#include "core/bandwidth_classes.h"
#include "core/find_cluster.h"
#include "core/overlay_node.h"

namespace bcc {

/// Why a query produced (or did not produce) a cluster.
enum class QueryStatus : std::uint8_t {
  kFound = 0,                  ///< cluster holds exactly k nodes
  kNotFound = 1,               ///< routing exhausted; no k-cluster at this class
  kInvalidK = 2,               ///< k < 2 (Algorithm 1 needs a pair)
  kBandwidthUnsatisfiable = 3, ///< b stricter than every class / bad class index
  kUnknownStart = 4,           ///< start node is not part of the overlay
  kShed = 5,                   ///< dropped by admission control under overload;
                               ///< any payload is a stale best-effort answer
};

/// Number of QueryStatus values (for stats arrays).
inline constexpr std::size_t kQueryStatusCount = 6;

constexpr const char* to_string(QueryStatus status) {
  switch (status) {
    case QueryStatus::kFound: return "found";
    case QueryStatus::kNotFound: return "not_found";
    case QueryStatus::kInvalidK: return "invalid_k";
    case QueryStatus::kBandwidthUnsatisfiable: return "bandwidth_unsatisfiable";
    case QueryStatus::kUnknownStart: return "unknown_start";
    case QueryStatus::kShed: return "shed";
  }
  return "?";
}

/// Constraint alternatives for QueryRequest::constraint (a tagged variant
/// replacing the old mutually-exclusive optional pair).
struct BandwidthMbps {
  double value = 0.0;  ///< minimum pairwise bandwidth, snapped *up* to a class
};
struct ClassIndex {
  std::size_t value = 0;  ///< explicit bandwidth-class index
};
/// monostate = unconstrained; such a request satisfies nothing and reports
/// kBandwidthUnsatisfiable.
using QueryConstraint = std::variant<std::monostate, BandwidthMbps, ClassIndex>;

/// Which path through the serving plane produced the answer (explain
/// profiles only — the plain result already distinguishes these through
/// status/degraded, but the profile names the path explicitly).
enum class QueryPath : std::uint8_t {
  kCompute = 0,        ///< full Algorithm 4 walk on the pinned snapshot
  kCacheHit = 1,       ///< per-shard memo cache, current snapshot version
  kStaleFallback = 2,  ///< shed, answered from the last converged snapshot
  kShedEmpty = 3,      ///< shed with no payload at all
  kBypass = 4,         ///< argument error answered before admission
};

constexpr const char* to_string(QueryPath path) {
  switch (path) {
    case QueryPath::kCompute: return "compute";
    case QueryPath::kCacheHit: return "cache_hit";
    case QueryPath::kStaleFallback: return "stale_fallback";
    case QueryPath::kShedEmpty: return "shed_empty";
    case QueryPath::kBypass: return "bypass";
  }
  return "?";
}

/// Per-query explain profile: where one request's latency went, stage by
/// stage, filled by the serving plane when QueryRequest::profile is set.
/// Stages are measured with ONE monotonic clock read per boundary — each
/// stage's end is the next stage's begin — so they telescope: stages_ns()
/// equals total_ns up to the final clock read, which is what lets the
/// explain self-consistency test demand >= 95% coverage of the measured
/// end-to-end latency instead of hand-waving about "other".
struct QueryProfile {
  std::uint64_t queue_ns = 0;      ///< dwell before serving began (batch fanout)
  std::uint64_t epoch_pin_ns = 0;  ///< snapshot pin (0 in batch: one shared pin)
  std::uint64_t validate_ns = 0;   ///< class resolve + argument/deadline checks
  std::uint64_t admission_ns = 0;  ///< token bucket + in-flight accounting
  std::uint64_t cache_ns = 0;      ///< memo / stale cache probe
  std::uint64_t compute_ns = 0;    ///< Algorithm 4 routing walk
  std::uint64_t total_ns = 0;      ///< queue + pin + serve, at the last read
  QueryPath path = QueryPath::kCompute;
  std::uint32_t shard = 0;             ///< shard the key hashed to
  std::uint64_t snapshot_version = 0;  ///< snapshot pinned for this query

  /// Sum of the individual stages (the explain table's "accounted" row).
  std::uint64_t stages_ns() const {
    return queue_ns + epoch_pin_ns + validate_ns + admission_ns + cache_ns +
           compute_ns;
  }
};

/// Scheduling class the admission controller uses when the serving plane is
/// overloaded: kLow is shed first (it must leave token headroom), kNormal
/// needs a token, kHigh may run the bucket into bounded debt.
enum class QueryPriority : std::uint8_t { kLow = 0, kNormal = 1, kHigh = 2 };

constexpr const char* to_string(QueryPriority priority) {
  switch (priority) {
    case QueryPriority::kLow: return "low";
    case QueryPriority::kNormal: return "normal";
    case QueryPriority::kHigh: return "high";
  }
  return "?";
}

/// One bandwidth-cluster query: "k nodes, pairwise bandwidth >= b", entering
/// the overlay at `start`. Build one via the factories; refine with the
/// with_* chainers when the serving plane should know about urgency.
struct QueryRequest {
  NodeId start = 0;
  std::size_t k = 0;
  QueryConstraint constraint;
  /// Serving deadline relative to submission, in microseconds (0 = none).
  /// A query still waiting past its deadline is shed, never served late.
  std::uint64_t deadline_micros = 0;
  QueryPriority priority = QueryPriority::kNormal;
  /// Fill QueryResult::profile with a stage-by-stage latency breakdown.
  /// Off by default: the serving plane reads monotonic clocks at each stage
  /// boundary only when asked.
  bool profile = false;

  static QueryRequest bandwidth(NodeId start, std::size_t k, double b_mbps) {
    QueryRequest r;
    r.start = start;
    r.k = k;
    r.constraint = BandwidthMbps{b_mbps};
    return r;
  }
  static QueryRequest at_class(NodeId start, std::size_t k,
                               std::size_t class_idx) {
    QueryRequest r;
    r.start = start;
    r.k = k;
    r.constraint = ClassIndex{class_idx};
    return r;
  }

  QueryRequest& with_deadline(std::uint64_t micros) {
    deadline_micros = micros;
    return *this;
  }
  QueryRequest& with_priority(QueryPriority p) {
    priority = p;
    return *this;
  }
  QueryRequest& with_profile(bool on = true) {
    profile = on;
    return *this;
  }

  /// The bandwidth constraint in Mbps, when that alternative is set.
  std::optional<double> bandwidth_mbps() const {
    if (const auto* b = std::get_if<BandwidthMbps>(&constraint)) {
      return b->value;
    }
    return std::nullopt;
  }
  /// The explicit class index, when that alternative is set.
  std::optional<std::size_t> explicit_class() const {
    if (const auto* c = std::get_if<ClassIndex>(&constraint)) return c->value;
    return std::nullopt;
  }
};

/// Outcome of one query, status first.
struct QueryResult {
  QueryStatus status = QueryStatus::kNotFound;
  Cluster cluster;                       ///< exactly k nodes iff kFound
  std::size_t hops = 0;                  ///< forwards taken (0 = local answer)
  std::vector<NodeId> route;             ///< nodes visited, entry node first
  std::uint64_t micros = 0;              ///< wall time spent serving
  std::optional<std::size_t> class_idx;  ///< class the query was served at
  std::uint64_t snapshot_version = 0;    ///< set by QueryService (0 = direct)
  /// True when the answer was computed from protocol state whose gossip
  /// fixpoint was disrupted (unconverged system, a serving snapshot taken
  /// during churn/faults, or a stale answer attached to a shed response):
  /// the result is well-formed and best-effort, but not guaranteed to match
  /// the converged ground truth.
  bool degraded = false;
  /// Trace id of the span that served this query (0 when tracing is off or
  /// the query bypassed the serving layer) — lets a caller join its result
  /// to the exported trace.
  std::uint64_t trace_id = 0;
  /// Dynamics epoch the serving snapshot was last repaired against (0 when
  /// serving is not driven by a streaming pipeline). A degraded answer
  /// served mid-repair self-describes its staleness through this.
  std::uint64_t source_epoch = 0;
  /// Stage-by-stage latency breakdown, present iff the request asked for it
  /// (QueryRequest::with_profile) AND the query went through the serving
  /// plane. Direct QueryProcessor::run calls never fill it.
  std::optional<QueryProfile> profile;

  bool found() const { return status == QueryStatus::kFound; }
};

/// Resolves the class a request is served at: the explicit index when valid,
/// else snap_up(b). nullopt means kBandwidthUnsatisfiable.
std::optional<std::size_t> resolve_class(const QueryRequest& request,
                                         const BandwidthClasses& classes);

/// Stateless processor walking Algorithm 4 over converged overlay state.
/// Holds references — the referenced state must outlive the processor (the
/// serving layer pins it via SystemSnapshot).
class QueryProcessor {
 public:
  QueryProcessor(const OverlayNodeMap& nodes, const DistanceMatrix& predicted,
                 const BandwidthClasses& classes,
                 FindClusterOptions find_options = {});

  // No raw pointers: passing null was never meaningful, so the old pointer
  // ctor is gone for good.
  QueryProcessor(const OverlayNodeMap*, const DistanceMatrix*,
                 const BandwidthClasses*, FindClusterOptions = {}) = delete;

  /// Serves one request, never throws on bad input: invalid arguments come
  /// back as kInvalidK / kBandwidthUnsatisfiable / kUnknownStart (checked in
  /// that order). Fills micros with the serve wall time.
  QueryResult run(const QueryRequest& request) const;

 private:
  /// The Algorithm 4 walk itself; inputs already validated.
  QueryResult route_query(NodeId start, std::size_t k,
                          std::size_t class_idx) const;

  const OverlayNodeMap& nodes_;
  const DistanceMatrix& predicted_;
  const BandwidthClasses& classes_;
  FindClusterOptions find_options_;
};

}  // namespace bcc
