// Algorithm 4 (paper §III.B.4): decentralized query processing, behind a
// structured request/response API.
//
// A query (k, l) may be submitted to any node. The node first tries to build
// the cluster from its own clustering space; if its CRT says a bigger
// cluster exists in some neighbor direction, it forwards the query there
// (never back where it came from, so routing cannot cycle on the tree).
// The paper's listing compares with `<`; a cluster of size exactly
// aggrCRT[·][l] is obviously acceptable too, so this implementation uses
// `<=` (the strict form would only cost extra hops, never correctness).
//
// The request/response pair below replaces the old empty-cluster sentinel:
// "no cluster exists", "k was nonsense", "b is stricter than every class",
// and "start is not a member" are distinct QueryStatus values, so callers
// (and the serving layer in src/serve) can react to each without guessing.
#pragma once

#include <cstdint>
#include <optional>

#include "core/bandwidth_classes.h"
#include "core/find_cluster.h"
#include "core/overlay_node.h"

namespace bcc {

/// Why a query produced (or did not produce) a cluster.
enum class QueryStatus : std::uint8_t {
  kFound = 0,                  ///< cluster holds exactly k nodes
  kNotFound = 1,               ///< routing exhausted; no k-cluster at this class
  kInvalidK = 2,               ///< k < 2 (Algorithm 1 needs a pair)
  kBandwidthUnsatisfiable = 3, ///< b stricter than every class / bad class index
  kUnknownStart = 4,           ///< start node is not part of the overlay
};

/// Number of QueryStatus values (for stats arrays).
inline constexpr std::size_t kQueryStatusCount = 5;

constexpr const char* to_string(QueryStatus status) {
  switch (status) {
    case QueryStatus::kFound: return "found";
    case QueryStatus::kNotFound: return "not_found";
    case QueryStatus::kInvalidK: return "invalid_k";
    case QueryStatus::kBandwidthUnsatisfiable: return "bandwidth_unsatisfiable";
    case QueryStatus::kUnknownStart: return "unknown_start";
  }
  return "?";
}

/// One bandwidth-cluster query: "k nodes, pairwise bandwidth >= b", entering
/// the overlay at `start`. The constraint is either a raw bandwidth in Mbps
/// (snapped *up* to the nearest class, see BandwidthClasses::snap_up) or an
/// explicit class index. Build one via the factories; exactly one of
/// b_mbps / class_idx is set.
struct QueryRequest {
  NodeId start = 0;
  std::size_t k = 0;
  std::optional<double> b_mbps;          ///< constraint in Mbps, snapped up
  std::optional<std::size_t> class_idx;  ///< or an explicit class index

  static QueryRequest bandwidth(NodeId start, std::size_t k, double b_mbps) {
    QueryRequest r;
    r.start = start;
    r.k = k;
    r.b_mbps = b_mbps;
    return r;
  }
  static QueryRequest at_class(NodeId start, std::size_t k,
                               std::size_t class_idx) {
    QueryRequest r;
    r.start = start;
    r.k = k;
    r.class_idx = class_idx;
    return r;
  }
};

/// Outcome of one query, status first.
struct QueryResult {
  QueryStatus status = QueryStatus::kNotFound;
  Cluster cluster;                       ///< exactly k nodes iff kFound
  std::size_t hops = 0;                  ///< forwards taken (0 = local answer)
  std::vector<NodeId> route;             ///< nodes visited, entry node first
  std::uint64_t micros = 0;              ///< wall time spent serving
  std::optional<std::size_t> class_idx;  ///< class the query was served at
  std::uint64_t snapshot_version = 0;    ///< set by QueryService (0 = direct)
  /// True when the answer was computed from protocol state whose gossip
  /// fixpoint was disrupted (unconverged system, or a serving snapshot
  /// taken during churn/faults): the result is well-formed and best-effort,
  /// but not guaranteed to match the converged ground truth.
  bool degraded = false;
  /// Trace id of the span that served this query (0 when tracing is off or
  /// the query bypassed the serving layer) — lets a caller join its result
  /// to the exported trace.
  std::uint64_t trace_id = 0;

  bool found() const { return status == QueryStatus::kFound; }
};

/// Resolves the class a request is served at: the explicit index when valid,
/// else snap_up(b). nullopt means kBandwidthUnsatisfiable.
std::optional<std::size_t> resolve_class(const QueryRequest& request,
                                         const BandwidthClasses& classes);

/// Legacy result of one decentralized query (pre-QueryStatus API; kept so
/// existing experiment/bench call sites compile unchanged).
struct QueryOutcome {
  Cluster cluster;            // empty when not found
  std::size_t hops = 0;       // number of forwards (0 = answered locally)
  std::vector<NodeId> route;  // nodes visited, starting with the entry node

  bool found() const { return !cluster.empty(); }
};

/// Stateless processor walking Algorithm 4 over converged overlay state.
/// Holds references — the referenced state must outlive the processor (the
/// serving layer pins it via SystemSnapshot).
class QueryProcessor {
 public:
  QueryProcessor(const OverlayNodeMap& nodes, const DistanceMatrix& predicted,
                 const BandwidthClasses& classes,
                 FindClusterOptions find_options = {});

  // No raw pointers: passing null was never meaningful, so the old pointer
  // ctor is gone for good.
  QueryProcessor(const OverlayNodeMap*, const DistanceMatrix*,
                 const BandwidthClasses*, FindClusterOptions = {}) = delete;

  /// Serves one request, never throws on bad input: invalid arguments come
  /// back as kInvalidK / kBandwidthUnsatisfiable / kUnknownStart (checked in
  /// that order). Fills micros with the serve wall time.
  QueryResult run(const QueryRequest& request) const;

  /// Legacy API: processes a (k, class) query entering at `start`. Requires
  /// (BCC_REQUIRE) k >= 2, a valid class index, and a known start.
  QueryOutcome process(NodeId start, std::size_t k,
                       std::size_t class_idx) const;

 private:
  /// The Algorithm 4 walk itself; inputs already validated.
  QueryResult route_query(NodeId start, std::size_t k,
                          std::size_t class_idx) const;

  const OverlayNodeMap& nodes_;
  const DistanceMatrix& predicted_;
  const BandwidthClasses& classes_;
  FindClusterOptions find_options_;
};

}  // namespace bcc
