// Algorithm 4 (paper §III.B.4): decentralized query processing.
//
// A query (k, l) may be submitted to any node. The node first tries to build
// the cluster from its own clustering space; if its CRT says a bigger
// cluster exists in some neighbor direction, it forwards the query there
// (never back where it came from, so routing cannot cycle on the tree).
// The paper's listing compares with `<`; a cluster of size exactly
// aggrCRT[·][l] is obviously acceptable too, so this implementation uses
// `<=` (the strict form would only cost extra hops, never correctness).
#pragma once

#include "core/bandwidth_classes.h"
#include "core/find_cluster.h"
#include "core/overlay_node.h"

namespace bcc {

/// Result of one decentralized query.
struct QueryOutcome {
  Cluster cluster;            // empty when not found
  std::size_t hops = 0;       // number of forwards (0 = answered locally)
  std::vector<NodeId> route;  // nodes visited, starting with the entry node

  bool found() const { return !cluster.empty(); }
};

/// Stateless processor walking Algorithm 4 over converged overlay state.
class QueryProcessor {
 public:
  QueryProcessor(const OverlayNodeMap* nodes, const DistanceMatrix* predicted,
                 const BandwidthClasses* classes,
                 FindClusterOptions find_options = {});

  /// Processes a (k, class) query entering at `start`. Requires k >= 2 and a
  /// valid class index.
  QueryOutcome process(NodeId start, std::size_t k,
                       std::size_t class_idx) const;

 private:
  const OverlayNodeMap* nodes_;
  const DistanceMatrix* predicted_;
  const BandwidthClasses* classes_;
  FindClusterOptions find_options_;
};

}  // namespace bcc
