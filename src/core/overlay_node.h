// Per-node protocol state for the decentralized clustering system
// (paper §III.B): the aggregated close-node sets (Algorithm 2) and the
// cluster routing table (Algorithm 3).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "metric/distance_matrix.h"

namespace bcc {

struct OverlayNode;

/// The whole population's per-node protocol state, keyed by host id.
using OverlayNodeMap = std::unordered_map<NodeId, OverlayNode>;

/// State one host maintains. Keys of aggr_node / aggr_crt are neighbor ids;
/// aggr_crt additionally holds a self entry (key == id) with the node's own
/// local maximum cluster sizes.
struct OverlayNode {
  NodeId id = 0;
  std::vector<NodeId> neighbors;  // anchor-tree parent + children

  /// aggrNode[m]: the n_cut nodes closest to this node among all nodes
  /// reachable via neighbor m (Theorem 3.2's invariant at convergence).
  std::unordered_map<NodeId, std::vector<NodeId>> aggr_node;

  /// aggrCRT[v][class]: maximum cluster size per distance class, for each
  /// neighbor direction v, plus the self entry aggrCRT[id][class].
  std::unordered_map<NodeId, std::vector<std::size_t>> aggr_crt;

  /// The node's clustering space V_x = {x} ∪ ∪_m aggrNode[m], deduplicated,
  /// sorted by id (deterministic).
  std::vector<NodeId> clustering_space() const;
};

/// Canonical text form of one node's tables: sorted direction keys, sorted
/// aggregate ids — string-equal iff the tables hold the same fixpoint state.
/// This is the wire form the multi-process supervisor compares against sync
/// ground truth and the form DecentralizedClusterSystem::canonical_dump
/// concatenates; incremental-repair tests assert dump equality against a
/// from-scratch system.
std::string canonical_node_state(NodeId id, const OverlayNode& node);

}  // namespace bcc
