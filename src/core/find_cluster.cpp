#include "core/find_cluster.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/assert.h"

namespace bcc {
namespace {

/// Collects S*_pq over `universe`: all x with d(x,p) <= d_pq and
/// d(x,q) <= d_pq (p and q always qualify).
std::vector<NodeId> candidate_set(const DistanceMatrix& d,
                                  std::span<const NodeId> universe, NodeId p,
                                  NodeId q, double d_pq) {
  std::vector<NodeId> s;
  for (NodeId x : universe) {
    if (d.at(x, p) <= d_pq && d.at(x, q) <= d_pq) s.push_back(x);
  }
  return s;
}

/// Picks k nodes out of S*_pq: p and q first, then candidates ordered by
/// their distance to the pair (deterministic; ties by id).
Cluster choose_k(const DistanceMatrix& d, const std::vector<NodeId>& s,
                 NodeId p, NodeId q, std::size_t k) {
  BCC_ASSERT(s.size() >= k && k >= 2);
  std::vector<std::pair<double, NodeId>> rest;
  rest.reserve(s.size());
  for (NodeId x : s) {
    if (x == p || x == q) continue;
    rest.emplace_back(std::max(d.at(x, p), d.at(x, q)), x);
  }
  std::sort(rest.begin(), rest.end());
  Cluster out = {p, q};
  for (std::size_t i = 0; i + 2 < k && i < rest.size(); ++i) {
    out.push_back(rest[i].second);
  }
  BCC_ASSERT(out.size() == k);
  return out;
}

}  // namespace

std::optional<Cluster> find_cluster(const DistanceMatrix& d,
                                    std::span<const NodeId> universe,
                                    std::size_t k, double l,
                                    const FindClusterOptions& options) {
  BCC_REQUIRE(k >= 2);
  BCC_REQUIRE(l >= 0.0);
  for (NodeId x : universe) BCC_REQUIRE(x < d.size());
  if (universe.size() < k) return std::nullopt;

  // Algorithm 1 leaves the pair iteration order open; see
  // FindClusterOptions::PairOrder for the two supported disciplines.
  struct PairEntry {
    double dist;
    NodeId p, q;
  };
  std::vector<PairEntry> pairs;
  pairs.reserve(universe.size() * (universe.size() - 1) / 2);
  for (std::size_t i = 0; i < universe.size(); ++i) {
    for (std::size_t j = i + 1; j < universe.size(); ++j) {
      const NodeId p = universe[i], q = universe[j];
      const double d_pq = d.at(p, q);
      if (d_pq <= l) pairs.push_back(PairEntry{d_pq, p, q});
    }
  }
  if (options.order == FindClusterOptions::PairOrder::kAscendingDistance) {
    std::sort(pairs.begin(), pairs.end(),
              [](const PairEntry& a, const PairEntry& b) {
                if (a.dist != b.dist) return a.dist < b.dist;
                if (a.p != b.p) return a.p < b.p;
                return a.q < b.q;
              });
  }
  for (const PairEntry& pair : pairs) {
    const auto s = candidate_set(d, universe, pair.p, pair.q, pair.dist);
    if (s.size() < k) continue;
    Cluster chosen = choose_k(d, s, pair.p, pair.q, k);
    if (options.verify_diameter && d.diameter_of(chosen) > l + options.slack) {
      continue;  // only possible when the metric violates 4PC
    }
    return chosen;
  }
  return std::nullopt;
}

std::optional<Cluster> find_cluster(const DistanceMatrix& d, std::size_t k,
                                    double l,
                                    const FindClusterOptions& options) {
  std::vector<NodeId> universe(d.size());
  for (NodeId i = 0; i < d.size(); ++i) universe[i] = i;
  return find_cluster(d, universe, k, l, options);
}

Cluster max_cluster(const DistanceMatrix& d, std::span<const NodeId> universe,
                    double l) {
  BCC_REQUIRE(l >= 0.0);
  for (NodeId x : universe) BCC_REQUIRE(x < d.size());
  if (universe.empty()) return {};

  Cluster best = {universe[0]};
  for (std::size_t i = 0; i < universe.size(); ++i) {
    for (std::size_t j = i + 1; j < universe.size(); ++j) {
      const NodeId p = universe[i], q = universe[j];
      const double d_pq = d.at(p, q);
      if (d_pq > l) continue;
      auto s = candidate_set(d, universe, p, q, d_pq);
      if (s.size() > best.size()) best = std::move(s);
    }
  }
  return best;
}

std::size_t max_cluster_size(const DistanceMatrix& d,
                             std::span<const NodeId> universe, double l) {
  return max_cluster(d, universe, l).size();
}

std::vector<std::size_t> max_cluster_sizes_for_classes(
    const DistanceMatrix& d, std::span<const NodeId> universe,
    std::span<const double> classes) {
  for (NodeId x : universe) BCC_REQUIRE(x < d.size());
  for (double l : classes) BCC_REQUIRE(l >= 0.0);

  // (d_pq, |S*_pq|) for every pair.
  std::vector<std::pair<double, std::size_t>> pairs;
  pairs.reserve(universe.size() * (universe.size() + 1) / 2);
  for (std::size_t i = 0; i < universe.size(); ++i) {
    for (std::size_t j = i + 1; j < universe.size(); ++j) {
      const NodeId p = universe[i], q = universe[j];
      const double d_pq = d.at(p, q);
      pairs.emplace_back(d_pq, candidate_set(d, universe, p, q, d_pq).size());
    }
  }
  std::sort(pairs.begin(), pairs.end());
  // best_upto[i] = max size among the first i+1 pairs (sorted by d_pq).
  std::vector<std::size_t> best_upto(pairs.size());
  std::size_t running = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    running = std::max(running, pairs[i].second);
    best_upto[i] = running;
  }

  std::vector<std::size_t> out(classes.size());
  const std::size_t singleton = universe.empty() ? 0 : 1;
  for (std::size_t c = 0; c < classes.size(); ++c) {
    // Largest pair index with d_pq <= classes[c].
    auto it = std::upper_bound(
        pairs.begin(), pairs.end(),
        std::make_pair(classes[c], std::numeric_limits<std::size_t>::max()));
    out[c] = it == pairs.begin() ? singleton
                                 : std::max(singleton,
                                            best_upto[it - pairs.begin() - 1]);
  }
  return out;
}

std::optional<Cluster> tightest_cluster(const DistanceMatrix& d,
                                        std::span<const NodeId> universe,
                                        std::size_t k,
                                        const FindClusterOptions& options) {
  BCC_REQUIRE(k >= 2);
  for (NodeId x : universe) BCC_REQUIRE(x < d.size());
  if (universe.size() < k) return std::nullopt;

  // Candidate diameter pairs in ascending distance: the first pair whose
  // candidate set reaches k realizes the minimum achievable diameter (in a
  // tree metric every smaller-diameter cluster would have produced an
  // earlier feasible pair).
  struct PairEntry {
    double dist;
    NodeId p, q;
  };
  std::vector<PairEntry> pairs;
  pairs.reserve(universe.size() * (universe.size() - 1) / 2);
  for (std::size_t i = 0; i < universe.size(); ++i) {
    for (std::size_t j = i + 1; j < universe.size(); ++j) {
      pairs.push_back(
          PairEntry{d.at(universe[i], universe[j]), universe[i], universe[j]});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const PairEntry& a, const PairEntry& b) {
              if (a.dist != b.dist) return a.dist < b.dist;
              if (a.p != b.p) return a.p < b.p;
              return a.q < b.q;
            });
  for (const PairEntry& pair : pairs) {
    const auto s = candidate_set(d, universe, pair.p, pair.q, pair.dist);
    if (s.size() < k) continue;
    Cluster chosen = choose_k(d, s, pair.p, pair.q, k);
    if (options.verify_diameter &&
        d.diameter_of(chosen) > pair.dist + options.slack) {
      continue;  // only on 4PC-violating inputs
    }
    return chosen;
  }
  return std::nullopt;
}

bool cluster_satisfies(const DistanceMatrix& d, const Cluster& cluster,
                       std::size_t k, double l, double slack) {
  if (cluster.size() != k) return false;
  for (NodeId x : cluster) {
    if (x >= d.size()) return false;
  }
  // Distinctness: a cluster is a set.
  Cluster sorted = cluster;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return false;
  }
  return d.diameter_of(cluster) <= l + slack;
}

namespace {

void clique_rec(const DistanceMatrix& d, double l,
                const std::vector<NodeId>& candidates, std::size_t chosen,
                std::size_t& best) {
  if (chosen + candidates.size() <= best) return;
  if (candidates.empty()) {
    best = std::max(best, chosen);
    return;
  }
  const NodeId v = candidates.front();
  std::vector<NodeId> with;
  for (NodeId u : candidates) {
    if (u != v && d.at(u, v) <= l) with.push_back(u);
  }
  clique_rec(d, l, with, chosen + 1, best);
  std::vector<NodeId> without(candidates.begin() + 1, candidates.end());
  clique_rec(d, l, without, chosen, best);
}

}  // namespace

std::size_t max_clique_bruteforce(const DistanceMatrix& d,
                                  std::span<const NodeId> universe, double l) {
  std::vector<NodeId> all(universe.begin(), universe.end());
  std::size_t best = 0;
  clique_rec(d, l, all, 0, best);
  return best;
}

}  // namespace bcc
