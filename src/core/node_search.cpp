#include "core/node_search.h"

#include <algorithm>

#include "common/assert.h"

namespace bcc {
namespace {

double max_distance_to_targets(const DistanceMatrix& d, NodeId x,
                               std::span<const NodeId> targets) {
  double worst = 0.0;
  for (NodeId t : targets) worst = std::max(worst, d.at(x, t));
  return worst;
}

bool is_target(NodeId x, std::span<const NodeId> targets) {
  return std::find(targets.begin(), targets.end(), x) != targets.end();
}

}  // namespace

std::optional<NodeSearchResult> find_best_node(
    const DistanceMatrix& d, std::span<const NodeId> universe,
    std::span<const NodeId> targets) {
  BCC_REQUIRE(!targets.empty());
  for (NodeId t : targets) BCC_REQUIRE(t < d.size());
  std::optional<NodeSearchResult> best;
  for (NodeId x : universe) {
    BCC_REQUIRE(x < d.size());
    if (is_target(x, targets)) continue;
    const double worst = max_distance_to_targets(d, x, targets);
    if (!best || worst < best->max_distance ||
        (worst == best->max_distance && x < best->node)) {
      best = NodeSearchResult{x, worst};
    }
  }
  return best;
}

std::vector<NodeSearchResult> find_nodes_within(
    const DistanceMatrix& d, std::span<const NodeId> universe,
    std::span<const NodeId> targets, double l) {
  BCC_REQUIRE(!targets.empty());
  BCC_REQUIRE(l >= 0.0);
  std::vector<NodeSearchResult> out;
  for (NodeId x : universe) {
    BCC_REQUIRE(x < d.size());
    if (is_target(x, targets)) continue;
    const double worst = max_distance_to_targets(d, x, targets);
    if (worst <= l) out.push_back(NodeSearchResult{x, worst});
  }
  std::sort(out.begin(), out.end(),
            [](const NodeSearchResult& a, const NodeSearchResult& b) {
              if (a.max_distance != b.max_distance) {
                return a.max_distance < b.max_distance;
              }
              return a.node < b.node;
            });
  return out;
}

}  // namespace bcc
