// DecentralizedClusterSystem — the public facade tying the whole paper
// together: prediction framework overlay (anchor tree) + predicted metric +
// background aggregation protocols (Algorithms 2–3) + decentralized query
// processing (Algorithm 4).
//
// Typical use:
//   auto fw = build_framework(real_distances, rng);          // §II.D
//   DecentralizedClusterSystem sys(fw.anchors,
//                                  fw.predicted_distances(),
//                                  BandwidthClasses::uniform_grid(5, 300, 5));
//   sys.run_to_convergence();
//   auto r = sys.query(QueryRequest::bandwidth(/*start=*/0, /*k=*/10, 50.0));
//   if (r.status == QueryStatus::kFound) use(r.cluster);
//
// For serving heavy query traffic concurrently (batches over an immutable
// snapshot of this system's converged state), see serve/query_service.h.
#pragma once

#include <memory>

#include "core/aggregation.h"
#include "core/query.h"
#include "tree/embedder.h"

namespace bcc {

struct SystemOptions {
  /// Per-neighbor aggregate size limit (Algorithm 2's n_cut).
  std::size_t n_cut = 10;
  /// Gossip cycle budget for run_to_convergence; 0 = automatic
  /// (overlay diameter + 2, enough for both fixpoints).
  std::size_t max_cycles = 0;
  /// Options passed to Algorithm 1 during query processing.
  FindClusterOptions find_options = {};
};

/// See file comment.
class DecentralizedClusterSystem {
 public:
  DecentralizedClusterSystem(AnchorTree overlay, DistanceMatrix predicted,
                             BandwidthClasses classes,
                             SystemOptions options = {});

  /// Runs the background mechanisms until both protocols reach their
  /// fixpoint (or the cycle budget runs out). Returns cycles executed.
  std::size_t run_to_convergence();

  bool converged() const;

  /// Serves one structured query (Algorithm 4). Never throws on bad input —
  /// invalid k / unsatisfiable bandwidth / unknown start come back as the
  /// corresponding QueryStatus. This is the primary query API; for batched,
  /// thread-pooled serving over many queries see serve/query_service.h.
  QueryResult query(const QueryRequest& request) const;

  /// Dynamic clustering (§III.B.2): the prediction framework restructured —
  /// feed the new predicted metric and re-run gossip. Returns cycles.
  std::size_t refresh(DistanceMatrix new_predicted);

  // Introspection (tests, experiments, serving-layer snapshots).
  std::size_t size() const { return nodes_.size(); }
  const OverlayNode& node(NodeId id) const;
  const OverlayNodeMap& nodes() const { return nodes_; }
  const AnchorTree& overlay() const { return overlay_; }
  const DistanceMatrix& predicted() const { return predicted_; }
  const BandwidthClasses& classes() const { return classes_; }
  const SystemOptions& options() const { return options_; }
  const MessageMetrics& metrics() const { return engine_.metrics(); }
  std::size_t cycles_executed() const { return engine_.cycles_executed(); }

 private:
  std::size_t cycle_budget() const;

  AnchorTree overlay_;
  DistanceMatrix predicted_;
  BandwidthClasses classes_;
  SystemOptions options_;
  OverlayNodeMap nodes_;
  Engine engine_;
  std::shared_ptr<NodeInfoAggregation> node_info_;
  std::shared_ptr<CrtAggregation> crt_;
};

}  // namespace bcc
