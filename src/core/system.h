// DecentralizedClusterSystem — the public facade tying the whole paper
// together: prediction framework overlay (anchor tree) + predicted metric +
// background aggregation protocols (Algorithms 2–3) + decentralized query
// processing (Algorithm 4).
//
// Typical use:
//   auto fw = build_framework(real_distances, rng);          // §II.D
//   DecentralizedClusterSystem sys(fw.anchors,
//                                  fw.predicted_distances(),
//                                  BandwidthClasses::uniform_grid(5, 300, 5));
//   sys.run_to_convergence();
//   auto r = sys.query(QueryRequest::bandwidth(/*start=*/0, /*k=*/10, 50.0));
//   if (r.status == QueryStatus::kFound) use(r.cluster);
//
// For serving heavy query traffic concurrently (batches over an immutable
// snapshot of this system's converged state), see serve/query_service.h.
#pragma once

#include <memory>

#include "core/aggregation.h"
#include "core/query.h"
#include "tree/embedder.h"

namespace bcc {

struct SystemOptions {
  /// Per-neighbor aggregate size limit (Algorithm 2's n_cut).
  std::size_t n_cut = 10;
  /// Gossip cycle budget for run_to_convergence; 0 = automatic
  /// (overlay diameter + 2, enough for both fixpoints).
  std::size_t max_cycles = 0;
  /// Options passed to Algorithm 1 during query processing.
  FindClusterOptions find_options = {};
  /// apply_delta falls back to a full reset when the repaired fraction of
  /// the membership exceeds this — past that point the memoized delta path
  /// would recompute nearly everything anyway, with bookkeeping on top.
  double full_refresh_threshold = 0.25;
};

/// See file comment.
class DecentralizedClusterSystem {
 public:
  DecentralizedClusterSystem(AnchorTree overlay, DistanceMatrix predicted,
                             BandwidthClasses classes,
                             SystemOptions options = {});

  /// Runs the background mechanisms until both protocols reach their
  /// fixpoint (or the cycle budget runs out). Returns cycles executed.
  std::size_t run_to_convergence();

  bool converged() const;

  /// Serves one structured query (Algorithm 4). Never throws on bad input —
  /// invalid k / unsatisfiable bandwidth / unknown start come back as the
  /// corresponding QueryStatus. This is the primary query API; for batched,
  /// thread-pooled serving over many queries see serve/query_service.h.
  QueryResult query(const QueryRequest& request) const;

  /// Dynamic clustering (§III.B.2): the prediction framework restructured —
  /// feed the new predicted metric and re-run gossip. Returns cycles.
  std::size_t refresh(DistanceMatrix new_predicted);

  /// Incremental restructuring: installs the new predicted metric and marks
  /// only state derived from `repaired` hosts dirty, *without* running
  /// gossip — queries served in between are flagged degraded, which is the
  /// repair-window behavior the streaming pipeline wants. Contract: every
  /// pair whose predicted distance changed has at least one end in
  /// `repaired` (FrameworkMaintainer::refresh_dirty guarantees this). Falls
  /// back to a full reset_convergence when the repaired fraction exceeds
  /// options().full_refresh_threshold. Returns true when the delta path was
  /// taken, false on the full fallback.
  ///
  /// `new_overlay`, when given, is the anchor tree after the repair (same
  /// membership, possibly different edges — leave+rejoin moves anchors):
  /// neighbor sets are resynced, dropped directions pruned from tables, and
  /// every topology-touched node seeded as changed so the resulting cascade
  /// flushes stale entries — the iteration still lands on the unique
  /// fixpoint of the *new* tree.
  bool apply_delta(DistanceMatrix new_predicted,
                   std::span<const NodeId> repaired,
                   const AnchorTree* new_overlay = nullptr);

  /// apply_delta + run_to_convergence: the one-call repair that reaches the
  /// identical fixpoint a from-scratch recompute would (asserted by
  /// canonical_dump equality in tests). Returns cycles executed.
  std::size_t refresh_delta(DistanceMatrix new_predicted,
                            std::span<const NodeId> repaired,
                            const AnchorTree* new_overlay = nullptr);

  /// Canonical text dump of every node's tables in ascending id order (the
  /// PR 7 wire form) — string-equal iff two systems share the exact same
  /// fixpoint state.
  std::string canonical_dump() const;

  /// Delta-path work accounting (recomputed vs provably-reused messages).
  std::size_t messages_recomputed() const;
  std::size_t messages_reused() const;

  // Introspection (tests, experiments, serving-layer snapshots).
  std::size_t size() const { return nodes_.size(); }
  const OverlayNode& node(NodeId id) const;
  const OverlayNodeMap& nodes() const { return nodes_; }
  const AnchorTree& overlay() const { return overlay_; }
  const DistanceMatrix& predicted() const { return predicted_; }
  const BandwidthClasses& classes() const { return classes_; }
  const SystemOptions& options() const { return options_; }
  const MessageMetrics& metrics() const { return engine_.metrics(); }
  std::size_t cycles_executed() const { return engine_.cycles_executed(); }

 private:
  std::size_t cycle_budget() const;

  /// Installs `overlay` (same membership required), prunes table entries for
  /// dropped directions, and returns the nodes whose neighbor set changed.
  std::vector<NodeId> resync_overlay(const AnchorTree& overlay);

  AnchorTree overlay_;
  DistanceMatrix predicted_;
  BandwidthClasses classes_;
  SystemOptions options_;
  OverlayNodeMap nodes_;
  Engine engine_;
  std::shared_ptr<NodeInfoAggregation> node_info_;
  std::shared_ptr<CrtAggregation> crt_;
};

}  // namespace bcc
