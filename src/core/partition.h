// Partitioning a population into bandwidth-constrained clusters — the CDN
// use case of §I/§V: "divide content subscribers into several high-bandwidth
// clusters, deploy data only to a few of nodes in each cluster".
//
// Greedy peeling: repeatedly take the largest cluster with diameter <= l
// (one Algorithm 1 pass) and remove it. Nodes that end up in no cluster of
// size >= min_cluster_size are reported as singletons ("stragglers").
#pragma once

#include <span>

#include "core/find_cluster.h"

namespace bcc {

struct PartitionOptions {
  /// Clusters smaller than this are not formed; their nodes become
  /// stragglers. Must be >= 2.
  std::size_t min_cluster_size = 2;
  /// Stop after this many clusters (0 = unlimited).
  std::size_t max_clusters = 0;
};

struct Partition {
  std::vector<Cluster> clusters;   // largest first (greedy order)
  std::vector<NodeId> stragglers;  // nodes no cluster absorbed

  std::size_t covered() const {
    std::size_t total = 0;
    for (const Cluster& c : clusters) total += c.size();
    return total;
  }
};

/// Greedy diameter-constrained partition of `universe` under metric `d`.
Partition partition_into_clusters(const DistanceMatrix& d,
                                  std::span<const NodeId> universe, double l,
                                  const PartitionOptions& options = {});

}  // namespace bcc
