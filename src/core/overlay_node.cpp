#include "core/overlay_node.h"

#include <algorithm>

namespace bcc {

std::vector<NodeId> OverlayNode::clustering_space() const {
  std::vector<NodeId> space = {id};
  for (const auto& [m, nodes] : aggr_node) {
    space.insert(space.end(), nodes.begin(), nodes.end());
  }
  std::sort(space.begin(), space.end());
  space.erase(std::unique(space.begin(), space.end()), space.end());
  return space;
}

}  // namespace bcc
