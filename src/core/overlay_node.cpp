#include "core/overlay_node.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace bcc {

std::vector<NodeId> OverlayNode::clustering_space() const {
  std::vector<NodeId> space = {id};
  for (const auto& [m, nodes] : aggr_node) {
    space.insert(space.end(), nodes.begin(), nodes.end());
  }
  std::sort(space.begin(), space.end());
  space.erase(std::unique(space.begin(), space.end()), space.end());
  return space;
}

std::string canonical_node_state(NodeId id, const OverlayNode& node) {
  std::ostringstream out;
  out << "state-begin " << id << "\n";
  std::map<NodeId, std::vector<std::size_t>> crt(node.aggr_crt.begin(),
                                                 node.aggr_crt.end());
  for (const auto& [m, sizes] : crt) {
    out << "crt " << m << " :";
    for (std::size_t s : sizes) out << ' ' << s;
    out << "\n";
  }
  std::map<NodeId, std::vector<NodeId>> aggr(node.aggr_node.begin(),
                                             node.aggr_node.end());
  for (const auto& [m, ids] : aggr) {
    std::vector<NodeId> sorted_ids = ids;
    std::sort(sorted_ids.begin(), sorted_ids.end());
    out << "node " << m << " :";
    for (NodeId nid : sorted_ids) out << ' ' << nid;
    out << "\n";
  }
  out << "state-end\n";
  return out.str();
}

}  // namespace bcc
