// Algorithm 1 (paper §III.A): centralized polynomial-time clustering in a
// tree metric space, plus the max-cluster-size searches Algorithm 3 needs
// and a brute-force oracle for tests.
//
// For every node pair (p, q) the candidate set
//   S*_pq = { x : d(x,p) <= d(p,q)  and  d(x,q) <= d(p,q) }
// is, in a tree metric, the *largest* cluster whose diameter equals d(p,q)
// (Theorem 3.1). Scanning pairs with d(p,q) <= l and checking |S*_pq| >= k
// therefore answers the (k, l) query exactly in O(n^3).
//
// All functions operate on a subset (`universe`) of a global distance
// matrix, because the decentralized system runs Algorithm 1 on per-node
// clustering spaces V_x ⊂ V.
#pragma once

#include <optional>
#include <span>

#include "metric/distance_matrix.h"

namespace bcc {

struct FindClusterOptions {
  /// Re-verify the chosen k nodes' diameter before returning. Free on tree
  /// metrics (always passes, by Theorem 3.1) and keeps the algorithm honest
  /// on metrics that violate 4PC: a pair whose chosen nodes exceed l is
  /// skipped and the scan continues.
  bool verify_diameter = true;
  /// Numeric slack for the diameter check.
  double slack = 1e-9;
  /// Candidate-pair iteration order. Algorithm 1's listing leaves it open:
  ///   kAscendingDistance — try tight diameter pairs first, returning the
  ///     tightest feasible cluster (best real-bandwidth quality; default);
  ///   kIndexOrder — first feasible pair in index order ("any" cluster,
  ///     matching the accuracy magnitudes of the paper's evaluation).
  enum class PairOrder { kAscendingDistance, kIndexOrder };
  PairOrder order = PairOrder::kAscendingDistance;
};

/// Algorithm 1 over `universe` (ids into `d`): a set X ⊆ universe with
/// |X| = k and diam(X) <= l, or nullopt if none exists. Requires k >= 2.
/// When |S*_pq| > k, the k returned nodes are p, q, and the k-2 candidates
/// closest to the pair (deterministic).
std::optional<Cluster> find_cluster(const DistanceMatrix& d,
                                    std::span<const NodeId> universe,
                                    std::size_t k, double l,
                                    const FindClusterOptions& options = {});

/// Convenience overload over the whole matrix (universe = 0..n-1).
std::optional<Cluster> find_cluster(const DistanceMatrix& d, std::size_t k,
                                    double l,
                                    const FindClusterOptions& options = {});

/// The largest cluster with diameter <= l over `universe` (assumes a tree
/// metric, where max_pq |S*_pq| is exact; this is what Algorithm 3 tabulates
/// into cluster routing tables). Returns the singleton {universe[0]} when no
/// pair is within l, and {} for an empty universe.
Cluster max_cluster(const DistanceMatrix& d, std::span<const NodeId> universe,
                    double l);

/// |max_cluster(...)| without materializing the set.
std::size_t max_cluster_size(const DistanceMatrix& d,
                             std::span<const NodeId> universe, double l);

/// max_cluster_size for every distance class in `classes` at once:
/// one O(|universe|^3) pass computes |S*_pq| per pair, then each class reads
/// a running maximum. This is what Algorithm 3 runs every gossip cycle —
/// the binary-search-over-k the paper suggests is subsumed by tabulating the
/// per-pair candidate-set sizes directly.
std::vector<std::size_t> max_cluster_sizes_for_classes(
    const DistanceMatrix& d, std::span<const NodeId> universe,
    std::span<const double> classes);

/// The k-cluster of *minimum* diameter — Aggarwal et al.'s original
/// k-diameter objective restated in a tree metric, solved exactly by
/// scanning candidate diameter pairs in ascending distance order. nullopt if
/// k > |universe|. Requires k >= 2.
std::optional<Cluster> tightest_cluster(const DistanceMatrix& d,
                                        std::span<const NodeId> universe,
                                        std::size_t k,
                                        const FindClusterOptions& options = {});

/// True if |X| == k and all pairwise distances are <= l (+slack).
bool cluster_satisfies(const DistanceMatrix& d, const Cluster& cluster,
                       std::size_t k, double l, double slack = 1e-9);

/// Exponential-time exact oracle: maximum clique size in the graph over
/// `universe` with edges where d <= l. For tests (small universes only).
std::size_t max_clique_bruteforce(const DistanceMatrix& d,
                                  std::span<const NodeId> universe, double l);

}  // namespace bcc
