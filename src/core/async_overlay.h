// Asynchronous (event-driven) execution of the background mechanisms —
// Algorithms 2 and 3 without lockstep rounds. Each node gossips on its own
// jittered timer and messages arrive after per-pair latency, as in a real
// deployment. The information content is identical to the synchronous
// protocols (both call the shared compute_prop_* functions), and the tests
// verify the asynchronous run reaches exactly the synchronous fixpoint.
#pragma once

#include "common/rng.h"
#include "core/aggregation.h"
#include "sim/event_engine.h"

namespace bcc {

struct AsyncOverlayOptions {
  std::size_t n_cut = 10;
  /// Seconds between a node's gossip rounds.
  double gossip_period = 1.0;
  /// Each period is multiplied by uniform(1 - jitter, 1 + jitter).
  double period_jitter = 0.2;
  /// Message latency: constant seconds, or per-pair when `rtt_ms` is set
  /// (one-way = rtt/2, milliseconds -> seconds).
  double message_latency = 0.05;
  const DistanceMatrix* rtt_ms = nullptr;
};

/// See file comment. The overlay/predicted/classes objects must outlive it.
class AsyncOverlay {
 public:
  AsyncOverlay(const AnchorTree* overlay, const DistanceMatrix* predicted,
               const BandwidthClasses* classes, AsyncOverlayOptions options,
               std::uint64_t seed);

  /// Schedules every node's first gossip timer on `engine`. The engine must
  /// outlive this object; timers re-arm forever (bound runs with run_until).
  void start(EventEngine& engine);

  /// Convenience: start (if needed) and simulate `duration` seconds.
  void run_for(EventEngine& engine, double duration);

  const OverlayNodeMap& nodes() const { return nodes_; }
  std::size_t gossip_rounds() const { return rounds_; }
  /// Simulation time of the last state-changing delivery (0 if none).
  SimTime last_change() const { return last_change_; }

 private:
  void gossip(EventEngine& engine, NodeId x);
  void arm_timer(EventEngine& engine, NodeId x);
  double latency(NodeId from, NodeId to) const;

  const AnchorTree* overlay_;
  const DistanceMatrix* predicted_;
  const BandwidthClasses* classes_;
  AsyncOverlayOptions options_;
  Rng rng_;
  OverlayNodeMap nodes_;
  bool started_ = false;
  std::size_t rounds_ = 0;
  SimTime last_change_ = 0.0;
};

}  // namespace bcc
