// Asynchronous (event-driven) execution of the background mechanisms —
// Algorithms 2 and 3 without lockstep rounds. Each node gossips on its own
// jittered timer and messages arrive after per-pair latency, as in a real
// deployment. The information content is identical to the synchronous
// protocols (both call the shared compute_prop_* functions), and the tests
// verify the asynchronous run reaches exactly the synchronous fixpoint.
//
// Resilience (the §I "Dynamic Clustering" requirement taken seriously):
// gossip runs over a FaultyChannel, so messages may be dropped, duplicated,
// delayed, or cut by partitions (sim/fault.h). Every payload delivery is
// acknowledged; a sender that misses the ack retries with capped
// exponential backoff, and after `suspect_after` consecutive fully-failed
// exchanges it marks the neighbor suspected (MessageMetrics counts
// dropped/duplicated/retried/suspected). Deliveries are idempotent
// overwrites of the receiver's tables, so duplicates and retries never
// corrupt state, and under any loss rate < 1 the overlay still reaches the
// synchronous fixpoint (chaos tests sweep this).
//
// Crash/recover: a crashed node's gossip timer is cancelled (via the
// EventEngine's cancellable timer handles), its tables are wiped (cold
// restart), and in-flight messages to it are dropped; recovery re-arms the
// timer and the node rebuilds its state from its neighbors' gossip.
//
// Churn: when membership changes through FrameworkMaintainer (see
// core/churn.h), resync_membership() re-reads the anchor tree — departed
// nodes are removed and purged from all aggregate tables (an instantaneous
// obituary broadcast, the one idealization), new and rejoined nodes get
// fresh state and timers, and continued gossip re-converges on the
// survivors.
// Transport seam (ROADMAP open item 1): the overlay no longer talks to the
// FaultyChannel directly — every exchange and ack is a serialized frame
// handed to a net::Transport. By default start() builds a SimTransport over
// the options' FaultPlan (the deterministic path above); injecting a
// TcpTransport plus `local_node` instead runs ONE node of the overlay as a
// real OS process (see net/node_runtime.h) speaking the identical protocol
// to real peers. In local mode the map holds just the local node's state;
// the compute_prop_* kernels only ever read the sender's entry, so the
// protocol math is unchanged.
#pragma once

#include <memory>
#include <optional>
#include <unordered_set>

#include "common/rng.h"
#include "core/aggregation.h"
#include "net/transport.h"
#include "sim/fault.h"

namespace bcc {

namespace net {
class SimTransport;
}  // namespace net

struct AsyncOverlayOptions {
  std::size_t n_cut = 10;
  /// Seconds between a node's gossip rounds.
  double gossip_period = 1.0;
  /// Each period is multiplied by uniform(1 - jitter, 1 + jitter).
  double period_jitter = 0.2;
  /// Message latency: constant seconds, or per-pair when `rtt_ms` is set
  /// (one-way = rtt/2, milliseconds -> seconds).
  double message_latency = 0.05;
  const DistanceMatrix* rtt_ms = nullptr;
  /// Optional fault plan (non-owning; must outlive the overlay). Null means
  /// a perfect network — the ack/retry machinery still runs but never loses
  /// anything.
  FaultPlan* faults = nullptr;
  /// Base ack timeout; the effective timeout per link is
  /// max(ack_timeout, 3 * link round-trip), so slow links are not punished.
  double ack_timeout = 0.25;
  /// Resend attempts after the first send of an exchange.
  std::size_t max_retries = 3;
  /// Timeout multiplier per retry (capped exponential backoff).
  double backoff_factor = 2.0;
  /// Consecutive fully-failed exchanges before the peer is suspected.
  std::size_t suspect_after = 2;
  /// External transport (non-owning; must outlive the overlay). Null means
  /// start() builds its own SimTransport over `faults` — the deterministic
  /// default every existing test runs on.
  net::Transport* transport = nullptr;
  /// When set, this overlay instance hosts ONLY `local_node`: it arms timers
  /// for, applies deliveries to, and tracks state of just that node, and
  /// trusts the transport to reach the others (process-per-node deployment).
  /// Unset (default) hosts every tree member in-process.
  std::optional<NodeId> local_node;
};

/// See file comment. The overlay/predicted/classes objects must outlive it.
/// The anchor tree may mutate between resync_membership() calls (churn);
/// every host id must stay < predicted->size() (the matrix is the id
/// universe, the tree the current membership).
class AsyncOverlay {
 public:
  AsyncOverlay(const AnchorTree* overlay, const DistanceMatrix* predicted,
               const BandwidthClasses* classes, AsyncOverlayOptions options,
               std::uint64_t seed);
  ~AsyncOverlay();  // out-of-line: owned_transport_ is an incomplete type here

  /// Schedules every node's first gossip timer on `engine` and installs the
  /// fault plan's crash/recover schedule. The engine must outlive this
  /// object; timers re-arm until the node crashes or leaves.
  void start(EventEngine& engine);

  /// Convenience: start (if needed) and simulate `duration` seconds.
  void run_for(EventEngine& engine, double duration);

  // -- Fault handling (normally driven by the FaultPlan's crash schedule or
  //    a ChurnDriver, but callable directly by tests).

  /// Stops `x`: cancels its gossip timer, wipes its tables (cold crash).
  /// Inbound messages to a down node are dropped.
  void crash(NodeId x);
  /// Restarts `x` with empty tables; its gossip refills them.
  void recover(NodeId x);
  bool is_down(NodeId x) const { return down_.count(x) != 0; }
  std::size_t down_count() const { return down_.size(); }

  /// Re-reads membership and neighbor sets from the anchor tree after
  /// join/leave churn; see file comment.
  void resync_membership();

  /// Schedules an immediate off-period gossip round for each given host
  /// (unknown and down hosts are skipped; each round re-arms the node's
  /// regular timer, so the per-node gossip chain stays single). Callers that
  /// just repaired distances or membership — the streaming re-clustering
  /// pipeline after a FrameworkMaintainer::refresh_dirty — use this to
  /// propagate the repair now instead of waiting out the gossip period.
  /// Returns the number of rounds scheduled.
  std::size_t trigger_gossip(std::span<const NodeId> hosts);

  // -- Introspection.
  const OverlayNodeMap& nodes() const { return nodes_; }
  std::size_t gossip_rounds() const { return rounds_; }
  /// Simulation time of the last state-changing delivery (0 if none).
  SimTime last_change() const { return last_change_; }
  /// Simulation time `x` last applied a state-changing update (0 if never,
  /// reset by crash and departure) — the per-node staleness anchor the
  /// ConvergenceMonitor samples.
  SimTime last_update(NodeId x) const {
    auto it = last_update_.find(x);
    return it == last_update_.end() ? 0.0 : it->second;
  }
  /// True when `x` currently suspects `peer` (missed-ack threshold hit and
  /// no successful exchange since).
  bool suspects(NodeId x, NodeId peer) const;
  /// Total (node, suspected neighbor) pairs right now.
  std::size_t suspected_count() const;
  /// Exchanges whose ack is still outstanding.
  std::size_t inflight_exchanges() const { return pending_ack_.size(); }
  /// No crashed nodes and no suspected links: gossip is undisrupted. The
  /// serving layer uses this to flag snapshots taken mid-disruption as
  /// degraded (see serve/snapshot.h).
  bool healthy() const { return down_.empty() && suspected_count() == 0; }

 private:
  struct LinkState {
    std::size_t consecutive_failures = 0;
    bool suspected = false;
  };

  bool local_mode() const { return options_.local_node.has_value(); }
  void on_delivery(const net::Delivery& d);
  void on_exchange(const net::Delivery& d);
  void on_ack_frame(const net::Delivery& d);
  void gossip(NodeId x);
  void start_exchange(NodeId x, NodeId v, std::size_t attempt);
  void on_ack(NodeId x, NodeId v, std::uint64_t exchange);
  void on_ack_timeout(NodeId x, NodeId v, std::uint64_t exchange,
                      std::size_t attempt);
  void arm_timer(NodeId x, double delay);
  void cancel_timer(NodeId x);
  double latency(NodeId from, NodeId to) const;
  double ack_timeout_for(NodeId x, NodeId v) const;

  const AnchorTree* overlay_;
  const DistanceMatrix* predicted_;
  const BandwidthClasses* classes_;
  AsyncOverlayOptions options_;
  Rng rng_;
  OverlayNodeMap nodes_;
  bool started_ = false;
  EventEngine* engine_ = nullptr;  // set by start()
  /// Built by start() when options_.transport is null (the sim default).
  std::unique_ptr<net::SimTransport> owned_transport_;
  net::Transport* transport_ = nullptr;  // owned_transport_ or injected
  std::size_t rounds_ = 0;
  SimTime last_change_ = 0.0;
  /// Per-node time of the last applied (state-changing) delivery.
  std::unordered_map<NodeId, SimTime> last_update_;

  std::unordered_map<NodeId, TimerId> gossip_timer_;
  std::unordered_set<NodeId> down_;
  /// links_[x][v]: x's ack bookkeeping about neighbor v.
  std::unordered_map<NodeId, std::unordered_map<NodeId, LinkState>> links_;
  std::uint64_t next_exchange_ = 0;
  /// exchange id -> ack-timeout timer (cancelled when the ack arrives).
  std::unordered_map<std::uint64_t, TimerId> pending_ack_;
};

}  // namespace bcc
