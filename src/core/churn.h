// ChurnDriver — wires FrameworkMaintainer::join/leave into the event
// engine, so membership churn happens *during* an asynchronous gossip run
// instead of between runs (the §I "hosts come and go" requirement under the
// event-driven simulator).
//
// Each scheduled event, when it fires, (1) applies the join/leave to the
// FrameworkMaintainer — which repairs the anchor tree, transparently
// rejoining any overlay descendants of a departed host — and then
// (2) calls AsyncOverlay::resync_membership() so the running gossip
// protocols pick up the repaired tree: departed hosts are purged, rejoined
// and new hosts get fresh timers, and the protocols re-converge on the
// surviving membership (chaos tests assert the post-churn fixpoint equals
// the synchronous ground truth on the survivors).
//
// Contract: the AsyncOverlay must have been constructed over the
// maintainer's anchor tree (`&maintainer->anchors()`) and a predicted
// matrix that stays valid across churn. On a perfect tree metric the
// measurement matrix itself qualifies — maintenance.h guarantees every
// alive pair stays exactly embedded after any join/leave sequence — which
// is how the chaos tests use it. Under embedding noise the caller is
// responsible for refreshing predictions after churn.
#pragma once

#include "core/async_overlay.h"
#include "tree/maintenance.h"

namespace bcc {

/// One membership change at simulated time `at`.
struct ChurnEvent {
  SimTime at = 0.0;
  enum class Kind { kJoin, kLeave } kind = Kind::kJoin;
  NodeId host = 0;

  static ChurnEvent join(SimTime at, NodeId host) {
    return {at, Kind::kJoin, host};
  }
  static ChurnEvent leave(SimTime at, NodeId host) {
    return {at, Kind::kLeave, host};
  }
};

/// See file comment. The maintainer and overlay must outlive the driver,
/// and the driver must outlive the engine run (event handlers call back
/// into it).
class ChurnDriver {
 public:
  ChurnDriver(FrameworkMaintainer* maintainer, AsyncOverlay* overlay);

  /// Schedules `events` on the overlay's engine. The overlay must already
  /// be started (it owns the engine binding the events run against).
  void schedule(EventEngine& engine, const std::vector<ChurnEvent>& events);

  /// Events whose join/leave actually changed membership (joins of present
  /// hosts and leaves of absent hosts are counted as skipped instead).
  std::size_t applied() const { return applied_; }
  std::size_t skipped() const { return skipped_; }
  /// Forced rejoins the maintainer performed repairing departures.
  std::size_t rejoins() const { return maintainer_->rejoins(); }

 private:
  void apply(const ChurnEvent& event);

  FrameworkMaintainer* maintainer_;
  AsyncOverlay* overlay_;
  std::size_t applied_ = 0;
  std::size_t skipped_ = 0;
};

}  // namespace bcc
