#include "core/churn.h"

namespace bcc {

ChurnDriver::ChurnDriver(FrameworkMaintainer* maintainer,
                         AsyncOverlay* overlay)
    : maintainer_(maintainer), overlay_(overlay) {
  BCC_REQUIRE(maintainer_ != nullptr && overlay_ != nullptr);
}

void ChurnDriver::schedule(EventEngine& engine,
                           const std::vector<ChurnEvent>& events) {
  for (const ChurnEvent& event : events) {
    BCC_REQUIRE(event.at >= engine.now());
    engine.schedule_at(event.at, [this, event] { apply(event); });
  }
}

void ChurnDriver::apply(const ChurnEvent& event) {
  if (event.kind == ChurnEvent::Kind::kJoin) {
    if (maintainer_->contains(event.host)) {
      ++skipped_;
      return;
    }
    maintainer_->join(event.host);
  } else {
    // Never drain the overlay completely: gossip over an empty membership
    // is meaningless and the maintainer requires a non-empty framework.
    if (!maintainer_->contains(event.host) || maintainer_->size() <= 1) {
      ++skipped_;
      return;
    }
    maintainer_->leave(event.host);
  }
  ++applied_;
  overlay_->resync_membership();
}

}  // namespace bcc
