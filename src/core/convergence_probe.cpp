#include "core/convergence_probe.h"

#include <algorithm>

#include "core/system.h"

namespace bcc {

namespace {

/// Self-rescheduling sampling tick. Copy semantics on purpose: each firing
/// copies itself into the next timer closure, so no shared_ptr cycle keeps
/// the engine's queue alive and cancellation is never needed — the chain
/// simply stops re-arming past `until`.
struct SamplingTick {
  EventEngine* engine;
  obs::ConvergenceMonitor* monitor;
  double period;
  double until;

  void operator()() const {
    monitor->sample();
    if (engine->now() + period <= until + 1e-9) {
      engine->schedule_after(period, *this);
    }
  }
};

}  // namespace

ConvergenceProbe::ConvergenceProbe(const AsyncOverlay* overlay,
                                   const AnchorTree* tree,
                                   const DistanceMatrix* predicted,
                                   const BandwidthClasses* classes,
                                   std::size_t n_cut,
                                   const EventEngine* engine)
    : overlay_(overlay),
      tree_(tree),
      predicted_(predicted),
      classes_(classes),
      n_cut_(n_cut),
      engine_(engine) {
  BCC_REQUIRE(overlay_ != nullptr);
  BCC_REQUIRE(tree_ != nullptr);
  BCC_REQUIRE(predicted_ != nullptr);
  BCC_REQUIRE(classes_ != nullptr);
  BCC_REQUIRE(engine_ != nullptr);
}

void ConvergenceProbe::refresh_reference_if_stale() {
  std::vector<NodeId> members = tree_->bfs_order();
  if (!reference_.empty() && members == ref_members_) return;
  SystemOptions options;
  options.n_cut = n_cut_;
  DecentralizedClusterSystem sync(*tree_, *predicted_, *classes_, options);
  sync.run_to_convergence();
  reference_ = sync.nodes();
  ref_members_ = std::move(members);
}

bool ConvergenceProbe::node_matches_reference(NodeId x,
                                              const OverlayNode& actual) const {
  auto ref_it = reference_.find(x);
  if (ref_it == reference_.end()) return false;
  const OverlayNode& ref = ref_it->second;
  auto sorted = [](std::vector<NodeId> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  for (NodeId m : ref.neighbors) {
    auto a_node = actual.aggr_node.find(m);
    if (a_node == actual.aggr_node.end() ||
        sorted(a_node->second) != sorted(ref.aggr_node.at(m))) {
      return false;
    }
    auto a_crt = actual.aggr_crt.find(m);
    if (a_crt == actual.aggr_crt.end() ||
        a_crt->second != ref.aggr_crt.at(m)) {
      return false;
    }
  }
  auto a_self = actual.aggr_crt.find(x);
  return a_self != actual.aggr_crt.end() &&
         a_self->second == ref.aggr_crt.at(x);
}

obs::ConvergenceSample ConvergenceProbe::sample() {
  refresh_reference_if_stale();
  obs::ConvergenceSample s;
  s.now = engine_->now();
  s.suspected_links = overlay_->suspected_count();
  s.down_nodes = overlay_->down_count();
  for (NodeId x : ref_members_) {
    obs::NodeHealth h;
    h.id = static_cast<std::uint64_t>(x);
    // last_update == 0 means "never applied anything": stale since t=0.
    h.staleness = s.now - overlay_->last_update(x);
    auto it = overlay_->nodes().find(x);
    h.matches_reference = !overlay_->is_down(x) &&
                          it != overlay_->nodes().end() &&
                          node_matches_reference(x, it->second);
    s.nodes.push_back(h);
  }
  return s;
}

obs::ConvergenceMonitor::Sampler ConvergenceProbe::sampler() {
  return [this] { return sample(); };
}

void ConvergenceProbe::schedule_sampling(EventEngine& engine,
                                         obs::ConvergenceMonitor& monitor,
                                         double period, double until) {
  BCC_REQUIRE(period > 0.0);
  engine.schedule_after(period, SamplingTick{&engine, &monitor, period, until});
}

}  // namespace bcc
