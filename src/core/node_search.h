// Single-node search — the paper's first future-work item (§VI): "for a
// given set of multiple nodes, find a single node that has high bandwidth
// with all the nodes in the input set".
//
// Formally: given targets T ⊆ V, find x ∈ V \ T maximizing
//   min_{t ∈ T} BW(x, t)   ⇔   minimizing   max_{t ∈ T} d(x, t)
// (a 1-center restricted to existing nodes). Both a centralized scan and a
// bounded-radius variant (all candidates within a bandwidth floor) are
// provided; the decentralized system exposes it over per-node clustering
// spaces via examples/node_search.cpp.
#pragma once

#include <optional>
#include <span>

#include "metric/bandwidth.h"
#include "metric/distance_matrix.h"

namespace bcc {

struct NodeSearchResult {
  NodeId node = 0;
  double max_distance = 0.0;  // max_{t in T} d(node, t)
  /// Equivalent min-bandwidth under the rational transform.
  double min_bandwidth(double c = kDefaultTransformC) const {
    return distance_to_bandwidth(max_distance, c);
  }
};

/// Best single node among `universe` \ `targets` for the target set.
/// nullopt if every universe node is a target. Requires targets nonempty.
std::optional<NodeSearchResult> find_best_node(
    const DistanceMatrix& d, std::span<const NodeId> universe,
    std::span<const NodeId> targets);

/// All non-target nodes whose max distance to the targets is <= l (i.e.
/// min bandwidth >= C/l), best-first.
std::vector<NodeSearchResult> find_nodes_within(
    const DistanceMatrix& d, std::span<const NodeId> universe,
    std::span<const NodeId> targets, double l);

}  // namespace bcc
