#include "core/partition.h"

#include <algorithm>
#include <unordered_set>

#include "common/assert.h"

namespace bcc {

Partition partition_into_clusters(const DistanceMatrix& d,
                                  std::span<const NodeId> universe, double l,
                                  const PartitionOptions& options) {
  BCC_REQUIRE(options.min_cluster_size >= 2);
  BCC_REQUIRE(l >= 0.0);
  for (NodeId x : universe) BCC_REQUIRE(x < d.size());

  Partition partition;
  std::vector<NodeId> remaining(universe.begin(), universe.end());
  while (remaining.size() >= options.min_cluster_size) {
    if (options.max_clusters != 0 &&
        partition.clusters.size() >= options.max_clusters) {
      break;
    }
    Cluster c = max_cluster(d, remaining, l);
    if (c.size() < options.min_cluster_size) break;
    std::unordered_set<NodeId> taken(c.begin(), c.end());
    std::erase_if(remaining, [&](NodeId h) { return taken.count(h) > 0; });
    partition.clusters.push_back(std::move(c));
  }
  partition.stragglers = std::move(remaining);
  return partition;
}

}  // namespace bcc
