// Binds the layer-neutral obs::ConvergenceMonitor to a live AsyncOverlay:
// produces ConvergenceSamples by comparing every node's aggregate tables
// against the exact synchronous fixpoint over the overlay's *current*
// membership (the same ground truth the chaos suite asserts against).
//
// The reference fixpoint is computed lazily and cached: it is rebuilt only
// when membership changes (the anchor tree's BFS order differs from the one
// the cache was built for), so steady-state sampling costs one table
// comparison per node, and a churn event costs one synchronous
// run_to_convergence over the new membership.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/async_overlay.h"
#include "obs/convergence.h"

namespace bcc {

/// See file comment. All pointers are non-owning and must outlive the probe;
/// `overlay`/`tree`/`predicted`/`classes` are the same objects the
/// AsyncOverlay runs over (the tree may mutate through churn between
/// samples).
class ConvergenceProbe {
 public:
  ConvergenceProbe(const AsyncOverlay* overlay, const AnchorTree* tree,
                   const DistanceMatrix* predicted,
                   const BandwidthClasses* classes, std::size_t n_cut,
                   const EventEngine* engine);

  /// One pull: per-node staleness + fixpoint match, suspicion and outage
  /// counts, stamped with the engine's current simulated time.
  obs::ConvergenceSample sample();

  /// The same, bound for a ConvergenceMonitor.
  obs::ConvergenceMonitor::Sampler sampler();

  /// Schedules monitor.sample() every `period` simulated seconds, starting
  /// at now + period, until `until`. The monitor must outlive the engine
  /// run.
  static void schedule_sampling(EventEngine& engine,
                                obs::ConvergenceMonitor& monitor,
                                double period, double until);

 private:
  void refresh_reference_if_stale();
  bool node_matches_reference(NodeId x, const OverlayNode& actual) const;

  const AsyncOverlay* overlay_;
  const AnchorTree* tree_;
  const DistanceMatrix* predicted_;
  const BandwidthClasses* classes_;
  std::size_t n_cut_;
  const EventEngine* engine_;

  std::vector<NodeId> ref_members_;  ///< membership the cache was built for
  std::unordered_map<NodeId, OverlayNode> reference_;  ///< exact fixpoint
};

}  // namespace bcc
