#include "core/system.h"

#include <algorithm>

#include "obs/metrics.h"

namespace bcc {

namespace {

obs::Counter& g_refresh_full() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.core.refresh_full");
  return c;
}
obs::Counter& g_refresh_delta() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.core.refresh_delta");
  return c;
}

}  // namespace

DecentralizedClusterSystem::DecentralizedClusterSystem(AnchorTree overlay,
                                                       DistanceMatrix predicted,
                                                       BandwidthClasses classes,
                                                       SystemOptions options)
    : overlay_(std::move(overlay)), predicted_(std::move(predicted)),
      classes_(std::move(classes)), options_(options) {
  // The matrix is the id universe; the tree may cover a subset of its ids
  // (e.g. the survivors of a churned membership, keyed by global host id).
  BCC_REQUIRE(overlay_.size() >= 1);
  BCC_REQUIRE(overlay_.size() <= predicted_.size());
  for (NodeId h : overlay_.bfs_order()) {
    BCC_REQUIRE(h < predicted_.size());
  }
  nodes_ = make_overlay_nodes(overlay_);
  node_info_ = std::make_shared<NodeInfoAggregation>(
      &nodes_, &predicted_, options_.n_cut, &engine_.metrics());
  crt_ = std::make_shared<CrtAggregation>(&nodes_, &predicted_, &classes_,
                                          &engine_.metrics());
  engine_.add_protocol(node_info_);
  engine_.add_protocol(crt_);
}

std::size_t DecentralizedClusterSystem::cycle_budget() const {
  if (options_.max_cycles > 0) return options_.max_cycles;
  // Information crosses the overlay in diameter hops; one extra cycle
  // rebuilds CRTs from final spaces, one more detects the fixpoint.
  // Node-info and CRT converge sequentially in the worst case.
  return 2 * overlay_.diameter() + 4;
}

std::size_t DecentralizedClusterSystem::run_to_convergence() {
  return engine_.run(cycle_budget());
}

bool DecentralizedClusterSystem::converged() const {
  return node_info_->converged() && crt_->converged();
}

QueryResult DecentralizedClusterSystem::query(
    const QueryRequest& request) const {
  QueryProcessor processor(nodes_, predicted_, classes_,
                           options_.find_options);
  QueryResult result = processor.run(request);
  // Serving before the gossip fixpoint is best-effort, never "exact".
  result.degraded = !converged();
  return result;
}

std::size_t DecentralizedClusterSystem::refresh(DistanceMatrix new_predicted) {
  BCC_REQUIRE(new_predicted.size() == predicted_.size());
  predicted_ = std::move(new_predicted);
  node_info_->reset_convergence();
  crt_->reset_convergence();
  g_refresh_full().add(1);
  return engine_.run(cycle_budget());
}

std::vector<NodeId> DecentralizedClusterSystem::resync_overlay(
    const AnchorTree& overlay) {
  BCC_REQUIRE(overlay.size() == overlay_.size());
  std::vector<NodeId> touched;
  for (NodeId x : overlay.bfs_order()) {
    auto it = nodes_.find(x);
    BCC_REQUIRE(it != nodes_.end());  // same membership, different edges
    OverlayNode& node = it->second;
    std::vector<NodeId> next = overlay.neighbors_of(x);
    std::sort(next.begin(), next.end());
    std::vector<NodeId> prev = node.neighbors;
    std::sort(prev.begin(), prev.end());
    if (prev == next) continue;
    touched.push_back(x);
    // Prune dropped directions; entries for new neighbors appear when their
    // first message commits (the missing-entry check forces recomputation).
    for (NodeId old_neighbor : prev) {
      if (!std::binary_search(next.begin(), next.end(), old_neighbor)) {
        node.aggr_node.erase(old_neighbor);
        node.aggr_crt.erase(old_neighbor);
      }
    }
    node.neighbors = overlay.neighbors_of(x);
  }
  overlay_ = overlay;
  return touched;
}

bool DecentralizedClusterSystem::apply_delta(DistanceMatrix new_predicted,
                                             std::span<const NodeId> repaired,
                                             const AnchorTree* new_overlay) {
  BCC_REQUIRE(new_predicted.size() == predicted_.size());
  predicted_ = std::move(new_predicted);
  const double fraction = nodes_.empty()
                              ? 1.0
                              : static_cast<double>(repaired.size()) /
                                    static_cast<double>(nodes_.size());
  if (fraction > options_.full_refresh_threshold) {
    if (new_overlay != nullptr) {
      BCC_REQUIRE(new_overlay->size() == overlay_.size());
      overlay_ = *new_overlay;
      nodes_ = make_overlay_nodes(overlay_);  // protocols point at nodes_
    }
    node_info_->reset_convergence();
    crt_->reset_convergence();
    g_refresh_full().add(1);
    return false;
  }
  if (new_overlay != nullptr) {
    std::vector<NodeId> touched = resync_overlay(*new_overlay);
    node_info_->mark_changed(touched);
    crt_->mark_changed(touched);
  }
  node_info_->mark_dirty(repaired);
  crt_->mark_dirty(repaired);
  g_refresh_delta().add(1);
  return true;
}

std::size_t DecentralizedClusterSystem::refresh_delta(
    DistanceMatrix new_predicted, std::span<const NodeId> repaired,
    const AnchorTree* new_overlay) {
  apply_delta(std::move(new_predicted), repaired, new_overlay);
  return engine_.run(cycle_budget());
}

std::string DecentralizedClusterSystem::canonical_dump() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  std::string dump;
  for (NodeId id : ids) {
    dump += canonical_node_state(id, nodes_.at(id));
  }
  return dump;
}

std::size_t DecentralizedClusterSystem::messages_recomputed() const {
  return node_info_->messages_recomputed() + crt_->messages_recomputed();
}

std::size_t DecentralizedClusterSystem::messages_reused() const {
  return node_info_->messages_reused() + crt_->messages_reused();
}

const OverlayNode& DecentralizedClusterSystem::node(NodeId id) const {
  auto it = nodes_.find(id);
  BCC_REQUIRE(it != nodes_.end());
  return it->second;
}

}  // namespace bcc
