#include "core/system.h"

namespace bcc {

DecentralizedClusterSystem::DecentralizedClusterSystem(AnchorTree overlay,
                                                       DistanceMatrix predicted,
                                                       BandwidthClasses classes,
                                                       SystemOptions options)
    : overlay_(std::move(overlay)), predicted_(std::move(predicted)),
      classes_(std::move(classes)), options_(options) {
  // The matrix is the id universe; the tree may cover a subset of its ids
  // (e.g. the survivors of a churned membership, keyed by global host id).
  BCC_REQUIRE(overlay_.size() >= 1);
  BCC_REQUIRE(overlay_.size() <= predicted_.size());
  for (NodeId h : overlay_.bfs_order()) {
    BCC_REQUIRE(h < predicted_.size());
  }
  nodes_ = make_overlay_nodes(overlay_);
  node_info_ = std::make_shared<NodeInfoAggregation>(
      &nodes_, &predicted_, options_.n_cut, &engine_.metrics());
  crt_ = std::make_shared<CrtAggregation>(&nodes_, &predicted_, &classes_,
                                          &engine_.metrics());
  engine_.add_protocol(node_info_);
  engine_.add_protocol(crt_);
}

std::size_t DecentralizedClusterSystem::cycle_budget() const {
  if (options_.max_cycles > 0) return options_.max_cycles;
  // Information crosses the overlay in diameter hops; one extra cycle
  // rebuilds CRTs from final spaces, one more detects the fixpoint.
  // Node-info and CRT converge sequentially in the worst case.
  return 2 * overlay_.diameter() + 4;
}

std::size_t DecentralizedClusterSystem::run_to_convergence() {
  return engine_.run(cycle_budget());
}

bool DecentralizedClusterSystem::converged() const {
  return node_info_->converged() && crt_->converged();
}

QueryResult DecentralizedClusterSystem::query(
    const QueryRequest& request) const {
  QueryProcessor processor(nodes_, predicted_, classes_,
                           options_.find_options);
  QueryResult result = processor.run(request);
  // Serving before the gossip fixpoint is best-effort, never "exact".
  result.degraded = !converged();
  return result;
}

std::size_t DecentralizedClusterSystem::refresh(DistanceMatrix new_predicted) {
  BCC_REQUIRE(new_predicted.size() == predicted_.size());
  predicted_ = std::move(new_predicted);
  node_info_->reset_convergence();
  crt_->reset_convergence();
  return engine_.run(cycle_budget());
}

const OverlayNode& DecentralizedClusterSystem::node(NodeId id) const {
  auto it = nodes_.find(id);
  BCC_REQUIRE(it != nodes_.end());
  return it->second;
}

}  // namespace bcc
