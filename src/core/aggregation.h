// The two background gossip mechanisms of the decentralized clustering
// system (paper §III.B.2–3), implemented as synchronous sim Protocols:
//
//   * NodeInfoAggregation — Algorithm 2 (DynAggrNodeInfo): every cycle each
//     node m sends to each neighbor x the n_cut nodes closest to x among
//     {m} ∪ m's aggregates from its other neighbors. At the fixpoint
//     x.aggrNode[m] is exactly the n_cut nodes closest to x among all nodes
//     reachable from x via m (Theorem 3.2).
//
//   * CrtAggregation — Algorithm 3 (DynAggrMaxCluster): every cycle each
//     node m recomputes the maximum cluster size per distance class over its
//     own clustering space V_m (the self CRT entry) and sends each neighbor
//     x the elementwise maximum over {m} ∪ m's other directions. At the
//     fixpoint x.aggrCRT[m][l] is the largest cluster any node reachable via
//     m can locally build at class l (Theorem 3.3).
//
// Both protocols double-buffer: all cycle-t messages are computed from
// cycle-(t−1) state, matching PeerSim's synchronous cycle semantics. Each
// converges once a full cycle changes nothing; information needs at most
// (overlay diameter) cycles to cross the tree.
#pragma once

#include <unordered_map>

#include "core/bandwidth_classes.h"
#include "core/overlay_node.h"
#include "sim/engine.h"
#include "tree/anchor_tree.h"

namespace bcc {

/// Creates one OverlayNode per host with neighbors from the anchor tree and
/// empty tables.
OverlayNodeMap make_overlay_nodes(const AnchorTree& overlay);

// -- Message computations shared by the synchronous (cycle) and
//    asynchronous (event-driven) engines. Each reads only the sender's
//    committed state, exactly what a real node would put on the wire.

/// Algorithm 2's propNode from m to x: the n_cut nodes closest to x among
/// {m} ∪ m's aggregates from its other neighbors (ties by id).
std::vector<NodeId> compute_prop_node(const OverlayNodeMap& nodes,
                                      const DistanceMatrix& predicted,
                                      std::size_t n_cut, NodeId m, NodeId x);

/// Algorithm 3's self entry for node x: max cluster size per distance class
/// over x's clustering space.
std::vector<std::size_t> compute_self_crt(const OverlayNodeMap& nodes,
                                          const DistanceMatrix& predicted,
                                          const BandwidthClasses& classes,
                                          NodeId x);

/// Algorithm 3's propCRT from m to x: elementwise max over {m's self entry}
/// ∪ {m's directions except x}. m's self entry must be present.
std::vector<std::size_t> compute_prop_crt(const OverlayNodeMap& nodes,
                                          std::size_t class_count, NodeId m,
                                          NodeId x);

/// Algorithm 2 as a synchronous protocol. See file comment.
class NodeInfoAggregation : public Protocol {
 public:
  NodeInfoAggregation(OverlayNodeMap* nodes, const DistanceMatrix* predicted,
                      std::size_t n_cut, MessageMetrics* metrics);

  void execute_cycle(std::size_t cycle) override;
  bool converged() const override { return converged_; }
  std::string name() const override { return "DynAggrNodeInfo"; }

  /// Forgets the fixpoint flag so gossip resumes (dynamic clustering).
  void reset_convergence() { converged_ = false; }

  /// The message m propagates to its neighbor x this cycle (from committed
  /// state). Exposed for unit tests.
  std::vector<NodeId> propagate(NodeId m, NodeId x) const;

 private:
  OverlayNodeMap* nodes_;
  const DistanceMatrix* predicted_;
  std::size_t n_cut_;
  MessageMetrics* metrics_;
  bool converged_ = false;
};

/// Algorithm 3 as a synchronous protocol. See file comment.
class CrtAggregation : public Protocol {
 public:
  CrtAggregation(OverlayNodeMap* nodes, const DistanceMatrix* predicted,
                 const BandwidthClasses* classes, MessageMetrics* metrics);

  void execute_cycle(std::size_t cycle) override;
  bool converged() const override { return converged_; }
  std::string name() const override { return "DynAggrMaxCluster"; }

  /// Forgets the fixpoint flag and the self-entry cache so gossip resumes
  /// against possibly-changed predicted distances (dynamic clustering).
  void reset_convergence() {
    converged_ = false;
    self_cache_.clear();
  }

  /// The CRT vector m propagates to neighbor x this cycle (self entry must
  /// be current). Exposed for unit tests.
  std::vector<std::size_t> propagate(NodeId m, NodeId x) const;

 private:
  void refresh_self_entries();

  OverlayNodeMap* nodes_;
  const DistanceMatrix* predicted_;
  const BandwidthClasses* classes_;
  MessageMetrics* metrics_;
  bool converged_ = false;
  /// Memoizes each node's (clustering space -> per-class max sizes): the
  /// O(|V_x|^3) Algorithm 1 pass only reruns when the space changed, which
  /// stops happening once Algorithm 2 converges.
  std::unordered_map<NodeId,
                     std::pair<std::vector<NodeId>, std::vector<std::size_t>>>
      self_cache_;
};

}  // namespace bcc
