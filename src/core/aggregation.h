// The two background gossip mechanisms of the decentralized clustering
// system (paper §III.B.2–3), implemented as synchronous sim Protocols:
//
//   * NodeInfoAggregation — Algorithm 2 (DynAggrNodeInfo): every cycle each
//     node m sends to each neighbor x the n_cut nodes closest to x among
//     {m} ∪ m's aggregates from its other neighbors. At the fixpoint
//     x.aggrNode[m] is exactly the n_cut nodes closest to x among all nodes
//     reachable from x via m (Theorem 3.2).
//
//   * CrtAggregation — Algorithm 3 (DynAggrMaxCluster): every cycle each
//     node m recomputes the maximum cluster size per distance class over its
//     own clustering space V_m (the self CRT entry) and sends each neighbor
//     x the elementwise maximum over {m} ∪ m's other directions. At the
//     fixpoint x.aggrCRT[m][l] is the largest cluster any node reachable via
//     m can locally build at class l (Theorem 3.3).
//
// Both protocols double-buffer: all cycle-t messages are computed from
// cycle-(t−1) state, matching PeerSim's synchronous cycle semantics. Each
// converges once a full cycle changes nothing; information needs at most
// (overlay diameter) cycles to cross the tree.
//
// Incremental repair (mark_dirty): when only a few predicted distances
// change — FrameworkMaintainer::refresh_dirty repaired a small host set R —
// re-running from the old fixpoint instead of from scratch converges to the
// *same* fixpoint (per-direction message dependencies follow simple tree
// paths away from the receiver, so the dependency graph is acyclic and the
// fixpoint is unique for a given tree + distances). The delta path exploits
// this by memoizing messages: a message m→x is only recomputed when its
// inputs could have changed — its sender's tables changed last cycle, or
// (on the first cycle after mark_dirty) the pair's distances could have
// moved because x, m, or one of m's candidates is in R. Everything else is
// provably identical to a recomputation and is reused, so a disturbance
// touching k of n hosts re-gossips only the affected subtree.
#pragma once

#include <span>
#include <unordered_map>
#include <unordered_set>

#include "core/bandwidth_classes.h"
#include "core/overlay_node.h"
#include "sim/engine.h"
#include "tree/anchor_tree.h"

namespace bcc {

/// Creates one OverlayNode per host with neighbors from the anchor tree and
/// empty tables.
OverlayNodeMap make_overlay_nodes(const AnchorTree& overlay);

// -- Message computations shared by the synchronous (cycle) and
//    asynchronous (event-driven) engines. Each reads only the sender's
//    committed state, exactly what a real node would put on the wire.

/// Algorithm 2's propNode from m to x: the n_cut nodes closest to x among
/// {m} ∪ m's aggregates from its other neighbors (ties by id).
std::vector<NodeId> compute_prop_node(const OverlayNodeMap& nodes,
                                      const DistanceMatrix& predicted,
                                      std::size_t n_cut, NodeId m, NodeId x);

/// Algorithm 3's self entry for node x: max cluster size per distance class
/// over x's clustering space.
std::vector<std::size_t> compute_self_crt(const OverlayNodeMap& nodes,
                                          const DistanceMatrix& predicted,
                                          const BandwidthClasses& classes,
                                          NodeId x);

/// Algorithm 3's propCRT from m to x: elementwise max over {m's self entry}
/// ∪ {m's directions except x}. m's self entry must be present.
std::vector<std::size_t> compute_prop_crt(const OverlayNodeMap& nodes,
                                          std::size_t class_count, NodeId m,
                                          NodeId x);

/// Algorithm 2 as a synchronous protocol. See file comment.
class NodeInfoAggregation : public Protocol {
 public:
  NodeInfoAggregation(OverlayNodeMap* nodes, const DistanceMatrix* predicted,
                      std::size_t n_cut, MessageMetrics* metrics);

  void execute_cycle(std::size_t cycle) override;
  bool converged() const override { return converged_; }
  std::string name() const override { return "DynAggrNodeInfo"; }

  /// Forgets the fixpoint flag so gossip resumes with every message
  /// recomputed (dynamic clustering, full refresh).
  void reset_convergence();

  /// Resumes gossip in delta mode after an incremental repair: only
  /// messages whose inputs could have changed are recomputed (see file
  /// comment). Contract: every predicted-distance pair that changed since
  /// the last fixpoint has at least one end in `repaired`. Repeated calls
  /// before the next run accumulate.
  void mark_dirty(std::span<const NodeId> repaired);

  /// Records that `hosts` had their tables changed outside the protocol —
  /// an overlay resync pruned directions after a tree repair — so their
  /// outgoing messages are recomputed on the next cycle even in delta mode.
  void mark_changed(std::span<const NodeId> hosts);

  /// Messages recomputed / reused since construction (the delta path's
  /// work-saving evidence; full cycles only ever recompute).
  std::size_t messages_recomputed() const { return recomputed_; }
  std::size_t messages_reused() const { return reused_; }

  /// The message m propagates to its neighbor x this cycle (from committed
  /// state). Exposed for unit tests.
  std::vector<NodeId> propagate(NodeId m, NodeId x) const;

 private:
  /// True when the stored value of message m→x may differ from a fresh
  /// recomputation (delta mode only).
  bool message_dirty(NodeId m, NodeId x) const;

  OverlayNodeMap* nodes_;
  const DistanceMatrix* predicted_;
  std::size_t n_cut_;
  MessageMetrics* metrics_;
  bool converged_ = false;
  bool delta_mode_ = false;
  bool delta_first_cycle_ = false;
  std::unordered_set<NodeId> dirty_;    // repaired hosts (predicted changed)
  std::unordered_set<NodeId> changed_;  // nodes whose tables changed at the
                                        // last commit
  std::size_t recomputed_ = 0;
  std::size_t reused_ = 0;
};

/// Algorithm 3 as a synchronous protocol. See file comment.
class CrtAggregation : public Protocol {
 public:
  CrtAggregation(OverlayNodeMap* nodes, const DistanceMatrix* predicted,
                 const BandwidthClasses* classes, MessageMetrics* metrics);

  void execute_cycle(std::size_t cycle) override;
  bool converged() const override { return converged_; }
  std::string name() const override { return "DynAggrMaxCluster"; }

  /// Forgets the fixpoint flag and the self-entry cache so gossip resumes
  /// against possibly-changed predicted distances (dynamic clustering).
  void reset_convergence();

  /// Resumes gossip in delta mode after an incremental repair: self-entry
  /// cache entries whose clustering space intersects `repaired` are
  /// invalidated (their internal distances may have moved); messages are
  /// recomputed only when the sender's self entry or incoming tables
  /// changed. Same contract as NodeInfoAggregation::mark_dirty.
  void mark_dirty(std::span<const NodeId> repaired);

  /// See NodeInfoAggregation::mark_changed.
  void mark_changed(std::span<const NodeId> hosts);

  std::size_t messages_recomputed() const { return recomputed_; }
  std::size_t messages_reused() const { return reused_; }

  /// The CRT vector m propagates to neighbor x this cycle (self entry must
  /// be current). Exposed for unit tests.
  std::vector<std::size_t> propagate(NodeId m, NodeId x) const;

 private:
  /// Refreshes every node's self CRT entry; fills `self_changed` with the
  /// nodes whose entry differs from the previous cycle.
  void refresh_self_entries(std::unordered_set<NodeId>* self_changed);

  OverlayNodeMap* nodes_;
  const DistanceMatrix* predicted_;
  const BandwidthClasses* classes_;
  MessageMetrics* metrics_;
  bool converged_ = false;
  bool delta_mode_ = false;
  /// Nodes whose aggr_crt gained changed *incoming* entries at the last
  /// commit (self changes are tracked per cycle in refresh_self_entries).
  std::unordered_set<NodeId> incoming_changed_;
  std::size_t recomputed_ = 0;
  std::size_t reused_ = 0;
  /// Memoizes each node's (clustering space -> per-class max sizes): the
  /// O(|V_x|^3) Algorithm 1 pass only reruns when the space changed, which
  /// stops happening once Algorithm 2 converges.
  std::unordered_map<NodeId,
                     std::pair<std::vector<NodeId>, std::vector<std::size_t>>>
      self_cache_;
};

}  // namespace bcc
