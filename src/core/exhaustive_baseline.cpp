#include "core/exhaustive_baseline.h"

#include <algorithm>

#include "common/assert.h"

namespace bcc {
namespace {

struct SearchState {
  const DistanceMatrix* d;
  double l;
  std::size_t k;
  std::size_t budget;  // 0 = unlimited
  std::size_t expansions = 0;
  bool out_of_budget = false;
  Cluster chosen;
  Cluster found;

  bool spend() {
    ++expansions;
    if (budget != 0 && expansions > budget) {
      out_of_budget = true;
      return false;
    }
    return true;
  }

  /// Depth-first: extend `chosen` using candidates[idx..]; candidates are
  /// pairwise-compatible with everything in `chosen`.
  bool search(const std::vector<NodeId>& candidates, std::size_t idx) {
    if (chosen.size() == k) {
      found = chosen;
      return true;
    }
    if (!spend()) return false;
    // Bound: not enough candidates left to reach k.
    if (chosen.size() + (candidates.size() - idx) < k) return false;
    for (std::size_t i = idx; i < candidates.size(); ++i) {
      const NodeId v = candidates[i];
      // Filter the remaining candidates by compatibility with v.
      std::vector<NodeId> next;
      next.reserve(candidates.size() - i);
      for (std::size_t j = i + 1; j < candidates.size(); ++j) {
        if (d->at(v, candidates[j]) <= l) next.push_back(candidates[j]);
      }
      chosen.push_back(v);
      if (search(next, 0)) return true;
      chosen.pop_back();
      if (out_of_budget) return false;
    }
    return false;
  }
};

}  // namespace

ExhaustiveResult find_cluster_exhaustive(const DistanceMatrix& d,
                                         std::span<const NodeId> universe,
                                         std::size_t k, double l,
                                         const ExhaustiveOptions& options) {
  BCC_REQUIRE(k >= 2);
  BCC_REQUIRE(l >= 0.0);
  for (NodeId x : universe) BCC_REQUIRE(x < d.size());

  ExhaustiveResult result;
  if (universe.size() < k) return result;

  SearchState state{&d, l, k, options.budget, 0, false, {}, {}};
  // Order candidates by degree in the thresholded graph, densest first —
  // the standard heuristic that makes feasible instances resolve quickly.
  std::vector<std::pair<std::size_t, NodeId>> by_degree;
  by_degree.reserve(universe.size());
  for (NodeId u : universe) {
    std::size_t degree = 0;
    for (NodeId v : universe) {
      if (v != u && d.at(u, v) <= l) ++degree;
    }
    by_degree.emplace_back(degree, u);
  }
  std::sort(by_degree.begin(), by_degree.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<NodeId> candidates;
  candidates.reserve(universe.size());
  for (const auto& [degree, u] : by_degree) {
    if (degree + 1 >= k) candidates.push_back(u);  // else can never be in one
  }

  if (state.search(candidates, 0)) {
    result.cluster = state.found;
  }
  result.exhausted_budget = state.out_of_budget;
  result.expansions = state.expansions;
  return result;
}

}  // namespace bcc
