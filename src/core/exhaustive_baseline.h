// Budgeted exhaustive clustering — the SWORD-style baseline of §V.
//
// SWORD [19] answers resource queries by exhaustive search over candidate
// groups and "stops searching when timeout expires"; the paper contrasts
// this with Algorithm 1's polynomial-time guarantee inside a tree metric.
// This module implements that baseline faithfully enough to measure the
// contrast: a branch-and-bound k-clique search on the *raw* (no embedding)
// thresholded graph, capped by an exploration budget. With an unlimited
// budget it is an exact (exponential) oracle; with a small budget it gives
// up on hard instances — exactly the failure mode the paper criticizes.
#pragma once

#include <optional>
#include <span>

#include "metric/distance_matrix.h"

namespace bcc {

struct ExhaustiveOptions {
  /// Search-node expansions allowed before giving up. 0 = unlimited.
  std::size_t budget = 100000;
};

/// Result of a budgeted run.
struct ExhaustiveResult {
  std::optional<Cluster> cluster;  // a valid (k, l) cluster if one was found
  bool exhausted_budget = false;   // true if the search was cut short
  std::size_t expansions = 0;      // work actually performed
};

/// Searches for k nodes of `universe` with pairwise distance <= l by
/// branch-and-bound over the thresholded graph. Requires k >= 2.
/// If `exhausted_budget` is false and no cluster is returned, none exists.
ExhaustiveResult find_cluster_exhaustive(const DistanceMatrix& d,
                                         std::span<const NodeId> universe,
                                         std::size_t k, double l,
                                         const ExhaustiveOptions& options = {});

}  // namespace bcc
