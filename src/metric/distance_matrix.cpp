#include "metric/distance_matrix.h"

#include <algorithm>
#include <cmath>

namespace bcc {

DistanceMatrix::DistanceMatrix(std::size_t n, double fill)
    : n_(n), tri_(n < 2 ? 0 : n * (n - 1) / 2, fill) {
  BCC_REQUIRE(fill >= 0.0);
}

DistanceMatrix DistanceMatrix::from_rows(
    const std::vector<std::vector<double>>& rows, double tolerance) {
  const std::size_t n = rows.size();
  for (const auto& row : rows) BCC_REQUIRE(row.size() == n);
  DistanceMatrix m(n);
  for (NodeId u = 0; u < n; ++u) {
    BCC_REQUIRE(std::abs(rows[u][u]) <= tolerance);
    for (NodeId v = 0; v < u; ++v) {
      BCC_REQUIRE(std::abs(rows[u][v] - rows[v][u]) <= tolerance);
      m.set(u, v, 0.5 * (rows[u][v] + rows[v][u]));
    }
  }
  return m;
}

void DistanceMatrix::set(NodeId u, NodeId v, double value) {
  BCC_REQUIRE(u < n_ && v < n_ && u != v);
  BCC_REQUIRE(value >= 0.0);
  tri_[tri_index(u, v)] = value;
}

double DistanceMatrix::max_distance() const {
  double best = 0.0;
  for (double v : tri_) best = std::max(best, v);
  return best;
}

double DistanceMatrix::min_distance() const {
  if (tri_.empty()) return 0.0;
  double best = tri_[0];
  for (double v : tri_) best = std::min(best, v);
  return best;
}

double DistanceMatrix::diameter_of(std::span<const NodeId> subset) const {
  double diam = 0.0;
  for (std::size_t i = 0; i < subset.size(); ++i) {
    for (std::size_t j = i + 1; j < subset.size(); ++j) {
      diam = std::max(diam, at(subset[i], subset[j]));
    }
  }
  return diam;
}

DistanceMatrix DistanceMatrix::submatrix(std::span<const NodeId> subset) const {
  DistanceMatrix out(subset.size());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    BCC_REQUIRE(subset[i] < n_);
    for (std::size_t j = i + 1; j < subset.size(); ++j) {
      out.set(i, j, at(subset[i], subset[j]));
    }
  }
  return out;
}

bool DistanceMatrix::satisfies_triangle_inequality(double slack) const {
  for (NodeId u = 0; u < n_; ++u) {
    for (NodeId v = 0; v < n_; ++v) {
      if (v == u) continue;
      const double duv = at(u, v);
      for (NodeId w = v + 1; w < n_; ++w) {
        if (w == u) continue;
        if (at(v, w) > duv + at(u, w) + slack) return false;
      }
    }
  }
  return true;
}

std::vector<double> DistanceMatrix::pair_values() const { return tri_; }

std::vector<std::vector<double>> DistanceMatrix::to_rows() const {
  std::vector<std::vector<double>> rows(n_, std::vector<double>(n_, 0.0));
  for (NodeId u = 0; u < n_; ++u) {
    for (NodeId v = 0; v < u; ++v) {
      rows[u][v] = rows[v][u] = at(u, v);
    }
  }
  return rows;
}

}  // namespace bcc
