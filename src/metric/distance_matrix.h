// Dense symmetric distance matrices — the finite metric spaces every
// algorithm in bcc operates on.
//
// A DistanceMatrix stores the lower triangle of an n×n symmetric matrix with
// zero diagonal.  It is the concrete representation of a metric space (V, d)
// with V = {0, …, n−1}; whether the stored values actually satisfy metric /
// tree-metric axioms is checked by the predicates below, not enforced by the
// container (real measurement data violates them, and the paper's algorithms
// must run on such data anyway).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/assert.h"

namespace bcc {

using NodeId = std::size_t;

/// A cluster is a set of nodes, stored as a vector of metric-space ids.
using Cluster = std::vector<NodeId>;

/// Symmetric n×n matrix of doubles with a fixed zero diagonal.
class DistanceMatrix {
 public:
  DistanceMatrix() = default;

  /// n×n matrix, all off-diagonal entries initialised to `fill`.
  explicit DistanceMatrix(std::size_t n, double fill = 0.0);

  /// Builds from a full row-major square matrix; requires symmetry within
  /// `tolerance` (entries are averaged) and a zero diagonal within tolerance.
  static DistanceMatrix from_rows(const std::vector<std::vector<double>>& rows,
                                  double tolerance = 1e-9);

  std::size_t size() const { return n_; }

  /// d(u, v). d(u, u) == 0 by construction.
  double at(NodeId u, NodeId v) const {
    BCC_REQUIRE(u < n_ && v < n_);
    if (u == v) return 0.0;
    return tri_[tri_index(u, v)];
  }

  /// Sets d(u, v) = d(v, u) = value. Requires u != v and value >= 0.
  void set(NodeId u, NodeId v, double value);

  /// max over all pairs.
  double max_distance() const;
  /// min over all off-diagonal pairs; 0 for n < 2.
  double min_distance() const;

  /// diam(S) = max_{u,v in S} d(u,v); 0 for |S| < 2.
  double diameter_of(std::span<const NodeId> subset) const;

  /// The principal submatrix induced by `subset` (order preserved).
  DistanceMatrix submatrix(std::span<const NodeId> subset) const;

  /// True if the triangle inequality holds for all triples within `slack`
  /// (d(u,w) <= d(u,v) + d(v,w) + slack). O(n^3).
  bool satisfies_triangle_inequality(double slack = 1e-9) const;

  /// All off-diagonal values (each unordered pair once), unsorted.
  std::vector<double> pair_values() const;

  /// Full row-major representation (for CSV export).
  std::vector<std::vector<double>> to_rows() const;

 private:
  std::size_t tri_index(NodeId u, NodeId v) const {
    if (u < v) std::swap(u, v);
    // row u, column v with v < u  ->  u*(u-1)/2 + v
    return u * (u - 1) / 2 + v;
  }

  std::size_t n_ = 0;
  std::vector<double> tri_;  // lower triangle, row by row
};

}  // namespace bcc
