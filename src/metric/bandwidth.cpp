#include "metric/bandwidth.h"

#include <algorithm>
#include <cmath>

namespace bcc {

BandwidthMatrix::BandwidthMatrix(std::size_t n, double fill)
    : n_(n), tri_(n < 2 ? 0 : n * (n - 1) / 2, fill) {
  BCC_REQUIRE(fill > 0.0);
}

BandwidthMatrix BandwidthMatrix::symmetrized_from_rows(
    const std::vector<std::vector<double>>& rows) {
  const std::size_t n = rows.size();
  for (const auto& row : rows) BCC_REQUIRE(row.size() == n);
  BandwidthMatrix m(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < u; ++v) {
      BCC_REQUIRE(rows[u][v] > 0.0 && rows[v][u] > 0.0);
      m.set(u, v, 0.5 * (rows[u][v] + rows[v][u]));
    }
  }
  return m;
}

void BandwidthMatrix::set(NodeId u, NodeId v, double value) {
  BCC_REQUIRE(u < n_ && v < n_ && u != v);
  BCC_REQUIRE(value > 0.0);
  tri_[tri_index(u, v)] = value;
}

std::vector<double> BandwidthMatrix::pair_values() const { return tri_; }

double BandwidthMatrix::percentile(double p) const {
  BCC_REQUIRE(p >= 0.0 && p <= 100.0);
  BCC_REQUIRE(!tri_.empty());
  std::vector<double> sorted = tri_;
  std::sort(sorted.begin(), sorted.end());
  // Linear interpolation between closest ranks.
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

DistanceMatrix BandwidthMatrix::to_distance(double c) const {
  return rational_transform(*this, c);
}

std::vector<std::vector<double>> BandwidthMatrix::to_rows() const {
  std::vector<std::vector<double>> rows(
      n_, std::vector<double>(n_, std::numeric_limits<double>::infinity()));
  for (NodeId u = 0; u < n_; ++u) {
    for (NodeId v = 0; v < u; ++v) {
      rows[u][v] = rows[v][u] = at(u, v);
    }
  }
  return rows;
}

double bandwidth_to_distance(double bw, double c) {
  BCC_REQUIRE(c > 0.0);
  BCC_REQUIRE(bw > 0.0);
  if (std::isinf(bw)) return 0.0;
  return c / bw;
}

double distance_to_bandwidth(double d, double c) {
  BCC_REQUIRE(c > 0.0);
  BCC_REQUIRE(d >= 0.0);
  if (d == 0.0) return std::numeric_limits<double>::infinity();
  return c / d;
}

DistanceMatrix rational_transform(const BandwidthMatrix& bw, double c) {
  DistanceMatrix d(bw.size());
  for (NodeId u = 0; u < bw.size(); ++u) {
    for (NodeId v = 0; v < u; ++v) {
      d.set(u, v, bandwidth_to_distance(bw.at(u, v), c));
    }
  }
  return d;
}

DistanceMatrix linear_transform(const BandwidthMatrix& bw, double c,
                                double floor) {
  BCC_REQUIRE(c > 0.0 && floor > 0.0);
  DistanceMatrix d(bw.size());
  for (NodeId u = 0; u < bw.size(); ++u) {
    for (NodeId v = u + 1; v < bw.size(); ++v) {
      d.set(u, v, std::max(floor, c - bw.at(u, v)));
    }
  }
  return d;
}

DistanceMatrix linear_transform_auto(const BandwidthMatrix& bw, double* c_out) {
  BCC_REQUIRE(bw.size() >= 2);
  double max_bw = 0.0;
  for (double v : bw.pair_values()) max_bw = std::max(max_bw, v);
  const double c = 1.01 * max_bw;
  if (c_out) *c_out = c;
  return linear_transform(bw, c);
}

double linear_distance_to_bandwidth(double d, double c, double floor) {
  BCC_REQUIRE(c > 0.0 && floor > 0.0);
  BCC_REQUIRE(d >= 0.0);
  return std::max(floor, c - d);
}

BandwidthMatrix inverse_rational_transform(const DistanceMatrix& d, double c) {
  BandwidthMatrix bw(d.size());
  for (NodeId u = 0; u < d.size(); ++u) {
    for (NodeId v = 0; v < u; ++v) {
      BCC_REQUIRE(d.at(u, v) > 0.0);
      bw.set(u, v, distance_to_bandwidth(d.at(u, v), c));
    }
  }
  return bw;
}

}  // namespace bcc
