// The four-point condition (4PC) and quartet-based treeness measures
// (paper §II.A, §II.C, §IV.C; Abraham et al. [1], Ramasubramanian et al. [21]).
//
// For any four points w,x,y,z of a metric space, form the three pair-sums
//   d(w,x)+d(y,z),  d(w,y)+d(x,z),  d(w,z)+d(x,y)
// and sort them s1 <= s2 <= s3.  The metric is a tree metric iff s2 == s3 for
// every quartet (Buneman's theorem).  The per-quartet violation
//   epsilon = (s3 - s2) / (2 * max pairwise distance within the quartet)
// is 0 iff 4PC holds for the quartet and is scale-free (multiplying all
// distances by a constant leaves it unchanged).  The exact normalization
// differs between [1] and [21] (which divide by a per-pair distance); we
// normalize by the quartet's largest distance for numerical stability on
// quartets containing near-coincident points — orderings of datasets by
// treeness are insensitive to the choice (see DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "metric/distance_matrix.h"

namespace bcc {

/// Violation of 4PC for one quartet; 0 iff the quartet satisfies 4PC.
/// Degenerate quartets (all relevant distances 0) report 0.
double quartet_epsilon(const DistanceMatrix& d, NodeId w, NodeId x, NodeId y,
                       NodeId z);

/// True if the quartet satisfies 4PC within `slack`.
bool quartet_satisfies_4pc(const DistanceMatrix& d, NodeId w, NodeId x,
                           NodeId y, NodeId z, double slack = 1e-9);

/// True if every quartet satisfies 4PC within `slack`. O(n^4) — intended for
/// tests and small matrices.
bool is_tree_metric(const DistanceMatrix& d, double slack = 1e-9);

/// Summary of sampled quartet epsilons over a metric space.
struct TreenessStats {
  double epsilon_avg = 0.0;    // mean quartet epsilon (the paper's ε_avg)
  double epsilon_max = 0.0;
  std::size_t quartets = 0;    // number of quartets inspected
};

/// Estimates ε_avg by sampling quartets.  If C(n,4) <= max_samples all
/// quartets are enumerated exactly; otherwise `max_samples` quartets are
/// sampled uniformly at random with the supplied generator.
TreenessStats estimate_treeness(const DistanceMatrix& d, Rng& rng,
                                std::size_t max_samples = 100000);

/// The paper's bounded transform ε* = 1 − 1/(1+ε)  (§IV.C), mapping
/// [0,∞) → [0,1).
double epsilon_star(double epsilon_avg);

}  // namespace bcc
