#include "metric/four_point.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace bcc {
namespace {

/// The three pair-sums of a quartet (ascending) plus the largest pairwise
/// distance among the six.
struct QuartetSums {
  double s1, s2, s3;
  double d_max;
};

QuartetSums quartet_sums(const DistanceMatrix& d, NodeId w, NodeId x, NodeId y,
                         NodeId z) {
  const double dwx = d.at(w, x), dyz = d.at(y, z);
  const double dwy = d.at(w, y), dxz = d.at(x, z);
  const double dwz = d.at(w, z), dxy = d.at(x, y);
  std::array<double, 3> sums = {dwx + dyz, dwy + dxz, dwz + dxy};
  std::sort(sums.begin(), sums.end());
  const double d_max = std::max({dwx, dyz, dwy, dxz, dwz, dxy});
  return QuartetSums{sums[0], sums[1], sums[2], d_max};
}

}  // namespace

double quartet_epsilon(const DistanceMatrix& d, NodeId w, NodeId x, NodeId y,
                       NodeId z) {
  const QuartetSums q = quartet_sums(d, w, x, y, z);
  const double gap = q.s3 - q.s2;
  if (gap <= 0.0 || q.d_max <= 0.0) return 0.0;  // 4PC holds / degenerate
  return gap / (2.0 * q.d_max);
}

bool quartet_satisfies_4pc(const DistanceMatrix& d, NodeId w, NodeId x,
                           NodeId y, NodeId z, double slack) {
  const QuartetSums q = quartet_sums(d, w, x, y, z);
  return q.s3 - q.s2 <= slack;
}

bool is_tree_metric(const DistanceMatrix& d, double slack) {
  const std::size_t n = d.size();
  for (NodeId w = 0; w < n; ++w) {
    for (NodeId x = w + 1; x < n; ++x) {
      for (NodeId y = x + 1; y < n; ++y) {
        for (NodeId z = y + 1; z < n; ++z) {
          if (!quartet_satisfies_4pc(d, w, x, y, z, slack)) return false;
        }
      }
    }
  }
  return true;
}

TreenessStats estimate_treeness(const DistanceMatrix& d, Rng& rng,
                                std::size_t max_samples) {
  const std::size_t n = d.size();
  TreenessStats stats;
  if (n < 4) return stats;

  // Exact count of quartets, saturating to avoid overflow for large n.
  double total_quartets = static_cast<double>(n) * static_cast<double>(n - 1) *
                          static_cast<double>(n - 2) *
                          static_cast<double>(n - 3) / 24.0;

  double sum = 0.0;
  if (total_quartets <= static_cast<double>(max_samples)) {
    for (NodeId w = 0; w < n; ++w) {
      for (NodeId x = w + 1; x < n; ++x) {
        for (NodeId y = x + 1; y < n; ++y) {
          for (NodeId z = y + 1; z < n; ++z) {
            const double eps = quartet_epsilon(d, w, x, y, z);
            sum += eps;
            stats.epsilon_max = std::max(stats.epsilon_max, eps);
            ++stats.quartets;
          }
        }
      }
    }
  } else {
    while (stats.quartets < max_samples) {
      auto ids = rng.sample_indices(n, 4);
      const double eps = quartet_epsilon(d, ids[0], ids[1], ids[2], ids[3]);
      sum += eps;
      stats.epsilon_max = std::max(stats.epsilon_max, eps);
      ++stats.quartets;
    }
  }
  stats.epsilon_avg = stats.quartets ? sum / static_cast<double>(stats.quartets) : 0.0;
  return stats;
}

double epsilon_star(double epsilon_avg) {
  BCC_REQUIRE(epsilon_avg >= 0.0);
  return 1.0 - 1.0 / (1.0 + epsilon_avg);
}

}  // namespace bcc
