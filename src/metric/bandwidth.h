// Bandwidth matrices and the rational transform between bandwidth and
// distance (paper §II.B).
//
// Bandwidth is "bigger is better"; metric-space algorithms want "smaller is
// closer".  The paper bridges the two with the rational transform
//     d(u,v) = C / BW(u,v),        BW(u,v) = C / d(u,v)
// for a positive constant C.  A bandwidth constraint b maps to a distance
// (diameter) constraint l = C / b.
#pragma once

#include <limits>
#include <vector>

#include "metric/distance_matrix.h"

namespace bcc {

/// Default transform constant. Any positive value works; all conversions take
/// it as a parameter so datasets with different units can pick their own.
inline constexpr double kDefaultTransformC = 1000.0;

/// Symmetric matrix of pairwise bandwidth values (Mbps by convention).
/// BW(u,u) is treated as +infinity (a node has unbounded bandwidth to
/// itself), which makes the induced distance d(u,u) = 0.
class BandwidthMatrix {
 public:
  BandwidthMatrix() = default;

  /// n×n matrix with all off-diagonal bandwidths set to `fill` (> 0).
  explicit BandwidthMatrix(std::size_t n, double fill = 1.0);

  /// Symmetrizes an asymmetric full matrix by averaging forward/reverse
  /// directions, exactly as the paper preprocesses both PlanetLab datasets.
  /// All off-diagonal entries must be positive.
  static BandwidthMatrix symmetrized_from_rows(
      const std::vector<std::vector<double>>& rows);

  std::size_t size() const { return n_; }

  double at(NodeId u, NodeId v) const {
    BCC_REQUIRE(u < n_ && v < n_);
    if (u == v) return std::numeric_limits<double>::infinity();
    return tri_[tri_index(u, v)];
  }

  /// Sets BW(u,v) = BW(v,u) = value. Requires u != v and value > 0.
  void set(NodeId u, NodeId v, double value);

  /// All off-diagonal bandwidths (each unordered pair once).
  std::vector<double> pair_values() const;

  /// The p-th percentile (p in [0,100]) of pairwise bandwidth.
  double percentile(double p) const;

  /// Rational transform to a distance matrix: d = C / BW.
  DistanceMatrix to_distance(double c = kDefaultTransformC) const;

  std::vector<std::vector<double>> to_rows() const;

 private:
  std::size_t tri_index(NodeId u, NodeId v) const {
    if (u < v) std::swap(u, v);
    return u * (u - 1) / 2 + v;
  }

  std::size_t n_ = 0;
  std::vector<double> tri_;
};

/// d = C / bw. Requires bw > 0 (use BandwidthMatrix::at which returns +inf on
/// the diagonal; C / inf == 0 is handled explicitly).
double bandwidth_to_distance(double bw, double c = kDefaultTransformC);

/// bw = C / d. Requires d > 0; d == 0 maps to +infinity.
double distance_to_bandwidth(double d, double c = kDefaultTransformC);

/// Builds a distance matrix from a bandwidth matrix (d = C / BW).
DistanceMatrix rational_transform(const BandwidthMatrix& bw,
                                  double c = kDefaultTransformC);

/// The *linear* transform d = C − BW that prior coordinate systems tried for
/// bandwidth and that the paper reports as a poor fit (§V) — kept as a
/// baseline so the claim is reproducible (see bench/ablation_transform).
/// Requires c > BW for every pair; distances are clamped to `floor` > 0.
DistanceMatrix linear_transform(const BandwidthMatrix& bw, double c,
                                double floor = 1e-6);

/// linear_transform with c chosen automatically as 1.01 × max pair BW.
DistanceMatrix linear_transform_auto(const BandwidthMatrix& bw,
                                     double* c_out = nullptr);

/// Inverse of the linear transform: BW = C − d (clamped to be positive).
double linear_distance_to_bandwidth(double d, double c, double floor = 1e-6);

/// Inverse: builds a bandwidth matrix from a distance matrix (BW = C / d).
/// Off-diagonal zero distances are rejected.
BandwidthMatrix inverse_rational_transform(const DistanceMatrix& d,
                                           double c = kDefaultTransformC);

}  // namespace bcc
