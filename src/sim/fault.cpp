#include "sim/fault.h"

#include <algorithm>

#include "obs/metrics.h"

namespace bcc {

namespace {

// Lifecycle counters for propagated trace contexts (bcc.trace.*): they
// account for every context handed to a traced send — injected = dropped +
// delivered (+ one extra delivery per duplicated) — which is what the
// propagation tests use to prove contexts are neither leaked nor invented.
obs::Counter& g_ctx_injected() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.trace.contexts_injected");
  return c;
}
obs::Counter& g_ctx_delivered() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.trace.contexts_delivered");
  return c;
}
obs::Counter& g_ctx_dropped() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.trace.contexts_dropped");
  return c;
}
obs::Counter& g_ctx_duplicated() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.trace.contexts_duplicated");
  return c;
}

std::pair<NodeId, NodeId> link_key(NodeId a, NodeId b) {
  return {std::min(a, b), std::max(a, b)};
}

void validate(const LinkFaults& f) {
  BCC_REQUIRE(f.drop_prob >= 0.0 && f.drop_prob <= 1.0);
  BCC_REQUIRE(f.duplicate_prob >= 0.0 && f.duplicate_prob <= 1.0);
  BCC_REQUIRE(f.jitter_max >= 0.0);
}

}  // namespace

FaultPlan::FaultPlan(std::uint64_t seed) : rng_(seed) {}

void FaultPlan::set_default_faults(LinkFaults faults) {
  validate(faults);
  default_faults_ = faults;
}

void FaultPlan::set_link_faults(NodeId a, NodeId b, LinkFaults faults) {
  validate(faults);
  link_faults_[link_key(a, b)] = faults;
}

void FaultPlan::add_partition(std::vector<NodeId> side_a,
                              std::vector<NodeId> side_b, SimTime from,
                              SimTime until) {
  BCC_REQUIRE(from <= until);
  partitions_.push_back(
      Partition{std::move(side_a), std::move(side_b), from, until});
}

void FaultPlan::add_crash(NodeId node, SimTime down_at, SimTime up_at) {
  BCC_REQUIRE(down_at < up_at);
  crash_windows_[node].push_back(CrashWindow{down_at, up_at});
  crashes_.emplace_back(node, CrashWindow{down_at, up_at});
}

bool FaultPlan::is_down(NodeId node, SimTime t) const {
  auto it = crash_windows_.find(node);
  if (it == crash_windows_.end()) return false;
  for (const CrashWindow& w : it->second) {
    if (t >= w.down_at && t < w.up_at) return true;
  }
  return false;
}

bool FaultPlan::is_cut(NodeId from, NodeId to, SimTime t) const {
  auto contains = [](const std::vector<NodeId>& side, NodeId h) {
    return std::find(side.begin(), side.end(), h) != side.end();
  };
  for (const Partition& p : partitions_) {
    if (t < p.from || t >= p.until) continue;
    if ((contains(p.side_a, from) && contains(p.side_b, to)) ||
        (contains(p.side_a, to) && contains(p.side_b, from))) {
      return true;
    }
  }
  return false;
}

const LinkFaults& FaultPlan::faults_on(NodeId a, NodeId b) const {
  auto it = link_faults_.find(link_key(a, b));
  return it == link_faults_.end() ? default_faults_ : it->second;
}

FaultPlan::Decision FaultPlan::decide(NodeId from, NodeId to,
                                      SimTime send_time) {
  Decision d;
  if (is_cut(from, to, send_time)) {
    d.deliver = false;
    return d;
  }
  const LinkFaults& f = faults_on(from, to);
  // Fixed draw order keeps runs reproducible across configurations that
  // share a seed: drop, then duplication, then jitter for each live copy.
  if (f.drop_prob > 0.0 && rng_.chance(f.drop_prob)) {
    d.deliver = false;
    return d;
  }
  if (f.duplicate_prob > 0.0 && rng_.chance(f.duplicate_prob)) {
    d.duplicate = true;
  }
  if (f.jitter_max > 0.0) {
    d.extra_delay = rng_.uniform(0.0, f.jitter_max);
    if (d.duplicate) d.dup_extra_delay = rng_.uniform(0.0, f.jitter_max);
  }
  return d;
}

FaultyChannel::FaultyChannel(EventEngine* engine, FaultPlan* plan)
    : engine_(engine), plan_(plan) {
  BCC_REQUIRE(engine_ != nullptr);
}

void FaultyChannel::send(NodeId from, NodeId to, double latency,
                         std::function<void()> on_deliver) {
  BCC_REQUIRE(latency >= 0.0);
  BCC_REQUIRE(on_deliver != nullptr);
  if (plan_ == nullptr) {
    engine_->schedule_after(latency, std::move(on_deliver));
    return;
  }
  // A sender that is down cannot put anything on the wire. Protocols
  // normally stop a crashed node's timers, so this is belt and braces.
  if (plan_->is_down(from, engine_->now())) {
    engine_->metrics().count_dropped();
    return;
  }
  const FaultPlan::Decision d = plan_->decide(from, to, engine_->now());
  if (!d.deliver) {
    engine_->metrics().count_dropped();
    return;
  }
  auto deliver_guarded = [engine = engine_, plan = plan_, to,
                          deliver = std::move(on_deliver)] {
    // Crashed receivers lose in-flight inbound messages.
    if (plan->is_down(to, engine->now())) {
      engine->metrics().count_dropped();
      return;
    }
    deliver();
  };
  if (d.duplicate) {
    engine_->metrics().count_duplicated();
    engine_->schedule_after(latency + d.dup_extra_delay, deliver_guarded);
  }
  engine_->schedule_after(latency + d.extra_delay, std::move(deliver_guarded));
}

void FaultyChannel::send(NodeId from, NodeId to, double latency,
                         obs::TraceContext trace, TracedHandler on_deliver) {
  BCC_REQUIRE(latency >= 0.0);
  BCC_REQUIRE(on_deliver != nullptr);
  const bool traced = trace.valid();
  if (traced) g_ctx_injected().add(1);
  if (plan_ == nullptr) {
    engine_->schedule_after(latency, [trace, deliver = std::move(on_deliver)] {
      if (trace.valid()) g_ctx_delivered().add(1);
      deliver(trace);
    });
    return;
  }
  if (plan_->is_down(from, engine_->now())) {
    engine_->metrics().count_dropped();
    if (traced) g_ctx_dropped().add(1);
    return;
  }
  const FaultPlan::Decision d = plan_->decide(from, to, engine_->now());
  if (!d.deliver) {
    engine_->metrics().count_dropped();
    // The context dies with the message — a plain value in a discarded
    // closure, nothing to free, nothing dangling.
    if (traced) g_ctx_dropped().add(1);
    return;
  }
  auto deliver_guarded = [engine = engine_, plan = plan_, to, trace,
                          deliver = std::move(on_deliver)] {
    if (plan->is_down(to, engine->now())) {
      engine->metrics().count_dropped();
      if (trace.valid()) g_ctx_dropped().add(1);
      return;
    }
    if (trace.valid()) g_ctx_delivered().add(1);
    deliver(trace);
  };
  if (d.duplicate) {
    engine_->metrics().count_duplicated();
    if (traced) g_ctx_duplicated().add(1);
    engine_->schedule_after(latency + d.dup_extra_delay, deliver_guarded);
  }
  engine_->schedule_after(latency + d.extra_delay, std::move(deliver_guarded));
}

}  // namespace bcc
