// Message accounting for the simulated protocols: how many messages and
// bytes the decentralized mechanisms exchange (used by the n_cut ablation —
// the paper's §III.B.2 claims the n_cut limit "controls a messaging workload
// in a distributed system", which the ablation quantifies).
//
// Categories are taken as std::string_view and looked up through a
// transparent comparator, so the per-message hot path (record() runs for
// every simulated message of every gossip cycle) allocates a std::string
// only the first time a category is seen, never per message.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace bcc {

/// Per-category message/byte counters, plus fault-event counters filled in
/// by the fault-injection layer (sim/fault.h) and the resilient gossip path
/// (core/async_overlay): messages dropped by the lossy channel or a crashed
/// receiver, duplicated deliveries, sender retries after ack timeouts, and
/// peers marked suspected after consecutive missed acks.
///
/// The counters live on the obs substrate: each instance holds its own
/// obs::Counter per fault kind (the accessors below are thin wrappers over
/// Counter::value(), keeping the pre-obs API intact), and every record /
/// count_* call additionally bumps the process-wide totals in
/// obs::Registry::global() (`bcc.sim.messages`, `bcc.sim.bytes`,
/// `bcc.sim.faults_*`) so exporters see gossip traffic without having to
/// find every Engine/EventEngine instance.
class MessageMetrics {
 public:
  MessageMetrics();

  /// Records one message of `bytes` payload under `category`.
  void record(std::string_view category, std::size_t bytes);

  std::size_t messages(std::string_view category) const;
  std::size_t bytes(std::string_view category) const;

  std::size_t total_messages() const;
  std::size_t total_bytes() const;

  // -- Fault events (see file comment). Thin wrappers over the re-homed
  //    obs counters; per-instance values, global registry mirrored.
  void count_dropped();
  void count_duplicated();
  void count_retried();
  void count_suspected();

  std::size_t dropped() const {
    return static_cast<std::size_t>(dropped_.value());
  }
  std::size_t duplicated() const {
    return static_cast<std::size_t>(duplicated_.value());
  }
  std::size_t retried() const {
    return static_cast<std::size_t>(retried_.value());
  }
  std::size_t suspected() const {
    return static_cast<std::size_t>(suspected_.value());
  }

  /// Resets this instance's counters (the global registry totals are
  /// cumulative across instances and are not touched).
  void reset();

 private:
  struct Counter {
    std::size_t messages = 0;
    std::size_t bytes = 0;
  };
  // std::less<> enables heterogeneous find with string_view keys.
  std::map<std::string, Counter, std::less<>> counters_;
  obs::Counter dropped_;
  obs::Counter duplicated_;
  obs::Counter retried_;
  obs::Counter suspected_;
};

}  // namespace bcc
