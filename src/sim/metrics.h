// Message accounting for the simulated protocols: how many messages and
// bytes the decentralized mechanisms exchange (used by the n_cut ablation —
// the paper's §III.B.2 claims the n_cut limit "controls a messaging workload
// in a distributed system", which the ablation quantifies).
//
// Categories are taken as std::string_view and looked up through a
// transparent comparator, so the per-message hot path (record() runs for
// every simulated message of every gossip cycle) allocates a std::string
// only the first time a category is seen, never per message.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace bcc {

/// Per-category message/byte counters, plus fault-event counters filled in
/// by the fault-injection layer (sim/fault.h) and the resilient gossip path
/// (core/async_overlay): messages dropped by the lossy channel or a crashed
/// receiver, duplicated deliveries, sender retries after ack timeouts, and
/// peers marked suspected after consecutive missed acks.
class MessageMetrics {
 public:
  /// Records one message of `bytes` payload under `category`.
  void record(std::string_view category, std::size_t bytes);

  std::size_t messages(std::string_view category) const;
  std::size_t bytes(std::string_view category) const;

  std::size_t total_messages() const;
  std::size_t total_bytes() const;

  // -- Fault events (see file comment).
  void count_dropped() { ++dropped_; }
  void count_duplicated() { ++duplicated_; }
  void count_retried() { ++retried_; }
  void count_suspected() { ++suspected_; }

  std::size_t dropped() const { return dropped_; }
  std::size_t duplicated() const { return duplicated_; }
  std::size_t retried() const { return retried_; }
  std::size_t suspected() const { return suspected_; }

  void reset();

 private:
  struct Counter {
    std::size_t messages = 0;
    std::size_t bytes = 0;
  };
  // std::less<> enables heterogeneous find with string_view keys.
  std::map<std::string, Counter, std::less<>> counters_;
  std::size_t dropped_ = 0;
  std::size_t duplicated_ = 0;
  std::size_t retried_ = 0;
  std::size_t suspected_ = 0;
};

}  // namespace bcc
