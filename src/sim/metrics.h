// Message accounting for the simulated protocols: how many messages and
// bytes the decentralized mechanisms exchange (used by the n_cut ablation —
// the paper's §III.B.2 claims the n_cut limit "controls a messaging workload
// in a distributed system", which the ablation quantifies).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace bcc {

/// Per-category message/byte counters.
class MessageMetrics {
 public:
  /// Records one message of `bytes` payload under `category`.
  void record(const std::string& category, std::size_t bytes);

  std::size_t messages(const std::string& category) const;
  std::size_t bytes(const std::string& category) const;

  std::size_t total_messages() const;
  std::size_t total_bytes() const;

  void reset();

 private:
  struct Counter {
    std::size_t messages = 0;
    std::size_t bytes = 0;
  };
  std::map<std::string, Counter> counters_;
};

}  // namespace bcc
