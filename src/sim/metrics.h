// Message accounting for the simulated protocols: how many messages and
// bytes the decentralized mechanisms exchange (used by the n_cut ablation —
// the paper's §III.B.2 claims the n_cut limit "controls a messaging workload
// in a distributed system", which the ablation quantifies).
//
// Categories are taken as std::string_view and looked up through a
// transparent comparator, so the per-message hot path (record() runs for
// every simulated message of every gossip cycle) allocates a std::string
// only the first time a category is seen, never per message.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace bcc {

/// Per-category message/byte counters.
class MessageMetrics {
 public:
  /// Records one message of `bytes` payload under `category`.
  void record(std::string_view category, std::size_t bytes);

  std::size_t messages(std::string_view category) const;
  std::size_t bytes(std::string_view category) const;

  std::size_t total_messages() const;
  std::size_t total_bytes() const;

  void reset();

 private:
  struct Counter {
    std::size_t messages = 0;
    std::size_t bytes = 0;
  };
  // std::less<> enables heterogeneous find with string_view keys.
  std::map<std::string, Counter, std::less<>> counters_;
};

}  // namespace bcc
