// Event-driven simulation engine — the analogue of PeerSim's event-driven
// mode, complementing the cycle-driven Engine. Real deployments do not run
// in lockstep: nodes fire timers with jitter and messages arrive after
// network latency. The asynchronous gossip protocols (core/async_overlay)
// run on this engine, and tests verify they reach the *same* fixpoints as
// their synchronous counterparts.
//
// Determinism: events at equal timestamps are delivered in scheduling
// order (a monotonic sequence number breaks ties), so runs are exactly
// reproducible for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/assert.h"
#include "sim/metrics.h"

namespace bcc {

using SimTime = double;

/// Priority-queue scheduler of timed callbacks.
class EventEngine {
 public:
  using Handler = std::function<void()>;

  SimTime now() const { return now_; }
  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::size_t events_processed() const { return processed_; }

  /// Schedules `handler` at absolute time t (>= now).
  void schedule_at(SimTime t, Handler handler);

  /// Schedules `handler` `delay` from now (delay >= 0).
  void schedule_after(SimTime delay, Handler handler);

  /// Processes events with time <= t_end; advances now() to t_end (or the
  /// last event time if the queue drains). Returns events processed.
  std::size_t run_until(SimTime t_end);

  /// Processes up to max_events events (all of them by default).
  std::size_t run(std::size_t max_events = static_cast<std::size_t>(-1));

  MessageMetrics& metrics() { return metrics_; }
  const MessageMetrics& metrics() const { return metrics_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void pop_and_run();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  MessageMetrics metrics_;
};

}  // namespace bcc
