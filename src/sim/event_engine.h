// Event-driven simulation engine — the analogue of PeerSim's event-driven
// mode, complementing the cycle-driven Engine. Real deployments do not run
// in lockstep: nodes fire timers with jitter and messages arrive after
// network latency. The asynchronous gossip protocols (core/async_overlay)
// run on this engine, and tests verify they reach the *same* fixpoints as
// their synchronous counterparts.
//
// Determinism: events at equal timestamps are delivered in scheduling
// order (a monotonic sequence number breaks ties), so runs are exactly
// reproducible for a given seed.
//
// Cancellation: every schedule returns a TimerId; cancel(id) prevents a
// still-pending handler from running. Cancellation is lazy — the entry
// stays in the priority queue and is discarded when its time comes — so
// cancel is O(1) amortized and the queue never needs re-heapification.
// This is what lets fault injection (sim/fault.h) crash a node: its
// re-arming timers are cancelled instead of firing forever.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/assert.h"
#include "sim/metrics.h"

namespace bcc {

using SimTime = double;

/// Handle to one scheduled event, used to cancel it before it fires.
using TimerId = std::uint64_t;

/// TimerId never handed out by the engine (safe "no timer" sentinel).
inline constexpr TimerId kNoTimer = static_cast<TimerId>(-1);

/// Returned by EventEngine::next_event_time() on an empty queue.
inline constexpr SimTime kNoNextEvent = -1.0;

/// Priority-queue scheduler of timed callbacks.
class EventEngine {
 public:
  using Handler = std::function<void()>;

  SimTime now() const { return now_; }
  bool idle() const { return pending() == 0; }
  /// Scheduled-and-not-cancelled events still waiting to fire.
  std::size_t pending() const { return live_.size(); }
  std::size_t events_processed() const { return processed_; }
  /// Events cancelled before they fired (cumulative).
  std::size_t events_cancelled() const { return cancelled_count_; }

  /// Absolute time of the next live (non-cancelled) event, or kNoNextEvent
  /// when the queue is drained. Drops cancelled entries it skips over. The
  /// real-time pump (net/node_runtime.h) uses this to sleep exactly until
  /// the next timer instead of polling.
  SimTime next_event_time();

  /// Schedules `handler` at absolute time t (>= now). Returns a handle that
  /// can cancel the event while it is still pending.
  TimerId schedule_at(SimTime t, Handler handler);

  /// Schedules `handler` `delay` from now (delay >= 0).
  TimerId schedule_after(SimTime delay, Handler handler);

  /// Cancels a pending event. Returns true if the event was still pending
  /// (it will now never run); false if it already ran, was already
  /// cancelled, or the id is unknown.
  bool cancel(TimerId id);

  /// Processes events with time <= t_end; advances now() to t_end (or the
  /// last event time if the queue drains). Returns events processed.
  std::size_t run_until(SimTime t_end);

  /// Processes up to max_events events (all of them by default).
  std::size_t run(std::size_t max_events = static_cast<std::size_t>(-1));

  MessageMetrics& metrics() { return metrics_; }
  const MessageMetrics& metrics() const { return metrics_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // doubles as the TimerId
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pops the next live event and runs it; silently discards cancelled
  /// entries. Returns false if only cancelled entries remained.
  bool pop_and_run();
  /// Drops cancelled entries sitting at the top of the queue.
  void skip_cancelled();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<TimerId> live_;       // scheduled, not yet run/cancelled
  std::unordered_set<TimerId> cancelled_;  // cancelled, still in queue_
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::size_t cancelled_count_ = 0;
  MessageMetrics metrics_;
};

}  // namespace bcc
