// Deterministic fault injection for the event-driven simulator — the
// failure-model discipline of group-communication systems (Derecho-style
// membership/failure handling) applied to this codebase: instead of assuming
// every gossip message arrives and every node lives forever, a seeded
// FaultPlan decides per message whether the network loses, duplicates, or
// delays it, and per node when it crashes and recovers.
//
//   * FaultPlan — declarative schedule: per-link (or default) drop
//     probability, duplication probability, extra-delay jitter (which
//     reorders messages), bidirectional partitions between node sets over
//     time windows, and node crash/recover windows. All randomness comes
//     from one seeded Rng, so a (plan seed, overlay seed) pair reproduces a
//     run bit-for-bit.
//   * FaultyChannel — the delivery interceptor: protocols send through it
//     instead of scheduling deliveries directly on the EventEngine. A
//     message is dropped when its link says so, when the endpoints are
//     partitioned at send time, or when the receiver is down at delivery
//     time (crashed nodes receive nothing). Duplicates deliver twice at
//     distinct times. Every fault is counted in the engine's
//     MessageMetrics (dropped / duplicated).
//
// Crash semantics for protocol timers (a crashed node must also stop
// *sending*) are implemented by the protocol on top: AsyncOverlay cancels a
// crashed node's gossip timer via EventEngine::cancel and re-arms it on
// recovery (see AsyncOverlay::crash/recover and install_crash_schedule).
#pragma once

#include <functional>
#include <limits>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "metric/distance_matrix.h"  // NodeId (header-only use)
#include "obs/trace.h"
#include "sim/event_engine.h"

namespace bcc {

/// Per-link fault rates. Probabilities in [0, 1]; jitter_max >= 0.
struct LinkFaults {
  double drop_prob = 0.0;       ///< P(message silently lost in transit)
  double duplicate_prob = 0.0;  ///< P(message delivered twice)
  double jitter_max = 0.0;      ///< extra delay ~ U[0, jitter_max) (reorders)
};

/// One node-down interval [down_at, up_at). up_at == FaultPlan::kNever
/// means the node never recovers.
struct CrashWindow {
  SimTime down_at = 0.0;
  SimTime up_at = 0.0;
};

/// See file comment.
class FaultPlan {
 public:
  static constexpr SimTime kNever = std::numeric_limits<SimTime>::infinity();

  explicit FaultPlan(std::uint64_t seed);

  // -- Configuration. May be called any time; decisions are per message.

  /// Fault rates for every link without an explicit override.
  void set_default_faults(LinkFaults faults);
  /// Override for the (unordered) pair {a, b}.
  void set_link_faults(NodeId a, NodeId b, LinkFaults faults);
  /// Bidirectional partition: no message crosses between `side_a` and
  /// `side_b` while from <= t < until.
  void add_partition(std::vector<NodeId> side_a, std::vector<NodeId> side_b,
                     SimTime from, SimTime until);
  /// Schedules node downtime [down_at, up_at). Multiple windows per node
  /// are allowed and need not be sorted.
  void add_crash(NodeId node, SimTime down_at, SimTime up_at = kNever);

  // -- Queries.

  bool is_down(NodeId node, SimTime t) const;
  /// True when a partition window currently separates `from` and `to`.
  bool is_cut(NodeId from, NodeId to, SimTime t) const;
  const LinkFaults& faults_on(NodeId a, NodeId b) const;
  /// All configured crash windows (protocols use this to schedule timer
  /// cancellation/re-arming).
  const std::vector<std::pair<NodeId, CrashWindow>>& crashes() const {
    return crashes_;
  }

  /// One in-transit decision for a message sent now. Consumes randomness
  /// deterministically (drop first, then duplication, then jitter).
  struct Decision {
    bool deliver = true;
    bool duplicate = false;
    double extra_delay = 0.0;      ///< added to the primary copy's latency
    double dup_extra_delay = 0.0;  ///< added to the duplicate copy's latency
  };
  Decision decide(NodeId from, NodeId to, SimTime send_time);

 private:
  struct Partition {
    std::vector<NodeId> side_a;
    std::vector<NodeId> side_b;
    SimTime from;
    SimTime until;
  };

  Rng rng_;
  LinkFaults default_faults_;
  std::map<std::pair<NodeId, NodeId>, LinkFaults> link_faults_;  // minmax key
  std::vector<Partition> partitions_;
  std::unordered_map<NodeId, std::vector<CrashWindow>> crash_windows_;
  std::vector<std::pair<NodeId, CrashWindow>> crashes_;  // insertion order
};

/// See file comment. Both the engine and the plan must outlive the channel;
/// `plan` may be null, which degrades to a perfect network (deliver after
/// exactly `latency`).
class FaultyChannel {
 public:
  FaultyChannel(EventEngine* engine, FaultPlan* plan);

  /// Sends one message: `on_deliver` runs at now + latency (+ jitter)
  /// unless the plan drops it. Delivery to a node that is down at arrival
  /// time is dropped (counted), matching a crashed process losing its
  /// in-flight inbound traffic.
  void send(NodeId from, NodeId to, double latency,
            std::function<void()> on_deliver);

  /// Handler for a traced delivery: receives the TraceContext the message
  /// carried (possibly invalid when the sender traced nothing).
  using TracedHandler = std::function<void(const obs::TraceContext&)>;

  /// Same fault semantics as send(), with a causal TraceContext serialized
  /// into the message. The context is a plain value riding the closure: a
  /// dropped message discards it (counted in bcc.trace.contexts_dropped,
  /// never leaked), a duplicated message delivers the SAME context twice —
  /// each delivery opens its own receive span, so duplicate copies get
  /// distinct span ids with the same remote parent.
  void send(NodeId from, NodeId to, double latency, obs::TraceContext trace,
            TracedHandler on_deliver);

  EventEngine& engine() { return *engine_; }
  FaultPlan* plan() { return plan_; }

 private:
  EventEngine* engine_;
  FaultPlan* plan_;
};

}  // namespace bcc
