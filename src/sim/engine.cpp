#include "sim/engine.h"

#include <algorithm>

#include "common/assert.h"

namespace bcc {

void Engine::add_protocol(std::shared_ptr<Protocol> protocol) {
  BCC_REQUIRE(protocol != nullptr);
  protocols_.push_back(std::move(protocol));
}

std::size_t Engine::run(std::size_t max_cycles) {
  std::size_t executed = 0;
  while (executed < max_cycles) {
    if (std::all_of(protocols_.begin(), protocols_.end(),
                    [](const auto& p) { return p->converged(); })) {
      break;
    }
    for (auto& p : protocols_) p->execute_cycle(cycle_);
    ++cycle_;
    ++executed;
  }
  return executed;
}

}  // namespace bcc
