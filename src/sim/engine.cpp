#include "sim/engine.h"

#include <algorithm>
#include <chrono>

#include "common/assert.h"
#include "obs/trace.h"

namespace bcc {

void Engine::add_protocol(std::shared_ptr<Protocol> protocol) {
  BCC_REQUIRE(protocol != nullptr);
  protocols_.push_back(std::move(protocol));
}

std::size_t Engine::run(std::size_t max_cycles) {
  // Cached instrument handles: one registry lookup per process, not per run.
  static obs::Counter& cycles_counter =
      obs::Registry::global().counter("bcc.sim.cycles");
  static obs::Histogram& cycle_micros =
      obs::Registry::global().histogram("bcc.sim.cycle_micros");
  static obs::Gauge& converged_fraction =
      obs::Registry::global().gauge("bcc.sim.converged_fraction");

  auto converged_count = [this] {
    return static_cast<std::size_t>(
        std::count_if(protocols_.begin(), protocols_.end(),
                      [](const auto& p) { return p->converged(); }));
  };

  std::size_t executed = 0;
  while (executed < max_cycles) {
    const std::size_t done = converged_count();
    if (!protocols_.empty()) {
      converged_fraction.set(static_cast<double>(done) /
                             static_cast<double>(protocols_.size()));
    }
    if (done == protocols_.size()) break;
    {
      obs::Span span(obs::SpanCategory::kSim, "cycle");
      const auto t0 = std::chrono::steady_clock::now();
      for (auto& p : protocols_) p->execute_cycle(cycle_);
      cycle_micros.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    }
    cycles_counter.add(1);
    ++cycle_;
    ++executed;
  }
  if (!protocols_.empty()) {
    converged_fraction.set(static_cast<double>(converged_count()) /
                           static_cast<double>(protocols_.size()));
  }
  return executed;
}

}  // namespace bcc
