// A minimal cycle-driven P2P simulation engine, standing in for PeerSim [9]
// (the paper's simulator substrate).
//
// Protocols are whole-network synchronous steps: each cycle, every protocol
// executes once over the node population it manages (double-buffering its
// own state so that information propagates one overlay hop per cycle, which
// is PeerSim's cycle-driven CDProtocol semantics).  The engine runs protocols
// in registration order until every protocol reports convergence or the
// cycle budget is exhausted.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/metrics.h"

namespace bcc {

/// One synchronous network protocol stepped by the Engine.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Executes one synchronous cycle across all nodes.
  virtual void execute_cycle(std::size_t cycle) = 0;

  /// True once further cycles cannot change state (fixpoint reached).
  virtual bool converged() const { return false; }

  virtual std::string name() const = 0;
};

/// Cycle scheduler over registered protocols.
class Engine {
 public:
  /// Registers a protocol; the engine shares ownership with the caller so
  /// callers can keep querying protocol state after the run.
  void add_protocol(std::shared_ptr<Protocol> protocol);

  /// Runs until all protocols are converged or `max_cycles` is hit.
  /// Returns the number of cycles executed.
  std::size_t run(std::size_t max_cycles);

  std::size_t cycles_executed() const { return cycle_; }
  MessageMetrics& metrics() { return metrics_; }
  const MessageMetrics& metrics() const { return metrics_; }

 private:
  std::vector<std::shared_ptr<Protocol>> protocols_;
  std::size_t cycle_ = 0;
  MessageMetrics metrics_;
};

}  // namespace bcc
