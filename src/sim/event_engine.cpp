#include "sim/event_engine.h"

namespace bcc {

TimerId EventEngine::schedule_at(SimTime t, Handler handler) {
  BCC_REQUIRE(t >= now_);
  BCC_REQUIRE(handler != nullptr);
  const TimerId id = next_seq_++;
  queue_.push(Event{t, id, std::move(handler)});
  live_.insert(id);
  return id;
}

TimerId EventEngine::schedule_after(SimTime delay, Handler handler) {
  BCC_REQUIRE(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(handler));
}

bool EventEngine::cancel(TimerId id) {
  if (live_.erase(id) == 0) return false;  // already ran, cancelled, or bogus
  cancelled_.insert(id);
  ++cancelled_count_;
  return true;
}

void EventEngine::skip_cancelled() {
  while (!queue_.empty()) {
    auto it = cancelled_.find(queue_.top().seq);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    queue_.pop();
  }
}

SimTime EventEngine::next_event_time() {
  skip_cancelled();
  return queue_.empty() ? kNoNextEvent : queue_.top().time;
}

bool EventEngine::pop_and_run() {
  static obs::Counter& events_counter =
      obs::Registry::global().counter("bcc.sim.events");
  skip_cancelled();
  if (queue_.empty()) return false;
  // Move the handler out before popping: the handler may schedule new
  // events, which mutates the queue.
  Event event = queue_.top();
  queue_.pop();
  live_.erase(event.seq);
  now_ = event.time;
  ++processed_;
  events_counter.add(1);
  event.handler();
  return true;
}

std::size_t EventEngine::run_until(SimTime t_end) {
  BCC_REQUIRE(t_end >= now_);
  std::size_t count = 0;
  skip_cancelled();
  while (!queue_.empty() && queue_.top().time <= t_end) {
    if (pop_and_run()) ++count;
    skip_cancelled();
  }
  now_ = t_end;
  return count;
}

std::size_t EventEngine::run(std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events) {
    if (!pop_and_run()) break;
    ++count;
  }
  return count;
}

}  // namespace bcc
