#include "sim/event_engine.h"

namespace bcc {

void EventEngine::schedule_at(SimTime t, Handler handler) {
  BCC_REQUIRE(t >= now_);
  BCC_REQUIRE(handler != nullptr);
  queue_.push(Event{t, next_seq_++, std::move(handler)});
}

void EventEngine::schedule_after(SimTime delay, Handler handler) {
  BCC_REQUIRE(delay >= 0.0);
  schedule_at(now_ + delay, std::move(handler));
}

void EventEngine::pop_and_run() {
  // Move the handler out before popping: the handler may schedule new
  // events, which mutates the queue.
  Event event = queue_.top();
  queue_.pop();
  now_ = event.time;
  ++processed_;
  event.handler();
}

std::size_t EventEngine::run_until(SimTime t_end) {
  BCC_REQUIRE(t_end >= now_);
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().time <= t_end) {
    pop_and_run();
    ++count;
  }
  now_ = t_end;
  return count;
}

std::size_t EventEngine::run(std::size_t max_events) {
  std::size_t count = 0;
  while (!queue_.empty() && count < max_events) {
    pop_and_run();
    ++count;
  }
  return count;
}

}  // namespace bcc
