#include "sim/metrics.h"

namespace bcc {

namespace {

// Process-wide totals mirrored on every record/count_* call. Function-local
// statics: registered once, the references stay valid for process lifetime
// (Registry never destroys instruments).
obs::Counter& g_messages() {
  static obs::Counter& c = obs::Registry::global().counter("bcc.sim.messages");
  return c;
}
obs::Counter& g_bytes() {
  static obs::Counter& c = obs::Registry::global().counter("bcc.sim.bytes");
  return c;
}
obs::Counter& g_dropped() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.sim.faults_dropped");
  return c;
}
obs::Counter& g_duplicated() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.sim.faults_duplicated");
  return c;
}
obs::Counter& g_retried() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.sim.faults_retried");
  return c;
}
obs::Counter& g_suspected() {
  static obs::Counter& c =
      obs::Registry::global().counter("bcc.sim.faults_suspected");
  return c;
}

}  // namespace

MessageMetrics::MessageMetrics() {
  // Touch the global mirrors so exports list the traffic/fault counters (at
  // 0) as soon as any simulation exists, not only after the first fault.
  g_messages();
  g_bytes();
  g_dropped();
  g_duplicated();
  g_retried();
  g_suspected();
}

void MessageMetrics::record(std::string_view category, std::size_t bytes) {
  auto it = counters_.find(category);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(category), Counter{}).first;
  }
  ++it->second.messages;
  it->second.bytes += bytes;
  g_messages().add(1);
  g_bytes().add(bytes);
}

void MessageMetrics::count_dropped() {
  dropped_.add(1);
  g_dropped().add(1);
}

void MessageMetrics::count_duplicated() {
  duplicated_.add(1);
  g_duplicated().add(1);
}

void MessageMetrics::count_retried() {
  retried_.add(1);
  g_retried().add(1);
}

void MessageMetrics::count_suspected() {
  suspected_.add(1);
  g_suspected().add(1);
}

std::size_t MessageMetrics::messages(std::string_view category) const {
  auto it = counters_.find(category);
  return it == counters_.end() ? 0 : it->second.messages;
}

std::size_t MessageMetrics::bytes(std::string_view category) const {
  auto it = counters_.find(category);
  return it == counters_.end() ? 0 : it->second.bytes;
}

std::size_t MessageMetrics::total_messages() const {
  std::size_t total = 0;
  for (const auto& [name, c] : counters_) total += c.messages;
  return total;
}

std::size_t MessageMetrics::total_bytes() const {
  std::size_t total = 0;
  for (const auto& [name, c] : counters_) total += c.bytes;
  return total;
}

void MessageMetrics::reset() {
  counters_.clear();
  dropped_.reset();
  duplicated_.reset();
  retried_.reset();
  suspected_.reset();
}

}  // namespace bcc
