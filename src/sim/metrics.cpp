#include "sim/metrics.h"

namespace bcc {

void MessageMetrics::record(std::string_view category, std::size_t bytes) {
  auto it = counters_.find(category);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(category), Counter{}).first;
  }
  ++it->second.messages;
  it->second.bytes += bytes;
}

std::size_t MessageMetrics::messages(std::string_view category) const {
  auto it = counters_.find(category);
  return it == counters_.end() ? 0 : it->second.messages;
}

std::size_t MessageMetrics::bytes(std::string_view category) const {
  auto it = counters_.find(category);
  return it == counters_.end() ? 0 : it->second.bytes;
}

std::size_t MessageMetrics::total_messages() const {
  std::size_t total = 0;
  for (const auto& [name, c] : counters_) total += c.messages;
  return total;
}

std::size_t MessageMetrics::total_bytes() const {
  std::size_t total = 0;
  for (const auto& [name, c] : counters_) total += c.bytes;
  return total;
}

void MessageMetrics::reset() {
  counters_.clear();
  dropped_ = duplicated_ = retried_ = suspected_ = 0;
}

}  // namespace bcc
