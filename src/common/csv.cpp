#include "common/csv.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bcc {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

}  // namespace

std::vector<std::string> split_fields(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, sep)) out.push_back(trim(field));
  if (!line.empty() && line.back() == sep) out.push_back("");
  return out;
}

void write_matrix_csv(const std::string& path,
                      const std::vector<std::vector<double>>& rows,
                      const std::vector<std::string>& header) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  if (!header.empty()) {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (i) os << ',';
      os << header[i];
    }
    os << '\n';
  }
  os.precision(17);
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  }
  if (!os) throw std::runtime_error("write failed: " + path);
}

CsvTable read_csv(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  CsvTable table;
  std::string line;
  bool first_data_line = true;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    auto fields = split_fields(t);
    if (first_data_line) {
      first_data_line = false;
      // Header detection: any field that is not a number.
      bool all_numeric = true;
      double tmp;
      for (const auto& f : fields) {
        if (!parse_double(f, tmp)) {
          all_numeric = false;
          break;
        }
      }
      if (!all_numeric) {
        table.header = fields;
        width = fields.size();
        continue;
      }
    }
    std::vector<double> row;
    row.reserve(fields.size());
    for (const auto& f : fields) {
      double v;
      if (!parse_double(f, v)) {
        throw std::runtime_error("non-numeric cell '" + f + "' in " + path);
      }
      row.push_back(v);
    }
    if (width == 0) width = row.size();
    if (row.size() != width) {
      throw std::runtime_error("ragged row in " + path);
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

}  // namespace bcc
