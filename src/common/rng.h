// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in bcc takes an explicit 64-bit seed and uses
// Rng (xoshiro256** seeded via splitmix64).  std::mt19937 is avoided because
// its distributions are not guaranteed identical across standard libraries;
// all distribution sampling here is hand-rolled and therefore bit-stable.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace bcc {

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal: exp(Normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) in selection order.
  /// Requires k <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derives an independent child generator; stream `i` is stable for a
  /// given parent state.  Used to give each experiment round its own seed.
  Rng split(std::uint64_t i) const;

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace bcc
