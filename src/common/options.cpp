#include "common/options.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "common/assert.h"

namespace bcc {

Options::Options(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

std::int64_t& Options::add_int(const std::string& name, std::int64_t def,
                               const std::string& help) {
  BCC_REQUIRE(!flags_.count(name));
  ints_.push_back(def);
  flags_[name] = Flag{Kind::kInt, help, std::to_string(def), ints_.size() - 1};
  return ints_.back();
}

double& Options::add_double(const std::string& name, double def,
                            const std::string& help) {
  BCC_REQUIRE(!flags_.count(name));
  doubles_.push_back(def);
  flags_[name] = Flag{Kind::kDouble, help, std::to_string(def), doubles_.size() - 1};
  return doubles_.back();
}

std::string& Options::add_string(const std::string& name, std::string def,
                                 const std::string& help) {
  BCC_REQUIRE(!flags_.count(name));
  strings_.push_back(std::move(def));
  flags_[name] = Flag{Kind::kString, help, strings_.back(), strings_.size() - 1};
  return strings_.back();
}

bool& Options::add_bool(const std::string& name, bool def, const std::string& help) {
  BCC_REQUIRE(!flags_.count(name));
  bools_.push_back(def);
  flags_[name] = Flag{Kind::kBool, help, def ? "true" : "false", bools_.size() - 1};
  return bools_.back();
}

void Options::set_value(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::runtime_error(program_ + ": unknown option --" + name);
  }
  const Flag& f = it->second;
  try {
    switch (f.kind) {
      case Kind::kInt:
        ints_[f.index] = std::stoll(value);
        break;
      case Kind::kDouble:
        doubles_[f.index] = std::stod(value);
        break;
      case Kind::kString:
        strings_[f.index] = value;
        break;
      case Kind::kBool:
        if (value == "true" || value == "1") {
          bools_[f.index] = true;
        } else if (value == "false" || value == "0") {
          bools_[f.index] = false;
        } else {
          throw std::runtime_error("expected true/false");
        }
        break;
    }
  } catch (const std::exception&) {
    throw std::runtime_error(program_ + ": bad value for --" + name + ": '" +
                             value + "'");
  }
}

void Options::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::runtime_error(program_ + ": unexpected argument '" + arg + "'");
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      set_value(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      throw std::runtime_error(program_ + ": unknown option --" + arg);
    }
    if (it->second.kind == Kind::kBool) {
      bools_[it->second.index] = true;
      continue;
    }
    if (i + 1 >= argc) {
      throw std::runtime_error(program_ + ": option --" + arg + " needs a value");
    }
    set_value(arg, argv[++i]);
  }
}

std::string Options::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << "  (default: " << flag.default_repr << ")\n      "
       << flag.help << "\n";
  }
  return os.str();
}

}  // namespace bcc
