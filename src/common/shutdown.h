// Cooperative SIGINT/SIGTERM handling for long-running CLI entry points
// (`bcc node`, `bcc query --repeat`, the process supervisor's children).
// The handler only sets a flag; loops observe shutdown_requested(), drain
// their in-flight work, flush metrics/state, and exit 0 — an orderly
// drain is the contract the supervisor's SIGTERM scenario asserts.
#pragma once

namespace bcc {

/// Installs SIGINT + SIGTERM handlers (idempotent). Handlers are
/// async-signal-safe: they set a sig_atomic_t flag and nothing else.
void install_shutdown_handlers();

/// True once any handled signal arrived.
bool shutdown_requested();

/// Forgets a previously-delivered signal (tests).
void reset_shutdown();

}  // namespace bcc
