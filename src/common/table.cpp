#include "common/table.h"

#include <cstdio>
#include <sstream>

#include "common/assert.h"

namespace bcc {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  BCC_REQUIRE(!header_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  BCC_REQUIRE(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << " | ";
      // Right-align numbers-ish cells; headers align the same way for tidiness.
      os << std::string(widths[c] - row[c].size(), ' ') << row[c];
    }
    os << '\n';
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) os << "-+-";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TablePrinter::print() const { std::fputs(to_string().c_str(), stdout); }

std::string TablePrinter::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace bcc
