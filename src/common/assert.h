// Contract-checking macros for the bcc library.
//
// BCC_REQUIRE  — precondition on public API entry points; always checked.
// BCC_ASSERT   — internal invariant; always checked (the library is
//                simulation-scale, the cost is negligible next to O(n^3)
//                clustering, and silent corruption is far worse).
// BCC_UNREACHABLE — marks impossible control flow.
//
// Violations throw bcc::ContractViolation so tests can assert on them and
// long-running experiment harnesses can report which experiment died.
#pragma once

#include <stdexcept>
#include <string>

namespace bcc {

/// Thrown when a BCC_REQUIRE / BCC_ASSERT contract is violated.
/// This signals a programmer error, not a recoverable condition.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace bcc

#define BCC_REQUIRE(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::bcc::detail::contract_fail("precondition", #expr, __FILE__, __LINE__); \
  } while (0)

#define BCC_ASSERT(expr)                                                   \
  do {                                                                     \
    if (!(expr))                                                           \
      ::bcc::detail::contract_fail("assertion", #expr, __FILE__, __LINE__); \
  } while (0)

#define BCC_UNREACHABLE(msg)                                               \
  ::bcc::detail::contract_fail("unreachable", msg, __FILE__, __LINE__)
