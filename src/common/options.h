// Minimal command-line option parser for bench/example binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--flag` forms.
// Unknown options are an error (to catch typos in experiment scripts);
// `--help` prints registered options and exits successfully.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

namespace bcc {

/// Declarative flag registry + parser.
///
///   Options opts("fig3_accuracy", "Reproduces Fig. 3");
///   auto& seeds = opts.add_int("seeds", 10, "number of rounds");
///   opts.parse(argc, argv);   // may std::exit(0) on --help
///   use(seeds);
class Options {
 public:
  Options(std::string program, std::string description);

  /// Registers an int64 flag and returns a stable reference to its value.
  std::int64_t& add_int(const std::string& name, std::int64_t def,
                        const std::string& help);
  /// Registers a double flag.
  double& add_double(const std::string& name, double def, const std::string& help);
  /// Registers a string flag.
  std::string& add_string(const std::string& name, std::string def,
                          const std::string& help);
  /// Registers a boolean flag (set by presence, or --name=true/false).
  bool& add_bool(const std::string& name, bool def, const std::string& help);

  /// Parses argv. Throws std::runtime_error on unknown flags or bad values.
  /// Prints usage and exits(0) if --help is present.
  void parse(int argc, const char* const* argv);

  /// Usage text for --help.
  std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    std::string help;
    std::string default_repr;
    std::size_t index;  // into the deque matching `kind`
  };

  void set_value(const std::string& name, const std::string& value);

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  // Deques so references returned from add_* stay valid across growth.
  std::deque<std::int64_t> ints_;
  std::deque<double> doubles_;
  std::deque<std::string> strings_;
  std::deque<bool> bools_;
};

}  // namespace bcc
