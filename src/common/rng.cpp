#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace bcc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zeros from any seed, but keep the guard in case of future edits.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  BCC_REQUIRE(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) {
  BCC_REQUIRE(n > 0);
  // Lemire-style rejection-free-ish bounded sampling with rejection for bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  BCC_REQUIRE(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::normal() {
  // Box-Muller; draw u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  BCC_REQUIRE(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

bool Rng::chance(double p) {
  BCC_REQUIRE(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  BCC_REQUIRE(k <= n);
  // Partial Fisher-Yates over an index vector; O(n) space, O(n + k) time.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::split(std::uint64_t i) const {
  // Mix the child index with two words of parent state through splitmix64.
  std::uint64_t s = state_[0] ^ rotl(state_[2], 31) ^ (i * 0xD1B54A32D192ED03ULL);
  std::uint64_t seed = splitmix64(s);
  return Rng(seed);
}

}  // namespace bcc
