// CSV reading/writing for dense numeric matrices and experiment result rows.
//
// The dialect is deliberately minimal: comma separator, no quoting (bcc never
// writes strings containing commas), '#' comment lines, blank lines skipped.
#pragma once

#include <string>
#include <vector>

namespace bcc {

/// A parsed CSV file: optional header plus numeric rows.
struct CsvTable {
  std::vector<std::string> header;          // empty if the file had none
  std::vector<std::vector<double>> rows;    // ragged rows are rejected on load
};

/// Writes a dense matrix (row-major) as CSV. Throws std::runtime_error on I/O
/// failure.
void write_matrix_csv(const std::string& path,
                      const std::vector<std::vector<double>>& rows,
                      const std::vector<std::string>& header = {});

/// Reads a numeric CSV. If the first non-comment line contains any
/// non-numeric token it is treated as the header. Throws on I/O failure,
/// non-numeric data cells, or ragged rows.
CsvTable read_csv(const std::string& path);

/// Splits a line on `sep`, trimming surrounding whitespace from each field.
std::vector<std::string> split_fields(const std::string& line, char sep = ',');

}  // namespace bcc
