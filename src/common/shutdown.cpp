#include "common/shutdown.h"

#include <signal.h>

namespace bcc {

namespace {

volatile sig_atomic_t g_shutdown = 0;

void on_signal(int) { g_shutdown = 1; }

}  // namespace

void install_shutdown_handlers() {
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking reads wake up to observe it
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

bool shutdown_requested() { return g_shutdown != 0; }

void reset_shutdown() { g_shutdown = 0; }

}  // namespace bcc
