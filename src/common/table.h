// Aligned console tables for benchmark output.
//
// Every figure-reproduction binary prints its series through TablePrinter so
// output is grep-able and visually matches across experiments, e.g.:
//
//   b_mbps | HP-TREE-DECENTRAL | HP-TREE-CENTRAL | HP-EUCL-CENTRAL
//   -------+-------------------+-----------------+----------------
//       15 |            0.0123 |          0.0119 |          0.0871
#pragma once

#include <string>
#include <vector>

namespace bcc {

/// Buffers rows of string cells and prints them column-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_numeric_row(const std::vector<double>& cells, int precision = 4);

  /// Renders the table (header, rule, rows) to a string.
  std::string to_string() const;

  /// Prints to stdout.
  void print() const;

  /// Renders the body as CSV (header + rows), for --csv output modes.
  std::string to_csv() const;

  std::size_t row_count() const { return rows_.size(); }

  /// Raw cells, for consumers that re-export the table (obs::BenchReport).
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision, trimming to a compact width.
std::string format_double(double v, int precision = 4);

}  // namespace bcc
