// Fleet telemetry collection: the data model, byte codec, merge, clock
// alignment, and merged-timeline export behind `bcc collect` / `bcc top`.
//
// Layering: this module is pure data-plane — it encodes/decodes telemetry
// payloads and fuses per-process snapshots, but owns no sockets. The wire
// transport (TELEMETRY frames on the framed src/net transport) lives in
// src/net/telemetry_client, which sits *above* obs in the dependency
// graph; the flight-recorder fallback (obs/flight.h) sits beside it. This
// split is what lets the chaos tests exercise merge/offset/export logic
// hermetically, without processes.
//
// Pipeline, end to end:
//   node:      Registry::global().snapshot() + Tracer::global().drain()
//              -> encode_node_telemetry() -> TELEMETRY frame payload
//   collector: decode_node_telemetry() per node (or telemetry_from_flight()
//              for a crashed node's on-disk ring)
//              -> merge_fleet_metrics()     one fleet registry
//              -> estimate_clock_offsets()  align per-process clocks
//              -> fleet_chrome_trace_json() one Perfetto timeline
//
// Clock alignment: each process stamps spans with its own steady_clock,
// whose epoch is arbitrary per process — raw lanes can sit *hours* apart.
// But every cross-process exchange leaves a matched pair: a send span on
// process i and a remote-parented receive span on process j whose
// wall_begin difference is (clock_j - clock_i) + network latency. Taking
// the minimum difference per direction (NTP's trick) cancels queueing
// noise, and half the difference of the two directional minima cancels the
// symmetric part of the latency:
//     offset(j relative to i) ~ (min_delta(i->j) - min_delta(j->i)) / 2.
// Offsets then propagate from the reference process by BFS over the pair
// graph, so any process that ever exchanged (transitively) with the
// reference lands on one shared axis. Residual error is bounded by the
// path asymmetry — microseconds on loopback, plenty for eyeballing lanes.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bcc::obs {

struct FlightData;  // obs/flight.h

/// Bumped on incompatible telemetry payload changes. Decoders reject other
/// versions; the frame layer's major-version gate handles framing drift.
/// Version 2: gauge aggregation hints (GaugeAgg), per-bucket histogram
/// exemplars, and sampling-profiler folded-stack summaries.
inline constexpr std::uint32_t kTelemetryFormatVersion = 2;

/// One process's telemetry at one scrape: identity, full metrics registry
/// snapshot, and the drained span ring. Move-only — decoded `spans[i].name`
/// pointers alias `name_pool` entries (SpanRecord keeps `const char*` for
/// the zero-cost live path; decoded telemetry owns its strings here).
struct NodeTelemetry {
  std::uint32_t node = 0;  ///< simulated node id
  std::uint32_t pid = 0;   ///< real OS pid -> Perfetto process lane
  /// Sender's steady clock at encode time (us) — staleness hint for `top`.
  std::uint64_t wall_now_us = 0;
  /// True when this entry was recovered from an on-disk flight ring after
  /// the process died, rather than scraped live.
  bool recovered = false;
  RegistrySnapshot metrics;
  std::vector<SpanRecord> spans;
  /// Sampling-profiler summary: folded stacks ("a;b;c") with cumulative
  /// sample counts, hottest first, truncated by the sender (the full
  /// resolution stays on the node — `bcc profile` reads it locally). Empty
  /// when the node's profiler is off.
  std::vector<std::pair<std::string, std::uint64_t>> profile;
  std::deque<std::string> name_pool;  ///< backs spans[i].name when decoded

  NodeTelemetry() = default;
  NodeTelemetry(NodeTelemetry&&) = default;
  NodeTelemetry& operator=(NodeTelemetry&&) = default;
  NodeTelemetry(const NodeTelemetry&) = delete;
  NodeTelemetry& operator=(const NodeTelemetry&) = delete;
};

/// Metrics-only codec (registry snapshot <-> bytes, sparse histogram
/// buckets). Also the flight recorder's metrics-blob format.
std::vector<std::uint8_t> encode_node_metrics(const RegistrySnapshot& s);
bool decode_node_metrics(const std::uint8_t* data, std::size_t len,
                         RegistrySnapshot* out);

/// Full telemetry codec — the TELEMETRY frame payload. Span names are
/// length-prefixed and truncated to 255 bytes; everything else round-trips
/// exactly (tests/collect_test.cpp pins this).
std::vector<std::uint8_t> encode_node_telemetry(const NodeTelemetry& t);
bool decode_node_telemetry(const std::uint8_t* data, std::size_t len,
                           NodeTelemetry* out);

/// Fuses per-process registries into one fleet registry: counters add
/// (bcc.net.frames_sent across the fleet is the sum of everyone's),
/// histograms merge bucket-wise (exact — see Histogram::Snapshot::
/// merge_from; exemplar slots keep the freshest), and each gauge merges by
/// the GaugeAgg hint it was registered under — kMax for worst-observed
/// (staleness, suspicion, queue depth, the historical default), kSum for
/// additive occupancy, kLast for node-local scalars, kMean for ratios and
/// rates (a max over cache_hit_ratio would report the luckiest node).
/// Nodes disagreeing on a hint (skewed binaries) resolve first-seen-wins.
RegistrySnapshot merge_fleet_metrics(const std::vector<NodeTelemetry>& fleet);

/// Fuses the fleet's profiler summaries into one folded-stack list (counts
/// added per identical stack), sorted hottest first — what `bcc collect`
/// prints and the flamegraph artifact is built from.
std::vector<std::pair<std::string, std::uint64_t>> merge_fleet_profiles(
    const std::vector<NodeTelemetry>& fleet);

/// Per-entry clock offsets in microseconds, aligned with `fleet` by index:
/// adding offsets[i] to entry i's wall timestamps maps them onto entry 0's
/// clock (offsets[0] == 0). Estimated from matched send/receive span pairs
/// as described in the file comment; an entry with no (transitive)
/// exchange path to the reference keeps offset 0 — its lane still renders,
/// just unaligned.
std::vector<double> estimate_clock_offsets(
    const std::vector<NodeTelemetry>& fleet);

/// The merged fleet timeline (Chrome trace-event JSON for ui.perfetto.dev):
/// pid = real OS pid, one lane per process (named "node N (pid P)", with a
/// "[flight]" suffix for crash-recovered entries), ts = wall time shifted
/// by the entry's clock offset and rebased so the earliest span starts at
/// 0, and every remote-parented span whose sender span exists anywhere in
/// the fleet gets a cross-process flow arrow — including senders that only
/// survive in a dead node's flight ring, which is the crash-forensics
/// payoff. `offsets_us` must come from estimate_clock_offsets (or be
/// empty, meaning all zero).
std::string fleet_chrome_trace_json(const std::vector<NodeTelemetry>& fleet,
                                    const std::vector<double>& offsets_us);

/// Converts a crash-recovered flight ring into a fleet entry (recovered =
/// true; decodes the metrics blob when present and untorn).
NodeTelemetry telemetry_from_flight(FlightData&& flight);

/// Scans `dir` for `*.flight` files and appends, as recovered entries,
/// those whose node id is absent from `*fleet` — the nodes the live scrape
/// missed because they were dead. Returns how many were added. Unreadable
/// or foreign files are skipped.
std::size_t augment_missing_from_flight(const std::string& dir,
                                        std::vector<NodeTelemetry>* fleet);

}  // namespace bcc::obs
