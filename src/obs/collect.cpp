#include "obs/collect.h"

#include <dirent.h>

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>

#include "obs/flight.h"

namespace bcc::obs {

namespace {

// ---- little-endian byte codec (mirrors src/net/frame.cpp's helpers; obs
// cannot include net, and eight lines of codec beat a layering violation).

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}
void put_name(std::vector<std::uint8_t>& out, std::string_view s) {
  const auto len = static_cast<std::uint16_t>(
      std::min<std::size_t>(s.size(), 0xffff));
  put_u16(out, len);
  out.insert(out.end(), s.begin(), s.begin() + len);
}

/// Bounds-checked read cursor: every read checks remaining bytes and trips
/// `ok` on underrun; callers test ok once at the end (and at loop bounds),
/// so a truncated or hostile payload decodes to "false", never past-the-end.
struct Cursor {
  const std::uint8_t* p;
  std::size_t n;
  bool ok = true;

  bool take(std::size_t k) {
    if (!ok || n < k) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!take(1)) return 0;
    const std::uint8_t v = p[0];
    p += 1;
    n -= 1;
    return v;
  }
  std::uint16_t u16() {
    if (!take(2)) return 0;
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(p[i]) << (8 * i);
    p += 2;
    n -= 2;
    return v;
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4;
    n -= 4;
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    n -= 8;
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string name() {
    const std::uint16_t len = u16();
    if (!take(len)) return {};
    std::string s(reinterpret_cast<const char*>(p), len);
    p += len;
    n -= len;
    return s;
  }
};

}  // namespace

std::vector<std::uint8_t> encode_node_metrics(const RegistrySnapshot& s) {
  std::vector<std::uint8_t> out;
  put_u32(out, kTelemetryFormatVersion);
  put_u32(out, static_cast<std::uint32_t>(s.counters.size()));
  for (const auto& [name, v] : s.counters) {
    put_name(out, name);
    put_u64(out, v);
  }
  put_u32(out, static_cast<std::uint32_t>(s.gauges.size()));
  for (const RegistrySnapshot::GaugeEntry& g : s.gauges) {
    put_name(out, g.name);
    put_f64(out, g.value);
    put_u8(out, static_cast<std::uint8_t>(g.agg));
  }
  put_u32(out, static_cast<std::uint32_t>(s.histograms.size()));
  for (const auto& [name, h] : s.histograms) {
    put_name(out, name);
    put_u64(out, h.count);
    put_u64(out, h.sum);
    put_u64(out, h.max);
    std::uint8_t nonzero = 0;
    for (std::uint64_t b : h.buckets) nonzero += b != 0 ? 1 : 0;
    put_u8(out, nonzero);  // sparse: most of the 65 buckets are empty
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      put_u8(out, static_cast<std::uint8_t>(i));
      put_u64(out, h.buckets[i]);
    }
    // Sparse exemplars, same shape as the buckets above.
    std::uint8_t populated = 0;
    for (const Exemplar& e : h.exemplars) populated += e.valid() ? 1 : 0;
    put_u8(out, populated);
    for (std::size_t i = 0; i < h.exemplars.size(); ++i) {
      const Exemplar& e = h.exemplars[i];
      if (!e.valid()) continue;
      put_u8(out, static_cast<std::uint8_t>(i));
      put_u64(out, e.trace_id);
      put_u64(out, e.value);
      put_u64(out, e.wall_us);
    }
  }
  return out;
}

bool decode_node_metrics(const std::uint8_t* data, std::size_t len,
                         RegistrySnapshot* out) {
  *out = RegistrySnapshot{};
  Cursor c{data, len};
  if (c.u32() != kTelemetryFormatVersion) return false;
  const std::uint32_t n_counters = c.u32();
  for (std::uint32_t i = 0; i < n_counters && c.ok; ++i) {
    std::string name = c.name();
    const std::uint64_t v = c.u64();
    out->counters.emplace_back(std::move(name), v);
  }
  const std::uint32_t n_gauges = c.u32();
  for (std::uint32_t i = 0; i < n_gauges && c.ok; ++i) {
    std::string name = c.name();
    const double v = c.f64();
    const std::uint8_t agg = c.u8();
    out->gauges.push_back(
        {std::move(name), v,
         static_cast<GaugeAgg>(agg % kGaugeAggCount)});
  }
  const std::uint32_t n_hists = c.u32();
  for (std::uint32_t i = 0; i < n_hists && c.ok; ++i) {
    std::string name = c.name();
    Histogram::Snapshot h;
    h.count = c.u64();
    h.sum = c.u64();
    h.max = c.u64();
    const std::uint8_t nonzero = c.u8();
    for (std::uint8_t b = 0; b < nonzero && c.ok; ++b) {
      const std::uint8_t idx = c.u8();
      const std::uint64_t v = c.u64();
      if (idx < Histogram::kBuckets) h.buckets[idx] = v;
    }
    const std::uint8_t populated = c.u8();
    for (std::uint8_t b = 0; b < populated && c.ok; ++b) {
      const std::uint8_t idx = c.u8();
      Exemplar e;
      e.trace_id = c.u64();
      e.value = c.u64();
      e.wall_us = c.u64();
      if (idx < Histogram::kBuckets) h.exemplars[idx] = e;
    }
    out->histograms.emplace_back(std::move(name), h);
  }
  if (!c.ok) *out = RegistrySnapshot{};
  return c.ok;
}

std::vector<std::uint8_t> encode_node_telemetry(const NodeTelemetry& t) {
  std::vector<std::uint8_t> out;
  put_u32(out, kTelemetryFormatVersion);
  put_u32(out, t.node);
  put_u32(out, t.pid);
  put_u64(out, t.wall_now_us);
  put_u8(out, t.recovered ? 1 : 0);
  const std::vector<std::uint8_t> metrics = encode_node_metrics(t.metrics);
  put_u32(out, static_cast<std::uint32_t>(metrics.size()));
  out.insert(out.end(), metrics.begin(), metrics.end());
  put_u32(out, static_cast<std::uint32_t>(t.spans.size()));
  for (const SpanRecord& s : t.spans) {
    put_u64(out, s.id);
    put_u64(out, s.parent);
    put_u64(out, s.trace_id);
    put_u64(out, s.wall_begin_us);
    put_u64(out, s.wall_end_us);
    put_f64(out, s.sim_begin);
    put_f64(out, s.sim_end);
    put_u32(out, s.hop);
    put_u32(out, s.node);
    put_u8(out, static_cast<std::uint8_t>(s.category));
    put_u8(out, s.remote_parent ? 1 : 0);
    const std::size_t name_len = std::min<std::size_t>(std::strlen(s.name), 255);
    put_u8(out, static_cast<std::uint8_t>(name_len));
    out.insert(out.end(), s.name, s.name + name_len);
  }
  put_u32(out, static_cast<std::uint32_t>(t.profile.size()));
  for (const auto& [stack, samples] : t.profile) {
    put_name(out, stack);
    put_u64(out, samples);
  }
  return out;
}

bool decode_node_telemetry(const std::uint8_t* data, std::size_t len,
                           NodeTelemetry* out) {
  *out = NodeTelemetry{};
  Cursor c{data, len};
  if (c.u32() != kTelemetryFormatVersion) return false;
  out->node = c.u32();
  out->pid = c.u32();
  out->wall_now_us = c.u64();
  out->recovered = c.u8() != 0;
  const std::uint32_t metrics_len = c.u32();
  if (!c.take(0) || c.n < metrics_len ||
      !decode_node_metrics(c.p, metrics_len, &out->metrics)) {
    *out = NodeTelemetry{};
    return false;
  }
  c.p += metrics_len;
  c.n -= metrics_len;
  const std::uint32_t n_spans = c.u32();
  for (std::uint32_t i = 0; i < n_spans && c.ok; ++i) {
    SpanRecord s;
    s.id = c.u64();
    s.parent = c.u64();
    s.trace_id = c.u64();
    s.wall_begin_us = c.u64();
    s.wall_end_us = c.u64();
    s.sim_begin = c.f64();
    s.sim_end = c.f64();
    s.hop = c.u32();
    s.node = c.u32();
    s.category = static_cast<SpanCategory>(c.u8() % kSpanCategoryCount);
    s.remote_parent = c.u8() != 0;
    const std::uint8_t name_len = c.u8();
    if (!c.take(name_len)) break;
    out->name_pool.emplace_back(reinterpret_cast<const char*>(c.p), name_len);
    s.name = out->name_pool.back().c_str();
    c.p += name_len;
    c.n -= name_len;
    out->spans.push_back(s);
  }
  const std::uint32_t n_profile = c.u32();
  for (std::uint32_t i = 0; i < n_profile && c.ok; ++i) {
    std::string stack = c.name();
    const std::uint64_t samples = c.u64();
    out->profile.emplace_back(std::move(stack), samples);
  }
  if (!c.ok) {
    *out = NodeTelemetry{};
    return false;
  }
  return true;
}

RegistrySnapshot merge_fleet_metrics(
    const std::vector<NodeTelemetry>& fleet) {
  // Per-gauge accumulator: the hint of the first node to report the gauge
  // decides the policy (skewed fleets disagreeing on a hint are a deploy
  // bug; first-seen beats silently mixing policies).
  struct GaugeAccum {
    GaugeAgg agg = GaugeAgg::kMax;
    double value = 0.0;
    double sum = 0.0;
    std::uint64_t n = 0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeAccum> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;
  for (const NodeTelemetry& t : fleet) {
    for (const auto& [name, v] : t.metrics.counters) counters[name] += v;
    for (const RegistrySnapshot::GaugeEntry& g : t.metrics.gauges) {
      auto [it, inserted] =
          gauges.emplace(g.name, GaugeAccum{g.agg, g.value, g.value, 1});
      if (inserted) continue;
      GaugeAccum& a = it->second;
      switch (a.agg) {
        case GaugeAgg::kMax: a.value = std::max(a.value, g.value); break;
        case GaugeAgg::kSum: a.value += g.value; break;
        case GaugeAgg::kLast: a.value = g.value; break;
        case GaugeAgg::kMean: break;  // resolved from sum/n below
      }
      a.sum += g.value;
      ++a.n;
    }
    for (const auto& [name, h] : t.metrics.histograms) {
      histograms[name].merge_from(h);
    }
  }
  RegistrySnapshot out;  // maps iterate name-sorted, matching Registry
  out.counters.assign(counters.begin(), counters.end());
  out.gauges.reserve(gauges.size());
  for (const auto& [name, a] : gauges) {
    const double v = a.agg == GaugeAgg::kMean && a.n > 0
                         ? a.sum / static_cast<double>(a.n)
                         : a.value;
    out.gauges.push_back({name, v, a.agg});
  }
  out.histograms.assign(histograms.begin(), histograms.end());
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> merge_fleet_profiles(
    const std::vector<NodeTelemetry>& fleet) {
  std::map<std::string, std::uint64_t> by_stack;
  for (const NodeTelemetry& t : fleet) {
    for (const auto& [stack, samples] : t.profile) by_stack[stack] += samples;
  }
  std::vector<std::pair<std::string, std::uint64_t>> out(by_stack.begin(),
                                                         by_stack.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  return out;
}

namespace {

/// Span id -> (fleet index, record), fleet-wide. Ids are unique across
/// processes because the node runtime seeds each tracer's id range
/// (Tracer::seed_ids).
using SpanIndex =
    std::unordered_map<std::uint64_t, std::pair<std::size_t, const SpanRecord*>>;

SpanIndex index_spans(const std::vector<NodeTelemetry>& fleet) {
  SpanIndex by_id;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    for (const SpanRecord& s : fleet[i].spans) by_id[s.id] = {i, &s};
  }
  return by_id;
}

}  // namespace

std::vector<double> estimate_clock_offsets(
    const std::vector<NodeTelemetry>& fleet) {
  std::vector<double> offsets(fleet.size(), 0.0);
  if (fleet.size() < 2) return offsets;
  const SpanIndex by_id = index_spans(fleet);

  // min over matched pairs of (receive begin on j) - (send begin on i),
  // per ordered (i, j): latency-plus-skew with the queueing noise floored
  // away.
  std::map<std::pair<std::size_t, std::size_t>, double> min_delta;
  for (std::size_t j = 0; j < fleet.size(); ++j) {
    for (const SpanRecord& r : fleet[j].spans) {
      if (!r.remote_parent) continue;
      const auto it = by_id.find(r.parent);
      if (it == by_id.end()) continue;
      const std::size_t i = it->second.first;
      if (i == j) continue;
      const double delta = static_cast<double>(r.wall_begin_us) -
                           static_cast<double>(it->second.second->wall_begin_us);
      const auto key = std::make_pair(i, j);
      const auto cur = min_delta.find(key);
      if (cur == min_delta.end() || delta < cur->second) min_delta[key] = delta;
    }
  }

  // Skew edges: d(i, j) = clock_j - clock_i. Bidirectional pairs cancel the
  // symmetric latency; a one-directional pair falls back to the raw minimum
  // (biased by one-way latency — still far better than no alignment).
  std::map<std::size_t, std::vector<std::pair<std::size_t, double>>> edges;
  for (const auto& [key, fwd] : min_delta) {
    const auto [i, j] = key;
    const auto rev = min_delta.find({j, i});
    const double d = rev != min_delta.end() ? (fwd - rev->second) / 2.0 : fwd;
    edges[i].push_back({j, d});
    edges[j].push_back({i, -d});
  }

  // BFS from the reference (entry 0): rel[j] = clock_j - clock_0.
  std::vector<bool> seen(fleet.size(), false);
  std::vector<double> rel(fleet.size(), 0.0);
  std::vector<std::size_t> queue{0};
  seen[0] = true;
  while (!queue.empty()) {
    const std::size_t i = queue.back();
    queue.pop_back();
    const auto it = edges.find(i);
    if (it == edges.end()) continue;
    for (const auto& [j, d] : it->second) {
      if (seen[j]) continue;
      seen[j] = true;
      rel[j] = rel[i] + d;
      queue.push_back(j);
    }
  }
  // Shifting entry j's timestamps by -rel[j] maps them onto entry 0's axis.
  for (std::size_t j = 0; j < fleet.size(); ++j) offsets[j] = -rel[j];
  return offsets;
}

namespace {

std::string fmt_double(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

}  // namespace

std::string fleet_chrome_trace_json(const std::vector<NodeTelemetry>& fleet,
                                    const std::vector<double>& offsets_us) {
  const SpanIndex by_id = index_spans(fleet);
  auto offset_of = [&](std::size_t i) {
    return i < offsets_us.size() ? offsets_us[i] : 0.0;
  };
  // Rebase so the earliest aligned span begins at ts 0 — per-process
  // steady_clock epochs are arbitrary and Perfetto's UI dislikes 2^40 us.
  double t0 = 0.0;
  bool any = false;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    for (const SpanRecord& s : fleet[i].spans) {
      const double ts = static_cast<double>(s.wall_begin_us) + offset_of(i);
      if (!any || ts < t0) t0 = ts;
      any = true;
    }
  }
  auto ts_of = [&](const SpanRecord& s, std::size_t i, bool end) {
    return static_cast<double>(end ? s.wall_end_us : s.wall_begin_us) +
           offset_of(i) - t0;
  };

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event) {
    out += first ? "\n" : ",\n";
    first = false;
    out += event;
  };

  std::set<std::uint64_t> named_pids;
  for (const NodeTelemetry& t : fleet) {
    if (!named_pids.insert(t.pid).second) continue;
    emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + fmt_u64(t.pid) +
         ",\"tid\":0,\"args\":{\"name\":\"node " + fmt_u64(t.node) +
         " (pid " + fmt_u64(t.pid) + ")" +
         (t.recovered ? " [flight]" : "") + "\"}}");
  }

  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const NodeTelemetry& t = fleet[i];
    for (const SpanRecord& s : t.spans) {
      const double begin = ts_of(s, i, /*end=*/false);
      const double dur = std::max(0.0, ts_of(s, i, /*end=*/true) - begin);
      emit("{\"ph\":\"X\",\"name\":\"" + std::string(s.name) +
           "\",\"cat\":\"" + to_string(s.category) +
           "\",\"ts\":" + fmt_double(begin) + ",\"dur\":" + fmt_double(dur) +
           ",\"pid\":" + fmt_u64(t.pid) +
           ",\"tid\":" + fmt_u64(static_cast<std::uint64_t>(s.category)) +
           ",\"args\":{\"span\":" + fmt_u64(s.id) +
           ",\"parent\":" + fmt_u64(s.parent) +
           ",\"trace\":" + fmt_u64(s.trace_id) +
           ",\"hop\":" + fmt_u64(s.hop) +
           ",\"node\":" + fmt_u64(s.node) +
           (t.recovered ? ",\"flight\":true" : "") + "}}");
      if (!s.remote_parent) continue;
      const auto sender = by_id.find(s.parent);
      if (sender == by_id.end()) continue;
      const auto [si, sp] = sender->second;
      emit("{\"ph\":\"s\",\"name\":\"causal\",\"cat\":\"trace\",\"id\":" +
           fmt_u64(s.id) +
           ",\"ts\":" + fmt_double(ts_of(*sp, si, /*end=*/false)) +
           ",\"pid\":" + fmt_u64(fleet[si].pid) + ",\"tid\":" +
           fmt_u64(static_cast<std::uint64_t>(sp->category)) + "}");
      emit("{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"causal\",\"cat\":\"trace\","
           "\"id\":" + fmt_u64(s.id) + ",\"ts\":" + fmt_double(begin) +
           ",\"pid\":" + fmt_u64(t.pid) + ",\"tid\":" +
           fmt_u64(static_cast<std::uint64_t>(s.category)) + "}");
    }
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

NodeTelemetry telemetry_from_flight(FlightData&& flight) {
  NodeTelemetry t;
  t.node = flight.node;
  t.pid = flight.pid;
  t.recovered = true;
  t.spans = std::move(flight.spans);
  t.name_pool = std::move(flight.name_pool);
  for (const SpanRecord& s : t.spans) {
    t.wall_now_us = std::max(t.wall_now_us, s.wall_end_us);
  }
  if (!flight.metrics_blob.empty()) {
    // Torn or undecodable metrics leave an empty registry — the spans are
    // the forensic payload; metrics are best-effort.
    decode_node_metrics(flight.metrics_blob.data(), flight.metrics_blob.size(),
                        &t.metrics);
  }
  return t;
}

std::size_t augment_missing_from_flight(const std::string& dir,
                                        std::vector<NodeTelemetry>* fleet) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  std::set<std::uint32_t> live;
  for (const NodeTelemetry& t : *fleet) live.insert(t.node);
  std::vector<std::string> files;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    constexpr std::string_view kSuffix = ".flight";
    if (name.size() > kSuffix.size() &&
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) == 0) {
      files.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  std::sort(files.begin(), files.end());  // deterministic merge order

  std::size_t added = 0;
  for (const std::string& path : files) {
    FlightData data;
    if (!read_flight_file(path, &data)) continue;
    if (!live.insert(data.node).second) continue;  // scraped live already
    fleet->push_back(telemetry_from_flight(std::move(data)));
    ++added;
  }
  return added;
}

}  // namespace bcc::obs
