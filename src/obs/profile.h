// Always-available, default-off sampling profiler: a SIGPROF/itimer
// sampler that answers "which code is hot right now?" without a rebuild,
// a restart, or an external tool — the attribution layer the serve-plane
// scaling work reports against (ROADMAP open item 2).
//
// How it works:
//   * start() arms setitimer(ITIMER_PROF) (or ITIMER_REAL in wall mode) at
//     ~hz samples/second and installs a SIGPROF (SIGALRM) handler. The
//     kernel delivers the signal to whichever thread is burning CPU, so
//     samples land where the time goes — across ALL threads, with zero
//     per-thread setup.
//   * The handler is async-signal-safe by construction: it calls
//     backtrace() (warmed up in start(), before the handler is installed,
//     because glibc's first call lazily dlopens libgcc — unsafe in a
//     handler), claims a preallocated slot with one lock-free CAS, copies
//     raw PCs, and commits with a release store. No malloc, no locks, no
//     formatting, no registry access. A full ring drops the sample and
//     bumps an atomic (visible as bcc.profile.samples_dropped).
//   * Aggregation and symbolization are lazy and happen on the *consumer*
//     thread (folded()/folded_text()): raw PCs fold into per-stack counts,
//     and each distinct PC is symbolized once through dladdr (demangled via
//     __cxa_demangle) and cached. Signal-side cost stays O(depth) memcpy.
//
// Output is Brendan Gregg's folded-stack format — "outer;inner N" per line,
// ready for flamegraph.pl / speedscope (`bcc profile --out stacks.folded`).
//
// Overhead contract (bench/profile_bench.cpp pins both sides): not running
// = one relaxed atomic load at each would-be hook, indistinguishable from
// off; running at the default 99 Hz = single-digit microseconds of handler
// time per second per busy thread (<5% on the serve overload bench).
//
// 99 Hz, not 100: the classic prime-adjacent rate, so sampling never
// phase-locks with 10ms/100ms periodic work and systematically hits (or
// misses) the same code.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace bcc::obs {

/// See file comment. One process-wide instance (global()) — itimers and
/// signal dispositions are process-wide resources, so private instances
/// exist only for tests that start/stop them serially.
class SamplingProfiler {
 public:
  /// Raw PCs kept per sample; deeper stacks are truncated at the root end
  /// (the hot leaf frames are the ones that matter for a flamegraph).
  static constexpr std::size_t kMaxFrames = 48;
  /// Slot-ring capacity: bounds memory (kRingSlots * ~400B) and how long
  /// the consumer may sleep between drains at 99 Hz (~40s here).
  static constexpr std::size_t kRingSlots = 4096;

  /// What the itimer counts down against.
  enum class Mode : std::uint8_t {
    kCpu = 0,   ///< ITIMER_PROF/SIGPROF: fires per CPU second consumed
    kWall = 1,  ///< ITIMER_REAL/SIGALRM: fires per wall second (sees blocking)
  };

  struct Options {
    int hz = 99;            ///< target samples per second (clamped to [1,1000])
    Mode mode = Mode::kCpu;
  };

  SamplingProfiler() = default;
  ~SamplingProfiler();
  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  /// Arms the timer + handler. Returns false (and stays stopped) when a
  /// profiler is already running in this process — the signal disposition
  /// is process-wide, two owners cannot share it.
  bool start(const Options& options);
  bool start() { return start(Options()); }
  /// Disarms the timer, restores the previous signal disposition, and
  /// drains outstanding samples into the cumulative aggregate. Idempotent.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Drains the ring into the cumulative aggregate and returns it as
  /// (folded stack, samples) pairs, hottest first. Symbolization happens
  /// here, once per distinct PC. Callable while running.
  std::vector<std::pair<std::string, std::uint64_t>> folded();
  /// folded() rendered one "stack count\n" line per entry — the flamegraph
  /// input format.
  std::string folded_text();
  /// The hottest `n` entries of folded() — the fleet telemetry payload.
  std::vector<std::pair<std::string, std::uint64_t>> top_stacks(std::size_t n);

  /// Mirrors the profiler's own counters into Registry::global() as
  /// bcc.profile.* (samples, samples_dropped, unique_stacks, running).
  /// Separate from the handler on purpose: the registry's mutex and maps
  /// are not async-signal-safe, so the handler only touches private
  /// atomics and this publishes them from a normal thread.
  void publish_metrics();

  /// Samples captured / dropped since construction (monotonic).
  std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Forgets the cumulative aggregate (tests; the ring is untouched).
  void clear();

  static SamplingProfiler& global();

 private:
  // One preallocated sample slot. `state` cycles kFree -> kWriting (claimed
  // by the handler's CAS) -> kReady (release store after the PCs are in)
  // -> kFree (consumer). Claiming is lock-free and multi-signal-safe: two
  // overlapping handler runs on different threads CAS different outcomes.
  struct Slot {
    std::atomic<std::uint32_t> state{0};  // kFree
    std::uint32_t depth = 0;
    void* pcs[kMaxFrames];
  };

  static void signal_handler(int signo);
  void capture();               // handler body (instance side)
  void drain_ring_locked();     // folds kReady slots into aggregate_
  const std::string& symbol_of(void* pc);  // cached dladdr lookup

  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> next_slot_{0};
  std::vector<Slot> ring_ = std::vector<Slot>(kRingSlots);

  std::mutex consumer_mutex_;  // guards aggregate_ + symbol cache + drain
  std::unordered_map<std::string, std::uint64_t> aggregate_;
  std::unordered_map<void*, std::string> symbols_;

  Options options_;
  int signo_ = 0;              // armed signal while running
  bool restore_handler_ = false;
  // Previous dispositions, restored by stop(). Storage lives in the .cpp
  // (sigaction/itimerval are POSIX types; keep <csignal> out of headers).
  struct OsState;
  OsState* os_ = nullptr;
};

}  // namespace bcc::obs
