#include "obs/trace.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace bcc::obs {

namespace {

std::uint64_t wall_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Innermost active span on this thread — the parent of the next span
/// constructed here (span == 0 means none). Restored by Span destructors
/// (strict RAII nesting), so it is exactly a stack. trace/hop ride along so
/// nested spans inherit their enclosing span's causal chain.
struct ThreadSpanTop {
  std::uint64_t span = 0;
  std::uint64_t trace = 0;
  std::uint32_t hop = 0;
};
thread_local ThreadSpanTop tl_top;

}  // namespace

void Tracer::set_capacity(std::size_t spans) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_capacity_ = spans == 0 ? 1 : spans;
  ring_.clear();
  ring_.shrink_to_fit();
  ring_head_ = 0;
}

std::size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_capacity_;
}

void Tracer::set_sim_clock(std::function<double()> now) {
  std::lock_guard<std::mutex> lock(mutex_);
  sim_now_ = std::move(now);
}

void Tracer::set_sink(std::function<void(const SpanRecord&)> sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

std::uint64_t Tracer::begin_span(double* sim_now) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  *sim_now = sim_now_ ? sim_now_() : -1.0;
  return id;
}

void Tracer::end_span(SpanRecord rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sim_now_) rec.sim_end = sim_now_();
  if (sink_) sink_(rec);
  if (ring_.size() < ring_capacity_) {
    ring_.push_back(rec);
    return;
  }
  // Full: overwrite the oldest completed span. The overwrite used to be
  // silent; now it is visible both locally (dropped()) and fleet-wide via
  // bcc.trace.spans_dropped, which the collector sums across processes.
  ring_[ring_head_] = rec;
  ring_head_ = (ring_head_ + 1) % ring_capacity_;
  ++dropped_;
  spans_dropped_counter().add(1);
}

Counter& spans_dropped_counter() {
  static Counter& counter =
      Registry::global().counter("bcc.trace.spans_dropped");
  return counter;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // ring_head_ is the oldest entry once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<SpanRecord> Tracer::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  ring_.clear();
  ring_head_ = 0;
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  ring_head_ = 0;
  dropped_ = 0;
}

Tracer& Tracer::global() {
  // Leaked on purpose, same reasoning as Registry::global().
  static Tracer* instance = new Tracer();
  return *instance;
}

Span::Span(Tracer& tracer, SpanCategory category, const char* name) {
  if (!tracer.enabled(category)) return;  // the ~free disabled path
  tracer_ = &tracer;
  rec_.category = category;
  rec_.name = name;
  rec_.parent = tl_top.span;
  rec_.hop = tl_top.hop;
  rec_.wall_begin_us = wall_now_us();
  rec_.id = tracer.begin_span(&rec_.sim_begin);
  // A root span (no enclosing span) starts a new trace named by its own id.
  rec_.trace_id = tl_top.trace != 0 ? tl_top.trace : rec_.id;
  prev_span_ = tl_top.span;
  prev_trace_ = tl_top.trace;
  prev_hop_ = tl_top.hop;
  tl_top = {rec_.id, rec_.trace_id, rec_.hop};
}

Span::Span(Tracer& tracer, SpanCategory category, const char* name,
           const TraceContext& remote, std::uint32_t node) {
  if (!tracer.enabled(category)) return;
  tracer_ = &tracer;
  rec_.category = category;
  rec_.name = name;
  rec_.node = node;
  rec_.wall_begin_us = wall_now_us();
  rec_.id = tracer.begin_span(&rec_.sim_begin);
  if (remote.valid()) {
    rec_.parent = remote.parent_span;
    rec_.trace_id = remote.trace_id;
    rec_.hop = remote.hop;
    rec_.remote_parent = true;
  } else {
    // No context on the wire (sender traced nothing): fresh local root.
    rec_.parent = tl_top.span;
    rec_.trace_id = tl_top.trace != 0 ? tl_top.trace : rec_.id;
    rec_.hop = tl_top.hop;
  }
  prev_span_ = tl_top.span;
  prev_trace_ = tl_top.trace;
  prev_hop_ = tl_top.hop;
  tl_top = {rec_.id, rec_.trace_id, rec_.hop};
}

Span::~Span() {
  if (!tracer_) return;
  rec_.wall_end_us = wall_now_us();
  tl_top = {prev_span_, prev_trace_, prev_hop_};
  tracer_->end_span(rec_);
}

TraceContext current_trace_context() {
  if (tl_top.trace == 0) return {};
  return {tl_top.trace, tl_top.span, tl_top.hop + 1};
}

}  // namespace bcc::obs
