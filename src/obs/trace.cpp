#include "obs/trace.h"

#include <chrono>
#include <utility>

namespace bcc::obs {

namespace {

std::uint64_t wall_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Innermost active span on this thread (0 = none) — the parent of the next
/// span constructed here. Restored by Span destructors (strict RAII
/// nesting), so it is exactly a stack.
thread_local std::uint64_t tl_current_span = 0;

}  // namespace

void Tracer::set_capacity(std::size_t spans) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_capacity_ = spans == 0 ? 1 : spans;
  ring_.clear();
  ring_.shrink_to_fit();
  ring_head_ = 0;
}

std::size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_capacity_;
}

void Tracer::set_sim_clock(std::function<double()> now) {
  std::lock_guard<std::mutex> lock(mutex_);
  sim_now_ = std::move(now);
}

std::uint64_t Tracer::begin_span(double* sim_now) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  *sim_now = sim_now_ ? sim_now_() : -1.0;
  return id;
}

void Tracer::end_span(SpanRecord rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sim_now_) rec.sim_end = sim_now_();
  if (ring_.size() < ring_capacity_) {
    ring_.push_back(rec);
    return;
  }
  // Full: overwrite the oldest completed span.
  ring_[ring_head_] = rec;
  ring_head_ = (ring_head_ + 1) % ring_capacity_;
  ++dropped_;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // ring_head_ is the oldest entry once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  ring_head_ = 0;
  dropped_ = 0;
}

Tracer& Tracer::global() {
  // Leaked on purpose, same reasoning as Registry::global().
  static Tracer* instance = new Tracer();
  return *instance;
}

Span::Span(Tracer& tracer, SpanCategory category, const char* name) {
  if (!tracer.enabled(category)) return;  // the ~free disabled path
  tracer_ = &tracer;
  rec_.category = category;
  rec_.name = name;
  rec_.parent = tl_current_span;
  rec_.wall_begin_us = wall_now_us();
  rec_.id = tracer.begin_span(&rec_.sim_begin);
  tl_current_span = rec_.id;
}

Span::~Span() {
  if (!tracer_) return;
  rec_.wall_end_us = wall_now_us();
  tl_current_span = rec_.parent;
  tracer_->end_span(rec_);
}

}  // namespace bcc::obs
