// Convergence health monitoring: the paper's decentralized algorithms are
// judged by how fast (and whether) every node's prediction/anchor tables
// reach the exact synchronous fixpoint under loss and churn. This monitor
// turns that from a pass/fail test assertion into recorded `bcc.conv.*`
// gauges and histograms: per-node staleness, drift vs. the fixpoint,
// suspicion/outage churn, and — the headline — time-to-convergence, sampled
// on simulated time.
//
// Layering: obs/ cannot see core/ (core links against obs), so the monitor
// pulls plain-data ConvergenceSamples through a caller-supplied Sampler.
// core/convergence_probe.h binds that Sampler to a live AsyncOverlay and a
// lazily recomputed synchronous reference fixpoint; tests and the `bcc
// health` subcommand wire the two together.
//
// Metrics (registered at construction, all in one registry):
//   bcc.conv.samples                 counter   sample() calls so far
//   bcc.conv.nodes                   gauge     nodes in the last sample
//   bcc.conv.drifted_nodes           gauge     nodes differing from fixpoint
//   bcc.conv.drift_fraction          gauge     drifted / total
//   bcc.conv.converged               gauge     1 when drift hit 0 (sticky
//                                              until drift reappears)
//   bcc.conv.down_nodes              gauge     crashed right now
//   bcc.conv.suspected_links         gauge     suspected (x, peer) pairs
//   bcc.conv.suspicion_churn         counter   changes of suspected_links
//   bcc.conv.staleness_ms            histogram per-node ms since last
//                                              applied update, per sample
//   bcc.conv.node_convergence_ms     histogram sim time (ms) at which each
//                                              node first matched the fixpoint
//   bcc.conv.time_to_convergence_ms  histogram sim time (ms) at which ALL
//                                              nodes matched (once per
//                                              convergence episode)
//   bcc.conv.reconverge_congestion_ms      histogram  time-to-reconvergence
//   bcc.conv.reconverge_flash_crowd_ms     histogram  after a disturbance of
//   bcc.conv.reconverge_region_degrade_ms  histogram  that class (soak
//                                                     harness, record_
//                                                     reconvergence)
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"

namespace bcc::obs {

/// Registered by ConvergenceMonitor and looked up by name in scraped
/// RegistrySnapshots (`bcc top`'s staleness column); shared so the lint's
/// one-literal-per-instrument rule holds.
inline constexpr const char* kStalenessHistogramName = "bcc.conv.staleness_ms";

/// One node's health at a sample instant, as plain data.
struct NodeHealth {
  std::uint64_t id = 0;
  /// Seconds of simulated time since the node last applied a state-changing
  /// update (its table-refresh recency; grows while the node is in steady
  /// state too — read together with `matches_reference`).
  double staleness = 0.0;
  /// True when the node's aggregate tables equal the reference fixpoint.
  bool matches_reference = false;
};

/// Everything the monitor needs from one pull, as plain data.
struct ConvergenceSample {
  double now = 0.0;  ///< simulated seconds
  std::vector<NodeHealth> nodes;
  std::size_t suspected_links = 0;
  std::size_t down_nodes = 0;
};

/// See file comment.
class ConvergenceMonitor {
 public:
  using Sampler = std::function<ConvergenceSample()>;

  /// Registers the bcc.conv.* instruments in `registry` (global() for the
  /// CLI, a private registry in tests). The registry must outlive the
  /// monitor; `sampler` is pulled by every sample() call.
  ConvergenceMonitor(Registry* registry, Sampler sampler);

  /// Pulls one sample and folds it into the instruments. Returns the drift
  /// count (0 = currently converged).
  std::size_t sample();

  /// Folds one disturbance-repair episode into the per-class
  /// time-to-reconvergence histogram. `disturbance_class` must be one of
  /// "congestion", "flash_crowd", "region_degrade" (the data-layer
  /// DisturbanceClass names — obs cannot see that enum, so the contract is
  /// by name). The soak harness calls this once per disturbance with the
  /// simulated milliseconds between the disturbance landing and every
  /// node's tables matching the fixpoint again.
  void record_reconvergence(std::string_view disturbance_class, double ms);

  /// True when the last sample had every node matching the reference.
  bool converged() const { return converged_; }
  /// Simulated time at which the system first fully converged (-1 = never
  /// yet). Re-armed when drift reappears (churn), so the histogram collects
  /// one entry per convergence episode.
  double converged_at() const { return converged_at_; }
  std::uint64_t samples() const { return samples_; }

 private:
  Sampler sampler_;
  Counter* samples_counter_;
  Counter* suspicion_churn_;
  Gauge* nodes_gauge_;
  Gauge* drifted_gauge_;
  Gauge* drift_fraction_;
  Gauge* converged_gauge_;
  Gauge* down_gauge_;
  Gauge* suspected_gauge_;
  Histogram* staleness_ms_;
  Histogram* node_convergence_ms_;
  Histogram* time_to_convergence_ms_;
  Histogram* reconverge_congestion_ms_;
  Histogram* reconverge_flash_crowd_ms_;
  Histogram* reconverge_region_degrade_ms_;

  std::uint64_t samples_ = 0;
  std::size_t last_suspected_ = 0;
  bool converged_ = false;
  double converged_at_ = -1.0;
  std::unordered_set<std::uint64_t> node_converged_;  ///< already recorded
};

}  // namespace bcc::obs
