#include "obs/profile.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"

namespace bcc::obs {

namespace {

// Slot lifecycle (see SamplingProfiler::Slot).
constexpr std::uint32_t kFree = 0;
constexpr std::uint32_t kWriting = 1;
constexpr std::uint32_t kReady = 2;

/// The instance whose handler is armed. The handler loads it with acquire
/// so a half-constructed profiler is never observed; stop() nulls it before
/// tearing anything down, making a straggler signal a no-op.
std::atomic<SamplingProfiler*> g_active{nullptr};

/// Serializes start()/stop() across instances: the itimer and the signal
/// disposition are process-wide, only one profiler may own them.
std::mutex& arm_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

struct SamplingProfiler::OsState {
  struct sigaction old_action {};
  struct itimerval old_timer {};
  int which = ITIMER_PROF;
};

SamplingProfiler::~SamplingProfiler() { stop(); }

void SamplingProfiler::signal_handler(int /*signo*/) {
  SamplingProfiler* p = g_active.load(std::memory_order_acquire);
  if (p != nullptr) p->capture();
}

void SamplingProfiler::capture() {
  // Async-signal-safe: errno save/restore, one CAS to claim a slot,
  // backtrace() into preallocated storage (warmed up in start()), one
  // release store to commit. Nothing here allocates, locks, or formats.
  const int saved_errno = errno;
  const std::uint64_t i =
      next_slot_.fetch_add(1, std::memory_order_relaxed) % kRingSlots;
  Slot& slot = ring_[i];
  std::uint32_t expected = kFree;
  if (!slot.state.compare_exchange_strong(expected, kWriting,
                                          std::memory_order_acq_rel)) {
    // Consumer hasn't drained this slot yet (or a concurrent handler on
    // another thread owns it): drop, never wait.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  const int depth = ::backtrace(slot.pcs, static_cast<int>(kMaxFrames));
  if (depth <= 0) {
    slot.state.store(kFree, std::memory_order_release);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  slot.depth = static_cast<std::uint32_t>(depth);
  slot.state.store(kReady, std::memory_order_release);
  samples_.fetch_add(1, std::memory_order_relaxed);
  errno = saved_errno;
}

bool SamplingProfiler::start(const Options& options) {
  std::lock_guard<std::mutex> arm(arm_mutex());
  if (g_active.load(std::memory_order_relaxed) != nullptr) return false;

  options_ = options;
  options_.hz = std::clamp(options_.hz, 1, 1000);
  signo_ = options_.mode == Mode::kCpu ? SIGPROF : SIGALRM;

  // Warm up glibc's unwinder BEFORE the handler can fire: the first
  // backtrace() call dlopens libgcc, which takes loader locks — deadlock
  // bait inside a signal handler, harmless here.
  void* warm[kMaxFrames];
  ::backtrace(warm, static_cast<int>(kMaxFrames));

  os_ = new OsState;
  os_->which = options_.mode == Mode::kCpu ? ITIMER_PROF : ITIMER_REAL;

  struct sigaction sa {};
  sa.sa_handler = &SamplingProfiler::signal_handler;
  sigemptyset(&sa.sa_mask);
  // SA_RESTART: sampled syscalls resume instead of surfacing EINTR to code
  // that never expected a profiler to exist.
  sa.sa_flags = SA_RESTART;
  if (::sigaction(signo_, &sa, &os_->old_action) != 0) {
    delete os_;
    os_ = nullptr;
    return false;
  }
  // Publish before arming the timer: the first tick must see a complete
  // instance.
  g_active.store(this, std::memory_order_release);

  const long interval_us = std::max(1L, 1000000L / options_.hz);
  struct itimerval tv {};
  tv.it_interval.tv_sec = interval_us / 1000000;
  tv.it_interval.tv_usec = interval_us % 1000000;
  tv.it_value = tv.it_interval;
  if (::setitimer(os_->which, &tv, &os_->old_timer) != 0) {
    g_active.store(nullptr, std::memory_order_release);
    ::sigaction(signo_, &os_->old_action, nullptr);
    delete os_;
    os_ = nullptr;
    return false;
  }
  running_.store(true, std::memory_order_release);
  return true;
}

void SamplingProfiler::stop() {
  std::lock_guard<std::mutex> arm(arm_mutex());
  if (g_active.load(std::memory_order_relaxed) != this) return;

  // Disarm the timer, then detach the handler's instance pointer. The old
  // signal disposition is restored only if it was a real handler: a signal
  // already in flight when we disarm would hit SIG_DFL (= terminate) if we
  // blindly restored a default disposition, so in that common case our
  // (now inert — g_active is null) handler stays installed instead.
  ::setitimer(os_->which, &os_->old_timer, nullptr);
  g_active.store(nullptr, std::memory_order_release);
  const bool old_is_handler = os_->old_action.sa_handler != SIG_DFL &&
                              os_->old_action.sa_handler != SIG_IGN;
  if (old_is_handler) ::sigaction(signo_, &os_->old_action, nullptr);
  running_.store(false, std::memory_order_release);
  delete os_;
  os_ = nullptr;

  std::lock_guard<std::mutex> lock(consumer_mutex_);
  drain_ring_locked();
}

const std::string& SamplingProfiler::symbol_of(void* pc) {
  auto it = symbols_.find(pc);
  if (it != symbols_.end()) return it->second;

  std::string name;
  Dl_info info{};
  if (::dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      name = demangled;
    } else {
      name = info.dli_sname;
    }
    std::free(demangled);
  } else {
    // Static functions in a non-PIE binary often have no dynamic symbol:
    // keep the module-relative address, still resolvable offline via
    // addr2line against the binary.
    const char* module =
        info.dli_fname != nullptr ? std::strrchr(info.dli_fname, '/') : nullptr;
    const char* base = module != nullptr
                           ? module + 1
                           : (info.dli_fname != nullptr ? info.dli_fname : "?");
    char buf[256];
    const auto off = info.dli_fbase != nullptr
                         ? reinterpret_cast<std::uintptr_t>(pc) -
                               reinterpret_cast<std::uintptr_t>(info.dli_fbase)
                         : reinterpret_cast<std::uintptr_t>(pc);
    std::snprintf(buf, sizeof(buf), "%s+0x%zx", base,
                  static_cast<std::size_t>(off));
    name = buf;
  }
  // Folded format separators are structural: scrub them out of symbols.
  for (char& c : name) {
    if (c == ';' || c == '\n' || c == ' ') c = '_';
  }
  return symbols_.emplace(pc, std::move(name)).first->second;
}

void SamplingProfiler::drain_ring_locked() {
  std::string key;
  for (Slot& slot : ring_) {
    if (slot.state.load(std::memory_order_acquire) != kReady) continue;
    // backtrace() is leaf-first; folded stacks are root-first. Leading
    // frames are the handler + signal trampoline — skip any prefix that
    // symbolizes into profiler/signal plumbing so flamegraph leaves are
    // the interrupted code, not the sampler.
    std::size_t begin = 0;
    const std::size_t depth = std::min<std::size_t>(slot.depth, kMaxFrames);
    while (begin < depth) {
      const std::string& sym = symbol_of(slot.pcs[begin]);
      if (sym.find("SamplingProfiler") == std::string::npos &&
          sym.find("signal_handler") == std::string::npos &&
          sym.find("restore_rt") == std::string::npos &&
          sym.find("killpg") == std::string::npos) {
        break;
      }
      ++begin;
    }
    key.clear();
    for (std::size_t i = depth; i-- > begin;) {
      key += symbol_of(slot.pcs[i]);
      if (i != begin) key += ';';
    }
    slot.state.store(kFree, std::memory_order_release);
    if (key.empty()) continue;
    ++aggregate_[key];
  }
}

std::vector<std::pair<std::string, std::uint64_t>> SamplingProfiler::folded() {
  std::lock_guard<std::mutex> lock(consumer_mutex_);
  drain_ring_locked();
  std::vector<std::pair<std::string, std::uint64_t>> out(aggregate_.begin(),
                                                         aggregate_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  return out;
}

std::string SamplingProfiler::folded_text() {
  std::string out;
  for (const auto& [stack, n] : folded()) {
    out += stack;
    out += ' ';
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(n));
    out += buf;
    out += '\n';
  }
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>>
SamplingProfiler::top_stacks(std::size_t n) {
  auto all = folded();
  if (all.size() > n) all.resize(n);
  return all;
}

void SamplingProfiler::publish_metrics() {
  // kLast: these are node-local scalars — a fleet merge keeping "whichever
  // node reported last" is explicitly what we want for running/unique, and
  // the sample totals that matter fleet-wide ride the profile summaries.
  Registry& r = Registry::global();
  std::size_t unique = 0;
  {
    std::lock_guard<std::mutex> lock(consumer_mutex_);
    drain_ring_locked();
    unique = aggregate_.size();
  }
  r.gauge("bcc.profile.samples", GaugeAgg::kSum)
      .set(static_cast<double>(samples()));
  r.gauge("bcc.profile.samples_dropped", GaugeAgg::kSum)
      .set(static_cast<double>(dropped()));
  r.gauge("bcc.profile.unique_stacks", GaugeAgg::kLast)
      .set(static_cast<double>(unique));
  r.gauge("bcc.profile.running", GaugeAgg::kLast).set(running() ? 1.0 : 0.0);
}

void SamplingProfiler::clear() {
  std::lock_guard<std::mutex> lock(consumer_mutex_);
  drain_ring_locked();
  aggregate_.clear();
}

SamplingProfiler& SamplingProfiler::global() {
  // Leaked like Registry::global(): the handler may outlive static
  // destruction order games; the instance must never die first.
  static SamplingProfiler* instance = new SamplingProfiler();
  return *instance;
}

}  // namespace bcc::obs
