// The tracing half of the observability substrate: RAII Span objects record
// begin/end against wall-clock time (steady_clock microseconds) and — when a
// simulation clock is installed — simulated EventEngine time, into a bounded
// ring buffer that overwrites the oldest completed span when full.
//
// Cost model: a Span whose category is disabled (the default for every
// category) does ONE relaxed atomic load and a branch — no clock reads, no
// id allocation, no locking — so instrumenting the gossip hot loop costs
// ~nothing until someone turns tracing on (BM_SpanOnOff quantifies this).
// Enabled spans take the tracer mutex at begin and end; tracing is a
// diagnostic mode, not a steady-state fast path.
//
// Nesting: spans on the same thread form a stack (thread-local current-span
// id), so each record carries its parent's id and `bcc trace` can print the
// tree.
//
// Causality across nodes: a TraceContext (trace id, parent span id, hop
// count — 20 bytes on the wire) extracted from a live span can ride inside
// a simulated network message; the receive side opens its span *from* that
// context, so the receiver's record points at the sender's span id even
// though the two "nodes" are different simulated processes. The Chrome
// trace exporter (obs/export.h) turns those remote edges into flow arrows.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace bcc::obs {

/// Coarse subsystems tracing can be toggled for independently.
enum class SpanCategory : std::uint8_t {
  kSim = 0,    ///< cycle-driven engine, event engine
  kGossip = 1, ///< async overlay exchanges, retries, suspicion
  kServe = 2,  ///< query serving
  kTree = 3,   ///< framework maintenance
  kBench = 4,  ///< harnesses and ad-hoc use
};
inline constexpr std::size_t kSpanCategoryCount = 5;

constexpr const char* to_string(SpanCategory c) {
  switch (c) {
    case SpanCategory::kSim: return "sim";
    case SpanCategory::kGossip: return "gossip";
    case SpanCategory::kServe: return "serve";
    case SpanCategory::kTree: return "tree";
    case SpanCategory::kBench: return "bench";
  }
  return "?";
}

/// SpanRecord::node value meaning "no simulated node attached".
inline constexpr std::uint32_t kNoSpanNode = 0xffffffffu;

/// Compact causal context carried inside serialized messages: enough for a
/// receive-side span on another node to link to the sender's span. Wire
/// format (see kTraceContextWireBytes): trace_id u64 | parent_span u64 |
/// hop u32, little-endian. trace_id == 0 means "no trace attached" — the
/// default when the sender's category was disabled, so propagation costs
/// nothing in production. Plain value type: dropping a message drops the
/// context with it, duplicating a message copies it (no ownership, no
/// leaks).
struct TraceContext {
  std::uint64_t trace_id = 0;     ///< 0 = invalid / tracing off
  std::uint64_t parent_span = 0;  ///< sender-side span id
  std::uint32_t hop = 0;          ///< network hops from the trace root

  bool valid() const { return trace_id != 0; }
};

/// Bytes a serialized TraceContext adds to a message payload.
inline constexpr std::size_t kTraceContextWireBytes = 8 + 8 + 4;

class Counter;  // metrics.h

/// The process-wide `bcc.trace.spans_dropped` counter (registered on first
/// use): bumped on every silent ring overwrite, pre-registered by the node
/// runtime so scraped snapshots carry it even at zero. The shared accessor
/// keeps the name literal at one site (check_metrics_names.sh).
Counter& spans_dropped_counter();

/// One completed span. `name` must point at storage outliving the tracer
/// (instrumentation sites pass string literals). Sim times are -1 when no
/// simulation clock was installed at the corresponding edge.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root; remote sender span when remote_parent
  std::uint64_t trace_id = 0;  ///< causal chain id (root span's own id)
  SpanCategory category = SpanCategory::kSim;
  const char* name = "";
  std::uint64_t wall_begin_us = 0;
  std::uint64_t wall_end_us = 0;
  double sim_begin = -1.0;
  double sim_end = -1.0;
  std::uint32_t hop = 0;           ///< network hops from the trace root
  std::uint32_t node = kNoSpanNode;  ///< simulated node id, if any
  /// True when `parent` came over the network via a TraceContext (the parent
  /// span ran on another simulated node) rather than from this thread's
  /// span stack.
  bool remote_parent = false;

  std::uint64_t wall_duration_us() const {
    return wall_end_us - wall_begin_us;
  }
};

/// See file comment. Thread-safe; one process-wide instance (global()) plus
/// private instances for tests.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  Tracer() = default;

  /// Per-category enable flags (all disabled initially).
  void enable(SpanCategory c, bool on = true) {
    enabled_[static_cast<std::size_t>(c)].store(on,
                                                std::memory_order_relaxed);
  }
  void enable_all(bool on = true) {
    for (auto& f : enabled_) f.store(on, std::memory_order_relaxed);
  }
  bool enabled(SpanCategory c) const {
    return enabled_[static_cast<std::size_t>(c)].load(
        std::memory_order_relaxed);
  }

  /// Resizes the ring (drops buffered spans). Capacity 0 is clamped to 1.
  void set_capacity(std::size_t spans);
  std::size_t capacity() const;

  /// Installs / clears the simulated-time source sampled at span edges
  /// (e.g. [&engine] { return engine.now(); }). The callable must stay
  /// valid until cleared — clear before the engine dies.
  void set_sim_clock(std::function<double()> now);
  void clear_sim_clock() { set_sim_clock(nullptr); }

  /// Installs / clears a per-completed-span sink invoked (under the tracer
  /// mutex, on the completing thread) after each span is pushed into the
  /// ring — the flight recorder's hook (obs/flight.h). The callable must
  /// stay valid until cleared and must not re-enter the tracer.
  void set_sink(std::function<void(const SpanRecord&)> sink);
  void clear_sink() { set_sink(nullptr); }

  /// Completed spans, oldest first (at most capacity()).
  std::vector<SpanRecord> snapshot() const;
  /// snapshot() + clear() under one lock: consumes the buffered spans, so
  /// repeated telemetry scrapes never export the same span twice.
  std::vector<SpanRecord> drain();
  /// Spans started (and not discarded by a disabled category) so far.
  std::uint64_t started() const {
    return next_id_.load(std::memory_order_relaxed) - 1;
  }
  /// Re-bases span/trace id allocation at `first_id` (> 0). In one process
  /// all ids come from this tracer and are unique by construction; across
  /// processes every tracer would otherwise start at 1 and collide, making
  /// the fleet collector's id-keyed re-parenting ambiguous. The node
  /// runtime calls seed_ids((node_id + 1) << 40) at startup so each
  /// process allocates from a disjoint range. Call before any span opens.
  void seed_ids(std::uint64_t first_id) {
    next_id_.store(first_id == 0 ? 1 : first_id, std::memory_order_relaxed);
  }
  /// Completed spans overwritten because the ring was full.
  std::uint64_t dropped() const;
  void clear();

  static Tracer& global();

 private:
  friend class Span;

  std::uint64_t begin_span(double* sim_now);  // id; samples sim clock
  void end_span(SpanRecord rec);              // pushes into the ring

  std::array<std::atomic<bool>, kSpanCategoryCount> enabled_{};
  std::atomic<std::uint64_t> next_id_{1};

  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;     // guarded by mutex_
  std::size_t ring_capacity_ = kDefaultCapacity;  // ditto
  std::size_t ring_head_ = 0;        // ditto; next slot to overwrite
  std::uint64_t dropped_ = 0;        // ditto
  std::function<double()> sim_now_;  // ditto
  std::function<void(const SpanRecord&)> sink_;  // ditto
};

/// RAII span: records begin at construction, end + ring push at destruction.
/// Inert (one atomic load) when the tracer has the category disabled.
class Span {
 public:
  Span(Tracer& tracer, SpanCategory category, const char* name);
  /// Remote-parented span: links to the sender's span through a TraceContext
  /// carried in a message (invalid context = start a fresh trace), and tags
  /// the record with the simulated `node` it runs on.
  Span(Tracer& tracer, SpanCategory category, const char* name,
       const TraceContext& remote, std::uint32_t node = kNoSpanNode);
  /// Records into Tracer::global().
  Span(SpanCategory category, const char* name)
      : Span(Tracer::global(), category, name) {}
  Span(SpanCategory category, const char* name, const TraceContext& remote,
       std::uint32_t node = kNoSpanNode)
      : Span(Tracer::global(), category, name, remote, node) {}
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is actually recording.
  bool active() const { return tracer_ != nullptr; }
  std::uint64_t id() const { return rec_.id; }
  std::uint64_t trace_id() const { return rec_.trace_id; }

  /// Tags the record with the simulated node it represents.
  void set_node(std::uint32_t node) { rec_.node = node; }

  /// Context to inject into an outgoing message: this span becomes the
  /// remote parent, hop count already incremented for the network crossing.
  /// Invalid (all-zero) when the span is inactive — callers can always
  /// inject unconditionally and pay nothing while tracing is off.
  TraceContext context() const {
    if (!active()) return {};
    return {rec_.trace_id, rec_.id, rec_.hop + 1};
  }

 private:
  Tracer* tracer_ = nullptr;  // null = category disabled at construction
  SpanRecord rec_;
  // Thread-stack state to restore at destruction (a remote-parented span's
  // rec_.parent is NOT this thread's previous top).
  std::uint64_t prev_span_ = 0;
  std::uint64_t prev_trace_ = 0;
  std::uint32_t prev_hop_ = 0;
};

/// Context of the innermost active span on this thread (hop already
/// incremented for injection), or an invalid context when no span is open.
TraceContext current_trace_context();

}  // namespace bcc::obs
