#include "obs/flight.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>

namespace bcc::obs {

namespace {

// Header field offsets (see flight.h file comment for the protocol).
constexpr std::size_t kHdrMagic = 0;
constexpr std::size_t kHdrVersion = 8;
constexpr std::size_t kHdrNode = 12;
constexpr std::size_t kHdrPid = 16;
constexpr std::size_t kHdrSlotSize = 20;
constexpr std::size_t kHdrSlotCount = 24;
constexpr std::size_t kHdrMetricsCap = 28;
constexpr std::size_t kHdrMetricsSeq = 32;  // seqlock word (u64, atomic)
constexpr std::size_t kHdrMetricsLen = 40;

// Span-slot field offsets. `seq` first: it is the commit word.
constexpr std::size_t kSlotSeq = 0;
constexpr std::size_t kSlotId = 8;
constexpr std::size_t kSlotParent = 16;
constexpr std::size_t kSlotTrace = 24;
constexpr std::size_t kSlotWallBegin = 32;
constexpr std::size_t kSlotWallEnd = 40;
constexpr std::size_t kSlotSimBegin = 48;
constexpr std::size_t kSlotSimEnd = 56;
constexpr std::size_t kSlotHop = 64;
constexpr std::size_t kSlotNode = 68;
constexpr std::size_t kSlotCategory = 72;
constexpr std::size_t kSlotFlags = 73;  // bit 0 = remote_parent
constexpr std::size_t kSlotNameLen = 74;
constexpr std::size_t kSlotName = 75;
constexpr std::size_t kSlotNameMax = kFlightSlotBytes - kSlotName;

template <typename T>
void put(std::uint8_t* base, std::size_t off, T v) {
  std::memcpy(base + off, &v, sizeof(T));
}
template <typename T>
T get(const std::uint8_t* base, std::size_t off) {
  T v;
  std::memcpy(&v, base + off, sizeof(T));
  return v;
}

std::size_t slots_offset(std::uint32_t metrics_cap) {
  // Keep slots (and therefore each slot's seq word) 8-byte aligned.
  const std::size_t raw = kFlightHeaderBytes + metrics_cap;
  return (raw + kFlightSlotBytes - 1) / kFlightSlotBytes * kFlightSlotBytes;
}

std::atomic_ref<std::uint64_t> seq_ref(std::uint8_t* p) {
  return std::atomic_ref<std::uint64_t>(
      *reinterpret_cast<std::uint64_t*>(p));
}

}  // namespace

std::unique_ptr<FlightRecorder> FlightRecorder::open(const std::string& path,
                                                     const Options& opts) {
  const std::uint32_t slot_count = opts.slot_count == 0 ? 1 : opts.slot_count;
  const std::size_t slots_off = slots_offset(opts.metrics_cap);
  const std::size_t total =
      slots_off + static_cast<std::size_t>(slot_count) * kFlightSlotBytes;

  const int fd =
      ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return nullptr;
  if (::ftruncate(fd, static_cast<off_t>(total)) != 0) {
    ::close(fd);
    return nullptr;
  }
  void* map =
      ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (map == MAP_FAILED) {
    ::close(fd);
    return nullptr;
  }

  auto rec = std::unique_ptr<FlightRecorder>(new FlightRecorder());
  rec->path_ = path;
  rec->fd_ = fd;
  rec->map_ = static_cast<std::uint8_t*>(map);
  rec->map_len_ = total;
  rec->slot_count_ = slot_count;
  rec->metrics_cap_ = opts.metrics_cap;

  std::uint8_t* h = rec->map_;
  put<std::uint32_t>(h, kHdrVersion, kFlightVersion);
  put<std::uint32_t>(h, kHdrNode, opts.node);
  put<std::uint32_t>(h, kHdrPid, static_cast<std::uint32_t>(::getpid()));
  put<std::uint32_t>(h, kHdrSlotSize, kFlightSlotBytes);
  put<std::uint32_t>(h, kHdrSlotCount, slot_count);
  put<std::uint32_t>(h, kHdrMetricsCap, opts.metrics_cap);
  put<std::uint64_t>(h, kHdrMetricsSeq, 0);
  put<std::uint32_t>(h, kHdrMetricsLen, 0);
  // Magic last, with release: a reader never sees a valid magic over an
  // unwritten header (relevant if it races a live writer's setup).
  seq_ref(h + kHdrMagic).store(kFlightMagic, std::memory_order_release);
  return rec;
}

FlightRecorder::~FlightRecorder() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
  if (fd_ >= 0) ::close(fd_);
}

void FlightRecorder::record_span(const SpanRecord& rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t seq = next_seq_++;
  std::uint8_t* slot = map_ + slots_offset(metrics_cap_) +
                       ((seq - 1) % slot_count_) * kFlightSlotBytes;
  // Invalidate, fill, commit — in that order (see flight.h protocol).
  seq_ref(slot + kSlotSeq).store(0, std::memory_order_relaxed);
  put<std::uint64_t>(slot, kSlotId, rec.id);
  put<std::uint64_t>(slot, kSlotParent, rec.parent);
  put<std::uint64_t>(slot, kSlotTrace, rec.trace_id);
  put<std::uint64_t>(slot, kSlotWallBegin, rec.wall_begin_us);
  put<std::uint64_t>(slot, kSlotWallEnd, rec.wall_end_us);
  put<double>(slot, kSlotSimBegin, rec.sim_begin);
  put<double>(slot, kSlotSimEnd, rec.sim_end);
  put<std::uint32_t>(slot, kSlotHop, rec.hop);
  put<std::uint32_t>(slot, kSlotNode, rec.node);
  put<std::uint8_t>(slot, kSlotCategory,
                    static_cast<std::uint8_t>(rec.category));
  put<std::uint8_t>(slot, kSlotFlags, rec.remote_parent ? 1 : 0);
  const std::size_t name_len =
      std::min(std::strlen(rec.name), kSlotNameMax);
  put<std::uint8_t>(slot, kSlotNameLen, static_cast<std::uint8_t>(name_len));
  std::memcpy(slot + kSlotName, rec.name, name_len);
  seq_ref(slot + kSlotSeq).store(seq, std::memory_order_release);
}

void FlightRecorder::record_metrics(const std::uint8_t* data,
                                    std::size_t len) {
  if (len > metrics_cap_) return;  // dropped whole, never torn
  std::lock_guard<std::mutex> lock(mutex_);
  auto seq = seq_ref(map_ + kHdrMetricsSeq);
  seq.fetch_add(1, std::memory_order_acq_rel);  // odd: write in progress
  std::memcpy(map_ + kFlightHeaderBytes, data, len);
  put<std::uint32_t>(map_, kHdrMetricsLen, static_cast<std::uint32_t>(len));
  seq.fetch_add(1, std::memory_order_acq_rel);  // even: committed
}

bool read_flight_file(const std::string& path, FlightData* out) {
  *out = FlightData{};
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  struct stat st{};
  if (::fstat(fd, &st) != 0 ||
      st.st_size < static_cast<off_t>(kFlightHeaderBytes)) {
    ::close(fd);
    return false;
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) return false;
  const auto* h = static_cast<const std::uint8_t*>(map);

  bool ok = get<std::uint64_t>(h, kHdrMagic) == kFlightMagic &&
            get<std::uint32_t>(h, kHdrVersion) == kFlightVersion &&
            get<std::uint32_t>(h, kHdrSlotSize) == kFlightSlotBytes;
  std::uint32_t slot_count = 0;
  std::uint32_t metrics_cap = 0;
  if (ok) {
    slot_count = get<std::uint32_t>(h, kHdrSlotCount);
    metrics_cap = get<std::uint32_t>(h, kHdrMetricsCap);
    ok = len >= slots_offset(metrics_cap) +
                    static_cast<std::size_t>(slot_count) * kFlightSlotBytes;
  }
  if (!ok) {
    ::munmap(map, len);
    return false;
  }

  out->node = get<std::uint32_t>(h, kHdrNode);
  out->pid = get<std::uint32_t>(h, kHdrPid);

  const std::uint64_t mseq = get<std::uint64_t>(h, kHdrMetricsSeq);
  if (mseq % 2 == 1) {
    out->metrics_torn = true;  // writer died mid-snapshot; discard bytes
  } else if (mseq > 0) {
    const std::uint32_t mlen =
        std::min(get<std::uint32_t>(h, kHdrMetricsLen), metrics_cap);
    out->metrics_blob.assign(h + kFlightHeaderBytes,
                             h + kFlightHeaderBytes + mlen);
  }

  const std::uint8_t* slots = h + slots_offset(metrics_cap);
  std::vector<std::pair<std::uint64_t, const std::uint8_t*>> committed;
  committed.reserve(slot_count);
  for (std::uint32_t i = 0; i < slot_count; ++i) {
    const std::uint8_t* slot = slots + i * kFlightSlotBytes;
    const std::uint64_t seq = get<std::uint64_t>(slot, kSlotSeq);
    if (seq == 0) continue;  // empty, or the victim died mid-overwrite
    committed.emplace_back(seq, slot);
  }
  std::sort(committed.begin(), committed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  out->spans.reserve(committed.size());
  for (const auto& [seq, slot] : committed) {
    SpanRecord rec;
    rec.id = get<std::uint64_t>(slot, kSlotId);
    rec.parent = get<std::uint64_t>(slot, kSlotParent);
    rec.trace_id = get<std::uint64_t>(slot, kSlotTrace);
    rec.wall_begin_us = get<std::uint64_t>(slot, kSlotWallBegin);
    rec.wall_end_us = get<std::uint64_t>(slot, kSlotWallEnd);
    rec.sim_begin = get<double>(slot, kSlotSimBegin);
    rec.sim_end = get<double>(slot, kSlotSimEnd);
    rec.hop = get<std::uint32_t>(slot, kSlotHop);
    rec.node = get<std::uint32_t>(slot, kSlotNode);
    rec.category = static_cast<SpanCategory>(
        get<std::uint8_t>(slot, kSlotCategory) % kSpanCategoryCount);
    rec.remote_parent = (get<std::uint8_t>(slot, kSlotFlags) & 1) != 0;
    const std::size_t name_len =
        std::min<std::size_t>(get<std::uint8_t>(slot, kSlotNameLen),
                              kSlotNameMax);
    out->name_pool.emplace_back(
        reinterpret_cast<const char*>(slot + kSlotName), name_len);
    rec.name = out->name_pool.back().c_str();
    out->spans.push_back(rec);
    out->newest_seq = seq;
  }

  ::munmap(map, len);
  return true;
}

}  // namespace bcc::obs
