// Exporters for the observability substrate: Prometheus text exposition
// format and JSON (one self-contained object, plus a JSON-lines variant for
// streaming/appending), over RegistrySnapshot / SpanRecord plain data so
// exporting never blocks recording.
//
// Output is deterministic (snapshots are name-sorted, formatting is locale-
// independent), which is what the golden tests in tests/obs_test.cpp pin.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bcc::obs {

/// Prometheus text format. Metric names have '.' mapped to '_'; histograms
/// become the conventional cumulative `_bucket{le="..."}` / `_sum` /
/// `_count` series with p50/p90/p99 summarised as `<name>_p50` gauges.
std::string prometheus_text(const RegistrySnapshot& snapshot);

/// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
/// Histograms carry count/sum/max/mean, p50/p90/p99, and their non-empty
/// buckets as [{"le":upper,"count":n},...].
std::string json_object(const RegistrySnapshot& snapshot);

/// JSON-lines: one `{"type":...,"name":...,...}` object per line, same
/// content as json_object. Suited to appending successive snapshots.
std::string json_lines(const RegistrySnapshot& snapshot);

/// JSON-lines over completed spans, oldest first.
std::string trace_json_lines(const std::vector<SpanRecord>& spans);

/// The spans belonging to causal chain `trace_id`, input order preserved
/// (remote-parented spans carry the root's trace id across processes, so
/// one filter pass reconstructs the whole cross-node chain). This is the
/// metrics→trace join behind `bcc trace --trace-id` and histogram
/// exemplars. trace_id 0 matches nothing (0 means "tracing was off").
std::vector<SpanRecord> filter_trace(const std::vector<SpanRecord>& spans,
                                     std::uint64_t trace_id);

/// Chrome-trace-event JSON (load in chrome://tracing or ui.perfetto.dev).
/// One complete ("X") event per span, keyed on simulated time when the span
/// was sim-stamped (ts = sim_begin seconds -> microseconds) and wall time
/// otherwise; pid = simulated node (kNoSpanNode -> pid 0), tid = span
/// category, args carry span/trace/parent ids and hop count. Every
/// remote-parented span whose sender span is present in `spans` additionally
/// emits a flow arrow ("s" at the sender, "f" at the receiver) bound by the
/// receiver's span id — the causal send->receive edges across nodes.
/// Deterministic for sim-stamped spans (wall fields are ignored for them).
std::string chrome_trace_json(const std::vector<SpanRecord>& spans);

/// Writes `content` to `path` (truncating). Returns false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace bcc::obs
