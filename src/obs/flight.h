// Crash flight recorder: an always-on, bounded, mmap-backed ring of
// completed spans plus a seqlock-protected metrics snapshot, one file per
// process. The point is to survive `kill -9`: a SIGKILL'd process cannot
// flush anything, but stores into a MAP_SHARED mapping are already in the
// kernel page cache the instant they retire, so whatever the victim had
// committed is readable by the collector afterwards — no msync, no atexit,
// no signal handler required.
//
// Crash-consistency protocol (argued in DESIGN.md "Fleet telemetry plane"):
//   * Span slots. Each fixed-size slot begins with a u64 `seq` word
//     (0 = empty/invalid). The writer first stores 0 into `seq`, then the
//     payload, then the record's sequence number with release ordering —
//     the seq store is the commit point. Death at any instant leaves every
//     slot either fully committed (nonzero seq, complete payload) or
//     invalid (seq 0); a torn payload is impossible to observe because its
//     slot reads as empty. The reader simply skips seq==0 slots and orders
//     the rest by seq.
//   * Metrics region. A classic seqlock: the writer makes the header's
//     metrics_seq odd, copies the encoded registry snapshot, then makes it
//     even. A post-mortem reader seeing an odd metrics_seq discards the
//     (possibly torn) snapshot rather than decode garbage.
//
// The file is produced and consumed on the same host (supervisor + nodes),
// so integers are stored native-endian; the header carries a magic and a
// version so a reader can refuse files it does not understand.
//
// The metrics payload is an opaque byte blob here — the node runtime writes
// obs::encode_node_metrics() bytes (obs/collect.h) and the collector
// decodes them; the flight recorder itself neither knows nor cares about
// the format, which keeps this layer reusable.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace bcc::obs {

/// First 8 bytes of every flight-recorder file ("BCCFLT\0" + version gate
/// lives separately in the header).
inline constexpr std::uint64_t kFlightMagic = 0x30544c4643434221ull;
/// Bumped on any incompatible layout change; readers reject mismatches.
inline constexpr std::uint32_t kFlightVersion = 1;
/// Header occupies the first page; slots start page-aligned after the
/// metrics region.
inline constexpr std::size_t kFlightHeaderBytes = 4096;
/// Fixed span-slot size. Fixed fields take 84 bytes; the rest of the slot
/// holds the (truncated) span name.
inline constexpr std::size_t kFlightSlotBytes = 128;

/// Appends completed spans and periodic metrics snapshots into an mmap'd
/// file, crash-consistently (see file comment). Thread-safe; span writes
/// take a short internal mutex (they arrive from the tracer sink, which
/// already serializes under the tracer mutex, but the recorder does not
/// rely on that).
class FlightRecorder {
 public:
  struct Options {
    std::uint32_t node = 0;             ///< simulated node id stamped in header
    std::uint32_t slot_count = 4096;    ///< span ring capacity
    std::uint32_t metrics_cap = 65536;  ///< metrics blob region, bytes
  };

  /// Creates (truncating any previous run's file) and maps the recorder.
  /// Returns nullptr on I/O failure — callers degrade to no flight
  /// recording rather than abort.
  static std::unique_ptr<FlightRecorder> open(const std::string& path,
                                              const Options& opts);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Commits one completed span into the next ring slot (overwrites the
  /// oldest once full). Name is truncated to the slot's spare bytes.
  void record_span(const SpanRecord& rec);

  /// Seqlock-writes an encoded metrics snapshot (truncated to the region
  /// capacity; oversized blobs are dropped, not torn).
  void record_metrics(const std::uint8_t* data, std::size_t len);

  /// Spans committed so far (monotonic; exceeds slot_count once wrapped).
  std::uint64_t spans_recorded() const { return next_seq_ - 1; }

  const std::string& path() const { return path_; }

 private:
  FlightRecorder() = default;

  std::string path_;
  int fd_ = -1;
  std::uint8_t* map_ = nullptr;
  std::size_t map_len_ = 0;
  std::uint32_t slot_count_ = 0;
  std::uint32_t metrics_cap_ = 0;
  std::uint64_t next_seq_ = 1;  // guarded by mutex_
  std::mutex mutex_;
};

/// Everything a flight file held at the moment its writer died (or was
/// last written). Move-only: `spans[i].name` points into `name_pool`.
struct FlightData {
  std::uint32_t node = 0;
  std::uint32_t pid = 0;
  std::vector<SpanRecord> spans;  ///< committed slots, ordered by seq
  std::deque<std::string> name_pool;
  std::vector<std::uint8_t> metrics_blob;  ///< empty when absent or torn
  bool metrics_torn = false;  ///< writer died mid-seqlock-write
  std::uint64_t newest_seq = 0;

  FlightData() = default;
  FlightData(FlightData&&) = default;
  FlightData& operator=(FlightData&&) = default;
  FlightData(const FlightData&) = delete;
  FlightData& operator=(const FlightData&) = delete;
};

/// Post-mortem reader: maps `path` read-only and decodes every committed
/// slot plus the metrics blob. Returns false (and leaves *out empty) on
/// missing file / bad magic / version mismatch. Tolerant of torn state by
/// construction: invalid slots are skipped, a torn metrics region is
/// reported via metrics_torn, never decoded.
bool read_flight_file(const std::string& path, FlightData* out);

}  // namespace bcc::obs
