#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/assert.h"

namespace bcc::obs {

bool valid_metric_name(std::string_view name) {
  // bcc.<module>.<metric>: >= 3 segments, each nonempty over [a-z0-9_].
  std::size_t segments = 0;
  std::size_t seg_len = 0;
  for (char c : name) {
    if (c == '.') {
      if (seg_len == 0) return false;
      ++segments;
      seg_len = 0;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
    ++seg_len;
  }
  if (seg_len == 0) return false;
  ++segments;
  return segments >= 3 && name.substr(0, 4) == "bcc.";
}

std::size_t Counter::stripe_index() noexcept {
  // Threads grab consecutive stripe ids on first use; with kStripes a power
  // of two this spreads any number of threads evenly.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed);
  return idx % kStripes;
}

void Histogram::record(std::uint64_t v) noexcept {
  buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (v > seen && !max_.compare_exchange_weak(seen, v,
                                                 std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot s;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  // count is derived from the copied buckets (not a separate atomic) so the
  // snapshot's quantile walk and its count can never disagree.
  s.count = 0;
  for (std::uint64_t b : s.buckets) s.count += b;
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::uint64_t Histogram::Snapshot::quantile(double p) const {
  if (count == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(std::ceil(
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(count)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank && buckets[i] > 0) {
      return std::min(bucket_upper(i), max);
    }
  }
  return max;
}

void Histogram::Snapshot::merge_from(const Snapshot& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

std::uint64_t RegistrySnapshot::counter_value(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double RegistrySnapshot::gauge_value(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

const Histogram::Snapshot* RegistrySnapshot::histogram(
    std::string_view name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

void Registry::check_new_name(std::string_view name) const {
  BCC_REQUIRE(valid_metric_name(name));
  // A name is bound to one instrument kind for the registry's lifetime.
  BCC_REQUIRE(counters_.find(name) == counters_.end() &&
              gauges_.find(name) == gauges_.end() &&
              histograms_.find(name) == histograms_.end());
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    check_new_name(name);
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    check_new_name(name);
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    check_new_name(name);
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h->snapshot());
  }
  return s;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& Registry::global() {
  // Leaked on purpose: instrumentation sites cache references and may fire
  // from static destructors; the registry must outlive everything.
  static Registry* instance = new Registry();
  return *instance;
}

}  // namespace bcc::obs
