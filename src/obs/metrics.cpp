#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>

#include "common/assert.h"

namespace bcc::obs {

bool valid_metric_name(std::string_view name) {
  // bcc.<module>.<metric>: >= 3 segments, each nonempty over [a-z0-9_].
  std::size_t segments = 0;
  std::size_t seg_len = 0;
  for (char c : name) {
    if (c == '.') {
      if (seg_len == 0) return false;
      ++segments;
      seg_len = 0;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
    ++seg_len;
  }
  if (seg_len == 0) return false;
  ++segments;
  return segments >= 3 && name.substr(0, 4) == "bcc.";
}

std::size_t Counter::stripe_index() noexcept {
  // Threads grab consecutive stripe ids on first use; with kStripes a power
  // of two this spreads any number of threads evenly.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed);
  return idx % kStripes;
}

void Histogram::record(std::uint64_t v) noexcept {
  buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (v > seen && !max_.compare_exchange_weak(seen, v,
                                                 std::memory_order_relaxed)) {
  }
}

void Histogram::record_with_exemplar(std::uint64_t v,
                                     std::uint64_t trace_id) noexcept {
  record(v);
  if (trace_id == 0) return;  // tracing off: plain-record cost
  const std::size_t bucket = std::bit_width(v);
  const auto wall_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  std::lock_guard<std::mutex> lock(exemplar_mutexes_[bucket % kExemplarStripes]);
  exemplars_[bucket] = Exemplar{trace_id, v, wall_us};
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot s;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  // count is derived from the copied buckets (not a separate atomic) so the
  // snapshot's quantile walk and its count can never disagree.
  s.count = 0;
  for (std::uint64_t b : s.buckets) s.count += b;
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  // One stripe lock per stripe (not per bucket): slots in a stripe are
  // copied together, concurrent recorders into other stripes never wait.
  for (std::size_t stripe = 0; stripe < kExemplarStripes; ++stripe) {
    std::lock_guard<std::mutex> lock(exemplar_mutexes_[stripe]);
    for (std::size_t i = stripe; i < kBuckets; i += kExemplarStripes) {
      s.exemplars[i] = exemplars_[i];
    }
  }
  return s;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (std::size_t stripe = 0; stripe < kExemplarStripes; ++stripe) {
    std::lock_guard<std::mutex> lock(exemplar_mutexes_[stripe]);
    for (std::size_t i = stripe; i < kBuckets; i += kExemplarStripes) {
      exemplars_[i] = Exemplar{};
    }
  }
}

std::uint64_t Histogram::Snapshot::quantile(double p) const {
  if (count == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(std::ceil(
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(count)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank && buckets[i] > 0) {
      return std::min(bucket_upper(i), max);
    }
  }
  return max;
}

void Histogram::Snapshot::merge_from(const Snapshot& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  // Overwrite-latest per slot, fleet-wide: the freshest exemplar wins (both
  // sides stamp with their own steady clock — close enough for "recent").
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const Exemplar& theirs = other.exemplars[i];
    if (theirs.valid() &&
        (!exemplars[i].valid() || theirs.wall_us > exemplars[i].wall_us)) {
      exemplars[i] = theirs;
    }
  }
}

const Exemplar* Histogram::Snapshot::exemplar_near(double p) const {
  if (count == 0) return nullptr;
  // Same walk as quantile(): find the bucket holding the p-th sample.
  const auto rank = static_cast<std::uint64_t>(std::ceil(
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(count)));
  std::size_t target = kBuckets - 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank && buckets[i] > 0) {
      target = i;
      break;
    }
  }
  if (exemplars[target].valid()) return &exemplars[target];
  for (std::size_t i = target; i-- > 0;) {
    if (exemplars[i].valid()) return &exemplars[i];
  }
  for (std::size_t i = target + 1; i < kBuckets; ++i) {
    if (exemplars[i].valid()) return &exemplars[i];
  }
  return nullptr;
}

std::uint64_t RegistrySnapshot::counter_value(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double RegistrySnapshot::gauge_value(std::string_view name) const {
  for (const GaugeEntry& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0.0;
}

GaugeAgg RegistrySnapshot::gauge_agg(std::string_view name) const {
  for (const GaugeEntry& g : gauges) {
    if (g.name == name) return g.agg;
  }
  return GaugeAgg::kMax;
}

const Histogram::Snapshot* RegistrySnapshot::histogram(
    std::string_view name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

void Registry::check_new_name(std::string_view name) const {
  BCC_REQUIRE(valid_metric_name(name));
  // A name is bound to one instrument kind for the registry's lifetime.
  BCC_REQUIRE(counters_.find(name) == counters_.end() &&
              gauges_.find(name) == gauges_.end() &&
              histograms_.find(name) == histograms_.end());
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    check_new_name(name);
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    check_new_name(name);
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name, GaugeAgg agg) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    check_new_name(name);
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
    it->second->agg_ = agg;
  } else {
    // Two sites disagreeing about the merge policy is a bug, not a
    // preference — same spirit as the name-to-kind binding above.
    BCC_REQUIRE(it->second->agg_ == agg);
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    check_new_name(name);
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    s.gauges.push_back({name, g->value(), g->agg()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h->snapshot());
  }
  return s;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& Registry::global() {
  // Leaked on purpose: instrumentation sites cache references and may fire
  // from static destructors; the registry must outlive everything.
  static Registry* instance = new Registry();
  return *instance;
}

}  // namespace bcc::obs
