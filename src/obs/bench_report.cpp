#include "obs/bench_report.h"

#include <cstdlib>

#include "common/assert.h"
#include "obs/export.h"

namespace bcc::obs {

BenchReport::BenchReport(std::string bench_name) : name_(std::move(bench_name)) {
  BCC_REQUIRE(!name_.empty());
  for (char c : name_) {
    BCC_REQUIRE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_');
  }
}

void BenchReport::set(std::string_view name, double value) {
  registry_.gauge(name).set(value);
}

std::string BenchReport::sanitize_segment(std::string_view token) {
  std::string out;
  out.reserve(token.size());
  for (char c : token) {
    if (c >= 'A' && c <= 'Z') {
      out += static_cast<char>(c - 'A' + 'a');
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      out += c;
    } else {
      out += '_';
    }
  }
  return out.empty() ? "_" : out;
}

std::string BenchReport::path() const {
  const char* dir = std::getenv("BCC_BENCH_OUT");
  const std::string prefix = (dir && *dir) ? std::string(dir) + "/" : "";
  return prefix + "BENCH_" + name_ + ".json";
}

bool BenchReport::write() const {
  std::string out = "{\"bench\":\"" + name_ + "\",\n\"metrics\":";
  out += json_object(registry_.snapshot());
  out += "}\n";
  return write_text_file(path(), out);
}

void export_table(BenchReport& report, std::string_view series,
                  const TablePrinter& table) {
  const std::string prefix =
      "bcc.bench." + BenchReport::sanitize_segment(series) + ".";
  const auto& header = table.header();
  const auto& rows = table.rows();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < rows[r].size() && c < header.size(); ++c) {
      const std::string& cell = rows[r][c];
      char* end = nullptr;
      const double value = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || end == nullptr || *end != '\0') continue;
      report.set(prefix + BenchReport::sanitize_segment(header[c]) + "_r" +
                     std::to_string(r),
                 value);
    }
  }
}

}  // namespace bcc::obs
