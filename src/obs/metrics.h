// The metrics half of the observability substrate (src/obs): a thread-safe
// registry of named counters, gauges, and log-bucketed histograms that every
// layer (sim/, core/, serve/, tree/, bench/) records into, and that the
// exporters (obs/export.h) turn into Prometheus text or JSON.
//
// Hot-path cost model:
//   * Counter::add is a single relaxed fetch_add on a cache-line-padded
//     stripe chosen by thread (shard-per-thread, like the serve memo cache's
//     shards) — concurrent writers never touch the same line.
//   * Histogram::record is one relaxed fetch_add on a power-of-two bucket
//     plus count/sum updates — no locks, no allocation.
//   * Registry lookup (counter()/gauge()/histogram()) takes a mutex; callers
//     on hot paths cache the returned reference (instruments are never
//     destroyed or moved while the registry lives, so references stay valid
//     forever — reset() zeroes values but keeps registrations).
//
// Naming convention (enforced here and by tools/check_metrics_names.sh):
// `bcc.<module>.<metric>` — lowercase [a-z0-9_] segments, at least three,
// e.g. `bcc.serve.query_micros`, `bcc.sim.faults_dropped`.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace bcc::obs {

/// True iff `name` follows the `bcc.<module>.<metric>` convention.
bool valid_metric_name(std::string_view name);

/// How a fleet merge (obs/collect.h merge_fleet_metrics) should fuse one
/// gauge across processes. Declared at registration — the metric's author
/// knows whether "worst observed", "fleet total", or "average" is the
/// honest aggregate; a blanket policy is wrong for somebody (max turns an
/// 8-node cache_hit_ratio into the luckiest node's ratio).
enum class GaugeAgg : std::uint8_t {
  kMax = 0,   ///< worst-observed: staleness, suspicion, queue depth
  kSum = 1,   ///< additive occupancy/capacity: in-flight queries, slots
  kLast = 2,  ///< node-local scalar where fusing is meaningless; last wins
  kMean = 3,  ///< ratios and rates: unweighted mean across processes
};
inline constexpr std::size_t kGaugeAggCount = 4;

constexpr const char* to_string(GaugeAgg agg) {
  switch (agg) {
    case GaugeAgg::kMax: return "max";
    case GaugeAgg::kSum: return "sum";
    case GaugeAgg::kLast: return "last";
    case GaugeAgg::kMean: return "mean";
  }
  return "?";
}

/// Monotonic counter. Adds go to one of kStripes cache-line-padded atomic
/// cells selected per thread; value() sums the stripes (reads may miss
/// concurrent in-flight adds, which is what a counter read is allowed to do).
class Counter {
 public:
  static constexpr std::size_t kStripes = 16;

  Counter() = default;
  /// Copies/moves carry the value (collapsed into one stripe), not the
  /// atomics — so aggregates that embed a Counter (e.g. MessageMetrics)
  /// stay movable. Not safe while the source is being written concurrently.
  Counter(const Counter& other) noexcept {
    cells_[0].v.store(other.value(), std::memory_order_relaxed);
  }
  Counter& operator=(const Counter& other) noexcept {
    const std::uint64_t v = other.value();
    reset();
    cells_[0].v.store(v, std::memory_order_relaxed);
    return *this;
  }

  void add(std::uint64_t n = 1) noexcept {
    cells_[stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() noexcept {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  static std::size_t stripe_index() noexcept;
  std::array<Cell, kStripes> cells_{};
};

/// Last-written-wins instantaneous value (double). Carries its fleet
/// aggregation hint (immutable after registration — see Registry::gauge).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  GaugeAgg agg() const noexcept { return agg_; }
  void reset() noexcept { set(0.0); }

 private:
  friend class Registry;
  std::atomic<double> value_{0.0};
  GaugeAgg agg_ = GaugeAgg::kMax;
};

/// OpenMetrics-style exemplar: one recent sample that landed in a histogram
/// bucket, tagged with the trace id active when it was recorded — the join
/// key from "the p99 is X" to "and THIS query's span chain shows why".
/// trace_id == 0 means the slot is empty (recording with no active trace
/// never writes one, so exemplars cost nothing while tracing is off).
struct Exemplar {
  std::uint64_t trace_id = 0;  ///< 0 = empty slot
  std::uint64_t value = 0;     ///< the recorded sample
  std::uint64_t wall_us = 0;   ///< steady-clock stamp; merges keep latest

  bool valid() const { return trace_id != 0; }
};

/// Log-bucketed histogram of non-negative integer samples (typically
/// microseconds). Bucket i holds samples with bit_width(v) == i, i.e.
/// bucket 0 holds v = 0 and bucket i >= 1 holds [2^(i-1), 2^i - 1]:
/// factor-of-two resolution, fixed memory, lock-free recording.
class Histogram {
 public:
  /// bit_width of a uint64 is at most 64.
  static constexpr std::size_t kBuckets = 65;
  /// Exemplar slots share kExemplarStripes mutexes (bucket % stripes):
  /// concurrent recorders into *different* value ranges never contend, and
  /// the slots stay a fixed 65 * sizeof(Exemplar) bytes per histogram.
  static constexpr std::size_t kExemplarStripes = 8;

  /// Plain-data copy; quantiles are extracted from the copy so a snapshot
  /// is internally consistent even while recording continues.
  struct Snapshot {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    /// Per-bucket overwrite-latest exemplars (empty slots have trace_id 0).
    std::array<Exemplar, kBuckets> exemplars{};

    /// Upper bound of the bucket holding the p-th percentile sample
    /// (0 < p <= 100), capped by the observed max — accurate to the
    /// bucket's factor-of-two width, 0 when empty. For any recorded
    /// distribution: exact_quantile <= quantile(p) <= 2 * exact_quantile
    /// (with equality at 0).
    std::uint64_t quantile(double p) const;
    double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
    /// Inclusive upper bound of bucket i (2^i - 1; bucket 0 -> 0).
    static std::uint64_t bucket_upper(std::size_t i) {
      return i == 0 ? 0
             : i >= 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << i) - 1;
    }

    /// Folds `other` into this snapshot bucket-by-bucket. Because buckets
    /// are value-range-aligned (bucket i always means bit_width == i), the
    /// merge is exact: merging snapshots of two sample streams yields the
    /// same snapshot as recording the concatenated stream, so merge is
    /// associative and commutative and merged quantiles keep the
    /// `exact <= est <= min(2*exact, max)` contract (ObsHistogram property
    /// tests pin this). This is what the fleet collector uses to fuse
    /// per-process histograms into one distribution.
    void merge_from(const Snapshot& other);

    /// The exemplar behind quantile(p): the slot of the bucket the p-th
    /// percentile sample falls in, falling back to the nearest populated
    /// slot below it, then above it (an exemplar from an adjacent bucket is
    /// still "a query from that latency neighborhood"). nullptr when no
    /// slot anywhere holds one (tracing was off for every recorded sample).
    const Exemplar* exemplar_near(double p) const;
  };

  void record(std::uint64_t v) noexcept;
  /// record(v), plus — when `trace_id` is nonzero — overwriting the value
  /// bucket's exemplar slot under its stripe lock. Callers pass the current
  /// span's trace id unconditionally: id 0 (tracing off) takes the plain
  /// record path, so the disabled-path cost is one compare.
  void record_with_exemplar(std::uint64_t v, std::uint64_t trace_id) noexcept;
  Snapshot snapshot() const noexcept;
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  mutable std::array<std::mutex, kExemplarStripes> exemplar_mutexes_;
  std::array<Exemplar, kBuckets> exemplars_{};  // slot i guarded by stripe i%8
};

/// Everything a registry knew at one instant, as plain data (see
/// Registry::snapshot). Vectors are sorted by name.
struct RegistrySnapshot {
  /// One gauge at snapshot time, with the aggregation hint it was
  /// registered under (the hint rides the telemetry codec so the fleet
  /// collector merges by the author's policy, not a blanket one).
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
    GaugeAgg agg = GaugeAgg::kMax;
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;

  /// Lookup helpers (0 / empty snapshot when absent).
  std::uint64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;
  GaugeAgg gauge_agg(std::string_view name) const;
  const Histogram::Snapshot* histogram(std::string_view name) const;
  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Named instrument registry. get-or-create accessors validate the naming
/// convention (BCC_REQUIRE) and return references that stay valid for the
/// registry's lifetime; a name is permanently bound to its first kind
/// (re-registering `bcc.x.y` as a different kind throws).
class Registry {
 public:
  Counter& counter(std::string_view name);
  /// Get-or-create. The aggregation hint is bound at first registration
  /// (default kMax — the historical "worst observed" policy); a later call
  /// passing a *different* explicit hint throws, because two sites
  /// disagreeing about what a fleet merge means is a bug, not a preference.
  /// The hint-less overload accepts whatever is already registered.
  Gauge& gauge(std::string_view name);
  Gauge& gauge(std::string_view name, GaugeAgg agg);
  Histogram& histogram(std::string_view name);

  /// Coherent-enough copy of every instrument for exporters and tests.
  RegistrySnapshot snapshot() const;

  /// Zeroes all values; registrations (and outstanding references) survive.
  void reset();

  /// The process-wide default registry every built-in instrumentation site
  /// records into.
  static Registry& global();

 private:
  template <typename T>
  using NamedMap = std::map<std::string, std::unique_ptr<T>, std::less<>>;

  void check_new_name(std::string_view name) const;  // callers hold mutex_

  mutable std::mutex mutex_;
  NamedMap<Counter> counters_;      // guarded by mutex_ (map structure only;
  NamedMap<Gauge> gauges_;          //  instrument values are atomic)
  NamedMap<Histogram> histograms_;  // ditto
};

}  // namespace bcc::obs
