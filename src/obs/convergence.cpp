#include "obs/convergence.h"

#include <cmath>
#include <utility>

#include "common/assert.h"

namespace bcc::obs {

namespace {

std::uint64_t to_ms(double seconds) {
  if (!(seconds > 0.0)) return 0;
  return static_cast<std::uint64_t>(std::llround(seconds * 1000.0));
}

}  // namespace

ConvergenceMonitor::ConvergenceMonitor(Registry* registry, Sampler sampler)
    : sampler_(std::move(sampler)) {
  BCC_REQUIRE(registry != nullptr);
  BCC_REQUIRE(sampler_ != nullptr);
  samples_counter_ = &registry->counter("bcc.conv.samples");
  suspicion_churn_ = &registry->counter("bcc.conv.suspicion_churn");
  nodes_gauge_ = &registry->gauge("bcc.conv.nodes");
  drifted_gauge_ = &registry->gauge("bcc.conv.drifted_nodes");
  drift_fraction_ = &registry->gauge("bcc.conv.drift_fraction");
  converged_gauge_ = &registry->gauge("bcc.conv.converged");
  down_gauge_ = &registry->gauge("bcc.conv.down_nodes");
  suspected_gauge_ = &registry->gauge("bcc.conv.suspected_links");
  staleness_ms_ = &registry->histogram(kStalenessHistogramName);
  node_convergence_ms_ = &registry->histogram("bcc.conv.node_convergence_ms");
  time_to_convergence_ms_ =
      &registry->histogram("bcc.conv.time_to_convergence_ms");
  reconverge_congestion_ms_ =
      &registry->histogram("bcc.conv.reconverge_congestion_ms");
  reconverge_flash_crowd_ms_ =
      &registry->histogram("bcc.conv.reconverge_flash_crowd_ms");
  reconverge_region_degrade_ms_ =
      &registry->histogram("bcc.conv.reconverge_region_degrade_ms");
}

void ConvergenceMonitor::record_reconvergence(
    std::string_view disturbance_class, double ms) {
  const std::uint64_t value = to_ms(ms / 1000.0);
  if (disturbance_class == "congestion") {
    reconverge_congestion_ms_->record(value);
  } else if (disturbance_class == "flash_crowd") {
    reconverge_flash_crowd_ms_->record(value);
  } else if (disturbance_class == "region_degrade") {
    reconverge_region_degrade_ms_->record(value);
  } else {
    BCC_REQUIRE(false && "unknown disturbance class");
  }
}

std::size_t ConvergenceMonitor::sample() {
  const ConvergenceSample s = sampler_();
  ++samples_;
  samples_counter_->add(1);

  std::size_t drifted = 0;
  for (const NodeHealth& node : s.nodes) {
    staleness_ms_->record(to_ms(node.staleness));
    if (node.matches_reference) {
      // First time this node agrees with the fixpoint: record when.
      if (node_converged_.insert(node.id).second) {
        node_convergence_ms_->record(to_ms(s.now));
      }
    } else {
      ++drifted;
    }
  }

  nodes_gauge_->set(static_cast<double>(s.nodes.size()));
  drifted_gauge_->set(static_cast<double>(drifted));
  drift_fraction_->set(s.nodes.empty()
                           ? 0.0
                           : static_cast<double>(drifted) /
                                 static_cast<double>(s.nodes.size()));
  down_gauge_->set(static_cast<double>(s.down_nodes));
  suspected_gauge_->set(static_cast<double>(s.suspected_links));
  if (s.suspected_links != last_suspected_) {
    suspicion_churn_->add(1);
    last_suspected_ = s.suspected_links;
  }

  const bool all_converged = drifted == 0 && !s.nodes.empty();
  if (all_converged && !converged_) {
    converged_at_ = s.now;
    time_to_convergence_ms_->record(to_ms(s.now));
  } else if (!all_converged && converged_) {
    // Drift reappeared (churn, crash): re-arm so the next convergence is a
    // fresh episode, and let the affected nodes re-record too.
    converged_at_ = -1.0;
    for (const NodeHealth& node : s.nodes) {
      if (!node.matches_reference) node_converged_.erase(node.id);
    }
  }
  converged_ = all_converged;
  converged_gauge_->set(converged_ ? 1.0 : 0.0);
  return drifted;
}

}  // namespace bcc::obs
