// Machine-readable benchmark/experiment telemetry: every bench/ binary owns
// a BenchReport, registers its headline numbers as `bcc.bench.<...>` gauges
// (or histograms) in the report's private registry, and write() emits
// `BENCH_<name>.json` through the JSON exporter — the per-PR performance
// trajectory the ROADMAP asks for, generated (never hand-written) by
// actually running the binary.
//
// Output path: `$BCC_BENCH_OUT/BENCH_<name>.json` when the env var is set,
// else `./BENCH_<name>.json`.
#pragma once

#include <string>
#include <string_view>

#include "common/table.h"
#include "obs/metrics.h"

namespace bcc::obs {

/// See file comment.
class BenchReport {
 public:
  /// `bench_name` tags the output file (BENCH_<bench_name>.json); it must be
  /// a single lowercase [a-z0-9_] token.
  explicit BenchReport(std::string bench_name);

  /// The report's own registry (separate from Registry::global(), so a
  /// bench file holds exactly what the harness registered).
  Registry& registry() { return registry_; }

  /// Convenience: sets gauge `name` (full `bcc.bench....` name required).
  void set(std::string_view name, double value);

  /// Sanitizes an arbitrary token (e.g. "BM_GossipUnderLoss/30") into a
  /// metric-name segment: lowercased, every other character becomes '_'.
  static std::string sanitize_segment(std::string_view token);

  /// Where write() puts the file.
  std::string path() const;

  /// Writes {"bench":"<name>","metrics":<json_object(registry snapshot)>}.
  /// Returns false on I/O failure.
  bool write() const;

 private:
  std::string name_;
  Registry registry_;
};

/// Exports every numeric cell of `table` into `report` as gauges named
/// `bcc.bench.<series>.<column>_r<row>` (column headers sanitized, rows
/// indexed in insertion order). Non-numeric cells are skipped — the fig*/
/// ablation harnesses print mixed tables and only the numbers matter.
void export_table(BenchReport& report, std::string_view series,
                  const TablePrinter& table);

}  // namespace bcc::obs
