#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>

namespace bcc::obs {

namespace {

/// Shortest round-trip-ish representation, locale-independent, valid JSON
/// (non-finite values become 0 — registries of durations and ratios should
/// never produce them, but an exporter must not emit invalid output).
std::string fmt_double(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

/// Prometheus metric name: dots become underscores (the segments are
/// already [a-z0-9_] by the registry's naming contract).
std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.') c = '_';
  }
  return out;
}

void append_histogram_json(std::string& out, const Histogram::Snapshot& h) {
  out += "{\"count\":" + fmt_u64(h.count) + ",\"sum\":" + fmt_u64(h.sum) +
         ",\"max\":" + fmt_u64(h.max) + ",\"mean\":" + fmt_double(h.mean()) +
         ",\"p50\":" + fmt_u64(h.quantile(50.0)) +
         ",\"p90\":" + fmt_u64(h.quantile(90.0)) +
         ",\"p99\":" + fmt_u64(h.quantile(99.0)) + ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (h.buckets[i] == 0) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"le\":" + fmt_u64(Histogram::Snapshot::bucket_upper(i)) +
           ",\"count\":" + fmt_u64(h.buckets[i]) + "}";
  }
  out += "]";
  // Exemplars only when any slot is populated — histograms recorded with
  // tracing off keep the pre-exemplar shape (and the golden tests pinned
  // against it).
  bool any = false;
  for (const Exemplar& e : h.exemplars) any = any || e.valid();
  if (any) {
    out += ",\"exemplars\":[";
    first = true;
    for (std::size_t i = 0; i < h.exemplars.size(); ++i) {
      const Exemplar& e = h.exemplars[i];
      if (!e.valid()) continue;
      if (!first) out += ',';
      first = false;
      out += "{\"le\":" + fmt_u64(Histogram::Snapshot::bucket_upper(i)) +
             ",\"trace\":" + fmt_u64(e.trace_id) +
             ",\"value\":" + fmt_u64(e.value) +
             ",\"wall_us\":" + fmt_u64(e.wall_us) + "}";
    }
    out += "]";
  }
  out += "}";
}

}  // namespace

std::string prometheus_text(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + fmt_u64(value) + "\n";
  }
  for (const RegistrySnapshot::GaugeEntry& g : snapshot.gauges) {
    const std::string p = prom_name(g.name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + fmt_double(g.value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " histogram\n";
    // Cumulative buckets up to the highest non-empty one, then +Inf.
    std::size_t top = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] > 0) top = i;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= top && h.count > 0; ++i) {
      cumulative += h.buckets[i];
      out += p + "_bucket{le=\"" +
             fmt_u64(Histogram::Snapshot::bucket_upper(i)) + "\"} " +
             fmt_u64(cumulative);
      // OpenMetrics-style exemplar suffix: ` # {trace_id="..."} value`.
      // trace ids render as fixed u64 decimals so the label value never
      // needs escaping — pinned by ObsExport.PrometheusExemplarEscaping.
      if (h.exemplars[i].valid()) {
        out += " # {trace_id=\"" + fmt_u64(h.exemplars[i].trace_id) +
               "\"} " + fmt_u64(h.exemplars[i].value);
      }
      out += "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + fmt_u64(h.count) + "\n";
    out += p + "_sum " + fmt_u64(h.sum) + "\n";
    out += p + "_count " + fmt_u64(h.count) + "\n";
    out += p + "_p50 " + fmt_u64(h.quantile(50.0)) + "\n";
    out += p + "_p90 " + fmt_u64(h.quantile(90.0)) + "\n";
    out += p + "_p99 " + fmt_u64(h.quantile(99.0)) + "\n";
  }
  return out;
}

std::string json_object(const RegistrySnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + fmt_u64(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const RegistrySnapshot::GaugeEntry& g : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + g.name + "\": " + fmt_double(g.value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": ";
    append_histogram_json(out, h);
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string json_lines(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    out += "{\"type\":\"counter\",\"name\":\"" + name + "\",\"value\":" +
           fmt_u64(value) + "}\n";
  }
  for (const RegistrySnapshot::GaugeEntry& g : snapshot.gauges) {
    out += "{\"type\":\"gauge\",\"name\":\"" + g.name + "\",\"value\":" +
           fmt_double(g.value) + ",\"agg\":\"" + to_string(g.agg) + "\"}\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    out += "{\"type\":\"histogram\",\"name\":\"" + name + "\",\"value\":";
    append_histogram_json(out, h);
    out += "}\n";
  }
  return out;
}

std::string trace_json_lines(const std::vector<SpanRecord>& spans) {
  std::string out;
  for (const SpanRecord& s : spans) {
    out += "{\"id\":" + fmt_u64(s.id) + ",\"parent\":" + fmt_u64(s.parent) +
           ",\"trace\":" + fmt_u64(s.trace_id) +
           ",\"category\":\"" + to_string(s.category) + "\",\"name\":\"" +
           s.name + "\",\"wall_begin_us\":" + fmt_u64(s.wall_begin_us) +
           ",\"wall_end_us\":" + fmt_u64(s.wall_end_us) +
           ",\"sim_begin\":" + fmt_double(s.sim_begin) +
           ",\"sim_end\":" + fmt_double(s.sim_end) +
           ",\"hop\":" + fmt_u64(s.hop) + ",\"remote\":" +
           (s.remote_parent ? "true" : "false");
    if (s.node != kNoSpanNode) out += ",\"node\":" + fmt_u64(s.node);
    out += "}\n";
  }
  return out;
}

std::vector<SpanRecord> filter_trace(const std::vector<SpanRecord>& spans,
                                     std::uint64_t trace_id) {
  std::vector<SpanRecord> out;
  if (trace_id == 0) return out;
  for (const SpanRecord& s : spans) {
    if (s.trace_id == trace_id) out.push_back(s);
  }
  return out;
}

namespace {

/// Microsecond timestamp of a span edge: sim-stamped spans are keyed on
/// simulated time (seconds -> us) so traces from the event engine line up on
/// one deterministic axis; un-stamped spans fall back to wall time.
double span_ts_us(const SpanRecord& s, bool end) {
  if (s.sim_begin >= 0.0 && s.sim_end >= 0.0) {
    return (end ? s.sim_end : s.sim_begin) * 1e6;
  }
  return static_cast<double>(end ? s.wall_end_us : s.wall_begin_us);
}

/// pid 0 is the "no node" process; simulated node n maps to pid n + 1 so
/// node 0 stays distinguishable from unattributed spans.
std::uint64_t span_pid(const SpanRecord& s) {
  return s.node == kNoSpanNode ? 0 : static_cast<std::uint64_t>(s.node) + 1;
}

}  // namespace

std::string chrome_trace_json(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event) {
    out += first ? "\n" : ",\n";
    first = false;
    out += event;
  };

  // Process-name metadata: one per distinct simulated node, sorted.
  std::map<std::uint64_t, bool> pids;
  std::map<std::uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& s : spans) {
    pids[span_pid(s)] = true;
    by_id[s.id] = &s;
  }
  for (const auto& [pid, unused] : pids) {
    (void)unused;
    emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + fmt_u64(pid) +
         ",\"tid\":0,\"args\":{\"name\":\"" +
         (pid == 0 ? std::string("host") : "node " + fmt_u64(pid - 1)) +
         "\"}}");
  }

  for (const SpanRecord& s : spans) {
    const double begin = span_ts_us(s, /*end=*/false);
    const double dur = std::max(0.0, span_ts_us(s, /*end=*/true) - begin);
    emit("{\"ph\":\"X\",\"name\":\"" + std::string(s.name) + "\",\"cat\":\"" +
         to_string(s.category) + "\",\"ts\":" + fmt_double(begin) +
         ",\"dur\":" + fmt_double(dur) + ",\"pid\":" + fmt_u64(span_pid(s)) +
         ",\"tid\":" + fmt_u64(static_cast<std::uint64_t>(s.category)) +
         ",\"args\":{\"span\":" + fmt_u64(s.id) + ",\"parent\":" +
         fmt_u64(s.parent) + ",\"trace\":" + fmt_u64(s.trace_id) +
         ",\"hop\":" + fmt_u64(s.hop) + "}}");
    if (!s.remote_parent) continue;
    // Causal send->receive arrow, bound by the receiver's (unique) span id.
    // Needs the sender's record to anchor the start; a sender overwritten in
    // the ring leaves the receive span standing alone (no dangling arrow).
    auto sender = by_id.find(s.parent);
    if (sender == by_id.end()) continue;
    const SpanRecord& p = *sender->second;
    emit("{\"ph\":\"s\",\"name\":\"causal\",\"cat\":\"trace\",\"id\":" +
         fmt_u64(s.id) + ",\"ts\":" + fmt_double(span_ts_us(p, /*end=*/false)) +
         ",\"pid\":" + fmt_u64(span_pid(p)) + ",\"tid\":" +
         fmt_u64(static_cast<std::uint64_t>(p.category)) + "}");
    emit("{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"causal\",\"cat\":\"trace\","
         "\"id\":" + fmt_u64(s.id) + ",\"ts\":" + fmt_double(begin) +
         ",\"pid\":" + fmt_u64(span_pid(s)) + ",\"tid\":" +
         fmt_u64(static_cast<std::uint64_t>(s.category)) + "}");
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (written != content.size()) std::fclose(f);
  return ok;
}

}  // namespace bcc::obs
