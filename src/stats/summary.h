// Basic summary statistics and empirical CDFs used by the experiment
// harnesses.
#pragma once

#include <span>
#include <vector>

namespace bcc {

double mean(std::span<const double> values);
double stddev(std::span<const double> values);  // sample stddev; 0 if n < 2

/// p-th percentile (p in [0, 100]) with linear interpolation between closest
/// ranks. Requires non-empty input.
double percentile(std::span<const double> values, double p);

double median(std::span<const double> values);

/// One point of an empirical CDF.
struct CdfPoint {
  double x = 0.0;
  double y = 0.0;  // P(value <= x)
};

/// Empirical CDF downsampled to at most `points` points (evenly spaced by
/// rank; always includes min and max). Requires non-empty input.
std::vector<CdfPoint> empirical_cdf(std::span<const double> values,
                                    std::size_t points = 100);

/// Fraction of values <= x.
double cdf_at(std::span<const double> values, double x);

/// Fraction of values in [lo, hi].
double fraction_within(std::span<const double> values, double lo, double hi);

}  // namespace bcc
