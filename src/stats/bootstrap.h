// Bootstrap confidence intervals for experiment summaries. The paper plots
// point estimates; a production harness should say how trustworthy they
// are, so the figure benches can attach percentile-bootstrap CIs to their
// headline numbers.
#pragma once

#include <span>

#include "common/rng.h"

namespace bcc {

struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;  // the estimate on the original sample
};

/// Percentile-bootstrap CI for the mean of `values`. `confidence` in (0,1).
/// Degenerate inputs (n < 2) collapse to [point, point].
ConfidenceInterval bootstrap_mean_ci(std::span<const double> values, Rng& rng,
                                     double confidence = 0.95,
                                     std::size_t resamples = 1000);

/// Percentile-bootstrap CI for the median of `values`.
ConfidenceInterval bootstrap_median_ci(std::span<const double> values,
                                       Rng& rng, double confidence = 0.95,
                                       std::size_t resamples = 1000);

/// Bootstrap CI for a binomial proportion (successes out of trials) via
/// resampling of Bernoulli outcomes — used for RR and WPR.
ConfidenceInterval bootstrap_proportion_ci(std::size_t successes,
                                           std::size_t trials, Rng& rng,
                                           double confidence = 0.95,
                                           std::size_t resamples = 1000);

}  // namespace bcc
