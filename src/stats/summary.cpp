#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace bcc {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double percentile(std::span<const double> values, double p) {
  BCC_REQUIRE(!values.empty());
  BCC_REQUIRE(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> values) { return percentile(values, 50.0); }

std::vector<CdfPoint> empirical_cdf(std::span<const double> values,
                                    std::size_t points) {
  BCC_REQUIRE(!values.empty());
  BCC_REQUIRE(points >= 2);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const std::size_t count = std::min(points, n);
  std::vector<CdfPoint> cdf;
  cdf.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t rank = i * (n - 1) / (count - 1);
    cdf.push_back(CdfPoint{sorted[rank],
                           static_cast<double>(rank + 1) / static_cast<double>(n)});
  }
  return cdf;
}

double cdf_at(std::span<const double> values, double x) {
  if (values.empty()) return 0.0;
  std::size_t count = 0;
  for (double v : values) {
    if (v <= x) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

double fraction_within(std::span<const double> values, double lo, double hi) {
  BCC_REQUIRE(lo <= hi);
  if (values.empty()) return 0.0;
  std::size_t count = 0;
  for (double v : values) {
    if (v >= lo && v <= hi) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

}  // namespace bcc
