#include "stats/bootstrap.h"

#include <algorithm>
#include <vector>

#include "common/assert.h"
#include "stats/summary.h"

namespace bcc {
namespace {

using Statistic = double (*)(std::span<const double>);

double mean_stat(std::span<const double> v) { return mean(v); }
double median_stat(std::span<const double> v) { return median(v); }

ConfidenceInterval bootstrap_ci(std::span<const double> values, Rng& rng,
                                double confidence, std::size_t resamples,
                                Statistic stat) {
  BCC_REQUIRE(confidence > 0.0 && confidence < 1.0);
  BCC_REQUIRE(resamples >= 10);
  BCC_REQUIRE(!values.empty());
  ConfidenceInterval ci;
  ci.point = stat(values);
  if (values.size() < 2) {
    ci.lo = ci.hi = ci.point;
    return ci;
  }
  std::vector<double> resample(values.size());
  std::vector<double> stats;
  stats.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (auto& v : resample) {
      v = values[static_cast<std::size_t>(rng.below(values.size()))];
    }
    stats.push_back(stat(resample));
  }
  const double alpha = (1.0 - confidence) / 2.0;
  ci.lo = percentile(stats, 100.0 * alpha);
  ci.hi = percentile(stats, 100.0 * (1.0 - alpha));
  return ci;
}

}  // namespace

ConfidenceInterval bootstrap_mean_ci(std::span<const double> values, Rng& rng,
                                     double confidence,
                                     std::size_t resamples) {
  return bootstrap_ci(values, rng, confidence, resamples, mean_stat);
}

ConfidenceInterval bootstrap_median_ci(std::span<const double> values,
                                       Rng& rng, double confidence,
                                       std::size_t resamples) {
  return bootstrap_ci(values, rng, confidence, resamples, median_stat);
}

ConfidenceInterval bootstrap_proportion_ci(std::size_t successes,
                                           std::size_t trials, Rng& rng,
                                           double confidence,
                                           std::size_t resamples) {
  BCC_REQUIRE(successes <= trials);
  BCC_REQUIRE(trials >= 1);
  std::vector<double> outcomes(trials, 0.0);
  for (std::size_t i = 0; i < successes; ++i) outcomes[i] = 1.0;
  return bootstrap_mean_ci(outcomes, rng, confidence, resamples);
}

}  // namespace bcc
