#include "stats/accuracy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"

namespace bcc {

void WprAccumulator::add_cluster(const BandwidthMatrix& real,
                                 const Cluster& cluster, double b) {
  BCC_REQUIRE(b > 0.0);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    for (std::size_t j = i + 1; j < cluster.size(); ++j) {
      ++total_;
      if (real.at(cluster[i], cluster[j]) < b) ++wrong_;
    }
  }
}

double WprAccumulator::rate() const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(wrong_) / static_cast<double>(total_);
}

WprAccumulator& WprAccumulator::operator+=(const WprAccumulator& other) {
  wrong_ += other.wrong_;
  total_ += other.total_;
  return *this;
}

void RrAccumulator::add_query(bool found) {
  ++total_;
  if (found) ++found_;
}

double RrAccumulator::rate() const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(found_) / static_cast<double>(total_);
}

RrAccumulator& RrAccumulator::operator+=(const RrAccumulator& other) {
  found_ += other.found_;
  total_ += other.total_;
  return *this;
}

std::vector<double> relative_bandwidth_errors(const BandwidthMatrix& real,
                                              const DistanceMatrix& predicted,
                                              double c) {
  BCC_REQUIRE(real.size() == predicted.size());
  std::vector<double> errors;
  errors.reserve(real.size() * (real.size() + 1) / 2);
  for (NodeId u = 0; u < real.size(); ++u) {
    for (NodeId v = u + 1; v < real.size(); ++v) {
      const double bw = real.at(u, v);
      const double d_pred = predicted.at(u, v);
      // A zero predicted distance means predicted bandwidth is infinite;
      // report the error as the full actual value's worth (ratio 1e9 capped
      // would distort CDFs — use the conventional |bw - inf| -> large but
      // finite sentinel of 10, i.e. 1000% error).
      const double bw_pred = d_pred > 0.0 ? distance_to_bandwidth(d_pred, c)
                                          : std::numeric_limits<double>::infinity();
      const double err = std::isinf(bw_pred)
                             ? 10.0
                             : std::abs(bw - bw_pred) / bw;
      errors.push_back(err);
    }
  }
  return errors;
}

double f_b(const BandwidthMatrix& real, double b) {
  const auto values = real.pair_values();
  if (values.empty()) return 0.0;
  std::size_t count = 0;
  for (double v : values) {
    if (v <= b) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

double f_a(const BandwidthMatrix& real, double b, double window) {
  BCC_REQUIRE(window >= 0.0);
  const auto values = real.pair_values();
  if (values.empty()) return 0.0;
  std::size_t count = 0;
  for (double v : values) {
    if (v >= b - window && v <= b + window) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

double f_a_star(double f_a_value, double alpha) {
  BCC_REQUIRE(f_a_value >= 0.0 && f_a_value <= 1.0);
  BCC_REQUIRE(alpha > 1.0);
  return (alpha - 1.0 / alpha) * f_a_value + 1.0 / alpha;
}

double wpr_model(double f_b_value, double epsilon_star_value,
                 double f_a_star_value) {
  BCC_REQUIRE(f_b_value >= 0.0 && f_b_value <= 1.0);
  BCC_REQUIRE(epsilon_star_value >= 0.0 && epsilon_star_value <= 1.0);
  BCC_REQUIRE(f_a_star_value > 0.0);
  if (f_b_value == 0.0) return 0.0;
  if (f_b_value == 1.0) return 1.0;
  // ε#_avg = ε*·f_a*, clamped into (0, 1]; exponent 1/ε#.
  const double eps_sharp =
      std::min(1.0, epsilon_star_value * f_a_star_value);
  if (eps_sharp == 0.0) return 0.0;  // perfect treeness predicts perfectly
  return std::pow(f_b_value, 1.0 / eps_sharp);
}

}  // namespace bcc
