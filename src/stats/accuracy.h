// Evaluation metrics of the paper (§IV): Wrong Pair Rate, Return Rate,
// bandwidth-prediction relative error, the f_b / f_a dataset descriptors and
// the WPR model of Equation 1.
#pragma once

#include <span>

#include "metric/bandwidth.h"
#include "metric/distance_matrix.h"

namespace bcc {

/// Wrong Pair Rate accumulator (§IV.A): over all pairs inside all returned
/// clusters, the fraction whose *real* bandwidth is below the query's b.
class WprAccumulator {
 public:
  /// Accounts every unordered pair of `cluster` against constraint b.
  void add_cluster(const BandwidthMatrix& real, const Cluster& cluster,
                   double b);

  std::size_t wrong_pairs() const { return wrong_; }
  std::size_t total_pairs() const { return total_; }
  /// 0 when no pairs have been accumulated.
  double rate() const;

  WprAccumulator& operator+=(const WprAccumulator& other);

 private:
  std::size_t wrong_ = 0;
  std::size_t total_ = 0;
};

/// Return Rate accumulator (§IV.B): found queries / submitted queries.
class RrAccumulator {
 public:
  void add_query(bool found);
  std::size_t found_queries() const { return found_; }
  std::size_t total_queries() const { return total_; }
  double rate() const;
  RrAccumulator& operator+=(const RrAccumulator& other);

 private:
  std::size_t found_ = 0;
  std::size_t total_ = 0;
};

/// Per-pair relative bandwidth-prediction errors
/// |BW(p,q) − BW_T(p,q)| / BW(p,q), where BW_T = c / d_predicted.
std::vector<double> relative_bandwidth_errors(const BandwidthMatrix& real,
                                              const DistanceMatrix& predicted,
                                              double c = kDefaultTransformC);

/// f_b: the CDF of real pairwise bandwidth at b (§IV.C).
double f_b(const BandwidthMatrix& real, double b);

/// f_a: the fraction of pairs with bandwidth in [b − window, b + window]
/// (§IV.C uses window = 10 Mbps) — the steepness of the CDF at b.
double f_a(const BandwidthMatrix& real, double b, double window = 10.0);

/// f_a* = (α − 1/α)·f_a + 1/α, mapping f_a ∈ [0,1] to [1/α, α] (§IV.C).
double f_a_star(double f_a_value, double alpha);

/// Equation 1: WPR = f_b ^ ((1/ε*_avg)(1/f_a*)), with ε#_avg = ε*·f_a*
/// clamped to 1. Handles the boundary cases (f_b = 0, ε* = 0) explicitly.
double wpr_model(double f_b_value, double epsilon_star_value,
                 double f_a_star_value);

}  // namespace bcc
