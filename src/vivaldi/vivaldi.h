// Vivaldi network coordinates (Dabek et al., SIGCOMM'04) in 2-D Euclidean
// space — the embedding substrate of the paper's comparison model
// (§IV.A: EUCL-CENTRAL).
//
// Each node holds a 2-D coordinate and a local error estimate.  On each
// sample (i, j, measured distance) node i nudges its coordinate along the
// error gradient with the adaptive timestep of the original paper:
//   w      = e_i / (e_i + e_j)
//   e_s    = |‖x_i − x_j‖ − d| / d
//   e_i    ← e_s·c_e·w + e_i·(1 − c_e·w)
//   δ      = c_c · w
//   x_i    ← x_i + δ·(d − ‖x_i − x_j‖)·u(x_i − x_j)
// Distances fed to Vivaldi here come from the rational transform of
// bandwidth (d = C/BW), the configuration §V reports as far more accurate
// for bandwidth than the linear transform.
#pragma once

#include <vector>

#include "common/rng.h"
#include "metric/distance_matrix.h"

namespace bcc {

/// A point in the embedding space: 2-D position plus an optional
/// non-negative "height" (Dabek et al.'s height-vector model — height
/// captures the access-link component that no planar position can).
struct Coord {
  double x = 0.0;
  double y = 0.0;
  double h = 0.0;  // used only when VivaldiOptions::use_height
};

/// Planar Euclidean distance (ignores heights).
double euclidean(const Coord& a, const Coord& b);

struct VivaldiOptions {
  double ce = 0.25;          // error-damping constant
  double cc = 0.25;          // timestep constant
  double initial_error = 1.0;
  std::size_t samples_per_node_per_round = 16;
  std::size_t rounds = 50;
  /// Height-vector model: predicted distance = ||xi − xj|| + hi + hj.
  bool use_height = false;
};

/// The Vivaldi embedding engine over a fixed node population.
class Vivaldi {
 public:
  Vivaldi(std::size_t n, Rng& rng, VivaldiOptions options = {});

  std::size_t size() const { return coords_.size(); }

  /// One measurement sample: node i observes distance `dist` to node j and
  /// updates its own coordinate and error.
  void observe(NodeId i, NodeId j, double dist);

  /// Runs options.rounds rounds; in each round every node samples
  /// options.samples_per_node_per_round random peers from `target`.
  void run(const DistanceMatrix& target);

  const Coord& coord(NodeId i) const;
  double error(NodeId i) const;

  /// Predicted distance = Euclidean distance between coordinates.
  double distance(NodeId i, NodeId j) const;

  /// Dense predicted distance matrix.
  DistanceMatrix predicted_distances() const;

  /// Median of |predicted − actual| / actual over all pairs of `target`.
  double median_relative_error(const DistanceMatrix& target) const;

 private:
  std::vector<Coord> coords_;
  std::vector<double> errors_;
  VivaldiOptions options_;
  Rng* rng_;
};

/// Convenience: embeds `target` and returns the predicted distance matrix.
DistanceMatrix vivaldi_embed(const DistanceMatrix& target, Rng& rng,
                             VivaldiOptions options = {});

}  // namespace bcc
