#include "vivaldi/vivaldi.h"

#include <algorithm>
#include <cmath>

namespace bcc {

double euclidean(const Coord& a, const Coord& b) {
  const double dx = a.x - b.x, dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Vivaldi::Vivaldi(std::size_t n, Rng& rng, VivaldiOptions options)
    : coords_(n), errors_(n, options.initial_error), options_(options),
      rng_(&rng) {
  BCC_REQUIRE(options.ce > 0.0 && options.ce <= 1.0);
  BCC_REQUIRE(options.cc > 0.0 && options.cc <= 1.0);
  // Small random placement breaks the symmetry of the all-zero start.
  for (Coord& c : coords_) {
    c.x = rng.uniform(-0.1, 0.1);
    c.y = rng.uniform(-0.1, 0.1);
  }
}

void Vivaldi::observe(NodeId i, NodeId j, double dist) {
  BCC_REQUIRE(i < size() && j < size() && i != j);
  BCC_REQUIRE(dist >= 0.0);
  if (dist <= 0.0) return;  // degenerate sample carries no gradient

  Coord& ci = coords_[i];
  const Coord& cj = coords_[j];
  const double planar = euclidean(ci, cj);
  const double cur =
      options_.use_height ? planar + ci.h + cj.h : planar;

  // Unit planar vector from j towards i; random direction if coincident.
  double ux, uy;
  if (planar > 1e-12) {
    ux = (ci.x - cj.x) / planar;
    uy = (ci.y - cj.y) / planar;
  } else {
    const double ang = rng_->uniform(0.0, 2.0 * 3.141592653589793);
    ux = std::cos(ang);
    uy = std::sin(ang);
  }

  const double w = errors_[i] / (errors_[i] + errors_[j] + 1e-12);
  const double sample_err = std::abs(cur - dist) / dist;
  errors_[i] = std::clamp(
      sample_err * options_.ce * w + errors_[i] * (1.0 - options_.ce * w), 0.0,
      10.0);
  const double delta = options_.cc * w;
  const double force = delta * (dist - cur);
  ci.x += force * ux;
  ci.y += force * uy;
  if (options_.use_height) {
    // The height axis contributes +1 to the unit vector for both endpoints
    // (Dabek et al. §5.4): pushing apart raises the height, pulling together
    // lowers it, never below zero.
    ci.h = std::max(0.0, ci.h + force);
  }
}

void Vivaldi::run(const DistanceMatrix& target) {
  BCC_REQUIRE(target.size() == size());
  const std::size_t n = size();
  if (n < 2) return;
  for (std::size_t round = 0; round < options_.rounds; ++round) {
    for (NodeId i = 0; i < n; ++i) {
      for (std::size_t s = 0; s < options_.samples_per_node_per_round; ++s) {
        NodeId j = static_cast<NodeId>(rng_->below(n - 1));
        if (j >= i) ++j;  // uniform over peers != i
        observe(i, j, target.at(i, j));
      }
    }
  }
}

const Coord& Vivaldi::coord(NodeId i) const {
  BCC_REQUIRE(i < size());
  return coords_[i];
}

double Vivaldi::error(NodeId i) const {
  BCC_REQUIRE(i < size());
  return errors_[i];
}

double Vivaldi::distance(NodeId i, NodeId j) const {
  BCC_REQUIRE(i < size() && j < size());
  if (i == j) return 0.0;
  const double planar = euclidean(coords_[i], coords_[j]);
  return options_.use_height ? planar + coords_[i].h + coords_[j].h : planar;
}

DistanceMatrix Vivaldi::predicted_distances() const {
  DistanceMatrix d(size());
  for (NodeId i = 0; i < size(); ++i) {
    for (NodeId j = i + 1; j < size(); ++j) {
      d.set(i, j, distance(i, j));
    }
  }
  return d;
}

double Vivaldi::median_relative_error(const DistanceMatrix& target) const {
  BCC_REQUIRE(target.size() == size());
  std::vector<double> errs;
  for (NodeId i = 0; i < size(); ++i) {
    for (NodeId j = i + 1; j < size(); ++j) {
      const double actual = target.at(i, j);
      if (actual <= 0.0) continue;
      errs.push_back(std::abs(distance(i, j) - actual) / actual);
    }
  }
  if (errs.empty()) return 0.0;
  std::nth_element(errs.begin(), errs.begin() + errs.size() / 2, errs.end());
  return errs[errs.size() / 2];
}

DistanceMatrix vivaldi_embed(const DistanceMatrix& target, Rng& rng,
                             VivaldiOptions options) {
  Vivaldi v(target.size(), rng, options);
  v.run(target);
  return v.predicted_distances();
}

}  // namespace bcc
