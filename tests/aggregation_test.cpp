#include "core/aggregation.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/find_cluster.h"
#include "test_util.h"
#include "tree/embedder.h"

namespace bcc {
namespace {

/// Builds a framework + converged overlay state for a random tree metric.
struct ConvergedSystem {
  Framework fw;
  DistanceMatrix predicted;
  OverlayNodeMap nodes;
  BandwidthClasses classes = BandwidthClasses({1.0});
  std::size_t cycles = 0;
};

ConvergedSystem make_converged(std::size_t n, std::size_t n_cut,
                               std::uint64_t seed,
                               std::vector<double> class_bandwidths = {}) {
  ConvergedSystem s;
  Rng rng(seed);
  const DistanceMatrix real = testutil::random_tree_metric(n, rng);
  Rng order_rng(seed + 7);
  s.fw = build_framework(real, order_rng);
  s.predicted = s.fw.predicted_distances();
  if (class_bandwidths.empty()) {
    // Distance classes spanning the metric: pick bandwidths C/l for a few l.
    const double c = kDefaultTransformC;
    const double dmax = s.predicted.max_distance();
    class_bandwidths = {c / dmax, c / (dmax * 0.5), c / (dmax * 0.25),
                        c / (dmax * 0.1)};
  }
  s.classes = BandwidthClasses(std::move(class_bandwidths));
  s.nodes = make_overlay_nodes(s.fw.anchors);
  Engine engine;
  auto info = std::make_shared<NodeInfoAggregation>(&s.nodes, &s.predicted,
                                                    n_cut, nullptr);
  auto crt = std::make_shared<CrtAggregation>(&s.nodes, &s.predicted,
                                              &s.classes, nullptr);
  engine.add_protocol(info);
  engine.add_protocol(crt);
  s.cycles = engine.run(2 * s.fw.anchors.diameter() + 8);
  EXPECT_TRUE(info->converged());
  EXPECT_TRUE(crt->converged());
  return s;
}

/// Ground truth for Theorem 3.2: the n_cut nodes of `reachable` closest to x
/// under `d`, ties by id.
std::vector<NodeId> expected_aggr(const DistanceMatrix& d, NodeId x,
                                  std::vector<NodeId> reachable,
                                  std::size_t n_cut) {
  std::stable_sort(reachable.begin(), reachable.end(),
                   [&](NodeId a, NodeId b) {
                     const double da = d.at(x, a), db = d.at(x, b);
                     if (da != db) return da < db;
                     return a < b;
                   });
  if (reachable.size() > n_cut) reachable.resize(n_cut);
  return reachable;
}

TEST(NodeInfoAggregation, Theorem32HoldsAtFixpoint) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    ConvergedSystem s = make_converged(24, 5, seed);
    for (auto& [x, node] : s.nodes) {
      for (NodeId m : node.neighbors) {
        auto got = node.aggr_node.at(m);
        std::sort(got.begin(), got.end());
        auto want = expected_aggr(s.predicted, x,
                                  s.fw.anchors.reachable_via(x, m), 5);
        std::sort(want.begin(), want.end());
        EXPECT_EQ(got, want) << "x=" << x << " m=" << m << " seed=" << seed;
      }
    }
  }
}

TEST(NodeInfoAggregation, LargeNcutAggregatesEntireDirections) {
  ConvergedSystem s = make_converged(16, 100, 4);
  for (auto& [x, node] : s.nodes) {
    for (NodeId m : node.neighbors) {
      auto got = node.aggr_node.at(m);
      auto want = s.fw.anchors.reachable_via(x, m);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      EXPECT_EQ(got, want);
    }
  }
}

TEST(NodeInfoAggregation, ClusteringSpaceIsWholeSystemWithLargeNcut) {
  ConvergedSystem s = make_converged(16, 100, 5);
  for (auto& [x, node] : s.nodes) {
    EXPECT_EQ(node.clustering_space().size(), 16u) << "x=" << x;
  }
}

TEST(NodeInfoAggregation, AggregatesNeverContainSelf) {
  ConvergedSystem s = make_converged(20, 6, 6);
  for (auto& [x, node] : s.nodes) {
    for (auto& [m, nodes] : node.aggr_node) {
      EXPECT_EQ(std::find(nodes.begin(), nodes.end(), x), nodes.end());
    }
  }
}

TEST(NodeInfoAggregation, AggregateSizesRespectNcut) {
  ConvergedSystem s = make_converged(30, 4, 7);
  for (auto& [x, node] : s.nodes) {
    for (auto& [m, nodes] : node.aggr_node) {
      EXPECT_LE(nodes.size(), 4u);
    }
  }
}

TEST(NodeInfoAggregation, ConvergesWithinOverlayDiameterCycles) {
  ConvergedSystem s = make_converged(25, 5, 8);
  EXPECT_LE(s.cycles, 2 * s.fw.anchors.diameter() + 8);
  EXPECT_GE(s.cycles, s.fw.anchors.diameter() / 2);  // nontrivial propagation
}

TEST(CrtAggregation, Theorem33Identity) {
  // At the fixpoint, x.aggrCRT[m][l] equals the max over the m-direction of
  // each node's own local maximum cluster size.
  for (std::uint64_t seed : {10ull, 11ull}) {
    ConvergedSystem s = make_converged(20, 5, seed);
    for (auto& [x, node] : s.nodes) {
      for (NodeId m : node.neighbors) {
        const auto reachable = s.fw.anchors.reachable_via(x, m);
        for (std::size_t li = 0; li < s.classes.size(); ++li) {
          std::size_t want = 0;
          for (NodeId w : reachable) {
            want = std::max(want, s.nodes.at(w).aggr_crt.at(w)[li]);
          }
          EXPECT_EQ(node.aggr_crt.at(m)[li], want)
              << "x=" << x << " m=" << m << " class=" << li;
        }
      }
    }
  }
}

TEST(CrtAggregation, SelfEntryMatchesLocalSpace) {
  ConvergedSystem s = make_converged(18, 5, 12);
  for (auto& [x, node] : s.nodes) {
    const auto space = node.clustering_space();
    for (std::size_t li = 0; li < s.classes.size(); ++li) {
      EXPECT_EQ(node.aggr_crt.at(x)[li],
                max_cluster_size(s.predicted, space, s.classes.distance_at(li)))
          << "x=" << x;
    }
  }
}

TEST(CrtAggregation, CrtMonotoneInClassDistance) {
  // Looser classes (bigger l / smaller b) admit at least as large clusters.
  ConvergedSystem s = make_converged(20, 5, 13);
  for (auto& [x, node] : s.nodes) {
    for (auto& [v, crt] : node.aggr_crt) {
      // classes are sorted ascending by bandwidth = descending by l.
      for (std::size_t i = 0; i + 1 < crt.size(); ++i) {
        EXPECT_GE(crt[i], crt[i + 1]) << "x=" << x;
      }
    }
  }
}

TEST(CrtAggregation, GlobalMaxAppearsSomewhereWithLargeNcut) {
  // With n_cut >= n every node's space is the full system, so every CRT self
  // entry equals the global maximum cluster size.
  ConvergedSystem s = make_converged(14, 100, 14);
  const auto universe = testutil::iota_universe(14);
  for (std::size_t li = 0; li < s.classes.size(); ++li) {
    const std::size_t global = max_cluster_size(s.predicted, universe,
                                                s.classes.distance_at(li));
    for (auto& [x, node] : s.nodes) {
      EXPECT_EQ(node.aggr_crt.at(x)[li], global);
    }
  }
}

TEST(Aggregation, MessageMetricsAccumulate) {
  Rng rng(20);
  const DistanceMatrix real = testutil::random_tree_metric(12, rng);
  Rng order_rng(21);
  Framework fw = build_framework(real, order_rng);
  DistanceMatrix predicted = fw.predicted_distances();
  OverlayNodeMap nodes = make_overlay_nodes(fw.anchors);
  BandwidthClasses classes({10.0, 50.0});
  Engine engine;
  engine.add_protocol(std::make_shared<NodeInfoAggregation>(
      &nodes, &predicted, 3, &engine.metrics()));
  engine.add_protocol(std::make_shared<CrtAggregation>(
      &nodes, &predicted, &classes, &engine.metrics()));
  const std::size_t executed = engine.run(5);
  EXPECT_GT(engine.metrics().messages("aggr_node"), 0u);
  EXPECT_GT(engine.metrics().messages("aggr_crt"), 0u);
  EXPECT_GT(engine.metrics().total_bytes(), 0u);
  // Each cycle sends one message per directed overlay edge per protocol:
  // 2 * (n-1) = 22 directed edges.
  EXPECT_EQ(engine.metrics().messages("aggr_crt"), executed * 22u);
}

TEST(Aggregation, MakeOverlayNodesMirrorsAnchorTree) {
  AnchorTree t;
  t.set_root(0);
  t.add_child(0, 1);
  t.add_child(1, 2);
  const OverlayNodeMap nodes = make_overlay_nodes(t);
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes.at(1).neighbors.size(), 2u);
  EXPECT_EQ(nodes.at(2).neighbors, (std::vector<NodeId>{1}));
}

TEST(Aggregation, SingletonSystemConvergesImmediately) {
  AnchorTree t;
  t.set_root(0);
  OverlayNodeMap nodes = make_overlay_nodes(t);
  DistanceMatrix predicted(1);
  BandwidthClasses classes({10.0});
  Engine engine;
  auto info =
      std::make_shared<NodeInfoAggregation>(&nodes, &predicted, 3, nullptr);
  auto crt = std::make_shared<CrtAggregation>(&nodes, &predicted, &classes,
                                              nullptr);
  engine.add_protocol(info);
  engine.add_protocol(crt);
  const std::size_t cycles = engine.run(10);
  EXPECT_LE(cycles, 2u);
  EXPECT_TRUE(info->converged());
  EXPECT_EQ(nodes.at(0).aggr_crt.at(0)[0], 1u);  // singleton cluster only
}

}  // namespace
}  // namespace bcc
