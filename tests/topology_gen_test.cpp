#include "data/topology_gen.h"

#include <gtest/gtest.h>

#include "metric/four_point.h"

namespace bcc {
namespace {

TEST(TopologyGen, ProducesConnectedTree) {
  Rng rng(1);
  TopologyOptions options;
  options.hosts = 40;
  const Topology topo = generate_topology(options, rng);
  EXPECT_TRUE(topo.tree.is_tree());
  EXPECT_EQ(topo.host_leaf.size(), 40u);
}

TEST(TopologyGen, HostsAreLeaves) {
  Rng rng(2);
  TopologyOptions options;
  options.hosts = 30;
  const Topology topo = generate_topology(options, rng);
  for (TreeVertex leaf : topo.host_leaf) {
    EXPECT_EQ(topo.tree.degree(leaf), 1u);
  }
}

TEST(TopologyGen, InducedMetricIsPerfectTreeMetric) {
  // The theoretical backbone of the paper's treeness argument ([20]).
  for (std::uint64_t seed : {3ull, 4ull, 5ull}) {
    Rng rng(seed);
    TopologyOptions options;
    options.hosts = 12;
    const Topology topo = generate_topology(options, rng);
    EXPECT_TRUE(is_tree_metric(topo.distances(), 1e-6)) << "seed " << seed;
  }
}

TEST(TopologyGen, DistancesArePositiveAndSymmetricByConstruction) {
  Rng rng(6);
  TopologyOptions options;
  options.hosts = 20;
  const Topology topo = generate_topology(options, rng);
  const DistanceMatrix d = topo.distances();
  for (NodeId u = 0; u < 20; ++u) {
    for (NodeId v = u + 1; v < 20; ++v) {
      EXPECT_GT(d.at(u, v), 0.0);
    }
  }
}

TEST(TopologyGen, BandwidthIsRationalTransformOfDistance) {
  Rng rng(7);
  TopologyOptions options;
  options.hosts = 10;
  options.c = 500.0;
  const Topology topo = generate_topology(options, rng);
  const DistanceMatrix d = topo.distances();
  const BandwidthMatrix bw = topo.bandwidths();
  for (NodeId u = 0; u < 10; ++u) {
    for (NodeId v = u + 1; v < 10; ++v) {
      EXPECT_NEAR(bw.at(u, v), 500.0 / d.at(u, v), 1e-9);
    }
  }
}

TEST(TopologyGen, ScaleEdgesScalesDistancesLinearly) {
  Rng rng(8);
  TopologyOptions options;
  options.hosts = 15;
  Topology topo = generate_topology(options, rng);
  const DistanceMatrix before = topo.distances();
  topo.scale_edges(2.5);
  const DistanceMatrix after = topo.distances();
  for (NodeId u = 0; u < 15; ++u) {
    for (NodeId v = u + 1; v < 15; ++v) {
      EXPECT_NEAR(after.at(u, v), 2.5 * before.at(u, v), 1e-9);
    }
  }
}

TEST(TopologyGen, AutoSiteCount) {
  Rng rng(9);
  TopologyOptions options;
  options.hosts = 80;  // auto: 10 sites
  const Topology topo = generate_topology(options, rng);
  // 80 leaves + 10 sites
  EXPECT_EQ(topo.tree.vertex_count(), 90u);
}

TEST(TopologyGen, ExplicitSiteCount) {
  Rng rng(10);
  TopologyOptions options;
  options.hosts = 20;
  options.sites = 3;
  const Topology topo = generate_topology(options, rng);
  EXPECT_EQ(topo.tree.vertex_count(), 23u);
}

TEST(TopologyGen, MinimumHostsEnforced) {
  Rng rng(11);
  TopologyOptions options;
  options.hosts = 1;
  EXPECT_THROW(generate_topology(options, rng), ContractViolation);
}

TEST(TopologyGen, AccessSpreadWidensBandwidthDistribution) {
  auto spread_of = [](double sigma) {
    Rng rng(12);
    TopologyOptions options;
    options.hosts = 60;
    options.access_bw_sigma = sigma;
    const BandwidthMatrix bw = generate_topology(options, rng).bandwidths();
    return bw.percentile(80.0) / bw.percentile(20.0);
  };
  EXPECT_LT(spread_of(0.1), spread_of(1.2));
}

TEST(TopologyGen, DeterministicForSeed) {
  TopologyOptions options;
  options.hosts = 25;
  Rng r1(13), r2(13);
  const DistanceMatrix a = generate_topology(options, r1).distances();
  const DistanceMatrix b = generate_topology(options, r2).distances();
  for (NodeId u = 0; u < 25; ++u) {
    for (NodeId v = u + 1; v < 25; ++v) {
      EXPECT_DOUBLE_EQ(a.at(u, v), b.at(u, v));
    }
  }
}

}  // namespace
}  // namespace bcc
