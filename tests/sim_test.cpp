#include "sim/engine.h"

#include <gtest/gtest.h>

#include "common/assert.h"

namespace bcc {
namespace {

/// Counts its own executions; converges after `limit` cycles.
class CountingProtocol : public Protocol {
 public:
  explicit CountingProtocol(std::size_t limit) : limit_(limit) {}
  void execute_cycle(std::size_t cycle) override {
    last_cycle_ = cycle;
    ++executions_;
  }
  bool converged() const override { return executions_ >= limit_; }
  std::string name() const override { return "counting"; }

  std::size_t executions() const { return executions_; }
  std::size_t last_cycle() const { return last_cycle_; }

 private:
  std::size_t limit_;
  std::size_t executions_ = 0;
  std::size_t last_cycle_ = 0;
};

TEST(Engine, RunsUntilAllProtocolsConverge) {
  Engine e;
  auto fast = std::make_shared<CountingProtocol>(2);
  auto slow = std::make_shared<CountingProtocol>(5);
  e.add_protocol(fast);
  e.add_protocol(slow);
  EXPECT_EQ(e.run(100), 5u);
  // Converged protocols keep executing until the whole engine stops
  // (synchronous cycles step everything).
  EXPECT_EQ(fast->executions(), 5u);
  EXPECT_EQ(slow->executions(), 5u);
}

TEST(Engine, RespectsCycleBudget) {
  Engine e;
  auto p = std::make_shared<CountingProtocol>(1000);
  e.add_protocol(p);
  EXPECT_EQ(e.run(7), 7u);
  EXPECT_EQ(p->executions(), 7u);
}

TEST(Engine, CycleNumbersAreGloballyMonotonic) {
  Engine e;
  auto p = std::make_shared<CountingProtocol>(3);
  e.add_protocol(p);
  e.run(10);
  EXPECT_EQ(p->last_cycle(), 2u);
  // A second run continues the global cycle counter.
  auto q = std::make_shared<CountingProtocol>(2);
  e.add_protocol(q);
  e.run(10);
  EXPECT_EQ(e.cycles_executed(), 5u);
  EXPECT_EQ(q->last_cycle(), 4u);
}

TEST(Engine, NoProtocolsConvergesInstantly) {
  Engine e;
  EXPECT_EQ(e.run(10), 0u);
}

TEST(Engine, NullProtocolRejected) {
  Engine e;
  EXPECT_THROW(e.add_protocol(nullptr), ContractViolation);
}

TEST(MessageMetrics, RecordsPerCategory) {
  MessageMetrics m;
  m.record("a", 10);
  m.record("a", 5);
  m.record("b", 1);
  EXPECT_EQ(m.messages("a"), 2u);
  EXPECT_EQ(m.bytes("a"), 15u);
  EXPECT_EQ(m.messages("b"), 1u);
  EXPECT_EQ(m.total_messages(), 3u);
  EXPECT_EQ(m.total_bytes(), 16u);
}

TEST(MessageMetrics, UnknownCategoryIsZero) {
  MessageMetrics m;
  EXPECT_EQ(m.messages("nope"), 0u);
  EXPECT_EQ(m.bytes("nope"), 0u);
}

TEST(MessageMetrics, ResetClears) {
  MessageMetrics m;
  m.record("a", 10);
  m.reset();
  EXPECT_EQ(m.total_messages(), 0u);
  EXPECT_EQ(m.total_bytes(), 0u);
}

}  // namespace
}  // namespace bcc
