#include "tree/embedder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "metric/four_point.h"
#include "test_util.h"

namespace bcc {
namespace {

/// Parameterized over (seed, n, search mode).
struct EmbedCase {
  std::uint64_t seed;
  std::size_t n;
  EndSearch search;
};

class ExactEmbedding : public ::testing::TestWithParam<EmbedCase> {};

TEST_P(ExactEmbedding, PerfectTreeMetricsEmbedExactly) {
  // THE core substrate property (Buneman / Sequoia): a metric satisfying 4PC
  // is reproduced *exactly* by Gromov-product insertion, in any order, with
  // either end-node search.
  const EmbedCase c = GetParam();
  Rng rng(c.seed);
  const DistanceMatrix real = testutil::random_tree_metric(c.n, rng);
  EmbedOptions options{c.search};
  Rng order_rng(c.seed + 1000);
  const Framework fw = build_framework(real, order_rng, options);
  const DistanceMatrix pred = fw.predicted_distances();
  for (NodeId u = 0; u < c.n; ++u) {
    for (NodeId v = u + 1; v < c.n; ++v) {
      EXPECT_NEAR(pred.at(u, v), real.at(u, v), 1e-6)
          << "pair (" << u << "," << v << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactEmbedding,
    ::testing::Values(
        EmbedCase{1, 3, EndSearch::kExhaustive},
        EmbedCase{2, 5, EndSearch::kExhaustive},
        EmbedCase{3, 10, EndSearch::kExhaustive},
        EmbedCase{4, 25, EndSearch::kExhaustive},
        EmbedCase{5, 60, EndSearch::kExhaustive},
        EmbedCase{6, 3, EndSearch::kAnchorDescent},
        EmbedCase{7, 5, EndSearch::kAnchorDescent},
        EmbedCase{8, 10, EndSearch::kAnchorDescent},
        EmbedCase{9, 25, EndSearch::kAnchorDescent},
        EmbedCase{10, 60, EndSearch::kAnchorDescent}));

TEST(Embedder, SingleHostFramework) {
  DistanceMatrix d(1);
  const std::vector<NodeId> order = {0};
  const Framework fw = build_framework(d, order);
  EXPECT_EQ(fw.prediction.host_count(), 1u);
  EXPECT_EQ(fw.anchors.size(), 1u);
  EXPECT_EQ(fw.anchors.root(), 0u);
}

TEST(Embedder, TwoHostFramework) {
  DistanceMatrix d(2);
  d.set(0, 1, 7.0);
  const std::vector<NodeId> order = {1, 0};
  const Framework fw = build_framework(d, order);
  EXPECT_EQ(fw.anchors.root(), 1u);
  EXPECT_EQ(fw.anchors.parent_of(0), 1u);
  EXPECT_DOUBLE_EQ(fw.prediction.distance(0, 1), 7.0);
}

TEST(Embedder, AnchorTreeMatchesPlacements) {
  Rng rng(11);
  const DistanceMatrix real = testutil::random_tree_metric(20, rng);
  Rng order_rng(12);
  const Framework fw = build_framework(real, order_rng);
  for (NodeId h : fw.prediction.hosts()) {
    const auto& placement = fw.prediction.placement_of(h);
    if (placement.anchor == kNoAnchor) {
      EXPECT_EQ(fw.anchors.root(), h);
    } else {
      EXPECT_EQ(fw.anchors.parent_of(h), placement.anchor);
    }
  }
}

TEST(Embedder, InvalidOrdersRejected) {
  DistanceMatrix d(3, 1.0);
  const std::vector<NodeId> short_order = {0, 1};
  EXPECT_THROW(build_framework(d, short_order), ContractViolation);
  const std::vector<NodeId> dup_order = {0, 1, 1};
  EXPECT_THROW(build_framework(d, dup_order), ContractViolation);
  const std::vector<NodeId> oob_order = {0, 1, 7};
  EXPECT_THROW(build_framework(d, oob_order), ContractViolation);
}

TEST(Embedder, ProbeAccountingExhaustiveIsQuadratic) {
  Rng rng(13);
  const std::size_t n = 30;
  const DistanceMatrix real = testutil::random_tree_metric(n, rng);
  Rng order_rng(14);
  EmbedStats stats;
  build_framework(real, order_rng, EmbedOptions{EndSearch::kExhaustive},
                  &stats);
  EXPECT_EQ(stats.joins, n);
  // Join i >= 2 probes (i - 1) candidates + 1 base probe; join 1 probes once.
  std::size_t expected = 1;
  for (std::size_t i = 2; i < n; ++i) expected += i;  // (i-1) + 1
  EXPECT_EQ(stats.probes, expected);
}

TEST(Embedder, AnchorDescentProbesFewerThanExhaustive) {
  Rng rng(15);
  const std::size_t n = 80;
  const DistanceMatrix real = testutil::random_tree_metric(n, rng);
  EmbedStats exhaustive, descent;
  Rng r1(16), r2(16);
  build_framework(real, r1, EmbedOptions{EndSearch::kExhaustive}, &exhaustive);
  build_framework(real, r2, EmbedOptions{EndSearch::kAnchorDescent}, &descent);
  EXPECT_LT(descent.probes, exhaustive.probes);
}

TEST(Embedder, NoisyMetricStillProducesValidTree) {
  // On non-tree data the embedding is approximate but must stay structurally
  // sound and produce finite distances.
  Rng rng(17);
  const DistanceMatrix real = testutil::noisy_tree_metric(40, rng, 0.4);
  Rng order_rng(18);
  const Framework fw = build_framework(real, order_rng);
  EXPECT_TRUE(fw.prediction.check_invariants());
  const DistanceMatrix pred = fw.predicted_distances();
  for (NodeId u = 0; u < 40; ++u) {
    for (NodeId v = u + 1; v < 40; ++v) {
      EXPECT_TRUE(std::isfinite(pred.at(u, v)));
      EXPECT_GE(pred.at(u, v), 0.0);
    }
  }
  // Predicted distances from a tree are themselves a tree metric.
  EXPECT_TRUE(is_tree_metric(pred.submatrix(testutil::iota_universe(12)),
                             1e-6));
}

TEST(Embedder, NoisyEmbeddingIsReasonablyAccurate) {
  // Sanity bound: with mild noise the median relative distance error should
  // be well under 100%.
  Rng rng(19);
  const DistanceMatrix real = testutil::noisy_tree_metric(60, rng, 0.2);
  Rng order_rng(20);
  const Framework fw = build_framework(real, order_rng);
  const DistanceMatrix pred = fw.predicted_distances();
  std::vector<double> errs;
  for (NodeId u = 0; u < 60; ++u) {
    for (NodeId v = u + 1; v < 60; ++v) {
      errs.push_back(std::abs(pred.at(u, v) - real.at(u, v)) / real.at(u, v));
    }
  }
  std::nth_element(errs.begin(), errs.begin() + errs.size() / 2, errs.end());
  EXPECT_LT(errs[errs.size() / 2], 0.5);
}

TEST(Embedder, EndSearchFunctionsAgreeOnTreeMetrics) {
  Rng rng(21);
  const DistanceMatrix real = testutil::random_tree_metric(15, rng);
  std::vector<NodeId> order = testutil::iota_universe(15);
  // Build a partial framework over the first 10 hosts.
  const std::span<const NodeId> first10(order.data(), 10);
  Framework fw = build_framework(real.submatrix(first10), first10);
  // For a joining host, both searches must find an end node achieving the
  // same (maximal) Gromov product value.
  const NodeId x = 10;  // not in the partial framework; distances from real
  auto gromov_to = [&](NodeId y) {
    return gromov_product(real.at(0, x), fw.prediction.distance(0, y),
                          real.at(x, y));
  };
  const NodeId y1 = find_end_exhaustive(fw.prediction, real, x, 0, nullptr);
  const NodeId y2 = find_end_anchor_descent(fw.prediction, fw.anchors, real,
                                            x, 0, nullptr);
  EXPECT_NEAR(gromov_to(y1), gromov_to(y2), 1e-9);
}

}  // namespace
}  // namespace bcc
