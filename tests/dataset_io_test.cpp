#include "data/dataset_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace bcc {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "bcc_dataset_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  void write_file(const std::string& name, const std::string& content) {
    std::ofstream os(path(name));
    os << content;
  }

  std::filesystem::path dir_;
};

TEST_F(DatasetIoTest, BandwidthRoundTrip) {
  Rng rng(1);
  SynthOptions options;
  options.hosts = 15;
  const SynthDataset data = synthesize_planetlab(options, rng);
  save_bandwidth_csv(path("bw.csv"), data.bandwidth);
  const BandwidthMatrix loaded = load_bandwidth_csv(path("bw.csv"));
  ASSERT_EQ(loaded.size(), 15u);
  for (NodeId u = 0; u < 15; ++u) {
    for (NodeId v = u + 1; v < 15; ++v) {
      EXPECT_NEAR(loaded.at(u, v), data.bandwidth.at(u, v), 1e-9);
    }
  }
}

TEST_F(DatasetIoTest, AsymmetricMatrixSymmetrizedOnLoad) {
  write_file("asym.csv", "0,40,10\n60,0,20\n10,20,0\n");
  const BandwidthMatrix bw = load_bandwidth_csv(path("asym.csv"));
  EXPECT_DOUBLE_EQ(bw.at(0, 1), 50.0);  // (40 + 60) / 2
  EXPECT_DOUBLE_EQ(bw.at(0, 2), 10.0);
}

TEST_F(DatasetIoTest, RejectsNonSquare) {
  write_file("bad.csv", "0,1,2\n1,0,3\n");
  EXPECT_THROW(load_bandwidth_csv(path("bad.csv")), std::runtime_error);
}

TEST_F(DatasetIoTest, RejectsNonZeroDiagonal) {
  write_file("diag.csv", "5,1\n1,0\n");
  EXPECT_THROW(load_bandwidth_csv(path("diag.csv")), std::runtime_error);
}

TEST_F(DatasetIoTest, RejectsNonPositiveBandwidth) {
  write_file("neg.csv", "0,-1\n-1,0\n");
  EXPECT_THROW(load_bandwidth_csv(path("neg.csv")), std::runtime_error);
  write_file("zero.csv", "0,0\n0,0\n");
  EXPECT_THROW(load_bandwidth_csv(path("zero.csv")), std::runtime_error);
}

TEST_F(DatasetIoTest, RejectsEmpty) {
  write_file("empty.csv", "# nothing here\n");
  EXPECT_THROW(load_bandwidth_csv(path("empty.csv")), std::runtime_error);
}

TEST_F(DatasetIoTest, DatasetRoundTripWithTree) {
  Rng rng(2);
  SynthOptions options;
  options.hosts = 12;
  options.name = "round";
  const SynthDataset data = synthesize_planetlab(options, rng);
  save_dataset(data, dir_.string());
  const SynthDataset loaded = load_dataset("round", dir_.string(), data.c);
  ASSERT_EQ(loaded.bandwidth.size(), 12u);
  ASSERT_EQ(loaded.tree_distances.size(), 12u);
  for (NodeId u = 0; u < 12; ++u) {
    for (NodeId v = u + 1; v < 12; ++v) {
      EXPECT_NEAR(loaded.bandwidth.at(u, v), data.bandwidth.at(u, v), 1e-9);
      EXPECT_NEAR(loaded.distances.at(u, v), data.distances.at(u, v), 1e-9);
      EXPECT_NEAR(loaded.tree_distances.at(u, v),
                  data.tree_distances.at(u, v), 1e-9);
    }
  }
}

TEST_F(DatasetIoTest, DatasetLoadsWithoutTreeFile) {
  Rng rng(3);
  SynthOptions options;
  options.hosts = 8;
  options.name = "notree";
  const SynthDataset data = synthesize_planetlab(options, rng);
  save_bandwidth_csv(path("notree.bw.csv"), data.bandwidth);
  const SynthDataset loaded = load_dataset("notree", dir_.string());
  EXPECT_EQ(loaded.bandwidth.size(), 8u);
  EXPECT_EQ(loaded.tree_distances.size(), 0u);
}

TEST_F(DatasetIoTest, MissingDatasetThrows) {
  EXPECT_THROW(load_dataset("ghost", dir_.string()), std::runtime_error);
}

}  // namespace
}  // namespace bcc
