# Asserts dir-mode bench_diff exits 2 when a baseline BENCH_*.json has no
# candidate counterpart — a benchmark that silently stopped running is a
# regression, not a pass.
file(REMOVE_RECURSE ${WORK}/missing_base ${WORK}/missing_cand)
file(MAKE_DIRECTORY ${WORK}/missing_base ${WORK}/missing_cand)
file(COPY ${FIXTURE} DESTINATION ${WORK}/missing_base)
execute_process(
  COMMAND ${BENCH_DIFF} --baseline ${WORK}/missing_base
          --candidate ${WORK}/missing_cand
  RESULT_VARIABLE code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT code EQUAL 2)
  message(FATAL_ERROR
          "bench_diff exited ${code} on a missing candidate file, expected 2")
endif()
if(NOT "${out}${err}" MATCHES "missing from candidate dir")
  message(FATAL_ERROR
          "bench_diff did not report the missing candidate file:\n${out}${err}")
endif()
