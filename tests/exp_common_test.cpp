#include "exp/common.h"

#include <gtest/gtest.h>

#include "common/assert.h"

namespace bcc {
namespace {

TEST(ExpCommon, GridEndpointsAndSpacing) {
  const auto grid = exp::bandwidth_grid(15.0, 75.0, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 15.0);
  EXPECT_DOUBLE_EQ(grid.back(), 75.0);
  EXPECT_DOUBLE_EQ(grid[1] - grid[0], 15.0);
}

TEST(ExpCommon, SingleStepGrid) {
  const auto grid = exp::bandwidth_grid(40.0, 90.0, 1);
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_DOUBLE_EQ(grid[0], 40.0);
}

TEST(ExpCommon, DegenerateRange) {
  const auto grid = exp::bandwidth_grid(50.0, 50.0, 3);
  ASSERT_EQ(grid.size(), 3u);
  for (double b : grid) EXPECT_DOUBLE_EQ(b, 50.0);
}

TEST(ExpCommon, Validation) {
  EXPECT_THROW(exp::bandwidth_grid(0.0, 10.0, 3), ContractViolation);
  EXPECT_THROW(exp::bandwidth_grid(10.0, 5.0, 3), ContractViolation);
  EXPECT_THROW(exp::bandwidth_grid(5.0, 10.0, 0), ContractViolation);
}

TEST(ExpCommon, ClassesMatchGrid) {
  const auto grid = exp::bandwidth_grid(10.0, 50.0, 5);
  const BandwidthClasses classes = exp::classes_for_grid(grid);
  ASSERT_EQ(classes.size(), 5u);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    // Every grid value snaps to itself.
    EXPECT_DOUBLE_EQ(classes.bandwidth_at(*classes.class_for_bandwidth(grid[i])),
                     grid[i]);
  }
}

}  // namespace
}  // namespace bcc
