# Asserts bench_diff exits with code 2 (regression) on the committed
# regression fixture — the exit-code half of the gate's acceptance test
# (the sibling ctest entry asserts the REGRESSION output lines).
execute_process(
  COMMAND ${BENCH_DIFF} --baseline ${BASE} --candidate ${CAND}
  RESULT_VARIABLE code
  OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 2)
  message(FATAL_ERROR
          "bench_diff exited ${code} on the regression fixture, expected 2")
endif()
