#include "metric/bandwidth.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bcc {
namespace {

TEST(RationalTransform, RoundTripScalar) {
  const double bw = 42.0;
  EXPECT_DOUBLE_EQ(distance_to_bandwidth(bandwidth_to_distance(bw)), bw);
}

TEST(RationalTransform, CustomConstant) {
  EXPECT_DOUBLE_EQ(bandwidth_to_distance(50.0, 100.0), 2.0);
  EXPECT_DOUBLE_EQ(distance_to_bandwidth(2.0, 100.0), 50.0);
}

TEST(RationalTransform, InfinityBandwidthIsZeroDistance) {
  EXPECT_DOUBLE_EQ(
      bandwidth_to_distance(std::numeric_limits<double>::infinity()), 0.0);
}

TEST(RationalTransform, ZeroDistanceIsInfiniteBandwidth) {
  EXPECT_TRUE(std::isinf(distance_to_bandwidth(0.0)));
}

TEST(RationalTransform, InvalidArgumentsRejected) {
  EXPECT_THROW(bandwidth_to_distance(0.0), ContractViolation);
  EXPECT_THROW(bandwidth_to_distance(-5.0), ContractViolation);
  EXPECT_THROW(bandwidth_to_distance(5.0, 0.0), ContractViolation);
  EXPECT_THROW(distance_to_bandwidth(-1.0), ContractViolation);
}

TEST(RationalTransform, MonotoneDecreasing) {
  // Higher bandwidth must map to smaller distance (closer).
  EXPECT_LT(bandwidth_to_distance(100.0), bandwidth_to_distance(10.0));
}

TEST(BandwidthMatrix, SelfBandwidthIsInfinite) {
  BandwidthMatrix bw(3, 10.0);
  EXPECT_TRUE(std::isinf(bw.at(1, 1)));
}

TEST(BandwidthMatrix, SymmetricSetGet) {
  BandwidthMatrix bw(3, 1.0);
  bw.set(0, 2, 33.0);
  EXPECT_DOUBLE_EQ(bw.at(0, 2), 33.0);
  EXPECT_DOUBLE_EQ(bw.at(2, 0), 33.0);
}

TEST(BandwidthMatrix, NonPositiveRejected) {
  BandwidthMatrix bw(2, 1.0);
  EXPECT_THROW(bw.set(0, 1, 0.0), ContractViolation);
  EXPECT_THROW(bw.set(0, 1, -3.0), ContractViolation);
  EXPECT_THROW(BandwidthMatrix(2, 0.0), ContractViolation);
}

TEST(BandwidthMatrix, SymmetrizedFromRowsAverages) {
  // The paper's preprocessing: average forward and reverse measurements.
  std::vector<std::vector<double>> rows = {{1e9, 40.0}, {60.0, 1e9}};
  const BandwidthMatrix bw = BandwidthMatrix::symmetrized_from_rows(rows);
  EXPECT_DOUBLE_EQ(bw.at(0, 1), 50.0);
}

TEST(BandwidthMatrix, SymmetrizedRejectsNonPositive) {
  std::vector<std::vector<double>> rows = {{0, 0.0}, {60.0, 0}};
  EXPECT_THROW(BandwidthMatrix::symmetrized_from_rows(rows), ContractViolation);
}

TEST(BandwidthMatrix, PercentileEndpoints) {
  BandwidthMatrix bw(3, 1.0);
  bw.set(0, 1, 10.0);
  bw.set(0, 2, 20.0);
  bw.set(1, 2, 30.0);
  EXPECT_DOUBLE_EQ(bw.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(bw.percentile(100.0), 30.0);
  EXPECT_DOUBLE_EQ(bw.percentile(50.0), 20.0);
}

TEST(BandwidthMatrix, PercentileInterpolates) {
  BandwidthMatrix bw(2, 1.0);
  bw.set(0, 1, 10.0);
  EXPECT_DOUBLE_EQ(bw.percentile(37.0), 10.0);  // single value
}

TEST(RationalTransform, MatrixRoundTrip) {
  BandwidthMatrix bw(4, 1.0);
  bw.set(0, 1, 15.0);
  bw.set(0, 2, 75.0);
  bw.set(0, 3, 30.0);
  bw.set(1, 2, 110.0);
  bw.set(1, 3, 5.0);
  bw.set(2, 3, 50.0);
  const DistanceMatrix d = rational_transform(bw, 500.0);
  EXPECT_DOUBLE_EQ(d.at(0, 2), 500.0 / 75.0);
  const BandwidthMatrix back = inverse_rational_transform(d, 500.0);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) {
      EXPECT_NEAR(back.at(u, v), bw.at(u, v), 1e-9);
    }
  }
}

TEST(RationalTransform, ConstraintConversion) {
  // A bandwidth constraint b maps to l = C/b: pairs with BW >= b iff d <= l.
  const double c = 1000.0, b = 25.0;
  const double l = bandwidth_to_distance(b, c);
  EXPECT_LE(bandwidth_to_distance(30.0, c), l);  // 30 >= 25 -> within l
  EXPECT_GT(bandwidth_to_distance(20.0, c), l);  // 20 < 25  -> beyond l
}

TEST(BandwidthMatrix, ToDistanceMatchesFreeFunction) {
  BandwidthMatrix bw(3, 20.0);
  const DistanceMatrix a = bw.to_distance(800.0);
  const DistanceMatrix b = rational_transform(bw, 800.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), b.at(0, 1));
}

TEST(InverseRationalTransform, RejectsZeroDistance) {
  DistanceMatrix d(2);
  d.set(0, 1, 0.0);
  EXPECT_THROW(inverse_rational_transform(d), ContractViolation);
}

TEST(LinearTransform, BasicMapping) {
  BandwidthMatrix bw(3, 10.0);
  bw.set(0, 1, 80.0);
  const DistanceMatrix d = linear_transform(bw, 100.0);
  EXPECT_DOUBLE_EQ(d.at(0, 1), 20.0);
  EXPECT_DOUBLE_EQ(d.at(0, 2), 90.0);
}

TEST(LinearTransform, ClampsWhenBandwidthExceedsC) {
  BandwidthMatrix bw(2, 1.0);
  bw.set(0, 1, 500.0);
  const DistanceMatrix d = linear_transform(bw, 100.0, 1e-3);
  EXPECT_DOUBLE_EQ(d.at(0, 1), 1e-3);
}

TEST(LinearTransform, AutoChoosesCAboveMax) {
  BandwidthMatrix bw(3, 10.0);
  bw.set(1, 2, 200.0);
  double c = 0.0;
  const DistanceMatrix d = linear_transform_auto(bw, &c);
  EXPECT_DOUBLE_EQ(c, 202.0);
  EXPECT_GT(d.at(1, 2), 0.0);  // never clamped with auto c
  EXPECT_DOUBLE_EQ(d.at(1, 2), 2.0);
}

TEST(LinearTransform, RoundTripThroughInverse) {
  BandwidthMatrix bw(2, 1.0);
  bw.set(0, 1, 60.0);
  const double c = 100.0;
  const DistanceMatrix d = linear_transform(bw, c);
  EXPECT_DOUBLE_EQ(linear_distance_to_bandwidth(d.at(0, 1), c), 60.0);
}

TEST(LinearTransform, InverseClampsToFloor) {
  EXPECT_DOUBLE_EQ(linear_distance_to_bandwidth(500.0, 100.0, 0.5), 0.5);
}

TEST(LinearTransform, Validation) {
  BandwidthMatrix bw(2, 1.0);
  EXPECT_THROW(linear_transform(bw, 0.0), ContractViolation);
  EXPECT_THROW(linear_transform(bw, 10.0, 0.0), ContractViolation);
  EXPECT_THROW(linear_distance_to_bandwidth(-1.0, 10.0), ContractViolation);
}

TEST(LinearTransform, OrderReversalVersusRational) {
  // Both transforms agree on the *ordering* (higher BW = closer), but the
  // linear one compresses high-bandwidth differences — the structural reason
  // it embeds badly (§V).
  BandwidthMatrix bw(4, 1.0);
  bw.set(0, 1, 100.0);
  bw.set(0, 2, 200.0);
  bw.set(0, 3, 10.0);
  bw.set(1, 2, 50.0);
  bw.set(1, 3, 50.0);
  bw.set(2, 3, 50.0);
  const DistanceMatrix lin = linear_transform_auto(bw);
  const DistanceMatrix rat = rational_transform(bw);
  EXPECT_LT(lin.at(0, 2), lin.at(0, 1));
  EXPECT_LT(rat.at(0, 2), rat.at(0, 1));
  // Relative contrast between 100 and 200 Mbps: rational keeps a 2x ratio,
  // linear nearly erases it.
  EXPECT_GT(rat.at(0, 1) / rat.at(0, 2), 1.9);
  EXPECT_LT(lin.at(0, 1) / lin.at(0, 2), 1.9 * 30);  // sanity: finite
}

}  // namespace
}  // namespace bcc
