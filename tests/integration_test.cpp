// End-to-end integration tests: miniature versions of every figure pipeline
// asserting the paper's *qualitative* claims (who wins, what grows, what
// stays flat) on small inputs with fixed seeds.
#include <gtest/gtest.h>

#include "exp/fig3.h"
#include "exp/fig4.h"
#include "exp/fig5.h"
#include "exp/fig6.h"

namespace bcc {
namespace {

SynthDataset small_dataset(std::size_t hosts, std::uint64_t seed,
                           double noise = 0.25) {
  Rng rng(seed);
  SynthOptions options;
  options.hosts = hosts;
  options.noise_sigma = noise;
  options.target_p20 = 15.0;
  options.target_p80 = 75.0;
  return synthesize_planetlab(options, rng);
}

TEST(IntegrationFig3, TreeBeatsEuclideanOnAccuracy) {
  const SynthDataset data = small_dataset(60, 1);
  exp::Fig3Params params;
  params.rounds = 3;
  params.queries_per_b = 5;
  params.k = 5;
  params.b_steps = 4;
  const exp::Fig3Result r = exp::run_fig3(data, params, 42);
  ASSERT_EQ(r.rows.size(), 4u);

  // Aggregate WPR across the b sweep: tree must beat Euclidean clearly.
  double tree_total = 0.0, eucl_total = 0.0;
  for (const auto& row : r.rows) {
    tree_total += row.wpr_tree_central;
    eucl_total += row.wpr_eucl_central;
  }
  EXPECT_LT(tree_total, eucl_total);

  // Tree prediction errors dominate Euclidean errors (Fig. 3b).
  EXPECT_LT(r.tree_median_error, r.eucl_median_error);

  // Centralized and decentralized tree clustering are close (same framework)
  // for these easy queries.
  for (const auto& row : r.rows) {
    EXPECT_NEAR(row.wpr_tree_decentral, row.wpr_tree_central, 0.25)
        << "b=" << row.b;
  }
}

TEST(IntegrationFig3, WprGrowsWithB) {
  const SynthDataset data = small_dataset(60, 2);
  exp::Fig3Params params;
  params.rounds = 3;
  params.queries_per_b = 5;
  params.k = 5;
  params.b_min = 10.0;
  params.b_max = 100.0;
  params.b_steps = 3;
  const exp::Fig3Result r = exp::run_fig3(data, params, 7);
  // Stricter b makes wrong pairs more likely (first vs last of the sweep).
  EXPECT_LE(r.rows.front().wpr_tree_central, r.rows.back().wpr_tree_central);
}

TEST(IntegrationFig3, EasyQueriesAreAnswered) {
  const SynthDataset data = small_dataset(50, 3);
  exp::Fig3Params params;
  params.rounds = 2;
  params.queries_per_b = 5;
  params.k = 3;  // 6% of nodes: easy
  params.b_min = 15.0;
  params.b_max = 40.0;
  params.b_steps = 2;
  const exp::Fig3Result r = exp::run_fig3(data, params, 3);
  for (const auto& row : r.rows) {
    EXPECT_GT(row.rr_tree_central, 0.99) << "b=" << row.b;
    EXPECT_GT(row.rr_tree_decentral, 0.8) << "b=" << row.b;
  }
}

TEST(IntegrationFig4, DecentralizedReturnsAtMostCentralized) {
  const SynthDataset data = small_dataset(60, 4);
  exp::Fig4Params params;
  params.rounds = 4;
  params.queries_per_k = 6;
  params.k_max = 50;
  params.k_steps = 6;
  params.n_cut = 5;
  const exp::Fig4Result r = exp::run_fig4(data, params, 11);
  ASSERT_GE(r.rows.size(), 4u);
  for (const auto& row : r.rows) {
    EXPECT_LE(row.rr_decentral, row.rr_central + 0.10) << "k=" << row.k;
  }
  // RR decreases with k for both.
  EXPECT_GE(r.rows.front().rr_central, r.rows.back().rr_central);
  EXPECT_GE(r.rows.front().rr_decentral, r.rows.back().rr_decentral);
  // Small k: both approaches succeed almost always, gap negligible.
  EXPECT_GT(r.rows.front().rr_decentral, 0.9);
  EXPECT_NEAR(r.rows.front().rr_central, r.rows.front().rr_decentral, 0.1);
  // Very large k (> n_cut * max degree region): decentralized collapses.
  EXPECT_LT(r.rows.back().rr_decentral, r.rows.front().rr_decentral + 1e-9);
}

TEST(IntegrationFig5, NormalizedWprExposesTreenessOrdering) {
  const SynthDataset base = small_dataset(60, 5);
  exp::Fig5Params params;
  params.dataset_size = 40;
  params.variants = 3;
  params.rounds = 3;
  params.k = 4;
  params.b_steps = 8;
  params.noise_min = 0.05;
  params.noise_max = 0.9;
  const exp::Fig5Result r = exp::run_fig5(base, params, 21);
  ASSERT_EQ(r.series.size(), 3u);
  // Series are ordered by treeness.
  EXPECT_LT(r.series.front().epsilon_avg, r.series.back().epsilon_avg);

  // Within each series WPR is (weakly) increasing in f_b overall: compare
  // the mean over the low-f_b half vs the high-f_b half.
  for (const auto& s : r.series) {
    double lo = 0.0, hi = 0.0;
    const std::size_t half = s.points.size() / 2;
    for (std::size_t i = 0; i < half; ++i) lo += s.points[i].wpr;
    for (std::size_t i = half; i < s.points.size(); ++i) hi += s.points[i].wpr;
    EXPECT_LE(lo / half, hi / (s.points.size() - half) + 0.05);
  }

  // The treeness effect: the least tree-like dataset has the higher mean
  // normalized WPR over the mid-range of the sweep.
  auto mid_mean_norm = [](const exp::Fig5Series& s) {
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto& p : s.points) {
      if (p.f_b > 0.05 && p.f_b < 0.95) {
        sum += p.wpr_normalized;
        ++count;
      }
    }
    return count ? sum / static_cast<double>(count) : 0.0;
  };
  EXPECT_LT(mid_mean_norm(r.series.front()), mid_mean_norm(r.series.back()));
}

TEST(IntegrationFig5, SubsetModeRunsAndOrders) {
  const SynthDataset base = small_dataset(70, 6, /*noise=*/0.4);
  exp::Fig5Params params;
  params.mode = exp::Fig5Mode::kSubsetSweep;
  params.dataset_size = 30;
  params.variants = 2;
  params.rounds = 2;
  params.k = 3;
  params.b_steps = 5;
  params.subset_candidates = 12;
  const exp::Fig5Result r = exp::run_fig5(base, params, 5);
  ASSERT_EQ(r.series.size(), 2u);
  EXPECT_LE(r.series[0].epsilon_avg, r.series[1].epsilon_avg);
}

TEST(IntegrationFig6, HopsAreSmallAndGrowSlowly) {
  const SynthDataset base = small_dataset(120, 7);
  exp::Fig6Params params;
  params.sizes = {30, 60, 100};
  params.datasets_per_size = 2;
  params.rounds = 1;
  params.queries = 40;
  const exp::Fig6Result r = exp::run_fig6(base, params, 9);
  ASSERT_EQ(r.rows.size(), 3u);
  for (const auto& row : r.rows) {
    // The paper reports ~2-3 hops; allow generous slack at tiny scale.
    EXPECT_LT(row.avg_hops, 8.0) << "n=" << row.n;
    EXPECT_GE(row.rr, 0.2) << "n=" << row.n;
  }
  // Sub-linear growth: tripling n should not triple hops.
  EXPECT_LT(r.rows.back().avg_hops,
            3.0 * std::max(0.7, r.rows.front().avg_hops));
}

TEST(IntegrationFig6, ValidatesSizes) {
  const SynthDataset base = small_dataset(30, 8);
  exp::Fig6Params params;
  params.sizes = {50};  // larger than the base dataset
  EXPECT_THROW(exp::run_fig6(base, params, 1), ContractViolation);
}

TEST(Integration, DeterministicAcrossRuns) {
  const SynthDataset data = small_dataset(40, 9);
  exp::Fig3Params params;
  params.rounds = 2;
  params.queries_per_b = 3;
  params.k = 4;
  params.b_steps = 3;
  const exp::Fig3Result a = exp::run_fig3(data, params, 123);
  const exp::Fig3Result b = exp::run_fig3(data, params, 123);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rows[i].wpr_tree_decentral, b.rows[i].wpr_tree_decentral);
    EXPECT_DOUBLE_EQ(a.rows[i].wpr_eucl_central, b.rows[i].wpr_eucl_central);
  }
}

}  // namespace
}  // namespace bcc
