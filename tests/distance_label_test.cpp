#include "tree/distance_label.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "tree/embedder.h"

namespace bcc {
namespace {

TEST(DistanceLabel, RootLabelIsItself) {
  PredictionTree t;
  t.add_first(3);
  const DistanceLabel label = DistanceLabel::of(t, 3);
  EXPECT_EQ(label.host(), 3u);
  EXPECT_EQ(label.root(), 3u);
  EXPECT_EQ(label.depth(), 0u);
}

TEST(DistanceLabel, ChainFollowsAnchors) {
  PredictionTree t;
  t.add_first(0);
  t.add_second(1, 25.0);
  t.add(2, 0, 1, 20.0, 25.0, 15.0);  // anchored at 1
  t.add(3, 0, 2, 19.0, 20.0, 3.0);   // anchored at 2
  const DistanceLabel label = DistanceLabel::of(t, 3);
  ASSERT_EQ(label.entries().size(), 4u);
  EXPECT_EQ(label.entries()[0].host, 0u);
  EXPECT_EQ(label.entries()[1].host, 1u);
  EXPECT_EQ(label.entries()[2].host, 2u);
  EXPECT_EQ(label.entries()[3].host, 3u);
  // Paper Fig. 1 semantics: offsets measure from the anchor's leaf.
  EXPECT_DOUBLE_EQ(label.entries()[1].offset, 0.0);
  EXPECT_DOUBLE_EQ(label.entries()[1].leaf_weight, 25.0);
  EXPECT_DOUBLE_EQ(label.entries()[2].offset, 10.0);
  EXPECT_DOUBLE_EQ(label.entries()[2].leaf_weight, 5.0);
}

TEST(DistanceLabel, LabelDistanceMatchesTreeOnCraftedExample) {
  PredictionTree t;
  t.add_first(0);
  t.add_second(1, 25.0);
  t.add(2, 0, 1, 20.0, 25.0, 15.0);
  t.add(3, 0, 2, 19.0, 20.0, 3.0);
  t.add(4, 0, 1, 22.0, 25.0, 9.0);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = 0; v < 5; ++v) {
      const double got = label_distance(DistanceLabel::of(t, u),
                                        DistanceLabel::of(t, v));
      EXPECT_NEAR(got, t.distance(u, v), 1e-9) << u << "," << v;
    }
  }
}

class LabelDistanceProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t,
                                                 double>> {};

TEST_P(LabelDistanceProperty, LabelsReproduceTreeDistancesExactly) {
  // Two distance labels alone reconstruct the exact predicted distance — the
  // decentralized system's "network coordinates" property (§II.D). Holds for
  // noisy (non-tree) inputs too, because it is a statement about the built
  // tree, not about the input metric.
  const auto [seed, n, sigma] = GetParam();
  Rng rng(seed);
  const DistanceMatrix real =
      sigma == 0.0 ? testutil::random_tree_metric(n, rng)
                   : testutil::noisy_tree_metric(n, rng, sigma);
  Rng order_rng(seed + 99);
  const Framework fw = build_framework(real, order_rng);
  std::vector<DistanceLabel> labels;
  for (NodeId h = 0; h < n; ++h) {
    labels.push_back(DistanceLabel::of(fw.prediction, h));
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u; v < n; ++v) {
      EXPECT_NEAR(label_distance(labels[u], labels[v]),
                  fw.prediction.distance(u, v), 1e-7)
          << "pair (" << u << "," << v << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LabelDistanceProperty,
    ::testing::Values(std::make_tuple(1ull, std::size_t{4}, 0.0),
                      std::make_tuple(2ull, std::size_t{10}, 0.0),
                      std::make_tuple(3ull, std::size_t{25}, 0.0),
                      std::make_tuple(4ull, std::size_t{10}, 0.3),
                      std::make_tuple(5ull, std::size_t{25}, 0.3),
                      std::make_tuple(6ull, std::size_t{40}, 0.6)));

TEST(DistanceLabel, DistanceToSelfIsZero) {
  PredictionTree t;
  t.add_first(0);
  t.add_second(1, 5.0);
  const DistanceLabel a = DistanceLabel::of(t, 1);
  EXPECT_DOUBLE_EQ(label_distance(a, a), 0.0);
}

TEST(DistanceLabel, MismatchedRootsRejected) {
  PredictionTree t1, t2;
  t1.add_first(0);
  t1.add_second(1, 5.0);
  t2.add_first(9);
  const DistanceLabel a = DistanceLabel::of(t1, 1);
  const DistanceLabel b = DistanceLabel::of(t2, 9);
  EXPECT_THROW(label_distance(a, b), ContractViolation);
}

TEST(DistanceLabel, FromEntriesValidation) {
  // Root entry must carry zero offset/leaf_weight.
  EXPECT_THROW(
      DistanceLabel::from_entries({LabelEntry{0, 1.0, 0.0}}),
      ContractViolation);
  EXPECT_THROW(DistanceLabel::from_entries({}), ContractViolation);
  const DistanceLabel ok =
      DistanceLabel::from_entries({LabelEntry{0, 0.0, 0.0}});
  EXPECT_EQ(ok.host(), 0u);
}

TEST(DistanceLabel, LabelSizeIsAnchorDepth) {
  // The label is "equivalent to a partial prediction tree": its length is
  // the anchor-tree depth, typically far below n (locality of labels).
  Rng rng(7);
  const DistanceMatrix real = testutil::random_tree_metric(50, rng);
  Rng order_rng(8);
  const Framework fw = build_framework(real, order_rng);
  for (NodeId h = 0; h < 50; ++h) {
    std::size_t depth = 0;
    NodeId cur = h;
    while (fw.anchors.parent_of(cur) != AnchorTree::kNoParent) {
      cur = fw.anchors.parent_of(cur);
      ++depth;
    }
    EXPECT_EQ(DistanceLabel::of(fw.prediction, h).depth(), depth);
  }
}

}  // namespace
}  // namespace bcc
