#include "core/partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "test_util.h"

namespace bcc {
namespace {

using testutil::iota_universe;

TEST(Partition, CoversDisjointly) {
  Rng rng(1);
  const DistanceMatrix d = testutil::random_tree_metric(30, rng);
  std::vector<double> sorted = d.pair_values();
  std::sort(sorted.begin(), sorted.end());
  const double l = sorted[sorted.size() / 3];
  const auto universe = iota_universe(30);
  const Partition p = partition_into_clusters(d, universe, l);

  std::set<NodeId> seen;
  for (const Cluster& c : p.clusters) {
    EXPECT_GE(c.size(), 2u);
    EXPECT_LE(d.diameter_of(c), l + 1e-9);
    for (NodeId h : c) EXPECT_TRUE(seen.insert(h).second) << "overlap " << h;
  }
  for (NodeId h : p.stragglers) EXPECT_TRUE(seen.insert(h).second);
  EXPECT_EQ(seen.size(), 30u);
  EXPECT_EQ(p.covered() + p.stragglers.size(), 30u);
}

TEST(Partition, GreedyOrderIsNonIncreasingSize) {
  Rng rng(2);
  const DistanceMatrix d = testutil::random_tree_metric(40, rng);
  std::vector<double> sorted = d.pair_values();
  std::sort(sorted.begin(), sorted.end());
  const double l = sorted[sorted.size() / 4];
  const auto universe = iota_universe(40);
  const Partition p = partition_into_clusters(d, universe, l);
  for (std::size_t i = 0; i + 1 < p.clusters.size(); ++i) {
    EXPECT_GE(p.clusters[i].size(), p.clusters[i + 1].size());
  }
}

TEST(Partition, LooseConstraintIsOneCluster) {
  Rng rng(3);
  const DistanceMatrix d = testutil::random_tree_metric(15, rng);
  const auto universe = iota_universe(15);
  const Partition p =
      partition_into_clusters(d, universe, d.max_distance() + 1.0);
  ASSERT_EQ(p.clusters.size(), 1u);
  EXPECT_EQ(p.clusters[0].size(), 15u);
  EXPECT_TRUE(p.stragglers.empty());
}

TEST(Partition, ImpossibleConstraintIsAllStragglers) {
  Rng rng(4);
  const DistanceMatrix d = testutil::random_tree_metric(10, rng);
  const auto universe = iota_universe(10);
  const Partition p =
      partition_into_clusters(d, universe, d.min_distance() * 0.5);
  EXPECT_TRUE(p.clusters.empty());
  EXPECT_EQ(p.stragglers.size(), 10u);
}

TEST(Partition, MinClusterSizeFiltersSmallGroups) {
  // Three tight pairs, far apart: with min size 3 nothing qualifies.
  DistanceMatrix d(6, 100.0);
  d.set(0, 1, 1.0);
  d.set(2, 3, 1.0);
  d.set(4, 5, 1.0);
  const auto universe = iota_universe(6);
  PartitionOptions options;
  options.min_cluster_size = 3;
  const Partition p = partition_into_clusters(d, universe, 1.0, options);
  EXPECT_TRUE(p.clusters.empty());
  EXPECT_EQ(p.stragglers.size(), 6u);
  // With the default min size 2 all three pairs appear.
  const Partition pairs = partition_into_clusters(d, universe, 1.0);
  EXPECT_EQ(pairs.clusters.size(), 3u);
  EXPECT_TRUE(pairs.stragglers.empty());
}

TEST(Partition, MaxClustersStopsEarly) {
  DistanceMatrix d(6, 100.0);
  d.set(0, 1, 1.0);
  d.set(2, 3, 1.0);
  d.set(4, 5, 1.0);
  const auto universe = iota_universe(6);
  PartitionOptions options;
  options.max_clusters = 2;
  const Partition p = partition_into_clusters(d, universe, 1.0, options);
  EXPECT_EQ(p.clusters.size(), 2u);
  EXPECT_EQ(p.stragglers.size(), 2u);
}

TEST(Partition, SubsetUniverseOnly) {
  Rng rng(5);
  const DistanceMatrix d = testutil::random_tree_metric(20, rng);
  const std::vector<NodeId> universe = {1, 3, 5, 7, 9};
  const Partition p =
      partition_into_clusters(d, universe, d.max_distance() + 1.0);
  std::set<NodeId> allowed(universe.begin(), universe.end());
  for (const Cluster& c : p.clusters) {
    for (NodeId h : c) EXPECT_TRUE(allowed.count(h));
  }
}

TEST(Partition, Validation) {
  DistanceMatrix d(3, 1.0);
  const auto universe = iota_universe(3);
  PartitionOptions bad;
  bad.min_cluster_size = 1;
  EXPECT_THROW(partition_into_clusters(d, universe, 1.0, bad),
               ContractViolation);
  EXPECT_THROW(partition_into_clusters(d, universe, -1.0), ContractViolation);
}

}  // namespace
}  // namespace bcc
