#include "sim/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace bcc {
namespace {

TEST(FaultPlan, DecisionsAreDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    FaultPlan plan(seed);
    plan.set_default_faults({.drop_prob = 0.3, .duplicate_prob = 0.2,
                             .jitter_max = 0.05});
    std::vector<double> trace;
    for (int i = 0; i < 200; ++i) {
      const auto d = plan.decide(0, 1, 0.1 * i);
      trace.push_back(d.deliver ? 1.0 : 0.0);
      trace.push_back(d.duplicate ? 1.0 : 0.0);
      trace.push_back(d.extra_delay);
      trace.push_back(d.dup_extra_delay);
    }
    return trace;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(FaultPlan, DropProbabilityOneDropsEverything) {
  FaultPlan plan(1);
  plan.set_default_faults({.drop_prob = 1.0});
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(plan.decide(0, 1, 0.0).deliver);
  }
}

TEST(FaultPlan, PartitionCutsBothDirectionsDuringWindowOnly) {
  FaultPlan plan(1);
  plan.add_partition({0, 1}, {2, 3}, /*from=*/10.0, /*until=*/20.0);
  // Inside the window, both directions across the cut are severed.
  EXPECT_TRUE(plan.is_cut(0, 2, 15.0));
  EXPECT_TRUE(plan.is_cut(2, 0, 15.0));
  EXPECT_TRUE(plan.is_cut(1, 3, 10.0));  // from is inclusive
  // Same-side traffic flows.
  EXPECT_FALSE(plan.is_cut(0, 1, 15.0));
  EXPECT_FALSE(plan.is_cut(2, 3, 15.0));
  // Outside the window nothing is cut.
  EXPECT_FALSE(plan.is_cut(0, 2, 9.99));
  EXPECT_FALSE(plan.is_cut(0, 2, 20.0));  // until is exclusive
  // decide() honors the cut (no randomness consumed for a cut link).
  EXPECT_FALSE(plan.decide(0, 2, 15.0).deliver);
  EXPECT_TRUE(plan.decide(0, 2, 25.0).deliver);
}

TEST(FaultPlan, CrashWindows) {
  FaultPlan plan(1);
  plan.add_crash(4, /*down_at=*/5.0, /*up_at=*/8.0);
  plan.add_crash(4, /*down_at=*/12.0);  // never recovers
  EXPECT_FALSE(plan.is_down(4, 4.9));
  EXPECT_TRUE(plan.is_down(4, 5.0));
  EXPECT_TRUE(plan.is_down(4, 7.99));
  EXPECT_FALSE(plan.is_down(4, 8.0));  // up_at is exclusive
  EXPECT_TRUE(plan.is_down(4, 12.0));
  EXPECT_TRUE(plan.is_down(4, 1e9));
  EXPECT_FALSE(plan.is_down(5, 6.0));  // other nodes unaffected
  ASSERT_EQ(plan.crashes().size(), 2u);
  EXPECT_EQ(plan.crashes()[0].first, 4u);
  EXPECT_DOUBLE_EQ(plan.crashes()[1].second.up_at, FaultPlan::kNever);
}

TEST(FaultPlan, PerLinkOverrideBeatsDefaultAndIsUnordered) {
  FaultPlan plan(1);
  plan.set_default_faults({.drop_prob = 0.5});
  plan.set_link_faults(2, 7, {.drop_prob = 0.0, .jitter_max = 0.1});
  EXPECT_DOUBLE_EQ(plan.faults_on(0, 1).drop_prob, 0.5);
  // The override is keyed on the unordered pair.
  EXPECT_DOUBLE_EQ(plan.faults_on(2, 7).drop_prob, 0.0);
  EXPECT_DOUBLE_EQ(plan.faults_on(7, 2).jitter_max, 0.1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(plan.decide(7, 2, 0.0).deliver);
  }
}

TEST(FaultPlan, Validation) {
  FaultPlan plan(1);
  EXPECT_THROW(plan.set_default_faults({.drop_prob = 1.5}),
               ContractViolation);
  EXPECT_THROW(plan.set_default_faults({.duplicate_prob = -0.1}),
               ContractViolation);
  EXPECT_THROW(plan.set_link_faults(0, 1, {.jitter_max = -1.0}),
               ContractViolation);
  EXPECT_THROW(plan.add_partition({0}, {1}, 5.0, 4.0), ContractViolation);
  EXPECT_THROW(plan.add_crash(0, 5.0, 5.0), ContractViolation);
}

TEST(FaultyChannel, NullPlanIsAPerfectNetwork) {
  EventEngine engine;
  FaultyChannel channel(&engine, nullptr);
  int delivered = 0;
  for (int i = 0; i < 20; ++i) {
    channel.send(0, 1, 0.05, [&] { ++delivered; });
  }
  engine.run();
  EXPECT_EQ(delivered, 20);
  EXPECT_EQ(engine.metrics().dropped(), 0u);
  EXPECT_EQ(engine.metrics().duplicated(), 0u);
}

TEST(FaultyChannel, DropsAreCountedAndNotDelivered) {
  EventEngine engine;
  FaultPlan plan(7);
  plan.set_default_faults({.drop_prob = 1.0});
  FaultyChannel channel(&engine, &plan);
  int delivered = 0;
  for (int i = 0; i < 30; ++i) {
    channel.send(0, 1, 0.05, [&] { ++delivered; });
  }
  engine.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(engine.metrics().dropped(), 30u);
}

TEST(FaultyChannel, DuplicatesDeliverTwiceAtDistinctTimes) {
  EventEngine engine;
  FaultPlan plan(7);
  plan.set_default_faults({.duplicate_prob = 1.0, .jitter_max = 0.01});
  FaultyChannel channel(&engine, &plan);
  std::vector<double> arrivals;
  channel.send(0, 1, 0.05, [&] { arrivals.push_back(engine.now()); });
  engine.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NE(arrivals[0], arrivals[1]);
  EXPECT_GE(arrivals[0], 0.05);
  EXPECT_EQ(engine.metrics().duplicated(), 1u);
}

TEST(FaultyChannel, CrashedReceiverLosesInFlightMessages) {
  EventEngine engine;
  FaultPlan plan(7);
  plan.add_crash(1, /*down_at=*/0.02, /*up_at=*/1.0);
  FaultyChannel channel(&engine, &plan);
  int delivered = 0;
  // Sent while both are up, but node 1 is down when it arrives at t=0.05.
  channel.send(0, 1, 0.05, [&] { ++delivered; });
  engine.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(engine.metrics().dropped(), 1u);
  // After recovery, delivery works again.
  engine.schedule_at(1.5, [&] {
    channel.send(0, 1, 0.05, [&] { ++delivered; });
  });
  engine.run();
  EXPECT_EQ(delivered, 1);
}

TEST(FaultyChannel, CrashedSenderPutsNothingOnTheWire) {
  EventEngine engine;
  FaultPlan plan(7);
  plan.add_crash(0, /*down_at=*/0.0, /*up_at=*/1.0);
  FaultyChannel channel(&engine, &plan);
  int delivered = 0;
  channel.send(0, 1, 0.05, [&] { ++delivered; });
  engine.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(engine.metrics().dropped(), 1u);
}

TEST(FaultyChannel, JitterReordersMessages) {
  // With enough jitter relative to spacing, some pair of messages must
  // arrive out of send order (deterministically, given the seed).
  EventEngine engine;
  FaultPlan plan(3);
  plan.set_default_faults({.jitter_max = 0.5});
  FaultyChannel channel(&engine, &plan);
  std::vector<int> arrivals;
  for (int i = 0; i < 20; ++i) {
    engine.schedule_at(0.01 * i, [&, i] {
      channel.send(0, 1, 0.05, [&, i] { arrivals.push_back(i); });
    });
  }
  engine.run();
  ASSERT_EQ(arrivals.size(), 20u);
  EXPECT_FALSE(std::is_sorted(arrivals.begin(), arrivals.end()));
}

TEST(MessageMetrics, ResetClearsFaultCounters) {
  EventEngine engine;
  FaultPlan plan(7);
  plan.set_default_faults({.drop_prob = 1.0});
  FaultyChannel channel(&engine, &plan);
  channel.send(0, 1, 0.0, [] {});
  engine.run();
  EXPECT_EQ(engine.metrics().dropped(), 1u);
  engine.metrics().reset();
  EXPECT_EQ(engine.metrics().dropped(), 0u);
  EXPECT_EQ(engine.metrics().duplicated(), 0u);
  EXPECT_EQ(engine.metrics().retried(), 0u);
  EXPECT_EQ(engine.metrics().suspected(), 0u);
}

}  // namespace
}  // namespace bcc
