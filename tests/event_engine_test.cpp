#include "sim/event_engine.h"

#include <gtest/gtest.h>

namespace bcc {
namespace {

TEST(EventEngine, StartsIdleAtTimeZero) {
  EventEngine e;
  EXPECT_TRUE(e.idle());
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_EQ(e.run(), 0u);
}

TEST(EventEngine, ProcessesInTimeOrder) {
  EventEngine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(EventEngine, EqualTimesKeepSchedulingOrder) {
  EventEngine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5.0, [&, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventEngine, HandlersCanScheduleMoreEvents) {
  EventEngine e;
  int fired = 0;
  e.schedule_at(1.0, [&] {
    ++fired;
    e.schedule_after(1.0, [&] { ++fired; });
  });
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
}

TEST(EventEngine, RunUntilLeavesFutureEventsPending) {
  EventEngine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(5.0, [&] { ++fired; });
  EXPECT_EQ(e.run_until(2.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  EXPECT_EQ(e.pending(), 1u);
  e.run_until(10.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 10.0);
}

TEST(EventEngine, RunUntilBoundaryInclusive) {
  EventEngine e;
  int fired = 0;
  e.schedule_at(2.0, [&] { ++fired; });
  e.run_until(2.0);
  EXPECT_EQ(fired, 1);
}

TEST(EventEngine, MaxEventsCap) {
  EventEngine e;
  int fired = 0;
  auto rearm = [&](auto&& self) -> void {
    ++fired;
    e.schedule_after(1.0, [&, self] { self(self); });
  };
  e.schedule_after(1.0, [&] { rearm(rearm); });
  EXPECT_EQ(e.run(25), 25u);  // infinite timer chain, bounded run
  EXPECT_EQ(fired, 25);
  EXPECT_EQ(e.events_processed(), 25u);
}

TEST(EventEngine, RejectsPastAndBadArguments) {
  EventEngine e;
  e.schedule_at(5.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(1.0, [] {}), ContractViolation);  // in the past
  EXPECT_THROW(e.schedule_after(-1.0, [] {}), ContractViolation);
  EXPECT_THROW(e.schedule_after(1.0, nullptr), ContractViolation);
  EXPECT_THROW(e.run_until(e.now() - 1.0), ContractViolation);
}

TEST(EventEngine, CancelPreventsPendingHandler) {
  EventEngine e;
  int fired = 0;
  const TimerId doomed = e.schedule_at(1.0, [&] { fired += 10; });
  e.schedule_at(2.0, [&] { fired += 1; });
  EXPECT_EQ(e.pending(), 2u);
  EXPECT_TRUE(e.cancel(doomed));
  EXPECT_EQ(e.pending(), 1u);
  EXPECT_FALSE(e.cancel(doomed));  // double cancel is a no-op
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.events_processed(), 1u);
  EXPECT_EQ(e.events_cancelled(), 1u);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);  // time still advances past the survivor
}

TEST(EventEngine, CancelAfterFiringFails) {
  EventEngine e;
  const TimerId id = e.schedule_at(1.0, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
  EXPECT_FALSE(e.cancel(kNoTimer));
  EXPECT_FALSE(e.cancel(12345));  // never handed out
}

TEST(EventEngine, CancelStopsARearmingTimerChain) {
  // The AsyncOverlay crash path: a timer that re-arms itself forever can
  // now be stopped from outside.
  EventEngine e;
  int fired = 0;
  TimerId current = kNoTimer;
  auto rearm = [&](auto&& self) -> void {
    ++fired;
    current = e.schedule_after(1.0, [&, self] { self(self); });
  };
  current = e.schedule_after(1.0, [&] { rearm(rearm); });
  e.run(5);
  EXPECT_EQ(fired, 5);
  EXPECT_TRUE(e.cancel(current));
  EXPECT_EQ(e.run(), 0u);  // chain is dead
  EXPECT_TRUE(e.idle());
  EXPECT_EQ(fired, 5);
}

TEST(EventEngine, RunUntilSkipsCancelledAndKeepsCount) {
  EventEngine e;
  int fired = 0;
  std::vector<TimerId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(e.schedule_at(1.0 + i, [&] { ++fired; }));
  }
  e.cancel(ids[0]);
  e.cancel(ids[2]);
  e.cancel(ids[4]);
  EXPECT_EQ(e.run_until(10.0), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_TRUE(e.idle());
}

TEST(EventEngine, InterleavedTimersAreDeterministic) {
  auto run_once = [] {
    EventEngine e;
    std::vector<double> stamps;
    for (int i = 0; i < 5; ++i) {
      e.schedule_after(0.1 * (i + 1), [&e, &stamps] {
        stamps.push_back(e.now());
        e.schedule_after(0.25, [&e, &stamps] { stamps.push_back(e.now()); });
      });
    }
    e.run();
    return stamps;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace bcc
