// Randomized operation-sequence tests ("fuzz light"): long random schedules
// of structural operations checked against independent reference
// implementations on every step. These catch interaction bugs that
// scenario-based unit tests miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "core/find_cluster.h"
#include "test_util.h"
#include "tree/distance_label.h"
#include "tree/maintenance.h"

namespace bcc {
namespace {

/// Reference distances: Dijkstra-free all-pairs over an explicit edge list
/// (small graphs; O(V^3) Floyd-Warshall).
std::vector<std::vector<double>> reference_distances(
    std::size_t vertices,
    const std::vector<std::tuple<TreeVertex, TreeVertex, double>>& edges) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> d(vertices,
                                     std::vector<double>(vertices, inf));
  for (std::size_t v = 0; v < vertices; ++v) d[v][v] = 0.0;
  for (const auto& [a, b, w] : edges) {
    d[a][b] = std::min(d[a][b], w);
    d[b][a] = std::min(d[b][a], w);
  }
  for (std::size_t k = 0; k < vertices; ++k) {
    for (std::size_t i = 0; i < vertices; ++i) {
      for (std::size_t j = 0; j < vertices; ++j) {
        d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);
      }
    }
  }
  return d;
}

TEST(Fuzz, WeightedTreeOperationsMatchFloydReference) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    WeightedTree tree;
    std::vector<std::tuple<TreeVertex, TreeVertex, double>> edges;
    std::vector<TreeVertex> connected = {tree.add_vertex()};

    for (int step = 0; step < 60; ++step) {
      const double roll = rng.uniform();
      if (roll < 0.5 || edges.empty()) {
        // Attach a new vertex somewhere.
        const TreeVertex parent =
            connected[static_cast<std::size_t>(rng.below(connected.size()))];
        const TreeVertex v = tree.add_vertex();
        const double w = rng.uniform(0.1, 5.0);
        tree.connect(parent, v, w);
        edges.emplace_back(parent, v, w);
        connected.push_back(v);
      } else {
        // Split a random existing edge.
        const std::size_t ei =
            static_cast<std::size_t>(rng.below(edges.size()));
        auto [a, b, w] = edges[ei];
        // The edge may have been replaced by an earlier split; look it up.
        const auto current = tree.edge_weight(a, b);
        if (!current) continue;
        const double at = rng.uniform(0.0, *current);
        const TreeVertex mid = tree.split_edge(a, b, at);
        edges.erase(edges.begin() + static_cast<long>(ei));
        edges.emplace_back(a, mid, at);
        edges.emplace_back(mid, b, *current - at);
        connected.push_back(mid);
      }
      ASSERT_TRUE(tree.is_tree()) << "seed " << seed << " step " << step;
    }
    const auto ref = reference_distances(tree.vertex_count(), edges);
    // Spot-check a sample of pairs each run (full check is O(V^2 * V)).
    for (int probe = 0; probe < 60; ++probe) {
      const TreeVertex a =
          static_cast<TreeVertex>(rng.below(tree.vertex_count()));
      const TreeVertex b =
          static_cast<TreeVertex>(rng.below(tree.vertex_count()));
      if (a == b) continue;
      EXPECT_NEAR(tree.distance(a, b), ref[a][b], 1e-9)
          << "seed " << seed << " pair " << a << "," << b;
    }
  }
}

TEST(Fuzz, MaintainerChurnKeepsLabelsExact) {
  // After any join/leave interleaving, every alive host's distance label
  // still reproduces the prediction tree's distances exactly.
  for (std::uint64_t seed = 10; seed <= 12; ++seed) {
    Rng rng(seed);
    const std::size_t n = 18;
    const DistanceMatrix real = testutil::noisy_tree_metric(n, rng, 0.3);
    FrameworkMaintainer m(&real);
    std::set<NodeId> in;
    Rng churn(seed + 50);
    for (int step = 0; step < 80; ++step) {
      if (in.empty() || (in.size() < n && churn.chance(0.55))) {
        NodeId h;
        do {
          h = static_cast<NodeId>(churn.below(n));
        } while (in.count(h));
        m.join(h);
        in.insert(h);
      } else {
        auto it = in.begin();
        std::advance(it, static_cast<long>(churn.below(in.size())));
        m.leave(*it);
        in.erase(it);
      }
      if (step % 20 != 19) continue;  // full check periodically
      std::vector<DistanceLabel> labels;
      std::vector<NodeId> alive = m.alive();
      for (NodeId h : alive) {
        labels.push_back(DistanceLabel::of(m.prediction(), h));
      }
      for (std::size_t i = 0; i < alive.size(); ++i) {
        for (std::size_t j = i + 1; j < alive.size(); ++j) {
          EXPECT_NEAR(label_distance(labels[i], labels[j]),
                      m.prediction().distance(alive[i], alive[j]), 1e-7)
              << "seed " << seed << " step " << step;
        }
      }
    }
  }
}

TEST(Fuzz, RestoreReplaysArbitraryChurnedTrees) {
  // Serialization round-trips even for frameworks shaped by churn.
  Rng rng(21);
  const std::size_t n = 16;
  const DistanceMatrix real = testutil::noisy_tree_metric(n, rng, 0.4);
  FrameworkMaintainer m(&real);
  Rng churn(22);
  std::set<NodeId> in;
  for (int step = 0; step < 60; ++step) {
    if (in.empty() || (in.size() < n && churn.chance(0.6))) {
      NodeId h;
      do {
        h = static_cast<NodeId>(churn.below(n));
      } while (in.count(h));
      m.join(h);
      in.insert(h);
    } else {
      auto it = in.begin();
      std::advance(it, static_cast<long>(churn.below(in.size())));
      m.leave(*it);
      in.erase(it);
    }
  }
  ASSERT_GE(m.size(), 2u);
  // Replay the survivors' placements into a fresh tree.
  PredictionTree replay;
  const auto& hosts = m.prediction().hosts();
  replay.add_first(hosts[0]);
  for (std::size_t i = 1; i < hosts.size(); ++i) {
    const auto& p = m.prediction().placement_of(hosts[i]);
    replay.restore(hosts[i], p.anchor, p.anchor_offset, p.leaf_weight);
  }
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = i + 1; j < hosts.size(); ++j) {
      EXPECT_NEAR(replay.distance(hosts[i], hosts[j]),
                  m.prediction().distance(hosts[i], hosts[j]), 1e-9);
    }
  }
}

TEST(Fuzz, FindClusterNeverLiesUnderRandomMetrics) {
  // Arbitrary symmetric positive matrices (not even triangle-satisfying):
  // find_cluster either returns a verified cluster or nullopt, never junk.
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    Rng trial_rng = rng.split(trial);
    const std::size_t n = 4 + trial_rng.below(12);
    DistanceMatrix d(n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        d.set(u, v, trial_rng.uniform(0.1, 100.0));
      }
    }
    const auto universe = testutil::iota_universe(n);
    for (std::size_t k = 2; k <= std::min<std::size_t>(n, 5); ++k) {
      const double l = trial_rng.uniform(0.1, 120.0);
      const auto c = find_cluster(d, universe, k, l);
      if (c) {
        EXPECT_TRUE(cluster_satisfies(d, *c, k, l)) << "trial " << trial;
      }
    }
  }
}

}  // namespace
}  // namespace bcc
