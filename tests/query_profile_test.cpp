// Per-query explain profiles (QueryRequest::with_profile → QueryResult::
// profile) and the tail-exemplar → trace join: the observatory's contract
// that (a) the stage breakdown telescopes to the measured end-to-end
// latency (>= 95% accounted, no hand-waved "other" bucket), (b) every
// serving path labels itself, and (c) a p99 histogram exemplar's trace id
// retrieves that query's causal span chain.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/system.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/query_service.h"
#include "test_util.h"
#include "tree/embedder.h"

namespace bcc {
namespace {

/// A converged decentralized system over a random perfect tree metric
/// (same construction as query_service_test).
DecentralizedClusterSystem make_system(std::size_t n, std::size_t n_cut,
                                       std::uint64_t seed,
                                       double c = kDefaultTransformC) {
  Rng rng(seed);
  const DistanceMatrix real = testutil::random_tree_metric(n, rng);
  Rng order_rng(seed + 77);
  Framework fw = build_framework(real, order_rng);
  DistanceMatrix predicted = fw.predicted_distances();
  const double dmax = predicted.max_distance();
  BandwidthClasses classes(
      {c / dmax, c / (dmax * 0.6), c / (dmax * 0.3), c / (dmax * 0.1)}, c);
  SystemOptions options;
  options.n_cut = n_cut;
  DecentralizedClusterSystem sys(std::move(fw.anchors), std::move(predicted),
                                 std::move(classes), options);
  sys.run_to_convergence();
  EXPECT_TRUE(sys.converged());
  return sys;
}

// ------------------------------------------------------------ opt-in shape

TEST(QueryProfile, AbsentUnlessRequested) {
  auto sys = make_system(20, 100, 1);
  QueryService service(sys);
  const auto r = service.submit(QueryRequest::at_class(3, 4, 0));
  EXPECT_EQ(r.status, QueryStatus::kFound);
  EXPECT_FALSE(r.profile.has_value());
}

TEST(QueryProfile, PresentAndLabeledOnComputePath) {
  auto sys = make_system(20, 100, 2);
  QueryServiceOptions options;
  options.cache_enabled = false;  // forces the full Algorithm 4 walk
  QueryService service(sys, options);
  const auto r =
      service.submit(QueryRequest::at_class(3, 4, 0).with_profile());
  ASSERT_EQ(r.status, QueryStatus::kFound);
  ASSERT_TRUE(r.profile.has_value());
  const QueryProfile& p = *r.profile;
  EXPECT_EQ(p.path, QueryPath::kCompute);
  EXPECT_GT(p.compute_ns, 0u);
  EXPECT_EQ(p.queue_ns, 0u);  // direct submit never queues
  EXPECT_LT(p.shard, service.options().shards);
  EXPECT_EQ(p.snapshot_version, service.snapshot_version());
}

TEST(QueryProfile, CacheHitPathLabeled) {
  auto sys = make_system(20, 100, 3);
  QueryService service(sys);
  const QueryRequest request = QueryRequest::at_class(3, 4, 0);
  ASSERT_EQ(service.submit(request).status, QueryStatus::kFound);  // warm
  QueryRequest profiled = request;
  profiled.with_profile();
  const auto r = service.submit(profiled);
  ASSERT_EQ(r.status, QueryStatus::kFound);
  ASSERT_TRUE(r.profile.has_value());
  EXPECT_EQ(r.profile->path, QueryPath::kCacheHit);
  // A memo hit never pays the routing walk.
  EXPECT_EQ(r.profile->compute_ns, 0u);
  EXPECT_GT(r.profile->cache_ns, 0u);
}

TEST(QueryProfile, BypassPathForArgumentErrors) {
  auto sys = make_system(15, 100, 4);
  QueryService service(sys);
  const auto r =
      service.submit(QueryRequest::at_class(0, 1, 0).with_profile());
  EXPECT_EQ(r.status, QueryStatus::kInvalidK);
  ASSERT_TRUE(r.profile.has_value());
  EXPECT_EQ(r.profile->path, QueryPath::kBypass);
  EXPECT_EQ(r.profile->compute_ns, 0u);
  EXPECT_EQ(r.profile->admission_ns, 0u);
}

TEST(QueryProfile, ShedPathsDistinguishStaleFallbackFromEmpty) {
  auto sys = make_system(20, 100, 5);
  QueryServiceOptions options;
  options.shards = 1;  // one token bucket, drained exactly by the warm pass
  options.admission.rate_qps = 1e-9;
  options.admission.burst = 1.0;
  QueryService service(sys, options);
  const QueryRequest request = QueryRequest::at_class(3, 4, 0);
  // Warm pass consumes the only token AND memoizes the (converged) answer
  // into the stale cache.
  ASSERT_EQ(service.submit(request).status, QueryStatus::kFound);
  QueryRequest profiled = request;
  profiled.with_profile();
  const auto stale = service.submit(profiled);
  EXPECT_EQ(stale.status, QueryStatus::kShed);
  ASSERT_TRUE(stale.profile.has_value());
  EXPECT_EQ(stale.profile->path, QueryPath::kStaleFallback);
  EXPECT_FALSE(stale.cluster.empty());

  // A key never memoized sheds with no payload at all.
  QueryRequest cold = QueryRequest::at_class(7, 5, 1).with_profile();
  const auto empty = service.submit(cold);
  EXPECT_EQ(empty.status, QueryStatus::kShed);
  ASSERT_TRUE(empty.profile.has_value());
  EXPECT_EQ(empty.profile->path, QueryPath::kShedEmpty);
  EXPECT_TRUE(empty.cluster.empty());
}

TEST(QueryProfile, BatchCarriesQueueDwell) {
  auto sys = make_system(20, 100, 6);
  QueryServiceOptions options;
  options.threads = 1;  // chunks serialize, so later chunks measurably wait
  options.cache_enabled = false;
  QueryService service(sys, options);
  std::vector<QueryRequest> batch;
  for (int i = 0; i < 128; ++i) {
    batch.push_back(
        QueryRequest::at_class(static_cast<NodeId>(i % 20), 4, 0)
            .with_profile());
  }
  const auto results = service.submit_batch(batch);
  ASSERT_EQ(results.size(), batch.size());
  bool any_queued = false;
  for (const QueryResult& r : results) {
    ASSERT_TRUE(r.profile.has_value());
    // Batch profiles never claim a per-query epoch pin: one shared pin
    // serves the whole batch.
    EXPECT_EQ(r.profile->epoch_pin_ns, 0u);
    if (r.profile->queue_ns > 0) any_queued = true;
  }
  EXPECT_TRUE(any_queued);
}

// ------------------------------------------------- self-consistency (>=95%)

TEST(QueryProfile, StagesCoverAtLeast95PercentOfTotal) {
  auto sys = make_system(30, 100, 7);
  QueryServiceOptions options;
  options.cache_enabled = false;  // compute-heavy: real work to attribute
  QueryService service(sys, options);
  std::uint64_t stages_sum = 0;
  std::uint64_t total_sum = 0;
  for (int i = 0; i < 200; ++i) {
    const auto r = service.submit(
        QueryRequest::at_class(static_cast<NodeId>(i % 30), 3 + i % 5, i % 4)
            .with_profile());
    ASSERT_TRUE(r.profile.has_value());
    const QueryProfile& p = *r.profile;
    EXPECT_LE(p.stages_ns(), p.total_ns);  // stages never overrun the total
    stages_sum += p.stages_ns();
    total_sum += p.total_ns;
  }
  ASSERT_GT(total_sum, 0u);
  // Each stage boundary is one clock read shared by both neighbors, so the
  // breakdown telescopes: everything but the final stamp's bookkeeping is
  // accounted. 95% is the contract; in practice this sits at ~100%.
  EXPECT_GE(static_cast<double>(stages_sum),
            0.95 * static_cast<double>(total_sum));
}

// ----------------------------------------- exemplar -> causal span chain

TEST(QueryProfile, TailExemplarTraceIdRetrievesCausalSpanChain) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.set_capacity(8192);
  tracer.enable(obs::SpanCategory::kServe, true);

  auto sys = make_system(30, 100, 8);
  QueryServiceOptions options;
  options.cache_enabled = false;
  QueryService service(sys, options);
  for (int i = 0; i < 200; ++i) {
    service.submit(
        QueryRequest::at_class(static_cast<NodeId>(i % 30), 3 + i % 5, i % 4));
  }
  tracer.enable(obs::SpanCategory::kServe, false);

  // The latency histogram's p99-bucket exemplar names a concrete traced
  // query...
  const obs::RegistrySnapshot snap = obs::Registry::global().snapshot();
  const obs::Histogram::Snapshot* h =
      snap.histogram("bcc.serve.query_micros");
  ASSERT_NE(h, nullptr);
  const obs::Exemplar* exemplar = h->exemplar_near(99.0);
  ASSERT_NE(exemplar, nullptr);
  ASSERT_NE(exemplar->trace_id, 0u);

  // ...and filtering the span ring by that id yields its causal chain:
  // non-empty, homogeneous in trace id, rooted at a serve_query span.
  const std::vector<obs::SpanRecord> spans = tracer.snapshot();
  const std::vector<obs::SpanRecord> chain =
      obs::filter_trace(spans, exemplar->trace_id);
  ASSERT_FALSE(chain.empty());
  bool has_serve_root = false;
  for (const obs::SpanRecord& s : chain) {
    EXPECT_EQ(s.trace_id, exemplar->trace_id);
    if (std::string_view(s.name) == "serve_query") has_serve_root = true;
  }
  EXPECT_TRUE(has_serve_root);
}

}  // namespace
}  // namespace bcc
