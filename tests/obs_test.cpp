// Tests for the observability substrate (src/obs): metric naming, the
// striped counter and log-bucketed histogram (including the quantile
// contract against a reference sort), registry concurrency, the span
// tracer's ring/nesting/sim-clock behavior, the exporters (golden strings +
// a Prometheus mini-parser), and BenchReport file output.
//
// Built as its own binary (bcc_obs_tests, `ctest -L obs`) so the sanitizer
// script can run exactly this suite under TSan/ASan.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/assert.h"
#include "common/table.h"
#include "obs/bench_report.h"
#include "obs/convergence.h"
#include "obs/export.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "sim/fault.h"

namespace bcc::obs {
namespace {

// ----------------------------------------------------------------- naming

TEST(ObsNaming, ValidatesTheConvention) {
  EXPECT_TRUE(valid_metric_name("bcc.sim.messages"));
  EXPECT_TRUE(valid_metric_name("bcc.serve.query_micros"));
  EXPECT_TRUE(valid_metric_name("bcc.bench.a.b.c_0"));
  EXPECT_FALSE(valid_metric_name(""));
  EXPECT_FALSE(valid_metric_name("bcc"));
  EXPECT_FALSE(valid_metric_name("bcc.sim"));          // needs >= 3 segments
  EXPECT_FALSE(valid_metric_name("sim.bcc.messages"));  // must start with bcc
  EXPECT_FALSE(valid_metric_name("bcc.Sim.messages"));  // lowercase only
  EXPECT_FALSE(valid_metric_name("bcc.sim.messages "));
  EXPECT_FALSE(valid_metric_name("bcc..messages"));
  EXPECT_FALSE(valid_metric_name("bcc.sim.mes-sages"));
}

TEST(ObsNaming, RegistryRejectsBadNamesAndKindConflicts) {
  Registry registry;
  EXPECT_THROW(registry.counter("not.a.bcc.name"), ContractViolation);
  EXPECT_THROW(registry.gauge("bcc.two_segments"), ContractViolation);
  registry.counter("bcc.test.value");
  EXPECT_THROW(registry.gauge("bcc.test.value"), ContractViolation);
  EXPECT_THROW(registry.histogram("bcc.test.value"), ContractViolation);
  // Same name, same kind: the same instrument back.
  EXPECT_EQ(&registry.counter("bcc.test.value"),
            &registry.counter("bcc.test.value"));
}

// ---------------------------------------------------------------- counter

TEST(ObsCounter, ConcurrentAddsSumExactly) {
  Registry registry;
  Counter& counter = registry.counter("bcc.test.adds");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 100000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) counter.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kAddsPerThread);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(ObsCounter, CopyCarriesTheValue) {
  Counter a;
  a.add(41);
  a.add(1);
  Counter b(a);
  EXPECT_EQ(b.value(), 42u);
  b = b;  // self-assign collapses stripes, value unchanged
  EXPECT_EQ(b.value(), 42u);
}

// -------------------------------------------------------------- histogram

TEST(ObsHistogram, BucketBoundariesArePowersOfTwo) {
  Histogram h;
  // v = 0 -> bucket 0; v in [2^(i-1), 2^i - 1] -> bucket i.
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(4);
  h.record(7);
  h.record(8);
  const auto s = h.snapshot();
  EXPECT_EQ(s.buckets[0], 1u);  // {0}
  EXPECT_EQ(s.buckets[1], 1u);  // {1}
  EXPECT_EQ(s.buckets[2], 2u);  // {2,3}
  EXPECT_EQ(s.buckets[3], 2u);  // {4..7}
  EXPECT_EQ(s.buckets[4], 1u);  // {8..15}
  EXPECT_EQ(s.count, 7u);
  EXPECT_EQ(s.sum, 0u + 1 + 2 + 3 + 4 + 7 + 8);
  EXPECT_EQ(s.max, 8u);
  EXPECT_EQ(Histogram::Snapshot::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::Snapshot::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::Snapshot::bucket_upper(4), 15u);
}

TEST(ObsHistogram, QuantileWithinFactorTwoOfReferenceSort) {
  // The documented contract: exact <= quantile(p) <= 2 * exact (and both
  // sides capped by the observed max). Checked against a reference sort
  // over a deterministic-but-irregular sample set.
  Histogram h;
  std::vector<std::uint64_t> samples;
  std::uint64_t x = 12345;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t v = (x >> 33) % 100000;
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  const auto s = h.snapshot();
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(samples.size())));
    const std::uint64_t exact = samples[std::min(rank, samples.size()) - 1];
    const std::uint64_t est = s.quantile(p);
    EXPECT_GE(est, exact) << "p=" << p;
    EXPECT_LE(est, std::max<std::uint64_t>(2 * exact, 1)) << "p=" << p;
    EXPECT_LE(est, s.max) << "p=" << p;
  }
  EXPECT_EQ(s.quantile(100.0), s.max);
}

TEST(ObsHistogram, EmptyAndReset) {
  Histogram h;
  EXPECT_EQ(h.snapshot().quantile(50.0), 0u);
  EXPECT_EQ(h.snapshot().mean(), 0.0);
  h.record(100);
  h.reset();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.max, 0u);
}

TEST(ObsHistogram, ConcurrentRecordsCountExactly) {
  Histogram h;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(t * 1000 + (i & 255));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.snapshot().count, kThreads * kPerThread);
}

// The fleet collector fuses per-process histograms with Snapshot::
// merge_from; these property tests pin the documented exactness claim:
// because buckets are value-range-aligned, merging snapshots of split
// streams is indistinguishable from recording the concatenated stream.

std::vector<std::uint64_t> irregular_samples(std::uint64_t seed, int n) {
  std::vector<std::uint64_t> samples;
  std::uint64_t x = seed;
  for (int i = 0; i < n; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    // Mix magnitudes: mostly small, a heavy tail, some zeros.
    const std::uint64_t v = (x >> 33) % ((i % 7 == 0) ? 3u : 1000000u);
    samples.push_back(v);
  }
  return samples;
}

Histogram::Snapshot snapshot_of(const std::vector<std::uint64_t>& samples) {
  Histogram h;
  for (std::uint64_t v : samples) h.record(v);
  return h.snapshot();
}

TEST(ObsHistogram, MergeEqualsRecordingTheConcatenatedStream) {
  const auto all = irregular_samples(99, 4000);
  // Any split point: merge(prefix, suffix) == record(all).
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, std::size_t{1300},
                          std::size_t{3999}, std::size_t{4000}}) {
    Histogram::Snapshot merged = snapshot_of(
        {all.begin(), all.begin() + static_cast<std::ptrdiff_t>(cut)});
    merged.merge_from(snapshot_of(
        {all.begin() + static_cast<std::ptrdiff_t>(cut), all.end()}));
    const Histogram::Snapshot whole = snapshot_of(all);
    EXPECT_EQ(merged.buckets, whole.buckets) << "cut=" << cut;
    EXPECT_EQ(merged.count, whole.count);
    EXPECT_EQ(merged.sum, whole.sum);
    EXPECT_EQ(merged.max, whole.max);
  }
}

TEST(ObsHistogram, MergeIsAssociativeAndCommutative) {
  const Histogram::Snapshot a = snapshot_of(irregular_samples(1, 700));
  const Histogram::Snapshot b = snapshot_of(irregular_samples(2, 1300));
  const Histogram::Snapshot c = snapshot_of(irregular_samples(3, 50));

  Histogram::Snapshot ab_c = a;   // (a + b) + c
  ab_c.merge_from(b);
  ab_c.merge_from(c);
  Histogram::Snapshot bc = b;     // a + (b + c)
  bc.merge_from(c);
  Histogram::Snapshot a_bc = a;
  a_bc.merge_from(bc);
  Histogram::Snapshot cba = c;    // c + b + a
  cba.merge_from(b);
  cba.merge_from(a);

  EXPECT_EQ(ab_c.buckets, a_bc.buckets);
  EXPECT_EQ(ab_c.buckets, cba.buckets);
  EXPECT_EQ(ab_c.count, cba.count);
  EXPECT_EQ(ab_c.sum, cba.sum);
  EXPECT_EQ(ab_c.max, cba.max);
}

TEST(ObsHistogram, MergedQuantilesKeepTheFactorTwoContract) {
  // Merge three "process" shards, then check every quantile of the merged
  // snapshot against a reference sort of the union — the same
  // exact <= est <= min(2 * exact, max) contract the single-histogram test
  // pins, surviving the merge.
  std::vector<std::uint64_t> all;
  Histogram::Snapshot merged;
  for (int shard : {7, 8, 9}) {
    const auto samples = irregular_samples(static_cast<std::uint64_t>(shard),
                                           2000 + 500 * shard);
    all.insert(all.end(), samples.begin(), samples.end());
    merged.merge_from(snapshot_of(samples));
  }
  std::sort(all.begin(), all.end());
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(all.size())));
    const std::uint64_t exact = all[std::min(rank, all.size()) - 1];
    const std::uint64_t est = merged.quantile(p);
    EXPECT_GE(est, exact) << "p=" << p;
    EXPECT_LE(est, std::max<std::uint64_t>(2 * exact, 1)) << "p=" << p;
    EXPECT_LE(est, merged.max) << "p=" << p;
  }
  EXPECT_EQ(merged.quantile(100.0), merged.max);
}

// --------------------------------------------------------------- registry

TEST(ObsRegistry, ConcurrentGetOrCreateAndSnapshot) {
  Registry registry;
  constexpr std::size_t kThreads = 8;
  constexpr int kRounds = 2000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      const std::string mine =
          "bcc.test.private_" + std::to_string(t);
      for (int i = 0; i < kRounds; ++i) {
        registry.counter("bcc.test.shared").add(1);
        registry.counter(mine).add(1);
        registry.gauge("bcc.test.gauge").set(static_cast<double>(i));
        registry.histogram("bcc.test.hist").record(static_cast<std::uint64_t>(i));
        if (i % 64 == 0) (void)registry.snapshot();
      }
    });
  }
  for (auto& t : threads) t.join();
  const RegistrySnapshot s = registry.snapshot();
  EXPECT_EQ(s.counter_value("bcc.test.shared"), kThreads * kRounds);
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(s.counter_value("bcc.test.private_" + std::to_string(t)),
              static_cast<std::uint64_t>(kRounds));
  }
  ASSERT_NE(s.histogram("bcc.test.hist"), nullptr);
  EXPECT_EQ(s.histogram("bcc.test.hist")->count, kThreads * kRounds);
  EXPECT_EQ(s.histogram("bcc.test.missing"), nullptr);
}

TEST(ObsRegistry, ResetKeepsRegistrationsAndReferences) {
  Registry registry;
  Counter& c = registry.counter("bcc.test.keep");
  c.add(7);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);  // old reference still valid and live
  EXPECT_EQ(registry.snapshot().counter_value("bcc.test.keep"), 1u);
}

// ----------------------------------------------------------------- tracer

TEST(ObsTracer, DisabledCategoryIsInert) {
  Tracer tracer;  // all categories disabled
  {
    Span span(tracer, SpanCategory::kBench, "never");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(tracer.started(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(ObsTracer, RingOverflowKeepsNewestAndCountsDropped) {
  Tracer tracer;
  tracer.set_capacity(8);
  tracer.enable(SpanCategory::kBench);
  for (int i = 0; i < 20; ++i) {
    Span span(tracer, SpanCategory::kBench, "s");
  }
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 8u);
  EXPECT_EQ(tracer.started(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);
  // Oldest-first snapshot of the newest 8 spans: ids 13..20.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].id, 13 + i);
  }
  tracer.clear();
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(ObsTracer, RingOverwriteBumpsTheGlobalSpansDroppedCounter) {
  // Silent overwrites become observable fleet-wide: every ring overwrite
  // counts into bcc.trace.spans_dropped in the global registry, which the
  // telemetry collector merges and `bcc metrics` prints. Delta-based so it
  // coexists with other tests that overflow rings.
  const std::uint64_t before =
      Registry::global().snapshot().counter_value("bcc.trace.spans_dropped");
  Tracer tracer;
  tracer.set_capacity(4);
  tracer.enable(SpanCategory::kBench);
  for (int i = 0; i < 10; ++i) {
    Span span(tracer, SpanCategory::kBench, "s");
  }
  const std::uint64_t after =
      Registry::global().snapshot().counter_value("bcc.trace.spans_dropped");
  EXPECT_EQ(after - before, 6u);
  EXPECT_EQ(tracer.dropped(), 6u);
}

TEST(ObsTracer, DrainReturnsOldestFirstAndEmptiesTheRing) {
  Tracer tracer;
  tracer.enable(SpanCategory::kBench);
  { Span a(tracer, SpanCategory::kBench, "a"); }
  { Span b(tracer, SpanCategory::kBench, "b"); }
  const auto first = tracer.drain();
  ASSERT_EQ(first.size(), 2u);
  EXPECT_STREQ(first[0].name, "a");
  EXPECT_STREQ(first[1].name, "b");
  // The ring is now empty: a second drain only sees what came after — the
  // property that lets successive telemetry scrapes stream the ring
  // without re-sending (and double-merging) spans.
  { Span c(tracer, SpanCategory::kBench, "c"); }
  const auto second = tracer.drain();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_STREQ(second[0].name, "c");
  EXPECT_TRUE(tracer.drain().empty());
}

TEST(ObsTracer, SinkSeesEveryCompletedSpanIncludingOverwrittenOnes) {
  Tracer tracer;
  tracer.set_capacity(2);  // the ring forgets, the sink must not
  tracer.enable(SpanCategory::kBench);
  std::vector<std::string> seen;
  tracer.set_sink([&seen](const SpanRecord& r) { seen.push_back(r.name); });
  for (int i = 0; i < 5; ++i) {
    Span span(tracer, SpanCategory::kBench, "s");
  }
  tracer.clear_sink();
  { Span span(tracer, SpanCategory::kBench, "after"); }
  EXPECT_EQ(seen.size(), 5u) << "sink fires per completion, ring size "
                                "notwithstanding (flight-recorder contract)";
  EXPECT_EQ(tracer.snapshot().size(), 2u) << "ring still capacity-bounded";
}

TEST(ObsTracer, SeededIdRangesAreDisjointAcrossProcessSeeds) {
  // Fleet processes seed (id + 1) << 40, so span ids never collide and the
  // collector's id-keyed re-parenting is exact across the whole fleet.
  Tracer first, second;
  first.seed_ids(std::uint64_t{1} << 40);
  second.seed_ids(std::uint64_t{2} << 40);
  first.enable(SpanCategory::kGossip);
  second.enable(SpanCategory::kGossip);
  for (int i = 0; i < 3; ++i) {
    Span a(first, SpanCategory::kGossip, "a");
    Span b(second, SpanCategory::kGossip, "b");
  }
  for (const SpanRecord& r : first.snapshot()) {
    EXPECT_GE(r.id, std::uint64_t{1} << 40);
    EXPECT_LT(r.id, std::uint64_t{2} << 40);
  }
  for (const SpanRecord& r : second.snapshot()) {
    EXPECT_GE(r.id, std::uint64_t{2} << 40);
  }
  // seed_ids(0) still yields valid (nonzero) ids — 0 means "no parent".
  Tracer zero;
  zero.seed_ids(0);
  zero.enable(SpanCategory::kBench);
  { Span s(zero, SpanCategory::kBench, "z"); }
  EXPECT_GE(zero.snapshot().at(0).id, 1u);
}

TEST(ObsTracer, NestedSpansRecordParentIds) {
  Tracer tracer;
  tracer.enable(SpanCategory::kSim);
  tracer.enable(SpanCategory::kServe);
  std::uint64_t outer_id = 0;
  {
    Span outer(tracer, SpanCategory::kSim, "outer");
    outer_id = outer.id();
    Span inner(tracer, SpanCategory::kServe, "inner");
    Span innermost(tracer, SpanCategory::kSim, "innermost");
  }
  {
    Span sibling(tracer, SpanCategory::kSim, "sibling");
  }
  const auto spans = tracer.snapshot();  // completion order
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_STREQ(spans[0].name, "innermost");
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_STREQ(spans[2].name, "outer");
  EXPECT_STREQ(spans[3].name, "sibling");
  EXPECT_EQ(spans[2].parent, 0u) << "outer is a root span";
  EXPECT_EQ(spans[1].parent, outer_id);
  EXPECT_EQ(spans[0].parent, spans[1].id);
  EXPECT_EQ(spans[3].parent, 0u) << "nesting must unwind after a span ends";
  EXPECT_LE(spans[2].wall_begin_us, spans[2].wall_end_us);
}

TEST(ObsTracer, SimClockStampsSpanEdges) {
  Tracer tracer;
  tracer.enable(SpanCategory::kGossip);
  double now = 3.5;
  tracer.set_sim_clock([&now] { return now; });
  {
    Span span(tracer, SpanCategory::kGossip, "timed");
    now = 4.25;
  }
  tracer.clear_sim_clock();
  {
    Span span(tracer, SpanCategory::kGossip, "untimed");
  }
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_DOUBLE_EQ(spans[0].sim_begin, 3.5);
  EXPECT_DOUBLE_EQ(spans[0].sim_end, 4.25);
  EXPECT_DOUBLE_EQ(spans[1].sim_begin, -1.0);
  EXPECT_DOUBLE_EQ(spans[1].sim_end, -1.0);
}

TEST(ObsTracer, ConcurrentSpansAllRecorded) {
  Tracer tracer;
  tracer.set_capacity(100000);
  tracer.enable_all();
  constexpr std::size_t kThreads = 4;
  constexpr int kSpansPerThread = 5000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span outer(tracer, SpanCategory::kBench, "outer");
        Span inner(tracer, SpanCategory::kBench, "inner");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.started(), 2 * kThreads * kSpansPerThread);
  EXPECT_EQ(tracer.snapshot().size(), 2 * kThreads * kSpansPerThread);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// -------------------------------------------------------------- exporters

RegistrySnapshot golden_registry() {
  Registry registry;
  registry.counter("bcc.test.count").add(3);
  registry.gauge("bcc.test.ratio").set(0.5);
  Histogram& h = registry.histogram("bcc.test.lat");
  h.record(0);
  h.record(3);
  h.record(3);
  h.record(9);
  return registry.snapshot();
}

TEST(ObsExport, PrometheusGolden) {
  const std::string expected =
      "# TYPE bcc_test_count counter\n"
      "bcc_test_count 3\n"
      "# TYPE bcc_test_ratio gauge\n"
      "bcc_test_ratio 0.5\n"
      "# TYPE bcc_test_lat histogram\n"
      "bcc_test_lat_bucket{le=\"0\"} 1\n"
      "bcc_test_lat_bucket{le=\"1\"} 1\n"
      "bcc_test_lat_bucket{le=\"3\"} 3\n"
      "bcc_test_lat_bucket{le=\"7\"} 3\n"
      "bcc_test_lat_bucket{le=\"15\"} 4\n"
      "bcc_test_lat_bucket{le=\"+Inf\"} 4\n"
      "bcc_test_lat_sum 15\n"
      "bcc_test_lat_count 4\n"
      "bcc_test_lat_p50 3\n"
      "bcc_test_lat_p90 9\n"  // bucket upper is 15, capped by the max (9)
      "bcc_test_lat_p99 9\n";
  EXPECT_EQ(prometheus_text(golden_registry()), expected);
}

TEST(ObsExport, PrometheusParsesCleanly) {
  // Mini-parser for the exposition format: every non-comment line must be
  // `name{labels} value` or `name value`, names [a-zA-Z_:][a-zA-Z0-9_:]*,
  // values parseable as doubles, and `# TYPE` lines must precede samples.
  const std::string text = prometheus_text(golden_registry());
  std::size_t line_no = 0, samples = 0;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    ASSERT_NE(end, std::string::npos) << "file must end with a newline";
    const std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    ++line_no;
    ASSERT_FALSE(line.empty()) << "no blank lines, line " << line_no;
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
      name = name.substr(0, brace);
    }
    ASSERT_FALSE(name.empty()) << line;
    for (char c : name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':')
          << line;
    }
    char* parse_end = nullptr;
    const double v = std::strtod(value.c_str(), &parse_end);
    EXPECT_TRUE(parse_end && *parse_end == '\0') << line;
    EXPECT_TRUE(std::isfinite(v)) << line;
    ++samples;
  }
  EXPECT_EQ(samples, 13u);  // 1 counter + 1 gauge + 11 histogram series
}

TEST(ObsExport, JsonObjectGolden) {
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"bcc.test.count\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"bcc.test.ratio\": 0.5\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"bcc.test.lat\": {\"count\":4,\"sum\":15,\"max\":9,\"mean\":3.75,"
      "\"p50\":3,\"p90\":9,\"p99\":9,\"buckets\":[{\"le\":0,\"count\":1},"
      "{\"le\":3,\"count\":2},{\"le\":15,\"count\":1}]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(json_object(golden_registry()), expected);
}

TEST(ObsExport, JsonObjectOfEmptyRegistryIsValid) {
  Registry registry;
  EXPECT_EQ(json_object(registry.snapshot()),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {}\n}\n");
}

TEST(ObsExport, JsonLinesOneObjectPerInstrument) {
  const std::string text = json_lines(golden_registry());
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_NE(text.find("{\"type\":\"counter\",\"name\":\"bcc.test.count\","
                      "\"value\":3}\n"),
            std::string::npos);
  EXPECT_NE(text.find("{\"type\":\"gauge\",\"name\":\"bcc.test.ratio\","
                      "\"value\":0.5,\"agg\":\"max\"}\n"),
            std::string::npos);
  EXPECT_NE(text.find("{\"type\":\"histogram\",\"name\":\"bcc.test.lat\""),
            std::string::npos);
}

TEST(ObsExport, TraceJsonLinesGolden) {
  SpanRecord rec;
  rec.id = 7;
  rec.parent = 3;
  rec.trace_id = 3;
  rec.category = SpanCategory::kGossip;
  rec.name = "retry_exchange";
  rec.wall_begin_us = 100;
  rec.wall_end_us = 250;
  rec.sim_begin = 1.5;
  rec.sim_end = 2.0;
  rec.hop = 1;
  rec.node = 4;
  rec.remote_parent = true;
  EXPECT_EQ(trace_json_lines({rec}),
            "{\"id\":7,\"parent\":3,\"trace\":3,\"category\":\"gossip\","
            "\"name\":\"retry_exchange\",\"wall_begin_us\":100,"
            "\"wall_end_us\":250,\"sim_begin\":1.5,\"sim_end\":2,"
            "\"hop\":1,\"remote\":true,\"node\":4}\n");
  // A plain local span (no trace, no node) omits the node field.
  SpanRecord local;
  local.id = 2;
  local.name = "local";
  local.category = SpanCategory::kBench;
  EXPECT_EQ(trace_json_lines({local}),
            "{\"id\":2,\"parent\":0,\"trace\":0,\"category\":\"bench\","
            "\"name\":\"local\",\"wall_begin_us\":0,\"wall_end_us\":0,"
            "\"sim_begin\":-1,\"sim_end\":-1,\"hop\":0,\"remote\":false}\n");
}

TEST(ObsExport, ChromeTraceGolden) {
  // One cross-node send -> receive pair, sim-stamped: the exporter must key
  // timestamps on sim time (seconds -> us), map node n to pid n + 1, and
  // bind one flow arrow (s at the sender, f at the receiver) by the
  // receiver's span id.
  SpanRecord send;
  send.id = 3;
  send.trace_id = 3;
  send.category = SpanCategory::kGossip;
  send.name = "send_exchange";
  send.sim_begin = 1.0;
  send.sim_end = 1.25;
  send.node = 0;
  SpanRecord recv;
  recv.id = 7;
  recv.parent = 3;
  recv.trace_id = 3;
  recv.category = SpanCategory::kGossip;
  recv.name = "recv_exchange";
  recv.sim_begin = 1.5;
  recv.sim_end = 2.0;
  recv.hop = 1;
  recv.node = 1;
  recv.remote_parent = true;
  EXPECT_EQ(
      chrome_trace_json({send, recv}),
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"node 0\"}},\n"
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":2,\"tid\":0,"
      "\"args\":{\"name\":\"node 1\"}},\n"
      "{\"ph\":\"X\",\"name\":\"send_exchange\",\"cat\":\"gossip\","
      "\"ts\":1000000,\"dur\":250000,\"pid\":1,\"tid\":1,"
      "\"args\":{\"span\":3,\"parent\":0,\"trace\":3,\"hop\":0}},\n"
      "{\"ph\":\"X\",\"name\":\"recv_exchange\",\"cat\":\"gossip\","
      "\"ts\":1500000,\"dur\":500000,\"pid\":2,\"tid\":1,"
      "\"args\":{\"span\":7,\"parent\":3,\"trace\":3,\"hop\":1}},\n"
      "{\"ph\":\"s\",\"name\":\"causal\",\"cat\":\"trace\",\"id\":7,"
      "\"ts\":1000000,\"pid\":1,\"tid\":1},\n"
      "{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"causal\",\"cat\":\"trace\","
      "\"id\":7,\"ts\":1500000,\"pid\":2,\"tid\":1}\n"
      "]}\n");
}

TEST(ObsExport, ChromeTraceOfNoSpansIsValid) {
  EXPECT_EQ(chrome_trace_json({}),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");
}

TEST(ObsExport, ChromeTraceFallsBackToWallClockAndHostPid) {
  // No sim stamps, no node: wall-clock microseconds and the pid-0 "host"
  // process. A remote receive whose sender was overwritten in the ring gets
  // no flow arrow (nothing dangling).
  SpanRecord rec;
  rec.id = 9;
  rec.parent = 4;  // not in the snapshot
  rec.trace_id = 4;
  rec.category = SpanCategory::kServe;
  rec.name = "serve_query";
  rec.wall_begin_us = 10;
  rec.wall_end_us = 35;
  rec.remote_parent = true;
  const std::string json = chrome_trace_json({rec});
  EXPECT_NE(json.find("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,"
                      "\"tid\":0,\"args\":{\"name\":\"host\"}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"ts\":10,\"dur\":25,\"pid\":0"), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"f\""), std::string::npos);
}

// -------------------------------------------- trace-context propagation

TEST(ObsTraceContext, InactiveSpanYieldsInvalidContext) {
  Tracer tracer;  // every category disabled
  Span span(tracer, SpanCategory::kGossip, "send");
  EXPECT_FALSE(span.active());
  EXPECT_FALSE(span.context().valid());
  EXPECT_FALSE(current_trace_context().valid());
  // A remote span built from an invalid context starts a fresh local trace.
  Tracer on;
  on.enable(SpanCategory::kGossip);
  Span fresh(on, SpanCategory::kGossip, "recv", span.context());
  EXPECT_TRUE(fresh.active());
  EXPECT_EQ(fresh.trace_id(), fresh.id());
}

TEST(ObsTraceContext, RemoteSpanLinksToSenderAndNestsLocally) {
  Tracer tracer;
  tracer.enable(SpanCategory::kGossip);
  std::uint64_t send_id = 0;
  {
    Span send(tracer, SpanCategory::kGossip, "send_exchange");
    send_id = send.id();
    const TraceContext ctx = send.context();
    EXPECT_TRUE(ctx.valid());
    EXPECT_EQ(ctx.trace_id, send.trace_id());
    EXPECT_EQ(ctx.parent_span, send.id());
    EXPECT_EQ(ctx.hop, 1u);  // pre-incremented for the network crossing
    {
      // The "other node": a remote-parented receive with a nested local
      // child, as AsyncOverlay's delivery handler opens them.
      Span recv(tracer, SpanCategory::kGossip, "recv_exchange", ctx, 5);
      Span apply(tracer, SpanCategory::kGossip, "apply_exchange");
      EXPECT_EQ(recv.trace_id(), send.trace_id());
      EXPECT_EQ(apply.trace_id(), send.trace_id());
    }
    // The remote span must restore the *thread's* previous top (the sender),
    // not its own remote parent.
    EXPECT_EQ(current_trace_context().parent_span, send.id());
  }
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 3u);  // completed innermost-first
  const SpanRecord& apply = spans[0];
  const SpanRecord& recv = spans[1];
  const SpanRecord& send = spans[2];
  EXPECT_EQ(send.id, send_id);
  EXPECT_EQ(send.parent, 0u);
  EXPECT_EQ(send.trace_id, send.id);
  EXPECT_FALSE(send.remote_parent);
  EXPECT_EQ(recv.parent, send.id);
  EXPECT_EQ(recv.trace_id, send.id);
  EXPECT_EQ(recv.hop, 1u);
  EXPECT_EQ(recv.node, 5u);
  EXPECT_TRUE(recv.remote_parent);
  EXPECT_EQ(apply.parent, recv.id);
  EXPECT_EQ(apply.trace_id, send.id);
  EXPECT_EQ(apply.hop, 1u);  // same node as recv: no extra hop
  EXPECT_FALSE(apply.remote_parent);
}

TEST(ObsTraceContext, DuplicatedMessageYieldsDistinctReceiveSpans) {
  EventEngine engine;
  FaultPlan plan(7);
  plan.set_default_faults({.drop_prob = 0.0, .duplicate_prob = 1.0,
                           .jitter_max = 0.0});
  FaultyChannel channel(&engine, &plan);
  Tracer tracer;
  tracer.enable(SpanCategory::kGossip);
  const RegistrySnapshot before = Registry::global().snapshot();
  std::uint64_t send_id = 0;
  {
    Span send(tracer, SpanCategory::kGossip, "send_exchange");
    send_id = send.id();
    channel.send(0, 1, 0.01, send.context(),
                 [&tracer](const TraceContext& ctx) {
                   Span recv(tracer, SpanCategory::kGossip, "recv_exchange",
                             ctx, 1);
                 });
  }
  engine.run_until(1.0);
  // Two deliveries of the SAME context -> two receive spans with distinct
  // ids, both remote-parented on the one sender span.
  std::vector<SpanRecord> recvs;
  for (const SpanRecord& s : tracer.snapshot()) {
    if (std::string(s.name) == "recv_exchange") recvs.push_back(s);
  }
  ASSERT_EQ(recvs.size(), 2u);
  EXPECT_NE(recvs[0].id, recvs[1].id);
  for (const SpanRecord& r : recvs) {
    EXPECT_EQ(r.parent, send_id);
    EXPECT_TRUE(r.remote_parent);
    EXPECT_EQ(r.hop, 1u);
  }
  const RegistrySnapshot after = Registry::global().snapshot();
  auto delta = [&](const char* name) {
    return after.counter_value(name) - before.counter_value(name);
  };
  EXPECT_EQ(delta("bcc.trace.contexts_injected"), 1u);
  EXPECT_EQ(delta("bcc.trace.contexts_duplicated"), 1u);
  EXPECT_EQ(delta("bcc.trace.contexts_delivered"), 2u);
  EXPECT_EQ(delta("bcc.trace.contexts_dropped"), 0u);
}

TEST(ObsTraceContext, DroppedMessageDiscardsContextWithoutLeaking) {
  EventEngine engine;
  FaultPlan plan(7);
  plan.set_default_faults({.drop_prob = 1.0});
  FaultyChannel channel(&engine, &plan);
  Tracer tracer;
  tracer.enable(SpanCategory::kGossip);
  const RegistrySnapshot before = Registry::global().snapshot();
  std::size_t deliveries = 0;
  {
    Span send(tracer, SpanCategory::kGossip, "send_exchange");
    channel.send(0, 1, 0.01, send.context(),
                 [&deliveries](const TraceContext&) { ++deliveries; });
  }
  engine.run_until(1.0);
  EXPECT_EQ(deliveries, 0u);
  const RegistrySnapshot after = Registry::global().snapshot();
  auto delta = [&](const char* name) {
    return after.counter_value(name) - before.counter_value(name);
  };
  // injected == dropped + delivered: the context died with the message.
  EXPECT_EQ(delta("bcc.trace.contexts_injected"), 1u);
  EXPECT_EQ(delta("bcc.trace.contexts_dropped"), 1u);
  EXPECT_EQ(delta("bcc.trace.contexts_delivered"), 0u);

  // An invalid context (tracing off at the sender) counts nothing at all.
  channel.send(0, 1, 0.01, TraceContext{},
               [&deliveries](const TraceContext&) { ++deliveries; });
  engine.run_until(2.0);
  const RegistrySnapshot final_snap = Registry::global().snapshot();
  EXPECT_EQ(final_snap.counter_value("bcc.trace.contexts_injected"),
            after.counter_value("bcc.trace.contexts_injected"));
  EXPECT_EQ(final_snap.counter_value("bcc.trace.contexts_dropped"),
            after.counter_value("bcc.trace.contexts_dropped"));
}

// ------------------------------------------------------------ convergence

TEST(ObsConvergence, TimeToConvergenceRecordedOncePerEpisode) {
  Registry registry;
  ConvergenceSample next;
  ConvergenceMonitor monitor(&registry, [&next] { return next; });
  auto node = [](std::uint64_t id, bool ok, double stale) {
    NodeHealth h;
    h.id = id;
    h.matches_reference = ok;
    h.staleness = stale;
    return h;
  };

  next.now = 1.0;
  next.nodes = {node(0, true, 0.5), node(1, false, 1.0)};
  next.suspected_links = 1;
  EXPECT_EQ(monitor.sample(), 1u);
  EXPECT_FALSE(monitor.converged());
  EXPECT_EQ(monitor.converged_at(), -1.0);

  next.now = 2.0;
  next.nodes = {node(0, true, 1.5), node(1, true, 0.0)};
  next.suspected_links = 0;
  EXPECT_EQ(monitor.sample(), 0u);
  EXPECT_TRUE(monitor.converged());
  EXPECT_EQ(monitor.converged_at(), 2.0);

  next.now = 3.0;  // still converged: not a new episode
  monitor.sample();
  EXPECT_EQ(monitor.converged_at(), 2.0);

  next.now = 4.0;  // churn: node 1 drifts again
  next.nodes = {node(0, true, 0.1), node(1, false, 2.0)};
  EXPECT_EQ(monitor.sample(), 1u);
  EXPECT_FALSE(monitor.converged());
  EXPECT_EQ(monitor.converged_at(), -1.0);

  next.now = 5.0;  // second episode converges
  next.nodes = {node(0, true, 0.2), node(1, true, 0.1)};
  monitor.sample();
  EXPECT_EQ(monitor.converged_at(), 5.0);

  const RegistrySnapshot snap = registry.snapshot();
  const Histogram::Snapshot* ttc =
      snap.histogram("bcc.conv.time_to_convergence_ms");
  ASSERT_NE(ttc, nullptr);
  EXPECT_EQ(ttc->count, 2u);  // one entry per convergence episode
  const Histogram::Snapshot* nc =
      snap.histogram("bcc.conv.node_convergence_ms");
  ASSERT_NE(nc, nullptr);
  EXPECT_EQ(nc->count, 3u);  // node 0 @1s, node 1 @2s, node 1 again @5s
  const Histogram::Snapshot* stale = snap.histogram("bcc.conv.staleness_ms");
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->count, 10u);  // 2 nodes x 5 samples
  EXPECT_EQ(snap.counter_value("bcc.conv.samples"), 5u);
  EXPECT_EQ(snap.counter_value("bcc.conv.suspicion_churn"), 2u);  // 0->1->0
  EXPECT_EQ(snap.gauge_value("bcc.conv.converged"), 1.0);
  EXPECT_EQ(snap.gauge_value("bcc.conv.drift_fraction"), 0.0);
  EXPECT_EQ(snap.gauge_value("bcc.conv.nodes"), 2.0);
}

TEST(ObsConvergence, EmptySampleNeverCountsAsConverged) {
  Registry registry;
  ConvergenceMonitor monitor(&registry, [] { return ConvergenceSample{}; });
  EXPECT_EQ(monitor.sample(), 0u);
  EXPECT_FALSE(monitor.converged());
  EXPECT_EQ(registry.snapshot().gauge_value("bcc.conv.converged"), 0.0);
}

TEST(ObsExport, NonFiniteGaugesExportAsZero) {
  Registry registry;
  registry.gauge("bcc.test.bad").set(std::nan(""));
  registry.gauge("bcc.test.inf").set(INFINITY);
  const std::string json = json_object(registry.snapshot());
  EXPECT_NE(json.find("\"bcc.test.bad\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"bcc.test.inf\": 0"), std::string::npos);
}

// ------------------------------------------------------------ bench report

TEST(ObsBenchReport, WritesJsonFileToBenchOutDir) {
  const auto dir = std::filesystem::temp_directory_path() / "bcc_obs_test";
  std::filesystem::create_directories(dir);
  ASSERT_EQ(setenv("BCC_BENCH_OUT", dir.c_str(), 1), 0);
  BenchReport report("unit");
  report.set("bcc.bench.unit.answer", 42.0);
  EXPECT_EQ(report.path(), (dir / "BENCH_unit.json").string());
  ASSERT_TRUE(report.write());
  std::FILE* f = std::fopen(report.path().c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[512] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  unsetenv("BCC_BENCH_OUT");
  const std::string content(buf, n);
  EXPECT_NE(content.find("\"bench\":\"unit\""), std::string::npos);
  EXPECT_NE(content.find("\"bcc.bench.unit.answer\": 42"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(ObsBenchReport, RejectsBadNames) {
  EXPECT_THROW(BenchReport("Has Spaces"), ContractViolation);
  EXPECT_THROW(BenchReport(""), ContractViolation);
  EXPECT_EQ(BenchReport::sanitize_segment("BM_GossipUnderLoss/30"),
            "bm_gossipunderloss_30");
  EXPECT_EQ(BenchReport::sanitize_segment(""), "_");
}

TEST(ObsBenchReport, ExportTableSkipsNonNumericCells) {
  TablePrinter table({"k", "variant", "RR"});
  table.add_row({"2", "tree", "0.98"});
  table.add_row({"4", "euclidean", "0.75"});
  BenchReport report("tbl");
  export_table(report, "Main Series", table);
  const RegistrySnapshot s = report.registry().snapshot();
  EXPECT_DOUBLE_EQ(s.gauge_value("bcc.bench.main_series.k_r0"), 2.0);
  EXPECT_DOUBLE_EQ(s.gauge_value("bcc.bench.main_series.rr_r1"), 0.75);
  // "tree" / "euclidean" are not numbers: no gauge registered for them.
  EXPECT_EQ(s.gauges.size(), 4u);
}

// -------------------------------------------------------------- exemplars

TEST(ObsExemplar, OverwriteLatestPerBucketAndZeroIdIsFree) {
  Histogram h;
  h.record_with_exemplar(100, 0xaaa);
  h.record_with_exemplar(101, 0xbbb);  // same bit_width bucket: overwrites
  h.record_with_exemplar(5000, 0xccc);
  h.record_with_exemplar(102, 0);  // tracing off: counted, but no slot write
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  std::size_t live = 0;
  bool latest_won = false;
  for (const Exemplar& e : s.exemplars) {
    if (!e.valid()) continue;
    ++live;
    if (e.trace_id == 0xbbb) latest_won = true;
    EXPECT_NE(e.trace_id, 0xaaau) << "overwritten slot must not survive";
  }
  EXPECT_EQ(live, 2u);
  EXPECT_TRUE(latest_won);
}

TEST(ObsExemplar, ExemplarNearFindsTheQuantileBucketOrANeighbor) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    // Only the slowest 1% of samples carry a trace id — the realistic
    // shape: exemplar_near(99) must still surface a tail sample.
    h.record_with_exemplar(v, v > 990 ? v : 0);
  }
  const Histogram::Snapshot s = h.snapshot();
  const Exemplar* p99 = s.exemplar_near(99.0);
  ASSERT_NE(p99, nullptr);
  EXPECT_GT(p99->value, 900u);
  // An empty histogram has no exemplar at any quantile.
  EXPECT_EQ(Histogram().snapshot().exemplar_near(50.0), nullptr);
}

TEST(ObsExemplar, ResetClearsSlots) {
  Registry r;
  Histogram& h = r.histogram("bcc.test.lat");
  h.record_with_exemplar(64, 0x123);
  r.reset();
  const Histogram::Snapshot s = h.snapshot();
  for (const Exemplar& e : s.exemplars) EXPECT_FALSE(e.valid());
}

TEST(ObsExemplar, SnapshotMergeKeepsTheNewerStamp) {
  Histogram a, b;
  a.record_with_exemplar(100, 0x1);
  b.record_with_exemplar(100, 0x2);
  Histogram::Snapshot sa = a.snapshot();
  Histogram::Snapshot sb = b.snapshot();
  for (Exemplar& e : sa.exemplars) {
    if (e.valid()) e.wall_us = 10;
  }
  for (Exemplar& e : sb.exemplars) {
    if (e.valid()) e.wall_us = 20;
  }
  sa.merge_from(sb);
  bool found = false;
  for (const Exemplar& e : sa.exemplars) {
    if (!e.valid()) continue;
    found = true;
    EXPECT_EQ(e.trace_id, 0x2u);
  }
  EXPECT_TRUE(found);
}

TEST(ObsExport, PrometheusExemplarEscaping) {
  // A histogram with exemplars grows OpenMetrics-style ` # {...}` suffixes
  // on exactly the exemplared bucket lines, and the exposition stays
  // parseable: no quotes or braces leak outside the label block.
  Registry r;
  Histogram& h = r.histogram("bcc.test.lat");
  h.record_with_exemplar(3, 0xdeadbeef);
  h.record(9);  // exemplar-less bucket keeps the plain shape
  const std::string text = prometheus_text(r.snapshot());
  EXPECT_NE(text.find("bcc_test_lat_bucket{le=\"3\"} 1 # {trace_id=\""),
            std::string::npos);
  EXPECT_EQ(text.find("bcc_test_lat_bucket{le=\"15\"} 1 #"),
            std::string::npos)
      << "buckets without an exemplar must not grow a suffix";
  // The trace id renders as bare digits inside the quoted label: one quote
  // pair per exemplar, no stray escapes.
  const std::size_t suffix = text.find(" # {trace_id=\"");
  ASSERT_NE(suffix, std::string::npos);
  const std::size_t open = text.find('"', suffix);
  const std::size_t close = text.find('"', open + 1);
  ASSERT_NE(close, std::string::npos);
  for (std::size_t i = open + 1; i < close; ++i) {
    EXPECT_TRUE(text[i] >= '0' && text[i] <= '9') << text.substr(suffix, 40);
  }
  EXPECT_EQ(text.find("3735928559"), close - 10) << "id is decimal, in place";
}

TEST(ObsExport, JsonHistogramCarriesExemplarsOnlyWhenPresent) {
  Registry r;
  r.histogram("bcc.test.lat").record(3);
  EXPECT_EQ(json_lines(r.snapshot()).find("exemplars"), std::string::npos)
      << "exemplar-free histograms keep the pre-exemplar shape";
  r.histogram("bcc.test.lat").record_with_exemplar(3, 77);
  const std::string text = json_lines(r.snapshot());
  EXPECT_NE(text.find("\"exemplars\":[{\"le\":3,\"trace\":77,\"value\":3,"),
            std::string::npos);
}

TEST(ObsExport, FilterTraceSelectsOneCausalChain) {
  std::vector<SpanRecord> spans;
  auto make = [](std::uint64_t id, std::uint64_t trace, bool remote) {
    SpanRecord s;
    s.id = id;
    s.trace_id = trace;
    s.category = SpanCategory::kServe;
    s.name = "serve_query";
    s.remote_parent = remote;
    return s;
  };
  spans.push_back(make(1, 100, false));
  spans.push_back(make(2, 200, false));
  spans.push_back(make(3, 100, true));  // remote-parented hop, same trace
  spans.push_back(make(4, 0, false));   // untraced span never matches
  const std::vector<SpanRecord> chain = filter_trace(spans, 100);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].id, 1u);
  EXPECT_EQ(chain[1].id, 3u);
  EXPECT_TRUE(chain[1].remote_parent);
  EXPECT_TRUE(filter_trace(spans, 0).empty())
      << "trace id 0 means untraced, never 'match everything'";
  // A remote-parented span serializes with its trace id intact, so a
  // filtered chain can be fed straight to trace_json_lines.
  const std::string line = trace_json_lines({chain[1]});
  EXPECT_NE(line.find("\"trace\":100"), std::string::npos);
  EXPECT_NE(line.find("\"remote\":true"), std::string::npos);
}

TEST(ObsExport, PrometheusOfEmptyRegistryIsEmpty) {
  Registry r;
  EXPECT_EQ(prometheus_text(r.snapshot()), "");
  EXPECT_EQ(json_lines(r.snapshot()), "");
}

// ------------------------------------------------------ sampling profiler

TEST(ObsProfiler, StartStopFoldedAndPublish) {
  SamplingProfiler profiler;
  SamplingProfiler::Options options;
  options.hz = 500;  // dense sampling keeps the busy loop short
  ASSERT_TRUE(profiler.start(options));
  EXPECT_TRUE(profiler.running());
  // A second owner cannot share the process-wide timer.
  SamplingProfiler second;
  EXPECT_FALSE(second.start());
  // Burn CPU until samples arrive (bounded by wall time, not iterations).
  volatile double sink = 1.0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (profiler.samples() < 5 &&
         std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 100000; ++i) sink = sink * 1.0000001 + 0.5;
  }
  profiler.stop();
  EXPECT_FALSE(profiler.running());
  ASSERT_GE(profiler.samples(), 5u) << "no SIGPROF samples in 10s of spin";

  const auto stacks = profiler.folded();
  ASSERT_FALSE(stacks.empty());
  std::uint64_t total = 0;
  for (const auto& [stack, n] : stacks) {
    EXPECT_FALSE(stack.empty());
    EXPECT_GT(n, 0u);
    total += n;
  }
  EXPECT_EQ(total + profiler.dropped(), profiler.samples());
  // folded_text is one "stack count\n" line per entry.
  const std::string text = profiler.folded_text();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            stacks.size());
  // top_stacks truncates but keeps the hottest-first order.
  const auto top = profiler.top_stacks(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].first, stacks[0].first);

  profiler.publish_metrics();
  const RegistrySnapshot s = Registry::global().snapshot();
  EXPECT_GE(s.gauge_value("bcc.profile.samples"), 5.0);
  EXPECT_EQ(s.gauge_value("bcc.profile.running"), 0.0);
  EXPECT_GE(s.gauge_value("bcc.profile.unique_stacks"), 1.0);

  profiler.clear();
  EXPECT_TRUE(profiler.folded().empty());
}

TEST(ObsProfiler, StopWithoutStartIsIdempotent) {
  SamplingProfiler profiler;
  profiler.stop();
  profiler.stop();
  EXPECT_FALSE(profiler.running());
  EXPECT_EQ(profiler.samples(), 0u);
  EXPECT_TRUE(profiler.folded().empty());
}

}  // namespace
}  // namespace bcc::obs
