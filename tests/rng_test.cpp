#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace bcc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentred) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroRejected) {
  Rng rng(3);
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BetweenBadRangeRejected) {
  Rng rng(5);
  EXPECT_THROW(rng.between(3, 2), ContractViolation);
}

TEST(Rng, NormalMoments) {
  Rng rng(21);
  const int n = 200000;
  double sum = 0.0, ss = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    ss += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(ss / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(22);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, NormalNegativeStddevRejected) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0.0, -1.0), ContractViolation);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(32);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(42);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(51);
  auto idx = rng.sample_indices(100, 30);
  ASSERT_EQ(idx.size(), 30u);
  std::set<std::size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (auto i : idx) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesFullPopulation) {
  Rng rng(52);
  auto idx = rng.sample_indices(10, 10);
  std::set<std::size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Rng, SampleIndicesOversampleRejected) {
  Rng rng(53);
  EXPECT_THROW(rng.sample_indices(5, 6), ContractViolation);
}

TEST(Rng, SplitStreamsAreIndependentAndStable) {
  Rng parent(77);
  Rng c1 = parent.split(0);
  Rng c2 = parent.split(1);
  Rng c1_again = parent.split(0);
  EXPECT_EQ(c1(), c1_again());
  EXPECT_NE(c1(), c2());
}

}  // namespace
}  // namespace bcc
