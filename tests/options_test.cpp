#include "common/options.h"

#include <gtest/gtest.h>

#include "common/assert.h"

#include <stdexcept>

namespace bcc {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v = {"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return v;
}

TEST(Options, DefaultsSurviveEmptyParse) {
  Options opts("t", "test");
  auto& n = opts.add_int("n", 42, "count");
  auto& x = opts.add_double("x", 1.5, "factor");
  auto& s = opts.add_string("s", "abc", "label");
  auto& f = opts.add_bool("f", false, "flag");
  auto argv = argv_of({});
  opts.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(x, 1.5);
  EXPECT_EQ(s, "abc");
  EXPECT_FALSE(f);
}

TEST(Options, SpaceSeparatedValues) {
  Options opts("t", "test");
  auto& n = opts.add_int("n", 0, "count");
  auto argv = argv_of({"--n", "7"});
  opts.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(n, 7);
}

TEST(Options, EqualsSeparatedValues) {
  Options opts("t", "test");
  auto& x = opts.add_double("x", 0.0, "factor");
  auto argv = argv_of({"--x=2.25"});
  opts.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_DOUBLE_EQ(x, 2.25);
}

TEST(Options, BoolByPresence) {
  Options opts("t", "test");
  auto& f = opts.add_bool("verbose", false, "flag");
  auto argv = argv_of({"--verbose"});
  opts.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(f);
}

TEST(Options, BoolExplicitFalse) {
  Options opts("t", "test");
  auto& f = opts.add_bool("verbose", true, "flag");
  auto argv = argv_of({"--verbose=false"});
  opts.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_FALSE(f);
}

TEST(Options, NegativeNumbers) {
  Options opts("t", "test");
  auto& n = opts.add_int("n", 0, "count");
  auto argv = argv_of({"--n", "-13"});
  opts.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(n, -13);
}

TEST(Options, UnknownFlagThrows) {
  Options opts("t", "test");
  opts.add_int("n", 0, "count");
  auto argv = argv_of({"--bogus", "1"});
  EXPECT_THROW(opts.parse(static_cast<int>(argv.size()), argv.data()),
               std::runtime_error);
}

TEST(Options, MissingValueThrows) {
  Options opts("t", "test");
  opts.add_int("n", 0, "count");
  auto argv = argv_of({"--n"});
  EXPECT_THROW(opts.parse(static_cast<int>(argv.size()), argv.data()),
               std::runtime_error);
}

TEST(Options, BadIntValueThrows) {
  Options opts("t", "test");
  opts.add_int("n", 0, "count");
  auto argv = argv_of({"--n", "notanumber"});
  EXPECT_THROW(opts.parse(static_cast<int>(argv.size()), argv.data()),
               std::runtime_error);
}

TEST(Options, BadBoolValueThrows) {
  Options opts("t", "test");
  opts.add_bool("f", false, "flag");
  auto argv = argv_of({"--f=maybe"});
  EXPECT_THROW(opts.parse(static_cast<int>(argv.size()), argv.data()),
               std::runtime_error);
}

TEST(Options, PositionalArgumentRejected) {
  Options opts("t", "test");
  auto argv = argv_of({"stray"});
  EXPECT_THROW(opts.parse(static_cast<int>(argv.size()), argv.data()),
               std::runtime_error);
}

TEST(Options, DuplicateRegistrationRejected) {
  Options opts("t", "test");
  opts.add_int("n", 0, "count");
  EXPECT_THROW(opts.add_double("n", 0.0, "again"), ContractViolation);
}

TEST(Options, UsageMentionsFlagsAndDefaults) {
  Options opts("prog", "description");
  opts.add_int("iterations", 10, "how many");
  const std::string usage = opts.usage();
  EXPECT_NE(usage.find("iterations"), std::string::npos);
  EXPECT_NE(usage.find("10"), std::string::npos);
  EXPECT_NE(usage.find("description"), std::string::npos);
}

TEST(Options, MultipleFlagsAtOnce) {
  Options opts("t", "test");
  auto& a = opts.add_int("a", 0, "");
  auto& b = opts.add_string("b", "", "");
  auto& c = opts.add_bool("c", false, "");
  auto argv = argv_of({"--a=1", "--b", "hello", "--c"});
  opts.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, "hello");
  EXPECT_TRUE(c);
}

}  // namespace
}  // namespace bcc
