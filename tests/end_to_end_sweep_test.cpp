// Cross-cutting parameterized sweep: the full pipeline (synthesize -> embed
// -> gossip -> query) run over a grid of system sizes, noise levels, and
// n_cut values, asserting the invariants that must hold at *every* point:
// returned clusters satisfy their constraints under the predicted metric,
// routing never revisits nodes, and gossip always converges in the budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/system.h"
#include "data/planetlab_synth.h"
#include "exp/common.h"
#include "tree/embedder.h"

namespace bcc {
namespace {

using SweepParam = std::tuple<std::size_t /*n*/, double /*noise*/,
                              std::size_t /*n_cut*/>;

class PipelineSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PipelineSweep, InvariantsHoldAcrossTheGrid) {
  const auto [n, noise, n_cut] = GetParam();
  Rng data_rng(n * 31 + n_cut);
  SynthOptions options;
  options.hosts = n;
  options.noise_sigma = noise;
  const SynthDataset data = synthesize_planetlab(options, data_rng);

  Rng order_rng(n + 7);
  const Framework fw = build_framework(data.distances, order_rng);
  const DistanceMatrix pred = fw.predicted_distances();

  const std::vector<double> grid = exp::bandwidth_grid(15.0, 75.0, 4);
  SystemOptions sys_options;
  sys_options.n_cut = n_cut;
  DecentralizedClusterSystem sys(fw.anchors, pred,
                                 exp::classes_for_grid(grid, data.c),
                                 sys_options);
  sys.run_to_convergence();
  EXPECT_TRUE(sys.converged()) << "n=" << n << " n_cut=" << n_cut;

  Rng query_rng(n * 13 + n_cut);
  for (int q = 0; q < 25; ++q) {
    const std::size_t k = 2 + query_rng.below(n / 4);
    const std::size_t cls = query_rng.below(sys.classes().size());
    const NodeId start = static_cast<NodeId>(query_rng.below(n));
    const QueryResult r = sys.query(QueryRequest::at_class(start, k, cls));

    // Route sanity: starts at the entry node, never revisits.
    ASSERT_FALSE(r.route.empty());
    EXPECT_EQ(r.route.front(), start);
    EXPECT_EQ(r.route.size(), r.hops + 1);
    auto visited = r.route;
    std::sort(visited.begin(), visited.end());
    EXPECT_EQ(std::adjacent_find(visited.begin(), visited.end()),
              visited.end());

    // Found clusters satisfy (k, l) under the predicted metric.
    if (r.found()) {
      EXPECT_TRUE(cluster_satisfies(pred, r.cluster, k,
                                    sys.classes().distance_at(cls)))
          << "n=" << n << " noise=" << noise << " n_cut=" << n_cut
          << " k=" << k << " cls=" << cls;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineSweep,
    ::testing::Combine(::testing::Values(std::size_t{20}, std::size_t{60},
                                         std::size_t{120}),
                       ::testing::Values(0.0, 0.25, 0.5),
                       ::testing::Values(std::size_t{3}, std::size_t{10},
                                         std::size_t{30})));

}  // namespace
}  // namespace bcc
