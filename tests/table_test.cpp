#include "common/table.h"

#include <gtest/gtest.h>

#include "common/assert.h"

namespace bcc {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  // Every line has the same length (column alignment).
  std::size_t expected = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t next = s.find('\n', pos);
    EXPECT_EQ(next - pos, expected);
    pos = next + 1;
  }
}

TEST(TablePrinter, ContainsHeaderAndCells) {
  TablePrinter t({"a", "b"});
  t.add_row({"foo", "bar"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("foo"), std::string::npos);
  EXPECT_NE(s.find("bar"), std::string::npos);
}

TEST(TablePrinter, DoubleRowsFormatted) {
  TablePrinter t({"x", "y"});
  t.add_numeric_row(std::vector<double>{1.23456, 2.0}, 3);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("1.235"), std::string::npos);
  EXPECT_NE(s.find("2.000"), std::string::npos);
}

TEST(TablePrinter, ArityMismatchRejected) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TablePrinter, EmptyHeaderRejected) {
  EXPECT_THROW(TablePrinter(std::vector<std::string>{}), ContractViolation);
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TablePrinter, RowCount) {
  TablePrinter t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.5, 2), "1.50");
  EXPECT_EQ(format_double(-0.125, 3), "-0.125");
  EXPECT_EQ(format_double(3.14159, 0), "3");
}

}  // namespace
}  // namespace bcc
