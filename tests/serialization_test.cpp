#include "tree/serialization.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/system.h"
#include "test_util.h"

namespace bcc {
namespace {

class SerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "bcc_serialization_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  void write_file(const std::string& name, const std::string& content) {
    std::ofstream os(path(name));
    os << content;
  }

  std::filesystem::path dir_;
};

TEST_F(SerializationTest, RoundTripPreservesEverything) {
  for (double sigma : {0.0, 0.3}) {
    Rng rng(1);
    const DistanceMatrix real =
        sigma == 0.0 ? testutil::random_tree_metric(25, rng)
                     : testutil::noisy_tree_metric(25, rng, sigma);
    Rng order(2);
    const Framework fw = build_framework(real, order);
    save_framework(fw, path("fw.txt"));
    const Framework loaded = load_framework(path("fw.txt"));

    ASSERT_EQ(loaded.prediction.host_count(), 25u);
    // Exact same predicted distances.
    for (NodeId u = 0; u < 25; ++u) {
      for (NodeId v = u + 1; v < 25; ++v) {
        EXPECT_NEAR(loaded.prediction.distance(u, v),
                    fw.prediction.distance(u, v), 1e-9)
            << "pair (" << u << "," << v << ") sigma=" << sigma;
      }
    }
    // Exact same overlay.
    for (NodeId h = 0; h < 25; ++h) {
      EXPECT_EQ(loaded.anchors.parent_of(h), fw.anchors.parent_of(h));
    }
    EXPECT_TRUE(loaded.prediction.check_invariants());
  }
}

TEST_F(SerializationTest, SingleHostFramework) {
  Framework fw;
  fw.prediction.add_first(7);
  fw.anchors.set_root(7);
  save_framework(fw, path("one.txt"));
  const Framework loaded = load_framework(path("one.txt"));
  EXPECT_EQ(loaded.prediction.host_count(), 1u);
  EXPECT_EQ(loaded.anchors.root(), 7u);
}

TEST_F(SerializationTest, CommentsAreAccepted) {
  Framework fw;
  fw.prediction.add_first(0);
  fw.anchors.set_root(0);
  fw.prediction.add_second(1, 5.0);
  fw.anchors.add_child(0, 1);
  save_framework(fw, path("c.txt"));
  // Prepend a comment line.
  std::ifstream is(path("c.txt"));
  std::string body((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  write_file("c2.txt", "# snapshot from test\n" + body);
  const Framework loaded = load_framework(path("c2.txt"));
  EXPECT_DOUBLE_EQ(loaded.prediction.distance(0, 1), 5.0);
}

TEST_F(SerializationTest, RejectsBadMagic) {
  write_file("bad.txt", "not-a-framework\n1\n0 -1 0 0\n");
  EXPECT_THROW(load_framework(path("bad.txt")), std::runtime_error);
}

TEST_F(SerializationTest, RejectsTruncatedRecords) {
  write_file("trunc.txt", "bcc-framework v1\n3\n0 -1 0 0\n1 0 0 5\n");
  EXPECT_THROW(load_framework(path("trunc.txt")), std::runtime_error);
}

TEST_F(SerializationTest, RejectsChildBeforeAnchor) {
  write_file("order.txt",
             "bcc-framework v1\n3\n0 -1 0 0\n2 1 0 3\n1 0 0 5\n");
  EXPECT_THROW(load_framework(path("order.txt")), std::runtime_error);
}

TEST_F(SerializationTest, RejectsRootWithAnchor) {
  write_file("root.txt", "bcc-framework v1\n1\n0 5 0 0\n");
  EXPECT_THROW(load_framework(path("root.txt")), std::runtime_error);
}

TEST_F(SerializationTest, RejectsMissingFile) {
  EXPECT_THROW(load_framework(path("ghost.txt")), std::runtime_error);
}

TEST_F(SerializationTest, RejectsEmptyAndHeaderOnlyFiles) {
  write_file("empty.txt", "");
  EXPECT_THROW(load_framework(path("empty.txt")), std::runtime_error);
  write_file("only_comments.txt", "# nothing\n# here\n");
  EXPECT_THROW(load_framework(path("only_comments.txt")), std::runtime_error);
  // Magic present but the host count is missing entirely.
  write_file("no_count.txt", "bcc-framework v1\n");
  EXPECT_THROW(load_framework(path("no_count.txt")), std::runtime_error);
}

TEST_F(SerializationTest, RejectsMalformedHostCount) {
  write_file("count.txt", "bcc-framework v1\nmany\n0 -1 0 0\n");
  EXPECT_THROW(load_framework(path("count.txt")), std::runtime_error);
}

TEST_F(SerializationTest, RejectsMalformedRecordFields) {
  // Non-numeric anchor field.
  write_file("fields.txt", "bcc-framework v1\n2\n0 -1 0 0\n1 x 0 5\n");
  EXPECT_THROW(load_framework(path("fields.txt")), std::runtime_error);
  // Negative host id.
  write_file("neghost.txt", "bcc-framework v1\n1\n-3 -1 0 0\n");
  EXPECT_THROW(load_framework(path("neghost.txt")), std::runtime_error);
  // Too few fields on a record line.
  write_file("short.txt", "bcc-framework v1\n2\n0 -1 0 0\n1 0 0\n");
  EXPECT_THROW(load_framework(path("short.txt")), std::runtime_error);
}

TEST_F(SerializationTest, RejectsDuplicateHost) {
  // Restoring host 0 twice violates the prediction-tree contract; the
  // loader must surface it as a malformed-file error, not a crash.
  write_file("dup.txt", "bcc-framework v1\n2\n0 -1 0 0\n0 0 0 5\n");
  EXPECT_THROW(load_framework(path("dup.txt")), std::runtime_error);
}

TEST_F(SerializationTest, ErrorsNameTheOffendingFile) {
  write_file("named.txt", "bcc-framework v1\nmany\n");
  try {
    load_framework(path("named.txt"));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("named.txt"), std::string::npos);
  }
}

TEST_F(SerializationTest, SaveToUnwritablePathThrows) {
  Framework fw;
  fw.prediction.add_first(0);
  fw.anchors.set_root(0);
  const std::string bad = path("no_such_dir") + "/fw.txt";
  EXPECT_THROW(save_framework(fw, bad), std::runtime_error);
  // Nothing was left behind.
  EXPECT_FALSE(std::filesystem::exists(bad));
}

TEST_F(SerializationTest, LoadedFrameworkServesQueries) {
  // End-to-end: snapshot -> reload -> decentralized system answers as before.
  Rng rng(3);
  const DistanceMatrix real = testutil::random_tree_metric(20, rng);
  Rng order(4);
  const Framework fw = build_framework(real, order);
  save_framework(fw, path("sys.txt"));
  const Framework loaded = load_framework(path("sys.txt"));

  const DistanceMatrix pred = loaded.predicted_distances();
  const double dmax = pred.max_distance();
  BandwidthClasses classes({kDefaultTransformC / dmax});
  DecentralizedClusterSystem sys(loaded.anchors, pred, classes, {});
  sys.run_to_convergence();
  const auto r = sys.query(QueryRequest::at_class(0, 5, 0));
  EXPECT_TRUE(r.found());
}

}  // namespace
}  // namespace bcc
