#include "core/overlay_node.h"

#include <gtest/gtest.h>

namespace bcc {
namespace {

TEST(OverlayNode, ClusteringSpaceIncludesSelf) {
  OverlayNode n;
  n.id = 7;
  EXPECT_EQ(n.clustering_space(), (std::vector<NodeId>{7}));
}

TEST(OverlayNode, ClusteringSpaceUnionsAllDirections) {
  OverlayNode n;
  n.id = 0;
  n.neighbors = {1, 2};
  n.aggr_node[1] = {3, 4};
  n.aggr_node[2] = {5};
  const auto space = n.clustering_space();
  EXPECT_EQ(space, (std::vector<NodeId>{0, 3, 4, 5}));
}

TEST(OverlayNode, ClusteringSpaceDeduplicates) {
  OverlayNode n;
  n.id = 0;
  n.aggr_node[1] = {3, 4, 5};
  n.aggr_node[2] = {4, 5, 6};
  const auto space = n.clustering_space();
  EXPECT_EQ(space, (std::vector<NodeId>{0, 3, 4, 5, 6}));
}

TEST(OverlayNode, ClusteringSpaceIsSortedDeterministic) {
  OverlayNode n;
  n.id = 9;
  n.aggr_node[1] = {12, 2};
  n.aggr_node[5] = {7, 30};
  const auto space = n.clustering_space();
  for (std::size_t i = 0; i + 1 < space.size(); ++i) {
    EXPECT_LT(space[i], space[i + 1]);
  }
}

}  // namespace
}  // namespace bcc
