#include "data/planetlab_synth.h"

#include <gtest/gtest.h>

#include <cmath>

#include "metric/four_point.h"

namespace bcc {
namespace {

TEST(PlanetlabSynth, CalibratesPercentiles) {
  Rng rng(1);
  SynthOptions options;
  options.hosts = 80;
  options.target_p20 = 15.0;
  options.target_p80 = 75.0;
  const SynthDataset data = synthesize_planetlab(options, rng);
  // The geometric mean of the two percentiles is matched exactly; the
  // individual percentiles land within the ratio tolerance.
  const double p20 = data.bandwidth.percentile(20.0);
  const double p80 = data.bandwidth.percentile(80.0);
  EXPECT_NEAR(std::sqrt(p20 * p80), std::sqrt(15.0 * 75.0), 1e-6);
  EXPECT_NEAR(p80 / p20, 5.0, 5.0 * 0.15);
}

TEST(PlanetlabSynth, DistancesAreRationalTransform) {
  Rng rng(2);
  SynthOptions options;
  options.hosts = 20;
  options.c = 1000.0;
  const SynthDataset data = synthesize_planetlab(options, rng);
  for (NodeId u = 0; u < 20; ++u) {
    for (NodeId v = u + 1; v < 20; ++v) {
      EXPECT_NEAR(data.distances.at(u, v), 1000.0 / data.bandwidth.at(u, v),
                  1e-9);
    }
  }
}

TEST(PlanetlabSynth, ZeroNoiseGivesPerfectTreeMetric) {
  Rng rng(3);
  SynthOptions options;
  options.hosts = 12;
  options.noise_sigma = 0.0;
  const SynthDataset data = synthesize_planetlab(options, rng);
  EXPECT_TRUE(is_tree_metric(data.distances, 1e-6));
  // And matches the reference tree distances exactly.
  for (NodeId u = 0; u < 12; ++u) {
    for (NodeId v = u + 1; v < 12; ++v) {
      EXPECT_NEAR(data.distances.at(u, v), data.tree_distances.at(u, v), 1e-6);
    }
  }
}

TEST(PlanetlabSynth, NoiseDegradesTreenessMonotonically) {
  auto eps_at = [](double sigma) {
    Rng rng(4);
    SynthOptions options;
    options.hosts = 50;
    options.noise_sigma = sigma;
    const SynthDataset data = synthesize_planetlab(options, rng);
    Rng est(5);
    return estimate_treeness(data.distances, est, 20000).epsilon_avg;
  };
  const double e0 = eps_at(0.0);
  const double e1 = eps_at(0.15);
  const double e2 = eps_at(0.5);
  EXPECT_LT(e0, 0.01);
  EXPECT_LT(e0, e1);
  EXPECT_LT(e1, e2);
}

TEST(PlanetlabSynth, DefaultNoiseLandsInPlanetlabEpsilonRange) {
  Rng rng(6);
  SynthOptions options;
  options.hosts = 100;
  const SynthDataset data = synthesize_planetlab(options, rng);
  Rng est(7);
  const double eps = estimate_treeness(data.distances, est, 30000).epsilon_avg;
  // Real PlanetLab bandwidth data shows mild 4PC violations; our default
  // should sit in a plausible band (not perfect, not chaos).
  EXPECT_GT(eps, 0.01);
  EXPECT_LT(eps, 0.6);
}

TEST(PlanetlabSynth, DeterministicForSeed) {
  SynthOptions options;
  options.hosts = 30;
  Rng r1(8), r2(8);
  const SynthDataset a = synthesize_planetlab(options, r1);
  const SynthDataset b = synthesize_planetlab(options, r2);
  for (NodeId u = 0; u < 30; ++u) {
    for (NodeId v = u + 1; v < 30; ++v) {
      EXPECT_DOUBLE_EQ(a.bandwidth.at(u, v), b.bandwidth.at(u, v));
    }
  }
}

TEST(PlanetlabSynth, HpDatasetShape) {
  Rng rng(9);
  const SynthDataset hp = make_hp_planetlab(rng);
  EXPECT_EQ(hp.name, "HP-PlanetLab");
  EXPECT_EQ(hp.bandwidth.size(), 190u);
  const double p20 = hp.bandwidth.percentile(20.0);
  const double p80 = hp.bandwidth.percentile(80.0);
  EXPECT_NEAR(std::sqrt(p20 * p80), std::sqrt(15.0 * 75.0), 1e-6);
}

TEST(PlanetlabSynth, UmdDatasetShape) {
  Rng rng(10);
  const SynthDataset umd = make_umd_planetlab(rng);
  EXPECT_EQ(umd.name, "UMD-PlanetLab");
  EXPECT_EQ(umd.bandwidth.size(), 317u);
  const double p20 = umd.bandwidth.percentile(20.0);
  const double p80 = umd.bandwidth.percentile(80.0);
  EXPECT_NEAR(std::sqrt(p20 * p80), std::sqrt(30.0 * 110.0), 1e-6);
  // UMD is a generally faster network than HP in the paper's numbers.
  Rng rng2(9);
  const SynthDataset hp = make_hp_planetlab(rng2);
  EXPECT_GT(umd.bandwidth.percentile(50.0), hp.bandwidth.percentile(50.0));
}

TEST(PlanetlabSynth, ValidatesOptions) {
  Rng rng(11);
  SynthOptions options;
  options.hosts = 1;
  EXPECT_THROW(synthesize_planetlab(options, rng), ContractViolation);
  options.hosts = 10;
  options.target_p20 = -1.0;
  EXPECT_THROW(synthesize_planetlab(options, rng), ContractViolation);
  options.target_p20 = 50.0;
  options.target_p80 = 20.0;  // inverted
  EXPECT_THROW(synthesize_planetlab(options, rng), ContractViolation);
  options.target_p80 = 80.0;
  options.noise_sigma = -0.1;
  EXPECT_THROW(synthesize_planetlab(options, rng), ContractViolation);
}

}  // namespace
}  // namespace bcc
