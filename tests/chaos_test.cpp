// Chaos suite (ctest label: chaos): randomized fault sweeps asserting the
// resilient gossip stack converges to the synchronous ground truth under
// message loss, crash/recover schedules, and membership churn — and that
// serving degrades gracefully (flagged, well-formed results) instead of
// crashing or silently lying while the network is disrupted.
//
// Sweep sizes scale with the environment for nightly runs:
//   BCC_CHAOS_SEEDS  — seeds per configuration (default 2)
//   BCC_CHAOS_N      — overlay size for the sweeps (default 14)
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>

#include "core/churn.h"
#include "core/system.h"
#include "serve/query_service.h"
#include "test_util.h"
#include "tree/embedder.h"

namespace bcc {
namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

std::size_t chaos_seeds() { return env_or("BCC_CHAOS_SEEDS", 2); }
std::size_t chaos_n() { return env_or("BCC_CHAOS_N", 14); }

struct ChaosSetup {
  Framework fw;
  DistanceMatrix predicted;
  BandwidthClasses classes = BandwidthClasses({1.0});
};

ChaosSetup make_setup(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const DistanceMatrix real = testutil::random_tree_metric(n, rng);
  Rng order(seed + 5);
  ChaosSetup s{build_framework(real, order), {}, BandwidthClasses({1.0})};
  s.predicted = s.fw.predicted_distances();
  const double dmax = s.predicted.max_distance();
  const double c = kDefaultTransformC;
  s.classes =
      BandwidthClasses({c / dmax, c / (dmax * 0.5), c / (dmax * 0.2)}, c);
  return s;
}

BandwidthClasses classes_for(const DistanceMatrix& predicted) {
  const double dmax = predicted.max_distance();
  const double c = kDefaultTransformC;
  return BandwidthClasses({c / dmax, c / (dmax * 0.5), c / (dmax * 0.2)}, c);
}

/// Asserts the async tables match the synchronous fixpoint computed over the
/// same (tree, predicted, classes) triple — exact equality, since both paths
/// call the shared compute_prop_* kernels.
void expect_ground_truth(const AsyncOverlay& async, const AnchorTree& tree,
                         const DistanceMatrix& predicted,
                         const BandwidthClasses& classes, std::size_t n_cut,
                         const std::string& context) {
  SystemOptions sync_options;
  sync_options.n_cut = n_cut;
  DecentralizedClusterSystem sync(tree, predicted, classes, sync_options);
  sync.run_to_convergence();
  ASSERT_TRUE(sync.converged()) << context;
  auto sorted = [](std::vector<NodeId> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  for (NodeId x : tree.bfs_order()) {
    const OverlayNode& sync_node = sync.node(x);
    ASSERT_TRUE(async.nodes().count(x)) << context << " missing x=" << x;
    const OverlayNode& async_node = async.nodes().at(x);
    for (NodeId m : sync_node.neighbors) {
      EXPECT_EQ(sorted(async_node.aggr_node.at(m)),
                sorted(sync_node.aggr_node.at(m)))
          << context << " x=" << x << " m=" << m;
      EXPECT_EQ(async_node.aggr_crt.at(m), sync_node.aggr_crt.at(m))
          << context << " x=" << x << " m=" << m;
    }
    EXPECT_EQ(async_node.aggr_crt.at(x), sync_node.aggr_crt.at(x))
        << context << " x=" << x;
  }
}

TEST(Chaos, DropSweepReachesGroundTruth) {
  const std::size_t n = chaos_n();
  for (double drop : {0.0, 0.1, 0.3}) {
    for (std::uint64_t seed = 1; seed <= chaos_seeds(); ++seed) {
      ChaosSetup s = make_setup(n, seed);
      FaultPlan plan(seed * 1000 + 7);
      plan.set_default_faults({.drop_prob = drop,
                               .duplicate_prob = 0.05,
                               .jitter_max = 0.02});
      AsyncOverlayOptions options;
      options.n_cut = 5;
      options.faults = &plan;
      AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options,
                         seed + 400);
      EventEngine engine;
      // Generous horizon: the lossier the link, the more periods a table
      // entry may need to cross it (retries are capped, periods are not).
      async.run_for(engine,
                    (8.0 + 24.0 * drop) * (s.fw.anchors.diameter() + 2));
      std::ostringstream context;
      context << "drop=" << drop << " seed=" << seed;
      expect_ground_truth(async, s.fw.anchors, s.predicted, s.classes,
                          options.n_cut, context.str());
      if (drop > 0.0) {
        EXPECT_GT(engine.metrics().dropped(), 0u);
      }
    }
  }
}

TEST(Chaos, CrashRecoverScheduleReachesGroundTruth) {
  const std::size_t n = std::max<std::size_t>(chaos_n(), 14);
  for (std::uint64_t seed = 1; seed <= chaos_seeds(); ++seed) {
    ChaosSetup s = make_setup(n, seed + 50);
    FaultPlan plan(seed * 31 + 5);
    plan.set_default_faults({.drop_prob = 0.1});
    // <= 10% of nodes crash and later recover, at staggered windows.
    const std::size_t crashers = std::max<std::size_t>(1, n / 10);
    const auto order = s.fw.anchors.bfs_order();
    for (std::size_t i = 0; i < crashers; ++i) {
      plan.add_crash(order[1 + i], /*down_at=*/4.0 + 2.0 * i,
                     /*up_at=*/12.0 + 2.0 * i);
    }
    AsyncOverlayOptions options;
    options.n_cut = 5;
    options.faults = &plan;
    AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options,
                       seed + 900);
    EventEngine engine;
    async.run_for(engine, 20.0 + 10.0 * (s.fw.anchors.diameter() + 2));
    EXPECT_EQ(async.down_count(), 0u);  // everyone recovered
    std::ostringstream context;
    context << "crash/recover seed=" << seed;
    expect_ground_truth(async, s.fw.anchors, s.predicted, s.classes,
                        options.n_cut, context.str());
  }
}

TEST(Chaos, ChurnReconvergesOnSurvivors) {
  // Perfect tree metric: the measurement matrix itself is the (churn-stable)
  // predicted matrix, and maintenance keeps every alive pair exactly
  // embedded — so after any join/leave sequence the synchronous system over
  // the repaired tree is the exact ground truth for the survivors.
  const std::size_t universe = 22;
  for (std::uint64_t seed = 1; seed <= chaos_seeds(); ++seed) {
    Rng rng(seed + 300);
    const DistanceMatrix real = testutil::random_tree_metric(universe, rng);
    const BandwidthClasses classes = classes_for(real);
    FrameworkMaintainer maintainer(&real);
    for (NodeId h = 0; h < universe - 4; ++h) maintainer.join(h);

    AsyncOverlayOptions options;
    options.n_cut = 5;
    options.gossip_period = 1.0;
    AsyncOverlay async(&maintainer.anchors(), &real, &classes, options,
                       seed + 60);
    EventEngine engine;
    async.start(engine);
    ChurnDriver churn(&maintainer, &async);
    const NodeId mid = maintainer.alive()[maintainer.alive().size() / 2];
    churn.schedule(engine,
                   {ChurnEvent::leave(2.0, 3),
                    ChurnEvent::join(3.5, universe - 4),
                    ChurnEvent::leave(5.0, mid == 3 ? 4 : mid),
                    ChurnEvent::join(6.5, universe - 3),
                    ChurnEvent::join(8.0, 3),      // rejoin after leaving
                    ChurnEvent::leave(9.5, 7)});
    engine.run_until(10.0);
    EXPECT_EQ(churn.applied(), 6u);
    // Quiet period: gossip re-converges on the post-churn membership.
    async.run_for(engine, 8.0 * (maintainer.anchors().diameter() + 2));
    std::ostringstream context;
    context << "churn seed=" << seed;
    expect_ground_truth(async, maintainer.anchors(), real, classes,
                        options.n_cut, context.str());
  }
}

TEST(Chaos, RunsAreDeterministicPerSeed) {
  auto fingerprint = [](std::uint64_t seed) {
    ChaosSetup s = make_setup(12, 77);
    FaultPlan plan(seed);
    plan.set_default_faults({.drop_prob = 0.2,
                             .duplicate_prob = 0.1,
                             .jitter_max = 0.05});
    plan.add_crash(s.fw.anchors.bfs_order()[1], 3.0, 9.0);
    AsyncOverlayOptions options;
    options.faults = &plan;
    AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options,
                       seed + 1);
    EventEngine engine;
    async.run_for(engine, 40.0);
    std::ostringstream out;
    out << engine.metrics().dropped() << '/' << engine.metrics().duplicated()
        << '/' << engine.metrics().retried() << '/'
        << engine.metrics().suspected() << '/' << async.gossip_rounds() << '/'
        << async.last_change();
    std::vector<NodeId> hosts = s.fw.anchors.bfs_order();
    for (NodeId x : hosts) {
      const OverlayNode& node = async.nodes().at(x);
      for (NodeId m : hosts) {
        auto it = node.aggr_node.find(m);
        if (it == node.aggr_node.end()) continue;
        auto sorted = it->second;
        std::sort(sorted.begin(), sorted.end());
        out << '|' << x << ':' << m;
        for (NodeId d : sorted) out << ',' << d;
      }
    }
    return out.str();
  };
  EXPECT_EQ(fingerprint(5), fingerprint(5));
  EXPECT_NE(fingerprint(5), fingerprint(6));
}

TEST(Chaos, DegradedServingIsFlaggedAndWellFormed) {
  ChaosSetup s = make_setup(16, 91);
  AsyncOverlayOptions options;
  options.n_cut = 100;
  AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options, 92);
  EventEngine engine;
  const double horizon = 4.0 * (s.fw.anchors.diameter() + 2);
  async.run_for(engine, horizon);
  ASSERT_TRUE(async.healthy());

  SystemOptions sync_options;
  sync_options.n_cut = 100;
  DecentralizedClusterSystem sync(s.fw.anchors, s.predicted, s.classes,
                                  sync_options);
  sync.run_to_convergence();
  QueryServiceOptions service_options;
  service_options.threads = 2;
  QueryService service(sync, service_options);

  // Knock two nodes out and serve from a snapshot taken mid-disruption.
  async.crash(s.fw.anchors.bfs_order()[1]);
  async.crash(s.fw.anchors.bfs_order()[2]);
  async.run_for(engine, 2.0);
  ASSERT_FALSE(async.healthy());
  service.refresh(*snapshot_of(async, s.predicted, s.classes,
                               sync_options.find_options));
  for (NodeId start : s.fw.anchors.bfs_order()) {
    const QueryResult r = service.submit(QueryRequest::at_class(start, 4, 0));
    EXPECT_TRUE(r.degraded) << "start=" << start;
    // Degraded answers stay well-formed: a valid status, and any cluster
    // returned has exactly k members satisfying the class in predicted
    // space (Algorithm 1 guarantees that regardless of table completeness).
    if (r.found()) {
      EXPECT_EQ(r.cluster.size(), 4u);
      EXPECT_TRUE(cluster_satisfies(s.predicted, r.cluster, 4,
                                    s.classes.distance_at(0)));
    } else {
      EXPECT_EQ(r.status, QueryStatus::kNotFound);
    }
  }
  // Argument errors are degraded-flagged too (they reflect this snapshot).
  EXPECT_TRUE(service.submit(QueryRequest::at_class(0, 1, 0)).degraded);

  // Heal: recover both, let gossip refill the tables, re-snapshot.
  async.recover(s.fw.anchors.bfs_order()[1]);
  async.recover(s.fw.anchors.bfs_order()[2]);
  async.run_for(engine, horizon);
  ASSERT_TRUE(async.healthy());
  service.refresh(*snapshot_of(async, s.predicted, s.classes,
                               sync_options.find_options));
  const QueryResult healed = service.submit(QueryRequest::at_class(0, 4, 0));
  EXPECT_FALSE(healed.degraded);
  EXPECT_TRUE(healed.found());
}

}  // namespace
}  // namespace bcc
