// Chaos suite (ctest label: chaos): randomized fault sweeps asserting the
// resilient gossip stack converges to the synchronous ground truth under
// message loss, crash/recover schedules, and membership churn — and that
// serving degrades gracefully (flagged, well-formed results) instead of
// crashing or silently lying while the network is disrupted.
//
// Sweep sizes scale with the environment for nightly runs:
//   BCC_CHAOS_SEEDS  — seeds per configuration (default 2)
//   BCC_CHAOS_N      — overlay size for the sweeps (default 14)
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>

#include "core/churn.h"
#include "core/convergence_probe.h"
#include "core/system.h"
#include "obs/export.h"
#include "serve/query_service.h"
#include "test_util.h"
#include "tree/embedder.h"

namespace bcc {
namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

std::size_t chaos_seeds() { return env_or("BCC_CHAOS_SEEDS", 2); }
std::size_t chaos_n() { return env_or("BCC_CHAOS_N", 14); }

struct ChaosSetup {
  Framework fw;
  DistanceMatrix predicted;
  BandwidthClasses classes = BandwidthClasses({1.0});
};

ChaosSetup make_setup(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const DistanceMatrix real = testutil::random_tree_metric(n, rng);
  Rng order(seed + 5);
  ChaosSetup s{build_framework(real, order), {}, BandwidthClasses({1.0})};
  s.predicted = s.fw.predicted_distances();
  const double dmax = s.predicted.max_distance();
  const double c = kDefaultTransformC;
  s.classes =
      BandwidthClasses({c / dmax, c / (dmax * 0.5), c / (dmax * 0.2)}, c);
  return s;
}

BandwidthClasses classes_for(const DistanceMatrix& predicted) {
  const double dmax = predicted.max_distance();
  const double c = kDefaultTransformC;
  return BandwidthClasses({c / dmax, c / (dmax * 0.5), c / (dmax * 0.2)}, c);
}

/// Asserts the async tables match the synchronous fixpoint computed over the
/// same (tree, predicted, classes) triple — exact equality, since both paths
/// call the shared compute_prop_* kernels.
void expect_ground_truth(const AsyncOverlay& async, const AnchorTree& tree,
                         const DistanceMatrix& predicted,
                         const BandwidthClasses& classes, std::size_t n_cut,
                         const std::string& context) {
  SystemOptions sync_options;
  sync_options.n_cut = n_cut;
  DecentralizedClusterSystem sync(tree, predicted, classes, sync_options);
  sync.run_to_convergence();
  ASSERT_TRUE(sync.converged()) << context;
  auto sorted = [](std::vector<NodeId> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  for (NodeId x : tree.bfs_order()) {
    const OverlayNode& sync_node = sync.node(x);
    ASSERT_TRUE(async.nodes().count(x)) << context << " missing x=" << x;
    const OverlayNode& async_node = async.nodes().at(x);
    for (NodeId m : sync_node.neighbors) {
      EXPECT_EQ(sorted(async_node.aggr_node.at(m)),
                sorted(sync_node.aggr_node.at(m)))
          << context << " x=" << x << " m=" << m;
      EXPECT_EQ(async_node.aggr_crt.at(m), sync_node.aggr_crt.at(m))
          << context << " x=" << x << " m=" << m;
    }
    EXPECT_EQ(async_node.aggr_crt.at(x), sync_node.aggr_crt.at(x))
        << context << " x=" << x;
  }
}

TEST(Chaos, DropSweepReachesGroundTruth) {
  const std::size_t n = chaos_n();
  for (double drop : {0.0, 0.1, 0.3}) {
    for (std::uint64_t seed = 1; seed <= chaos_seeds(); ++seed) {
      ChaosSetup s = make_setup(n, seed);
      FaultPlan plan(seed * 1000 + 7);
      plan.set_default_faults({.drop_prob = drop,
                               .duplicate_prob = 0.05,
                               .jitter_max = 0.02});
      AsyncOverlayOptions options;
      options.n_cut = 5;
      options.faults = &plan;
      AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options,
                         seed + 400);
      EventEngine engine;
      // Generous horizon: the lossier the link, the more periods a table
      // entry may need to cross it (retries are capped, periods are not).
      async.run_for(engine,
                    (8.0 + 24.0 * drop) * (s.fw.anchors.diameter() + 2));
      std::ostringstream context;
      context << "drop=" << drop << " seed=" << seed;
      expect_ground_truth(async, s.fw.anchors, s.predicted, s.classes,
                          options.n_cut, context.str());
      if (drop > 0.0) {
        EXPECT_GT(engine.metrics().dropped(), 0u);
      }
    }
  }
}

TEST(Chaos, CrashRecoverScheduleReachesGroundTruth) {
  const std::size_t n = std::max<std::size_t>(chaos_n(), 14);
  for (std::uint64_t seed = 1; seed <= chaos_seeds(); ++seed) {
    ChaosSetup s = make_setup(n, seed + 50);
    FaultPlan plan(seed * 31 + 5);
    plan.set_default_faults({.drop_prob = 0.1});
    // <= 10% of nodes crash and later recover, at staggered windows.
    const std::size_t crashers = std::max<std::size_t>(1, n / 10);
    const auto order = s.fw.anchors.bfs_order();
    for (std::size_t i = 0; i < crashers; ++i) {
      plan.add_crash(order[1 + i], /*down_at=*/4.0 + 2.0 * i,
                     /*up_at=*/12.0 + 2.0 * i);
    }
    AsyncOverlayOptions options;
    options.n_cut = 5;
    options.faults = &plan;
    AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options,
                       seed + 900);
    EventEngine engine;
    async.run_for(engine, 20.0 + 10.0 * (s.fw.anchors.diameter() + 2));
    EXPECT_EQ(async.down_count(), 0u);  // everyone recovered
    std::ostringstream context;
    context << "crash/recover seed=" << seed;
    expect_ground_truth(async, s.fw.anchors, s.predicted, s.classes,
                        options.n_cut, context.str());
  }
}

TEST(Chaos, ChurnReconvergesOnSurvivors) {
  // Perfect tree metric: the measurement matrix itself is the (churn-stable)
  // predicted matrix, and maintenance keeps every alive pair exactly
  // embedded — so after any join/leave sequence the synchronous system over
  // the repaired tree is the exact ground truth for the survivors.
  const std::size_t universe = 22;
  for (std::uint64_t seed = 1; seed <= chaos_seeds(); ++seed) {
    Rng rng(seed + 300);
    const DistanceMatrix real = testutil::random_tree_metric(universe, rng);
    const BandwidthClasses classes = classes_for(real);
    FrameworkMaintainer maintainer(&real);
    for (NodeId h = 0; h < universe - 4; ++h) maintainer.join(h);

    AsyncOverlayOptions options;
    options.n_cut = 5;
    options.gossip_period = 1.0;
    AsyncOverlay async(&maintainer.anchors(), &real, &classes, options,
                       seed + 60);
    EventEngine engine;
    async.start(engine);
    ChurnDriver churn(&maintainer, &async);
    const NodeId mid = maintainer.alive()[maintainer.alive().size() / 2];
    churn.schedule(engine,
                   {ChurnEvent::leave(2.0, 3),
                    ChurnEvent::join(3.5, universe - 4),
                    ChurnEvent::leave(5.0, mid == 3 ? 4 : mid),
                    ChurnEvent::join(6.5, universe - 3),
                    ChurnEvent::join(8.0, 3),      // rejoin after leaving
                    ChurnEvent::leave(9.5, 7)});
    engine.run_until(10.0);
    EXPECT_EQ(churn.applied(), 6u);
    // Quiet period: gossip re-converges on the post-churn membership.
    async.run_for(engine, 8.0 * (maintainer.anchors().diameter() + 2));
    std::ostringstream context;
    context << "churn seed=" << seed;
    expect_ground_truth(async, maintainer.anchors(), real, classes,
                        options.n_cut, context.str());
  }
}

TEST(Chaos, RunsAreDeterministicPerSeed) {
  auto fingerprint = [](std::uint64_t seed) {
    ChaosSetup s = make_setup(12, 77);
    FaultPlan plan(seed);
    plan.set_default_faults({.drop_prob = 0.2,
                             .duplicate_prob = 0.1,
                             .jitter_max = 0.05});
    plan.add_crash(s.fw.anchors.bfs_order()[1], 3.0, 9.0);
    AsyncOverlayOptions options;
    options.faults = &plan;
    AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options,
                       seed + 1);
    EventEngine engine;
    async.run_for(engine, 40.0);
    std::ostringstream out;
    out << engine.metrics().dropped() << '/' << engine.metrics().duplicated()
        << '/' << engine.metrics().retried() << '/'
        << engine.metrics().suspected() << '/' << async.gossip_rounds() << '/'
        << async.last_change();
    std::vector<NodeId> hosts = s.fw.anchors.bfs_order();
    for (NodeId x : hosts) {
      const OverlayNode& node = async.nodes().at(x);
      for (NodeId m : hosts) {
        auto it = node.aggr_node.find(m);
        if (it == node.aggr_node.end()) continue;
        auto sorted = it->second;
        std::sort(sorted.begin(), sorted.end());
        out << '|' << x << ':' << m;
        for (NodeId d : sorted) out << ',' << d;
      }
    }
    return out.str();
  };
  EXPECT_EQ(fingerprint(5), fingerprint(5));
  EXPECT_NE(fingerprint(5), fingerprint(6));
}

TEST(Chaos, ConvergenceMonitorRecordsTimeToConvergenceUnderDrop) {
  // The DropSweep assertion ("eventually matches the fixpoint"), upgraded
  // to a recorded distribution: a ConvergenceProbe + ConvergenceMonitor
  // sample the run on sim time, so time-to-convergence under {0,10,30}%
  // drop lands in bcc.conv.time_to_convergence_ms instead of being a
  // pass/fail afterthought. BCC_CHAOS_CONV_OUT=FILE appends one line per
  // (drop, seed) for offline plotting.
  const std::size_t n = chaos_n();
  const char* out_path = std::getenv("BCC_CHAOS_CONV_OUT");
  std::FILE* out = (out_path && *out_path) ? std::fopen(out_path, "a")
                                           : nullptr;
  for (double drop : {0.0, 0.1, 0.3}) {
    for (std::uint64_t seed = 1; seed <= chaos_seeds(); ++seed) {
      ChaosSetup s = make_setup(n, seed);
      FaultPlan plan(seed * 1000 + 7);
      plan.set_default_faults({.drop_prob = drop,
                               .duplicate_prob = 0.05,
                               .jitter_max = 0.02});
      AsyncOverlayOptions options;
      options.n_cut = 5;
      options.faults = &plan;
      AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options,
                         seed + 400);
      EventEngine engine;
      async.start(engine);
      const double horizon =
          (8.0 + 24.0 * drop) * (s.fw.anchors.diameter() + 2);
      obs::Registry registry;
      ConvergenceProbe probe(&async, &s.fw.anchors, &s.predicted, &s.classes,
                             options.n_cut, &engine);
      obs::ConvergenceMonitor monitor(&registry, probe.sampler());
      ConvergenceProbe::schedule_sampling(engine, monitor, /*period=*/0.5,
                                          horizon);
      async.run_for(engine, horizon);
      monitor.sample();  // verdict at the horizon

      std::ostringstream context;
      context << "drop=" << drop << " seed=" << seed;
      EXPECT_TRUE(monitor.converged()) << context.str();
      EXPECT_GE(monitor.converged_at(), 0.0) << context.str();
      const obs::RegistrySnapshot snap = registry.snapshot();
      const obs::Histogram::Snapshot* ttc =
          snap.histogram("bcc.conv.time_to_convergence_ms");
      ASSERT_NE(ttc, nullptr) << context.str();
      EXPECT_GE(ttc->count, 1u) << context.str();
      const obs::Histogram::Snapshot* per_node =
          snap.histogram("bcc.conv.node_convergence_ms");
      ASSERT_NE(per_node, nullptr) << context.str();
      EXPECT_EQ(per_node->count, s.fw.anchors.bfs_order().size())
          << context.str();
      EXPECT_GT(snap.counter_value("bcc.conv.samples"), 1u) << context.str();
      if (out) {
        std::fprintf(out, "drop=%.2f seed=%llu ttc_ms=%.0f\n", drop,
                     static_cast<unsigned long long>(seed),
                     monitor.converged_at() * 1000.0);
      }
    }
  }
  if (out) std::fclose(out);
}

TEST(Chaos, ThirtyPercentDropStillExportsCausalCrossNodeChain) {
  // The acceptance check for cross-node tracing: under 30% drop (plus dup
  // and jitter), the exported trace must still contain at least one intact
  // causal chain send_exchange --(message)--> recv_exchange -->
  // apply_exchange, with the receive span remote-parented on the sender's
  // span on a DIFFERENT simulated node, and the Chrome export must bind
  // them with flow arrows.
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_capacity(1 << 16);
  tracer.enable(obs::SpanCategory::kGossip);

  ChaosSetup s = make_setup(chaos_n(), 21);
  FaultPlan plan(2107);
  plan.set_default_faults({.drop_prob = 0.3,
                           .duplicate_prob = 0.05,
                           .jitter_max = 0.02});
  AsyncOverlayOptions options;
  options.n_cut = 5;
  options.faults = &plan;
  AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options, 422);
  EventEngine engine;
  async.run_for(engine,
                (8.0 + 24.0 * 0.3) * (s.fw.anchors.diameter() + 2));

  const std::vector<obs::SpanRecord> spans = tracer.snapshot();
  tracer.enable(obs::SpanCategory::kGossip, false);
  tracer.clear();
  tracer.set_capacity(obs::Tracer::kDefaultCapacity);

  std::map<std::uint64_t, const obs::SpanRecord*> by_id;
  for (const obs::SpanRecord& sp : spans) by_id[sp.id] = &sp;
  std::size_t chains = 0;
  for (const obs::SpanRecord& apply : spans) {
    if (std::string(apply.name) != "apply_exchange") continue;
    auto recv_it = by_id.find(apply.parent);
    if (recv_it == by_id.end()) continue;
    const obs::SpanRecord& recv = *recv_it->second;
    if (std::string(recv.name) != "recv_exchange" || !recv.remote_parent) {
      continue;
    }
    auto send_it = by_id.find(recv.parent);
    if (send_it == by_id.end()) continue;
    const obs::SpanRecord& send = *send_it->second;
    if (std::string(send.name) != "send_exchange") continue;
    // Causal chain: same trace, one network hop, across two distinct nodes,
    // with sim-time ordering send.begin <= recv.begin <= apply.begin.
    EXPECT_EQ(send.trace_id, recv.trace_id);
    EXPECT_EQ(recv.trace_id, apply.trace_id);
    EXPECT_EQ(send.hop + 1, recv.hop);
    EXPECT_NE(send.node, recv.node);
    EXPECT_NE(send.node, obs::kNoSpanNode);
    EXPECT_NE(recv.node, obs::kNoSpanNode);
    EXPECT_LE(send.sim_begin, recv.sim_begin);
    EXPECT_LE(recv.sim_begin, apply.sim_begin);
    ++chains;
  }
  EXPECT_GE(chains, 1u) << "no intact send->recv->apply chain in "
                        << spans.size() << " spans";

  const std::string chrome = obs::chrome_trace_json(spans);
  EXPECT_EQ(chrome.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_NE(chrome.find("\"ph\":\"s\",\"name\":\"causal\""),
            std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"f\",\"bp\":\"e\",\"name\":\"causal\""),
            std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"recv_exchange\""), std::string::npos);
}

TEST(Chaos, DegradedServingIsFlaggedAndWellFormed) {
  ChaosSetup s = make_setup(16, 91);
  AsyncOverlayOptions options;
  options.n_cut = 100;
  AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options, 92);
  EventEngine engine;
  const double horizon = 4.0 * (s.fw.anchors.diameter() + 2);
  async.run_for(engine, horizon);
  ASSERT_TRUE(async.healthy());

  SystemOptions sync_options;
  sync_options.n_cut = 100;
  DecentralizedClusterSystem sync(s.fw.anchors, s.predicted, s.classes,
                                  sync_options);
  sync.run_to_convergence();
  QueryServiceOptions service_options;
  service_options.threads = 2;
  QueryService service(sync, service_options);

  // Knock two nodes out and serve from a snapshot taken mid-disruption.
  async.crash(s.fw.anchors.bfs_order()[1]);
  async.crash(s.fw.anchors.bfs_order()[2]);
  async.run_for(engine, 2.0);
  ASSERT_FALSE(async.healthy());
  service.refresh(*snapshot_of(async, s.predicted, s.classes,
                               sync_options.find_options));
  for (NodeId start : s.fw.anchors.bfs_order()) {
    const QueryResult r = service.submit(QueryRequest::at_class(start, 4, 0));
    EXPECT_TRUE(r.degraded) << "start=" << start;
    // Degraded answers stay well-formed: a valid status, and any cluster
    // returned has exactly k members satisfying the class in predicted
    // space (Algorithm 1 guarantees that regardless of table completeness).
    if (r.found()) {
      EXPECT_EQ(r.cluster.size(), 4u);
      EXPECT_TRUE(cluster_satisfies(s.predicted, r.cluster, 4,
                                    s.classes.distance_at(0)));
    } else {
      EXPECT_EQ(r.status, QueryStatus::kNotFound);
    }
  }
  // Argument errors are degraded-flagged too (they reflect this snapshot).
  EXPECT_TRUE(service.submit(QueryRequest::at_class(0, 1, 0)).degraded);

  // Heal: recover both, let gossip refill the tables, re-snapshot.
  async.recover(s.fw.anchors.bfs_order()[1]);
  async.recover(s.fw.anchors.bfs_order()[2]);
  async.run_for(engine, horizon);
  ASSERT_TRUE(async.healthy());
  service.refresh(*snapshot_of(async, s.predicted, s.classes,
                               sync_options.find_options));
  const QueryResult healed = service.submit(QueryRequest::at_class(0, 4, 0));
  EXPECT_FALSE(healed.degraded);
  EXPECT_TRUE(healed.found());
}

}  // namespace
}  // namespace bcc
