#include "core/system.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace bcc {
namespace {

struct SystemParts {
  Framework fw;
  DistanceMatrix predicted;
};

SystemParts build_parts(std::size_t n, std::uint64_t seed, double sigma = 0.0) {
  Rng rng(seed);
  const DistanceMatrix real =
      sigma == 0.0 ? testutil::random_tree_metric(n, rng)
                   : testutil::noisy_tree_metric(n, rng, sigma);
  Rng order_rng(seed + 5);
  SystemParts parts{build_framework(real, order_rng), {}};
  parts.predicted = parts.fw.predicted_distances();
  return parts;
}

BandwidthClasses spanning_classes(const DistanceMatrix& d,
                                  double c = kDefaultTransformC) {
  const double dmax = d.max_distance();
  return BandwidthClasses({c / dmax, c / (dmax * 0.4), c / (dmax * 0.1)}, c);
}

TEST(System, ConstructionValidatesSizes) {
  auto parts = build_parts(10, 1);
  DistanceMatrix wrong(9);
  EXPECT_THROW(DecentralizedClusterSystem(parts.fw.anchors, wrong,
                                          spanning_classes(parts.predicted)),
               ContractViolation);
}

TEST(System, ConvergesAndReportsCycles) {
  auto parts = build_parts(20, 2);
  DecentralizedClusterSystem sys(parts.fw.anchors, parts.predicted,
                                 spanning_classes(parts.predicted));
  EXPECT_FALSE(sys.converged());
  const std::size_t cycles = sys.run_to_convergence();
  EXPECT_TRUE(sys.converged());
  EXPECT_GT(cycles, 0u);
  EXPECT_EQ(sys.cycles_executed(), cycles);
}

TEST(System, SecondRunIsNoOp) {
  auto parts = build_parts(15, 3);
  DecentralizedClusterSystem sys(parts.fw.anchors, parts.predicted,
                                 spanning_classes(parts.predicted));
  sys.run_to_convergence();
  EXPECT_EQ(sys.run_to_convergence(), 0u);
}

TEST(System, SizeAndIntrospection) {
  auto parts = build_parts(12, 4);
  DecentralizedClusterSystem sys(parts.fw.anchors, parts.predicted,
                                 spanning_classes(parts.predicted));
  EXPECT_EQ(sys.size(), 12u);
  EXPECT_EQ(sys.overlay().size(), 12u);
  EXPECT_EQ(sys.predicted().size(), 12u);
  EXPECT_NO_THROW(sys.node(5));
  EXPECT_THROW(sys.node(42), ContractViolation);
}

TEST(System, MetricsAccumulateAcrossGossip) {
  auto parts = build_parts(12, 5);
  DecentralizedClusterSystem sys(parts.fw.anchors, parts.predicted,
                                 spanning_classes(parts.predicted));
  sys.run_to_convergence();
  EXPECT_GT(sys.metrics().total_messages(), 0u);
}

TEST(System, ExplicitCycleBudgetRespected) {
  auto parts = build_parts(30, 6);
  SystemOptions options;
  options.max_cycles = 1;  // deliberately too few to converge
  DecentralizedClusterSystem sys(parts.fw.anchors, parts.predicted,
                                 spanning_classes(parts.predicted), options);
  EXPECT_EQ(sys.run_to_convergence(), 1u);
}

TEST(System, RefreshReconvergesAfterMetricChange) {
  // Dynamic clustering: scale the whole metric (network slows down) and
  // verify the system re-aggregates and answers match the new metric.
  auto parts = build_parts(16, 7);
  const BandwidthClasses classes = spanning_classes(parts.predicted);
  SystemOptions options;
  options.n_cut = 100;
  DecentralizedClusterSystem sys(parts.fw.anchors, parts.predicted, classes,
                                 options);
  sys.run_to_convergence();
  // Strictest class currently admits some cluster size s0.
  const std::size_t strictest = classes.size() - 1;
  std::size_t s0 = sys.node(0).aggr_crt.at(0)[strictest];

  // Double every distance: the strictest class should now admit fewer (or
  // equal) nodes, and the system must notice after refresh.
  DistanceMatrix slower(parts.predicted.size());
  for (NodeId u = 0; u < slower.size(); ++u) {
    for (NodeId v = u + 1; v < slower.size(); ++v) {
      slower.set(u, v, 2.0 * parts.predicted.at(u, v));
    }
  }
  const std::size_t cycles = sys.refresh(slower);
  EXPECT_GT(cycles, 0u);
  EXPECT_TRUE(sys.converged());
  const std::size_t s1 = sys.node(0).aggr_crt.at(0)[strictest];
  EXPECT_LE(s1, s0);
  // And queries still return valid clusters under the *new* metric.
  const auto r = sys.query(QueryRequest::at_class(0, 2, 0));
  if (r.found()) {
    EXPECT_TRUE(cluster_satisfies(sys.predicted(), r.cluster, 2,
                                  classes.distance_at(0)));
  }
}

TEST(System, RefreshValidatesSize) {
  auto parts = build_parts(8, 8);
  DecentralizedClusterSystem sys(parts.fw.anchors, parts.predicted,
                                 spanning_classes(parts.predicted));
  sys.run_to_convergence();
  EXPECT_THROW(sys.refresh(DistanceMatrix(9)), ContractViolation);
}

TEST(System, WorksOnNoisyPredictions) {
  // End-to-end on a framework built from noisy measurements: predicted
  // distances are still a tree metric, so everything stays consistent.
  auto parts = build_parts(25, 9, /*sigma=*/0.3);
  DecentralizedClusterSystem sys(parts.fw.anchors, parts.predicted,
                                 spanning_classes(parts.predicted));
  sys.run_to_convergence();
  const auto r = sys.query(QueryRequest::at_class(0, 3, 1));
  if (r.found()) {
    EXPECT_TRUE(cluster_satisfies(sys.predicted(), r.cluster, 3,
                                  sys.classes().distance_at(1)));
  }
}

TEST(System, SingletonSystem) {
  AnchorTree t;
  t.set_root(0);
  DecentralizedClusterSystem sys(t, DistanceMatrix(1),
                                 BandwidthClasses({10.0}));
  sys.run_to_convergence();
  EXPECT_TRUE(sys.converged());
  const auto r = sys.query(QueryRequest::at_class(0, 2, 0));
  EXPECT_FALSE(r.found());
}

}  // namespace
}  // namespace bcc
