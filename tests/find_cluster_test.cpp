#include "core/find_cluster.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace bcc {
namespace {

using testutil::iota_universe;

TEST(FindCluster, SimpleTightGroup) {
  // 0,1,2 mutually close; 3 far from everything.
  DistanceMatrix d(4);
  d.set(0, 1, 1.0);
  d.set(0, 2, 1.5);
  d.set(1, 2, 2.0);
  d.set(0, 3, 50.0);
  d.set(1, 3, 51.0);
  d.set(2, 3, 52.0);
  const auto c = find_cluster(d, 3, 2.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(cluster_satisfies(d, *c, 3, 2.0));
}

TEST(FindCluster, NoClusterWhenConstraintTooTight) {
  DistanceMatrix d(3, 5.0);
  EXPECT_FALSE(find_cluster(d, 2, 4.9).has_value());
  EXPECT_TRUE(find_cluster(d, 2, 5.0).has_value());  // boundary inclusive
}

TEST(FindCluster, KLargerThanUniverseFails) {
  DistanceMatrix d(3, 1.0);
  EXPECT_FALSE(find_cluster(d, 4, 100.0).has_value());
}

TEST(FindCluster, ValidatesArguments) {
  DistanceMatrix d(3, 1.0);
  EXPECT_THROW(find_cluster(d, 1, 1.0), ContractViolation);   // k >= 2
  EXPECT_THROW(find_cluster(d, 2, -1.0), ContractViolation);  // l >= 0
  const std::vector<NodeId> bad = {0, 9};
  EXPECT_THROW(find_cluster(d, bad, 2, 1.0), ContractViolation);
}

TEST(FindCluster, SubsetUniverseRestrictsSearch) {
  DistanceMatrix d(4);
  d.set(0, 1, 1.0);
  d.set(0, 2, 1.0);
  d.set(1, 2, 1.0);
  d.set(0, 3, 1.0);
  d.set(1, 3, 1.0);
  d.set(2, 3, 1.0);
  const std::vector<NodeId> universe = {0, 3};
  const auto c = find_cluster(d, universe, 2, 1.0);
  ASSERT_TRUE(c.has_value());
  for (NodeId x : *c) {
    EXPECT_TRUE(x == 0 || x == 3);
  }
  EXPECT_FALSE(find_cluster(d, universe, 3, 1.0).has_value());
}

TEST(FindCluster, ReturnedNodesAreDistinct) {
  Rng rng(1);
  const DistanceMatrix d = testutil::random_tree_metric(20, rng);
  std::vector<double> sorted = d.pair_values();
  std::sort(sorted.begin(), sorted.end());
  const double l = sorted[sorted.size() / 2];
  const auto c = find_cluster(d, 5, l);
  if (c) {
    auto members = *c;
    std::sort(members.begin(), members.end());
    EXPECT_EQ(std::adjacent_find(members.begin(), members.end()), members.end());
  }
}

class TreeMetricOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeMetricOracle, MaxClusterSizeMatchesBruteForceOnTreeMetrics) {
  // Theorem 3.1 in executable form: on tree metrics the polynomial algorithm
  // finds exactly the max clique of the thresholded graph.
  Rng rng(GetParam());
  const std::size_t n = 6 + rng.below(10);
  const DistanceMatrix d = testutil::random_tree_metric(n, rng);
  const auto universe = iota_universe(n);
  const auto values = d.pair_values();
  for (double q : {0.1, 0.3, 0.5, 0.8}) {
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    const double l = sorted[static_cast<std::size_t>(q * (sorted.size() - 1))];
    EXPECT_EQ(max_cluster_size(d, universe, l),
              max_clique_bruteforce(d, universe, l))
        << "n=" << n << " l=" << l;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TreeMetricOracle,
                         ::testing::Range<std::uint64_t>(1, 31));

class ClusterValidity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterValidity, OutputAlwaysSatisfiesConstraintsEvenOnNoisyMetrics) {
  // With verify_diameter on, returned clusters satisfy (k, l) under the
  // *input* metric even when it violates 4PC.
  Rng rng(GetParam() + 500);
  const DistanceMatrix d = testutil::noisy_tree_metric(18, rng, 0.5);
  const auto values = d.pair_values();
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t k : {2ul, 4ul, 7ul}) {
    for (double q : {0.2, 0.5, 0.9}) {
      const double l = sorted[static_cast<std::size_t>(q * (sorted.size() - 1))];
      const auto c = find_cluster(d, k, l);
      if (c) {
        EXPECT_TRUE(cluster_satisfies(d, *c, k, l));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClusterValidity,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(FindCluster, CompletenessOnTreeMetrics) {
  // If the brute-force oracle says a k-cluster exists, Algorithm 1 finds one.
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Rng trial_rng = rng.split(trial);
    const DistanceMatrix d = testutil::random_tree_metric(12, trial_rng);
    const auto universe = iota_universe(12);
    std::vector<double> sorted = d.pair_values();
    std::sort(sorted.begin(), sorted.end());
    const double l = sorted[sorted.size() / 2];
    const std::size_t best = max_clique_bruteforce(d, universe, l);
    for (std::size_t k = 2; k <= best; ++k) {
      EXPECT_TRUE(find_cluster(d, k, l).has_value()) << "k=" << k;
    }
    if (best >= 2) {
      EXPECT_FALSE(find_cluster(d, best + 1, l).has_value());
    }
  }
}

TEST(MaxCluster, SingletonWhenNoPairFits) {
  DistanceMatrix d(3, 10.0);
  const auto universe = iota_universe(3);
  EXPECT_EQ(max_cluster_size(d, universe, 1.0), 1u);
  const Cluster c = max_cluster(d, universe, 1.0);
  EXPECT_EQ(c.size(), 1u);
}

TEST(MaxCluster, EmptyUniverse) {
  DistanceMatrix d(3, 1.0);
  const std::vector<NodeId> empty;
  EXPECT_EQ(max_cluster_size(d, empty, 1.0), 0u);
  EXPECT_TRUE(max_cluster(d, empty, 1.0).empty());
}

TEST(MaxCluster, MonotoneInL) {
  Rng rng(7);
  const DistanceMatrix d = testutil::random_tree_metric(15, rng);
  const auto universe = iota_universe(15);
  std::size_t prev = 0;
  for (double l = 0.0; l <= d.max_distance() + 1.0; l += d.max_distance() / 8) {
    const std::size_t size = max_cluster_size(d, universe, l);
    EXPECT_GE(size, prev);
    prev = size;
  }
  EXPECT_EQ(prev, 15u);  // at l >= diameter, everything clusters
}

TEST(MaxClusterSizesForClasses, MatchesPerClassComputation) {
  Rng rng(8);
  const DistanceMatrix d = testutil::random_tree_metric(14, rng);
  const auto universe = iota_universe(14);
  std::vector<double> classes;
  for (double l = 0.5; l < d.max_distance() * 1.2; l *= 1.7) {
    classes.push_back(l);
  }
  const auto sizes = max_cluster_sizes_for_classes(d, universe, classes);
  ASSERT_EQ(sizes.size(), classes.size());
  for (std::size_t i = 0; i < classes.size(); ++i) {
    EXPECT_EQ(sizes[i], max_cluster_size(d, universe, classes[i]))
        << "class " << i;
  }
}

TEST(MaxClusterSizesForClasses, UnsortedClassesHandled) {
  Rng rng(9);
  const DistanceMatrix d = testutil::random_tree_metric(10, rng);
  const auto universe = iota_universe(10);
  const std::vector<double> classes = {100.0, 0.1, 5.0};
  const auto sizes = max_cluster_sizes_for_classes(d, universe, classes);
  EXPECT_EQ(sizes[0], max_cluster_size(d, universe, 100.0));
  EXPECT_EQ(sizes[1], max_cluster_size(d, universe, 0.1));
  EXPECT_EQ(sizes[2], max_cluster_size(d, universe, 5.0));
}

TEST(ClusterSatisfies, RejectsBadClusters) {
  DistanceMatrix d(4);
  d.set(0, 1, 1.0);
  d.set(0, 2, 5.0);
  d.set(1, 2, 5.0);
  d.set(0, 3, 1.0);
  d.set(1, 3, 1.0);
  d.set(2, 3, 1.0);
  EXPECT_TRUE(cluster_satisfies(d, {0, 1}, 2, 1.0));
  EXPECT_FALSE(cluster_satisfies(d, {0, 2}, 2, 1.0));    // too far
  EXPECT_FALSE(cluster_satisfies(d, {0, 1}, 3, 1.0));    // wrong size
  EXPECT_FALSE(cluster_satisfies(d, {0, 0}, 2, 1.0));    // duplicate
  EXPECT_FALSE(cluster_satisfies(d, {0, 9}, 2, 1.0));    // out of range
}

TEST(TightestCluster, MinimizesDiameterOnTreeMetrics) {
  Rng rng(40);
  for (int trial = 0; trial < 10; ++trial) {
    Rng trial_rng = rng.split(trial);
    const DistanceMatrix d = testutil::random_tree_metric(14, trial_rng);
    const auto universe = iota_universe(14);
    for (std::size_t k : {2ul, 4ul, 7ul}) {
      const auto c = tightest_cluster(d, universe, k);
      ASSERT_TRUE(c.has_value());
      const double diam = d.diameter_of(*c);
      // No l below the achieved diameter admits a k-cluster.
      EXPECT_FALSE(find_cluster(d, universe, k, diam * (1.0 - 1e-9)))
          << "k=" << k;
      // And find_cluster at exactly this l succeeds.
      EXPECT_TRUE(find_cluster(d, universe, k, diam + 1e-9).has_value());
    }
  }
}

TEST(TightestCluster, PairCaseReturnsClosestPair) {
  Rng rng(41);
  const DistanceMatrix d = testutil::random_tree_metric(12, rng);
  const auto universe = iota_universe(12);
  const auto c = tightest_cluster(d, universe, 2);
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(d.at((*c)[0], (*c)[1]), d.min_distance());
}

TEST(TightestCluster, WholeUniverseHasMaximumDiameter) {
  Rng rng(42);
  const DistanceMatrix d = testutil::random_tree_metric(9, rng);
  const auto universe = iota_universe(9);
  const auto c = tightest_cluster(d, universe, 9);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(d.diameter_of(*c), d.max_distance(), 1e-12);
}

TEST(TightestCluster, TooLargeKFails) {
  DistanceMatrix d(3, 1.0);
  const auto universe = iota_universe(3);
  EXPECT_FALSE(tightest_cluster(d, universe, 4).has_value());
  EXPECT_THROW(tightest_cluster(d, universe, 1), ContractViolation);
}

TEST(TightestCluster, ValidOnNoisyMetrics) {
  Rng rng(43);
  const DistanceMatrix d = testutil::noisy_tree_metric(15, rng, 0.5);
  const auto universe = iota_universe(15);
  const auto c = tightest_cluster(d, universe, 5);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->size(), 5u);
  // Verification keeps the answer honest: the chosen nodes' diameter equals
  // (up to slack) the candidate pair distance that admitted them.
  EXPECT_TRUE(cluster_satisfies(d, *c, 5, d.diameter_of(*c)));
}

TEST(FindCluster, WholeUniverseClusterAtLargeL) {
  Rng rng(10);
  const DistanceMatrix d = testutil::random_tree_metric(9, rng);
  const auto c = find_cluster(d, 9, d.max_distance());
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->size(), 9u);
}

}  // namespace
}  // namespace bcc
