#include "core/exhaustive_baseline.h"

#include <gtest/gtest.h>

#include "core/find_cluster.h"
#include "test_util.h"

namespace bcc {
namespace {

using testutil::iota_universe;

TEST(ExhaustiveBaseline, FindsObviousCluster) {
  DistanceMatrix d(5, 100.0);
  d.set(0, 1, 1.0);
  d.set(0, 2, 1.0);
  d.set(1, 2, 1.0);
  const auto universe = iota_universe(5);
  const auto r = find_cluster_exhaustive(d, universe, 3, 1.0);
  ASSERT_TRUE(r.cluster.has_value());
  EXPECT_FALSE(r.exhausted_budget);
  EXPECT_TRUE(cluster_satisfies(d, *r.cluster, 3, 1.0));
}

TEST(ExhaustiveBaseline, ReportsNonExistenceWhenBudgetAllows) {
  DistanceMatrix d(4, 100.0);
  const auto universe = iota_universe(4);
  const auto r = find_cluster_exhaustive(d, universe, 2, 1.0);
  EXPECT_FALSE(r.cluster.has_value());
  EXPECT_FALSE(r.exhausted_budget);  // definitive "no"
}

TEST(ExhaustiveBaseline, AgreesWithBruteForceOracle) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    Rng trial_rng = rng.split(trial);
    const std::size_t n = 8 + trial_rng.below(8);
    const DistanceMatrix d = testutil::noisy_tree_metric(n, trial_rng, 0.5);
    const auto universe = iota_universe(n);
    std::vector<double> sorted = d.pair_values();
    std::sort(sorted.begin(), sorted.end());
    const double l = sorted[sorted.size() / 2];
    const std::size_t best = max_clique_bruteforce(d, universe, l);
    ExhaustiveOptions unlimited;
    unlimited.budget = 0;
    for (std::size_t k = 2; k <= best; ++k) {
      const auto r = find_cluster_exhaustive(d, universe, k, l, unlimited);
      EXPECT_TRUE(r.cluster.has_value()) << "k=" << k;
      if (r.cluster) {
        EXPECT_TRUE(cluster_satisfies(d, *r.cluster, k, l));
      }
    }
    const auto beyond =
        find_cluster_exhaustive(d, universe, best + 1, l, unlimited);
    EXPECT_FALSE(beyond.cluster.has_value());
    EXPECT_FALSE(beyond.exhausted_budget);
  }
}

TEST(ExhaustiveBaseline, TinyBudgetGivesUpOnHardInstances) {
  // A dense-but-not-quite graph with no k-cluster forces deep backtracking;
  // with a one-expansion budget the search must report exhaustion.
  Rng rng(2);
  const DistanceMatrix d = testutil::noisy_tree_metric(20, rng, 0.6);
  const auto universe = iota_universe(20);
  std::vector<double> sorted = d.pair_values();
  std::sort(sorted.begin(), sorted.end());
  const double l = sorted[3 * sorted.size() / 4];
  ExhaustiveOptions tiny;
  tiny.budget = 2;
  const auto r = find_cluster_exhaustive(d, universe, 15, l, tiny);
  if (!r.cluster.has_value()) {
    EXPECT_TRUE(r.exhausted_budget);  // "don't know", not "no"
  }
  EXPECT_LE(r.expansions, 3u);
}

TEST(ExhaustiveBaseline, BudgetMonotonicity) {
  // More budget never flips a found answer to not-found.
  Rng rng(3);
  const DistanceMatrix d = testutil::noisy_tree_metric(16, rng, 0.4);
  const auto universe = iota_universe(16);
  std::vector<double> sorted = d.pair_values();
  std::sort(sorted.begin(), sorted.end());
  const double l = sorted[sorted.size() / 2];
  ExhaustiveOptions small;
  small.budget = 50;
  ExhaustiveOptions big;
  big.budget = 0;
  for (std::size_t k : {3ul, 5ul, 8ul}) {
    const auto a = find_cluster_exhaustive(d, universe, k, l, small);
    const auto b = find_cluster_exhaustive(d, universe, k, l, big);
    if (a.cluster.has_value()) {
      EXPECT_TRUE(b.cluster.has_value());
    }
  }
}

TEST(ExhaustiveBaseline, KLargerThanUniverse) {
  DistanceMatrix d(3, 1.0);
  const auto universe = iota_universe(3);
  const auto r = find_cluster_exhaustive(d, universe, 4, 10.0);
  EXPECT_FALSE(r.cluster.has_value());
  EXPECT_FALSE(r.exhausted_budget);
  EXPECT_EQ(r.expansions, 0u);
}

TEST(ExhaustiveBaseline, Validation) {
  DistanceMatrix d(3, 1.0);
  const auto universe = iota_universe(3);
  EXPECT_THROW(find_cluster_exhaustive(d, universe, 1, 1.0),
               ContractViolation);
  EXPECT_THROW(find_cluster_exhaustive(d, universe, 2, -1.0),
               ContractViolation);
}

TEST(ExhaustiveBaseline, FeasibleInstancesResolveCheaply) {
  // The degree-ordering heuristic: when a big clique exists, it is found
  // with few expansions even in a large universe.
  Rng rng(4);
  DistanceMatrix d(60, 50.0);
  // Plant a 10-clique among nodes 0..9.
  for (NodeId u = 0; u < 10; ++u) {
    for (NodeId v = u + 1; v < 10; ++v) d.set(u, v, 1.0);
  }
  const auto universe = iota_universe(60);
  ExhaustiveOptions options;
  options.budget = 500;
  const auto r = find_cluster_exhaustive(d, universe, 10, 1.0, options);
  ASSERT_TRUE(r.cluster.has_value());
  EXPECT_LT(r.expansions, 100u);
}

}  // namespace
}  // namespace bcc
