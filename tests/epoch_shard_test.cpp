// The sharded query plane's moving parts: epoch-based snapshot reclamation
// (EpochDomain / EpochPtr), per-shard admission control, and QueryService's
// shedding behavior under synthetic overload. The Epoch* storm tests are the
// ones tools/sanitize.sh runs under ThreadSanitizer — they are the proof
// that a reader pinned on epoch E never touches a freed snapshot while
// refresh() swaps race it.
#include "serve/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/system.h"
#include "serve/query_service.h"
#include "test_util.h"
#include "tree/embedder.h"

namespace bcc {
namespace {

// ------------------------------------------------------------- EpochDomain

TEST(EpochDomain, PinAnnouncesCurrentEpochAndUnpinClears) {
  EpochDomain domain;
  const auto pin = domain.pin();
  EXPECT_EQ(pin.epoch, domain.epoch());
  EXPECT_EQ(domain.min_active(), pin.epoch);
  domain.unpin(pin);
  EXPECT_EQ(domain.min_active(), EpochDomain::kQuiescent);
}

TEST(EpochDomain, AdvanceRetiresTheOldEpoch) {
  EpochDomain domain;
  const std::uint64_t before = domain.epoch();
  EXPECT_EQ(domain.advance(), before);
  EXPECT_EQ(domain.epoch(), before + 1);
}

TEST(EpochDomain, MinActiveTracksTheOldestPinnedReader) {
  EpochDomain domain;
  const auto old_pin = domain.pin();  // pinned at epoch E
  domain.advance();
  const auto new_pin = domain.pin();  // pinned at E + 1
  EXPECT_EQ(domain.min_active(), old_pin.epoch);
  domain.unpin(old_pin);
  EXPECT_EQ(domain.min_active(), new_pin.epoch);
  domain.unpin(new_pin);
}

TEST(EpochDomain, ManyConcurrentPinsGetDistinctSlots) {
  EpochDomain domain;
  std::vector<EpochDomain::Pin> pins;
  for (std::size_t i = 0; i < EpochDomain::kSlots; ++i) {
    pins.push_back(domain.pin());
  }
  std::vector<bool> used(EpochDomain::kSlots, false);
  for (const auto& pin : pins) {
    EXPECT_FALSE(used[pin.slot]) << "slot " << pin.slot << " claimed twice";
    used[pin.slot] = true;
  }
  for (const auto& pin : pins) domain.unpin(pin);
}

// ---------------------------------------------------------------- EpochPtr

/// Counts live instances so reclamation (and nothing-but-reclamation) is
/// observable.
struct Counted {
  static std::atomic<int> live;
  int value;
  explicit Counted(int v) : value(v) { live.fetch_add(1); }
  ~Counted() { live.fetch_sub(1); }
};
std::atomic<int> Counted::live{0};

TEST(EpochPtr, ReadSeesTheLatestPublishedValue) {
  EpochPtr<Counted> ptr(std::make_shared<const Counted>(1));
  {
    const auto guard = ptr.read();
    EXPECT_EQ(guard->value, 1);
  }
  ptr.publish(std::make_shared<const Counted>(2));
  {
    const auto guard = ptr.read();
    EXPECT_EQ(guard->value, 2);
  }
  ptr.synchronize();
  EXPECT_EQ(Counted::live.load(), 1);  // only the current value survives
}

TEST(EpochPtr, PinnedReaderKeepsRetiredValueAlive) {
  EpochPtr<Counted> ptr(std::make_shared<const Counted>(1));
  {
    const auto guard = ptr.read();  // pins the epoch of value 1
    ptr.publish(std::make_shared<const Counted>(2));
    // The retired value must stay in limbo — this guard may still read it.
    EXPECT_EQ(ptr.limbo_size(), 1u);
    EXPECT_EQ(guard->value, 1);
    EXPECT_EQ(Counted::live.load(), 2);
  }
  ptr.synchronize();  // guard dropped: the grace period can end
  EXPECT_EQ(ptr.limbo_size(), 0u);
  EXPECT_EQ(Counted::live.load(), 1);
}

TEST(EpochPtr, CurrentSharedSurvivesLaterPublishes) {
  EpochPtr<Counted> ptr(std::make_shared<const Counted>(1));
  const auto retained = ptr.current_shared();
  ptr.publish(std::make_shared<const Counted>(2));
  ptr.synchronize();
  EXPECT_EQ(retained->value, 1);  // shared ownership outlives reclamation
  EXPECT_EQ(Counted::live.load(), 2);
}

// The TSan storm: readers continuously pin/deref/unpin while a writer
// publishes as fast as it can. Any use-after-reclaim is a data race on the
// Counted object (and usually a crash); TSan turns it into a hard failure.
// The value invariant — a reader never observes a value older than one it
// has already seen — checks publication ordering too.
TEST(EpochPtr, ReadersNeverSeeFreedSnapshotsDuringRefreshStorm) {
  EpochPtr<Counted> ptr(std::make_shared<const Counted>(0));
  constexpr int kPublishes = 400;
  constexpr std::size_t kReaders = 4;

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      int last_seen = -1;
      while (!stop.load(std::memory_order_acquire)) {
        const auto guard = ptr.read();
        const int v = guard->value;  // the race TSan would flag
        if (v < last_seen || v > kPublishes) {
          failed.store(true);
          return;
        }
        last_seen = v;
      }
    });
  }

  for (int i = 1; i <= kPublishes; ++i) {
    ptr.publish(std::make_shared<const Counted>(i));
  }
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  EXPECT_FALSE(failed.load());

  ptr.synchronize();
  EXPECT_EQ(Counted::live.load(), 1);
  EXPECT_EQ(ptr.limbo_size(), 0u);
  const auto guard = ptr.read();
  EXPECT_EQ(guard->value, kPublishes);
}

// ------------------------------------------------------------- QueryShard

TEST(QueryShardAdmission, DisabledOptionsAdmitEverything) {
  QueryShard shard;
  const AdmissionOptions off;  // defaults: no rate, no ceiling
  EXPECT_FALSE(off.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(shard.admit(off, QueryPriority::kLow, 0),
              AdmitDecision::kAdmitted);
  }
}

TEST(QueryShardAdmission, QueueLimitBoundsInflight) {
  QueryShard shard;
  AdmissionOptions options;
  options.queue_limit = 3;
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(shard.admit(options, QueryPriority::kHigh, 0),
              AdmitDecision::kAdmitted);
  }
  // Full: every priority is refused until someone finishes.
  EXPECT_EQ(shard.admit(options, QueryPriority::kHigh, 0),
            AdmitDecision::kShedQueueFull);
  EXPECT_EQ(shard.inflight(), 3u);
  shard.finish();
  EXPECT_EQ(shard.admit(options, QueryPriority::kNormal, 0),
            AdmitDecision::kAdmitted);
  EXPECT_EQ(shard.peak_inflight(), 3u);  // never exceeded the ceiling
}

TEST(QueryShardAdmission, TokenBucketRefillsAtRate) {
  QueryShard shard;
  AdmissionOptions options;
  options.rate_qps = 1000.0;  // 1 token per millisecond
  options.burst = 2.0;
  // Cold bucket holds `burst` tokens.
  EXPECT_EQ(shard.admit(options, QueryPriority::kNormal, 1000),
            AdmitDecision::kAdmitted);
  shard.finish();
  EXPECT_EQ(shard.admit(options, QueryPriority::kNormal, 1000),
            AdmitDecision::kAdmitted);
  shard.finish();
  EXPECT_EQ(shard.admit(options, QueryPriority::kNormal, 1000),
            AdmitDecision::kShedNoTokens);
  // 2ms later the bucket refilled back to burst.
  EXPECT_EQ(shard.admit(options, QueryPriority::kNormal, 3000),
            AdmitDecision::kAdmitted);
  shard.finish();
}

TEST(QueryShardAdmission, PriorityTiersShedLowFirst) {
  QueryShard shard;
  AdmissionOptions options;
  options.rate_qps = 1.0;  // effectively no refill within the test
  options.burst = 8.0;

  // kLow must leave a quarter-burst reserve: with 8 tokens it may take
  // 8 - (1 + 2) = 5-ish; drain with kLow until refused.
  int low_admitted = 0;
  while (shard.admit(options, QueryPriority::kLow, 0) ==
         AdmitDecision::kAdmitted) {
    shard.finish();
    ++low_admitted;
    ASSERT_LT(low_admitted, 100);
  }
  EXPECT_GT(low_admitted, 0);
  // kNormal still gets the reserve kLow had to leave behind.
  EXPECT_EQ(shard.admit(options, QueryPriority::kNormal, 0),
            AdmitDecision::kAdmitted);
  shard.finish();
  // Exhaust the bucket for kNormal too…
  while (shard.admit(options, QueryPriority::kNormal, 0) ==
         AdmitDecision::kAdmitted) {
    shard.finish();
  }
  // …kHigh may still run it into bounded debt, but not forever.
  int high_admitted = 0;
  while (shard.admit(options, QueryPriority::kHigh, 0) ==
         AdmitDecision::kAdmitted) {
    shard.finish();
    ++high_admitted;
    ASSERT_LT(high_admitted, 100);
  }
  EXPECT_GT(high_admitted, 0);
  EXPECT_LE(high_admitted, static_cast<int>(options.burst) + 1);
}

TEST(QueryShardCache, FreshEntriesInvalidatePerVersionStaleEntriesPersist) {
  QueryShard shard;
  const QueryKey key{3, 4, 0};
  QueryResult result;
  result.status = QueryStatus::kFound;
  result.cluster = {1, 2, 3, 4};
  result.snapshot_version = 1;

  shard.cache_store(key, 1, result, /*converged=*/true);
  QueryResult out;
  EXPECT_TRUE(shard.cache_lookup(key, 1, &out));
  EXPECT_EQ(out.cluster, result.cluster);
  // New snapshot version: the fresh entry is gone, the stale answer stays.
  EXPECT_FALSE(shard.cache_lookup(key, 2, &out));
  EXPECT_TRUE(shard.stale_lookup(key, &out));
  EXPECT_EQ(out.cluster, result.cluster);
  EXPECT_EQ(out.snapshot_version, 1u);
}

TEST(QueryShardCache, UnconvergedResultsNeverFeedTheStaleCache) {
  QueryShard shard;
  const QueryKey key{3, 4, 0};
  QueryResult result;
  result.status = QueryStatus::kFound;
  shard.cache_store(key, 1, result, /*converged=*/false);
  QueryResult out;
  EXPECT_TRUE(shard.cache_lookup(key, 1, &out));
  EXPECT_FALSE(shard.stale_lookup(key, &out));
}

// ----------------------------------------------- QueryService under overload

DecentralizedClusterSystem make_system(std::size_t n, std::size_t n_cut,
                                       std::uint64_t seed) {
  Rng rng(seed);
  const DistanceMatrix real = testutil::random_tree_metric(n, rng);
  Rng order_rng(seed + 77);
  Framework fw = build_framework(real, order_rng);
  DistanceMatrix predicted = fw.predicted_distances();
  const double c = kDefaultTransformC;
  const double dmax = predicted.max_distance();
  BandwidthClasses classes(
      {c / dmax, c / (dmax * 0.6), c / (dmax * 0.3), c / (dmax * 0.1)}, c);
  SystemOptions options;
  options.n_cut = n_cut;
  DecentralizedClusterSystem sys(std::move(fw.anchors), std::move(predicted),
                                 std::move(classes), options);
  sys.run_to_convergence();
  EXPECT_TRUE(sys.converged());
  return sys;
}

// Overload a single-shard service far past its token rate from several
// threads at once: every response must be kShed-or-valid, the shed ones
// well-formed degraded answers, and the shard's in-flight count must never
// exceed its bounded queue — the "no unbounded queue growth" guarantee.
TEST(QueryServiceOverload, ShedsInsteadOfQueueingUnboundedly) {
  auto sys = make_system(20, 8, 21);
  QueryServiceOptions options;
  options.threads = 2;
  options.shards = 1;  // every query contends on one admission controller
  options.admission.rate_qps = 2000.0;
  options.admission.burst = 16.0;
  options.admission.queue_limit = 4;
  QueryService service(sys, options);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kQueriesPerThread = 2000;
  std::atomic<bool> failed{false};
  std::vector<std::thread> hammers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    hammers.emplace_back([&, t] {
      Rng rng(300 + t);
      for (std::size_t i = 0; i < kQueriesPerThread; ++i) {
        const auto r = service.submit(QueryRequest::at_class(
            static_cast<NodeId>(rng.below(20)), 2 + rng.below(6),
            rng.below(4)));
        const bool valid =
            r.status == QueryStatus::kFound ||
            r.status == QueryStatus::kNotFound ||
            r.status == QueryStatus::kShed;
        if (!valid) failed.store(true);
        // Shed responses are well-formed degraded answers: flagged, and any
        // payload cluster came from a real memoized answer.
        if (r.status == QueryStatus::kShed && !r.degraded) failed.store(true);
      }
    });
  }
  for (auto& h : hammers) h.join();
  ASSERT_FALSE(failed.load());

  const auto admission = service.admission_stats();
  const auto stats = service.stats();
  const std::uint64_t total = kThreads * kQueriesPerThread;
  EXPECT_EQ(stats.total(), total);
  EXPECT_EQ(stats.count(QueryStatus::kShed), admission.shed_total());
  // ~8k submissions race a 2k qps bucket: overload must actually shed…
  EXPECT_GT(admission.shed_total(), 0u);
  // …while the bounded queue held: in-flight never passed queue_limit.
  EXPECT_LE(admission.peak_shard_inflight, options.admission.queue_limit);
  EXPECT_EQ(service.shards_inflight_now(), 0u);
}

TEST(QueryServiceOverload, ShedAnswersComeFromTheLastConvergedSnapshot) {
  auto sys = make_system(20, 100, 22);
  QueryServiceOptions options;
  options.threads = 1;
  options.shards = 1;
  QueryService service(sys, options);

  // Warm the stale cache on the converged snapshot (admission off).
  const auto req = QueryRequest::at_class(3, 4, 0);
  const auto warm = service.submit(req);
  ASSERT_TRUE(warm.found());

  // Now drain the bucket so the same query is shed: its payload must be the
  // warm answer, flagged shed + degraded, reporting the snapshot it came
  // from.
  QueryServiceOptions strangled = options;
  // rate ~0: the bucket never refills within the test.
  strangled.admission.rate_qps = 1e-6;
  strangled.admission.burst = 1.0;
  QueryService tight(sys, strangled);
  ASSERT_TRUE(tight.submit(req).found());  // consumes the only burst token
  const auto shed = tight.submit(req);
  EXPECT_EQ(shed.status, QueryStatus::kShed);
  EXPECT_TRUE(shed.degraded);
  EXPECT_EQ(shed.cluster, warm.cluster);  // the stale best-effort payload
  EXPECT_EQ(shed.snapshot_version, 1u);
  EXPECT_EQ(tight.admission_stats().shed_with_answer, 1u);

  // A key never memoized sheds with an empty (but well-formed) payload.
  const auto cold = tight.submit(QueryRequest::at_class(5, 3, 1));
  EXPECT_EQ(cold.status, QueryStatus::kShed);
  EXPECT_TRUE(cold.degraded);
  EXPECT_TRUE(cold.cluster.empty());
}

TEST(QueryServiceOverload, ExpiredDeadlinesAreShedNotServedLate) {
  auto sys = make_system(20, 100, 23);
  QueryServiceOptions options;
  options.threads = 2;
  QueryService service(sys, options);

  // An already-impossible deadline: by the time any batch worker picks the
  // request up, more than 0 microseconds have passed… but deadline 0 means
  // "none", so use 1us with an artificially slow path — a batch big enough
  // that later chunks observe queued time > 1us.
  std::vector<QueryRequest> batch;
  for (int i = 0; i < 512; ++i) {
    batch.push_back(
        QueryRequest::at_class(static_cast<NodeId>(i % 20), 4, 0)
            .with_deadline(1));
  }
  const auto results = service.submit_batch(batch);
  std::size_t shed = 0;
  for (const auto& r : results) {
    if (r.status == QueryStatus::kShed) {
      EXPECT_TRUE(r.degraded);
      ++shed;
    } else {
      EXPECT_TRUE(r.status == QueryStatus::kFound ||
                  r.status == QueryStatus::kNotFound);
    }
  }
  EXPECT_EQ(service.admission_stats().deadline_expired, shed);
  EXPECT_GT(shed, 0u);  // 512 queries cannot all start within 1us

  // Without a deadline nothing is shed (admission is off).
  for (auto& r : batch) r.deadline_micros = 0;
  for (const auto& r : service.submit_batch(batch)) {
    EXPECT_NE(r.status, QueryStatus::kShed);
  }
}

// Refresh storms against live batches, epoch edition: no snapshot a reader
// pinned may be reclaimed under it (TSan verifies), versions never roll
// back, and limbo drains once traffic stops.
TEST(QueryServiceEpoch, BatchesPinSnapshotsAcrossRefreshStorm) {
  auto sys = make_system(24, 8, 24);
  QueryServiceOptions options;
  options.threads = 2;
  options.shards = 4;
  QueryService service(sys, options);

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < 2; ++t) {
    submitters.emplace_back([&, t] {
      Rng rng(500 + t);
      std::uint64_t last_version = 0;
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<QueryRequest> batch;
        for (int i = 0; i < 64; ++i) {
          batch.push_back(QueryRequest::at_class(
              static_cast<NodeId>(rng.below(24)), 2 + rng.below(6),
              rng.below(4)));
        }
        const auto results = service.submit_batch(batch);
        // One batch = one snapshot; versions monotone across batches.
        const std::uint64_t v = results.front().snapshot_version;
        for (const auto& r : results) {
          if (r.snapshot_version != v) failed.store(true);
        }
        if (v < last_version) failed.store(true);
        last_version = v;
      }
    });
  }

  for (int swap = 0; swap < 20; ++swap) {
    SystemSnapshot next = *snapshot_of(sys);
    next.converged = (swap % 2 == 0);
    service.refresh(std::move(next));
  }
  stop.store(true, std::memory_order_release);
  for (auto& s : submitters) s.join();
  ASSERT_FALSE(failed.load());
  EXPECT_EQ(service.snapshot_version(), 21u);  // 1 + 20 refreshes

  // All readers gone: every retired snapshot's grace period can end.
  for (int i = 0; i < 1000 && service.snapshots_in_limbo() > 0; ++i) {
    service.submit(QueryRequest::at_class(0, 2, 0));  // reclaim piggybacks
    std::this_thread::yield();
  }
  service.refresh(sys);  // one more publish forces a reclaim pass
  EXPECT_LE(service.snapshots_in_limbo(), 1u);
}

}  // namespace
}  // namespace bcc
