#include "stats/summary.h"

#include <gtest/gtest.h>

#include "common/assert.h"

namespace bcc {
namespace {

TEST(Summary, MeanBasics) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{7.0}), 7.0);
}

TEST(Summary, StddevBasics) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(stddev(v), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{}), 0.0);
  const std::vector<double> constant = {3, 3, 3};
  EXPECT_DOUBLE_EQ(stddev(constant), 0.0);
}

TEST(Summary, PercentileEndpointsAndMedian) {
  const std::vector<double> v = {5, 1, 3, 2, 4};  // unsorted input
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Summary, PercentileInterpolates) {
  const std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Summary, PercentileValidation) {
  const std::vector<double> v = {1};
  EXPECT_THROW(percentile(v, -1.0), ContractViolation);
  EXPECT_THROW(percentile(v, 101.0), ContractViolation);
  EXPECT_THROW(percentile(std::vector<double>{}, 50.0), ContractViolation);
}

TEST(Summary, EmpiricalCdfMonotoneCoversRange) {
  const std::vector<double> v = {3, 1, 4, 1, 5, 9, 2, 6};
  const auto cdf = empirical_cdf(v, 5);
  ASSERT_EQ(cdf.size(), 5u);
  EXPECT_DOUBLE_EQ(cdf.front().x, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().x, 9.0);
  EXPECT_DOUBLE_EQ(cdf.back().y, 1.0);
  for (std::size_t i = 0; i + 1 < cdf.size(); ++i) {
    EXPECT_LE(cdf[i].x, cdf[i + 1].x);
    EXPECT_LE(cdf[i].y, cdf[i + 1].y);
  }
}

TEST(Summary, EmpiricalCdfSmallInput) {
  const std::vector<double> v = {2.0, 7.0};
  const auto cdf = empirical_cdf(v, 100);
  ASSERT_EQ(cdf.size(), 2u);
  EXPECT_DOUBLE_EQ(cdf[0].y, 0.5);
  EXPECT_DOUBLE_EQ(cdf[1].y, 1.0);
}

TEST(Summary, CdfAt) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(cdf_at(v, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf_at(v, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf_at(v, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf_at(std::vector<double>{}, 1.0), 0.0);
}

TEST(Summary, FractionWithin) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(fraction_within(v, 2, 4), 0.6);
  EXPECT_DOUBLE_EQ(fraction_within(v, 10, 20), 0.0);
  EXPECT_THROW(fraction_within(v, 4, 2), ContractViolation);
}

}  // namespace
}  // namespace bcc
