#include "core/query.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/system.h"
#include "test_util.h"
#include "tree/embedder.h"

namespace bcc {
namespace {

/// A converged decentralized system over a random perfect tree metric
/// (so predicted == real and Algorithm 1's guarantees are exact).
DecentralizedClusterSystem make_system(std::size_t n, std::size_t n_cut,
                                       std::uint64_t seed,
                                       double c = kDefaultTransformC) {
  Rng rng(seed);
  const DistanceMatrix real = testutil::random_tree_metric(n, rng);
  Rng order_rng(seed + 77);
  Framework fw = build_framework(real, order_rng);
  DistanceMatrix predicted = fw.predicted_distances();
  // Classes spanning the whole distance range.
  const double dmax = predicted.max_distance();
  BandwidthClasses classes(
      {c / dmax, c / (dmax * 0.6), c / (dmax * 0.3), c / (dmax * 0.1)}, c);
  SystemOptions options;
  options.n_cut = n_cut;
  DecentralizedClusterSystem sys(std::move(fw.anchors), std::move(predicted),
                                 std::move(classes), options);
  sys.run_to_convergence();
  EXPECT_TRUE(sys.converged());
  return sys;
}

TEST(Query, FindsClusterFromEveryEntryPoint) {
  auto sys = make_system(20, 100, 1);
  // n_cut large: every node sees everything, any feasible query succeeds
  // locally or after routing.
  const auto universe = testutil::iota_universe(20);
  const double l = sys.classes().distance_at(0);  // loosest class
  const std::size_t best = max_cluster_size(sys.predicted(), universe, l);
  ASSERT_GE(best, 2u);
  for (NodeId start = 0; start < 20; ++start) {
    const auto r = sys.query(QueryRequest::at_class(start, best, 0));
    EXPECT_TRUE(r.found()) << "start=" << start;
    EXPECT_TRUE(cluster_satisfies(sys.predicted(), r.cluster, best, l));
  }
}

TEST(Query, ResultsSatisfyConstraintsAtEveryClass) {
  auto sys = make_system(25, 8, 2);
  for (std::size_t cls = 0; cls < sys.classes().size(); ++cls) {
    const double l = sys.classes().distance_at(cls);
    for (std::size_t k : {2ul, 4ul, 8ul}) {
      for (NodeId start : {0ul, 7ul, 19ul}) {
        const auto r = sys.query(QueryRequest::at_class(start, k, cls));
        if (r.found()) {
          EXPECT_TRUE(cluster_satisfies(sys.predicted(), r.cluster, k, l))
              << "cls=" << cls << " k=" << k;
        }
      }
    }
  }
}

TEST(Query, ImpossibleQueryReturnsEmpty) {
  auto sys = make_system(15, 100, 3);
  const auto r = sys.query(QueryRequest::at_class(0, 16, 0));  // k > n
  EXPECT_FALSE(r.found());
  EXPECT_TRUE(r.cluster.empty());
}

TEST(Query, CrtPromiseIsAlwaysKept) {
  // If any node's CRT self entry (or direction entry) says k is achievable,
  // the query starting anywhere must succeed — the no-false-negatives side
  // of Algorithm 4 on converged state.
  auto sys = make_system(22, 6, 4);
  for (std::size_t cls = 0; cls < sys.classes().size(); ++cls) {
    std::size_t promised = 0;
    for (NodeId x = 0; x < 22; ++x) {
      promised = std::max(promised, sys.node(x).aggr_crt.at(x)[cls]);
    }
    if (promised < 2) continue;
    for (NodeId start : {0ul, 11ul, 21ul}) {
      EXPECT_TRUE(sys.query(QueryRequest::at_class(start, promised, cls))
                      .found())
          << "cls=" << cls << " promised=" << promised;
    }
  }
}

TEST(Query, BeyondPromiseFails) {
  auto sys = make_system(22, 6, 5);
  for (std::size_t cls = 0; cls < sys.classes().size(); ++cls) {
    std::size_t promised = 0;
    for (NodeId x = 0; x < 22; ++x) {
      promised = std::max(promised, sys.node(x).aggr_crt.at(x)[cls]);
    }
    const auto r = sys.query(QueryRequest::at_class(0, promised + 1, cls));
    EXPECT_FALSE(r.found());
  }
}

TEST(Query, RouteNeverRevisitsNodes) {
  auto sys = make_system(30, 4, 6);
  for (NodeId start = 0; start < 30; ++start) {
    const auto r = sys.query(QueryRequest::at_class(start, 5, 1));
    auto route = r.route;
    std::sort(route.begin(), route.end());
    EXPECT_EQ(std::adjacent_find(route.begin(), route.end()), route.end())
        << "start=" << start;
  }
}

TEST(Query, HopsMatchRouteLength) {
  auto sys = make_system(25, 4, 7);
  for (NodeId start : {0ul, 5ul, 12ul, 24ul}) {
    const auto r = sys.query(QueryRequest::at_class(start, 4, 1));
    EXPECT_EQ(r.route.size(), r.hops + 1);
    EXPECT_EQ(r.route.front(), start);
  }
}

TEST(Query, LocallyAnswerableQueryTakesZeroHops) {
  auto sys = make_system(18, 100, 8);
  // With full knowledge, every node answers locally.
  const auto r = sys.query(QueryRequest::at_class(9, 2, 0));
  EXPECT_TRUE(r.found());
  EXPECT_EQ(r.hops, 0u);
}

TEST(Query, ValidatesArguments) {
  // Bad arguments are statuses, not exceptions: the serving plane must be
  // able to answer garbage without unwinding.
  auto sys = make_system(10, 4, 9);
  EXPECT_EQ(sys.query(QueryRequest::at_class(0, 1, 0)).status,
            QueryStatus::kInvalidK);
  EXPECT_EQ(sys.query(QueryRequest::at_class(0, 2, 99)).status,
            QueryStatus::kBandwidthUnsatisfiable);
  EXPECT_EQ(sys.query(QueryRequest::at_class(99, 2, 0)).status,
            QueryStatus::kUnknownStart);
  // An unconstrained request (monostate) satisfies nothing by definition.
  QueryRequest unconstrained;
  unconstrained.start = 0;
  unconstrained.k = 2;
  EXPECT_EQ(sys.query(unconstrained).status,
            QueryStatus::kBandwidthUnsatisfiable);
}

TEST(Query, BandwidthQuerySnapsToClass) {
  auto sys = make_system(20, 100, 10);
  const double b0 = sys.classes().bandwidth_at(0);
  const double b_last = sys.classes().bandwidth_at(sys.classes().size() - 1);
  // Slightly below the loosest class: snaps to it.
  const auto r = sys.query(QueryRequest::bandwidth(0, 2, b0 * 0.9));
  EXPECT_TRUE(r.found());
  // Above the strictest class: unanswerable.
  const auto r2 = sys.query(QueryRequest::bandwidth(0, 2, b_last * 1.5));
  EXPECT_FALSE(r2.found());
  EXPECT_EQ(r2.status, QueryStatus::kBandwidthUnsatisfiable);
}

TEST(Query, ReturnedClusterMeetsSnappedBandwidth) {
  auto sys = make_system(20, 100, 11);
  const double b = sys.classes().bandwidth_at(1) * 0.95;
  const auto r = sys.query(QueryRequest::bandwidth(3, 3, b));
  if (r.found()) {
    // Predicted bandwidth of every returned pair >= requested b.
    for (std::size_t i = 0; i < r.cluster.size(); ++i) {
      for (std::size_t j = i + 1; j < r.cluster.size(); ++j) {
        const double d = sys.predicted().at(r.cluster[i], r.cluster[j]);
        EXPECT_GE(distance_to_bandwidth(d, sys.classes().transform_c()),
                  b - 1e-9);
      }
    }
  }
}

TEST(Query, SmallNcutLimitsLargeClusters) {
  // A sanity check of the paper's decentralization tradeoff: with a small
  // n_cut, queries for very large k fail even when the centralized algorithm
  // would succeed.
  auto sys = make_system(30, 3, 12);
  const auto universe = testutil::iota_universe(30);
  const double l = sys.classes().distance_at(0);
  const std::size_t central = max_cluster_size(sys.predicted(), universe, l);
  ASSERT_EQ(central, 30u);  // loosest class spans the whole metric
  // Decentralized spaces hold at most 1 + n_cut * degree nodes.
  const auto r = sys.query(QueryRequest::at_class(0, 30, 0));
  EXPECT_FALSE(r.found());
}

}  // namespace
}  // namespace bcc
