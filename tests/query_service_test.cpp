// The serving layer: QueryStatus branches of the redesigned query API,
// QueryService batching/caching/stats, and the snapshot-swap concurrency
// contract (run under ThreadSanitizer via tools/sanitize.sh).
#include "serve/query_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "core/system.h"
#include "test_util.h"
#include "tree/embedder.h"

namespace bcc {
namespace {

/// A converged decentralized system over a random perfect tree metric.
DecentralizedClusterSystem make_system(std::size_t n, std::size_t n_cut,
                                       std::uint64_t seed,
                                       double c = kDefaultTransformC) {
  Rng rng(seed);
  const DistanceMatrix real = testutil::random_tree_metric(n, rng);
  Rng order_rng(seed + 77);
  Framework fw = build_framework(real, order_rng);
  DistanceMatrix predicted = fw.predicted_distances();
  const double dmax = predicted.max_distance();
  BandwidthClasses classes(
      {c / dmax, c / (dmax * 0.6), c / (dmax * 0.3), c / (dmax * 0.1)}, c);
  SystemOptions options;
  options.n_cut = n_cut;
  DecentralizedClusterSystem sys(std::move(fw.anchors), std::move(predicted),
                                 std::move(classes), options);
  sys.run_to_convergence();
  EXPECT_TRUE(sys.converged());
  return sys;
}

void expect_route_acyclic(const QueryResult& r) {
  auto route = r.route;
  std::sort(route.begin(), route.end());
  EXPECT_EQ(std::adjacent_find(route.begin(), route.end()), route.end());
}

// ---------------------------------------------------------------- statuses

TEST(QueryStatusApi, FoundCarriesClusterRouteAndClass) {
  auto sys = make_system(20, 100, 1);
  const auto r = sys.query(QueryRequest::at_class(3, 4, 0));
  ASSERT_EQ(r.status, QueryStatus::kFound);
  EXPECT_TRUE(r.found());
  EXPECT_EQ(r.cluster.size(), 4u);
  EXPECT_EQ(r.class_idx, std::optional<std::size_t>(0));
  ASSERT_FALSE(r.route.empty());
  EXPECT_EQ(r.route.front(), 3u);
  EXPECT_EQ(r.route.size(), r.hops + 1);
  EXPECT_TRUE(cluster_satisfies(sys.predicted(), r.cluster, 4,
                                sys.classes().distance_at(0)));
}

TEST(QueryStatusApi, NotFoundWhenKExceedsPopulation) {
  auto sys = make_system(15, 100, 2);
  const auto r = sys.query(QueryRequest::at_class(0, 16, 0));
  EXPECT_EQ(r.status, QueryStatus::kNotFound);
  EXPECT_TRUE(r.cluster.empty());
  EXPECT_FALSE(r.found());
}

TEST(QueryStatusApi, InvalidK) {
  auto sys = make_system(10, 4, 3);
  const auto r = sys.query(QueryRequest::at_class(0, 1, 0));
  EXPECT_EQ(r.status, QueryStatus::kInvalidK);
  EXPECT_TRUE(r.cluster.empty());
  EXPECT_TRUE(r.route.empty());
}

TEST(QueryStatusApi, BandwidthUnsatisfiable) {
  auto sys = make_system(10, 4, 4);
  const double b_max =
      sys.classes().bandwidth_at(sys.classes().size() - 1);
  // b stricter than every class.
  const auto r = sys.query(QueryRequest::bandwidth(0, 2, b_max * 2.0));
  EXPECT_EQ(r.status, QueryStatus::kBandwidthUnsatisfiable);
  // Out-of-range explicit class index reports the same way.
  const auto r2 = sys.query(QueryRequest::at_class(0, 2, 99));
  EXPECT_EQ(r2.status, QueryStatus::kBandwidthUnsatisfiable);
  // A request with no constraint at all satisfies nothing.
  QueryRequest unconstrained;
  unconstrained.start = 0;
  unconstrained.k = 2;
  const auto r3 = sys.query(unconstrained);
  EXPECT_EQ(r3.status, QueryStatus::kBandwidthUnsatisfiable);
}

TEST(QueryStatusApi, UnknownStart) {
  auto sys = make_system(10, 4, 5);
  const auto r = sys.query(QueryRequest::at_class(99, 2, 0));
  EXPECT_EQ(r.status, QueryStatus::kUnknownStart);
}

TEST(QueryStatusApi, BandwidthSnapsUpToServingClass) {
  auto sys = make_system(20, 100, 6);
  const double b1 = sys.classes().bandwidth_at(1);
  const auto r = sys.query(QueryRequest::bandwidth(0, 2, b1 * 0.95));
  ASSERT_TRUE(r.found());
  EXPECT_EQ(r.class_idx, std::optional<std::size_t>(1));  // snapped up
}

TEST(QueryStatusApi, SnapUpAccessor) {
  auto sys = make_system(8, 4, 7);
  const auto& classes = sys.classes();
  EXPECT_EQ(classes.snap_up(classes.bandwidth_at(0)),
            std::optional<std::size_t>(0));
  EXPECT_EQ(classes.snap_up(classes.bandwidth_at(0) * 0.5),
            std::optional<std::size_t>(0));
  EXPECT_FALSE(
      classes.snap_up(classes.bandwidth_at(classes.size() - 1) * 1.01));
}

TEST(QueryStatusApi, ConstraintVariantsAgree) {
  // The two constraint alternatives are interchangeable when the bandwidth
  // snaps to the same class: bandwidth(b) must serve identically to
  // at_class(snap_up(b)).
  auto sys = make_system(25, 8, 8);
  for (std::size_t cls = 0; cls < sys.classes().size(); ++cls) {
    const double b = sys.classes().bandwidth_at(cls);
    for (std::size_t k : {2ul, 4ul, 9ul}) {
      for (NodeId start : {0ul, 12ul, 24ul}) {
        const auto by_class = sys.query(QueryRequest::at_class(start, k, cls));
        const auto by_bandwidth =
            sys.query(QueryRequest::bandwidth(start, k, b));
        EXPECT_EQ(by_class.status, by_bandwidth.status);
        EXPECT_EQ(by_class.cluster, by_bandwidth.cluster);
        EXPECT_EQ(by_class.hops, by_bandwidth.hops);
        EXPECT_EQ(by_class.route, by_bandwidth.route);
        EXPECT_EQ(by_class.class_idx, by_bandwidth.class_idx);
      }
    }
  }
}

TEST(QueryStatusApi, RequestChainersSetServingFields) {
  auto req = QueryRequest::bandwidth(3, 5, 40.0)
                 .with_deadline(2500)
                 .with_priority(QueryPriority::kHigh);
  EXPECT_EQ(req.deadline_micros, 2500u);
  EXPECT_EQ(req.priority, QueryPriority::kHigh);
  EXPECT_EQ(req.bandwidth_mbps(), std::optional<double>(40.0));
  EXPECT_FALSE(req.explicit_class().has_value());
  const auto cls = QueryRequest::at_class(3, 5, 2);
  EXPECT_EQ(cls.explicit_class(), std::optional<std::size_t>(2));
  EXPECT_FALSE(cls.bandwidth_mbps().has_value());
  EXPECT_EQ(cls.priority, QueryPriority::kNormal);  // default
}

// ------------------------------------------------------------ QueryService

TEST(QueryService, BatchAnswersMatchDirectQueries) {
  auto sys = make_system(30, 8, 10);
  QueryServiceOptions options;
  options.threads = 4;
  QueryService service(sys, options);

  std::vector<QueryRequest> batch;
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    batch.push_back(QueryRequest::at_class(
        static_cast<NodeId>(rng.below(30)), 2 + rng.below(8),
        rng.below(sys.classes().size())));
  }
  const auto results = service.submit_batch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto direct = sys.query(batch[i]);
    EXPECT_EQ(results[i].status, direct.status) << "i=" << i;
    EXPECT_EQ(results[i].cluster, direct.cluster) << "i=" << i;
    EXPECT_EQ(results[i].snapshot_version, 1u);
  }
}

TEST(QueryService, EmptyBatch) {
  auto sys = make_system(10, 4, 12);
  QueryService service(sys, {});
  EXPECT_TRUE(service.submit_batch({}).empty());
}

TEST(QueryService, CacheHitsAreCountedAndConsistent) {
  auto sys = make_system(20, 8, 13);
  QueryServiceOptions options;
  options.threads = 2;
  QueryService service(sys, options);

  const auto req = QueryRequest::at_class(5, 4, 0);
  const auto first = service.submit(req);
  const auto second = service.submit(req);
  EXPECT_EQ(service.stats().cache_hits, 1u);
  EXPECT_EQ(first.status, second.status);
  EXPECT_EQ(first.cluster, second.cluster);
  EXPECT_EQ(first.route, second.route);
}

TEST(QueryService, CacheCanBeDisabled) {
  auto sys = make_system(20, 8, 14);
  QueryServiceOptions options;
  options.threads = 2;
  options.cache_enabled = false;
  QueryService service(sys, options);
  const auto req = QueryRequest::at_class(5, 4, 0);
  service.submit(req);
  service.submit(req);
  EXPECT_EQ(service.stats().cache_hits, 0u);
}

TEST(QueryService, RefreshSwapsSnapshotAndInvalidatesCache) {
  auto sys = make_system(20, 8, 15);
  QueryServiceOptions options;
  options.threads = 2;
  QueryService service(sys, options);
  EXPECT_EQ(service.snapshot_version(), 1u);

  const auto req = QueryRequest::at_class(2, 3, 1);
  service.submit(req);
  service.submit(req);
  EXPECT_EQ(service.stats().cache_hits, 1u);

  // Restructure: scale the predicted metric (still a tree metric) and
  // re-converge, then publish the new state to the service.
  DistanceMatrix scaled = sys.predicted();
  for (NodeId u = 0; u < scaled.size(); ++u) {
    for (NodeId v = u + 1; v < scaled.size(); ++v) {
      scaled.set(u, v, scaled.at(u, v) * 1.1);
    }
  }
  sys.refresh(std::move(scaled));
  service.refresh(sys);
  EXPECT_EQ(service.snapshot_version(), 2u);

  const auto after = service.submit(req);
  EXPECT_EQ(after.snapshot_version, 2u);
  EXPECT_EQ(service.stats().cache_hits, 1u);  // no hit across the swap
}

TEST(QueryService, UnconvergedSnapshotServesDegradedResults) {
  auto sys = make_system(20, 100, 42);
  QueryServiceOptions options;
  options.threads = 2;
  QueryService service(sys, options);
  const auto req = QueryRequest::at_class(0, 4, 0);
  EXPECT_FALSE(service.submit(req).degraded);  // converged system

  // Install a snapshot captured mid-disruption (converged = false): every
  // result served from it — found, not-found, or argument error — carries
  // the degraded flag.
  SystemSnapshot disrupted = *snapshot_of(sys);
  disrupted.converged = false;
  service.refresh(std::move(disrupted));
  const auto degraded = service.submit(req);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_TRUE(degraded.found());  // still a well-formed answer
  EXPECT_TRUE(service.submit(QueryRequest::at_class(0, 1, 0)).degraded);
  for (const auto& r :
       service.submit_batch(std::vector<QueryRequest>{req, req})) {
    EXPECT_TRUE(r.degraded);
  }

  // A healthy refresh clears the flag.
  service.refresh(sys);
  EXPECT_FALSE(service.submit(req).degraded);
}

TEST(QueryService, StatsCountStatusesHopsAndLatency) {
  auto sys = make_system(20, 100, 16);
  QueryServiceOptions options;
  options.threads = 2;
  options.cache_enabled = false;
  QueryService service(sys, options);

  std::vector<QueryRequest> batch = {
      QueryRequest::at_class(0, 2, 0),      // found
      QueryRequest::at_class(1, 2, 0),      // found
      QueryRequest::at_class(0, 21, 0),     // not found (k > n)
      QueryRequest::at_class(0, 1, 0),      // invalid k
      QueryRequest::at_class(0, 2, 99),     // unsatisfiable
      QueryRequest::at_class(99, 2, 0),     // unknown start
  };
  service.submit_batch(batch);

  const auto stats = service.stats();
  EXPECT_EQ(stats.count(QueryStatus::kFound), 2u);
  EXPECT_EQ(stats.count(QueryStatus::kNotFound), 1u);
  EXPECT_EQ(stats.count(QueryStatus::kInvalidK), 1u);
  EXPECT_EQ(stats.count(QueryStatus::kBandwidthUnsatisfiable), 1u);
  EXPECT_EQ(stats.count(QueryStatus::kUnknownStart), 1u);
  EXPECT_EQ(stats.total(), batch.size());

  // Hop histogram only counts routed queries (found / not-found).
  std::uint64_t routed = 0;
  for (std::uint64_t c : stats.hop_histogram) routed += c;
  EXPECT_EQ(routed, 3u);

  // Latency histogram counts every record; percentile is monotone in p.
  std::uint64_t latency_samples = 0;
  for (std::uint64_t c : stats.latency_histogram) latency_samples += c;
  EXPECT_EQ(latency_samples, batch.size());
  EXPECT_LE(stats.latency_percentile_micros(50.0),
            stats.latency_percentile_micros(99.0));
  EXPECT_LE(stats.latency_percentile_micros(99.0), stats.max_micros);

  service.reset_stats();
  EXPECT_EQ(service.stats().total(), 0u);
}

TEST(QueryService, ToStringCoversEveryStatus) {
  EXPECT_STREQ(to_string(QueryStatus::kFound), "found");
  EXPECT_STREQ(to_string(QueryStatus::kNotFound), "not_found");
  EXPECT_STREQ(to_string(QueryStatus::kInvalidK), "invalid_k");
  EXPECT_STREQ(to_string(QueryStatus::kBandwidthUnsatisfiable),
               "bandwidth_unsatisfiable");
  EXPECT_STREQ(to_string(QueryStatus::kUnknownStart), "unknown_start");
  EXPECT_STREQ(to_string(QueryStatus::kShed), "shed");
  EXPECT_STREQ(to_string(QueryPriority::kLow), "low");
  EXPECT_STREQ(to_string(QueryPriority::kNormal), "normal");
  EXPECT_STREQ(to_string(QueryPriority::kHigh), "high");
}

// ------------------------------------------------------------- concurrency

// N submitter threads fire mixed batches while the main thread restructures
// the system and swaps service snapshots. Every result must be
// status-consistent with the exact snapshot version it reports, and no route
// may cycle. (tools/sanitize.sh runs this under ThreadSanitizer.)
TEST(QueryService, ConcurrentBatchesRaceSnapshotSwaps) {
  const std::size_t n = 30;
  auto sys = make_system(n, 8, 17);
  QueryServiceOptions options;
  options.threads = 4;
  options.shards = 4;
  QueryService service(sys, options);

  // Retain every snapshot ever published so results can be re-validated
  // against the exact state that served them.
  std::map<std::uint64_t, std::shared_ptr<const SystemSnapshot>> published;
  auto retain = [&] {
    const auto snap = service.snapshot();
    published[snap->version] = snap;
  };
  retain();

  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kBatchesPerThread = 6;
  constexpr std::size_t kBatchSize = 120;
  std::atomic<bool> failed{false};
  std::vector<std::vector<QueryResult>> collected(kSubmitters);
  std::vector<std::vector<QueryRequest>> sent(kSubmitters);

  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      Rng rng(100 + t);
      for (std::size_t round = 0; round < kBatchesPerThread; ++round) {
        std::vector<QueryRequest> batch;
        batch.reserve(kBatchSize);
        for (std::size_t i = 0; i < kBatchSize; ++i) {
          switch (rng.below(5)) {
            case 0:  // plausible class query
              batch.push_back(QueryRequest::at_class(
                  static_cast<NodeId>(rng.below(n)), 2 + rng.below(10),
                  rng.below(4)));
              break;
            case 1:  // bandwidth query
              batch.push_back(QueryRequest::bandwidth(
                  static_cast<NodeId>(rng.below(n)), 2 + rng.below(10),
                  1.0 + static_cast<double>(rng.below(100))));
              break;
            case 2:  // invalid k
              batch.push_back(QueryRequest::at_class(
                  static_cast<NodeId>(rng.below(n)), rng.below(2), 0));
              break;
            case 3:  // bad class
              batch.push_back(QueryRequest::at_class(
                  static_cast<NodeId>(rng.below(n)), 3, 50 + rng.below(10)));
              break;
            default:  // unknown start
              batch.push_back(
                  QueryRequest::at_class(n + rng.below(10), 3, 0));
              break;
          }
        }
        auto results = service.submit_batch(batch);
        if (results.size() != batch.size()) {
          failed = true;
          return;
        }
        sent[t].insert(sent[t].end(), batch.begin(), batch.end());
        collected[t].insert(collected[t].end(), results.begin(),
                            results.end());
      }
    });
  }

  // Meanwhile: restructure + swap snapshots, racing the batches above.
  Rng refresh_rng(999);
  for (int swap = 0; swap < 3; ++swap) {
    DistanceMatrix scaled = sys.predicted();
    const double factor = 0.9 + 0.1 * static_cast<double>(swap);
    for (NodeId u = 0; u < scaled.size(); ++u) {
      for (NodeId v = u + 1; v < scaled.size(); ++v) {
        scaled.set(u, v, scaled.at(u, v) * factor);
      }
    }
    sys.refresh(std::move(scaled));
    service.refresh(sys);
    retain();
  }

  for (auto& thread : submitters) thread.join();
  ASSERT_FALSE(failed.load());

  std::size_t checked = 0;
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    ASSERT_EQ(collected[t].size(), sent[t].size());
    for (std::size_t i = 0; i < collected[t].size(); ++i) {
      const QueryRequest& req = sent[t][i];
      const QueryResult& r = collected[t][i];
      ASSERT_TRUE(published.count(r.snapshot_version))
          << "result served by an unpublished snapshot";
      const SystemSnapshot& snap = *published.at(r.snapshot_version);
      expect_route_acyclic(r);
      switch (r.status) {
        case QueryStatus::kFound: {
          ASSERT_EQ(r.cluster.size(), req.k);
          ASSERT_TRUE(r.class_idx.has_value());
          const double l = snap.classes.distance_at(*r.class_idx);
          EXPECT_TRUE(
              cluster_satisfies(snap.predicted, r.cluster, req.k, l))
              << "cluster violates the class it was served at";
          EXPECT_EQ(r.route.size(), r.hops + 1);
          EXPECT_EQ(r.route.front(), req.start);
          break;
        }
        case QueryStatus::kNotFound:
          EXPECT_TRUE(r.cluster.empty());
          EXPECT_EQ(r.route.front(), req.start);
          break;
        case QueryStatus::kInvalidK:
          EXPECT_LT(req.k, 2u);
          break;
        case QueryStatus::kBandwidthUnsatisfiable:
          EXPECT_TRUE(!resolve_class(req, snap.classes).has_value());
          break;
        case QueryStatus::kUnknownStart:
          EXPECT_GE(req.start, n);
          break;
        case QueryStatus::kShed:
          ADD_FAILURE() << "shed response with admission control disabled";
          break;
      }
      ++checked;
    }
  }
  EXPECT_EQ(checked, kSubmitters * kBatchesPerThread * kBatchSize);
  EXPECT_EQ(service.stats().total(), checked);
}

// Writers hammer record() while a reader snapshots continuously. Every
// snapshot flagged `consistent` must balance exactly: each record feeds one
// status counter and one latency bucket, so the two totals can never differ
// in a torn-free copy. (tools/sanitize.sh runs this under ThreadSanitizer.)
TEST(QueryStatsConsistency, SnapshotsNeverTearUnderConcurrentRecords) {
  QueryStats stats;
  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kRecordsPerWriter = 20000;

  std::atomic<bool> done{false};
  std::size_t consistent_seen = 0;
  std::size_t snapshots_taken = 0;
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto s = stats.snapshot();
      ++snapshots_taken;
      if (!s.consistent) continue;
      ++consistent_seen;
      std::uint64_t latency_total = 0;
      for (std::uint64_t c : s.latency_histogram) latency_total += c;
      ASSERT_EQ(s.total(), latency_total)
          << "consistent snapshot has torn status/latency totals";
      ASSERT_LE(s.cache_hits, s.total());
      std::uint64_t routed = 0;
      for (std::uint64_t c : s.hop_histogram) routed += c;
      ASSERT_LE(routed, s.total());
    }
  });

  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&stats, t] {
      for (std::size_t i = 0; i < kRecordsPerWriter; ++i) {
        QueryResult r;
        r.status = (i % 3 == 0) ? QueryStatus::kFound : QueryStatus::kNotFound;
        r.hops = i % 20;
        r.micros = (t + 1) * (i % 1000);
        stats.record(r, /*cache_hit=*/i % 4 == 0);
      }
    });
  }
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  reader.join();

  // Quiescent: the final snapshot must be exact on the first attempt.
  const auto s = stats.snapshot();
  EXPECT_TRUE(s.consistent);
  EXPECT_EQ(s.total(), kWriters * kRecordsPerWriter);
  std::uint64_t latency_total = 0;
  for (std::uint64_t c : s.latency_histogram) latency_total += c;
  EXPECT_EQ(latency_total, kWriters * kRecordsPerWriter);
  EXPECT_EQ(s.cache_hits, kWriters * kRecordsPerWriter / 4);
  EXPECT_GT(snapshots_taken, 0u);
  // Not asserted — under a saturating write load every mid-run snapshot may
  // legitimately come back best-effort — but worth surfacing.
  (void)consistent_seen;
}

}  // namespace
}  // namespace bcc
